// Human-friendly string formatting for reports, benches and examples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace eblcio {

// "673.9MB", "10.5GB" — decimal units as used in the paper's Table II.
std::string human_bytes(std::uint64_t bytes);

// Fixed-precision double ("12.34"); trims to `prec` decimals.
std::string fmt_double(double v, int prec = 2);

// Scientific notation matching the paper's error-bound axis labels: "1E-03".
std::string fmt_error_bound(double eb);

// "26x1800x3600" from a dims vector.
std::string fmt_dims(const std::vector<std::size_t>& dims);

// Seconds with an adaptive unit ("532 ms", "12.3 s").
std::string fmt_seconds(double s);

}  // namespace eblcio
