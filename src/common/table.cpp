#include "common/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace eblcio {

void emit_table_row(std::ostream& os, const std::vector<std::string>& cells,
                    const std::vector<std::size_t>& widths) {
  os << "|";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    const std::string& cell = c < cells.size() ? cells[c] : std::string();
    const std::size_t pad =
        widths[c] > cell.size() ? widths[c] - cell.size() : 0;
    os << " " << cell << std::string(pad, ' ') << " |";
  }
  os << "\n";
}

void emit_table_rule(std::ostream& os,
                     const std::vector<std::size_t>& widths) {
  os << "+";
  for (std::size_t w : widths) os << std::string(w + 2, '-') << "+";
  os << "\n";
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      width[c] = std::max(width[c], row.cells[c].size());

  std::ostringstream os;
  emit_table_rule(os, width);
  emit_table_row(os, header_, width);
  emit_table_rule(os, width);
  for (const auto& row : rows_) {
    if (row.rule_before) emit_table_rule(os, width);
    emit_table_row(os, row.cells, width);
  }
  emit_table_rule(os, width);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

}  // namespace eblcio
