#include "common/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace eblcio {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      width[c] = std::max(width[c], row.cells[c].size());

  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << " " << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  auto emit_rule = [&](std::ostringstream& os) {
    os << "+";
    for (std::size_t c = 0; c < header_.size(); ++c)
      os << std::string(width[c] + 2, '-') << "+";
    os << "\n";
  };

  std::ostringstream os;
  emit_rule(os);
  emit_row(os, header_);
  emit_rule(os);
  for (const auto& row : rows_) {
    if (row.rule_before) emit_rule(os);
    emit_row(os, row.cells);
  }
  emit_rule(os);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

}  // namespace eblcio
