// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every synthetic data generator and test in the library seeds one of these
// so experiments are exactly reproducible run-to-run.
#pragma once

#include <cmath>
#include <cstdint>

namespace eblcio {

// xoshiro256** 1.0 (Blackman & Vigna, public domain algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& word : s_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t w = z;
      w = (w ^ (w >> 30)) * 0xbf58476d1ce4e5b9ULL;
      w = (w ^ (w >> 27)) * 0x94d049bb133111ebULL;
      word = w ^ (w >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  // Standard normal via Box-Muller (cached second value discarded to keep
  // the generator state trivially copyable).
  double normal() {
    double u1 = next_double();
    while (u1 <= 1e-300) u1 = next_double();
    const double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  // Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) {
    // Multiply-shift rejection-free mapping; bias is negligible for n << 2^64.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * n) >> 64);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace eblcio
