// Thread-aware recycling pool for byte buffers.
//
// The streamed pipelines (core/pipeline) move one compressed slab per cell
// through fetch/compress/write stages; without reuse every slab costs a
// fresh heap allocation in the PFS fetch path, the container staging
// copies, and the chunked compressor framing. The pool closes that loop:
// stages acquire() their working buffer and release() it once the slab has
// been consumed, so a steady-state streamed run recycles the same few
// allocations regardless of slab count.
//
// Thread awareness: buffers live in a small fixed set of shards indexed by
// the calling thread's id, so concurrent pipeline stages (producer on an
// executor worker, consumer on the caller) don't serialize on one mutex,
// and a buffer released by the thread that just drained it is typically
// cache-warm for that thread's next acquire.
//
// Returned buffers are always empty (size 0); capacity is whatever the
// recycled allocation carried, grown by the caller's reserve/resize as
// needed — after the first lap every slab fits without reallocating.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/bytes.h"

namespace eblcio {

class BufferPool {
 public:
  // The process-wide pool the pipelines share.
  static BufferPool& global();

  // Returns an empty buffer, preferring a pooled allocation with capacity
  // >= size_hint (best effort: the largest pooled buffer in this thread's
  // shard otherwise, a fresh buffer when the shard is empty).
  Bytes acquire(std::size_t size_hint = 0);

  // Donates a buffer's allocation back to the pool. The buffer is cleared;
  // shards cap both buffer count and retained bytes, and anything beyond
  // the cap is simply freed.
  void release(Bytes&& buf);

  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t hits = 0;      // acquires served from a pooled buffer
    std::uint64_t releases = 0;
    std::uint64_t retained_buffers = 0;  // currently pooled
    std::uint64_t retained_bytes = 0;    // capacity currently pooled
  };
  Stats stats() const;

  // Frees every pooled buffer (keeps counters; used by tests and by
  // long-lived tools between workloads).
  void trim();

  // Resets the hit/acquire/release counters (retained state unchanged).
  void reset_stats();

 private:
  static constexpr std::size_t kShards = 8;
  static constexpr std::size_t kMaxBuffersPerShard = 16;
  static constexpr std::size_t kMaxBytesPerShard = std::size_t{64} << 20;

  struct Shard {
    mutable std::mutex mu;
    std::vector<Bytes> free;
    std::size_t bytes = 0;  // summed capacity of `free`
  };

  Shard& shard_for_this_thread();

  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> acquires_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> releases_{0};
};

}  // namespace eblcio
