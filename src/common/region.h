// Query boxes and zone extents for partial-region reads.
//
// A Region is an axis-aligned box inside a field's index space (the shape
// of a serving-scale analysis query). A ZoneExtent is one zone's row
// interval along dimension 0 — zones shard the slowest-varying dimension,
// exactly like the chunking slabs, so a region's covering set is the set
// of zones whose row interval intersects the region's dim-0 interval.
// Both types live in common/ because the compressors (zone sharding) and
// the io layer (container zone index) share them without depending on
// each other.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace eblcio {

// An axis-aligned query box: start[d] .. start[d] + shape[d] per dimension.
struct Region {
  std::vector<std::size_t> start;
  std::vector<std::size_t> shape;

  int ndims() const { return static_cast<int>(shape.size()); }
  std::size_t num_elements() const {
    std::size_t n = 1;
    for (std::size_t s : shape) n *= s;
    return n;
  }
};

// Throws InvalidArgument unless `region` is a non-empty box that lies
// entirely inside a field shaped `dims`.
inline void validate_region(const Region& region,
                            const std::vector<std::size_t>& dims) {
  EBLCIO_CHECK_ARG(region.start.size() == dims.size() &&
                       region.shape.size() == dims.size(),
                   "region rank does not match field rank");
  for (std::size_t d = 0; d < dims.size(); ++d) {
    EBLCIO_CHECK_ARG(region.shape[d] > 0, "region is empty along dimension " +
                                              std::to_string(d));
    EBLCIO_CHECK_ARG(region.start[d] < dims[d] &&
                         region.shape[d] <= dims[d] - region.start[d],
                     "region exceeds field extent along dimension " +
                         std::to_string(d));
  }
}

// One zone's interval along dimension 0 of the full field.
struct ZoneExtent {
  std::uint64_t row_start = 0;
  std::uint64_t rows = 0;

  friend bool operator==(const ZoneExtent& a, const ZoneExtent& b) {
    return a.row_start == b.row_start && a.rows == b.rows;
  }
};

// Indices of the zones whose row interval intersects
// [row_start, row_start + rows). Extents are contiguous and sorted (the
// form zone_extents/append_zone produce), so the covering set is one
// contiguous run of indices.
inline std::vector<std::size_t> covering_zones(
    const std::vector<ZoneExtent>& extents, std::size_t row_start,
    std::size_t rows) {
  std::vector<std::size_t> out;
  const std::size_t row_end = row_start + rows;
  for (std::size_t i = 0; i < extents.size(); ++i) {
    const std::size_t a = static_cast<std::size_t>(extents[i].row_start);
    const std::size_t b = a + static_cast<std::size_t>(extents[i].rows);
    if (a < row_end && row_start < b) out.push_back(i);
  }
  return out;
}

}  // namespace eblcio
