// Error types shared across the eblcio library.
//
// The library throws exceptions for unrecoverable misuse (bad arguments,
// corrupt streams); hot paths signal recoverable conditions through return
// values instead. All exceptions derive from eblcio::Error so callers can
// catch the library's failures with a single handler.
#pragma once

#include <stdexcept>
#include <string>

namespace eblcio {

// Base class for all errors raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// The caller passed arguments that violate an API precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what)
      : Error("invalid argument: " + what) {}
};

// A serialized stream (compressed blob, container file) is malformed.
class CorruptStream : public Error {
 public:
  explicit CorruptStream(const std::string& what)
      : Error("corrupt stream: " + what) {}
};

// A feature combination is not supported (mirrors the paper's notes, e.g.
// "QoZ is not capable of compressing 1D data").
class Unsupported : public Error {
 public:
  explicit Unsupported(const std::string& what)
      : Error("unsupported: " + what) {}
};

#define EBLCIO_CHECK(cond, msg)                 \
  do {                                          \
    if (!(cond)) throw ::eblcio::Error(msg);    \
  } while (0)

#define EBLCIO_CHECK_ARG(cond, msg)                      \
  do {                                                   \
    if (!(cond)) throw ::eblcio::InvalidArgument(msg);   \
  } while (0)

#define EBLCIO_CHECK_STREAM(cond, msg)                 \
  do {                                                 \
    if (!(cond)) throw ::eblcio::CorruptStream(msg);   \
  } while (0)

}  // namespace eblcio
