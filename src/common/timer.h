// Wall-clock timing for compression kernels.
//
// Compute phases are *really executed and really timed*; the energy layer
// converts these measured durations into per-platform energy (see
// src/energy/). Keep the timer minimal and monotonic.
#pragma once

#include <chrono>

namespace eblcio {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or last reset().
  double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Times a callable and returns its wall duration in seconds.
template <typename F>
double timed_s(F&& f) {
  WallTimer t;
  f();
  return t.elapsed_s();
}

}  // namespace eblcio
