#include "common/field.h"

#include <algorithm>
#include <cmath>

namespace eblcio {

const Shape& Field::shape() const {
  return visit([](const auto& arr) -> const Shape& { return arr.shape(); });
}

std::span<const std::byte> Field::bytes() const {
  return visit([](const auto& arr) {
    return std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(arr.data()), arr.size_bytes());
  });
}

Field::Range Field::value_range() const {
  return visit([](const auto& arr) {
    Field::Range r;
    if (arr.num_elements() == 0) return r;
    double lo = arr[0], hi = arr[0];
    for (std::size_t i = 1; i < arr.num_elements(); ++i) {
      const double v = arr[i];
      if (std::isnan(v)) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    r.min = lo;
    r.max = hi;
    return r;
  });
}

}  // namespace eblcio
