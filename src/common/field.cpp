#include "common/field.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <type_traits>

namespace eblcio {

const Shape& Field::shape() const {
  return visit([](const auto& arr) -> const Shape& { return arr.shape(); });
}

std::span<const std::byte> Field::bytes() const {
  return visit([](const auto& arr) {
    return std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(arr.data()), arr.size_bytes());
  });
}

Field::Range Field::value_range() const {
  // Eight independent accumulator lanes so the scan vectorizes (the
  // strict-compare ternary is exactly the minps/maxps hardware semantics,
  // so no fast-math is needed). min/max are associative and commutative,
  // so lane-splitting reorders the evaluation without changing the
  // result; a NaN element never replaces an accumulator (strict compare
  // is false), matching the skip in the scalar formulation, and a NaN
  // first element poisons every lane just as it poisoned the scalar
  // accumulator.
  return visit([](const auto& arr) {
    Field::Range r;
    const std::size_t n = arr.num_elements();
    if (n == 0) return r;
    const auto* p = arr.data();
    using T = std::remove_cvref_t<decltype(p[0])>;
    constexpr std::size_t kLanes = 8;
    std::array<T, kLanes> lo_l, hi_l;
    lo_l.fill(p[0]);
    hi_l.fill(p[0]);
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes)
      for (std::size_t j = 0; j < kLanes; ++j) {
        const T v = p[i + j];
        lo_l[j] = v < lo_l[j] ? v : lo_l[j];
        hi_l[j] = v > hi_l[j] ? v : hi_l[j];
      }
    T lo = lo_l[0], hi = hi_l[0];
    for (std::size_t j = 1; j < kLanes; ++j) {
      lo = lo_l[j] < lo ? lo_l[j] : lo;
      hi = hi_l[j] > hi ? hi_l[j] : hi;
    }
    for (; i < n; ++i) {
      const T v = p[i];
      lo = v < lo ? v : lo;
      hi = v > hi ? v : hi;
    }
    r.min = static_cast<double>(lo);
    r.max = static_cast<double>(hi);
    return r;
  });
}

}  // namespace eblcio
