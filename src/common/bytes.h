// Little-endian POD serialization helpers used by every on-disk/in-blob
// format in the library (compressed headers, H5Lite/NcLite containers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.h"

namespace eblcio {

using Bytes = std::vector<std::byte>;

// Appends the raw little-endian representation of a trivially copyable value.
template <typename T>
void append_pod(Bytes& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

inline void append_bytes(Bytes& out, std::span<const std::byte> data) {
  out.insert(out.end(), data.begin(), data.end());
}

inline void append_string(Bytes& out, const std::string& s) {
  append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), reinterpret_cast<const std::byte*>(s.data()),
             reinterpret_cast<const std::byte*>(s.data() + s.size()));
}

// Sequential reader over a byte span; throws CorruptStream on underrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    EBLCIO_CHECK_STREAM(pos_ + sizeof(T) <= data_.size(),
                        "unexpected end of stream");
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string read_string() {
    const auto n = read_pod<std::uint32_t>();
    EBLCIO_CHECK_STREAM(pos_ + n <= data_.size(), "unexpected end of stream");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::span<const std::byte> read_bytes(std::size_t n) {
    EBLCIO_CHECK_STREAM(pos_ + n <= data_.size(), "unexpected end of stream");
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::span<const std::byte> remaining() const { return data_.subspan(pos_); }
  std::size_t pos() const { return pos_; }
  bool at_end() const { return pos_ == data_.size(); }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace eblcio
