#include "common/format.h"

#include <cmath>
#include <cstdio>
#include <vector>

namespace eblcio {

std::string human_bytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1000.0 && unit < 5) {
    v /= 1000.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu%s",
                  static_cast<unsigned long long>(bytes), kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, kUnits[unit]);
  }
  return buf;
}

std::string fmt_double(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string fmt_error_bound(double eb) {
  const int exp = static_cast<int>(std::lround(std::log10(eb)));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "1E%+03d", exp);
  return buf;
}

std::string fmt_dims(const std::vector<std::size_t>& dims) {
  std::string s;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i) s += "x";
    s += std::to_string(dims[i]);
  }
  return s;
}

std::string fmt_seconds(double s) {
  char buf[32];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", s);
  }
  return buf;
}

}  // namespace eblcio
