#include "common/buffer_pool.h"

#include <algorithm>
#include <functional>
#include <thread>

namespace eblcio {

BufferPool& BufferPool::global() {
  static BufferPool pool;
  return pool;
}

BufferPool::Shard& BufferPool::shard_for_this_thread() {
  const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shards_[h % kShards];
}

Bytes BufferPool::acquire(std::size_t size_hint) {
  acquires_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shard_for_this_thread();
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.free.empty()) return Bytes();

  // Best fit: the smallest pooled buffer that already covers the hint;
  // otherwise the largest one (it still saves the bulk of the regrowth).
  std::size_t pick = 0;
  bool covered = false;
  for (std::size_t i = 0; i < shard.free.size(); ++i) {
    const std::size_t cap = shard.free[i].capacity();
    const std::size_t best = shard.free[pick].capacity();
    if (cap >= size_hint) {
      if (!covered || cap < best) {
        pick = i;
        covered = true;
      }
    } else if (!covered && cap > best) {
      pick = i;
    }
  }
  Bytes out = std::move(shard.free[pick]);
  shard.free.erase(shard.free.begin() + static_cast<std::ptrdiff_t>(pick));
  shard.bytes -= out.capacity();
  out.clear();
  hits_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

void BufferPool::release(Bytes&& buf) {
  releases_.fetch_add(1, std::memory_order_relaxed);
  if (buf.capacity() == 0) return;
  Bytes local = std::move(buf);
  local.clear();
  Shard& shard = shard_for_this_thread();
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.free.size() >= kMaxBuffersPerShard ||
      shard.bytes + local.capacity() > kMaxBytesPerShard)
    return;  // drop: `local` frees on scope exit
  shard.bytes += local.capacity();
  shard.free.push_back(std::move(local));
}

BufferPool::Stats BufferPool::stats() const {
  Stats s;
  s.acquires = acquires_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.releases = releases_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.retained_buffers += shard.free.size();
    s.retained_bytes += shard.bytes;
  }
  return s;
}

void BufferPool::trim() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.free.clear();
    shard.bytes = 0;
  }
}

void BufferPool::reset_stats() {
  acquires_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  releases_.store(0, std::memory_order_relaxed);
}

}  // namespace eblcio
