// Minimal command-line flag parsing shared by benches and examples.
//
// Supports `--name=value`, `--name value` and boolean `--name` forms.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace eblcio {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def = "") const;
  double get_double(const std::string& name, double def) const;
  int get_int(const std::string& name, int def) const;
  bool get_bool(const std::string& name, bool def = false) const;

  // Non-flag positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace eblcio
