// Dense row-major k-dimensional array (k <= 4), the in-memory form of every
// scientific field handled by the library.
//
// NdArray<T> owns its buffer; NdView<T> is a non-owning shape+pointer pair
// used by compressors so they can operate on sub-fields without copies.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "common/error.h"

namespace eblcio {

// Maximum dimensionality supported anywhere in the library. The paper's data
// sets span 1D (HACC) to 4D (S3D).
inline constexpr int kMaxDims = 4;

// Shape of a k-d array. Dimensions are stored slowest-varying first
// (row-major), matching SDRBench conventions (e.g. CESM is 26x1800x3600).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims) {
    EBLCIO_CHECK_ARG(dims.size() >= 1 && dims.size() <= kMaxDims,
                     "shape must have 1..4 dimensions");
    ndims_ = static_cast<int>(dims.size());
    int i = 0;
    for (std::size_t d : dims) {
      EBLCIO_CHECK_ARG(d > 0, "shape dimensions must be positive");
      dims_[i++] = d;
    }
  }
  explicit Shape(std::span<const std::size_t> dims) {
    EBLCIO_CHECK_ARG(dims.size() >= 1 && dims.size() <= kMaxDims,
                     "shape must have 1..4 dimensions");
    ndims_ = static_cast<int>(dims.size());
    for (int i = 0; i < ndims_; ++i) {
      EBLCIO_CHECK_ARG(dims[i] > 0, "shape dimensions must be positive");
      dims_[i] = dims[i];
    }
  }

  int ndims() const { return ndims_; }
  std::size_t dim(int i) const {
    EBLCIO_CHECK_ARG(i >= 0 && i < ndims_, "dimension index out of range");
    return dims_[i];
  }
  std::size_t operator[](int i) const { return dim(i); }

  std::size_t num_elements() const {
    std::size_t n = 1;
    for (int i = 0; i < ndims_; ++i) n *= dims_[i];
    return n;
  }

  // Row-major strides in elements.
  std::array<std::size_t, kMaxDims> strides() const {
    std::array<std::size_t, kMaxDims> s{};
    std::size_t acc = 1;
    for (int i = ndims_ - 1; i >= 0; --i) {
      s[i] = acc;
      acc *= dims_[i];
    }
    return s;
  }

  std::vector<std::size_t> dims_vector() const {
    return std::vector<std::size_t>(dims_.begin(), dims_.begin() + ndims_);
  }

  friend bool operator==(const Shape& a, const Shape& b) {
    if (a.ndims_ != b.ndims_) return false;
    for (int i = 0; i < a.ndims_; ++i)
      if (a.dims_[i] != b.dims_[i]) return false;
    return true;
  }

 private:
  int ndims_ = 0;
  std::array<std::size_t, kMaxDims> dims_{};
};

// Non-owning typed view over a dense row-major buffer.
template <typename T>
class NdView {
 public:
  NdView(T* data, Shape shape) : data_(data), shape_(shape) {
    EBLCIO_CHECK_ARG(data != nullptr, "NdView over null buffer");
  }

  const Shape& shape() const { return shape_; }
  int ndims() const { return shape_.ndims(); }
  std::size_t num_elements() const { return shape_.num_elements(); }

  T* data() const { return data_; }
  std::span<T> span() const { return {data_, num_elements()}; }

  T& operator[](std::size_t linear) const { return data_[linear]; }

  // Multi-index access; unused trailing indices must be 0.
  T& at(std::size_t i0, std::size_t i1 = 0, std::size_t i2 = 0,
        std::size_t i3 = 0) const {
    const auto s = shape_.strides();
    return data_[i0 * s[0] + (shape_.ndims() > 1 ? i1 * s[1] : 0) +
                 (shape_.ndims() > 2 ? i2 * s[2] : 0) +
                 (shape_.ndims() > 3 ? i3 * s[3] : 0)];
  }

 private:
  T* data_;
  Shape shape_;
};

// Owning dense row-major array.
template <typename T>
class NdArray {
 public:
  NdArray() = default;
  explicit NdArray(Shape shape)
      : shape_(shape), data_(shape.num_elements()) {}
  NdArray(Shape shape, std::vector<T> data)
      : shape_(shape), data_(std::move(data)) {
    EBLCIO_CHECK_ARG(data_.size() == shape_.num_elements(),
                     "buffer size does not match shape");
  }

  const Shape& shape() const { return shape_; }
  int ndims() const { return shape_.ndims(); }
  std::size_t num_elements() const { return data_.size(); }
  std::size_t size_bytes() const { return data_.size() * sizeof(T); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::span<T> span() { return {data_.data(), data_.size()}; }
  std::span<const T> span() const { return {data_.data(), data_.size()}; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  NdView<T> view() { return NdView<T>(data_.data(), shape_); }
  NdView<const T> view() const { return NdView<const T>(data_.data(), shape_); }

  T& at(std::size_t i0, std::size_t i1 = 0, std::size_t i2 = 0,
        std::size_t i3 = 0) {
    return view().at(i0, i1, i2, i3);
  }
  const T& at(std::size_t i0, std::size_t i1 = 0, std::size_t i2 = 0,
              std::size_t i3 = 0) const {
    return view().at(i0, i1, i2, i3);
  }

  std::vector<T>&& take() && { return std::move(data_); }

 private:
  Shape shape_;
  std::vector<T> data_;
};

}  // namespace eblcio
