// Aligned plain-text table printer.
//
// Every bench binary reproduces a paper table/figure as rows of text; this
// keeps their output consistent and diff-able (EXPERIMENTS.md records the
// emitted rows).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace eblcio {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  // Inserts a horizontal rule before the next added row.
  void add_rule();

  std::string to_string() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace eblcio
