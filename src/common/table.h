// Aligned plain-text table printer.
//
// Every bench binary reproduces a paper table/figure as rows of text; this
// keeps their output consistent and diff-able (EXPERIMENTS.md records the
// emitted rows).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace eblcio {

// Renders one framed row / horizontal rule at the given column widths —
// the single definition of the table format, shared by the batch
// TextTable printer and the streaming bench::StreamedTable. A cell wider
// than its column overflows it (padding is never negative).
void emit_table_row(std::ostream& os, const std::vector<std::string>& cells,
                    const std::vector<std::size_t>& widths);
void emit_table_rule(std::ostream& os, const std::vector<std::size_t>& widths);

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  // Inserts a horizontal rule before the next added row.
  void add_rule();

  std::string to_string() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace eblcio
