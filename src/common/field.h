// Type-erased scientific field: an NdArray of float or double plus metadata.
//
// This is the unit of data every compressor, I/O tool and metric operates
// on, mirroring the role of a single SDRBench field (e.g. one CESM variable
// or one NYX density snapshot).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/ndarray.h"

namespace eblcio {

enum class DType : std::uint8_t { kFloat32 = 0, kFloat64 = 1 };

inline std::size_t dtype_size(DType t) {
  return t == DType::kFloat32 ? 4 : 8;
}
inline const char* dtype_name(DType t) {
  return t == DType::kFloat32 ? "float" : "double";
}

// A named multi-dimensional floating-point field.
class Field {
 public:
  Field() = default;
  Field(std::string name, NdArray<float> data)
      : name_(std::move(name)), data_(std::move(data)) {}
  Field(std::string name, NdArray<double> data)
      : name_(std::move(name)), data_(std::move(data)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  DType dtype() const {
    return std::holds_alternative<NdArray<float>>(data_) ? DType::kFloat32
                                                         : DType::kFloat64;
  }
  const Shape& shape() const;
  int ndims() const { return shape().ndims(); }
  std::size_t num_elements() const { return shape().num_elements(); }
  std::size_t size_bytes() const {
    return num_elements() * dtype_size(dtype());
  }

  template <typename T>
  const NdArray<T>& as() const {
    EBLCIO_CHECK_ARG(std::holds_alternative<NdArray<T>>(data_),
                     "field dtype mismatch");
    return std::get<NdArray<T>>(data_);
  }
  template <typename T>
  NdArray<T>& as() {
    EBLCIO_CHECK_ARG(std::holds_alternative<NdArray<T>>(data_),
                     "field dtype mismatch");
    return std::get<NdArray<T>>(data_);
  }

  // Raw bytes of the underlying buffer (for I/O and lossless codecs).
  std::span<const std::byte> bytes() const;

  // Value range of the field; used for value-range relative error bounds.
  struct Range {
    double min = 0.0;
    double max = 0.0;
    double span() const { return max - min; }
  };
  Range value_range() const;

  // Visit the underlying typed array: f(const NdArray<T>&).
  template <typename F>
  decltype(auto) visit(F&& f) const {
    return std::visit(std::forward<F>(f), data_);
  }

 private:
  std::string name_;
  std::variant<NdArray<float>, NdArray<double>> data_;
};

}  // namespace eblcio
