// Deflate-class LZ77 codec: hash-chain match finder + Huffman-coded tokens.
//
// Serves two roles from the paper:
//  * as the standalone "Zstd-class" lossless baseline in Fig. 1, and
//  * as the lossless backend the SZ-family compressors run after Huffman
//    coding their quantization codes (SZ2/SZ3 pipeline: predict -> quantize
//    -> Huffman -> Zstd).
#pragma once

#include <cstddef>
#include <span>

#include "common/bytes.h"

namespace eblcio {

struct LzOptions {
  // Maximum hash-chain probes per position; higher = better ratio, slower.
  int max_probes = 32;
  // Window size in bytes (power of two).
  std::size_t window = 1u << 16;
  // Minimum match length worth encoding.
  int min_match = 4;
};

// Compresses `data` into a self-describing blob.
Bytes lz_compress(std::span<const std::byte> data, const LzOptions& opt = {});

// Decompresses a blob produced by lz_compress.
Bytes lz_decompress(std::span<const std::byte> blob);

}  // namespace eblcio
