#include "codec/lz77.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "codec/huffman.h"
#include "codec/intcodec.h"
#include "common/error.h"

namespace eblcio {
namespace {

constexpr std::uint32_t kLzMagic = 0x4c5a4542;  // "BEZL"
constexpr int kMaxMatch = 1 << 12;

inline std::uint32_t hash4(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 17;  // 15-bit hash
}

struct Token {
  std::uint32_t literal_run;
  std::uint32_t match_len;  // 0 on the final token if input ends in literals
  std::uint32_t dist;
};

}  // namespace

Bytes lz_compress(std::span<const std::byte> data, const LzOptions& opt) {
  constexpr std::size_t kHashSize = 1u << 15;
  const std::size_t n = data.size();

  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(n > 0 ? n : 1, -1);

  std::vector<Token> tokens;
  Bytes literals;
  literals.reserve(n / 4);

  std::size_t pos = 0;
  std::size_t lit_start = 0;
  while (pos < n) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (pos + 4 <= n) {
      const std::uint32_t h = hash4(data.data() + pos);
      const std::int64_t old_head = head[h];
      std::int64_t cand = old_head;
      int probes = opt.max_probes;
      while (cand >= 0 && probes-- > 0 &&
             pos - static_cast<std::size_t>(cand) <= opt.window) {
        const std::size_t c = static_cast<std::size_t>(cand);
        // Quick reject on first byte beyond current best.
        if (best_len == 0 || (c + best_len < n && pos + best_len < n &&
                              data[c + best_len] == data[pos + best_len])) {
          std::size_t len = 0;
          const std::size_t max_len =
              std::min<std::size_t>(kMaxMatch, n - pos);
          while (len < max_len && data[c + len] == data[pos + len]) ++len;
          if (len > best_len) {
            best_len = len;
            best_dist = pos - c;
          }
        }
        cand = prev[c];
      }
      head[h] = static_cast<std::int64_t>(pos);
      prev[pos] = old_head;
    }
    if (best_len >= static_cast<std::size_t>(opt.min_match)) {
      tokens.push_back({static_cast<std::uint32_t>(pos - lit_start),
                        static_cast<std::uint32_t>(best_len),
                        static_cast<std::uint32_t>(best_dist)});
      literals.insert(literals.end(), data.begin() + lit_start,
                      data.begin() + pos);
      // Insert hash entries inside the match (sparsely, for speed).
      const std::size_t end = pos + best_len;
      for (std::size_t p = pos + 1; p + 4 <= n && p < end; p += 2) {
        const std::uint32_t h = hash4(data.data() + p);
        prev[p] = head[h];
        head[h] = static_cast<std::int64_t>(p);
      }
      pos = end;
      lit_start = pos;
    } else {
      ++pos;
    }
  }
  if (lit_start < n || tokens.empty()) {
    tokens.push_back({static_cast<std::uint32_t>(n - lit_start), 0, 0});
    literals.insert(literals.end(), data.begin() + lit_start, data.end());
  }

  // Entropy-code the literal bytes; varint the token stream.
  std::vector<std::uint32_t> lit_syms(literals.size());
  for (std::size_t i = 0; i < literals.size(); ++i)
    lit_syms[i] = static_cast<std::uint8_t>(literals[i]);
  Bytes lit_blob = huffman_encode(lit_syms, 256);

  Bytes out;
  append_pod<std::uint32_t>(out, kLzMagic);
  append_pod<std::uint64_t>(out, n);
  append_pod<std::uint64_t>(out, lit_blob.size());
  append_bytes(out, lit_blob);
  append_pod<std::uint64_t>(out, tokens.size());
  for (const Token& t : tokens) {
    varint_encode(out, t.literal_run);
    varint_encode(out, t.match_len);
    if (t.match_len > 0) varint_encode(out, t.dist);
  }
  return out;
}

Bytes lz_decompress(std::span<const std::byte> blob) {
  ByteReader r(blob);
  EBLCIO_CHECK_STREAM(r.read_pod<std::uint32_t>() == kLzMagic,
                      "bad LZ magic");
  const auto orig_size = r.read_pod<std::uint64_t>();
  const auto lit_size = r.read_pod<std::uint64_t>();
  auto lit_blob = r.read_bytes(lit_size);
  auto lit_syms = huffman_decode(lit_blob);
  const auto ntokens = r.read_pod<std::uint64_t>();

  Bytes out;
  out.reserve(orig_size);
  std::size_t lit_pos = 0;
  for (std::uint64_t i = 0; i < ntokens; ++i) {
    const auto lit_run = varint_decode(r);
    const auto match_len = varint_decode(r);
    EBLCIO_CHECK_STREAM(lit_pos + lit_run <= lit_syms.size(),
                        "literal overrun");
    for (std::uint64_t k = 0; k < lit_run; ++k)
      out.push_back(static_cast<std::byte>(lit_syms[lit_pos++]));
    if (match_len > 0) {
      const auto dist = varint_decode(r);
      EBLCIO_CHECK_STREAM(dist > 0 && dist <= out.size(), "bad match dist");
      std::size_t src = out.size() - dist;
      for (std::uint64_t k = 0; k < match_len; ++k)
        out.push_back(out[src + k]);  // overlapping copies are valid
    }
  }
  EBLCIO_CHECK_STREAM(out.size() == orig_size, "LZ size mismatch");
  return out;
}

}  // namespace eblcio
