#include "codec/lz77.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "codec/huffman.h"
#include "codec/intcodec.h"
#include "common/buffer_pool.h"
#include "common/error.h"

namespace eblcio {
namespace {

constexpr std::uint32_t kLzMagic = 0x4c5a4542;  // "BEZL"
constexpr int kMaxMatch = 1 << 12;

inline std::uint32_t hash4(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 17;  // 15-bit hash
}

// Length of the common prefix of a and b, capped at max_len, compared a
// word at a time. Callers guarantee both spans extend max_len bytes.
inline std::size_t match_length(const std::byte* a, const std::byte* b,
                                std::size_t max_len) {
  std::size_t len = 0;
  while (len + 8 <= max_len) {
    std::uint64_t x, y;
    std::memcpy(&x, a + len, 8);
    std::memcpy(&y, b + len, 8);
    const std::uint64_t diff = x ^ y;
    if (diff != 0)
      return len + (static_cast<std::size_t>(std::countr_zero(diff)) >> 3);
    len += 8;
  }
  while (len < max_len && a[len] == b[len]) ++len;
  return len;
}

struct Token {
  std::uint32_t literal_run;
  std::uint32_t match_len;  // 0 on the final token if input ends in literals
  std::uint32_t dist;
};

// Serializes the found tokens + literals into the wire format (unchanged
// since the first version of this codec: header, Huffman-coded literal
// bytes, varint token stream).
Bytes emit_blob(std::size_t n, const std::vector<Token>& tokens,
                const Bytes& literals) {
  std::vector<std::uint32_t> lit_syms(literals.size());
  for (std::size_t i = 0; i < literals.size(); ++i)
    lit_syms[i] = static_cast<std::uint8_t>(literals[i]);
  Bytes lit_blob = huffman_encode(lit_syms, 256);

  // Pooled output: lz_compress runs once per zone/slab in the streamed
  // pipelines, so its blob (and the framed literal blob) recycle.
  Bytes out = BufferPool::global().acquire(28 + lit_blob.size() +
                                           tokens.size() * 6);
  append_pod<std::uint32_t>(out, kLzMagic);
  append_pod<std::uint64_t>(out, n);
  append_pod<std::uint64_t>(out, lit_blob.size());
  append_bytes(out, lit_blob);
  BufferPool::global().release(std::move(lit_blob));
  append_pod<std::uint64_t>(out, tokens.size());
  for (const Token& t : tokens) {
    varint_encode(out, t.literal_run);
    varint_encode(out, t.match_len);
    if (t.match_len > 0) varint_encode(out, t.dist);
  }
  return out;
}

// The shared greedy tokenizer: `find` is the per-position match search,
// returning the best (len, dist) under the original chain semantics —
// candidates in recency order, a fixed probe budget, strictly-improving
// acceptance — and `insert` adds one position to the search structure.
// Both matchers below plug into this loop, so their token streams are
// identical by construction.
template <typename Find, typename Insert>
Bytes tokenize(std::span<const std::byte> data, const LzOptions& opt,
               Find find, Insert insert) {
  const std::size_t n = data.size();
  std::vector<Token> tokens;
  Bytes literals;
  literals.reserve(n / 4);

  std::size_t pos = 0;
  std::size_t lit_start = 0;
  while (pos < n) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (pos + 4 <= n) find(pos, &best_len, &best_dist);
    if (best_len >= static_cast<std::size_t>(opt.min_match)) {
      tokens.push_back({static_cast<std::uint32_t>(pos - lit_start),
                        static_cast<std::uint32_t>(best_len),
                        static_cast<std::uint32_t>(best_dist)});
      literals.insert(literals.end(), data.begin() + lit_start,
                      data.begin() + pos);
      // Insert hash entries inside the match (sparsely, for speed).
      const std::size_t end = pos + best_len;
      for (std::size_t p = pos + 1; p + 4 <= n && p < end; p += 2) insert(p);
      pos = end;
      lit_start = pos;
    } else {
      ++pos;
    }
  }
  if (lit_start < n || tokens.empty()) {
    tokens.push_back({static_cast<std::uint32_t>(n - lit_start), 0, 0});
    literals.insert(literals.end(), data.begin() + lit_start, data.end());
  }
  return emit_blob(n, tokens, literals);
}

// Evaluates candidate `c` against position `pos` exactly as the original
// chain walk did. Two exact rejects skip the full extension without
// affecting the output: (a) a mismatch one byte past the current best
// proves len <= best_len; (b) when min_match >= 4, a first-4-bytes
// mismatch proves the candidate is a hash collision that cannot reach
// min_match (sub-minimum best_len updates only ever gate which later
// candidates get *evaluated*, never which match is finally emitted).
inline void consider_candidate(const std::byte* base, std::size_t n,
                               std::size_t pos, std::size_t c,
                               std::size_t max_len, bool prefix_reject,
                               std::uint32_t pos4, std::size_t* best_len,
                               std::size_t* best_dist) {
  if (prefix_reject) {
    std::uint32_t c4;
    std::memcpy(&c4, base + c, 4);
    if (c4 != pos4) return;
  }
  if (*best_len != 0 && !(c + *best_len < n && pos + *best_len < n &&
                          base[c + *best_len] == base[pos + *best_len]))
    return;
  // max_len <= n - pos < n - c, so both sides extend max_len bytes.
  const std::size_t len = match_length(base + c, base + pos, max_len);
  if (len > *best_len) {
    *best_len = len;
    *best_dist = pos - c;
  }
}

// Match finder for windows up to 64 KiB (every in-tree caller): successor
// links are 16-bit gaps, so the chain working set stays small enough to be
// cache-resident. A gap that cannot be represented would land out of the
// window for every position that still reaches its predecessor, so the
// sentinel is exactly equivalent to following the link and failing the
// window check. HeadIndex narrows the bucket-head table to the smallest
// type the input length fits (128 KiB of heads instead of 256 KiB for the
// common uint32_t case) — the head values are the same absolute positions
// either way, so the search is unchanged.
template <typename HeadIndex>
Bytes compress_small_window(std::span<const std::byte> data,
                            const LzOptions& opt) {
  constexpr std::size_t kHashSize = 1u << 15;
  constexpr HeadIndex kNil = std::numeric_limits<HeadIndex>::max();
  constexpr std::uint16_t kFarGap = 0xFFFF;  // no (reachable) predecessor
  const std::size_t n = data.size();
  const std::byte* base = data.data();
  const bool prefix_reject = opt.min_match >= 4;

  std::vector<HeadIndex> head(kHashSize, kNil);
  std::vector<std::uint16_t> gap(n > 0 ? n : 1, kFarGap);

  const auto link = [&](std::size_t p, HeadIndex predecessor) {
    // Stored as gap-1: representable predecessor gaps are 1..65535, and a
    // larger gap is unreachable within the <= 65536-byte window anyway.
    if (predecessor == kNil ||
        p - static_cast<std::size_t>(predecessor) > 0xFFFF)
      return;
    gap[p] =
        static_cast<std::uint16_t>(p - static_cast<std::size_t>(predecessor) -
                                   1);
  };
  const auto insert = [&](std::size_t p) {
    const std::uint32_t h = hash4(base + p);
    link(p, head[h]);
    head[h] = static_cast<HeadIndex>(p);
  };
  const auto find = [&](std::size_t pos, std::size_t* best_len,
                        std::size_t* best_dist) {
    const std::uint32_t h = hash4(base + pos);
    std::uint32_t pos4;
    std::memcpy(&pos4, base + pos, 4);
    const std::size_t max_len = std::min<std::size_t>(kMaxMatch, n - pos);
    std::size_t c = (head[h] == kNil) ? std::numeric_limits<std::size_t>::max()
                                      : static_cast<std::size_t>(head[h]);
    int probes = opt.max_probes;
    while (c != std::numeric_limits<std::size_t>::max() && probes-- > 0 &&
           pos - c <= opt.window) {
      consider_candidate(base, n, pos, c, max_len, prefix_reject, pos4,
                         best_len, best_dist);
      const std::uint16_t g = gap[c];
      c = (g == kFarGap) ? std::numeric_limits<std::size_t>::max() : c - g - 1;
    }
    link(pos, head[h]);
    head[h] = static_cast<HeadIndex>(pos);
  };
  return tokenize(data, opt, find, insert);
}

// General match finder: absolute predecessor indices (uint32_t up to 4 GiB
// inputs, uint64_t beyond), identical search semantics.
template <typename Index>
Bytes compress_indexed(std::span<const std::byte> data, const LzOptions& opt) {
  constexpr std::size_t kHashSize = 1u << 15;
  constexpr Index kNil = std::numeric_limits<Index>::max();
  const std::size_t n = data.size();
  const std::byte* base = data.data();
  const bool prefix_reject = opt.min_match >= 4;

  std::vector<Index> head(kHashSize, kNil);
  std::vector<Index> prev(n > 0 ? n : 1, kNil);

  const auto insert = [&](std::size_t p) {
    const std::uint32_t h = hash4(base + p);
    prev[p] = head[h];
    head[h] = static_cast<Index>(p);
  };
  const auto find = [&](std::size_t pos, std::size_t* best_len,
                        std::size_t* best_dist) {
    const std::uint32_t h = hash4(base + pos);
    std::uint32_t pos4;
    std::memcpy(&pos4, base + pos, 4);
    const std::size_t max_len = std::min<std::size_t>(kMaxMatch, n - pos);
    Index cand = head[h];
    int probes = opt.max_probes;
    while (cand != kNil && probes-- > 0 &&
           pos - static_cast<std::size_t>(cand) <= opt.window) {
      const std::size_t c = static_cast<std::size_t>(cand);
      consider_candidate(base, n, pos, c, max_len, prefix_reject, pos4,
                         best_len, best_dist);
      cand = prev[c];
    }
    prev[pos] = head[h];
    head[h] = static_cast<Index>(pos);
  };
  return tokenize(data, opt, find, insert);
}

}  // namespace

Bytes lz_compress(std::span<const std::byte> data, const LzOptions& opt) {
  if (opt.window <= (1u << 16)) {
    if (data.size() < std::numeric_limits<std::uint32_t>::max())
      return compress_small_window<std::uint32_t>(data, opt);
    return compress_small_window<std::uint64_t>(data, opt);
  }
  if (data.size() < std::numeric_limits<std::uint32_t>::max())
    return compress_indexed<std::uint32_t>(data, opt);
  return compress_indexed<std::uint64_t>(data, opt);
}

Bytes lz_decompress(std::span<const std::byte> blob) {
  ByteReader r(blob);
  EBLCIO_CHECK_STREAM(r.read_pod<std::uint32_t>() == kLzMagic,
                      "bad LZ magic");
  const auto orig_size = r.read_pod<std::uint64_t>();
  const auto lit_size = r.read_pod<std::uint64_t>();
  auto lit_blob = r.read_bytes(lit_size);
  const auto lit_syms = huffman_decode(lit_blob);
  const auto ntokens = r.read_pod<std::uint64_t>();

  // Narrow the literal symbols to bytes once, so literal runs below are
  // bulk copies instead of per-byte symbol casts.
  Bytes lits(lit_syms.size());
  for (std::size_t i = 0; i < lit_syms.size(); ++i)
    lits[i] = static_cast<std::byte>(lit_syms[i]);

  Bytes out;
  out.reserve(orig_size);
  std::size_t lit_pos = 0;
  for (std::uint64_t i = 0; i < ntokens; ++i) {
    const auto lit_run = varint_decode(r);
    const auto match_len = varint_decode(r);
    // Wrap-safe bounds: lit_pos <= lits.size() and out.size() <= orig_size
    // are loop invariants, so the subtractions cannot underflow — a forged
    // run/length near UINT64_MAX fails here instead of overflowing a sum
    // (or a resize) and corrupting memory.
    EBLCIO_CHECK_STREAM(lit_run <= lits.size() - lit_pos, "literal overrun");
    EBLCIO_CHECK_STREAM(lit_run <= orig_size - out.size(),
                        "LZ output overrun");
    out.insert(out.end(), lits.begin() + static_cast<std::ptrdiff_t>(lit_pos),
               lits.begin() + static_cast<std::ptrdiff_t>(lit_pos + lit_run));
    lit_pos += lit_run;
    if (match_len > 0) {
      const auto dist = varint_decode(r);
      EBLCIO_CHECK_STREAM(dist > 0 && dist <= out.size(), "bad match dist");
      EBLCIO_CHECK_STREAM(match_len <= orig_size - out.size(),
                          "LZ output overrun");
      const std::size_t old_size = out.size();
      out.resize(old_size + match_len);
      std::byte* dst = out.data() + old_size;
      const std::byte* src = out.data() + old_size - dist;
      if (dist >= match_len) {
        std::memcpy(dst, src, match_len);
      } else {
        // Overlapping match: the copy replicates the trailing `dist`-byte
        // pattern, so it must run strictly forward.
        for (std::uint64_t k = 0; k < match_len; ++k) dst[k] = src[k];
      }
    }
  }
  EBLCIO_CHECK_STREAM(out.size() == orig_size, "LZ size mismatch");
  return out;
}

}  // namespace eblcio
