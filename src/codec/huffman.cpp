#include "codec/huffman.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <numeric>
#include <queue>

#include "codec/bitstream.h"
#include "common/buffer_pool.h"
#include "common/error.h"

namespace eblcio {
namespace {

// Reverses the low `n` bits of `code` so an MSB-first canonical code can be
// emitted through the LSB-first BitWriter.
std::uint64_t reverse_bits(std::uint64_t code, int n) {
  std::uint64_t r = 0;
  for (int i = 0; i < n; ++i) {
    r = (r << 1) | (code & 1);
    code >>= 1;
  }
  return r;
}

struct TreeNode {
  std::uint64_t freq;
  std::int32_t left;    // -1 for leaf
  std::int32_t right;
  std::uint32_t symbol; // valid for leaves
};

}  // namespace

std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> freqs) {
  const std::size_t n = freqs.size();
  std::vector<std::uint8_t> lengths(n, 0);

  std::vector<std::uint32_t> present;
  for (std::size_t s = 0; s < n; ++s)
    if (freqs[s] > 0) present.push_back(static_cast<std::uint32_t>(s));
  if (present.empty()) return lengths;
  if (present.size() == 1) {
    lengths[present[0]] = 1;
    return lengths;
  }

  // Standard two-queue Huffman tree construction.
  std::vector<TreeNode> nodes;
  nodes.reserve(present.size() * 2);
  using Entry = std::pair<std::uint64_t, std::int32_t>;  // (freq, node index)
  auto cmp = [](const Entry& a, const Entry& b) { return a.first > b.first; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (std::uint32_t s : present) {
    nodes.push_back({freqs[s], -1, -1, s});
    heap.emplace(freqs[s], static_cast<std::int32_t>(nodes.size() - 1));
  }
  while (heap.size() > 1) {
    const auto a = heap.top();
    heap.pop();
    const auto b = heap.top();
    heap.pop();
    nodes.push_back({a.first + b.first, a.second, b.second, 0});
    heap.emplace(a.first + b.first,
                 static_cast<std::int32_t>(nodes.size() - 1));
  }

  // Depth-first traversal to assign depths.
  struct Item {
    std::int32_t node;
    int depth;
  };
  std::vector<Item> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    const Item it = stack.back();
    stack.pop_back();
    const TreeNode& nd = nodes[it.node];
    if (nd.left < 0) {
      lengths[nd.symbol] = static_cast<std::uint8_t>(std::max(it.depth, 1));
    } else {
      stack.push_back({nd.left, it.depth + 1});
      stack.push_back({nd.right, it.depth + 1});
    }
  }

  // Length-limit with a Kraft-sum fix-up: clamp overlong codes, then demote
  // codes (increase their length) until the Kraft inequality holds again.
  bool overflow = false;
  for (std::uint32_t s : present)
    if (lengths[s] > kMaxHuffmanBits) {
      lengths[s] = kMaxHuffmanBits;
      overflow = true;
    }
  if (overflow) {
    auto kraft = [&]() {
      long double k = 0;
      for (std::uint32_t s : present)
        k += std::pow(2.0L, -static_cast<int>(lengths[s]));
      return k;
    };
    // Sort symbols by ascending frequency so the cheapest codes get demoted.
    std::vector<std::uint32_t> order = present;
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      return freqs[a] < freqs[b];
    });
    std::size_t i = 0;
    while (kraft() > 1.0L) {
      std::uint32_t s = order[i % order.size()];
      if (lengths[s] < kMaxHuffmanBits) ++lengths[s];
      ++i;
    }
  }
  return lengths;
}

namespace {

// Canonical code assignment: symbols ordered by (length, symbol).
struct CanonicalCodes {
  std::vector<std::uint8_t> lengths;
  std::vector<std::uint64_t> codes;  // MSB-first code values
};

CanonicalCodes assign_canonical(std::vector<std::uint8_t> lengths) {
  CanonicalCodes cc;
  cc.codes.assign(lengths.size(), 0);
  std::vector<std::uint32_t> order;
  for (std::uint32_t s = 0; s < lengths.size(); ++s)
    if (lengths[s] > 0) order.push_back(s);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
    return a < b;
  });
  std::uint64_t code = 0;
  int prev_len = 0;
  for (std::uint32_t s : order) {
    code <<= (lengths[s] - prev_len);
    cc.codes[s] = code;
    ++code;
    prev_len = lengths[s];
  }
  cc.lengths = std::move(lengths);
  return cc;
}

void write_lengths_rle(Bytes& out, std::span<const std::uint8_t> lengths) {
  // (length, run) pairs; run is u32. Compact because quantization-code
  // alphabets are sparse away from the center.
  std::uint32_t i = 0;
  std::vector<std::pair<std::uint8_t, std::uint32_t>> runs;
  while (i < lengths.size()) {
    std::uint32_t j = i;
    while (j < lengths.size() && lengths[j] == lengths[i]) ++j;
    runs.emplace_back(lengths[i], j - i);
    i = j;
  }
  append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(runs.size()));
  for (auto [len, run] : runs) {
    append_pod<std::uint8_t>(out, len);
    append_pod<std::uint32_t>(out, run);
  }
}

std::vector<std::uint8_t> read_lengths_rle(ByteReader& r,
                                           std::uint32_t alphabet_size) {
  const auto nruns = r.read_pod<std::uint32_t>();
  std::vector<std::uint8_t> lengths;
  lengths.reserve(alphabet_size);
  for (std::uint32_t k = 0; k < nruns; ++k) {
    const auto len = r.read_pod<std::uint8_t>();
    const auto run = r.read_pod<std::uint32_t>();
    // A corrupt length would index the canonical decode tables (sized
    // kMaxHuffmanBits + 2) out of bounds.
    EBLCIO_CHECK_STREAM(len <= kMaxHuffmanBits,
                        "huffman code length out of range");
    EBLCIO_CHECK_STREAM(lengths.size() + run <= alphabet_size,
                        "huffman length table overflow");
    lengths.insert(lengths.end(), run, len);
  }
  EBLCIO_CHECK_STREAM(lengths.size() == alphabet_size,
                      "huffman length table underflow");
  return lengths;
}

// Parsed blob header plus the canonical decode tables both decoders share.
struct DecodeSetup {
  std::uint64_t count = 0;
  std::uint32_t alphabet_size = 0;
  std::vector<std::uint8_t> lengths;
  std::span<const std::byte> payload;
  // Symbols ordered by (length, symbol) — canonical index order.
  std::vector<std::uint32_t> order;
  std::array<std::uint64_t, kMaxHuffmanBits + 2> first_code{};
  std::array<std::uint32_t, kMaxHuffmanBits + 2> first_index{};
  std::array<std::uint32_t, kMaxHuffmanBits + 2> num_codes{};
  int max_len = 0;
};

DecodeSetup decode_setup(std::span<const std::byte> blob) {
  DecodeSetup s;
  ByteReader r(blob);
  s.count = r.read_pod<std::uint64_t>();
  s.alphabet_size = r.read_pod<std::uint32_t>();
  s.lengths = read_lengths_rle(r, s.alphabet_size);
  const auto payload_size = r.read_pod<std::uint64_t>();
  s.payload = r.read_bytes(payload_size);
  // Every legitimate symbol costs at least one payload bit; a corrupt
  // count must not drive a giant allocation below. Computed as a byte
  // floor so the comparison cannot overflow for counts near UINT64_MAX.
  const std::uint64_t min_bytes = s.count / 8 + (s.count % 8 != 0 ? 1 : 0);
  EBLCIO_CHECK_STREAM(min_bytes <= s.payload.size(),
                      "huffman symbol count exceeds payload");

  std::size_t npresent = 0;
  for (std::uint32_t sym = 0; sym < s.alphabet_size; ++sym)
    if (s.lengths[sym] > 0) ++npresent;
  s.order.reserve(npresent);
  for (std::uint32_t sym = 0; sym < s.alphabet_size; ++sym)
    if (s.lengths[sym] > 0) s.order.push_back(sym);
  std::sort(s.order.begin(), s.order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (s.lengths[a] != s.lengths[b])
                return s.lengths[a] < s.lengths[b];
              return a < b;
            });

  for (std::uint32_t sym : s.order) {
    ++s.num_codes[s.lengths[sym]];
    s.max_len = std::max<int>(s.max_len, s.lengths[sym]);
  }
  std::uint64_t code = 0;
  std::uint32_t idx = 0;
  for (int len = 1; len <= kMaxHuffmanBits; ++len) {
    s.first_code[len] = code;
    s.first_index[len] = idx;
    code = (code + s.num_codes[len]) << 1;
    idx += s.num_codes[len];
  }
  return s;
}

// Per-bit canonical decode of one symbol; shared by the reference decoder
// and the LUT decoder's long-code fallback. Throws on invalid codes.
std::uint32_t decode_symbol_slow(const DecodeSetup& s, BitReader& br) {
  std::uint64_t code = 0;
  int len = 0;
  for (;;) {
    EBLCIO_CHECK_STREAM(len < kMaxHuffmanBits, "invalid huffman code");
    code = (code << 1) | br.get_bit();
    ++len;
    if (s.num_codes[len] > 0 &&
        code < s.first_code[len] + s.num_codes[len]) {
      EBLCIO_CHECK_STREAM(code >= s.first_code[len], "invalid huffman code");
      return s.order[s.first_index[len] + (code - s.first_code[len])];
    }
  }
}

// True for the degenerate streams both decoders shortcut identically;
// `*result` receives the decoded stream when so.
bool decode_degenerate(const DecodeSetup& s,
                       std::vector<std::uint32_t>* result) {
  if (s.count == 0) {
    result->clear();
    return true;
  }
  EBLCIO_CHECK_STREAM(!s.order.empty(), "huffman stream with empty alphabet");
  if (s.order.size() == 1) {
    result->assign(s.count, s.order[0]);
    return true;
  }
  return false;
}

// --- Encoder fast path -----------------------------------------------------

// Alphabets past this bound skip the pooled scratch (whose dense tables are
// sized to the alphabet) and take the reference path; 2^17 covers the
// SZ-family 65537-entry quantizer alphabet with headroom.
constexpr std::uint32_t kEncoderMaxScratchAlphabet = 1u << 17;
// Histogram lane counters are u32; a lane only ever sees every 4th stream
// position, so counts stay in range while the stream is below 4 * 2^32.
constexpr std::uint64_t kEncoderMaxSplitSymbols = std::uint64_t{1} << 33;
constexpr int kHistLanes = 4;

// Thread-local working set for huffman_encode: repeated encodes (per zone,
// per slab) touch no allocator at all once warm. `lanes` keeps an all-zero
// invariant between calls — the merge scan below zeroes exactly the entries
// the histogram touched. The dense `emit` table is never cleared: entries
// are written for every symbol present in the current stream before the
// emit loop reads them, and absent symbols are never looked up.
struct EncoderScratch {
  struct EmitEntry {
    std::uint32_t code = 0;  // bit-reversed, LSB-first
    std::uint32_t len = 0;
  };
  std::vector<std::uint32_t> lanes;  // kHistLanes * alphabet split counters
  std::vector<EmitEntry> emit;       // dense per-symbol emit table
  // Compact per-present-symbol arrays (parallel; `present` ascending).
  std::vector<std::uint32_t> present;
  std::vector<std::uint64_t> freqs;
  std::vector<std::uint8_t> lengths;
  // Tree-build scratch.
  std::vector<std::uint32_t> order;    // indices into `present`
  std::vector<std::uint64_t> weights;  // Moffat node weights, then depths
  std::vector<std::int32_t> parents;
  std::vector<std::pair<std::uint8_t, std::uint32_t>> runs;  // RLE header

  void ensure(std::uint32_t alphabet) {
    const std::size_t lane_slots =
        static_cast<std::size_t>(kHistLanes) * alphabet;
    if (lanes.size() < lane_slots) lanes.resize(lane_slots, 0);
    if (emit.size() < alphabet) emit.resize(alphabet);
  }
};

EncoderScratch& encoder_scratch() {
  thread_local EncoderScratch sc;
  return sc;
}

// Heap-based length build over the compact (present, freqs) lists —
// line-for-line the algorithm of huffman_code_lengths (same node insertion
// order, same comparator, same Kraft fix-up), so its tie-break behavior is
// exactly the one the frozen reference blobs were produced with. Writes
// sc.lengths (parallel to sc.present).
void heap_lengths_compact(EncoderScratch& sc) {
  const std::size_t m = sc.present.size();
  sc.lengths.assign(m, 0);
  if (m == 1) {
    sc.lengths[0] = 1;
    return;
  }
  std::vector<TreeNode> nodes;
  nodes.reserve(m * 2);
  using Entry = std::pair<std::uint64_t, std::int32_t>;
  auto cmp = [](const Entry& a, const Entry& b) { return a.first > b.first; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (std::uint32_t i = 0; i < m; ++i) {
    nodes.push_back({sc.freqs[i], -1, -1, i});
    heap.emplace(sc.freqs[i], static_cast<std::int32_t>(nodes.size() - 1));
  }
  while (heap.size() > 1) {
    const auto a = heap.top();
    heap.pop();
    const auto b = heap.top();
    heap.pop();
    nodes.push_back({a.first + b.first, a.second, b.second, 0});
    heap.emplace(a.first + b.first,
                 static_cast<std::int32_t>(nodes.size() - 1));
  }
  struct Item {
    std::int32_t node;
    int depth;
  };
  std::vector<Item> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    const Item it = stack.back();
    stack.pop_back();
    const TreeNode& nd = nodes[it.node];
    if (nd.left < 0) {
      sc.lengths[nd.symbol] = static_cast<std::uint8_t>(std::max(it.depth, 1));
    } else {
      stack.push_back({nd.left, it.depth + 1});
      stack.push_back({nd.right, it.depth + 1});
    }
  }
  bool overflow = false;
  for (std::size_t i = 0; i < m; ++i)
    if (sc.lengths[i] > kMaxHuffmanBits) {
      sc.lengths[i] = kMaxHuffmanBits;
      overflow = true;
    }
  if (overflow) {
    auto kraft = [&]() {
      long double k = 0;
      for (std::size_t i = 0; i < m; ++i)
        k += std::pow(2.0L, -static_cast<int>(sc.lengths[i]));
      return k;
    };
    std::vector<std::uint32_t> order(m);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return sc.freqs[a] < sc.freqs[b];
              });
    std::size_t i = 0;
    while (kraft() > 1.0L) {
      const std::uint32_t s = order[i % order.size()];
      if (sc.lengths[s] < kMaxHuffmanBits) ++sc.lengths[s];
      ++i;
    }
  }
}

// In-place two-queue (Moffat-style) length construction over the compact
// lists: leaves sorted ascending by (freq, symbol) form one queue, merged
// nodes append to a second in nondecreasing weight order, so every merge
// pops the two smallest heads in O(1) — no heap, no per-merge log factor.
//
// Wire safety: the blob is frozen, and the reference builder's lengths
// depend on std::priority_queue's pop order among equal weights. When no
// merge step is tie-ambiguous — no *third* candidate's weight equals the
// second pick's — the merged pair is forced as a multiset at every step,
// so any correct builder produces the same tree depths (the two picks may
// swap roles on an a==b tie, but both children sit at the same depth).
// Each merge therefore checks the next head against the second pick and
// returns false on a tie, and the caller falls back to the retained heap
// builder: identical lengths by the forcing argument on this path,
// identical by construction on the other. Depths past kMaxHuffmanBits
// also bail out so the Kraft fix-up runs only in its original form.
bool moffat_lengths(EncoderScratch& sc) {
  const std::size_t m = sc.present.size();
  sc.lengths.assign(m, 0);
  if (m == 1) {
    sc.lengths[0] = 1;
    return true;
  }
  sc.order.resize(m);
  std::iota(sc.order.begin(), sc.order.end(), 0u);
  std::sort(sc.order.begin(), sc.order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (sc.freqs[a] != sc.freqs[b]) return sc.freqs[a] < sc.freqs[b];
              return sc.present[a] < sc.present[b];
            });
  sc.weights.resize(2 * m - 1);
  sc.parents.assign(2 * m - 1, -1);
  for (std::size_t i = 0; i < m; ++i) sc.weights[i] = sc.freqs[sc.order[i]];
  std::size_t leaf = 0, inter = m, next = m;
  auto smallest = [&]() {
    if (leaf < m && (inter >= next || sc.weights[leaf] <= sc.weights[inter]))
      return leaf++;
    return inter++;
  };
  for (std::size_t k = 0; k + 1 < m; ++k) {
    const std::size_t a = smallest();
    const std::size_t b = smallest();
    std::uint64_t w3 = 0;
    bool have3 = false;
    if (leaf < m) {
      w3 = sc.weights[leaf];
      have3 = true;
    }
    if (inter < next && (!have3 || sc.weights[inter] < w3)) {
      w3 = sc.weights[inter];
      have3 = true;
    }
    if (have3 && w3 == sc.weights[b]) return false;  // tie-ambiguous merge
    sc.weights[next] = sc.weights[a] + sc.weights[b];
    sc.parents[a] = sc.parents[b] = static_cast<std::int32_t>(next);
    ++next;
  }
  // A parent always has a higher node index than its children, so one
  // reverse pass resolves every depth from the root. Weights are dead
  // after construction; reuse the array as depth storage.
  sc.weights[2 * m - 2] = 0;
  for (std::size_t i = 2 * m - 2; i-- > 0;)
    sc.weights[i] = sc.weights[static_cast<std::size_t>(sc.parents[i])] + 1;
  for (std::size_t i = 0; i < m; ++i) {
    if (sc.weights[i] > kMaxHuffmanBits) return false;  // needs Kraft fix-up
    sc.lengths[sc.order[i]] = static_cast<std::uint8_t>(sc.weights[i]);
  }
  return true;
}

}  // namespace

Bytes huffman_encode(std::span<const std::uint32_t> symbols,
                     std::uint32_t alphabet_size) {
  // Inputs outside the scratch bounds take the reference path, which emits
  // byte-identical blobs (the overhaul is wire-frozen, so the two paths
  // are interchangeable per input).
  if (alphabet_size > kEncoderMaxScratchAlphabet ||
      symbols.size() > kEncoderMaxSplitSymbols)
    return huffman_encode_reference(symbols, alphabet_size);

  // Bounds pre-scan: one vectorizable max/min reduction replaces the
  // per-symbol branch the histogram loop used to carry; the same
  // InvalidArgument fires on the same inputs. The min/max also bound the
  // alphabet range the merge scan below must walk.
  std::uint32_t max_sym = 0;
  std::uint32_t min_sym = ~0u;
  for (std::uint32_t s : symbols) {
    max_sym = std::max(max_sym, s);
    min_sym = std::min(min_sym, s);
  }
  EBLCIO_CHECK_ARG(symbols.empty() || max_sym < alphabet_size,
                   "symbol outside alphabet");

  EncoderScratch& sc = encoder_scratch();
  sc.ensure(alphabet_size);

  // Histogram with K-way split counters: consecutive stream positions
  // count into distinct lanes, so a run of one repeated symbol no longer
  // serializes on a store-to-load dependency against a single counter.
  const std::size_t stride = alphabet_size;
  std::uint32_t* l0 = sc.lanes.data();
  std::uint32_t* l1 = l0 + stride;
  std::uint32_t* l2 = l1 + stride;
  std::uint32_t* l3 = l2 + stride;
  const std::uint32_t* sp = symbols.data();
  const std::size_t n = symbols.size();
  std::size_t i = 0;
  for (; i + kHistLanes <= n; i += kHistLanes) {
    ++l0[sp[i]];
    ++l1[sp[i + 1]];
    ++l2[sp[i + 2]];
    ++l3[sp[i + 3]];
  }
  for (; i < n; ++i) ++l0[sp[i]];

  // Merge scan over the touched range only: sums the lanes into the
  // compact frequency list and restores the lanes' all-zero invariant in
  // the same pass, so no memset over the full alphabet ever runs.
  sc.present.clear();
  sc.freqs.clear();
  if (n > 0) {
    for (std::uint32_t s = min_sym; s <= max_sym; ++s) {
      const std::uint64_t f = static_cast<std::uint64_t>(l0[s]) + l1[s] +
                              l2[s] + l3[s];
      l0[s] = l1[s] = l2[s] = l3[s] = 0;
      if (f > 0) {
        sc.present.push_back(s);
        sc.freqs.push_back(f);
      }
    }
  }

  const std::size_t m = sc.present.size();
  if (m > 0 && !moffat_lengths(sc)) heap_lengths_compact(sc);

  // RLE header runs straight off the compact lists: gaps between present
  // symbols are zero-length runs, adjacent equal lengths merge — exactly
  // the maximal runs write_lengths_rle produces over the dense table.
  sc.runs.clear();
  auto emit_run = [&](std::uint8_t len, std::uint32_t count) {
    if (!sc.runs.empty() && sc.runs.back().first == len)
      sc.runs.back().second += count;
    else
      sc.runs.emplace_back(len, count);
  };
  std::uint32_t pos = 0;
  for (std::size_t k = 0; k < m; ++k) {
    if (sc.present[k] > pos) emit_run(0, sc.present[k] - pos);
    emit_run(sc.lengths[k], 1);
    pos = sc.present[k] + 1;
  }
  if (pos < alphabet_size) emit_run(0, alphabet_size - pos);

  // Canonical code assignment over the compact lists; `present` ascends,
  // so a stable sort by length yields the (length, symbol) order.
  sc.order.resize(m);
  std::iota(sc.order.begin(), sc.order.end(), 0u);
  std::stable_sort(sc.order.begin(), sc.order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return sc.lengths[a] < sc.lengths[b];
                   });
  std::uint64_t code = 0;
  int prev_len = 0;
  std::size_t total_bits = 0;
  for (std::uint32_t idx : sc.order) {
    const int len = sc.lengths[idx];
    code <<= (len - prev_len);
    sc.emit[sc.present[idx]] = {
        static_cast<std::uint32_t>(reverse_bits(code, len)),
        static_cast<std::uint32_t>(len)};
    ++code;
    prev_len = len;
    total_bits += sc.freqs[idx] * static_cast<std::size_t>(len);
  }

  // Exact-size pooled acquire from the length pass: header + payload are
  // both known now, so low-entropy-but-long inputs no longer outgrow the
  // old symbols/2 guess mid-emit (their RLE header alone could exceed it).
  const std::size_t payload_bytes = (total_bits + 7) / 8;
  const std::size_t header_bytes = 8 + 4 + 4 + 5 * sc.runs.size() + 8;
  Bytes out = BufferPool::global().acquire(header_bytes + payload_bytes);
  append_pod<std::uint64_t>(out, symbols.size());
  append_pod<std::uint32_t>(out, alphabet_size);
  append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(sc.runs.size()));
  for (auto [len, run] : sc.runs) {
    append_pod<std::uint8_t>(out, len);
    append_pod<std::uint32_t>(out, run);
  }
  append_pod<std::uint64_t>(out, payload_bytes);

  // Batched emit directly into the framed blob: a local 64-bit accumulator
  // packs multiple bit-reversed codes and flushes four bytes at a time —
  // the encode-side mirror of the decoder's refill_acc discipline. The
  // flush keeps nbits < 32 ahead of every symbol, so a maximal 32-bit code
  // still fits the accumulator, and the byte stream is identical to
  // BitWriter's LSB-first little-endian packing.
  const std::size_t payload_off = out.size();
  out.resize(payload_off + payload_bytes);
  std::byte* dst = out.data() + payload_off;
  std::size_t off = 0;
  std::uint64_t acc = 0;
  int nbits = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const EncoderScratch::EmitEntry e = sc.emit[sp[k]];
    acc |= static_cast<std::uint64_t>(e.code) << nbits;
    nbits += static_cast<int>(e.len);
    if (nbits >= 32) {
      const std::uint32_t w = static_cast<std::uint32_t>(acc);
      std::memcpy(dst + off, &w, 4);
      off += 4;
      acc >>= 32;
      nbits -= 32;
    }
  }
  while (nbits > 0) {  // zero-padded tail, matching BitWriter::take()
    dst[off++] = static_cast<std::byte>(acc & 0xFF);
    acc >>= 8;
    nbits -= 8;
  }
  return out;
}

Bytes huffman_encode_reference(std::span<const std::uint32_t> symbols,
                               std::uint32_t alphabet_size) {
  std::vector<std::uint64_t> freqs(alphabet_size, 0);
  for (std::uint32_t s : symbols) {
    EBLCIO_CHECK_ARG(s < alphabet_size, "symbol outside alphabet");
    ++freqs[s];
  }
  auto cc = assign_canonical(huffman_code_lengths(freqs));

  Bytes out = BufferPool::global().acquire(symbols.size() / 2 + 64);
  append_pod<std::uint64_t>(out, symbols.size());
  append_pod<std::uint32_t>(out, alphabet_size);
  write_lengths_rle(out, cc.lengths);

  // Emit through precomputed bit-reversed codes: the per-occurrence cost is
  // one table load plus one word-buffered put_bits (reversing inside the
  // emit loop would cost O(code length) per symbol occurrence).
  struct EmitEntry {
    std::uint32_t code;  // bit-reversed, LSB-first
    std::uint32_t len;
  };
  std::vector<EmitEntry> emit(cc.codes.size(), EmitEntry{0, 0});
  std::size_t total_bits = 0;
  for (std::uint32_t s = 0; s < cc.codes.size(); ++s) {
    if (cc.lengths[s] == 0) continue;
    emit[s] = {static_cast<std::uint32_t>(
                   reverse_bits(cc.codes[s], cc.lengths[s])),
               cc.lengths[s]};
    total_bits += freqs[s] * cc.lengths[s];
  }
  BitWriter bw;
  bw.reserve_bits(total_bits);
  for (std::uint32_t s : symbols) {
    const EmitEntry e = emit[s];
    bw.put_bits(e.code, static_cast<int>(e.len));
  }
  Bytes payload = bw.take();
  append_pod<std::uint64_t>(out, payload.size());
  append_bytes(out, payload);
  BufferPool::global().release(std::move(payload));
  return out;
}

std::vector<std::uint32_t> huffman_decode(std::span<const std::byte> blob) {
  const DecodeSetup s = decode_setup(blob);
  std::vector<std::uint32_t> result;
  result.reserve(s.count);
  if (decode_degenerate(s, &result)) return result;

  // Single-level lookup table over the next kHuffmanLutBits stream bits
  // with zstd-style multi-symbol packing: when the first code in the
  // window is followed by a second complete code and their combined
  // length still fits the table width, the entry carries BOTH decoded
  // symbols, so one table load emits two symbols. Low-entropy
  // quantizer-code streams (typical lengths <= 5 bits) take the double
  // path almost every lookup. Longer (rare) codes and invalid prefixes
  // fall into the per-bit canonical walk, which also carries the
  // corrupt-stream checks. Entries whose prefix extends a long code — or
  // no code at all — keep nsyms == 0.
  struct Lut1Entry {
    std::uint32_t sym = 0;
    std::uint8_t len = 0;  // 0 => not decodable within the table width
  };
  // 8-byte packed entry so the table stays 16 KiB (L1-resident) and the
  // batch loop is branch-free: both symbols share one u32 (a packed pair
  // always has combined length <= 11 bits; pairs whose symbol values do
  // not fit 16 bits fall back to a single entry), and the loop writes
  // dst[i] and dst[i+1] unconditionally, advancing i by nsyms — the
  // second write is garbage for single entries and is overwritten by the
  // next iteration.
  struct LutEntry {
    std::uint32_t syms = 0;  // single: sym; pair: sym0 | (sym1 << 16)
    std::uint8_t len = 0;    // bits consumed when emitting nsyms symbols
    std::uint8_t shr = 0;    // 0 for single, 16 for pair: sym0 mask shift
    std::uint8_t nsyms = 0;  // 0 = fallback, 1 = single, 2 = packed pair
  };
  // Fixed table width so the peek mask is a compile-time constant in the
  // decode loop; short codes replicate across the unused high index bits.
  std::vector<Lut1Entry> lut1(std::size_t{1} << kHuffmanLutBits);
  for (std::uint32_t idx = 0; idx < s.order.size(); ++idx) {
    const std::uint32_t sym = s.order[idx];
    const int len = s.lengths[sym];
    if (len > kHuffmanLutBits) break;  // order is sorted by length
    const std::uint64_t code =
        s.first_code[len] + (idx - s.first_index[len]);
    const std::uint64_t rev = reverse_bits(code, len);
    // The code occupies the low `len` stream bits; every setting of the
    // remaining high table bits maps to the same symbol.
    for (std::uint64_t hi = 0;
         hi < (std::uint64_t{1} << (kHuffmanLutBits - len)); ++hi)
      lut1[rev | (hi << len)] = {sym, static_cast<std::uint8_t>(len)};
  }
  // Packing pass: after the first code, the remaining (width - len0) index
  // bits are genuine stream bits; a second code is baked in only when it
  // fits entirely inside them (len1 <= width - len0, i.e. a single-symbol
  // lookup at the shifted index cannot have matched zero-padding).
  std::vector<LutEntry> lut(std::size_t{1} << kHuffmanLutBits);
  for (std::size_t idx = 0; idx < lut.size(); ++idx) {
    const Lut1Entry e0 = lut1[idx];
    if (e0.len == 0) continue;  // fallback entry
    LutEntry e;
    e.syms = e0.sym;
    e.len = e0.len;
    e.shr = 0;
    e.nsyms = 1;
    const Lut1Entry e1 = lut1[idx >> e0.len];
    if (e1.len != 0 && e0.len + e1.len <= kHuffmanLutBits &&
        e0.sym < 0x10000u && e1.sym < 0x10000u) {
      e.syms = e0.sym | (e1.sym << 16);
      e.len = static_cast<std::uint8_t>(e0.len + e1.len);
      e.shr = 16;
      e.nsyms = 2;
    }
    lut[idx] = e;
  }

  result.resize(s.count);
  std::uint32_t* dst = result.data();
  const std::uint64_t lut_mask = (std::uint64_t{1} << kHuffmanLutBits) - 1;
  BitReader br(s.payload);
  std::uint64_t i = 0;
  while (i < s.count) {
    // One refill covers a batch of short codes: shift a local accumulator
    // copy and commit the consumed total once, so the per-symbol work is
    // (at most) a table load plus a shift — and half a load on streams
    // where the double-symbol entries dominate. The i + 2 guard keeps the
    // double-write in bounds and stops a pair entry from over-consuming
    // past the final symbol.
    std::uint64_t acc = br.refill_acc();
    const int avail = br.bits_buffered();
    if (avail >= kHuffmanLutBits && i + 2 <= s.count) {
      int consumed = 0;
      bool long_code = false;
      while (i + 2 <= s.count && consumed + kHuffmanLutBits <= avail) {
        const LutEntry e = lut[acc & lut_mask];
        if (e.nsyms == 0) {
          long_code = true;
          break;
        }
        dst[i] = e.syms & (0xFFFFFFFFu >> e.shr);
        dst[i + 1] = e.syms >> 16;  // garbage for singles; overwritten
        i += e.nsyms;
        acc >>= e.len;
        consumed += e.len;
      }
      br.consume(consumed);
      if (long_code) dst[i++] = decode_symbol_slow(s, br);
      continue;
    }
    // Tail: fewer than kHuffmanLutBits buffered bits or a single symbol
    // left. The canonical per-bit walk handles zero-padded short reads
    // and carries the corrupt-stream checks; at most a handful of
    // symbols ever take this path.
    dst[i++] = decode_symbol_slow(s, br);
  }
  return result;
}

std::vector<std::uint32_t> huffman_decode_reference(
    std::span<const std::byte> blob) {
  const DecodeSetup s = decode_setup(blob);
  std::vector<std::uint32_t> result;
  result.reserve(s.count);
  if (decode_degenerate(s, &result)) return result;

  BitReader br(s.payload);
  for (std::uint64_t i = 0; i < s.count; ++i)
    result.push_back(decode_symbol_slow(s, br));
  return result;
}

}  // namespace eblcio
