#include "codec/huffman.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <numeric>
#include <queue>

#include "codec/bitstream.h"
#include "common/error.h"

namespace eblcio {
namespace {

// Reverses the low `n` bits of `code` so an MSB-first canonical code can be
// emitted through the LSB-first BitWriter.
std::uint64_t reverse_bits(std::uint64_t code, int n) {
  std::uint64_t r = 0;
  for (int i = 0; i < n; ++i) {
    r = (r << 1) | (code & 1);
    code >>= 1;
  }
  return r;
}

struct TreeNode {
  std::uint64_t freq;
  std::int32_t left;    // -1 for leaf
  std::int32_t right;
  std::uint32_t symbol; // valid for leaves
};

}  // namespace

std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> freqs) {
  const std::size_t n = freqs.size();
  std::vector<std::uint8_t> lengths(n, 0);

  std::vector<std::uint32_t> present;
  for (std::size_t s = 0; s < n; ++s)
    if (freqs[s] > 0) present.push_back(static_cast<std::uint32_t>(s));
  if (present.empty()) return lengths;
  if (present.size() == 1) {
    lengths[present[0]] = 1;
    return lengths;
  }

  // Standard two-queue Huffman tree construction.
  std::vector<TreeNode> nodes;
  nodes.reserve(present.size() * 2);
  using Entry = std::pair<std::uint64_t, std::int32_t>;  // (freq, node index)
  auto cmp = [](const Entry& a, const Entry& b) { return a.first > b.first; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (std::uint32_t s : present) {
    nodes.push_back({freqs[s], -1, -1, s});
    heap.emplace(freqs[s], static_cast<std::int32_t>(nodes.size() - 1));
  }
  while (heap.size() > 1) {
    const auto a = heap.top();
    heap.pop();
    const auto b = heap.top();
    heap.pop();
    nodes.push_back({a.first + b.first, a.second, b.second, 0});
    heap.emplace(a.first + b.first,
                 static_cast<std::int32_t>(nodes.size() - 1));
  }

  // Depth-first traversal to assign depths.
  struct Item {
    std::int32_t node;
    int depth;
  };
  std::vector<Item> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    const Item it = stack.back();
    stack.pop_back();
    const TreeNode& nd = nodes[it.node];
    if (nd.left < 0) {
      lengths[nd.symbol] = static_cast<std::uint8_t>(std::max(it.depth, 1));
    } else {
      stack.push_back({nd.left, it.depth + 1});
      stack.push_back({nd.right, it.depth + 1});
    }
  }

  // Length-limit with a Kraft-sum fix-up: clamp overlong codes, then demote
  // codes (increase their length) until the Kraft inequality holds again.
  bool overflow = false;
  for (std::uint32_t s : present)
    if (lengths[s] > kMaxHuffmanBits) {
      lengths[s] = kMaxHuffmanBits;
      overflow = true;
    }
  if (overflow) {
    auto kraft = [&]() {
      long double k = 0;
      for (std::uint32_t s : present)
        k += std::pow(2.0L, -static_cast<int>(lengths[s]));
      return k;
    };
    // Sort symbols by ascending frequency so the cheapest codes get demoted.
    std::vector<std::uint32_t> order = present;
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      return freqs[a] < freqs[b];
    });
    std::size_t i = 0;
    while (kraft() > 1.0L) {
      std::uint32_t s = order[i % order.size()];
      if (lengths[s] < kMaxHuffmanBits) ++lengths[s];
      ++i;
    }
  }
  return lengths;
}

namespace {

// Canonical code assignment: symbols ordered by (length, symbol).
struct CanonicalCodes {
  std::vector<std::uint8_t> lengths;
  std::vector<std::uint64_t> codes;  // MSB-first code values
};

CanonicalCodes assign_canonical(std::vector<std::uint8_t> lengths) {
  CanonicalCodes cc;
  cc.codes.assign(lengths.size(), 0);
  std::vector<std::uint32_t> order;
  for (std::uint32_t s = 0; s < lengths.size(); ++s)
    if (lengths[s] > 0) order.push_back(s);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
    return a < b;
  });
  std::uint64_t code = 0;
  int prev_len = 0;
  for (std::uint32_t s : order) {
    code <<= (lengths[s] - prev_len);
    cc.codes[s] = code;
    ++code;
    prev_len = lengths[s];
  }
  cc.lengths = std::move(lengths);
  return cc;
}

void write_lengths_rle(Bytes& out, std::span<const std::uint8_t> lengths) {
  // (length, run) pairs; run is u32. Compact because quantization-code
  // alphabets are sparse away from the center.
  std::uint32_t i = 0;
  std::vector<std::pair<std::uint8_t, std::uint32_t>> runs;
  while (i < lengths.size()) {
    std::uint32_t j = i;
    while (j < lengths.size() && lengths[j] == lengths[i]) ++j;
    runs.emplace_back(lengths[i], j - i);
    i = j;
  }
  append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(runs.size()));
  for (auto [len, run] : runs) {
    append_pod<std::uint8_t>(out, len);
    append_pod<std::uint32_t>(out, run);
  }
}

std::vector<std::uint8_t> read_lengths_rle(ByteReader& r,
                                           std::uint32_t alphabet_size) {
  const auto nruns = r.read_pod<std::uint32_t>();
  std::vector<std::uint8_t> lengths;
  lengths.reserve(alphabet_size);
  for (std::uint32_t k = 0; k < nruns; ++k) {
    const auto len = r.read_pod<std::uint8_t>();
    const auto run = r.read_pod<std::uint32_t>();
    // A corrupt length would index the canonical decode tables (sized
    // kMaxHuffmanBits + 2) out of bounds.
    EBLCIO_CHECK_STREAM(len <= kMaxHuffmanBits,
                        "huffman code length out of range");
    EBLCIO_CHECK_STREAM(lengths.size() + run <= alphabet_size,
                        "huffman length table overflow");
    lengths.insert(lengths.end(), run, len);
  }
  EBLCIO_CHECK_STREAM(lengths.size() == alphabet_size,
                      "huffman length table underflow");
  return lengths;
}

}  // namespace

Bytes huffman_encode(std::span<const std::uint32_t> symbols,
                     std::uint32_t alphabet_size) {
  std::vector<std::uint64_t> freqs(alphabet_size, 0);
  for (std::uint32_t s : symbols) {
    EBLCIO_CHECK_ARG(s < alphabet_size, "symbol outside alphabet");
    ++freqs[s];
  }
  auto cc = assign_canonical(huffman_code_lengths(freqs));

  Bytes out;
  append_pod<std::uint64_t>(out, symbols.size());
  append_pod<std::uint32_t>(out, alphabet_size);
  write_lengths_rle(out, cc.lengths);

  BitWriter bw;
  for (std::uint32_t s : symbols)
    bw.put_bits(reverse_bits(cc.codes[s], cc.lengths[s]), cc.lengths[s]);
  Bytes payload = bw.take();
  append_pod<std::uint64_t>(out, payload.size());
  append_bytes(out, payload);
  return out;
}

std::vector<std::uint32_t> huffman_decode(std::span<const std::byte> blob) {
  ByteReader r(blob);
  const auto count = r.read_pod<std::uint64_t>();
  const auto alphabet_size = r.read_pod<std::uint32_t>();
  auto lengths = read_lengths_rle(r, alphabet_size);
  const auto payload_size = r.read_pod<std::uint64_t>();
  auto payload = r.read_bytes(payload_size);
  // Every legitimate symbol costs at least one payload bit; a corrupt
  // count must not drive a giant allocation below.
  EBLCIO_CHECK_STREAM(count <= payload.size() * 8,
                      "huffman symbol count exceeds payload");

  // Canonical decode tables: first code and first symbol index per length.
  std::vector<std::uint32_t> order;
  for (std::uint32_t s = 0; s < alphabet_size; ++s)
    if (lengths[s] > 0) order.push_back(s);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
    return a < b;
  });

  std::vector<std::uint32_t> result;
  result.reserve(count);
  if (count == 0) return result;
  EBLCIO_CHECK_STREAM(!order.empty(), "huffman stream with empty alphabet");
  if (order.size() == 1) {
    result.assign(count, order[0]);
    return result;
  }

  std::array<std::uint64_t, kMaxHuffmanBits + 2> first_code{};
  std::array<std::uint32_t, kMaxHuffmanBits + 2> first_index{};
  std::array<std::uint32_t, kMaxHuffmanBits + 2> num_codes{};
  for (std::uint32_t idx = 0; idx < order.size(); ++idx)
    ++num_codes[lengths[order[idx]]];
  {
    std::uint64_t code = 0;
    std::uint32_t idx = 0;
    for (int len = 1; len <= kMaxHuffmanBits; ++len) {
      first_code[len] = code;
      first_index[len] = idx;
      code = (code + num_codes[len]) << 1;
      idx += num_codes[len];
    }
  }

  BitReader br(payload);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t code = 0;
    int len = 0;
    std::uint32_t sym = 0;
    for (;;) {
      EBLCIO_CHECK_STREAM(len < kMaxHuffmanBits, "invalid huffman code");
      code = (code << 1) | br.get_bit();
      ++len;
      if (num_codes[len] > 0 &&
          code < first_code[len] + num_codes[len]) {
        EBLCIO_CHECK_STREAM(code >= first_code[len], "invalid huffman code");
        sym = order[first_index[len] + (code - first_code[len])];
        break;
      }
    }
    result.push_back(sym);
  }
  return result;
}

}  // namespace eblcio
