// Byte shuffle filter (the transform at the heart of Blosc).
//
// Transposes an array of fixed-size elements so that byte k of every element
// becomes contiguous. For IEEE floats this groups the slowly-varying sign/
// exponent bytes together, which LZ then compresses well.
//
// The transpose is cache-blocked: elements are processed in tiles small
// enough that one tile's input stays resident in L1/L2 across all
// `elem_size` byte-plane passes, instead of re-streaming the whole input
// once per plane (which costs elem_size full sweeps of memory bandwidth).
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"

namespace eblcio {

namespace shuffle_detail {

// Tile size in elements: the input tile (kTileBytes * elem_size bytes) must
// fit comfortably in L1 alongside the elem_size output cursors.
inline constexpr std::size_t kTileBytes = 4096;

inline std::size_t tile_elems(std::size_t elem_size) {
  return std::max<std::size_t>(1, kTileBytes / elem_size);
}

}  // namespace shuffle_detail

inline Bytes shuffle_bytes(std::span<const std::byte> data,
                           std::size_t elem_size) {
  EBLCIO_CHECK_ARG(elem_size > 0 && data.size() % elem_size == 0,
                   "shuffle: buffer not a multiple of element size");
  const std::size_t n = data.size() / elem_size;
  const std::size_t tile = shuffle_detail::tile_elems(elem_size);
  Bytes out(data.size());
  for (std::size_t i0 = 0; i0 < n; i0 += tile) {
    const std::size_t i1 = std::min(n, i0 + tile);
    for (std::size_t b = 0; b < elem_size; ++b) {
      std::byte* dst = out.data() + b * n;
      const std::byte* src = data.data() + b;
      for (std::size_t i = i0; i < i1; ++i)
        dst[i] = src[i * elem_size];
    }
  }
  return out;
}

inline Bytes unshuffle_bytes(std::span<const std::byte> data,
                             std::size_t elem_size) {
  EBLCIO_CHECK_ARG(elem_size > 0 && data.size() % elem_size == 0,
                   "unshuffle: buffer not a multiple of element size");
  const std::size_t n = data.size() / elem_size;
  const std::size_t tile = shuffle_detail::tile_elems(elem_size);
  Bytes out(data.size());
  for (std::size_t i0 = 0; i0 < n; i0 += tile) {
    const std::size_t i1 = std::min(n, i0 + tile);
    for (std::size_t b = 0; b < elem_size; ++b) {
      std::byte* dst = out.data() + b;
      const std::byte* src = data.data() + b * n;
      for (std::size_t i = i0; i < i1; ++i)
        dst[i * elem_size] = src[i];
    }
  }
  return out;
}

}  // namespace eblcio
