// Byte shuffle filter (the transform at the heart of Blosc).
//
// Transposes an array of fixed-size elements so that byte k of every element
// becomes contiguous. For IEEE floats this groups the slowly-varying sign/
// exponent bytes together, which LZ then compresses well.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"

namespace eblcio {

inline Bytes shuffle_bytes(std::span<const std::byte> data,
                           std::size_t elem_size) {
  EBLCIO_CHECK_ARG(elem_size > 0 && data.size() % elem_size == 0,
                   "shuffle: buffer not a multiple of element size");
  const std::size_t n = data.size() / elem_size;
  Bytes out(data.size());
  for (std::size_t b = 0; b < elem_size; ++b)
    for (std::size_t i = 0; i < n; ++i)
      out[b * n + i] = data[i * elem_size + b];
  return out;
}

inline Bytes unshuffle_bytes(std::span<const std::byte> data,
                             std::size_t elem_size) {
  EBLCIO_CHECK_ARG(elem_size > 0 && data.size() % elem_size == 0,
                   "unshuffle: buffer not a multiple of element size");
  const std::size_t n = data.size() / elem_size;
  Bytes out(data.size());
  for (std::size_t b = 0; b < elem_size; ++b)
    for (std::size_t i = 0; i < n; ++i)
      out[i * elem_size + b] = data[b * n + i];
  return out;
}

}  // namespace eblcio
