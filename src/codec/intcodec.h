// Small integer coding primitives: zigzag, varint, negabinary.
//
// Negabinary is the signed-to-unsigned mapping used by ZFP's bit-plane
// coder; zigzag+varint serialize token streams in the LZ codec and the
// container formats.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace eblcio {

// Signed -> unsigned interleave: 0,-1,1,-2,2 -> 0,1,2,3,4.
inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

// Two's complement -> negabinary, as in ZFP: nbmask = 0xaaaa... pattern.
// Negabinary makes small-magnitude values (positive or negative) have few
// significant bits, which is what makes bit-plane truncation graceful.
inline constexpr std::uint64_t kNbMask = 0xaaaaaaaaaaaaaaaaULL;

inline std::uint64_t int2uint_negabinary(std::int64_t x) {
  return (static_cast<std::uint64_t>(x) + kNbMask) ^ kNbMask;
}
inline std::int64_t uint2int_negabinary(std::uint64_t x) {
  return static_cast<std::int64_t>((x ^ kNbMask) - kNbMask);
}

// LEB128 unsigned varint.
inline void varint_encode(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

inline std::uint64_t varint_decode(ByteReader& r) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const auto b = static_cast<std::uint8_t>(r.read_pod<std::uint8_t>());
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
    EBLCIO_CHECK_STREAM(shift < 64, "varint too long");
  }
  return v;
}

}  // namespace eblcio
