// Bit-granular stream I/O.
//
// All entropy stages in the library (Huffman, ZFP's embedded bit-plane
// coder, SZx's truncated fixed-point payloads) read and write through this
// pair. Bits are packed LSB-first into little-endian 64-bit words, the same
// convention as the reference ZFP stream, so sub-bit-budget truncation
// behaves identically.
//
// The reader keeps a 64-bit refill accumulator over the byte buffer: a
// single refill() tops the accumulator up to >= 57 valid bits (one 8-byte
// load in the interior of the stream), after which peek_bits()/consume()
// are branch-light shifts. The table-driven Huffman decoder leans on this
// to decode several symbols per refill; see src/codec/README.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"

namespace eblcio {

class BitWriter {
 public:
  // Appends a single bit (the low bit of `bit`).
  void put_bit(std::uint32_t bit) {
    acc_ |= static_cast<std::uint64_t>(bit & 1u) << nbits_;
    if (++nbits_ == 64) {
      words_.push_back(acc_);
      acc_ = 0;
      nbits_ = 0;
    }
  }

  // Appends the low `n` bits of `v`, LSB first. n in [0, 64].
  void put_bits(std::uint64_t v, int n) {
    EBLCIO_CHECK_ARG(n >= 0 && n <= 64, "bit count out of range");
    if (n == 0) return;
    if (n < 64) v &= (std::uint64_t{1} << n) - 1;
    acc_ |= v << nbits_;
    const int fit = 64 - nbits_;
    if (n >= fit) {
      words_.push_back(acc_);
      acc_ = (fit == 64) ? 0 : (v >> fit);
      nbits_ = n - fit;
    } else {
      nbits_ += n;
    }
  }

  // Pre-sizes the word buffer for a stream of ~`n` bits, so bulk encoders
  // (Huffman) pay no vector regrowth in the emit loop.
  void reserve_bits(std::size_t n) { words_.reserve(n / 64 + 1); }

  // Total bits written so far.
  std::size_t bit_count() const { return words_.size() * 64 + nbits_; }

  // Finalizes and returns the packed bytes (padded with zero bits).
  Bytes take();

 private:
  std::vector<std::uint64_t> words_;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

class BitReader {
 public:
  // Largest `n` accepted by peek_bits(): refill() guarantees at least 57
  // valid accumulator bits while payload remains.
  static constexpr int kPeekMax = 56;

  explicit BitReader(std::span<const std::byte> data) : data_(data) {}

  // Reads one bit; returns 0 past end-of-stream (matching ZFP's zero-padded
  // stream semantics, which the embedded coder relies on).
  std::uint32_t get_bit() {
    refill();
    const auto v = static_cast<std::uint32_t>(acc_ & 1u);
    drop(1);
    return v;
  }

  // Reads `n` bits LSB-first. Past-end bits read as zero.
  std::uint64_t get_bits(int n) {
    EBLCIO_CHECK_ARG(n >= 0 && n <= 64, "bit count out of range");
    if (n == 0) return 0;
    if (n <= kPeekMax) {
      refill();
      const std::uint64_t v = acc_ & mask(n);
      drop(n);
      return v;
    }
    // 57..64 bits: two accumulator windows.
    refill();
    std::uint64_t v = acc_ & mask(32);
    drop(32);
    refill();
    v |= (acc_ & mask(n - 32)) << 32;
    drop(n - 32);
    return v;
  }

  // Returns the next `n` bits (n in [0, kPeekMax]) without consuming them.
  // Past-end bits peek as zero.
  std::uint64_t peek_bits(int n) {
    EBLCIO_CHECK_ARG(n >= 0 && n <= kPeekMax, "peek width out of range");
    refill();
    return acc_ & mask(n);
  }

  // Consumes `n` bits (n in [0, 64]). Consuming past end-of-stream is
  // permitted and advances bit_pos() like get_bit(). Beyond 57 bits, `n`
  // must not exceed what a refill can buffer plus the zero padding — i.e.
  // consume at most what bits_buffered() reported after the matching
  // refill_acc()/peek_bits() (the only way to have seen those bits).
  void consume(int n) {
    EBLCIO_CHECK_ARG(n >= 0 && n <= 64, "consume width out of range");
    refill();
    EBLCIO_CHECK_ARG(n <= navail_ || next_byte_ >= data_.size(),
                     "consume beyond buffered bits");
    drop(n);
  }

  // Tops up the accumulator and returns it raw: bits_buffered() low bits
  // are valid payload, everything above reads zero. A table-driven decoder
  // pulls several symbols out of one returned word — shifting a local copy
  // and calling consume() once with the total — so the refill branch and
  // position bookkeeping amortize across the batch.
  std::uint64_t refill_acc() {
    refill();
    return acc_;
  }
  int bits_buffered() const { return navail_; }

  std::size_t bit_pos() const { return pos_; }
  // True once reads have consumed (or run past) all real payload bits.
  bool exhausted() const { return pos_ >= data_.size() * 8; }

 private:
  static std::uint64_t mask(int n) {
    return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
  }

  // Tops the accumulator up to >= 57 valid bits (all remaining payload bits
  // near end-of-stream). One unaligned 8-byte load in the interior.
  void refill() {
    if (navail_ > kPeekMax) return;
    if (next_byte_ + 8 <= data_.size()) {
      std::uint64_t w;
      std::memcpy(&w, data_.data() + next_byte_, 8);
      acc_ |= w << navail_;
      const int take = (64 - navail_) >> 3;
      next_byte_ += static_cast<std::size_t>(take);
      navail_ += take * 8;
    } else {
      while (navail_ <= kPeekMax && next_byte_ < data_.size()) {
        acc_ |= static_cast<std::uint64_t>(data_[next_byte_++]) << navail_;
        navail_ += 8;
      }
    }
  }

  // Advances by `n` bits; past-end bits are virtual zeros (acc_ holds zeros
  // above navail_, so shifted-in bits are already zero).
  void drop(int n) {
    acc_ = n >= 64 ? 0 : acc_ >> n;
    navail_ -= std::min(n, navail_);
    pos_ += static_cast<std::size_t>(n);
  }

  std::span<const std::byte> data_;
  std::uint64_t acc_ = 0;  // next unread bits, LSB first
  int navail_ = 0;         // valid bits in acc_
  std::size_t next_byte_ = 0;  // first byte not yet in acc_
  std::size_t pos_ = 0;        // bits consumed (including past-end zeros)
};

}  // namespace eblcio
