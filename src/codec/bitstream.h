// Bit-granular stream I/O.
//
// All entropy stages in the library (Huffman, ZFP's embedded bit-plane
// coder, SZx's truncated fixed-point payloads) read and write through this
// pair. Bits are packed LSB-first into little-endian 64-bit words, the same
// convention as the reference ZFP stream, so sub-bit-budget truncation
// behaves identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"

namespace eblcio {

class BitWriter {
 public:
  // Appends a single bit (the low bit of `bit`).
  void put_bit(std::uint32_t bit) {
    acc_ |= static_cast<std::uint64_t>(bit & 1u) << nbits_;
    if (++nbits_ == 64) {
      words_.push_back(acc_);
      acc_ = 0;
      nbits_ = 0;
    }
  }

  // Appends the low `n` bits of `v`, LSB first. n in [0, 64].
  void put_bits(std::uint64_t v, int n) {
    EBLCIO_CHECK_ARG(n >= 0 && n <= 64, "bit count out of range");
    if (n == 0) return;
    if (n < 64) v &= (std::uint64_t{1} << n) - 1;
    acc_ |= v << nbits_;
    const int fit = 64 - nbits_;
    if (n >= fit) {
      words_.push_back(acc_);
      acc_ = (fit == 64) ? 0 : (v >> fit);
      nbits_ = n - fit;
    } else {
      nbits_ += n;
    }
  }

  // Total bits written so far.
  std::size_t bit_count() const { return words_.size() * 64 + nbits_; }

  // Finalizes and returns the packed bytes (padded with zero bits).
  Bytes take();

 private:
  std::vector<std::uint64_t> words_;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::byte> data) : data_(data) {}

  // Reads one bit; returns 0 past end-of-stream (matching ZFP's zero-padded
  // stream semantics, which the embedded coder relies on).
  std::uint32_t get_bit() {
    if (pos_ >= data_.size() * 8) {
      ++pos_;
      return 0;
    }
    const std::size_t byte = pos_ >> 3;
    const int bit = static_cast<int>(pos_ & 7);
    ++pos_;
    return (static_cast<std::uint32_t>(data_[byte]) >> bit) & 1u;
  }

  // Reads `n` bits LSB-first. Past-end bits read as zero.
  std::uint64_t get_bits(int n) {
    EBLCIO_CHECK_ARG(n >= 0 && n <= 64, "bit count out of range");
    std::uint64_t v = 0;
    int got = 0;
    // Fast path: whole bytes while fully inside the buffer.
    while (n - got >= 8 && (pos_ & 7) == 0 && (pos_ >> 3) + 1 <= data_.size()) {
      v |= static_cast<std::uint64_t>(data_[pos_ >> 3]) << got;
      pos_ += 8;
      got += 8;
    }
    for (; got < n; ++got)
      v |= static_cast<std::uint64_t>(get_bit()) << got;
    if (n < 64) v &= (std::uint64_t{1} << n) - 1;
    return v;
  }

  std::size_t bit_pos() const { return pos_; }
  // True once reads have consumed (or run past) all real payload bits.
  bool exhausted() const { return pos_ >= data_.size() * 8; }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace eblcio
