// Canonical Huffman coding over an arbitrary 32-bit symbol alphabet.
//
// This is the entropy stage shared by the SZ-family compressors (SZ2, SZ3,
// QoZ encode their quantization codes with it, exactly as the reference
// implementations do) and by the deflate-class lossless codec.
//
// The encoded blob is self-describing: a header carries the symbol count,
// alphabet size and run-length-coded code lengths, followed by the packed
// code bits, so decode needs nothing but the blob.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"

namespace eblcio {

// Maximum code length produced by the canonical builder. Lengths beyond the
// limit are flattened with a Kraft-sum fix-up.
inline constexpr int kMaxHuffmanBits = 32;

// Width of the single-level decode lookup table: codes up to this length
// (the overwhelming majority on SZ-style quantization-code streams) decode
// with one table load; longer codes fall back to the canonical per-bit
// walk. Must not exceed BitReader::kPeekMax.
inline constexpr int kHuffmanLutBits = 11;

// Computes canonical code lengths for `freqs` (index = symbol). Zero
// frequency yields length 0 (symbol absent).
std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> freqs);

// Encodes `symbols` (each < alphabet_size) into a self-describing blob.
// Hot path: split-counter histogram, pooled thread-local scratch, two-queue
// Moffat length construction, and a batched 64-bit emit accumulator (see
// src/codec/README.md, "Encoder internals").
Bytes huffman_encode(std::span<const std::uint32_t> symbols,
                     std::uint32_t alphabet_size);

// Straight-line reference encoder over the same blob format: dense
// histogram, heap-based length build, per-symbol BitWriter emit. Kept as
// the differential-testing referee for huffman_encode — the two must
// produce byte-identical blobs on every input — and as the fallback for
// inputs outside the fast path's scratch bounds; not used on any hot path.
Bytes huffman_encode_reference(std::span<const std::uint32_t> symbols,
                               std::uint32_t alphabet_size);

// Decodes a blob produced by huffman_encode (table-driven fast path).
std::vector<std::uint32_t> huffman_decode(std::span<const std::byte> blob);

// Per-bit canonical reference decoder over the same blob format. Kept as
// the differential-testing referee for the table-driven decoder (and as
// readable documentation of the canonical walk); not used on any hot path.
std::vector<std::uint32_t> huffman_decode_reference(
    std::span<const std::byte> blob);

}  // namespace eblcio
