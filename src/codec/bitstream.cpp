#include "codec/bitstream.h"

#include <cstring>

namespace eblcio {

Bytes BitWriter::take() {
  const std::size_t total_bits = bit_count();
  const std::size_t total_bytes = (total_bits + 7) / 8;
  Bytes out(total_bytes);
  std::size_t off = 0;
  for (std::uint64_t w : words_) {
    std::memcpy(out.data() + off, &w, 8);
    off += 8;
  }
  if (nbits_ > 0) {
    const std::size_t tail = total_bytes - off;
    std::memcpy(out.data() + off, &acc_, tail);
  }
  words_.clear();
  acc_ = 0;
  nbits_ = 0;
  return out;
}

}  // namespace eblcio
