#include "codec/bitstream.h"

#include <cstring>

#include "common/buffer_pool.h"

namespace eblcio {

Bytes BitWriter::take() {
  const std::size_t total_bits = bit_count();
  const std::size_t total_bytes = (total_bits + 7) / 8;
  // Pooled: the taken payload is framed into its blob and released by the
  // encoder, so back-to-back encodes recycle one allocation.
  Bytes out = BufferPool::global().acquire(total_bytes);
  out.resize(total_bytes);
  std::size_t off = 0;
  for (std::uint64_t w : words_) {
    std::memcpy(out.data() + off, &w, 8);
    off += 8;
  }
  if (nbits_ > 0) {
    const std::size_t tail = total_bytes - off;
    std::memcpy(out.data() + off, &acc_, tail);
  }
  words_.clear();
  acc_ = 0;
  nbits_ = 0;
  return out;
}

}  // namespace eblcio
