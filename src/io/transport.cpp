#include "io/transport.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/buffer_pool.h"
#include "common/error.h"

namespace eblcio {
namespace {

// Live contended client count at serve time. The serving endpoint holds
// engage() on its stream while sectors are in flight, so the stream itself
// is already in the registry — no +1 here.
int live_clients(const PfsSimulator& pfs) {
  return std::max(1, pfs.concurrent_writers() + pfs.concurrent_readers());
}

std::size_t sectors_for(std::size_t length, std::size_t sector_bytes) {
  return length == 0 ? 1 : (length + sector_bytes - 1) / sector_bytes;
}

void validate_config(const TransportConfig& config) {
  EBLCIO_CHECK_ARG(config.sector_bytes > 0, "sector size must be positive");
  EBLCIO_CHECK_ARG(config.ring_depth >= 1, "ring depth must be >= 1");
  EBLCIO_CHECK_ARG(config.channels >= 1, "transport needs >= 1 channel");
}

// Splits a WriteResult into its RPC/metadata share and its
// bytes-over-bandwidth share.
SectorRecord make_record(std::size_t message, std::size_t sector, int channel,
                         int clients, const PfsSimulator::WriteResult& r) {
  SectorRecord rec;
  rec.message = message;
  rec.sector = sector;
  rec.channel = channel;
  rec.bytes = r.bytes;
  rec.clients = clients;
  rec.xfer_s = r.effective_bw_bps > 0.0
                   ? static_cast<double>(r.bytes) / r.effective_bw_bps
                   : 0.0;
  rec.rpc_s = std::max(0.0, r.seconds - rec.xfer_s);
  return rec;
}

}  // namespace

// --- SectorWriter ------------------------------------------------------------

SectorWriter::SectorWriter(PfsSimulator::AppendStream& stream,
                           TransportConfig config, Executor& ex)
    : stream_(&stream), config_(config), drainer_(ex) {
  validate_config(config_);
  rings_.reserve(static_cast<std::size_t>(config_.channels));
  for (int c = 0; c < config_.channels; ++c)
    rings_.emplace_back(config_.ring_depth);
}

SectorWriter::~SectorWriter() {
  // Let the drainer finish whatever is staged (or flushed, on error), then
  // join it. The task swallows its own exceptions, so wait() cannot throw.
  drainer_.wait();
  std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
}

std::size_t SectorWriter::stage(std::size_t message,
                                std::span<const std::byte> payload) {
  const std::size_t nsec = sectors_for(payload.size(), config_.sector_bytes);
  std::size_t off = 0;
  for (std::size_t s = 0; s < nsec; ++s) {
    const std::size_t len =
        std::min(config_.sector_bytes, payload.size() - off);
    Pending ps;
    ps.message = message;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (error_) std::rethrow_exception(error_);
      ps.sector = next_sector_;
      ps.channel = static_cast<int>(
          next_sector_ % static_cast<std::size_t>(config_.channels));
      SectorRing& ring = rings_[static_cast<std::size_t>(ps.channel)];
      if (!ring.has_credit()) {
        ++stats_.credit_stalls;
        Executor::BlockingScope blocking;
        credit_cv_.wait(lock,
                        [&] { return ring.has_credit() || error_ != nullptr; });
        if (error_) std::rethrow_exception(error_);
      }
      ring.take_credit();
      ++next_sector_;
      if (inflight_ == 0) stream_->engage();
      ++inflight_;
      ++stats_.sectors;
      stats_.bytes += len;
    }
    // Copy into the pooled sector buffer outside the lock: this is the
    // staging memcpy the drainer's append will ship.
    ps.data = BufferPool::global().acquire(len);
    ps.data.resize(len);
    if (len > 0) std::memcpy(ps.data.data(), payload.data() + off, len);
    off += len;
    bool doorbell = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(ps));
      if (!drainer_active_) {
        drainer_active_ = true;
        doorbell = true;
      }
    }
    if (doorbell) drainer_.run([this] { drain_loop(); });
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.messages;
  return nsec;
}

void SectorWriter::flush_locked() {
  while (!queue_.empty()) {
    Pending& ps = queue_.front();
    rings_[static_cast<std::size_t>(ps.channel)].retire();
    --inflight_;
    BufferPool::global().release(std::move(ps.data));
    queue_.pop_front();
  }
}

void SectorWriter::drain_loop() {
  for (;;) {
    Pending ps;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error_) {
        // A doorbell rung after the error landed: flush whatever was
        // staged in the meantime so no buffer or credit leaks.
        flush_locked();
        if (inflight_ == 0) stream_->disengage();
        drainer_active_ = false;
        credit_cv_.notify_all();
        done_cv_.notify_all();
        return;
      }
      if (queue_.empty()) {
        drainer_active_ = false;
        return;
      }
      ps = std::move(queue_.front());
      queue_.pop_front();
    }
    SectorRecord rec;
    bool failed = false;
    try {
      const int clients = live_clients(stream_->pfs());
      const auto r = stream_->append(ps.data, clients);
      rec = make_record(ps.message, ps.sector, ps.channel, clients, r);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      error_ = std::current_exception();
      failed = true;
    }
    BufferPool::global().release(std::move(ps.data));
    std::lock_guard<std::mutex> lock(mu_);
    rings_[static_cast<std::size_t>(ps.channel)].retire();
    --inflight_;
    if (failed) flush_locked();
    else records_.push_back(rec);
    if (inflight_ == 0) stream_->disengage();
    credit_cv_.notify_all();
    done_cv_.notify_all();
    if (failed) {
      drainer_active_ = false;
      return;
    }
  }
}

void SectorWriter::drain() {
  Executor::BlockingScope blocking;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return inflight_ == 0 || error_ != nullptr; });
  if (error_) std::rethrow_exception(error_);
}

TransportStats SectorWriter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int SectorWriter::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

// --- SectorReader ------------------------------------------------------------

SectorReader::SectorReader(PfsSimulator::ReadStream& stream,
                           TransportConfig config, Executor& ex)
    : stream_(&stream), config_(config), drainer_(ex) {
  validate_config(config_);
  rings_.reserve(static_cast<std::size_t>(config_.channels));
  for (int c = 0; c < config_.channels; ++c)
    rings_.emplace_back(config_.ring_depth);
}

SectorReader::~SectorReader() {
  drainer_.wait();
  // Messages that were assembled (or aborted) but never awaited still own
  // pooled buffers — give them back.
  for (auto& [handle, msg] : messages_)
    BufferPool::global().release(std::move(msg.data));
  messages_.clear();
}

std::size_t SectorReader::request(std::size_t offset, std::size_t length) {
  const std::size_t nsec = sectors_for(length, config_.sector_bytes);
  std::size_t handle = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (error_) std::rethrow_exception(error_);
    handle = next_message_++;
    Message msg;
    msg.data = BufferPool::global().acquire(length);
    msg.data.resize(length);
    msg.remaining = nsec;
    messages_.emplace(handle, std::move(msg));
  }
  std::size_t dst = 0;
  for (std::size_t s = 0; s < nsec; ++s) {
    const std::size_t len = std::min(config_.sector_bytes, length - dst);
    Pending ps;
    ps.message = handle;
    ps.offset = offset + dst;
    ps.length = len;
    ps.dst = dst;
    dst += len;
    bool doorbell = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (error_) std::rethrow_exception(error_);
      ps.sector = next_sector_;
      ps.channel = static_cast<int>(
          next_sector_ % static_cast<std::size_t>(config_.channels));
      SectorRing& ring = rings_[static_cast<std::size_t>(ps.channel)];
      if (!ring.has_credit()) {
        ++stats_.credit_stalls;
        Executor::BlockingScope blocking;
        credit_cv_.wait(lock,
                        [&] { return ring.has_credit() || error_ != nullptr; });
        if (error_) std::rethrow_exception(error_);
      }
      ring.take_credit();
      ++next_sector_;
      if (inflight_ == 0) stream_->engage();
      ++inflight_;
      ++stats_.sectors;
      stats_.bytes += len;
      queue_.push_back(ps);
      if (!drainer_active_) {
        drainer_active_ = true;
        doorbell = true;
      }
    }
    if (doorbell) drainer_.run([this] { drain_loop(); });
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.messages;
  return handle;
}

void SectorReader::flush_locked() {
  // Credits/descriptors of unserved sectors come back; the assembly
  // buffers stay with their messages (await/destructor releases them).
  while (!queue_.empty()) {
    Pending& ps = queue_.front();
    rings_[static_cast<std::size_t>(ps.channel)].retire();
    --inflight_;
    queue_.pop_front();
  }
}

void SectorReader::drain_loop() {
  for (;;) {
    Pending ps;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error_) {
        flush_locked();
        if (inflight_ == 0) stream_->disengage();
        drainer_active_ = false;
        credit_cv_.notify_all();
        done_cv_.notify_all();
        return;
      }
      if (queue_.empty()) {
        drainer_active_ = false;
        return;
      }
      ps = queue_.front();
      queue_.pop_front();
    }
    SectorRecord rec;
    Bytes fetched;
    bool failed = false;
    try {
      const int clients = live_clients(stream_->pfs());
      auto r = stream_->read(ps.offset, ps.length, clients);
      rec = make_record(ps.message, ps.sector, ps.channel, clients, r.cost);
      fetched = std::move(r.data);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      error_ = std::current_exception();
      failed = true;
    }
    std::unique_lock<std::mutex> lock(mu_);
    rings_[static_cast<std::size_t>(ps.channel)].retire();
    --inflight_;
    if (failed) {
      flush_locked();
      if (inflight_ == 0) stream_->disengage();
      credit_cv_.notify_all();
      done_cv_.notify_all();
      drainer_active_ = false;
      return;
    }
    auto it = messages_.find(ps.message);
    if (it != messages_.end()) {
      Message& msg = it->second;
      if (ps.length > 0)
        std::memcpy(msg.data.data() + ps.dst, fetched.data(), ps.length);
      msg.wire_s += rec.rpc_s + rec.xfer_s;
      if (--msg.remaining == 0) msg.done = true;
    }
    records_.push_back(rec);
    if (inflight_ == 0) stream_->disengage();
    credit_cv_.notify_all();
    done_cv_.notify_all();
    lock.unlock();
    BufferPool::global().release(std::move(fetched));
  }
}

Bytes SectorReader::await(std::size_t handle, double* wire_s_out) {
  Executor::BlockingScope blocking;
  std::unique_lock<std::mutex> lock(mu_);
  auto it = messages_.find(handle);
  EBLCIO_CHECK_ARG(it != messages_.end(),
                   "await on an unknown or already-awaited message");
  done_cv_.wait(lock,
                [&] { return it->second.done || error_ != nullptr; });
  if (error_ && !it->second.done) {
    // The message can never assemble; its buffer goes back now so a
    // caller that catches the error leaves the pool balanced.
    BufferPool::global().release(std::move(it->second.data));
    messages_.erase(it);
    std::rethrow_exception(error_);
  }
  Message msg = std::move(it->second);
  messages_.erase(it);
  if (wire_s_out) *wire_s_out = msg.wire_s;
  return std::move(msg.data);
}

void SectorReader::drain() {
  Executor::BlockingScope blocking;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return inflight_ == 0 || error_ != nullptr; });
  if (error_) std::rethrow_exception(error_);
}

TransportStats SectorReader::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int SectorReader::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

// --- Timeline solvers --------------------------------------------------------

namespace {

// Shared wire-state for both solvers: per-channel service and completion
// history (for ring credits) plus the serialized client link.
struct WireState {
  explicit WireState(const TransportConfig& config, double start)
      : chan_free(static_cast<std::size_t>(config.channels), start),
        chan_done(static_cast<std::size_t>(config.channels)),
        link_free(start),
        depth(static_cast<std::size_t>(config.ring_depth)) {}

  // When does the credit for the next sector staged on `channel` free?
  // The ring holds `depth` descriptors, so the k-th staged sector waits
  // for the completion of sector k-depth on its channel.
  double credit_free(int channel) const {
    const auto& hist = chan_done[static_cast<std::size_t>(channel)];
    if (hist.size() < depth) return 0.0;
    return hist[hist.size() - depth];
  }

  // Serves one staged sector: the channel issues its RPCs once free, the
  // transfer serializes on the shared client link in staging order.
  double serve(const SectorRecord& s, double staged_at) {
    const std::size_t c = static_cast<std::size_t>(s.channel);
    const double start = std::max(staged_at, chan_free[c]);
    const double xfer_start = std::max(start + s.rpc_s, link_free);
    const double done = xfer_start + s.xfer_s;
    chan_free[c] = done;
    link_free = done;
    chan_done[c].push_back(done);
    return done;
  }

  std::vector<double> chan_free;
  std::vector<std::vector<double>> chan_done;
  double link_free;
  std::size_t depth;
};

struct Interval {
  double start = 0.0;
  double end = 0.0;
};

// Peak and time-averaged in-flight occupancy of [staged, retired) spans.
void sweep_occupancy(const std::vector<Interval>& spans, double horizon,
                     double* mean_out, int* peak_out) {
  *mean_out = 0.0;
  *peak_out = 0;
  if (spans.empty() || horizon <= 0.0) return;
  std::vector<std::pair<double, int>> events;
  events.reserve(spans.size() * 2);
  double busy = 0.0;
  for (const Interval& iv : spans) {
    events.emplace_back(iv.start, +1);
    events.emplace_back(iv.end, -1);
    busy += iv.end - iv.start;
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first
                                        : a.second < b.second;
            });
  int live = 0, peak = 0;
  for (const auto& [t, d] : events) {
    live += d;
    peak = std::max(peak, live);
  }
  *mean_out = busy / horizon;
  *peak_out = peak;
}

// Groups records by message ordinal; records arrive in staging order, so
// each message's sectors are contiguous and in order.
std::vector<std::vector<const SectorRecord*>> by_message(
    std::span<const SectorRecord> sectors, std::size_t messages) {
  std::vector<std::vector<const SectorRecord*>> out(messages);
  for (const SectorRecord& s : sectors) {
    EBLCIO_CHECK_ARG(s.message < messages,
                     "sector record names a message past the pipeline");
    out[s.message].push_back(&s);
  }
  return out;
}

}  // namespace

WriteTimeline solve_write_timeline(const TransportConfig& config,
                                   std::span<const SectorRecord> sectors,
                                   std::span<const double> produce_s,
                                   std::span<const double> stage_prep_s,
                                   std::size_t queue_depth, double open_s) {
  WriteTimeline out;
  const std::size_t n = produce_s.size();
  if (n == 0) return out;
  EBLCIO_CHECK_ARG(stage_prep_s.size() == n,
                   "stage_prep_s must match produce_s");
  const auto msgs = by_message(sectors, n);

  WireState wire(config, open_s);
  std::vector<Interval> spans;
  spans.reserve(sectors.size());
  // fc: producer (compress) finish times, gated by the bounded channel the
  // same way the blocking pipeline was — a slot frees when the consumer
  // finishes *staging* message i-2-depth. tau: the staging cursor (the
  // consumer opened the container first, so it starts at open_s).
  std::vector<double> fc(n, 0.0), staged(n, 0.0);
  double tau = open_s;
  double wire_end = open_s;
  for (std::size_t i = 0; i < n; ++i) {
    double start = i > 0 ? fc[i - 1] : 0.0;
    if (i >= queue_depth + 2) start = std::max(start, staged[i - 2 - queue_depth]);
    else if (i == queue_depth + 1) start = std::max(start, open_s);
    fc[i] = start + produce_s[i];

    tau = std::max(tau, fc[i]);
    const std::size_t nsec = msgs[i].size();
    // The per-message container prep is paid while staging, spread across
    // the message's sectors by byte share (equal when bytes are equal).
    std::size_t msg_bytes = 0;
    for (const SectorRecord* s : msgs[i]) msg_bytes += s->bytes;
    for (const SectorRecord* s : msgs[i]) {
      const double share =
          msg_bytes > 0 ? static_cast<double>(s->bytes) /
                              static_cast<double>(msg_bytes)
                        : 1.0 / static_cast<double>(nsec);
      const double credit_at = wire.credit_free(s->channel);
      if (credit_at > tau) {
        out.credit_stall_s += credit_at - tau;
        tau = credit_at;
      }
      tau += stage_prep_s[i] * share;
      const double done = wire.serve(*s, tau);
      spans.push_back({tau, done});
      wire_end = std::max(wire_end, done);
    }
    staged[i] = tau;
  }
  out.makespan_s = wire_end;
  sweep_occupancy(spans, wire_end, &out.mean_inflight, &out.peak_inflight);
  return out;
}

ReadTimeline solve_read_timeline(const TransportConfig& config,
                                 std::span<const SectorRecord> sectors,
                                 std::span<const double> consume_s,
                                 std::size_t queue_depth, double open_s) {
  ReadTimeline out;
  const std::size_t n = consume_s.size();
  if (n == 0) return out;
  const auto msgs = by_message(sectors, n);

  WireState wire(config, open_s);
  std::vector<Interval> spans;
  spans.reserve(sectors.size());
  // tau: the request-staging cursor (requests are cheap descriptor writes,
  // gated by credits and by the bounded handle queue — a slot frees when
  // the consumer finishes message i-2-depth). fd: consumer finish times.
  std::vector<double> fetched(n, 0.0), fd(n, 0.0);
  double tau = open_s;
  double wire_end = open_s;
  for (std::size_t i = 0; i < n; ++i) {
    if (i >= queue_depth + 2) tau = std::max(tau, fd[i - 2 - queue_depth]);
    for (const SectorRecord* s : msgs[i]) {
      const double credit_at = wire.credit_free(s->channel);
      if (credit_at > tau) {
        out.credit_stall_s += credit_at - tau;
        tau = credit_at;
      }
      const double done = wire.serve(*s, tau);
      spans.push_back({tau, done});
      fetched[i] = std::max(fetched[i], done);
      wire_end = std::max(wire_end, done);
    }
    const double consumer_free = i > 0 ? fd[i - 1] : 0.0;
    fd[i] = std::max(fetched[i], consumer_free) + consume_s[i];
  }
  out.makespan_s = fd[n - 1];
  sweep_occupancy(spans, wire_end, &out.mean_inflight, &out.peak_inflight);
  return out;
}

}  // namespace eblcio
