#include "io/adioslite.h"

#include <cstring>

#include "common/error.h"

namespace eblcio {
namespace {

constexpr std::uint32_t kBpMagic = 0x4f494442;  // "BDIO"
constexpr std::uint32_t kFooterMagic = 0x52544f46;  // "FOTR"

// BP-style writes go straight from the application buffer in large
// sequential segments: the cheapest prep path of the three tools.
constexpr double kPrepBandwidthBps = 8.0e9;
constexpr double kPerVariablePrepS = 1.0e-5;

void encode_index_entry(Bytes& out, const BpVariable& v,
                        std::uint64_t offset) {
  append_string(out, v.name);
  append_pod<std::uint8_t>(out, v.dtype_code);
  append_pod<std::uint8_t>(out, static_cast<std::uint8_t>(v.dims.size()));
  for (auto d : v.dims) append_pod<std::uint64_t>(out, d);
  append_pod<std::uint32_t>(out,
                            static_cast<std::uint32_t>(v.attributes.size()));
  for (const auto& [k, val] : v.attributes) {
    append_string(out, k);
    append_string(out, val);
  }
  append_pod<std::uint64_t>(out, offset);
  append_pod<std::uint64_t>(out, v.data.size());
}

}  // namespace

void AdiosLiteFile::append_variable(BpVariable var) {
  variables_.push_back(std::move(var));
}

const BpVariable& AdiosLiteFile::variable(const std::string& name) const {
  for (const auto& v : variables_)
    if (v.name == name) return v;
  throw InvalidArgument("AdiosLite: no variable named " + name);
}

Bytes AdiosLiteFile::encode(int* footer_syncs) const {
  Bytes out;
  append_pod<std::uint32_t>(out, kBpMagic);

  // Payload segments, appended in arrival order (process-group style).
  std::vector<std::uint64_t> offsets;
  offsets.reserve(variables_.size());
  for (const auto& v : variables_) {
    offsets.push_back(out.size());
    append_bytes(out, v.data);
  }

  // Footer index written once at close.
  const std::uint64_t footer_start = out.size();
  append_pod<std::uint32_t>(out, kFooterMagic);
  append_pod<std::uint32_t>(out,
                            static_cast<std::uint32_t>(variables_.size()));
  for (std::size_t i = 0; i < variables_.size(); ++i)
    encode_index_entry(out, variables_[i], offsets[i]);
  append_pod<std::uint64_t>(out, footer_start);

  if (footer_syncs) *footer_syncs = 1;
  return out;
}

AdiosLiteFile AdiosLiteFile::decode(std::span<const std::byte> bytes) {
  EBLCIO_CHECK_STREAM(bytes.size() >= 12, "AdiosLite: file too small");
  {
    ByteReader magic_r(bytes);
    EBLCIO_CHECK_STREAM(magic_r.read_pod<std::uint32_t>() == kBpMagic,
                        "AdiosLite: bad magic");
  }
  // Footer offset lives in the trailing 8 bytes.
  std::uint64_t footer_start = 0;
  std::memcpy(&footer_start, bytes.data() + bytes.size() - 8, 8);
  EBLCIO_CHECK_STREAM(footer_start + 8 <= bytes.size(),
                      "AdiosLite: bad footer offset");

  ByteReader r(bytes.subspan(footer_start));
  EBLCIO_CHECK_STREAM(r.read_pod<std::uint32_t>() == kFooterMagic,
                      "AdiosLite: bad footer magic");
  const auto count = r.read_pod<std::uint32_t>();

  AdiosLiteFile f;
  for (std::uint32_t i = 0; i < count; ++i) {
    BpVariable v;
    v.name = r.read_string();
    v.dtype_code = r.read_pod<std::uint8_t>();
    const int nd = r.read_pod<std::uint8_t>();
    for (int d = 0; d < nd; ++d)
      v.dims.push_back(static_cast<std::size_t>(r.read_pod<std::uint64_t>()));
    const auto nattrs = r.read_pod<std::uint32_t>();
    for (std::uint32_t k = 0; k < nattrs; ++k) {
      std::string key = r.read_string();
      v.attributes[key] = r.read_string();
    }
    const auto offset = r.read_pod<std::uint64_t>();
    const auto size = r.read_pod<std::uint64_t>();
    EBLCIO_CHECK_STREAM(offset + size <= footer_start,
                        "AdiosLite: segment out of range");
    v.data.assign(bytes.begin() + offset, bytes.begin() + offset + size);
    f.variables_.push_back(std::move(v));
  }
  return f;
}

namespace {

IoCost write_container(PfsSimulator& pfs, const std::string& path,
                       const AdiosLiteFile& file, int concurrent_clients) {
  int footer_syncs = 0;
  const Bytes encoded = file.encode(&footer_syncs);

  IoCost cost;
  cost.prep_seconds =
      kPerVariablePrepS * static_cast<double>(file.variables().size()) +
      static_cast<double>(encoded.size()) / kPrepBandwidthBps;
  const auto write = pfs.write_file(path, encoded, concurrent_clients);
  cost.transfer_seconds =
      write.seconds + footer_syncs * pfs.config().rpc_latency_s;
  cost.bytes_written = encoded.size();
  return cost;
}

}  // namespace

IoCost AdiosLiteTool::write_field(PfsSimulator& pfs, const std::string& path,
                                  const Field& field,
                                  int concurrent_clients) {
  BpVariable v;
  v.name = field.name().empty() ? "data" : field.name();
  v.dtype_code = field.dtype() == DType::kFloat32 ? 0 : 1;
  v.dims = field.shape().dims_vector();
  auto raw = field.bytes();
  v.data.assign(raw.begin(), raw.end());

  AdiosLiteFile file;
  file.append_variable(std::move(v));
  return write_container(pfs, path, file, concurrent_clients);
}

IoCost AdiosLiteTool::write_blob(PfsSimulator& pfs, const std::string& path,
                                 const std::string& dataset_name,
                                 std::span<const std::byte> blob,
                                 int concurrent_clients) {
  BpVariable v;
  v.name = dataset_name;
  v.dtype_code = 2;
  v.dims = {blob.size()};
  v.attributes["content"] = "eblc-compressed";
  v.data.assign(blob.begin(), blob.end());

  AdiosLiteFile file;
  file.append_variable(std::move(v));
  return write_container(pfs, path, file, concurrent_clients);
}

Field AdiosLiteTool::read_field(PfsSimulator& pfs, const std::string& path) {
  const Bytes raw = pfs.read_file(path);
  const AdiosLiteFile file = AdiosLiteFile::decode(raw);
  EBLCIO_CHECK_STREAM(!file.variables().empty(), "AdiosLite: empty file");
  const BpVariable& v = file.variables().front();
  EBLCIO_CHECK_STREAM(v.dtype_code <= 1, "AdiosLite: variable is not a field");
  const Shape shape{std::span<const std::size_t>(v.dims)};
  if (v.dtype_code == 0) {
    NdArray<float> arr(shape);
    EBLCIO_CHECK_STREAM(v.data.size() == arr.size_bytes(),
                        "AdiosLite: data size mismatch");
    std::memcpy(arr.data(), v.data.data(), v.data.size());
    return Field(v.name, std::move(arr));
  }
  NdArray<double> arr(shape);
  EBLCIO_CHECK_STREAM(v.data.size() == arr.size_bytes(),
                      "AdiosLite: data size mismatch");
  std::memcpy(arr.data(), v.data.data(), v.data.size());
  return Field(v.name, std::move(arr));
}

Bytes AdiosLiteTool::read_blob(PfsSimulator& pfs, const std::string& path,
                               const std::string& dataset_name) {
  const Bytes raw = pfs.read_file(path);
  const AdiosLiteFile file = AdiosLiteFile::decode(raw);
  return file.variable(dataset_name).data;
}

IoTool::ChunkProfile AdiosLiteTool::chunk_profile() const {
  ChunkProfile p;
  p.prep_bandwidth_bps = kPrepBandwidthBps;
  p.per_chunk_prep_s = kPerVariablePrepS;
  p.close_footer_rpcs = 1;
  return p;
}

}  // namespace eblcio
