// Lustre-class parallel-file-system simulator.
//
// The paper writes to a Lustre 2.15 PFS from one node (Fig. 11) and from up
// to 512 cores (Fig. 12). We reproduce the two mechanisms its I/O-energy
// findings rest on:
//  * write time = RPC/metadata latency + bytes / effective bandwidth, where
//    effective bandwidth is limited by the client link, by the file's
//    stripe width, and by the aggregate OST capacity, and
//  * contention: with N concurrent clients the aggregate capacity is shared
//    and metadata service time grows, producing the super-linear jump the
//    paper observes from 256 to 512 cores for uncompressed writes.
//
// Files are really stored (striped across in-memory OST buffers) and really
// reassembled on read, so container round-trip tests are end-to-end.
//
// Thread-safety: all file operations serialize on an internal mutex, so
// concurrent clients (batched node×rank worlds, streaming pipelines, sweep
// cells sharing one PFS) may write/read without external locking. The
// writer/reader registries (WriterScope / ReaderScope) are lock-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace eblcio {

struct PfsConfig {
  int num_osts = 16;
  double ost_bandwidth_bps = 1.2e9;     // per-OST streaming bandwidth
  double client_bandwidth_bps = 2.8e9;  // node interconnect limit
  double open_latency_s = 8e-4;         // open/close + layout RPCs
  double rpc_latency_s = 5e-5;          // per stripe-boundary RPC
  double mds_service_s = 2e-5;          // metadata service time per client
  std::size_t stripe_size = 1u << 20;
  int stripe_count = 4;
};

class PfsSimulator {
 public:
  explicit PfsSimulator(PfsConfig config = {});

  const PfsConfig& config() const { return config_; }

  struct WriteResult {
    double seconds = 0.0;        // simulated wall time for this client
    std::size_t bytes = 0;
    double effective_bw_bps = 0.0;
  };

  // Writes (or overwrites) a file. `concurrent_clients` models how many
  // clients are hammering the PFS at the same moment (this client
  // included); time reflects the shared-capacity slowdown.
  WriteResult write_file(const std::string& path,
                         std::span<const std::byte> data,
                         int concurrent_clients = 1);

  // Appends `data` to `path`, creating the file when absent. Partial
  // trailing stripes are filled before new stripe units are allocated, so
  // containers can be written incrementally (the streaming compress→write
  // pipeline appends one compressed slab at a time). The open/metadata
  // latency is charged only when the file is created; every append pays
  // per-touched-stripe RPCs plus transfer time.
  WriteResult append_file(const std::string& path,
                          std::span<const std::byte> data,
                          int concurrent_clients = 1);

  // Stateful incremental writer over append_file: remembers whether the
  // open cost has been paid and accumulates bytes/seconds across appends.
  //
  // Registry accounting: the stream counts toward concurrent_writers()
  // only while data is actually moving — append() registers transiently
  // for the duration of the transfer, and a transport endpoint holds
  // engage() across its in-flight burst — so an open-but-idle stream never
  // inflates contended pricing for its whole scope.
  class AppendStream {
   public:
    WriteResult append(std::span<const std::byte> data,
                       int concurrent_clients = 1);
    const std::string& path() const { return path_; }
    PfsSimulator& pfs() const { return *pfs_; }
    std::size_t bytes_written() const { return bytes_; }
    double seconds_total() const { return seconds_; }

    // Registers this stream as an active writer until disengage() (used by
    // the sector transport while its rings hold in-flight descriptors).
    // Both are idempotent; the destructor disengages.
    void engage();
    void disengage();
    bool engaged() const { return engaged_; }

    ~AppendStream() { disengage(); }
    AppendStream(AppendStream&& o) noexcept
        : pfs_(o.pfs_), path_(std::move(o.path_)), bytes_(o.bytes_),
          seconds_(o.seconds_), engaged_(o.engaged_) {
      o.pfs_ = nullptr;
      o.engaged_ = false;
    }
    AppendStream(const AppendStream&) = delete;
    AppendStream& operator=(const AppendStream&) = delete;
    AppendStream& operator=(AppendStream&&) = delete;

   private:
    friend class PfsSimulator;
    AppendStream(PfsSimulator* pfs, std::string path)
        : pfs_(pfs), path_(std::move(path)) {}

    PfsSimulator* pfs_;
    std::string path_;
    std::size_t bytes_ = 0;
    double seconds_ = 0.0;
    bool engaged_ = false;
  };

  // Opens (creating or truncating) `path` for incremental writes.
  AppendStream open_append(const std::string& path);

  // Time to read a file back under the same contention model. Priced
  // symmetrically with appends: one open/metadata charge plus a per-stripe
  // RPC for every stripe unit the read touches, plus transfer time.
  WriteResult read_cost(const std::string& path,
                        int concurrent_clients = 1) const;

  // Reassembles the file from its stripes.
  Bytes read_file(const std::string& path) const;

  // A ranged fetch: the extent's bytes plus what the fetch cost.
  struct RangeRead {
    Bytes data;
    WriteResult cost;
  };

  // Fetches bytes [offset, offset + length) of `path` — the read mirror of
  // append_file. The fetch pays a per-touched-stripe RPC plus transfer at
  // the contended bandwidth; `pay_open` additionally charges the
  // open/metadata latency (a fresh open of the file). Throws
  // InvalidArgument when the extent reaches past end of file.
  RangeRead read_range(const std::string& path, std::size_t offset,
                       std::size_t length, int concurrent_clients = 1,
                       bool pay_open = true) const;

  // Stateful incremental reader over read_range: the open/metadata cost is
  // paid exactly once (on the first fetch), and bytes/seconds accumulate
  // across fetches — the fetch mirror of AppendStream, with the same
  // in-flight-only registry accounting (read() registers transiently; a
  // transport endpoint holds engage() across its burst).
  class ReadStream {
   public:
    RangeRead read(std::size_t offset, std::size_t length,
                   int concurrent_clients = 1);
    const std::string& path() const { return path_; }
    const PfsSimulator& pfs() const { return *pfs_; }
    // File size when the stream was opened.
    std::size_t size() const { return size_; }
    std::size_t bytes_read() const { return bytes_; }
    double seconds_total() const { return seconds_; }

    // Registers this stream as an active reader until disengage(); both
    // idempotent, destructor disengages. See AppendStream::engage().
    void engage();
    void disengage();
    bool engaged() const { return engaged_; }

    ~ReadStream() { disengage(); }
    ReadStream(ReadStream&& o) noexcept
        : pfs_(o.pfs_), path_(std::move(o.path_)), size_(o.size_),
          opened_(o.opened_), bytes_(o.bytes_), seconds_(o.seconds_),
          engaged_(o.engaged_) {
      o.pfs_ = nullptr;
      o.engaged_ = false;
    }
    ReadStream(const ReadStream&) = delete;
    ReadStream& operator=(const ReadStream&) = delete;
    ReadStream& operator=(ReadStream&&) = delete;

   private:
    friend class PfsSimulator;
    ReadStream(const PfsSimulator* pfs, std::string path, std::size_t size)
        : pfs_(pfs), path_(std::move(path)), size_(size) {}

    const PfsSimulator* pfs_;
    std::string path_;
    std::size_t size_ = 0;
    bool opened_ = false;
    std::size_t bytes_ = 0;
    double seconds_ = 0.0;
    bool engaged_ = false;
  };

  // Opens `path` for incremental ranged reads. Throws when absent.
  ReadStream open_read(const std::string& path) const;

  bool exists(const std::string& path) const;
  std::size_t file_size(const std::string& path) const;
  void remove(const std::string& path);
  std::vector<std::string> list_files() const;
  // Total bytes resident on each OST (for striping tests / balance checks).
  std::vector<std::size_t> ost_usage() const;

  // Transfer time for `bytes` under `concurrent_clients`-way contention,
  // without storing anything (used for modeled aggregate flows).
  double transfer_seconds(std::size_t bytes, int concurrent_clients) const;

  // --- concurrent-writer registry ------------------------------------------
  //
  // Historically every experiment told the contention model how many
  // clients were writing (`concurrent_clients`), which is only honest while
  // one world owns the file system. When independent (nodes, ranks) worlds
  // batch concurrently on the executor, each world registers its writing
  // fleet for its lifetime and asks concurrent_writers() for the *true*
  // number of simultaneously-writing clients across every overlapping
  // world — the count the Fig. 12 contention model should be fed.
  class WriterScope {
   public:
    // Registers `writers` simultaneously-writing clients until destruction.
    explicit WriterScope(PfsSimulator& pfs, int writers = 1);
    ~WriterScope();
    WriterScope(const WriterScope&) = delete;
    WriterScope& operator=(const WriterScope&) = delete;

   private:
    PfsSimulator* pfs_;
    int writers_;
  };

  // Writers registered right now / the high-water mark since construction
  // (or the last reset_writer_peak()).
  int concurrent_writers() const { return writers_.load(); }
  int peak_concurrent_writers() const { return writer_peak_.load(); }
  void reset_writer_peak() { writer_peak_.store(writers_.load()); }

  // Reader registry, symmetric with WriterScope: restart/analysis worlds
  // register their fetching fleets so batched readers can feed the
  // contention model the true simultaneously-reading client count.
  class ReaderScope {
   public:
    explicit ReaderScope(const PfsSimulator& pfs, int readers = 1);
    ~ReaderScope();
    ReaderScope(const ReaderScope&) = delete;
    ReaderScope& operator=(const ReaderScope&) = delete;

   private:
    const PfsSimulator* pfs_;
    int readers_;
  };

  int concurrent_readers() const { return readers_.load(); }
  int peak_concurrent_readers() const { return reader_peak_.load(); }
  void reset_reader_peak() { reader_peak_.store(readers_.load()); }

 private:
  struct StoredFile {
    std::size_t size = 0;
    int stripe_count = 0;
    std::size_t stripe_size = 0;
    int first_ost = 0;
    // stripes[k] = k-th stripe unit, resident on OST
    // (first_ost + k % stripe_count) % num_osts.
    std::vector<Bytes> stripes;
  };

  double effective_bandwidth(int concurrent_clients) const;
  // Shared read pricing: per-touched-stripe RPCs + transfer, with the
  // open/metadata charge only when `pay_open`.
  double range_read_seconds(std::size_t bytes, std::size_t stripes_touched,
                            int concurrent_clients, bool pay_open) const;

  // Registry bookkeeping shared by the scopes and the stream engagement:
  // adjust the live count and CAS the high-water mark.
  void register_writers(int n);
  void unregister_writers(int n) { writers_.fetch_sub(n); }
  void register_readers(int n) const;
  void unregister_readers(int n) const { readers_.fetch_sub(n); }

  PfsConfig config_;
  mutable std::mutex mu_;  // guards files_ and next_ost_
  std::map<std::string, StoredFile> files_;
  int next_ost_ = 0;
  std::atomic<int> writers_{0};
  std::atomic<int> writer_peak_{0};
  mutable std::atomic<int> readers_{0};
  mutable std::atomic<int> reader_peak_{0};
};

}  // namespace eblcio
