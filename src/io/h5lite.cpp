#include "io/h5lite.h"

#include <cstring>

#include "common/error.h"

namespace eblcio {
namespace {

constexpr std::uint32_t kH5Magic = 0x494c3548;  // "H5LI"
constexpr std::uint16_t kH5Version = 1;

// Modeled container-preparation throughput: HDF5's chunked layout writes
// from the application buffer with negligible staging.
constexpr double kPrepBandwidthBps = 6.0e9;
constexpr double kPerDatasetPrepS = 2.0e-5;

void encode_dataset(Bytes& out, const H5Dataset& ds) {
  append_string(out, ds.name);
  append_pod<std::uint8_t>(out, ds.dtype_code);
  append_pod<std::uint8_t>(out, static_cast<std::uint8_t>(ds.dims.size()));
  for (auto d : ds.dims) append_pod<std::uint64_t>(out, d);
  append_pod<std::uint32_t>(out,
                            static_cast<std::uint32_t>(ds.attributes.size()));
  for (const auto& [k, v] : ds.attributes) {
    append_string(out, k);
    append_string(out, v);
  }
  // Chunked layout: chunk table then raw chunk bytes.
  const std::size_t nchunks =
      ds.data.empty()
          ? 0
          : (ds.data.size() + H5LiteFile::kChunkSize - 1) /
                H5LiteFile::kChunkSize;
  append_pod<std::uint64_t>(out, ds.data.size());
  append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(nchunks));
  for (std::size_t c = 0; c < nchunks; ++c) {
    const std::size_t off = c * H5LiteFile::kChunkSize;
    const std::size_t len =
        std::min(H5LiteFile::kChunkSize, ds.data.size() - off);
    append_pod<std::uint64_t>(out, len);
    append_bytes(out, std::span<const std::byte>(ds.data).subspan(off, len));
  }
}

H5Dataset decode_dataset(ByteReader& r) {
  H5Dataset ds;
  ds.name = r.read_string();
  ds.dtype_code = r.read_pod<std::uint8_t>();
  const int nd = r.read_pod<std::uint8_t>();
  for (int i = 0; i < nd; ++i)
    ds.dims.push_back(static_cast<std::size_t>(r.read_pod<std::uint64_t>()));
  const auto nattrs = r.read_pod<std::uint32_t>();
  for (std::uint32_t i = 0; i < nattrs; ++i) {
    std::string k = r.read_string();
    ds.attributes[k] = r.read_string();
  }
  const auto total = r.read_pod<std::uint64_t>();
  const auto nchunks = r.read_pod<std::uint32_t>();
  ds.data.reserve(total);
  for (std::uint32_t c = 0; c < nchunks; ++c) {
    const auto len = r.read_pod<std::uint64_t>();
    auto chunk = r.read_bytes(len);
    ds.data.insert(ds.data.end(), chunk.begin(), chunk.end());
  }
  EBLCIO_CHECK_STREAM(ds.data.size() == total, "H5Lite: chunk size mismatch");
  return ds;
}

double prep_time(std::size_t bytes) {
  return kPerDatasetPrepS + static_cast<double>(bytes) / kPrepBandwidthBps;
}

}  // namespace

void H5LiteFile::add_dataset(H5Dataset ds) {
  datasets_.push_back(std::move(ds));
}

const H5Dataset& H5LiteFile::dataset(const std::string& name) const {
  for (const auto& ds : datasets_)
    if (ds.name == name) return ds;
  throw InvalidArgument("H5Lite: no dataset named " + name);
}

Bytes H5LiteFile::encode() const {
  Bytes out;
  append_pod<std::uint32_t>(out, kH5Magic);
  append_pod<std::uint16_t>(out, kH5Version);
  append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(datasets_.size()));
  for (const auto& ds : datasets_) encode_dataset(out, ds);
  return out;
}

H5LiteFile H5LiteFile::decode(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  EBLCIO_CHECK_STREAM(r.read_pod<std::uint32_t>() == kH5Magic,
                      "H5Lite: bad magic");
  EBLCIO_CHECK_STREAM(r.read_pod<std::uint16_t>() == kH5Version,
                      "H5Lite: bad version");
  const auto count = r.read_pod<std::uint32_t>();
  H5LiteFile f;
  for (std::uint32_t i = 0; i < count; ++i)
    f.add_dataset(decode_dataset(r));
  return f;
}

IoCost H5LiteTool::write_field(PfsSimulator& pfs, const std::string& path,
                               const Field& field, int concurrent_clients) {
  H5Dataset ds;
  ds.name = field.name().empty() ? "data" : field.name();
  ds.dtype_code = field.dtype() == DType::kFloat32 ? 0 : 1;
  ds.dims = field.shape().dims_vector();
  auto raw = field.bytes();
  ds.data.assign(raw.begin(), raw.end());

  H5LiteFile file;
  file.add_dataset(std::move(ds));
  const Bytes encoded = file.encode();

  IoCost cost;
  cost.prep_seconds = prep_time(encoded.size());
  cost.transfer_seconds =
      pfs.write_file(path, encoded, concurrent_clients).seconds;
  cost.bytes_written = encoded.size();
  return cost;
}

IoCost H5LiteTool::write_blob(PfsSimulator& pfs, const std::string& path,
                              const std::string& dataset_name,
                              std::span<const std::byte> blob,
                              int concurrent_clients) {
  H5Dataset ds;
  ds.name = dataset_name;
  ds.dtype_code = 2;
  ds.dims = {blob.size()};
  ds.attributes["content"] = "eblc-compressed";
  ds.data.assign(blob.begin(), blob.end());

  H5LiteFile file;
  file.add_dataset(std::move(ds));
  const Bytes encoded = file.encode();

  IoCost cost;
  cost.prep_seconds = prep_time(encoded.size());
  cost.transfer_seconds =
      pfs.write_file(path, encoded, concurrent_clients).seconds;
  cost.bytes_written = encoded.size();
  return cost;
}

Field H5LiteTool::read_field(PfsSimulator& pfs, const std::string& path) {
  const Bytes raw = pfs.read_file(path);
  const H5LiteFile file = H5LiteFile::decode(raw);
  EBLCIO_CHECK_STREAM(!file.datasets().empty(), "H5Lite: empty file");
  const H5Dataset& ds = file.datasets().front();
  EBLCIO_CHECK_STREAM(ds.dtype_code <= 1, "H5Lite: dataset is not a field");
  const Shape shape{std::span<const std::size_t>(ds.dims)};
  if (ds.dtype_code == 0) {
    NdArray<float> arr(shape);
    EBLCIO_CHECK_STREAM(ds.data.size() == arr.size_bytes(),
                        "H5Lite: data size mismatch");
    std::memcpy(arr.data(), ds.data.data(), ds.data.size());
    return Field(ds.name, std::move(arr));
  }
  NdArray<double> arr(shape);
  EBLCIO_CHECK_STREAM(ds.data.size() == arr.size_bytes(),
                      "H5Lite: data size mismatch");
  std::memcpy(arr.data(), ds.data.data(), ds.data.size());
  return Field(ds.name, std::move(arr));
}

Bytes H5LiteTool::read_blob(PfsSimulator& pfs, const std::string& path,
                            const std::string& dataset_name) {
  const Bytes raw = pfs.read_file(path);
  const H5LiteFile file = H5LiteFile::decode(raw);
  return file.dataset(dataset_name).data;
}

IoTool::ChunkProfile H5LiteTool::chunk_profile() const {
  ChunkProfile p;
  p.prep_bandwidth_bps = kPrepBandwidthBps;
  p.per_chunk_prep_s = kPerDatasetPrepS;
  p.close_footer_rpcs = 1;  // chunk B-tree commit
  return p;
}

}  // namespace eblcio
