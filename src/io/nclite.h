// NcLite: from-scratch NetCDF-classic-class container.
//
// Reproduces the structural behaviours of the classic NetCDF model that
// cost it energy in the paper's Fig. 11 relative to HDF5:
//  * a monolithic header (dimension / variable / attribute lists) that is
//    rewritten on every sync/enddef (extra metadata RPCs), and
//  * data staged through the library's internal conversion buffer before
//    hitting the file system (an extra full copy at modest bandwidth).
// The staging copy is actually performed when encoding, and the modeled
// costs reflect it, so the HDF5-vs-NetCDF gap emerges from mechanism.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "io/io_tool.h"

namespace eblcio {

struct NcVariable {
  std::string name;
  std::uint8_t dtype_code = 0;  // 0=float32, 1=float64, 2=opaque bytes
  std::vector<std::size_t> dims;
  std::map<std::string, std::string> attributes;
  Bytes data;
};

class NcLiteFile {
 public:
  void add_variable(NcVariable var);
  const std::vector<NcVariable>& variables() const { return variables_; }
  const NcVariable& variable(const std::string& name) const;

  // Encodes header + data sections; returns container bytes. `header_syncs`
  // reports how many header rewrites the classic write path performed.
  Bytes encode(int* header_syncs = nullptr) const;
  static NcLiteFile decode(std::span<const std::byte> bytes);

 private:
  std::vector<NcVariable> variables_;
};

class NcLiteTool : public IoTool {
 public:
  std::string name() const override { return "NetCDF"; }
  IoCost write_field(PfsSimulator& pfs, const std::string& path,
                     const Field& field, int concurrent_clients) override;
  IoCost write_blob(PfsSimulator& pfs, const std::string& path,
                    const std::string& dataset_name,
                    std::span<const std::byte> blob,
                    int concurrent_clients) override;
  Field read_field(PfsSimulator& pfs, const std::string& path) override;
  Bytes read_blob(PfsSimulator& pfs, const std::string& path,
                  const std::string& dataset_name) override;

 protected:
  // Chunked streaming: every chunk stages through the classic conversion
  // buffer, and close() performs the enddef + close header rewrites.
  ChunkProfile chunk_profile() const override;
};

}  // namespace eblcio
