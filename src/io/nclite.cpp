#include "io/nclite.h"

#include <cstring>

#include "common/error.h"

namespace eblcio {
namespace {

constexpr std::uint32_t kNcMagic = 0x05464443;  // "CDF\x05"

// Modeled classic-model costs: the conversion/staging buffer copy runs at
// well under memory bandwidth (single-threaded, format conversion), and
// every variable definition forces a header rewrite (metadata RPC).
constexpr double kStagingBandwidthBps = 0.9e9;
constexpr double kPerVariablePrepS = 6.0e-5;
constexpr int kHeaderSyncsPerVariable = 2;  // enddef + close

void encode_variable(Bytes& out, const NcVariable& v) {
  append_string(out, v.name);
  append_pod<std::uint8_t>(out, v.dtype_code);
  append_pod<std::uint8_t>(out, static_cast<std::uint8_t>(v.dims.size()));
  for (auto d : v.dims) append_pod<std::uint64_t>(out, d);
  append_pod<std::uint32_t>(out,
                            static_cast<std::uint32_t>(v.attributes.size()));
  for (const auto& [k, val] : v.attributes) {
    append_string(out, k);
    append_string(out, val);
  }
  append_pod<std::uint64_t>(out, v.data.size());
}

NcVariable decode_variable(ByteReader& r, std::uint64_t* data_size) {
  NcVariable v;
  v.name = r.read_string();
  v.dtype_code = r.read_pod<std::uint8_t>();
  const int nd = r.read_pod<std::uint8_t>();
  for (int i = 0; i < nd; ++i)
    v.dims.push_back(static_cast<std::size_t>(r.read_pod<std::uint64_t>()));
  const auto nattrs = r.read_pod<std::uint32_t>();
  for (std::uint32_t i = 0; i < nattrs; ++i) {
    std::string k = r.read_string();
    v.attributes[k] = r.read_string();
  }
  *data_size = r.read_pod<std::uint64_t>();
  return v;
}

}  // namespace

void NcLiteFile::add_variable(NcVariable var) {
  variables_.push_back(std::move(var));
}

const NcVariable& NcLiteFile::variable(const std::string& name) const {
  for (const auto& v : variables_)
    if (v.name == name) return v;
  throw InvalidArgument("NcLite: no variable named " + name);
}

Bytes NcLiteFile::encode(int* header_syncs) const {
  // Classic model: header section first (all metadata), then the data
  // section, variable by variable, each staged through a copy buffer.
  Bytes out;
  append_pod<std::uint32_t>(out, kNcMagic);
  append_pod<std::uint32_t>(out,
                            static_cast<std::uint32_t>(variables_.size()));
  for (const auto& v : variables_) encode_variable(out, v);

  for (const auto& v : variables_) {
    // The staging copy the classic library performs: data passes through an
    // intermediate buffer before landing in the file image.
    Bytes staged(v.data.size());
    std::memcpy(staged.data(), v.data.data(), v.data.size());
    append_bytes(out, staged);
  }
  if (header_syncs)
    *header_syncs =
        kHeaderSyncsPerVariable * static_cast<int>(variables_.size());
  return out;
}

NcLiteFile NcLiteFile::decode(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  EBLCIO_CHECK_STREAM(r.read_pod<std::uint32_t>() == kNcMagic,
                      "NcLite: bad magic");
  const auto count = r.read_pod<std::uint32_t>();
  NcLiteFile f;
  std::vector<std::uint64_t> sizes;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t size = 0;
    f.variables_.push_back(decode_variable(r, &size));
    sizes.push_back(size);
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    auto data = r.read_bytes(sizes[i]);
    f.variables_[i].data.assign(data.begin(), data.end());
  }
  return f;
}

namespace {

IoCost write_container(PfsSimulator& pfs, const std::string& path,
                       const NcLiteFile& file, int concurrent_clients) {
  int header_syncs = 0;
  const Bytes encoded = file.encode(&header_syncs);

  IoCost cost;
  cost.prep_seconds =
      kPerVariablePrepS * static_cast<double>(file.variables().size()) +
      static_cast<double>(encoded.size()) / kStagingBandwidthBps;
  const auto write = pfs.write_file(path, encoded, concurrent_clients);
  // Header rewrites: extra metadata round-trips beyond the data write.
  cost.transfer_seconds =
      write.seconds +
      header_syncs * pfs.config().open_latency_s;
  cost.bytes_written = encoded.size();
  return cost;
}

}  // namespace

IoCost NcLiteTool::write_field(PfsSimulator& pfs, const std::string& path,
                               const Field& field, int concurrent_clients) {
  NcVariable v;
  v.name = field.name().empty() ? "data" : field.name();
  v.dtype_code = field.dtype() == DType::kFloat32 ? 0 : 1;
  v.dims = field.shape().dims_vector();
  auto raw = field.bytes();
  v.data.assign(raw.begin(), raw.end());

  NcLiteFile file;
  file.add_variable(std::move(v));
  return write_container(pfs, path, file, concurrent_clients);
}

IoCost NcLiteTool::write_blob(PfsSimulator& pfs, const std::string& path,
                              const std::string& dataset_name,
                              std::span<const std::byte> blob,
                              int concurrent_clients) {
  NcVariable v;
  v.name = dataset_name;
  v.dtype_code = 2;
  v.dims = {blob.size()};
  v.attributes["content"] = "eblc-compressed";
  v.data.assign(blob.begin(), blob.end());

  NcLiteFile file;
  file.add_variable(std::move(v));
  return write_container(pfs, path, file, concurrent_clients);
}

Field NcLiteTool::read_field(PfsSimulator& pfs, const std::string& path) {
  const Bytes raw = pfs.read_file(path);
  const NcLiteFile file = NcLiteFile::decode(raw);
  EBLCIO_CHECK_STREAM(!file.variables().empty(), "NcLite: empty file");
  const NcVariable& v = file.variables().front();
  EBLCIO_CHECK_STREAM(v.dtype_code <= 1, "NcLite: variable is not a field");
  const Shape shape{std::span<const std::size_t>(v.dims)};
  if (v.dtype_code == 0) {
    NdArray<float> arr(shape);
    EBLCIO_CHECK_STREAM(v.data.size() == arr.size_bytes(),
                        "NcLite: data size mismatch");
    std::memcpy(arr.data(), v.data.data(), v.data.size());
    return Field(v.name, std::move(arr));
  }
  NdArray<double> arr(shape);
  EBLCIO_CHECK_STREAM(v.data.size() == arr.size_bytes(),
                      "NcLite: data size mismatch");
  std::memcpy(arr.data(), v.data.data(), v.data.size());
  return Field(v.name, std::move(arr));
}

Bytes NcLiteTool::read_blob(PfsSimulator& pfs, const std::string& path,
                            const std::string& dataset_name) {
  const Bytes raw = pfs.read_file(path);
  const NcLiteFile file = NcLiteFile::decode(raw);
  return file.variable(dataset_name).data;
}

IoTool::ChunkProfile NcLiteTool::chunk_profile() const {
  ChunkProfile p;
  p.prep_bandwidth_bps = kStagingBandwidthBps;
  p.per_chunk_prep_s = kPerVariablePrepS;
  p.close_header_syncs = kHeaderSyncsPerVariable;  // enddef + close
  p.staging_copy = true;
  return p;
}

}  // namespace eblcio
