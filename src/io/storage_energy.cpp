#include "io/storage_energy.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace eblcio {

const StorageDeviceModel& ssd_model() {
  static const StorageDeviceModel kSsd = {
      "SSD", 7.68e12, /*write_j_per_gb=*/8.0, /*idle_w=*/2.0,
      /*embodied_kgco2=*/280.0, /*rack_embodied_share=*/0.80};
  return kSsd;
}

const StorageDeviceModel& hdd_model() {
  static const StorageDeviceModel kHdd = {
      "HDD", 18.0e12, /*write_j_per_gb=*/25.0, /*idle_w=*/5.5,
      /*embodied_kgco2=*/30.0, /*rack_embodied_share=*/0.41};
  return kHdd;
}

StorageFootprint storage_footprint(const StorageDeviceModel& model,
                                   double bytes, double redundancy) {
  EBLCIO_CHECK_ARG(bytes >= 0.0 && redundancy >= 1.0,
                   "bad storage footprint arguments");
  StorageFootprint f;
  const double stored = bytes * redundancy;
  f.devices = std::ceil(stored / model.capacity_bytes);
  f.write_joules = stored / 1e9 * model.write_j_per_gb;
  f.embodied_kgco2 = f.devices * model.embodied_kgco2;
  return f;
}

double rack_embodied_reduction(const StorageDeviceModel& model,
                               double capacity_reduction_factor) {
  EBLCIO_CHECK_ARG(capacity_reduction_factor >= 1.0,
                   "reduction factor must be >= 1");
  // Device-embodied share shrinks with device count; the rest of the rack
  // (chassis, switches) is unchanged.
  const double devices_after = 1.0 / capacity_reduction_factor;
  const double saved = model.rack_embodied_share * (1.0 - devices_after);
  return saved;
}

}  // namespace eblcio
