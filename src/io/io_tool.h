// Uniform I/O-library interface (the role HDF5 / NetCDF play in Sec. IV-D).
//
// An IoTool serializes a payload — either a raw Field ("Original" in Fig.
// 11) or a compressed blob — into its container format and writes it
// through the PFS simulator. The returned cost separates container
// preparation time (real serialization work, charged as compute) from PFS
// transfer time, because the two phases draw different power.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/field.h"
#include "common/region.h"
#include "io/pfs.h"
#include "io/transport.h"

namespace eblcio {

struct IoCost {
  double prep_seconds = 0.0;      // container serialization / staging copies
  double transfer_seconds = 0.0;  // PFS time
  std::size_t bytes_written = 0;
  double total_seconds() const { return prep_seconds + transfer_seconds; }
};

// --- Chunked datasets ------------------------------------------------------
//
// A chunked dataset streams through a container one slab at a time: the
// writer appends self-contained chunks through the PFS append path, and the
// container commits a chunk index (offset/size per chunk) in its footer at
// close. Readers load the index with ranged reads and then fetch chunks
// individually — which is what lets the streaming pipelines
// (core/pipeline.h) run through the real container formats instead of a
// bespoke stream file. Every tool shares one wire layout (header, appended
// chunks, footer index) tagged with the owning tool's name; what differs
// per tool is the cost mechanism (HDF5 writes chunks direct from the
// caller's buffer; NetCDF stages each chunk through its conversion buffer
// and rewrites the header at close; ADIOS appends segments and commits one
// footer RPC).

// Dataset-level metadata carried by a chunked container.
struct ChunkedDatasetMeta {
  std::string name;
  std::uint8_t dtype_code = 2;  // same codes as H5Dataset / NcVariable
  std::vector<std::size_t> dims;  // logical dims of the full dataset
  std::map<std::string, std::string> attributes;
};

// One chunk's extent inside the container file.
struct ChunkExtent {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
};

// The decoded footer: dataset metadata plus every chunk's extent. Zoned
// containers (version 2) additionally carry one ZoneExtent per chunk — the
// row interval of the field that chunk's compressed blob covers — which is
// what lets a reader resolve a query box to its covering chunks without
// decoding anything.
struct ChunkIndex {
  ChunkedDatasetMeta meta;
  std::vector<ChunkExtent> chunks;
  std::vector<ZoneExtent> zones;  // empty for version-1 containers
  bool zoned() const { return !zones.empty(); }
  std::size_t total_bytes() const {
    std::size_t n = 0;
    for (const auto& c : chunks) n += static_cast<std::size_t>(c.size);
    return n;
  }
};

class IoTool {
 public:
  virtual ~IoTool() = default;
  virtual std::string name() const = 0;

  // Writes an uncompressed field as a dataset named field.name().
  virtual IoCost write_field(PfsSimulator& pfs, const std::string& path,
                             const Field& field,
                             int concurrent_clients = 1) = 0;

  // Writes an opaque compressed blob as a dataset with shape metadata.
  virtual IoCost write_blob(PfsSimulator& pfs, const std::string& path,
                            const std::string& dataset_name,
                            std::span<const std::byte> blob,
                            int concurrent_clients = 1) = 0;

  // Reads back the single dataset in `path` written by write_field.
  virtual Field read_field(PfsSimulator& pfs, const std::string& path) = 0;

  // Reads back a blob written by write_blob.
  virtual Bytes read_blob(PfsSimulator& pfs, const std::string& path,
                          const std::string& dataset_name) = 0;

  // --- chunked-dataset streaming -----------------------------------------

  // Stateful chunked-dataset writer. append_chunk streams one chunk
  // through the PFS append path (paying this tool's per-chunk prep plus
  // per-touched-stripe RPCs and transfer); close() commits the chunk-index
  // footer and the tool's close-time metadata syncs. The container is not
  // readable until close() has run.
  class ChunkWriter {
   public:
    IoCost append_chunk(std::span<const std::byte> chunk,
                        int concurrent_clients = 1);

    // Zoned form (containers opened with open_zoned): appends one chunk
    // together with the row interval its payload covers. The zone extents
    // must arrive in order and partition the dataset's leading dimension
    // by close() or close() throws.
    IoCost append_zone(std::span<const std::byte> chunk, ZoneExtent zone,
                       int concurrent_clients = 1);

    IoCost close(int concurrent_clients = 1);

    // Routes subsequent appends through a sector-ring transport endpoint
    // (io/transport.h): each chunk is *staged* into pooled fixed-size
    // sectors and the doorbell task ships them asynchronously, priced at
    // the PFS's live contended client count — the returned IoCost carries
    // only the prep share (transfer_seconds = 0); per-sector wire costs
    // accumulate in transport()->records(). Sectors land in staging
    // order, so the container bytes are identical to the blocking path.
    // close() drains the rings before committing the footer. Call after
    // the writer has reached its final location (the endpoint keeps a
    // pointer to this writer's stream), at most once.
    void enable_transport(const TransportConfig& config);
    bool transport_enabled() const { return transport_ != nullptr; }
    SectorWriter* transport() { return transport_.get(); }
    const SectorWriter* transport() const { return transport_.get(); }

    const std::string& path() const { return path_; }
    std::size_t chunks_written() const { return extents_.size(); }
    // Payload bytes appended so far (container framing excluded).
    std::size_t payload_bytes() const;
    bool closed() const { return closed_; }
    bool zoned() const { return zoned_; }
    // What writing the container header cost (charged at open).
    const IoCost& open_cost() const { return open_cost_; }

   private:
    friend class IoTool;
    ChunkWriter(const IoTool* tool, PfsSimulator& pfs, std::string path,
                ChunkedDatasetMeta meta, bool zoned);

    // Stages + appends one chunk and records its extent (shared by the
    // plain and zoned append paths).
    IoCost append_raw(std::span<const std::byte> chunk,
                      int concurrent_clients);

    const IoTool* tool_;
    PfsSimulator::AppendStream stream_;
    std::string path_;
    ChunkedDatasetMeta meta_;
    std::vector<ChunkExtent> extents_;
    std::vector<ZoneExtent> zones_;
    IoCost open_cost_;
    bool closed_ = false;
    bool zoned_ = false;
    // Container-offset cursor including staged-but-unretired sectors (the
    // stream's bytes_written() lags while sectors are in flight).
    std::size_t staged_bytes_ = 0;
    // Declared last so it drains before the stream is destroyed.
    std::unique_ptr<SectorWriter> transport_;
  };

  // Stateful chunked-dataset reader. Construction fetches and validates
  // the footer index with ranged reads (paying the open once, the way a
  // real reader opens the file and walks to its index); read_chunk then
  // fetches one chunk's extent.
  class ChunkReader {
   public:
    const ChunkIndex& index() const { return index_; }
    // What opening the container (footer + header fetches) cost.
    const IoCost& open_cost() const { return open_cost_; }

    // Fetches chunk `i`. The returned bytes are exactly what append_chunk
    // wrote. `cost_out`, when given, receives this fetch's prep/transfer.
    Bytes read_chunk(std::size_t i, IoCost* cost_out = nullptr,
                     int concurrent_clients = 1);

    // Routes chunk fetches through a sector-ring transport endpoint:
    // prefetch_chunk stages chunk i's ranged sector fetches (blocking only
    // on channel credits) and returns a message handle; await_chunk blocks
    // until the chunk assembles, applies the tool's staging copy, and
    // reports the same prep pricing as read_chunk with the message's
    // summed sector wire time as transfer. Call enable_transport after the
    // reader reached its final location, at most once; one thread
    // prefetches while another may await.
    void enable_transport(const TransportConfig& config);
    bool transport_enabled() const { return transport_ != nullptr; }
    SectorReader* transport() { return transport_.get(); }
    const SectorReader* transport() const { return transport_.get(); }
    std::size_t prefetch_chunk(std::size_t i);
    Bytes await_chunk(std::size_t handle, std::size_t i,
                      IoCost* cost_out = nullptr);

    // Resolves a query box to the indices of the zones it intersects.
    // Requires a zoned (version-2) container and a region that fits the
    // dataset dims; the covering set is computed from the footer index
    // alone — no chunk bytes are touched.
    std::vector<std::size_t> covering(const Region& region) const;

    // One fetched zone: its index, its exact appended bytes, and what the
    // ranged fetch cost.
    struct ZoneFetch {
      std::size_t zone = 0;
      Bytes blob;
      IoCost cost;
    };

    // Fetches only the zones covering `region` — one ranged PFS fetch per
    // covering chunk, nothing else.
    std::vector<ZoneFetch> read_zones(const Region& region,
                                      int concurrent_clients = 1);

   private:
    friend class IoTool;
    ChunkReader(const IoTool* tool, PfsSimulator& pfs,
                const std::string& path, int concurrent_clients);

    const IoTool* tool_;
    PfsSimulator::ReadStream stream_;
    ChunkIndex index_;
    IoCost open_cost_;
    // Declared last so outstanding fetches settle before the stream dies.
    std::unique_ptr<SectorReader> transport_;
  };

  // Opens a fresh chunked container at `path` (truncating any previous
  // file) holding one chunked dataset described by `meta`.
  ChunkWriter open_chunked(PfsSimulator& pfs, const std::string& path,
                           ChunkedDatasetMeta meta) const;

  // Opens a fresh *zoned* chunked container (format version 2): every
  // chunk is appended through append_zone with the row interval it covers,
  // and the footer commits a zone index alongside the chunk extents so
  // readers can serve partial-region queries. Version-1 containers are
  // byte-identical to what open_chunked always produced and still decode.
  ChunkWriter open_zoned(PfsSimulator& pfs, const std::string& path,
                         ChunkedDatasetMeta meta) const;

  // Opens a closed chunked container for reading. Throws CorruptStream
  // when the container is malformed, unclosed, or was written by a
  // different tool.
  ChunkReader open_chunked_reader(PfsSimulator& pfs, const std::string& path,
                                  int concurrent_clients = 1) const;

 protected:
  // Per-tool chunk mechanics: how chunk staging is priced and which
  // metadata syncs close() performs.
  struct ChunkProfile {
    double prep_bandwidth_bps = 6.0e9;  // chunk staging/prep throughput
    double per_chunk_prep_s = 2.0e-5;   // fixed per-chunk prep
    int close_header_syncs = 0;  // NetCDF-style header rewrites (open each)
    int close_footer_rpcs = 0;   // HDF5/ADIOS index commit (RPC each)
    bool staging_copy = false;   // chunk really staged through a buffer
  };
  virtual ChunkProfile chunk_profile() const = 0;
};

// Registry: "HDF5" or "NetCDF" (case-insensitive).
IoTool& io_tool(const std::string& name);
const std::vector<std::string>& io_tool_names();

}  // namespace eblcio
