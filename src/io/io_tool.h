// Uniform I/O-library interface (the role HDF5 / NetCDF play in Sec. IV-D).
//
// An IoTool serializes a payload — either a raw Field ("Original" in Fig.
// 11) or a compressed blob — into its container format and writes it
// through the PFS simulator. The returned cost separates container
// preparation time (real serialization work, charged as compute) from PFS
// transfer time, because the two phases draw different power.
#pragma once

#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/field.h"
#include "io/pfs.h"

namespace eblcio {

struct IoCost {
  double prep_seconds = 0.0;      // container serialization / staging copies
  double transfer_seconds = 0.0;  // PFS time
  std::size_t bytes_written = 0;
  double total_seconds() const { return prep_seconds + transfer_seconds; }
};

class IoTool {
 public:
  virtual ~IoTool() = default;
  virtual std::string name() const = 0;

  // Writes an uncompressed field as a dataset named field.name().
  virtual IoCost write_field(PfsSimulator& pfs, const std::string& path,
                             const Field& field,
                             int concurrent_clients = 1) = 0;

  // Writes an opaque compressed blob as a dataset with shape metadata.
  virtual IoCost write_blob(PfsSimulator& pfs, const std::string& path,
                            const std::string& dataset_name,
                            std::span<const std::byte> blob,
                            int concurrent_clients = 1) = 0;

  // Reads back the single dataset in `path` written by write_field.
  virtual Field read_field(PfsSimulator& pfs, const std::string& path) = 0;

  // Reads back a blob written by write_blob.
  virtual Bytes read_blob(PfsSimulator& pfs, const std::string& path,
                          const std::string& dataset_name) = 0;
};

// Registry: "HDF5" or "NetCDF" (case-insensitive).
IoTool& io_tool(const std::string& name);
const std::vector<std::string>& io_tool_names();

}  // namespace eblcio
