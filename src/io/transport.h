// Sector-ring transport: the asynchronous bottom half between the streamed
// pipelines and the PFS simulator.
//
// Modeled on the SRIO/DMA endpoint design of Cai900205's libips (fixed-size
// sectors, per-channel descriptor rings, doorbell-driven completion): an
// endpoint owns N channels, each with a ring of K fixed-size sector
// descriptors (= K credits). A producer *stages* a message's bytes into
// free sectors — copying into pooled sector buffers and consuming one
// credit per sector — rings a doorbell (an executor task), and blocks only
// when its target channel is out of credits. The doorbell task drains the
// staged sectors in staging order, pricing each transfer at the PFS's
// *live* contended client count, and retires descriptors in per-channel
// FIFO order, returning credits to stalled producers.
//
// Because sectors are served strictly in staging order, the container file
// bytes are identical to what the blocking per-chunk append path writes —
// the transport changes when bytes move and what each movement costs, never
// what lands on the PFS.
//
// Registry accounting: an endpoint registers its stream with the PFS
// writer/reader registry only while sectors are in flight (engage on the
// 0→1 transition, disengage when the rings empty), so an idle open stream
// no longer inflates concurrent_writers()/concurrent_readers() pricing for
// its whole scope.
//
// The endpoints are host machinery (threads, locks, pooled buffers). The
// modeled platform timeline of a transported pipeline — where staging
// stalls on credits, how channels overlap per-stripe RPC latency with
// transfer, how many sectors are in flight — is computed after the fact by
// the deterministic solvers at the bottom of this header, from the retired
// SectorRecords plus the pipeline's per-message compute times.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "io/pfs.h"
#include "parallel/executor.h"

namespace eblcio {

struct TransportConfig {
  std::size_t sector_bytes = 256u << 10;  // fixed sector payload size
  int ring_depth = 4;                     // descriptors (credits) per channel
  int channels = 2;                       // independent sector rings
};

// One retired sector descriptor: which message it carried, its staging
// ordinal and channel, and the modeled cost split of its wire transfer
// (per-stripe RPC share vs bytes-over-bandwidth share) at the contended
// client count it was priced with.
struct SectorRecord {
  std::size_t message = 0;  // producer message (slab / chunk ordinal)
  std::size_t sector = 0;   // global staging ordinal
  int channel = 0;
  std::size_t bytes = 0;
  int clients = 1;     // live contended client count at serve time
  double rpc_s = 0.0;  // RPC/metadata share of the transfer
  double xfer_s = 0.0; // bytes / effective-bandwidth share
};

// Host-side counters for one endpoint's lifetime.
struct TransportStats {
  std::size_t messages = 0;
  std::size_t sectors = 0;
  std::size_t bytes = 0;
  std::size_t credit_stalls = 0;  // host waits for a free descriptor
};

// Per-channel descriptor ring: `depth` credits. Staging a sector takes a
// credit; serving it retires the oldest in-flight descriptor (per-channel
// FIFO — the drainer serves in staging order). Guarded by the owning
// endpoint's mutex.
class SectorRing {
 public:
  explicit SectorRing(int depth) : depth_(depth) {}
  bool has_credit() const { return inflight_ < depth_; }
  void take_credit() { ++inflight_; ++staged_; }
  void retire() { --inflight_; ++retired_; }
  int inflight() const { return inflight_; }
  int depth() const { return depth_; }
  std::size_t staged() const { return staged_; }
  std::size_t retired() const { return retired_; }

 private:
  int depth_;
  int inflight_ = 0;
  std::size_t staged_ = 0;
  std::size_t retired_ = 0;
};

// --- Endpoints ---------------------------------------------------------------

// Write endpoint over one AppendStream. stage() splits a message into
// <= sector_bytes pieces (round-robin across channels in staging order),
// copies each into a pooled sector buffer under a channel credit, and
// rings the doorbell; the doorbell task appends staged sectors to the PFS
// in staging order — so the file bytes equal a blocking append of the same
// messages — and retires descriptors. Exactly one thread may stage (the
// pipeline's consumer); the drainer runs concurrently on the executor.
// A wire error is captured, every staged sector is flushed (buffers
// released, credits returned), and the error rethrows from the next
// stage()/drain().
class SectorWriter {
 public:
  SectorWriter(PfsSimulator::AppendStream& stream, TransportConfig config,
               Executor& ex = Executor::global());
  ~SectorWriter();  // drains; a pending wire error is swallowed
  SectorWriter(const SectorWriter&) = delete;
  SectorWriter& operator=(const SectorWriter&) = delete;

  // Stages `payload` as message `message`; blocks only when the target
  // channel is out of credits. Returns the number of sectors staged (an
  // empty payload still stages one empty sector so the message completes).
  std::size_t stage(std::size_t message, std::span<const std::byte> payload);

  // Blocks until every staged sector has retired; rethrows a wire error.
  void drain();

  const TransportConfig& config() const { return config_; }
  TransportStats stats() const;
  int inflight() const;
  // Retired descriptors in service (= staging) order. Stable only while
  // no sectors are in flight (after drain()).
  const std::vector<SectorRecord>& records() const { return records_; }

 private:
  struct Pending {
    std::size_t message = 0;
    std::size_t sector = 0;
    int channel = 0;
    Bytes data;  // pooled sector buffer
  };

  void drain_loop();
  void flush_locked();  // error path: release buffers, return credits

  PfsSimulator::AppendStream* stream_;
  TransportConfig config_;
  TaskGroup drainer_;

  mutable std::mutex mu_;
  std::condition_variable credit_cv_;  // staging waits for a descriptor
  std::condition_variable done_cv_;    // drain() waits for the rings to empty
  std::deque<Pending> queue_;
  std::vector<SectorRing> rings_;
  std::vector<SectorRecord> records_;
  TransportStats stats_;
  std::size_t next_sector_ = 0;
  int inflight_ = 0;
  bool drainer_active_ = false;
  std::exception_ptr error_;
};

// Read endpoint over one ReadStream: the fetch mirror of SectorWriter.
// request() stages the ranged sector fetches of one message (blocking only
// on credits) and returns a message handle; the doorbell task serves the
// fetches in staging order, assembling each message's bytes into a pooled
// buffer; await() blocks until a message's last sector lands and hands the
// assembled bytes (and the message's summed wire seconds) back. Exactly
// one thread may request; await may run on a different thread.
class SectorReader {
 public:
  SectorReader(PfsSimulator::ReadStream& stream, TransportConfig config,
               Executor& ex = Executor::global());
  ~SectorReader();  // waits for the drainer; unawaited buffers released
  SectorReader(const SectorReader&) = delete;
  SectorReader& operator=(const SectorReader&) = delete;

  // Stages the sector fetches for [offset, offset + length) and returns
  // the message handle await() redeems.
  std::size_t request(std::size_t offset, std::size_t length);

  // Blocks until the message assembles; rethrows a wire error (a fetch
  // that failed mid-message). `wire_s_out`, when given, receives the sum
  // of the message's per-sector rpc_s + xfer_s.
  Bytes await(std::size_t handle, double* wire_s_out = nullptr);

  // Blocks until every staged sector has been served.
  void drain();

  const TransportConfig& config() const { return config_; }
  TransportStats stats() const;
  int inflight() const;
  const std::vector<SectorRecord>& records() const { return records_; }

 private:
  struct Pending {
    std::size_t message = 0;
    std::size_t sector = 0;
    int channel = 0;
    std::size_t offset = 0;  // file offset of this sector
    std::size_t length = 0;
    std::size_t dst = 0;     // byte offset inside the message buffer
  };
  struct Message {
    Bytes data;  // pooled assembly buffer
    std::size_t remaining = 0;
    double wire_s = 0.0;
    bool done = false;
  };

  void drain_loop();
  void flush_locked();

  PfsSimulator::ReadStream* stream_;
  TransportConfig config_;
  TaskGroup drainer_;

  mutable std::mutex mu_;
  std::condition_variable credit_cv_;
  std::condition_variable done_cv_;
  std::deque<Pending> queue_;
  std::vector<SectorRing> rings_;
  std::map<std::size_t, Message> messages_;
  std::vector<SectorRecord> records_;
  TransportStats stats_;
  std::size_t next_sector_ = 0;
  std::size_t next_message_ = 0;
  int inflight_ = 0;
  bool drainer_active_ = false;
  std::exception_ptr error_;
};

// --- Modeled timeline solvers ----------------------------------------------
//
// The deterministic platform schedules of a transported pipeline. Inputs
// are modeled (platform) seconds: per-sector rpc_s/xfer_s from the retired
// records, per-message compute from the monitor (dilated). The wire model
// serializes transfers on the shared client link in staging order — N
// channels overlap per-sector RPC latency with the previous sector's
// transfer, they do not multiply the client's bandwidth.

// Write side: message i becomes stageable when its compression finishes
// (the same producer/queue recurrence the blocking pipeline used, with
// staging completion in the writer's role); the staging cursor pays the
// per-message container prep, stalls when the target channel is out of
// credits, and each staged sector's transfer starts when its channel and
// the link are free.
struct WriteTimeline {
  double makespan_s = 0.0;      // last sector retired (open included)
  double credit_stall_s = 0.0;  // staging time lost waiting for credits
  double mean_inflight = 0.0;   // time-averaged sectors in flight
  int peak_inflight = 0;        // max sectors simultaneously in flight
};
WriteTimeline solve_write_timeline(const TransportConfig& config,
                                   std::span<const SectorRecord> sectors,
                                   std::span<const double> produce_s,
                                   std::span<const double> stage_prep_s,
                                   std::size_t queue_depth, double open_s);

// Read side: message i's sector requests are staged (costlessly) once a
// pipeline slot frees, gated per sector by channel credits; the consumer
// decodes message i (consume_s[i] = prep + decompress) once its last
// sector lands and message i-1 is decoded.
struct ReadTimeline {
  double makespan_s = 0.0;      // last message consumed
  double credit_stall_s = 0.0;
  double mean_inflight = 0.0;
  int peak_inflight = 0;
};
ReadTimeline solve_read_timeline(const TransportConfig& config,
                                 std::span<const SectorRecord> sectors,
                                 std::span<const double> consume_s,
                                 std::size_t queue_depth, double open_s);

}  // namespace eblcio
