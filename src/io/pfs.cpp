#include "io/pfs.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace eblcio {

PfsSimulator::PfsSimulator(PfsConfig config) : config_(config) {
  EBLCIO_CHECK_ARG(config_.num_osts >= 1, "PFS needs at least one OST");
  EBLCIO_CHECK_ARG(config_.stripe_count >= 1 &&
                       config_.stripe_count <= config_.num_osts,
                   "stripe count must be in [1, num_osts]");
  EBLCIO_CHECK_ARG(config_.stripe_size > 0, "stripe size must be positive");
}

double PfsSimulator::effective_bandwidth(int concurrent_clients) const {
  const int clients = std::max(concurrent_clients, 1);
  const double aggregate = config_.num_osts * config_.ost_bandwidth_bps;
  const double stripe_limit =
      config_.stripe_count * config_.ost_bandwidth_bps;
  const double share = aggregate / clients;
  return std::min({config_.client_bandwidth_bps, stripe_limit, share});
}

double PfsSimulator::transfer_seconds(std::size_t bytes,
                                      int concurrent_clients) const {
  const int clients = std::max(concurrent_clients, 1);
  const double bw = effective_bandwidth(clients);
  const std::size_t nstripes =
      bytes == 0 ? 0 : (bytes + config_.stripe_size - 1) / config_.stripe_size;
  // Metadata service queues across clients: each open costs the base
  // latency plus its share of the MDS backlog.
  const double mds = config_.open_latency_s +
                     config_.mds_service_s * static_cast<double>(clients);
  return mds + static_cast<double>(nstripes) * config_.rpc_latency_s +
         static_cast<double>(bytes) / bw;
}

PfsSimulator::WriteResult PfsSimulator::write_file(
    const std::string& path, std::span<const std::byte> data,
    int concurrent_clients) {
  StoredFile f;
  f.size = data.size();
  f.stripe_count = config_.stripe_count;
  f.stripe_size = config_.stripe_size;
  for (std::size_t off = 0; off < data.size(); off += config_.stripe_size) {
    const std::size_t len = std::min(config_.stripe_size, data.size() - off);
    f.stripes.emplace_back(data.begin() + off, data.begin() + off + len);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    f.first_ost = next_ost_;
    next_ost_ = (next_ost_ + config_.stripe_count) % config_.num_osts;
    files_[path] = std::move(f);
  }

  WriteResult r;
  r.bytes = data.size();
  r.seconds = transfer_seconds(data.size(), concurrent_clients);
  r.effective_bw_bps = effective_bandwidth(concurrent_clients);
  return r;
}

PfsSimulator::WriteResult PfsSimulator::append_file(
    const std::string& path, std::span<const std::byte> data,
    int concurrent_clients) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = files_.find(path);
  const bool creating = it == files_.end();
  if (creating) {
    StoredFile f;
    f.stripe_count = config_.stripe_count;
    f.stripe_size = config_.stripe_size;
    f.first_ost = next_ost_;
    next_ost_ = (next_ost_ + config_.stripe_count) % config_.num_osts;
    it = files_.emplace(path, std::move(f)).first;
  }
  StoredFile& f = it->second;

  // Fill the trailing partial stripe first, then allocate new units.
  std::size_t stripes_touched = 0;
  std::size_t off = 0;
  if (!f.stripes.empty() && f.stripes.back().size() < f.stripe_size) {
    Bytes& tail = f.stripes.back();
    const std::size_t take =
        std::min(f.stripe_size - tail.size(), data.size());
    tail.insert(tail.end(), data.begin(), data.begin() + take);
    off += take;
    ++stripes_touched;
  }
  while (off < data.size()) {
    const std::size_t len = std::min(f.stripe_size, data.size() - off);
    f.stripes.emplace_back(data.begin() + off, data.begin() + off + len);
    off += len;
    ++stripes_touched;
  }
  f.size += data.size();
  lock.unlock();

  const int clients = std::max(concurrent_clients, 1);
  const double bw = effective_bandwidth(clients);
  WriteResult r;
  r.bytes = data.size();
  r.effective_bw_bps = bw;
  r.seconds = static_cast<double>(stripes_touched) * config_.rpc_latency_s +
              static_cast<double>(data.size()) / bw;
  if (creating)
    r.seconds += config_.open_latency_s +
                 config_.mds_service_s * static_cast<double>(clients);
  return r;
}

PfsSimulator::AppendStream PfsSimulator::open_append(const std::string& path) {
  remove(path);  // truncate: streams always start a fresh container
  return AppendStream(this, path);
}

PfsSimulator::WriteResult PfsSimulator::AppendStream::append(
    std::span<const std::byte> data, int concurrent_clients) {
  WriteResult r = pfs_->append_file(path_, data, concurrent_clients);
  bytes_ += r.bytes;
  seconds_ += r.seconds;
  return r;
}

PfsSimulator::WriteResult PfsSimulator::read_cost(
    const std::string& path, int concurrent_clients) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  EBLCIO_CHECK_ARG(it != files_.end(), "no such file: " + path);
  WriteResult r;
  r.bytes = it->second.size;
  r.seconds = transfer_seconds(it->second.size, concurrent_clients);
  r.effective_bw_bps = effective_bandwidth(concurrent_clients);
  return r;
}

Bytes PfsSimulator::read_file(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  EBLCIO_CHECK_ARG(it != files_.end(), "no such file: " + path);
  Bytes out;
  out.reserve(it->second.size);
  for (const Bytes& s : it->second.stripes)
    out.insert(out.end(), s.begin(), s.end());
  return out;
}

bool PfsSimulator::exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

std::size_t PfsSimulator::file_size(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  EBLCIO_CHECK_ARG(it != files_.end(), "no such file: " + path);
  return it->second.size;
}

void PfsSimulator::remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(path);
}

std::vector<std::string> PfsSimulator::list_files() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, file] : files_) names.push_back(name);
  return names;
}

std::vector<std::size_t> PfsSimulator::ost_usage() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::size_t> usage(config_.num_osts, 0);
  for (const auto& [name, file] : files_) {
    for (std::size_t k = 0; k < file.stripes.size(); ++k) {
      const int ost =
          (file.first_ost + static_cast<int>(k % file.stripe_count)) %
          config_.num_osts;
      usage[ost] += file.stripes[k].size();
    }
  }
  return usage;
}

PfsSimulator::WriterScope::WriterScope(PfsSimulator& pfs, int writers)
    : pfs_(&pfs), writers_(writers) {
  EBLCIO_CHECK_ARG(writers >= 1, "writer scope needs at least one writer");
  const int now = pfs_->writers_.fetch_add(writers_) + writers_;
  int peak = pfs_->writer_peak_.load();
  while (peak < now && !pfs_->writer_peak_.compare_exchange_weak(peak, now)) {
  }
}

PfsSimulator::WriterScope::~WriterScope() { pfs_->writers_.fetch_sub(writers_); }

}  // namespace eblcio
