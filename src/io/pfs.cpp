#include "io/pfs.h"

#include "common/buffer_pool.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace eblcio {

PfsSimulator::PfsSimulator(PfsConfig config) : config_(config) {
  EBLCIO_CHECK_ARG(config_.num_osts >= 1, "PFS needs at least one OST");
  EBLCIO_CHECK_ARG(config_.stripe_count >= 1 &&
                       config_.stripe_count <= config_.num_osts,
                   "stripe count must be in [1, num_osts]");
  EBLCIO_CHECK_ARG(config_.stripe_size > 0, "stripe size must be positive");
}

double PfsSimulator::effective_bandwidth(int concurrent_clients) const {
  const int clients = std::max(concurrent_clients, 1);
  const double aggregate = config_.num_osts * config_.ost_bandwidth_bps;
  const double stripe_limit =
      config_.stripe_count * config_.ost_bandwidth_bps;
  const double share = aggregate / clients;
  return std::min({config_.client_bandwidth_bps, stripe_limit, share});
}

double PfsSimulator::transfer_seconds(std::size_t bytes,
                                      int concurrent_clients) const {
  const int clients = std::max(concurrent_clients, 1);
  const double bw = effective_bandwidth(clients);
  const std::size_t nstripes =
      bytes == 0 ? 0 : (bytes + config_.stripe_size - 1) / config_.stripe_size;
  // Metadata service queues across clients: each open costs the base
  // latency plus its share of the MDS backlog.
  const double mds = config_.open_latency_s +
                     config_.mds_service_s * static_cast<double>(clients);
  return mds + static_cast<double>(nstripes) * config_.rpc_latency_s +
         static_cast<double>(bytes) / bw;
}

PfsSimulator::WriteResult PfsSimulator::write_file(
    const std::string& path, std::span<const std::byte> data,
    int concurrent_clients) {
  StoredFile f;
  f.size = data.size();
  f.stripe_count = config_.stripe_count;
  f.stripe_size = config_.stripe_size;
  for (std::size_t off = 0; off < data.size(); off += config_.stripe_size) {
    const std::size_t len = std::min(config_.stripe_size, data.size() - off);
    f.stripes.emplace_back(data.begin() + off, data.begin() + off + len);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    f.first_ost = next_ost_;
    next_ost_ = (next_ost_ + config_.stripe_count) % config_.num_osts;
    files_[path] = std::move(f);
  }

  WriteResult r;
  r.bytes = data.size();
  r.seconds = transfer_seconds(data.size(), concurrent_clients);
  r.effective_bw_bps = effective_bandwidth(concurrent_clients);
  return r;
}

PfsSimulator::WriteResult PfsSimulator::append_file(
    const std::string& path, std::span<const std::byte> data,
    int concurrent_clients) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = files_.find(path);
  const bool creating = it == files_.end();
  if (creating) {
    StoredFile f;
    f.stripe_count = config_.stripe_count;
    f.stripe_size = config_.stripe_size;
    f.first_ost = next_ost_;
    next_ost_ = (next_ost_ + config_.stripe_count) % config_.num_osts;
    it = files_.emplace(path, std::move(f)).first;
  }
  StoredFile& f = it->second;

  // Fill the trailing partial stripe first, then allocate new units.
  std::size_t stripes_touched = 0;
  std::size_t off = 0;
  if (!f.stripes.empty() && f.stripes.back().size() < f.stripe_size) {
    Bytes& tail = f.stripes.back();
    const std::size_t take =
        std::min(f.stripe_size - tail.size(), data.size());
    tail.insert(tail.end(), data.begin(), data.begin() + take);
    off += take;
    ++stripes_touched;
  }
  while (off < data.size()) {
    const std::size_t len = std::min(f.stripe_size, data.size() - off);
    f.stripes.emplace_back(data.begin() + off, data.begin() + off + len);
    off += len;
    ++stripes_touched;
  }
  f.size += data.size();
  lock.unlock();

  const int clients = std::max(concurrent_clients, 1);
  const double bw = effective_bandwidth(clients);
  WriteResult r;
  r.bytes = data.size();
  r.effective_bw_bps = bw;
  r.seconds = static_cast<double>(stripes_touched) * config_.rpc_latency_s +
              static_cast<double>(data.size()) / bw;
  if (creating)
    r.seconds += config_.open_latency_s +
                 config_.mds_service_s * static_cast<double>(clients);
  return r;
}

PfsSimulator::AppendStream PfsSimulator::open_append(const std::string& path) {
  remove(path);  // truncate: streams always start a fresh container
  return AppendStream(this, path);
}

PfsSimulator::WriteResult PfsSimulator::AppendStream::append(
    std::span<const std::byte> data, int concurrent_clients) {
  // Count this stream as a live writer only for the transfer itself (a
  // transport endpoint holding engage() across its burst stays counted).
  const bool transient = !engaged_;
  if (transient) engage();
  WriteResult r = pfs_->append_file(path_, data, concurrent_clients);
  if (transient) disengage();
  bytes_ += r.bytes;
  seconds_ += r.seconds;
  return r;
}

void PfsSimulator::AppendStream::engage() {
  if (engaged_ || pfs_ == nullptr) return;
  engaged_ = true;
  pfs_->register_writers(1);
}

void PfsSimulator::AppendStream::disengage() {
  if (!engaged_ || pfs_ == nullptr) return;
  engaged_ = false;
  pfs_->unregister_writers(1);
}

double PfsSimulator::range_read_seconds(std::size_t bytes,
                                        std::size_t stripes_touched,
                                        int concurrent_clients,
                                        bool pay_open) const {
  const int clients = std::max(concurrent_clients, 1);
  double seconds =
      static_cast<double>(stripes_touched) * config_.rpc_latency_s +
      static_cast<double>(bytes) / effective_bandwidth(clients);
  if (pay_open)
    seconds += config_.open_latency_s +
               config_.mds_service_s * static_cast<double>(clients);
  return seconds;
}

PfsSimulator::WriteResult PfsSimulator::read_cost(
    const std::string& path, int concurrent_clients) const {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = files_.find(path);
  EBLCIO_CHECK_ARG(it != files_.end(), "no such file: " + path);
  const std::size_t size = it->second.size;
  const std::size_t nstripes = it->second.stripes.size();
  lock.unlock();
  // One open plus a per-stripe RPC for every stripe the whole-file read
  // touches — the same pricing a matching sequence of appends paid.
  WriteResult r;
  r.bytes = size;
  r.seconds = range_read_seconds(size, nstripes, concurrent_clients, true);
  r.effective_bw_bps = effective_bandwidth(concurrent_clients);
  return r;
}

PfsSimulator::RangeRead PfsSimulator::read_range(const std::string& path,
                                                 std::size_t offset,
                                                 std::size_t length,
                                                 int concurrent_clients,
                                                 bool pay_open) const {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = files_.find(path);
  EBLCIO_CHECK_ARG(it != files_.end(), "no such file: " + path);
  const StoredFile& f = it->second;
  // Overflow-safe extent check: a corrupt chunk index may carry offsets
  // near SIZE_MAX, and offset + length must not wrap.
  EBLCIO_CHECK_ARG(length <= f.size && offset <= f.size - length,
                   "read_range past end of file: " + path);

  RangeRead r;
  // Ranged fetches are the per-slab hot path of the streamed read
  // pipeline; recycling the fetch buffer makes steady-state reads
  // allocation-free at this layer (consumers release() once drained).
  r.data = BufferPool::global().acquire(length);
  r.data.reserve(length);
  std::size_t stripes_touched = 0;
  if (length > 0) {
    // Stripe unit k holds [k * stripe_size, (k + 1) * stripe_size); only
    // the trailing unit may be partial, so indexing is direct.
    const std::size_t first = offset / f.stripe_size;
    const std::size_t last = (offset + length - 1) / f.stripe_size;
    stripes_touched = last - first + 1;
    for (std::size_t k = first; k <= last; ++k) {
      const std::size_t stripe_begin = k * f.stripe_size;
      const std::size_t lo =
          offset > stripe_begin ? offset - stripe_begin : 0;
      const std::size_t hi =
          std::min(f.stripes[k].size(), offset + length - stripe_begin);
      r.data.insert(r.data.end(), f.stripes[k].begin() + lo,
                    f.stripes[k].begin() + hi);
    }
  }
  lock.unlock();

  r.cost.bytes = length;
  r.cost.effective_bw_bps = effective_bandwidth(concurrent_clients);
  r.cost.seconds =
      range_read_seconds(length, stripes_touched, concurrent_clients,
                         pay_open);
  return r;
}

PfsSimulator::ReadStream PfsSimulator::open_read(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  EBLCIO_CHECK_ARG(it != files_.end(), "no such file: " + path);
  return ReadStream(this, path, it->second.size);
}

PfsSimulator::RangeRead PfsSimulator::ReadStream::read(
    std::size_t offset, std::size_t length, int concurrent_clients) {
  const bool transient = !engaged_;
  if (transient) engage();
  RangeRead r =
      pfs_->read_range(path_, offset, length, concurrent_clients, !opened_);
  if (transient) disengage();
  opened_ = true;
  bytes_ += r.cost.bytes;
  seconds_ += r.cost.seconds;
  return r;
}

void PfsSimulator::ReadStream::engage() {
  if (engaged_ || pfs_ == nullptr) return;
  engaged_ = true;
  pfs_->register_readers(1);
}

void PfsSimulator::ReadStream::disengage() {
  if (!engaged_ || pfs_ == nullptr) return;
  engaged_ = false;
  pfs_->unregister_readers(1);
}

Bytes PfsSimulator::read_file(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  EBLCIO_CHECK_ARG(it != files_.end(), "no such file: " + path);
  Bytes out;
  out.reserve(it->second.size);
  for (const Bytes& s : it->second.stripes)
    out.insert(out.end(), s.begin(), s.end());
  return out;
}

bool PfsSimulator::exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

std::size_t PfsSimulator::file_size(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  EBLCIO_CHECK_ARG(it != files_.end(), "no such file: " + path);
  return it->second.size;
}

void PfsSimulator::remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(path);
}

std::vector<std::string> PfsSimulator::list_files() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, file] : files_) names.push_back(name);
  return names;
}

std::vector<std::size_t> PfsSimulator::ost_usage() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::size_t> usage(config_.num_osts, 0);
  for (const auto& [name, file] : files_) {
    for (std::size_t k = 0; k < file.stripes.size(); ++k) {
      const int ost =
          (file.first_ost + static_cast<int>(k % file.stripe_count)) %
          config_.num_osts;
      usage[ost] += file.stripes[k].size();
    }
  }
  return usage;
}

void PfsSimulator::register_writers(int n) {
  const int now = writers_.fetch_add(n) + n;
  int peak = writer_peak_.load();
  while (peak < now && !writer_peak_.compare_exchange_weak(peak, now)) {
  }
}

void PfsSimulator::register_readers(int n) const {
  const int now = readers_.fetch_add(n) + n;
  int peak = reader_peak_.load();
  while (peak < now && !reader_peak_.compare_exchange_weak(peak, now)) {
  }
}

PfsSimulator::WriterScope::WriterScope(PfsSimulator& pfs, int writers)
    : pfs_(&pfs), writers_(writers) {
  EBLCIO_CHECK_ARG(writers >= 1, "writer scope needs at least one writer");
  pfs_->register_writers(writers_);
}

PfsSimulator::WriterScope::~WriterScope() {
  pfs_->unregister_writers(writers_);
}

PfsSimulator::ReaderScope::ReaderScope(const PfsSimulator& pfs, int readers)
    : pfs_(&pfs), readers_(readers) {
  EBLCIO_CHECK_ARG(readers >= 1, "reader scope needs at least one reader");
  pfs_->register_readers(readers_);
}

PfsSimulator::ReaderScope::~ReaderScope() {
  pfs_->unregister_readers(readers_);
}

}  // namespace eblcio
