// Storage-side energy and embodied-emissions estimator for the paper's
// Sec. VII extrapolations (storage-device-count reduction and embodied
// carbon of storage racks, citing McAllister et al., HotCarbon'24).
#pragma once

#include <cstdint>
#include <string>

namespace eblcio {

struct StorageDeviceModel {
  std::string kind;             // "SSD" or "HDD"
  double capacity_bytes;
  double write_j_per_gb;        // device energy per GB written
  double idle_w;                // per-device idle draw
  double embodied_kgco2;        // manufacturing emissions per device
  // Share of a storage rack's total emissions that is embodied in the
  // devices themselves (80% for SSD racks, 41% for HDD racks — Sec. VII).
  double rack_embodied_share;
};

const StorageDeviceModel& ssd_model();
const StorageDeviceModel& hdd_model();

struct StorageFootprint {
  double devices = 0.0;           // devices needed for the capacity
  double write_joules = 0.0;      // device-side energy for one full write
  double embodied_kgco2 = 0.0;
};

// Footprint for storing `bytes` (with the given redundancy overhead).
StorageFootprint storage_footprint(const StorageDeviceModel& model,
                                   double bytes, double redundancy = 1.25);

// Fractional reduction in a rack's total embodied emissions when capacity
// shrinks by `capacity_reduction_factor` (e.g. 100x for CR=100 data).
double rack_embodied_reduction(const StorageDeviceModel& model,
                               double capacity_reduction_factor);

}  // namespace eblcio
