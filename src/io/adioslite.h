// AdiosLite: ADIOS-2/BP-class container (the paper's Sec. II-A third I/O
// framework: "ADIOS provides a flexible framework allowing applications to
// switch between different I/O methods without code changes").
//
// Structural behaviours reproduced from the BP format family:
//  * data lands as appended per-writer "process group" segments (large,
//    sequential, no staging copy),
//  * a footer metadata index written once at close (a single extra RPC,
//    unlike NetCDF's per-variable header rewrites),
//  * readers locate variables through the footer index.
// These are what make ADIOS the cheapest write path of the three tools.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "io/io_tool.h"

namespace eblcio {

struct BpVariable {
  std::string name;
  std::uint8_t dtype_code = 0;  // 0=float32, 1=float64, 2=opaque bytes
  std::vector<std::size_t> dims;
  std::map<std::string, std::string> attributes;
  Bytes data;
};

class AdiosLiteFile {
 public:
  void append_variable(BpVariable var);
  const std::vector<BpVariable>& variables() const { return variables_; }
  const BpVariable& variable(const std::string& name) const;

  // Encodes payload segments followed by the footer index; reports the
  // number of footer syncs (always 1).
  Bytes encode(int* footer_syncs = nullptr) const;
  static AdiosLiteFile decode(std::span<const std::byte> bytes);

 private:
  std::vector<BpVariable> variables_;
};

class AdiosLiteTool : public IoTool {
 public:
  std::string name() const override { return "ADIOS"; }
  IoCost write_field(PfsSimulator& pfs, const std::string& path,
                     const Field& field, int concurrent_clients) override;
  IoCost write_blob(PfsSimulator& pfs, const std::string& path,
                    const std::string& dataset_name,
                    std::span<const std::byte> blob,
                    int concurrent_clients) override;
  Field read_field(PfsSimulator& pfs, const std::string& path) override;
  Bytes read_blob(PfsSimulator& pfs, const std::string& path,
                  const std::string& dataset_name) override;

 protected:
  // Chunked streaming is BP's native shape: appended segments, no staging,
  // one footer-index RPC at close.
  ChunkProfile chunk_profile() const override;
};

}  // namespace eblcio
