// H5Lite: from-scratch HDF5-class self-describing container.
//
// Implements the structural features of HDF5 that matter to the paper's I/O
// measurements: a superblock, named datasets with dtype/shape metadata and
// string attributes, and chunked data layout written straight from the
// caller's buffer (no staging copy) — the direct chunked path is why HDF5
// is the energy-efficient choice in Fig. 11.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "io/io_tool.h"

namespace eblcio {

// One dataset inside an H5Lite file.
struct H5Dataset {
  std::string name;
  std::uint8_t dtype_code = 0;  // 0=float32, 1=float64, 2=opaque bytes
  std::vector<std::size_t> dims;
  std::map<std::string, std::string> attributes;
  Bytes data;
};

// In-memory representation of a file; encode/decode to container bytes.
class H5LiteFile {
 public:
  static constexpr std::size_t kChunkSize = 1u << 20;

  void add_dataset(H5Dataset ds);
  const std::vector<H5Dataset>& datasets() const { return datasets_; }
  const H5Dataset& dataset(const std::string& name) const;

  Bytes encode() const;
  static H5LiteFile decode(std::span<const std::byte> bytes);

 private:
  std::vector<H5Dataset> datasets_;
};

class H5LiteTool : public IoTool {
 public:
  std::string name() const override { return "HDF5"; }
  IoCost write_field(PfsSimulator& pfs, const std::string& path,
                     const Field& field, int concurrent_clients) override;
  IoCost write_blob(PfsSimulator& pfs, const std::string& path,
                    const std::string& dataset_name,
                    std::span<const std::byte> blob,
                    int concurrent_clients) override;
  Field read_field(PfsSimulator& pfs, const std::string& path) override;
  Bytes read_blob(PfsSimulator& pfs, const std::string& path,
                  const std::string& dataset_name) override;

 protected:
  // Chunked streaming: direct from the caller's buffer (no staging), with
  // one chunk-B-tree commit RPC at close.
  ChunkProfile chunk_profile() const override;
};

}  // namespace eblcio
