#include "io/io_tool.h"

#include <algorithm>
#include <cctype>
#include <cstring>

#include "common/buffer_pool.h"
#include "common/error.h"
#include "io/adioslite.h"
#include "io/h5lite.h"
#include "io/nclite.h"

namespace eblcio {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// Shared chunked-container framing. The header is written at open, chunks
// are appended raw (their extents live in the footer, so no inline
// framing), and the footer index commits at close with its own start
// offset in the trailing 8 bytes — the same locate-by-footer scheme BP
// files use, which a reader can reach with three ranged fetches.
//
// Version 1 (the PR-4 wire format) is frozen: header version 1 + "CIDX"
// footer holding (offset, size) per chunk. Version 2 adds the zone index:
// header version 2 + "ZIDX" footer holding (offset, size, row_start, rows)
// per chunk. A version-1 writer still emits byte-identical containers, and
// the reader accepts both (cross-checking that the header version and the
// footer magic agree).
constexpr std::uint32_t kChunkMagic = 0x4b434245;        // "EBCK"
constexpr std::uint32_t kChunkFooterMagic = 0x58444943;  // "CIDX"
constexpr std::uint32_t kZoneFooterMagic = 0x5844495a;   // "ZIDX"
constexpr std::uint16_t kChunkVersion = 1;
constexpr std::uint16_t kZonedVersion = 2;

Bytes encode_chunk_header(const std::string& tool,
                          const ChunkedDatasetMeta& meta,
                          std::uint16_t version) {
  Bytes out;
  append_pod<std::uint32_t>(out, kChunkMagic);
  append_pod<std::uint16_t>(out, version);
  append_string(out, tool);
  append_string(out, meta.name);
  append_pod<std::uint8_t>(out, meta.dtype_code);
  append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(meta.dims.size()));
  for (std::size_t d : meta.dims) append_pod<std::uint64_t>(out, d);
  append_pod<std::uint32_t>(out,
                            static_cast<std::uint32_t>(meta.attributes.size()));
  for (const auto& [k, v] : meta.attributes) {
    append_string(out, k);
    append_string(out, v);
  }
  return out;
}

ChunkedDatasetMeta decode_chunk_header(std::span<const std::byte> bytes,
                                       const std::string& expected_tool,
                                       std::uint16_t expected_version) {
  ByteReader r(bytes);
  EBLCIO_CHECK_STREAM(r.read_pod<std::uint32_t>() == kChunkMagic,
                      "chunked container: bad magic");
  EBLCIO_CHECK_STREAM(r.read_pod<std::uint16_t>() == expected_version,
                      "chunked container: header/footer version mismatch");
  const std::string tool = r.read_string();
  EBLCIO_CHECK_STREAM(tool == expected_tool,
                      "chunked container was written by " + tool +
                          ", not " + expected_tool);
  ChunkedDatasetMeta meta;
  meta.name = r.read_string();
  meta.dtype_code = r.read_pod<std::uint8_t>();
  const auto ndims = r.read_pod<std::uint32_t>();
  for (std::uint32_t i = 0; i < ndims; ++i)
    meta.dims.push_back(static_cast<std::size_t>(r.read_pod<std::uint64_t>()));
  const auto nattrs = r.read_pod<std::uint32_t>();
  for (std::uint32_t i = 0; i < nattrs; ++i) {
    std::string k = r.read_string();
    meta.attributes[k] = r.read_string();
  }
  return meta;
}

Bytes encode_chunk_footer(const std::vector<ChunkExtent>& extents,
                          std::uint64_t footer_start) {
  Bytes out;
  append_pod<std::uint32_t>(out, kChunkFooterMagic);
  append_pod<std::uint64_t>(out, static_cast<std::uint64_t>(extents.size()));
  for (const auto& e : extents) {
    append_pod<std::uint64_t>(out, e.offset);
    append_pod<std::uint64_t>(out, e.size);
  }
  append_pod<std::uint64_t>(out, footer_start);
  return out;
}

Bytes encode_zone_footer(const std::vector<ChunkExtent>& extents,
                         const std::vector<ZoneExtent>& zones,
                         std::uint64_t footer_start) {
  Bytes out;
  append_pod<std::uint32_t>(out, kZoneFooterMagic);
  append_pod<std::uint64_t>(out, static_cast<std::uint64_t>(extents.size()));
  for (std::size_t i = 0; i < extents.size(); ++i) {
    append_pod<std::uint64_t>(out, extents[i].offset);
    append_pod<std::uint64_t>(out, extents[i].size);
    append_pod<std::uint64_t>(out, zones[i].row_start);
    append_pod<std::uint64_t>(out, zones[i].rows);
  }
  append_pod<std::uint64_t>(out, footer_start);
  return out;
}

}  // namespace

// --- ChunkWriter -----------------------------------------------------------

IoTool::ChunkWriter::ChunkWriter(const IoTool* tool, PfsSimulator& pfs,
                                 std::string path, ChunkedDatasetMeta meta,
                                 bool zoned)
    : tool_(tool),
      stream_(pfs.open_append(path)),
      path_(std::move(path)),
      meta_(std::move(meta)),
      zoned_(zoned) {
  const ChunkProfile profile = tool_->chunk_profile();
  const Bytes header = encode_chunk_header(
      tool_->name(), meta_, zoned_ ? kZonedVersion : kChunkVersion);
  open_cost_.prep_seconds =
      profile.per_chunk_prep_s +
      static_cast<double>(header.size()) / profile.prep_bandwidth_bps;
  open_cost_.transfer_seconds = stream_.append(header).seconds;
  open_cost_.bytes_written = header.size();
}

IoCost IoTool::ChunkWriter::append_chunk(std::span<const std::byte> chunk,
                                         int concurrent_clients) {
  EBLCIO_CHECK_ARG(!closed_, "append_chunk after close: " + path_);
  EBLCIO_CHECK_ARG(!zoned_,
                   "zoned container requires append_zone: " + path_);
  return append_raw(chunk, concurrent_clients);
}

IoCost IoTool::ChunkWriter::append_zone(std::span<const std::byte> chunk,
                                        ZoneExtent zone,
                                        int concurrent_clients) {
  EBLCIO_CHECK_ARG(!closed_, "append_zone after close: " + path_);
  EBLCIO_CHECK_ARG(zoned_,
                   "append_zone on an unzoned container: " + path_);
  EBLCIO_CHECK_ARG(zone.rows > 0, "zone covers no rows: " + path_);
  const std::uint64_t expected =
      zones_.empty() ? 0 : zones_.back().row_start + zones_.back().rows;
  EBLCIO_CHECK_ARG(zone.row_start == expected,
                   "zone extents must partition the rows in order: " + path_);
  IoCost cost = append_raw(chunk, concurrent_clients);
  zones_.push_back(zone);
  return cost;
}

void IoTool::ChunkWriter::enable_transport(const TransportConfig& config) {
  EBLCIO_CHECK_ARG(!closed_, "enable_transport after close: " + path_);
  EBLCIO_CHECK_ARG(transport_ == nullptr,
                   "transport already enabled: " + path_);
  staged_bytes_ = stream_.bytes_written();
  transport_ = std::make_unique<SectorWriter>(stream_, config);
}

IoCost IoTool::ChunkWriter::append_raw(std::span<const std::byte> chunk,
                                       int concurrent_clients) {
  const ChunkProfile profile = tool_->chunk_profile();

  IoCost cost;
  cost.prep_seconds =
      profile.per_chunk_prep_s +
      static_cast<double>(chunk.size()) / profile.prep_bandwidth_bps;
  cost.bytes_written = chunk.size();

  if (transport_) {
    // Transported append: the chunk is staged into pooled sectors and
    // shipped by the doorbell task; its wire cost lands per sector in the
    // endpoint's records, priced at completion-time contention. The
    // extent's offset comes from the staging cursor — the stream's
    // bytes_written() lags while sectors are in flight. The staging
    // memcpy into sector buffers is the tool's conversion-buffer copy, so
    // staging_copy tools take no extra pass here.
    ChunkExtent extent;
    extent.offset = staged_bytes_;
    extent.size = chunk.size();
    transport_->stage(extents_.size(), chunk);
    staged_bytes_ += chunk.size();
    extents_.push_back(extent);
    return cost;
  }

  ChunkExtent extent;
  extent.offset = stream_.bytes_written();
  extent.size = chunk.size();

  if (profile.staging_copy) {
    // The classic-model conversion buffer: the chunk really passes through
    // an intermediate copy before landing in the container. The copy is a
    // pooled buffer — append() lands the bytes in the PFS stripes, so the
    // staging allocation recycles across chunks.
    Bytes staged = BufferPool::global().acquire(chunk.size());
    staged.resize(chunk.size());
    std::memcpy(staged.data(), chunk.data(), chunk.size());
    cost.transfer_seconds = stream_.append(staged, concurrent_clients).seconds;
    BufferPool::global().release(std::move(staged));
  } else {
    cost.transfer_seconds = stream_.append(chunk, concurrent_clients).seconds;
  }
  extents_.push_back(extent);
  return cost;
}

IoCost IoTool::ChunkWriter::close(int concurrent_clients) {
  EBLCIO_CHECK_ARG(!closed_, "double close: " + path_);
  // Every staged sector must land before the footer commits (and before
  // footer_start reads the stream's byte count). A wire error surfaces
  // here, before a broken container could be sealed.
  if (transport_) transport_->drain();
  if (zoned_ && !meta_.dims.empty()) {
    const std::uint64_t covered =
        zones_.empty() ? 0 : zones_.back().row_start + zones_.back().rows;
    EBLCIO_CHECK_ARG(covered == meta_.dims[0],
                     "zone extents do not cover the dataset rows: " + path_);
  }
  const ChunkProfile profile = tool_->chunk_profile();
  const PfsConfig& pfs_config = stream_.pfs().config();

  const std::uint64_t footer_start =
      static_cast<std::uint64_t>(stream_.bytes_written());
  const Bytes footer = zoned_
                           ? encode_zone_footer(extents_, zones_, footer_start)
                           : encode_chunk_footer(extents_, footer_start);
  IoCost cost;
  cost.prep_seconds =
      profile.per_chunk_prep_s +
      static_cast<double>(footer.size()) / profile.prep_bandwidth_bps;
  cost.transfer_seconds =
      stream_.append(footer, concurrent_clients).seconds +
      profile.close_header_syncs * pfs_config.open_latency_s +
      profile.close_footer_rpcs * pfs_config.rpc_latency_s;
  cost.bytes_written = footer.size();
  closed_ = true;
  return cost;
}

std::size_t IoTool::ChunkWriter::payload_bytes() const {
  std::size_t n = 0;
  for (const auto& e : extents_) n += static_cast<std::size_t>(e.size);
  return n;
}

// --- ChunkReader -----------------------------------------------------------

IoTool::ChunkReader::ChunkReader(const IoTool* tool, PfsSimulator& pfs,
                                 const std::string& path,
                                 int concurrent_clients)
    : tool_(tool), stream_(pfs.open_read(path)) {
  const ChunkProfile profile = tool_->chunk_profile();
  const std::size_t size = stream_.size();
  EBLCIO_CHECK_STREAM(size >= 8 + 4 + 2,
                      "chunked container too small: " + path);

  // Locate the footer through its trailing start offset, then parse the
  // index and finally the header — three ranged fetches, open paid once.
  const Bytes tail = stream_.read(size - 8, 8, concurrent_clients).data;
  std::uint64_t footer_start = 0;
  std::memcpy(&footer_start, tail.data(), 8);
  EBLCIO_CHECK_STREAM(footer_start <= size - 8,
                      "chunked container: bad footer offset (unclosed "
                      "or truncated?): " + path);

  const Bytes footer =
      stream_
          .read(static_cast<std::size_t>(footer_start),
                size - 8 - static_cast<std::size_t>(footer_start),
                concurrent_clients)
          .data;
  ByteReader r(footer);
  const auto footer_magic = r.read_pod<std::uint32_t>();
  EBLCIO_CHECK_STREAM(footer_magic == kChunkFooterMagic ||
                          footer_magic == kZoneFooterMagic,
                      "chunked container: bad footer magic: " + path);
  const bool zoned = footer_magic == kZoneFooterMagic;
  const std::size_t entry_bytes = zoned ? 32 : 16;
  const auto nchunks = r.read_pod<std::uint64_t>();
  EBLCIO_CHECK_STREAM(footer.size() >= 12 &&
                          nchunks == (footer.size() - 12) / entry_bytes &&
                          (footer.size() - 12) % entry_bytes == 0,
                      "chunked container: index size mismatch: " + path);
  index_.chunks.reserve(static_cast<std::size_t>(nchunks));
  std::uint64_t next_row = 0;
  for (std::uint64_t i = 0; i < nchunks; ++i) {
    ChunkExtent e;
    e.offset = r.read_pod<std::uint64_t>();
    e.size = r.read_pod<std::uint64_t>();
    EBLCIO_CHECK_STREAM(e.size <= footer_start && e.offset <= footer_start &&
                            e.offset + e.size <= footer_start,
                        "chunked container: chunk extent out of range: " +
                            path);
    index_.chunks.push_back(e);
    if (zoned) {
      ZoneExtent z;
      z.row_start = r.read_pod<std::uint64_t>();
      z.rows = r.read_pod<std::uint64_t>();
      EBLCIO_CHECK_STREAM(z.rows > 0 && z.row_start == next_row,
                          "chunked container: zone index is not a "
                          "contiguous row partition: " + path);
      next_row = z.row_start + z.rows;
      index_.zones.push_back(z);
    }
  }

  const std::size_t header_len =
      index_.chunks.empty()
          ? static_cast<std::size_t>(footer_start)
          : static_cast<std::size_t>(index_.chunks.front().offset);
  const Bytes header =
      stream_.read(0, header_len, concurrent_clients).data;
  index_.meta = decode_chunk_header(header, tool_->name(),
                                    zoned ? kZonedVersion : kChunkVersion);
  if (zoned) {
    // The zone index must cover exactly the dataset's leading dimension —
    // a forged extent past the field (or short of it) fails here, before
    // any partial read trusts it.
    EBLCIO_CHECK_STREAM(
        !index_.meta.dims.empty() && next_row == index_.meta.dims[0],
        "chunked container: zone index does not cover the dataset: " + path);
  }

  open_cost_.prep_seconds =
      profile.per_chunk_prep_s +
      static_cast<double>(footer.size() + header.size() + 8) /
          profile.prep_bandwidth_bps;
  open_cost_.transfer_seconds = stream_.seconds_total();
  open_cost_.bytes_written = 0;
}

Bytes IoTool::ChunkReader::read_chunk(std::size_t i, IoCost* cost_out,
                                      int concurrent_clients) {
  EBLCIO_CHECK_ARG(i < index_.chunks.size(),
                   "chunk index out of range: " + stream_.path());
  const ChunkExtent& e = index_.chunks[i];
  const ChunkProfile profile = tool_->chunk_profile();

  auto fetched = stream_.read(static_cast<std::size_t>(e.offset),
                              static_cast<std::size_t>(e.size),
                              concurrent_clients);
  if (profile.staging_copy) {
    // Mirror the write path: the classic library stages fetched data
    // through its conversion buffer before handing it to the caller. The
    // drained fetch buffer goes straight back to the pool.
    Bytes staged = BufferPool::global().acquire(fetched.data.size());
    staged.resize(fetched.data.size());
    std::memcpy(staged.data(), fetched.data.data(), fetched.data.size());
    BufferPool::global().release(std::move(fetched.data));
    fetched.data = std::move(staged);
  }
  if (cost_out) {
    cost_out->prep_seconds =
        profile.per_chunk_prep_s +
        static_cast<double>(e.size) / profile.prep_bandwidth_bps;
    cost_out->transfer_seconds = fetched.cost.seconds;
    cost_out->bytes_written = 0;
  }
  return std::move(fetched.data);
}

void IoTool::ChunkReader::enable_transport(const TransportConfig& config) {
  EBLCIO_CHECK_ARG(transport_ == nullptr,
                   "transport already enabled: " + stream_.path());
  transport_ = std::make_unique<SectorReader>(stream_, config);
}

std::size_t IoTool::ChunkReader::prefetch_chunk(std::size_t i) {
  EBLCIO_CHECK_ARG(transport_ != nullptr,
                   "prefetch_chunk without transport: " + stream_.path());
  EBLCIO_CHECK_ARG(i < index_.chunks.size(),
                   "chunk index out of range: " + stream_.path());
  const ChunkExtent& e = index_.chunks[i];
  return transport_->request(static_cast<std::size_t>(e.offset),
                             static_cast<std::size_t>(e.size));
}

Bytes IoTool::ChunkReader::await_chunk(std::size_t handle, std::size_t i,
                                       IoCost* cost_out) {
  EBLCIO_CHECK_ARG(transport_ != nullptr,
                   "await_chunk without transport: " + stream_.path());
  EBLCIO_CHECK_ARG(i < index_.chunks.size(),
                   "chunk index out of range: " + stream_.path());
  const ChunkProfile profile = tool_->chunk_profile();
  double wire_s = 0.0;
  Bytes data = transport_->await(handle, &wire_s);
  if (profile.staging_copy) {
    // Same conversion-buffer mirror as read_chunk.
    Bytes staged = BufferPool::global().acquire(data.size());
    staged.resize(data.size());
    std::memcpy(staged.data(), data.data(), data.size());
    BufferPool::global().release(std::move(data));
    data = std::move(staged);
  }
  if (cost_out) {
    cost_out->prep_seconds =
        profile.per_chunk_prep_s +
        static_cast<double>(index_.chunks[i].size) /
            profile.prep_bandwidth_bps;
    cost_out->transfer_seconds = wire_s;
    cost_out->bytes_written = 0;
  }
  return data;
}

std::vector<std::size_t> IoTool::ChunkReader::covering(
    const Region& region) const {
  EBLCIO_CHECK_ARG(index_.zoned(),
                   "container has no zone index: " + stream_.path());
  validate_region(region, index_.meta.dims);
  return covering_zones(index_.zones, region.start[0], region.shape[0]);
}

std::vector<IoTool::ChunkReader::ZoneFetch> IoTool::ChunkReader::read_zones(
    const Region& region, int concurrent_clients) {
  std::vector<ZoneFetch> out;
  for (std::size_t zone : covering(region)) {
    ZoneFetch f;
    f.zone = zone;
    f.blob = read_chunk(zone, &f.cost, concurrent_clients);
    out.push_back(std::move(f));
  }
  return out;
}

IoTool::ChunkWriter IoTool::open_chunked(PfsSimulator& pfs,
                                         const std::string& path,
                                         ChunkedDatasetMeta meta) const {
  return ChunkWriter(this, pfs, path, std::move(meta), /*zoned=*/false);
}

IoTool::ChunkWriter IoTool::open_zoned(PfsSimulator& pfs,
                                       const std::string& path,
                                       ChunkedDatasetMeta meta) const {
  return ChunkWriter(this, pfs, path, std::move(meta), /*zoned=*/true);
}

IoTool::ChunkReader IoTool::open_chunked_reader(PfsSimulator& pfs,
                                                const std::string& path,
                                                int concurrent_clients) const {
  return ChunkReader(this, pfs, path, concurrent_clients);
}

IoTool& io_tool(const std::string& name) {
  static H5LiteTool h5;
  static NcLiteTool nc;
  static AdiosLiteTool bp;
  const std::string key = lower(name);
  if (key == "hdf5" || key == "h5") return h5;
  if (key == "netcdf" || key == "nc") return nc;
  if (key == "adios" || key == "bp") return bp;
  throw InvalidArgument("unknown I/O tool: " + name);
}

// The two libraries the paper benchmarks (Sec. IV-D). ADIOS is available
// via io_tool("ADIOS") as an extension but is kept out of the paper sweeps.
const std::vector<std::string>& io_tool_names() {
  static const std::vector<std::string> kNames = {"HDF5", "NetCDF"};
  return kNames;
}

}  // namespace eblcio
