#include "io/io_tool.h"

#include <algorithm>
#include <cctype>

#include "common/error.h"
#include "io/adioslite.h"
#include "io/h5lite.h"
#include "io/nclite.h"

namespace eblcio {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

IoTool& io_tool(const std::string& name) {
  static H5LiteTool h5;
  static NcLiteTool nc;
  static AdiosLiteTool bp;
  const std::string key = lower(name);
  if (key == "hdf5" || key == "h5") return h5;
  if (key == "netcdf" || key == "nc") return nc;
  if (key == "adios" || key == "bp") return bp;
  throw InvalidArgument("unknown I/O tool: " + name);
}

// The two libraries the paper benchmarks (Sec. IV-D). ADIOS is available
// via io_tool("ADIOS") as an extension but is kept out of the paper sweeps.
const std::vector<std::string>& io_tool_names() {
  static const std::vector<std::string> kNames = {"HDF5", "NetCDF"};
  return kNames;
}

}  // namespace eblcio
