#include "metrics/error_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace eblcio {
namespace {

template <typename T>
ErrorStats stats_impl(const NdArray<T>& a, const NdArray<T>& b) {
  EBLCIO_CHECK_ARG(a.shape() == b.shape(), "field shape mismatch");
  const std::size_t n = a.num_elements();
  ErrorStats st;
  if (n == 0) return st;

  double lo = a[0], hi = a[0];
  double sum_sq = 0.0;
  double max_abs = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = a[i];
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    const double e = x - static_cast<double>(b[i]);
    sum_sq += e * e;
    max_abs = std::max(max_abs, std::abs(e));
  }
  st.mse = sum_sq / static_cast<double>(n);
  st.max_abs_error = max_abs;
  st.value_range = hi - lo;
  st.max_rel_error =
      st.value_range > 0 ? max_abs / st.value_range
                         : (max_abs > 0 ? std::numeric_limits<double>::infinity()
                                        : 0.0);
  // Eq. 2 uses max(D) as the peak; follow the paper exactly.
  const double peak = hi;
  st.psnr_db = st.mse > 0
                   ? 20.0 * std::log10(std::abs(peak) / std::sqrt(st.mse))
                   : std::numeric_limits<double>::infinity();

  // Lag-1 autocorrelation of the pointwise error signal.
  if (n > 1) {
    double mean_e = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      mean_e += (static_cast<double>(a[i]) - b[i]);
    mean_e /= static_cast<double>(n);
    double num = 0.0, den = 0.0;
    double prev = (static_cast<double>(a[0]) - b[0]) - mean_e;
    den += prev * prev;
    for (std::size_t i = 1; i < n; ++i) {
      const double cur = (static_cast<double>(a[i]) - b[i]) - mean_e;
      num += prev * cur;
      den += cur * cur;
      prev = cur;
    }
    st.error_autocorr_lag1 = den > 0 ? num / den : 0.0;
  }
  return st;
}

}  // namespace

ErrorStats compute_error_stats(const Field& original, const Field& recon) {
  EBLCIO_CHECK_ARG(original.dtype() == recon.dtype(), "field dtype mismatch");
  if (original.dtype() == DType::kFloat32)
    return stats_impl(original.as<float>(), recon.as<float>());
  return stats_impl(original.as<double>(), recon.as<double>());
}

bool check_value_range_bound(const Field& original, const Field& recon,
                             double eb_rel) {
  const auto st = compute_error_stats(original, recon);
  // Tiny epsilon absorbs double-rounding in the bound computation itself.
  return st.max_abs_error <= eb_rel * st.value_range * (1.0 + 1e-9) + 1e-300;
}

}  // namespace eblcio
