#include "metrics/quality_report.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace eblcio {
namespace {

template <typename T>
QualityReport assess_impl(const Field& original, const Field& recon) {
  const NdArray<T>& a = original.as<T>();
  const NdArray<T>& b = recon.as<T>();
  EBLCIO_CHECK_ARG(a.shape() == b.shape(), "field shape mismatch");
  const std::size_t n = a.num_elements();

  QualityReport rep;
  rep.basic = compute_error_stats(original, recon);
  rep.n = n;
  if (n == 0) return rep;

  // Single pass for means.
  double mean_a = 0.0, mean_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);

  // Second pass: variances, covariance, error accumulation.
  double var_a = 0.0, var_b = 0.0, cov = 0.0, err_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    var_a += da * da;
    var_b += db * db;
    cov += da * db;
    err_sum += static_cast<double>(a[i]) - b[i];
  }
  var_a /= static_cast<double>(n);
  var_b /= static_cast<double>(n);
  cov /= static_cast<double>(n);
  rep.mean_error = err_sum / static_cast<double>(n);

  rep.nrmse = rep.basic.value_range > 0
                  ? std::sqrt(rep.basic.mse) / rep.basic.value_range
                  : 0.0;
  rep.pearson_r = (var_a > 0 && var_b > 0)
                      ? cov / std::sqrt(var_a * var_b)
                      : 1.0;

  // Global SSIM with the standard stabilizers, dynamic range = value range.
  const double range = std::max(rep.basic.value_range, 1e-300);
  const double c1 = (0.01 * range) * (0.01 * range);
  const double c2 = (0.03 * range) * (0.03 * range);
  rep.ssim = ((2 * mean_a * mean_b + c1) * (2 * cov + c2)) /
             ((mean_a * mean_a + mean_b * mean_b + c1) *
              (var_a + var_b + c2));

  // Gradient preservation along the fastest axis: RMSE of first
  // differences, normalized by the field's own gradient RMS.
  const std::size_t fastest = a.shape().dim(a.ndims() - 1);
  if (fastest > 1) {
    double grad_err = 0.0, grad_rms = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if ((i + 1) % fastest == 0) continue;  // row boundary
      const double ga = static_cast<double>(a[i + 1]) - a[i];
      const double gb = static_cast<double>(b[i + 1]) - b[i];
      grad_err += (ga - gb) * (ga - gb);
      grad_rms += ga * ga;
      ++count;
    }
    if (count > 0 && grad_rms > 0)
      rep.gradient_rmse_ratio = std::sqrt(grad_err / grad_rms);
  }
  return rep;
}

}  // namespace

bool QualityReport::unbiased(double tol_rel) const {
  return std::fabs(mean_error) <= tol_rel * std::max(basic.value_range,
                                                     1e-300);
}

QualityReport assess_quality(const Field& original, const Field& recon) {
  EBLCIO_CHECK_ARG(original.dtype() == recon.dtype(),
                   "field dtype mismatch");
  return original.dtype() == DType::kFloat32
             ? assess_impl<float>(original, recon)
             : assess_impl<double>(original, recon);
}

std::string format_quality_report(const QualityReport& r) {
  std::ostringstream os;
  os << "quality report (" << r.n << " values)\n"
     << "  PSNR            : " << r.basic.psnr_db << " dB\n"
     << "  NRMSE           : " << r.nrmse << "\n"
     << "  max abs error   : " << r.basic.max_abs_error << "\n"
     << "  max rel error   : " << r.basic.max_rel_error << "\n"
     << "  pearson r       : " << r.pearson_r << "\n"
     << "  SSIM            : " << r.ssim << "\n"
     << "  gradient RMSE   : " << r.gradient_rmse_ratio
     << " (relative to field gradient RMS)\n"
     << "  mean error      : " << r.mean_error << "\n"
     << "  error lag-1 AC  : " << r.basic.error_autocorr_lag1 << "\n";
  return os.str();
}

}  // namespace eblcio
