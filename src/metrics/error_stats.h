// Reconstruction-quality metrics from Section III of the paper:
// MSE, PSNR (Eq. 2), maximum absolute / value-range-relative error (Eq. 1),
// and lag-k autocorrelation of the error field (the QoZ quality metric).
#pragma once

#include "common/field.h"

namespace eblcio {

struct ErrorStats {
  double mse = 0.0;
  double psnr_db = 0.0;        // Eq. 2: 20*log10(max(D)/sqrt(MSE))
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;  // relative to the original value range
  double value_range = 0.0;
  double error_autocorr_lag1 = 0.0;
};

// Computes quality metrics between an original field and its reconstruction.
// Both fields must have the same dtype and shape.
ErrorStats compute_error_stats(const Field& original, const Field& recon);

// True iff every element satisfies |x - x̂| <= eb_rel * range(original).
bool check_value_range_bound(const Field& original, const Field& recon,
                             double eb_rel);

// Compression ratio = original bytes / compressed bytes.
inline double compression_ratio(std::size_t original_bytes,
                                std::size_t compressed_bytes) {
  return compressed_bytes == 0
             ? 0.0
             : static_cast<double>(original_bytes) /
                   static_cast<double>(compressed_bytes);
}

}  // namespace eblcio
