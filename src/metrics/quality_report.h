// Z-checker-class reconstruction quality assessment (the paper's ref. [56],
// Tao et al., IJHPCA'19: "Z-checker: a framework for assessing lossy
// compression of scientific data").
//
// Computes the fuller battery of metrics the lossy-compression community
// uses beyond PSNR: normalized errors, correlation, SSIM-style structural
// similarity, gradient preservation and error-spectrum character, plus the
// per-application pass/fail verdicts of Sec. III.
#pragma once

#include <iosfwd>
#include <string>

#include "metrics/error_stats.h"

namespace eblcio {

struct QualityReport {
  ErrorStats basic;            // MSE/PSNR/max errors/autocorr
  double nrmse = 0.0;          // RMSE / value range
  double pearson_r = 1.0;      // correlation(original, reconstruction)
  double ssim = 1.0;           // global SSIM (luminance/contrast/structure)
  double gradient_rmse_ratio = 0.0;  // RMSE of first differences vs field's
                                     // own gradient RMS (feature smearing)
  double mean_error = 0.0;     // bias of the reconstruction
  std::size_t n = 0;

  // Convenience verdicts.
  bool passes_psnr(double min_db) const { return basic.psnr_db >= min_db; }
  bool unbiased(double tol_rel = 1e-3) const;
};

// Full quality battery between an original field and its reconstruction.
QualityReport assess_quality(const Field& original, const Field& recon);

// Human-readable multi-line summary (z-checker's report role).
std::string format_quality_report(const QualityReport& report);

}  // namespace eblcio
