#include "data/inflate.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace eblcio {
namespace {

template <typename T>
NdArray<T> inflate_impl(const NdArray<T>& in, int factor) {
  const Shape& s = in.shape();
  const int nd = s.ndims();
  std::vector<std::size_t> out_dims;
  for (int d = 0; d < nd; ++d) out_dims.push_back(s.dim(d) * factor);
  NdArray<T> out(Shape{std::span<const std::size_t>(out_dims)});

  const auto in_strides = s.strides();
  const auto out_strides = out.shape().strides();

  // Estimate a local-variation scale for the dither: mean |x[i+1]-x[i]|
  // along the fastest axis.
  double local_delta = 0.0;
  {
    const std::size_t n = in.num_elements();
    std::size_t count = 0;
    for (std::size_t i = 1; i < n; i += 97) {
      local_delta += std::abs(static_cast<double>(in[i]) - in[i - 1]);
      ++count;
    }
    if (count > 0) local_delta /= static_cast<double>(count);
  }
  Rng rng(0xD17Au);

  // Multilinear interpolation over up to 4 dimensions.
  const std::size_t total = out.num_elements();
  std::array<std::size_t, kMaxDims> idx{};
  for (std::size_t lin = 0; lin < total; ++lin) {
    // Decompose linear index.
    std::size_t rem = lin;
    for (int d = 0; d < nd; ++d) {
      idx[d] = rem / out_strides[d];
      rem %= out_strides[d];
    }
    // Source coordinates.
    std::array<std::size_t, kMaxDims> base{};
    std::array<double, kMaxDims> frac{};
    for (int d = 0; d < nd; ++d) {
      const double src = static_cast<double>(idx[d]) / factor;
      const std::size_t lo = std::min<std::size_t>(
          static_cast<std::size_t>(src), s.dim(d) - 1);
      base[d] = lo;
      frac[d] = std::min(src - static_cast<double>(lo), 1.0);
    }
    // Accumulate over the 2^nd corner set.
    double acc = 0.0;
    for (int corner = 0; corner < (1 << nd); ++corner) {
      double w = 1.0;
      std::size_t off = 0;
      for (int d = 0; d < nd; ++d) {
        const bool hi = corner & (1 << d);
        const std::size_t coord =
            hi ? std::min(base[d] + 1, s.dim(d) - 1) : base[d];
        w *= hi ? frac[d] : (1.0 - frac[d]);
        off += coord * in_strides[d];
      }
      if (w > 0.0) acc += w * static_cast<double>(in.data()[off]);
    }
    // High-frequency dither restores the sub-grid variation interpolation
    // removes; scaled down so the field stays visually identical.
    acc += 0.25 * local_delta * rng.normal();
    out[lin] = static_cast<T>(acc);
  }
  return out;
}

}  // namespace

Field inflate_field(const Field& input, int factor) {
  EBLCIO_CHECK_ARG(factor >= 1, "inflation factor must be >= 1");
  if (input.dtype() == DType::kFloat32)
    return Field(input.name(), inflate_impl(input.as<float>(), factor));
  return Field(input.name(), inflate_impl(input.as<double>(), factor));
}

}  // namespace eblcio
