// Data-set inflation for the Fig. 13 scaling study.
//
// The paper grows NYX by multiplying each dimension by 2..5 ("maintains the
// statistical properties and spatial patterns of the original simulation").
// We reproduce that with multilinear upsampling plus a small high-frequency
// dither so the inflated field is not artificially smoother (and hence not
// artificially more compressible) than the original.
#pragma once

#include "common/field.h"

namespace eblcio {

// Returns a field whose every dimension is `factor` times larger.
// factor >= 1; factor == 1 returns a copy.
Field inflate_field(const Field& input, int factor);

}  // namespace eblcio
