// SDRBench-style data set catalogue (paper Table II plus the Fig. 1 sets).
//
// The paper benchmarks snapshots of real simulations (CESM, HACC, NYX, S3D,
// QMCPack, ISABEL, EXAFEL). We do not have those files, so each entry here
// is a *seeded synthetic generator* that reproduces the statistical
// character that drives compressor behaviour: dimensionality, precision,
// smoothness/entropy profile and dynamic range. See DESIGN.md §2 for the
// substitution rationale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/field.h"

namespace eblcio {

struct DatasetSpec {
  std::string name;                    // catalogue key, e.g. "NYX"
  std::string description;             // provenance note
  std::vector<std::size_t> paper_dims; // dimensions used in the paper
  DType dtype = DType::kFloat32;
  // Divisor applied to paper_dims to obtain the library's default working
  // size (keeps default bench runtimes sane; use scale=1.0 for paper size).
  double default_shrink = 1.0;
};

// All catalogued data sets: CESM, HACC, NYX, S3D (Table II) and
// QMCPack, ISABEL, CESM-ATM, EXAFEL (Fig. 1).
const std::vector<DatasetSpec>& dataset_catalog();

// Looks up a spec by (case-insensitive) name; throws InvalidArgument.
const DatasetSpec& dataset_spec(const std::string& name);

// Working dimensions for a spec at a given relative scale, where scale=1.0
// means the full paper dimensions and e.g. 0.1 shrinks every dimension
// (1D sets shrink in their only dimension; the leading "field count"
// dimension of CESM/S3D is preserved).
std::vector<std::size_t> scaled_dims(const DatasetSpec& spec, double scale);

// Generates the data set at its *default working size* (paper dims shrunk
// by default_shrink), deterministic in `seed`.
Field generate_dataset(const std::string& name, std::uint64_t seed = 42);

// Generates the data set with explicit dimensions.
Field generate_dataset_dims(const std::string& name,
                            const std::vector<std::size_t>& dims,
                            std::uint64_t seed = 42);

}  // namespace eblcio
