#include "data/smooth_noise.h"

#include <algorithm>
#include <cmath>

namespace eblcio {
namespace {

// 1D sliding-window box blur along one axis of a row-major array.
void blur_axis(std::vector<double>& data, const Shape& shape, int axis,
               int radius) {
  if (radius <= 0) return;
  const auto strides = shape.strides();
  const std::size_t len = shape.dim(axis);
  if (len <= 1) return;
  const std::size_t stride = strides[axis];
  const std::size_t n = shape.num_elements();
  const std::size_t num_lines = n / len;

  std::vector<double> line(len);
  // Enumerate all 1D lines along `axis`: iterate over all index tuples with
  // the axis coordinate fixed to zero.
  for (std::size_t lineno = 0; lineno < num_lines; ++lineno) {
    // Convert line number to a base offset, skipping the blurred axis.
    std::size_t rem = lineno;
    std::size_t base = 0;
    for (int d = shape.ndims() - 1; d >= 0; --d) {
      if (d == axis) continue;
      const std::size_t dim = shape.dim(d);
      base += (rem % dim) * strides[d];
      rem /= dim;
    }
    // Sliding-window mean with periodic boundaries (keeps the field
    // variance stationary; clamping would inflate corner variance and
    // produce unphysical outliers after standardization).
    const int r = static_cast<int>(std::min<std::size_t>(radius, len - 1));
    double acc = 0.0;
    const auto slen = static_cast<std::int64_t>(len);
    auto sample = [&](std::int64_t i) {
      i %= slen;
      if (i < 0) i += slen;
      return data[base + static_cast<std::size_t>(i) * stride];
    };
    for (std::int64_t i = -r; i <= r; ++i) acc += sample(i);
    const double inv = 1.0 / (2 * r + 1);
    for (std::size_t i = 0; i < len; ++i) {
      line[i] = acc * inv;
      acc += sample(static_cast<std::int64_t>(i) + r + 1) -
             sample(static_cast<std::int64_t>(i) - r);
    }
    for (std::size_t i = 0; i < len; ++i) data[base + i * stride] = line[i];
  }
}

}  // namespace

void box_blur(std::vector<double>& data, const Shape& shape, int radius,
              int passes) {
  for (int p = 0; p < passes; ++p)
    for (int axis = 0; axis < shape.ndims(); ++axis)
      blur_axis(data, shape, axis, radius);
}

std::vector<double> white_noise(const Shape& shape, Rng& rng) {
  std::vector<double> data(shape.num_elements());
  for (auto& v : data) v = rng.normal();
  return data;
}

std::vector<double> smooth_gaussian_field(const Shape& shape, int radius,
                                          Rng& rng) {
  auto data = white_noise(shape, rng);
  box_blur(data, shape, radius);
  // Re-standardize: blurring shrinks the variance substantially.
  double mean = 0.0;
  for (double v : data) mean += v;
  mean /= static_cast<double>(data.size());
  double var = 0.0;
  for (double v : data) var += (v - mean) * (v - mean);
  var /= static_cast<double>(data.size());
  const double inv_sd = var > 0 ? 1.0 / std::sqrt(var) : 1.0;
  for (auto& v : data) v = (v - mean) * inv_sd;
  return data;
}

std::vector<double> multiscale_field(const Shape& shape, int base_radius,
                                     int octaves, double persistence,
                                     Rng& rng) {
  std::vector<double> acc(shape.num_elements(), 0.0);
  double amp = 1.0;
  int radius = base_radius;
  for (int o = 0; o < octaves; ++o) {
    auto layer = smooth_gaussian_field(shape, std::max(radius, 1), rng);
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += amp * layer[i];
    amp *= persistence;
    radius = std::max(1, radius / 2);
  }
  return acc;
}

}  // namespace eblcio
