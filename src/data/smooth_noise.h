// Band-limited random field synthesis.
//
// Scientific fields are "smooth noise": energy concentrated at low spatial
// frequencies. We synthesize them as white noise passed through repeated
// separable box blurs (three passes approximate a Gaussian kernel), which is
// O(N) per pass regardless of kernel width.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ndarray.h"
#include "common/rng.h"

namespace eblcio {

// In-place separable box blur of a row-major field; radius per dimension.
void box_blur(std::vector<double>& data, const Shape& shape, int radius,
              int passes = 3);

// White Gaussian noise field with the given shape.
std::vector<double> white_noise(const Shape& shape, Rng& rng);

// Smooth correlated Gaussian field: white noise blurred with `radius`,
// re-standardized to zero mean / unit variance.
std::vector<double> smooth_gaussian_field(const Shape& shape, int radius,
                                          Rng& rng);

// Multi-octave field: sum of smooth fields at halving radii and amplitudes
// (fractal character typical of turbulence / climate fields).
std::vector<double> multiscale_field(const Shape& shape, int base_radius,
                                     int octaves, double persistence,
                                     Rng& rng);

}  // namespace eblcio
