#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "data/smooth_noise.h"

namespace eblcio {
namespace {

constexpr double kPi = 3.14159265358979323846;

Shape shape_of(const std::vector<std::size_t>& dims) {
  return Shape{std::span<const std::size_t>(dims)};
}

}  // namespace

Field generate_cesm(const std::vector<std::size_t>& dims,
                    std::uint64_t seed) {
  EBLCIO_CHECK_ARG(dims.size() == 3, "CESM expects [lev x lat x lon]");
  const Shape shape = shape_of(dims);
  Rng rng(seed);
  const std::size_t nlev = dims[0], nlat = dims[1], nlon = dims[2];

  // Weather noise shared across levels but progressively smoothed: one
  // 2D multiscale layer per level with level-to-level correlation.
  Shape plane({nlat, nlon});
  auto weather = multiscale_field(plane, static_cast<int>(nlat / 8) + 1, 4,
                                  0.55, rng);
  auto weather2 = multiscale_field(plane, static_cast<int>(nlat / 8) + 1, 4,
                                   0.55, rng);

  NdArray<float> arr(shape);
  for (std::size_t l = 0; l < nlev; ++l) {
    // Temperature-like base: warm equator, cold poles, lapse with altitude.
    const double level_t = 288.0 - 60.0 * static_cast<double>(l) /
                                        static_cast<double>(nlev);
    const double blend = static_cast<double>(l) / std::max<std::size_t>(
                                                      nlev - 1, 1);
    for (std::size_t i = 0; i < nlat; ++i) {
      const double lat = kPi * (static_cast<double>(i) /
                                    static_cast<double>(nlat - 1) - 0.5);
      const double banding = 40.0 * std::cos(lat) * std::cos(lat);
      for (std::size_t j = 0; j < nlon; ++j) {
        const std::size_t p = i * nlon + j;
        const double w = (1.0 - blend) * weather[p] + blend * weather2[p];
        arr.at(l, i, j) = static_cast<float>(level_t + banding + 3.0 * w);
      }
    }
  }
  return Field("CESM", std::move(arr));
}

Field generate_hacc(const std::vector<std::size_t>& dims,
                    std::uint64_t seed) {
  EBLCIO_CHECK_ARG(dims.size() == 1, "HACC expects a 1D particle array");
  const std::size_t n = dims[0];
  Rng rng(seed);
  NdArray<float> arr(Shape{n});

  // Particles arrive halo by halo: the halo center wanders slowly through
  // the 256 Mpc box while members scatter around it with ~1% of the box
  // size. Consecutive particles are therefore correlated (predictable at
  // loose bounds) but the jitter floors the compression ratio near 2.7x at
  // eb = 1e-5, matching Table III.
  const double box = 256.0;
  double center = rng.uniform(0.0, box);
  std::size_t halo_left = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (halo_left == 0) {
      halo_left = 16 + rng.next_below(240);
      center += rng.normal() * 4.0;
      center = std::fmod(std::fmod(center, box) + box, box);
    }
    const double jitter = rng.normal() * 0.01 * box;
    double x = center + jitter;
    x = std::clamp(x, 0.0, box);
    arr[i] = static_cast<float>(x);
    --halo_left;
  }
  return Field("HACC", std::move(arr));
}

Field generate_nyx(const std::vector<std::size_t>& dims,
                   std::uint64_t seed) {
  EBLCIO_CHECK_ARG(dims.size() == 3, "NYX expects a 3D grid");
  const Shape shape = shape_of(dims);
  Rng rng(seed);

  // Baryon density: exp of a correlated Gaussian field plus fine-scale
  // detail. Dense peaks dominate the value range (max/typical ~1e2), so a
  // loose relative bound swallows nearly all structure (Tab. III: CR ~1e5
  // at 1e-1) while tight bounds must encode the small-scale texture and
  // the ratio collapses (~14 at 1e-5).
  auto g = smooth_gaussian_field(shape, static_cast<int>(dims[0] / 16) + 1,
                                 rng);
  auto fine = smooth_gaussian_field(shape, 1, rng);
  NdArray<float> arr(shape);
  for (std::size_t i = 0; i < arr.num_elements(); ++i)
    arr[i] = static_cast<float>(
        1e8 * std::exp(1.3 * g[i] + 0.02 * fine[i]));
  return Field("NYX", std::move(arr));
}

Field generate_s3d(const std::vector<std::size_t>& dims,
                   std::uint64_t seed) {
  EBLCIO_CHECK_ARG(dims.size() == 4, "S3D expects [species x Z x Y x X]");
  const std::size_t ns = dims[0], nz = dims[1], ny = dims[2], nx = dims[3];
  Rng rng(seed);

  // Shared flame-front geometry: a smooth surface z = f(x, y) perturbed by
  // multiscale noise; each species reacts at a shifted offset with its own
  // magnitude, giving the 11 correlated fields of the S3D snapshot.
  Shape plane({ny, nx});
  auto front = multiscale_field(plane, static_cast<int>(ny / 6) + 1, 3, 0.5,
                                rng);
  Shape vol({nz, ny, nx});
  auto turb = smooth_gaussian_field(vol, static_cast<int>(ny / 10) + 1, rng);

  NdArray<double> arr(shape_of(dims));
  for (std::size_t s = 0; s < ns; ++s) {
    const double offset = 0.25 + 0.5 * static_cast<double>(s) /
                                      static_cast<double>(ns);
    const double mag = std::pow(10.0, -static_cast<double>(s % 4));
    const double width = 12.0 + 2.0 * static_cast<double>(s);
    for (std::size_t z = 0; z < nz; ++z) {
      const double zf = static_cast<double>(z) / static_cast<double>(nz);
      for (std::size_t y = 0; y < ny; ++y)
        for (std::size_t x = 0; x < nx; ++x) {
          const double f = front[y * nx + x];
          const double t = turb[(z * ny + y) * nx + x];
          const double arg = width * (zf - offset - 0.05 * f);
          const double v = mag * (0.5 + 0.5 * std::tanh(arg)) *
                           (1.0 + 0.02 * t);
          arr.at(s, z, y, x) = v;
        }
    }
  }
  return Field("S3D", std::move(arr));
}

Field generate_qmcpack(const std::vector<std::size_t>& dims,
                       std::uint64_t seed) {
  EBLCIO_CHECK_ARG(dims.size() == 3, "QMCPack expects a 3D grid");
  const Shape shape = shape_of(dims);
  Rng rng(seed);
  auto g = smooth_gaussian_field(shape, static_cast<int>(dims[0] / 12) + 1,
                                 rng);

  // Orbital-like standing wave modulated by a decaying envelope.
  NdArray<float> arr(shape);
  const std::size_t nz = dims[0], ny = dims[1], nx = dims[2];
  std::size_t idx = 0;
  for (std::size_t z = 0; z < nz; ++z) {
    const double fz = static_cast<double>(z) / static_cast<double>(nz);
    for (std::size_t y = 0; y < ny; ++y) {
      const double fy = static_cast<double>(y) / static_cast<double>(ny);
      for (std::size_t x = 0; x < nx; ++x, ++idx) {
        const double fx = static_cast<double>(x) / static_cast<double>(nx);
        const double wave = std::sin(3 * kPi * fx) * std::sin(2 * kPi * fy) *
                            std::sin(4 * kPi * fz);
        const double r2 = (fx - 0.5) * (fx - 0.5) + (fy - 0.5) * (fy - 0.5) +
                          (fz - 0.5) * (fz - 0.5);
        arr[idx] = static_cast<float>(wave * std::exp(-4.0 * r2) +
                                      0.01 * g[idx]);
      }
    }
  }
  return Field("QMCPack", std::move(arr));
}

Field generate_isabel(const std::vector<std::size_t>& dims,
                      std::uint64_t seed) {
  EBLCIO_CHECK_ARG(dims.size() == 3, "ISABEL expects a 3D grid");
  const Shape shape = shape_of(dims);
  Rng rng(seed);
  auto g = smooth_gaussian_field(shape, static_cast<int>(dims[1] / 10) + 1,
                                 rng);

  // Hurricane pressure: deep radial low spiralling around a tilted eye.
  NdArray<float> arr(shape);
  const std::size_t nz = dims[0], ny = dims[1], nx = dims[2];
  std::size_t idx = 0;
  for (std::size_t z = 0; z < nz; ++z) {
    const double fz = static_cast<double>(z) / static_cast<double>(nz);
    const double cx = 0.5 + 0.1 * std::sin(2 * kPi * fz);
    const double cy = 0.5 + 0.1 * std::cos(2 * kPi * fz);
    for (std::size_t y = 0; y < ny; ++y) {
      const double fy = static_cast<double>(y) / static_cast<double>(ny);
      for (std::size_t x = 0; x < nx; ++x, ++idx) {
        const double fx = static_cast<double>(x) / static_cast<double>(nx);
        const double r = std::sqrt((fx - cx) * (fx - cx) +
                                   (fy - cy) * (fy - cy));
        const double pressure =
            1013.0 - 80.0 * std::exp(-30.0 * r * r) * (1.0 - fz * 0.5);
        arr[idx] = static_cast<float>(pressure + 1.5 * g[idx]);
      }
    }
  }
  return Field("ISABEL", std::move(arr));
}

Field generate_exafel(const std::vector<std::size_t>& dims,
                      std::uint64_t seed) {
  EBLCIO_CHECK_ARG(dims.size() == 3, "EXAFEL expects [events x H x W]");
  const Shape shape = shape_of(dims);
  Rng rng(seed);
  NdArray<float> arr(shape);
  const std::size_t ne = dims[0], nh = dims[1], nw = dims[2];

  for (std::size_t e = 0; e < ne; ++e) {
    // Detector background: low-level readout noise.
    for (std::size_t i = 0; i < nh * nw; ++i)
      arr[e * nh * nw + i] = static_cast<float>(10.0 + rng.normal() * 2.0);
    // Bragg-like peaks: sparse, bright, few-pixel footprints.
    const std::size_t npeaks = 30 + rng.next_below(40);
    for (std::size_t p = 0; p < npeaks; ++p) {
      const std::size_t py = 2 + rng.next_below(nh - 4);
      const std::size_t px = 2 + rng.next_below(nw - 4);
      const double amp = 500.0 + 4000.0 * rng.next_double();
      for (std::int64_t dy = -2; dy <= 2; ++dy)
        for (std::int64_t dx = -2; dx <= 2; ++dx) {
          const double fall = std::exp(-0.8 * (dy * dy + dx * dx));
          auto& pix = arr[e * nh * nw + (py + dy) * nw + (px + dx)];
          pix += static_cast<float>(amp * fall);
        }
    }
  }
  return Field("EXAFEL", std::move(arr));
}

}  // namespace eblcio
