// Per-data-set synthetic field generators. See dataset.h for the catalogue
// and DESIGN.md §2 for what each generator imitates and why.
#pragma once

#include <cstdint>

#include "common/field.h"

namespace eblcio {

// CESM / CESM-ATM: climate fields, [levels x lat x lon]; smooth latitudinal
// banding plus multiscale weather noise. Highly compressible.
Field generate_cesm(const std::vector<std::size_t>& dims, std::uint64_t seed);

// HACC: 1D particle coordinates; halo-clustered, locally correlated with a
// ~1% jitter so compression ratios collapse at tight bounds (Table III).
Field generate_hacc(const std::vector<std::size_t>& dims, std::uint64_t seed);

// NYX: 3D baryon density; log-normal with huge dynamic range, so value-range
// relative bounds at 1e-1 swallow almost all structure (CR ~1e5 in Tab. III).
Field generate_nyx(const std::vector<std::size_t>& dims, std::uint64_t seed);

// S3D: [species x Z x Y x X] double-precision combustion state; smooth
// flame fronts (sigmoids) advected per species.
Field generate_s3d(const std::vector<std::size_t>& dims, std::uint64_t seed);

// QMCPack: 3D orbital amplitudes; smooth oscillatory product states.
Field generate_qmcpack(const std::vector<std::size_t>& dims,
                       std::uint64_t seed);

// ISABEL: 3D hurricane pressure field; radial vortex plus smooth noise.
Field generate_isabel(const std::vector<std::size_t>& dims,
                      std::uint64_t seed);

// EXAFEL: 2D detector image stack; dark background with Poisson-like bright
// peaks — hostile to both lossless and lossy coding.
Field generate_exafel(const std::vector<std::size_t>& dims,
                      std::uint64_t seed);

}  // namespace eblcio
