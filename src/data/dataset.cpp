#include "data/dataset.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/error.h"
#include "data/generators.h"

namespace eblcio {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

const std::vector<DatasetSpec>& dataset_catalog() {
  // default_shrink keeps a default-size field in the 2-20 M element range so
  // full paper sweeps finish in minutes on a workstation; --scale restores
  // paper sizes.
  static const std::vector<DatasetSpec> kCatalog = {
      {"CESM", "Community Earth System Model, atmosphere variable (Tab. II)",
       {26, 1800, 3600}, DType::kFloat32, 10.0},
      {"HACC", "HACC cosmology particle x-coordinates (Tab. II)",
       {280953867}, DType::kFloat32, 33.0},
      {"NYX", "Nyx AMR cosmology baryon density (Tab. II)",
       {512, 512, 512}, DType::kFloat32, 4.0},
      {"S3D", "S3D turbulent-combustion state, 11 species (Tab. II)",
       {11, 500, 500, 500}, DType::kFloat64, 6.25},
      {"QMCPack", "QMCPack orbital amplitudes (Fig. 1)",
       {288, 115, 69}, DType::kFloat32, 1.0},
      {"ISABEL", "Hurricane Isabel pressure field (Fig. 1)",
       {100, 500, 500}, DType::kFloat32, 2.5},
      {"CESM-ATM", "CESM atmosphere variable (Fig. 1)",
       {26, 1800, 3600}, DType::kFloat32, 10.0},
      {"EXAFEL", "LCLS ExaFEL detector image stack (Fig. 1)",
       {50, 512, 512}, DType::kFloat32, 2.0},
  };
  return kCatalog;
}

const DatasetSpec& dataset_spec(const std::string& name) {
  const std::string key = lower(name);
  for (const auto& spec : dataset_catalog())
    if (lower(spec.name) == key) return spec;
  throw InvalidArgument("unknown data set: " + name);
}

std::vector<std::size_t> scaled_dims(const DatasetSpec& spec, double scale) {
  EBLCIO_CHECK_ARG(scale > 0.0 && scale <= 1.0,
                   "scale must be in (0, 1]");
  std::vector<std::size_t> dims = spec.paper_dims;
  const bool has_field_dim =
      dims.size() >= 3 && (spec.name == "CESM" || spec.name == "CESM-ATM" ||
                           spec.name == "S3D");
  for (std::size_t d = 0; d < dims.size(); ++d) {
    if (has_field_dim && d == 0) continue;  // keep species/level count
    const double scaled = static_cast<double>(dims[d]) * scale;
    dims[d] = std::max<std::size_t>(8, static_cast<std::size_t>(scaled));
  }
  return dims;
}

Field generate_dataset_dims(const std::string& name,
                            const std::vector<std::size_t>& dims,
                            std::uint64_t seed) {
  const std::string key = lower(name);
  if (key == "cesm" || key == "cesm-atm") return generate_cesm(dims, seed);
  if (key == "hacc") return generate_hacc(dims, seed);
  if (key == "nyx") return generate_nyx(dims, seed);
  if (key == "s3d") return generate_s3d(dims, seed);
  if (key == "qmcpack") return generate_qmcpack(dims, seed);
  if (key == "isabel") return generate_isabel(dims, seed);
  if (key == "exafel") return generate_exafel(dims, seed);
  throw InvalidArgument("unknown data set: " + name);
}

Field generate_dataset(const std::string& name, std::uint64_t seed) {
  const DatasetSpec& spec = dataset_spec(name);
  Field f = generate_dataset_dims(
      name, scaled_dims(spec, 1.0 / spec.default_shrink), seed);
  f.set_name(spec.name);
  return f;
}

}  // namespace eblcio
