// FPC-class lossless baseline (Burtscher & Ratanaworabhan, ToC'09):
// dueling FCM / DFCM hash-table predictors over the 64-bit words of the
// data stream, XOR residuals, leading-zero-byte encoding.
#pragma once

#include "compressors/compressor.h"

namespace eblcio {

class FpcCompressor : public Compressor {
 public:
  std::string name() const override { return "FPC"; }
  CompressorCaps caps() const override {
    CompressorCaps c;
    c.lossless = true;
    return c;
  }

  Bytes compress(const Field& field, const CompressOptions& opt) override;
  Field decompress(std::span<const std::byte> blob, int threads) override;
};

}  // namespace eblcio
