// Component vocabulary for the composable codec framework
// (compressors/composed.h): wire-stable identifiers for the prediction,
// quantization, and encoding stages an error-bounded pipeline is built
// from, plus the name tables that turn a component triple into a codec
// string ("composed:lorenzo1+linear+huffman") and back.
//
// This header is deliberately free-standing (no compressor/backend
// includes) so every stage implementation — backend.h, block_core.h,
// interp_core.h — can name components without include cycles.
//
// Wire stability: the numeric values below are serialized into composed
// blob payloads. Add new components at the END of an enum; never renumber
// or remove entries (see src/compressors/README.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/error.h"
#include "compressors/quantizer.h"

namespace eblcio {

// Shared quantization-code geometry: every composed pipeline (and the
// legacy SZ2/SZ3/QoZ paths) uses radius-32768 codes, so the entropy stage
// always sees the same 65537-symbol alphabet with code 0 reserved for
// "unpredictable, stored exactly".
inline constexpr std::uint32_t kQuantRadius = 32768;
inline constexpr std::uint32_t kQuantAlphabet = 2 * kQuantRadius + 1;

enum class PredictorId : std::uint8_t {
  kLorenzo1 = 0,      // 1-layer Lorenzo stencil (SZ2's non-regression path)
  kLorenzo2 = 1,      // 2-layer Lorenzo stencil (quadratic extrapolation)
  kRegression = 2,    // per-block least-squares plane (SZ2's other mode)
  kInterpLinear = 3,  // multi-level linear interpolation (SZ3 family)
  kInterpCubic = 4,   // multi-level cubic interpolation (SZ3 default)
};
inline constexpr int kNumPredictors = 5;

enum class QuantizerId : std::uint8_t {
  kLinear = 0,       // linear grid, correctly-rounded divide
  kLinearRecip = 1,  // linear grid, reciprocal multiply (production SZ path)
  kLog = 2,          // sign-symmetric log-domain grid
};
inline constexpr int kNumQuantizers = 3;

enum class EncoderId : std::uint8_t {
  kHuffman = 0,     // canonical Huffman, per-bit canonical decode
  kHuffmanLut = 1,  // canonical Huffman, multi-symbol LUT decode
  kHuffmanLz = 2,   // Huffman then LZ77, smaller of the two (legacy SZ)
  kLz = 3,          // LZ77 over width-packed raw codes
  kRaw = 4,         // width-packed raw codes, no entropy stage
};
inline constexpr int kNumEncoders = 5;

// --- name tables -----------------------------------------------------------

inline std::string_view predictor_name(PredictorId p) {
  switch (p) {
    case PredictorId::kLorenzo1: return "lorenzo1";
    case PredictorId::kLorenzo2: return "lorenzo2";
    case PredictorId::kRegression: return "regression";
    case PredictorId::kInterpLinear: return "interp-linear";
    case PredictorId::kInterpCubic: return "interp-cubic";
  }
  throw InvalidArgument("bad predictor id");
}

inline std::string_view quantizer_name(QuantizerId q) {
  switch (q) {
    case QuantizerId::kLinear: return "linear";
    case QuantizerId::kLinearRecip: return "linear-recip";
    case QuantizerId::kLog: return "log";
  }
  throw InvalidArgument("bad quantizer id");
}

inline std::string_view encoder_name(EncoderId e) {
  switch (e) {
    case EncoderId::kHuffman: return "huffman";
    case EncoderId::kHuffmanLut: return "huffman-lut";
    case EncoderId::kHuffmanLz: return "huffman-lz";
    case EncoderId::kLz: return "lz";
    case EncoderId::kRaw: return "raw";
  }
  throw InvalidArgument("bad encoder id");
}

inline std::optional<PredictorId> parse_predictor(std::string_view s) {
  for (int i = 0; i < kNumPredictors; ++i) {
    const auto id = static_cast<PredictorId>(i);
    if (s == predictor_name(id)) return id;
  }
  return std::nullopt;
}

inline std::optional<QuantizerId> parse_quantizer(std::string_view s) {
  for (int i = 0; i < kNumQuantizers; ++i) {
    const auto id = static_cast<QuantizerId>(i);
    if (s == quantizer_name(id)) return id;
  }
  return std::nullopt;
}

inline std::optional<EncoderId> parse_encoder(std::string_view s) {
  for (int i = 0; i < kNumEncoders; ++i) {
    const auto id = static_cast<EncoderId>(i);
    if (s == encoder_name(id)) return id;
  }
  return std::nullopt;
}

// --- quantizer construction ------------------------------------------------

// Uniform constructor facade over the quantizer types (they differ in
// whether they take the field-dependent parameter): lets kernels templated
// over the quantizer type build per-level instances from (eb, param) pairs.
// `param` is the quantizer's field-dependent parameter — peak magnitude for
// the log quantizer, ignored by the linear ones — and travels in the
// composed blob payload so decode rebuilds the identical instance.
template <typename Q>
Q make_quantizer(double abs_eb, double param, std::uint32_t radius);

template <>
inline LinearQuantizer make_quantizer<LinearQuantizer>(double abs_eb, double,
                                                       std::uint32_t radius) {
  return LinearQuantizer(abs_eb, radius);
}

template <>
inline DivLinearQuantizer make_quantizer<DivLinearQuantizer>(
    double abs_eb, double, std::uint32_t radius) {
  return DivLinearQuantizer(abs_eb, radius);
}

template <>
inline LogQuantizer make_quantizer<LogQuantizer>(double abs_eb, double param,
                                                 std::uint32_t radius) {
  return LogQuantizer(abs_eb, param, radius);
}

// Runtime -> compile-time quantizer dispatch: invokes fn with a quantizer
// instance whose static type identifies the component, and returns fn's
// result. The per-stage kernels instantiate once per quantizer type, so
// the id is resolved exactly once per (de)compression call, never per
// element.
template <typename Fn>
auto with_quantizer(QuantizerId id, double abs_eb, double param, Fn&& fn) {
  switch (id) {
    case QuantizerId::kLinear:
      return fn(make_quantizer<DivLinearQuantizer>(abs_eb, param,
                                                   kQuantRadius));
    case QuantizerId::kLinearRecip:
      return fn(make_quantizer<LinearQuantizer>(abs_eb, param, kQuantRadius));
    case QuantizerId::kLog:
      return fn(make_quantizer<LogQuantizer>(abs_eb, param, kQuantRadius));
  }
  throw InvalidArgument("bad quantizer id");
}

}  // namespace eblcio
