#include "compressors/zone.h"

#include <algorithm>
#include <cstring>

#include "common/buffer_pool.h"
#include "common/error.h"
#include "compressors/chunking.h"
#include "core/sweep.h"

namespace eblcio {
namespace {

// Checks that `extents` is a contiguous partition of rows [0, d0) with one
// entry per blob — the only layout compress() emits and the container
// accepts.
void check_zoned(const ZonedField& zoned) {
  EBLCIO_CHECK_ARG(!zoned.dims.empty(), "zoned field has no dims");
  EBLCIO_CHECK_ARG(zoned.extents.size() == zoned.blobs.size(),
                   "zone extent/blob count mismatch");
  EBLCIO_CHECK_STREAM(!zoned.extents.empty(), "zoned field holds no zones");
  std::size_t next = 0;
  for (const ZoneExtent& e : zoned.extents) {
    EBLCIO_CHECK_STREAM(e.rows > 0 && e.row_start == next,
                        "zone extents are not a contiguous row partition");
    next += static_cast<std::size_t>(e.rows);
  }
  EBLCIO_CHECK_STREAM(next == zoned.dims[0],
                      "zone extents do not cover the field");
}

template <typename T>
void scatter_impl(const NdArray<T>& zone, std::size_t zone_row_start,
                  const Region& region, NdArray<T>& out) {
  const int nd = out.ndims();
  const std::size_t r0 = region.start[0];
  const std::size_t lo = std::max(r0, zone_row_start);
  const std::size_t hi =
      std::min(r0 + region.shape[0], zone_row_start + zone.shape().dim(0));
  if (lo >= hi) return;

  if (nd == 1) {
    std::memcpy(out.data() + (lo - r0),
                zone.data() + (lo - zone_row_start), (hi - lo) * sizeof(T));
    return;
  }

  const auto zs = zone.shape().strides();
  const auto os = out.shape().strides();
  const int last = nd - 1;
  const std::size_t run = region.shape[last];
  const std::size_t run_off = region.start[last];
  const std::size_t m1_count = nd >= 3 ? region.shape[1] : 1;
  const std::size_t m1_start = nd >= 3 ? region.start[1] : 0;
  const std::size_t m2_count = nd >= 4 ? region.shape[2] : 1;
  const std::size_t m2_start = nd >= 4 ? region.start[2] : 0;

  for (std::size_t g = lo; g < hi; ++g) {
    const T* zrow = zone.data() + (g - zone_row_start) * zs[0];
    T* orow = out.data() + (g - r0) * os[0];
    for (std::size_t i1 = 0; i1 < m1_count; ++i1)
      for (std::size_t i2 = 0; i2 < m2_count; ++i2) {
        const T* src = zrow + (nd >= 3 ? (m1_start + i1) * zs[1] : 0) +
                       (nd >= 4 ? (m2_start + i2) * zs[2] : 0) +
                       run_off * zs[last];
        T* dst = orow + (nd >= 3 ? i1 * os[1] : 0) +
                 (nd >= 4 ? i2 * os[2] : 0);
        std::memcpy(dst, src, run * sizeof(T));
      }
  }
}

// Decodes zone `i` of `zoned` and checks it really is that zone: a blob
// swapped in from elsewhere (or a forged extent) must fail cleanly here,
// before any bytes land in a caller-visible Field.
Field decode_zone(const ZonedField& zoned, std::size_t i) {
  Field zone = decompress_any(zoned.blobs[i], 1);
  EBLCIO_CHECK_STREAM(zone.dtype() == zoned.dtype,
                      "zone blob dtype mismatch");
  const Shape& shape = zone.shape();
  EBLCIO_CHECK_STREAM(
      shape.ndims() == static_cast<int>(zoned.dims.size()) &&
          shape.dim(0) == static_cast<std::size_t>(zoned.extents[i].rows),
      "zone blob shape does not match its extent");
  for (int d = 1; d < shape.ndims(); ++d)
    EBLCIO_CHECK_STREAM(shape.dim(d) == zoned.dims[d],
                        "zone blob shape does not match the field");
  return zone;
}

}  // namespace

std::vector<ZoneExtent> zone_extents(std::size_t d0, int zones) {
  EBLCIO_CHECK_ARG(zones >= 1, "zone count must be positive");
  const int n = static_cast<int>(
      std::min<std::size_t>(d0, static_cast<std::size_t>(zones)));
  std::vector<ZoneExtent> out;
  out.reserve(static_cast<std::size_t>(n));
  std::size_t start = 0;
  for (int z = 0; z < n; ++z) {
    const std::size_t rows = slab_rows(d0, n, z);
    out.push_back({start, rows});
    start += rows;
  }
  return out;
}

void ZonedField::recycle() {
  for (Bytes& b : blobs) BufferPool::global().release(std::move(b));
  blobs.clear();
  extents.clear();
}

void scatter_zone_into_region(const Field& zone, std::size_t zone_row_start,
                              const Region& region, Field& out) {
  if (out.dtype() == DType::kFloat32)
    scatter_impl<float>(zone.as<float>(), zone_row_start, region,
                        out.as<float>());
  else
    scatter_impl<double>(zone.as<double>(), zone_row_start, region,
                         out.as<double>());
}

ZoneCompressor::ZoneCompressor(std::string codec, int zones)
    : codec_(std::move(codec)), zones_(zones) {
  EBLCIO_CHECK_ARG(zones_ >= 1, "zone count must be positive");
}

ZonedField ZoneCompressor::compress(const Field& field,
                                    const CompressOptions& opt,
                                    bool parallel) const {
  Compressor& comp = compressor(codec_);

  // One absolute bound from the whole field's value range: per-zone bounds
  // would differ (each zone sees a different range) and the merged
  // reconstruction would diverge from the unzoned path.
  CompressOptions zone_opt = opt;
  zone_opt.mode = BoundMode::kAbsolute;
  zone_opt.error_bound = absolute_bound_for(field, opt);
  zone_opt.threads = 1;  // parallelism is across zones, not within

  ZonedField zoned;
  zoned.name = field.name();
  zoned.codec = comp.name();
  zoned.dtype = field.dtype();
  zoned.dims = field.shape().dims_vector();
  zoned.extents = zone_extents(field.shape().dim(0), zones_);

  auto slabs = split_slabs(field, zones_);
  EBLCIO_CHECK(slabs.size() == zoned.extents.size(),
               "zone/slab split disagreement");

  std::vector<std::size_t> cells(slabs.size());
  for (std::size_t i = 0; i < cells.size(); ++i) cells[i] = i;
  SweepOptions sweep;
  sweep.parallel = parallel;
  auto report = sweep_grid(
      std::move(cells),
      [&](const std::size_t& i, SweepCellContext&) {
        return comp.compress(slabs[i], zone_opt);
      },
      sweep);
  report.rethrow_first_error();

  zoned.blobs.resize(report.cells.size());
  for (auto& cell : report.cells) zoned.blobs[cell.index] = std::move(*cell.result);
  return zoned;
}

Field ZoneCompressor::decompress_all(const ZonedField& zoned, bool parallel) {
  check_zoned(zoned);

  std::vector<std::size_t> cells(zoned.zones());
  for (std::size_t i = 0; i < cells.size(); ++i) cells[i] = i;
  SweepOptions sweep;
  sweep.parallel = parallel;
  auto report = sweep_grid(
      std::move(cells),
      [&](const std::size_t& i, SweepCellContext&) {
        return decode_zone(zoned, i);
      },
      sweep);
  report.rethrow_first_error();

  std::vector<Field> zones(report.cells.size());
  for (auto& cell : report.cells) zones[cell.index] = std::move(*cell.result);
  return merge_slabs(zones, zoned.dims, zoned.name);
}

Field ZoneCompressor::decompress_region(const ZonedField& zoned,
                                        const Region& region, bool parallel) {
  check_zoned(zoned);
  validate_region(region, zoned.dims);

  const std::vector<std::size_t> covering =
      covering_zones(zoned.extents, region.start[0], region.shape[0]);
  EBLCIO_CHECK(!covering.empty(), "region has no covering zones");

  Shape shape{std::span<const std::size_t>(region.shape)};
  Field out = zoned.dtype == DType::kFloat32
                  ? Field(zoned.name, NdArray<float>(shape))
                  : Field(zoned.name, NdArray<double>(shape));

  SweepOptions sweep;
  sweep.parallel = parallel;
  auto report = sweep_grid(
      covering,
      [&](const std::size_t& zone, SweepCellContext&) {
        return decode_zone(zoned, zone);
      },
      sweep);
  report.rethrow_first_error();

  for (auto& cell : report.cells)
    scatter_zone_into_region(
        *cell.result,
        static_cast<std::size_t>(zoned.extents[cell.cell].row_start), region,
        out);
  return out;
}

}  // namespace eblcio
