#include "compressors/sz2.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/error.h"
#include "compressors/backend.h"
#include "compressors/chunking.h"
#include "parallel/executor.h"
#include "compressors/quantizer.h"

namespace eblcio {
namespace {

constexpr std::uint32_t kRadius = 32768;

// All fields are processed through a uniform 4D view: leading dimensions of
// extent 1 are prepended, and the Lorenzo inclusion-exclusion masks over
// size-1 dimensions vanish naturally.
struct Geometry {
  std::array<std::size_t, 4> dim{1, 1, 1, 1};
  std::array<std::size_t, 4> stride{};
  std::array<std::size_t, 4> block{1, 1, 1, 1};   // block edge per dim
  std::array<std::size_t, 4> nblocks{1, 1, 1, 1}; // block grid
  int real_dims = 1;
  std::vector<unsigned> lorenzo_masks;  // nonzero masks over real dims

  static Geometry from_dims(const std::vector<std::size_t>& dims) {
    Geometry g;
    g.real_dims = static_cast<int>(dims.size());
    const int pad = 4 - g.real_dims;
    for (int i = 0; i < g.real_dims; ++i) g.dim[pad + i] = dims[i];

    // Block edges per dimensionality, as in SZ2 (256 / 16x16 / 6^3).
    static constexpr std::array<std::array<std::size_t, 4>, 4> kEdges{{
        {1, 1, 1, 256},
        {1, 1, 16, 16},
        {1, 6, 6, 6},
        {6, 6, 6, 6},
    }};
    g.block = kEdges[g.real_dims - 1];

    std::size_t acc = 1;
    for (int d = 3; d >= 0; --d) {
      g.stride[d] = acc;
      acc *= g.dim[d];
    }
    for (int d = 0; d < 4; ++d)
      g.nblocks[d] = (g.dim[d] + g.block[d] - 1) / g.block[d];

    // Lorenzo neighbour masks: subsets of the real dimensions.
    for (unsigned mask = 1; mask < 16; ++mask) {
      bool ok = true;
      for (int d = 0; d < 4; ++d)
        if ((mask & (1u << d)) && g.dim[d] == 1) ok = false;
      if (ok) g.lorenzo_masks.push_back(mask);
    }
    return g;
  }

  std::size_t num_elements() const {
    return dim[0] * dim[1] * dim[2] * dim[3];
  }
  std::size_t total_blocks() const {
    return nblocks[0] * nblocks[1] * nblocks[2] * nblocks[3];
  }
};

// The Lorenzo stencil for one row (fixed c0..c2, c3 varying): the (offset,
// sign) pairs of every mask whose neighbours exist, in mask order — the
// same accumulation order as walking lorenzo_masks and skipping the
// out-of-range ones, so predictions are bit-identical to the per-element
// mask walk this replaces. Rows split into a head stencil (first element
// when its c3 coordinate is 0) and a tail stencil (c3 > 0); hoisting the
// boundary logic here leaves the per-element loop a fused multiply-add
// sweep over precomputed offsets.
struct RowStencil {
  std::array<std::pair<std::size_t, double>, 15> head_terms;
  std::array<std::pair<std::size_t, double>, 15> tail_terms;
  int head_n = 0;
  int tail_n = 0;
};

RowStencil row_stencil(const Geometry& g,
                       const std::array<std::size_t, 4>& row) {
  RowStencil st;
  for (unsigned mask : g.lorenzo_masks) {
    bool valid_fixed = true;  // dims 0..2 (fixed along the row)
    std::size_t off = 0;
    for (int d = 0; d < 3; ++d) {
      if (!(mask & (1u << d))) continue;
      if (row[d] == 0) {
        valid_fixed = false;
        break;
      }
      off += g.stride[d];
    }
    if (!valid_fixed) continue;
    const bool touches_d3 = (mask & (1u << 3)) != 0;
    if (touches_d3) off += g.stride[3];
    const double sign = (std::popcount(mask) & 1) ? 1.0 : -1.0;
    st.tail_terms[st.tail_n++] = {off, sign};
    if (!touches_d3) st.head_terms[st.head_n++] = {off, sign};
  }
  return st;
}

// row_stencil only reads `row` through row[d] == 0 tests, so a stencil is
// fully determined by the 4-bit zero-pattern of the row base — 16
// possibilities. Rebuilding per boundary row was ~16% of compress-slab
// time; this table replaces ~8k rebuilds per 64^3 field with a lookup.
// The entry contents are byte-identical to a fresh row_stencil call, so
// predictions are unchanged. Index 0 (no zero coordinate) is the full
// interior stencil; rows in size-1 dimensions always carry their zero
// bit, and those dimensions never appear in lorenzo_masks, so the lookup
// stays consistent for them too.
struct StencilCache {
  std::array<RowStencil, 16> by_sig;

  explicit StencilCache(const Geometry& g) {
    for (unsigned sig = 0; sig < 16; ++sig) {
      std::array<std::size_t, 4> fake_row;
      for (int d = 0; d < 4; ++d)
        fake_row[d] = (sig & (1u << d)) ? 0 : 1;
      by_sig[sig] = row_stencil(g, fake_row);
    }
  }

  static unsigned signature(const std::array<std::size_t, 4>& row) {
    unsigned sig = 0;
    for (int d = 0; d < 4; ++d)
      if (row[d] == 0) sig |= 1u << d;
    return sig;
  }

  const RowStencil& for_row(const std::array<std::size_t, 4>& row) const {
    return by_sig[signature(row)];
  }
};

// Prediction from a row stencil: sign-weighted neighbour sum over either
// the reconstruction buffer (double) or raw samples (T). Multiplying by
// the exact +-1.0 sign equals the branchy add/subtract bit-for-bit.
//
// The compile-time-N body lets the compiler fully unroll and schedule the
// gather+fma chain; the runtime wrapper dispatches on the term counts a
// Lorenzo stencil can actually have on interior rows (1/3/7/15 for
// 1D/2D/3D/4D). Identical sequential accumulation order, so the dispatch
// is bit-invisible.
template <int N, typename V>
inline double stencil_predict_n(
    const std::array<std::pair<std::size_t, double>, 15>& terms,
    const V* vals, std::size_t lin) {
  double pred = 0.0;
  for (int k = 0; k < N; ++k)
    pred += terms[k].second *
            static_cast<double>(vals[lin - terms[k].first]);
  return pred;
}

template <typename V>
inline double stencil_predict(
    const std::array<std::pair<std::size_t, double>, 15>& terms, int n,
    const V* vals, std::size_t lin) {
  switch (n) {
    case 7: return stencil_predict_n<7>(terms, vals, lin);
    case 3: return stencil_predict_n<3>(terms, vals, lin);
    case 15: return stencil_predict_n<15>(terms, vals, lin);
    case 1: return stencil_predict_n<1>(terms, vals, lin);
    default: break;
  }
  double pred = 0.0;
  for (int k = 0; k < n; ++k)
    pred += terms[k].second *
            static_cast<double>(vals[lin - terms[k].first]);
  return pred;
}

struct RegressionCoeffs {
  float b0 = 0.f;
  std::array<float, 4> slope{};  // per uniform-4D dim (zeros for unit dims)
};

// Kernel state shared between the per-block passes.
struct BlockRef {
  std::array<std::size_t, 4> origin;
  std::array<std::size_t, 4> extent;
};

// Enumerates blocks in row-major block-grid order.
std::vector<BlockRef> enumerate_blocks(const Geometry& g) {
  std::vector<BlockRef> blocks;
  blocks.reserve(g.total_blocks());
  std::array<std::size_t, 4> b{};
  for (b[0] = 0; b[0] < g.nblocks[0]; ++b[0])
    for (b[1] = 0; b[1] < g.nblocks[1]; ++b[1])
      for (b[2] = 0; b[2] < g.nblocks[2]; ++b[2])
        for (b[3] = 0; b[3] < g.nblocks[3]; ++b[3]) {
          BlockRef ref;
          for (int d = 0; d < 4; ++d) {
            ref.origin[d] = b[d] * g.block[d];
            ref.extent[d] =
                std::min(g.block[d], g.dim[d] - ref.origin[d]);
          }
          blocks.push_back(ref);
        }
  return blocks;
}

// Linear index of the row base (c3 = 0) for local row coords `c` inside
// `blk`; the d3 stride is 1 by construction, so rows advance unit-stride.
inline std::size_t row_base(const Geometry& g, const BlockRef& blk,
                            const std::array<std::size_t, 4>& c) {
  return (blk.origin[0] + c[0]) * g.stride[0] +
         (blk.origin[1] + c[1]) * g.stride[1] +
         (blk.origin[2] + c[2]) * g.stride[2] + blk.origin[3];
}

// Least-squares plane fit over a block of raw values. The data-independent
// moments (element count, coordinate sums, squared-coordinate sums) are
// sums of small integers — exact in double in any order — so they come
// from closed forms; only the data moments accumulate per element, in the
// original element-then-dimension order so sum_x / sum_ux stay
// bit-identical to the fused loop this replaces.
template <typename T>
RegressionCoeffs fit_regression(const Geometry& g, const T* data,
                                const BlockRef& blk) {
  RegressionCoeffs rc;
  const double n = static_cast<double>(blk.extent[0] * blk.extent[1] *
                                       blk.extent[2] * blk.extent[3]);
  std::array<double, 4> sum_u{}, sum_uu{};
  for (int d = 0; d < 4; ++d) {
    const double e = static_cast<double>(blk.extent[d]);
    const double others = n / e;
    // sum over c_d of c_d, and of c_d^2, times the count of other coords.
    sum_u[d] = others * (e * (e - 1.0) / 2.0);
    sum_uu[d] = others * ((e - 1.0) * e * (2.0 * e - 1.0) / 6.0);
  }

  double sum_x = 0.0;
  std::array<double, 4> sum_ux{};
  std::array<std::size_t, 4> c{};
  for (c[0] = 0; c[0] < blk.extent[0]; ++c[0])
    for (c[1] = 0; c[1] < blk.extent[1]; ++c[1])
      for (c[2] = 0; c[2] < blk.extent[2]; ++c[2]) {
        std::size_t lin = row_base(g, blk, c);
        const double u0 = static_cast<double>(c[0]);
        const double u1 = static_cast<double>(c[1]);
        const double u2 = static_cast<double>(c[2]);
        for (c[3] = 0; c[3] < blk.extent[3]; ++c[3], ++lin) {
          const double x = static_cast<double>(data[lin]);
          sum_x += x;
          sum_ux[0] += u0 * x;
          sum_ux[1] += u1 * x;
          sum_ux[2] += u2 * x;
          sum_ux[3] += static_cast<double>(c[3]) * x;
        }
      }
  const double mean_x = sum_x / n;
  double b0 = mean_x;
  for (int d = 0; d < 4; ++d) {
    const double mean_u = sum_u[d] / n;
    const double var_u = sum_uu[d] / n - mean_u * mean_u;
    const double cov = sum_ux[d] / n - mean_u * mean_x;
    const double slope = var_u > 1e-12 ? cov / var_u : 0.0;
    rc.slope[d] = static_cast<float>(slope);
    b0 -= slope * mean_u;
  }
  rc.b0 = static_cast<float>(b0);
  return rc;
}

// Decides the per-block predictor by comparing sampled absolute residuals
// of raw-data Lorenzo vs. the regression plane (SZ2's selection heuristic).
template <typename T>
bool regression_wins(const Geometry& g, const StencilCache& stencils,
                     const T* data, const BlockRef& blk,
                     const RegressionCoeffs& rc) {
  double err_lorenzo = 0.0, err_reg = 0.0;
  std::array<std::size_t, 4> c{};
  for (c[0] = 0; c[0] < blk.extent[0]; ++c[0])
    for (c[1] = 0; c[1] < blk.extent[1]; ++c[1])
      for (c[2] = 0; c[2] < blk.extent[2]; c[2] += 2) {
        const std::array<std::size_t, 4> row{
            blk.origin[0] + c[0], blk.origin[1] + c[1],
            blk.origin[2] + c[2], blk.origin[3]};
        const RowStencil& st = stencils.for_row(row);
        // regression_predict association: ((b0+s0c0)+s1c1)+s2c2, then +s3c3.
        const double reg_row =
            ((rc.b0 + static_cast<double>(rc.slope[0]) *
                          static_cast<double>(c[0])) +
             static_cast<double>(rc.slope[1]) * static_cast<double>(c[1])) +
            static_cast<double>(rc.slope[2]) * static_cast<double>(c[2]);
        const std::size_t base = row_base(g, blk, c);
        for (c[3] = 0; c[3] < blk.extent[3]; c[3] += 2) {  // sample stride 2
          const std::size_t lin = base + c[3];
          const double x = static_cast<double>(data[lin]);
          // Raw-data Lorenzo residual (approximation to the real residual).
          const bool head = row[3] + c[3] == 0 && g.dim[3] > 1;
          const double pred =
              head ? stencil_predict(st.head_terms, st.head_n, data, lin)
                   : stencil_predict(st.tail_terms, st.tail_n, data, lin);
          err_lorenzo += std::fabs(x - pred);
          err_reg +=
              std::fabs(x - (reg_row + static_cast<double>(rc.slope[3]) *
                                           static_cast<double>(c[3])));
        }
      }
  return err_reg < err_lorenzo;
}

// Walks one block in canonical element order, computing every element's
// prediction (regression plane or Lorenzo stencil over `recon`) and
// invoking fn(lin, pred) — except for regression rows, which are handed
// whole to reg_row_fn(base, row0, s3, n) because the regression plane has
// no reconstruction feedback: the callee may process the row with a
// stride-1 vectorized kernel as long as each element's prediction is
// evaluated as the bit-identical expression row0 + s3 * (double)k.
// Compress and decompress both iterate through this single walker: the
// round-trip contract requires the two sides to evaluate predictions
// bit-identically, so the shared code path makes that symmetry structural
// rather than maintained by hand (the callbacks are the only
// side-specific part — quantize+record vs recover+materialize).
template <typename T, typename Fn, typename RegRowFn>
void walk_block_predictions(const Geometry& g, const BlockRef& blk,
                            const StencilCache& stencils, bool reg,
                            const RegressionCoeffs& rc, const T* recon,
                            Fn&& fn, RegRowFn&& reg_row_fn) {
  std::array<std::size_t, 4> c{};
  for (c[0] = 0; c[0] < blk.extent[0]; ++c[0])
    for (c[1] = 0; c[1] < blk.extent[1]; ++c[1])
      for (c[2] = 0; c[2] < blk.extent[2]; ++c[2]) {
        // Per-element work is hoisted to the row: the linear index
        // advances unit-stride, the predictor branch resolves once, and
        // boundary handling collapses into the precomputed stencils.
        const std::size_t base = row_base(g, blk, c);
        const std::size_t ext3 = blk.extent[3];
        if (reg) {
          // regression association: ((b0+s0c0)+s1c1)+s2c2, then +s3c3.
          const double reg_row =
              ((rc.b0 + static_cast<double>(rc.slope[0]) *
                            static_cast<double>(c[0])) +
               static_cast<double>(rc.slope[1]) *
                   static_cast<double>(c[1])) +
              static_cast<double>(rc.slope[2]) * static_cast<double>(c[2]);
          const double s3 = static_cast<double>(rc.slope[3]);
          reg_row_fn(base, reg_row, s3, ext3);
        } else {
          const std::array<std::size_t, 4> row{
              blk.origin[0] + c[0], blk.origin[1] + c[1],
              blk.origin[2] + c[2], blk.origin[3]};
          // Boundary handling collapsed into the cached stencil; interior
          // rows hit the same full-stencil entry every time.
          const RowStencil& st = stencils.for_row(row);
          std::size_t c3 = 0;
          if (row[3] == 0 && g.dim[3] > 1 && ext3 > 0) {
            fn(base,
               stencil_predict(st.head_terms, st.head_n, recon, base));
            c3 = 1;
          }
          for (; c3 < ext3; ++c3) {
            const std::size_t lin = base + c3;
            fn(lin,
               stencil_predict(st.tail_terms, st.tail_n, recon, lin));
          }
        }
      }
}

struct SlabEncoding {
  std::vector<std::uint32_t> codes;
  Bytes mode_bits;      // 1 bit per block (regression?) for 2D/3D
  Bytes coeffs;         // RegressionCoeffs for regression blocks, in order
  Bytes unpred;         // raw T values for unpredictable points, in order
};

template <typename T>
SlabEncoding compress_slab(const Field& field, double abs_eb) {
  const NdArray<T>& arr = field.as<T>();
  const Geometry g = Geometry::from_dims(arr.shape().dims_vector());
  const T* data = arr.data();
  const LinearQuantizer quant(abs_eb, kRadius);
  const bool use_regression = g.real_dims == 2 || g.real_dims == 3;

  SlabEncoding enc;
  enc.codes.resize(g.num_elements());
  std::uint32_t* code_dst = enc.codes.data();
  // recon holds values the decompressor materializes: every entry is the
  // T-cast of a prediction+residual, hence exactly T-representable — storing
  // T halves the buffer bandwidth with bit-identical reads.
  using ReconT = T;
  std::vector<ReconT> recon(g.num_elements(), ReconT{0});

  // All 16 boundary stencils precomputed once; rows index by zero-pattern.
  const StencilCache stencils(g);

  const auto blocks = enumerate_blocks(g);
  enc.mode_bits.assign((blocks.size() + 7) / 8, std::byte{0});

  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const BlockRef& blk = blocks[bi];
    RegressionCoeffs rc;
    bool reg = false;
    if (use_regression) {
      rc = fit_regression(g, data, blk);
      reg = regression_wins(g, stencils, data, blk, rc);
      if (reg) {
        enc.mode_bits[bi / 8] |= static_cast<std::byte>(1u << (bi % 8));
        append_pod(enc.coeffs, rc);
      }
    }
    walk_block_predictions(
        g, blk, stencils, reg, rc, recon.data(),
        [&](std::size_t lin, double pred) {
          const double x = static_cast<double>(data[lin]);
          double r = 0.0;
          const std::uint32_t code = quant.quantize<T>(x, pred, &r);
          if (code == 0) {
            append_pod<T>(enc.unpred, static_cast<T>(x));
            r = x;
          }
          recon[lin] = static_cast<ReconT>(r);
          *code_dst++ = code;
        },
        // Regression rows: stride-1 vectorized quantization, then a scan
        // for the (rare) unpredictable slots so the exact-value stream
        // stays in canonical element order.
        [&](std::size_t base, double row0, double s3, std::size_t n) {
          quant.quantize_row<T>(data + base, n, row0, s3, code_dst,
                                recon.data() + base);
          for (std::size_t k = 0; k < n; ++k)
            if (code_dst[k] == 0) append_pod<T>(enc.unpred, data[base + k]);
          code_dst += n;
        });
  }
  return enc;
}

template <typename T>
Field decompress_slab(const BlobHeader& header,
                      std::span<const std::uint32_t> codes,
                      std::span<const std::byte> mode_bits,
                      ByteReader& coeffs, ByteReader& unpred) {
  const Geometry g = Geometry::from_dims(header.dims);
  const LinearQuantizer quant(header.abs_error_bound, kRadius);
  const bool use_regression = g.real_dims == 2 || g.real_dims == 3;

  NdArray<T> arr(Shape{std::span<const std::size_t>(header.dims)});
  // recon holds values the decompressor materializes: every entry is the
  // T-cast of a prediction+residual, hence exactly T-representable — storing
  // T halves the buffer bandwidth with bit-identical reads.
  using ReconT = T;
  std::vector<ReconT> recon(g.num_elements(), ReconT{0});

  // All 16 boundary stencils precomputed once; rows index by zero-pattern.
  const StencilCache stencils(g);

  const auto blocks = enumerate_blocks(g);
  EBLCIO_CHECK_STREAM(mode_bits.size() >= (blocks.size() + 7) / 8,
                      "SZ2: truncated block mode bits");
  std::size_t code_idx = 0;

  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const BlockRef& blk = blocks[bi];
    const bool reg =
        use_regression &&
        (static_cast<unsigned>(mode_bits[bi / 8]) >> (bi % 8)) & 1u;
    RegressionCoeffs rc;
    if (reg) rc = coeffs.read_pod<RegressionCoeffs>();

    // The whole block's codes must be present before any element is
    // consumed (stricter-earlier version of the per-element underrun
    // check; same exception on corrupt streams).
    std::size_t block_elems = 1;
    for (int d = 0; d < 4; ++d) block_elems *= blk.extent[d];
    EBLCIO_CHECK_STREAM(code_idx + block_elems <= codes.size(),
                        "SZ2: code stream underrun");
    walk_block_predictions(
        g, blk, stencils, reg, rc, recon.data(),
        [&](std::size_t lin, double pred) {
          const std::uint32_t code = codes[code_idx++];
          T out;
          if (code == 0) {
            out = unpred.read_pod<T>();
          } else {
            out = static_cast<T>(quant.recover(pred, code));
          }
          recon[lin] = out;
          arr[lin] = out;
        },
        // Regression rows: stride-1 vectorized recovery into recon, then
        // overwrite the code-0 slots from the exact-value stream in
        // canonical order and mirror the row into the output array.
        [&](std::size_t base, double row0, double s3, std::size_t n) {
          const std::uint32_t* cs = codes.data() + code_idx;
          T* out = recon.data() + base;
          quant.recover_row<T>(cs, n, row0, s3, out);
          for (std::size_t k = 0; k < n; ++k)
            if (cs[k] == 0) out[k] = unpred.read_pod<T>();
          for (std::size_t k = 0; k < n; ++k) arr[base + k] = out[k];
          code_idx += n;
        });
  }
  return Field("SZ2", std::move(arr));
}

}  // namespace

Bytes Sz2Compressor::compress(const Field& field, const CompressOptions& opt) {
  EBLCIO_CHECK_ARG(opt.mode != BoundMode::kLossless,
                   "SZ2 is an error-bounded lossy compressor");
  if (opt.threads > 1 && !supports(field, opt))
    throw Unsupported(
        "the OpenMP version of SZ2 does not support 1D or 4D data");

  BlobHeader header;
  header.codec = name();
  header.dtype = field.dtype();
  header.dims = field.shape().dims_vector();
  header.abs_error_bound = absolute_bound_for(field, opt);
  header.requested_mode = opt.mode;
  header.requested_bound = opt.error_bound;

  // Stage 1 (parallel over slabs): prediction + quantization.
  const auto slabs = split_slabs(field, std::max(opt.threads, 1));
  std::vector<SlabEncoding> encs(slabs.size());
  parallel_for(slabs.size(), std::max(opt.threads, 1), [&](std::size_t i) {
    encs[i] = field.dtype() == DType::kFloat32
                  ? compress_slab<float>(slabs[i], header.abs_error_bound)
                  : compress_slab<double>(slabs[i], header.abs_error_bound);
  });

  // Stage 2 (serial, as in the reference implementation): one Huffman +
  // lossless pass over the concatenated code stream.
  std::vector<std::uint32_t> all_codes;
  std::size_t total = 0;
  for (const auto& e : encs) total += e.codes.size();
  all_codes.reserve(total);
  for (const auto& e : encs)
    all_codes.insert(all_codes.end(), e.codes.begin(), e.codes.end());

  Bytes out;
  header.encode(out);
  append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(encs.size()));
  for (const auto& e : encs) {
    append_pod<std::uint64_t>(out, e.codes.size());
    append_sized(out, e.mode_bits);
    append_sized(out, e.coeffs);
    append_sized(out, e.unpred);
  }
  Bytes code_blob = encode_code_stream(all_codes, 2 * kRadius + 1);
  append_bytes(out, code_blob);
  BufferPool::global().release(std::move(code_blob));
  return out;
}

Field Sz2Compressor::decompress(std::span<const std::byte> blob,
                                int threads) {
  ByteReader r(blob);
  const BlobHeader header = BlobHeader::decode(r);
  const auto nslabs = r.read_pod<std::uint32_t>();
  EBLCIO_CHECK_STREAM(nslabs >= 1, "SZ2: bad slab count");

  struct SlabMeta {
    std::uint64_t ncodes;
    std::span<const std::byte> mode_bits, coeffs, unpred;
  };
  std::vector<SlabMeta> metas(nslabs);
  for (auto& m : metas) {
    m.ncodes = r.read_pod<std::uint64_t>();
    m.mode_bits = read_sized(r);
    m.coeffs = read_sized(r);
    m.unpred = read_sized(r);
  }
  // Serial entropy decode of the global code stream.
  auto codes = decode_code_stream(r);

  // Parallel per-slab reconstruction.
  std::vector<Field> slab_fields(nslabs);
  std::vector<std::size_t> code_offsets(nslabs, 0);
  {
    std::size_t off = 0;
    for (std::uint32_t i = 0; i < nslabs; ++i) {
      code_offsets[i] = off;
      off += metas[i].ncodes;
    }
    EBLCIO_CHECK_STREAM(off == codes.size(), "SZ2: code stream size mismatch");
  }
  parallel_for(nslabs, std::max(threads, 1), [&](std::size_t i) {
    BlobHeader slab_header = header;
    slab_header.dims[0] =
        slab_rows(header.dims[0], nslabs, static_cast<int>(i));
    ByteReader coeffs(metas[i].coeffs);
    ByteReader unpred(metas[i].unpred);
    std::span<const std::uint32_t> slab_codes(
        codes.data() + code_offsets[i], metas[i].ncodes);
    slab_fields[i] =
        header.dtype == DType::kFloat32
            ? decompress_slab<float>(slab_header, slab_codes,
                                     metas[i].mode_bits, coeffs, unpred)
            : decompress_slab<double>(slab_header, slab_codes,
                                      metas[i].mode_bits, coeffs, unpred);
  });
  return merge_slabs(slab_fields, header.dims, "SZ2");
}

}  // namespace eblcio
