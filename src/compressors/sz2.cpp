#include "compressors/sz2.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/error.h"
#include "compressors/backend.h"
#include "compressors/chunking.h"
#include "parallel/executor.h"
#include "compressors/quantizer.h"

namespace eblcio {
namespace {

constexpr std::uint32_t kRadius = 32768;

// All fields are processed through a uniform 4D view: leading dimensions of
// extent 1 are prepended, and the Lorenzo inclusion-exclusion masks over
// size-1 dimensions vanish naturally.
struct Geometry {
  std::array<std::size_t, 4> dim{1, 1, 1, 1};
  std::array<std::size_t, 4> stride{};
  std::array<std::size_t, 4> block{1, 1, 1, 1};   // block edge per dim
  std::array<std::size_t, 4> nblocks{1, 1, 1, 1}; // block grid
  int real_dims = 1;
  std::vector<unsigned> lorenzo_masks;  // nonzero masks over real dims
  // Precomputed (linear offset, sign) per mask for the interior fast path.
  std::vector<std::pair<std::size_t, double>> lorenzo_terms;

  static Geometry from_dims(const std::vector<std::size_t>& dims) {
    Geometry g;
    g.real_dims = static_cast<int>(dims.size());
    const int pad = 4 - g.real_dims;
    for (int i = 0; i < g.real_dims; ++i) g.dim[pad + i] = dims[i];

    // Block edges per dimensionality, as in SZ2 (256 / 16x16 / 6^3).
    static constexpr std::array<std::array<std::size_t, 4>, 4> kEdges{{
        {1, 1, 1, 256},
        {1, 1, 16, 16},
        {1, 6, 6, 6},
        {6, 6, 6, 6},
    }};
    g.block = kEdges[g.real_dims - 1];

    std::size_t acc = 1;
    for (int d = 3; d >= 0; --d) {
      g.stride[d] = acc;
      acc *= g.dim[d];
    }
    for (int d = 0; d < 4; ++d)
      g.nblocks[d] = (g.dim[d] + g.block[d] - 1) / g.block[d];

    // Lorenzo neighbour masks: subsets of the real dimensions.
    for (unsigned mask = 1; mask < 16; ++mask) {
      bool ok = true;
      for (int d = 0; d < 4; ++d)
        if ((mask & (1u << d)) && g.dim[d] == 1) ok = false;
      if (ok) g.lorenzo_masks.push_back(mask);
    }
    for (unsigned mask : g.lorenzo_masks) {
      std::size_t off = 0;
      for (int d = 0; d < 4; ++d)
        if (mask & (1u << d)) off += g.stride[d];
      g.lorenzo_terms.emplace_back(off,
                                   (std::popcount(mask) & 1) ? 1.0 : -1.0);
    }
    return g;
  }

  // True when every active dimension's coordinate is nonzero, i.e. all
  // Lorenzo neighbours exist and the precomputed-term fast path applies.
  bool interior(const std::array<std::size_t, 4>& c) const {
    for (int d = 0; d < 4; ++d)
      if (c[d] == 0 && dim[d] > 1) return false;
    return true;
  }

  std::size_t num_elements() const {
    return dim[0] * dim[1] * dim[2] * dim[3];
  }
  std::size_t total_blocks() const {
    return nblocks[0] * nblocks[1] * nblocks[2] * nblocks[3];
  }
};

// Lorenzo prediction from a (partially filled) reconstruction buffer.
// Out-of-range neighbours contribute zero, matching SZ's padding semantics.
double lorenzo_predict(const Geometry& g, const double* recon,
                       const std::array<std::size_t, 4>& c,
                       std::size_t linear) {
  if (g.interior(c)) {
    double pred = 0.0;
    for (const auto& [off, sign] : g.lorenzo_terms)
      pred += sign * recon[linear - off];
    return pred;
  }
  double pred = 0.0;
  for (unsigned mask : g.lorenzo_masks) {
    bool in_range = true;
    std::size_t off = 0;
    for (int d = 0; d < 4; ++d) {
      if (!(mask & (1u << d))) continue;
      if (c[d] == 0) {
        in_range = false;
        break;
      }
      off += g.stride[d];
    }
    if (!in_range) continue;
    const double v = recon[linear - off];
    pred += (std::popcount(mask) & 1) ? v : -v;
  }
  return pred;
}

struct RegressionCoeffs {
  float b0 = 0.f;
  std::array<float, 4> slope{};  // per uniform-4D dim (zeros for unit dims)
};

// Kernel state shared between the per-block passes.
struct BlockRef {
  std::array<std::size_t, 4> origin;
  std::array<std::size_t, 4> extent;
};

// Enumerates blocks in row-major block-grid order.
std::vector<BlockRef> enumerate_blocks(const Geometry& g) {
  std::vector<BlockRef> blocks;
  blocks.reserve(g.total_blocks());
  std::array<std::size_t, 4> b{};
  for (b[0] = 0; b[0] < g.nblocks[0]; ++b[0])
    for (b[1] = 0; b[1] < g.nblocks[1]; ++b[1])
      for (b[2] = 0; b[2] < g.nblocks[2]; ++b[2])
        for (b[3] = 0; b[3] < g.nblocks[3]; ++b[3]) {
          BlockRef ref;
          for (int d = 0; d < 4; ++d) {
            ref.origin[d] = b[d] * g.block[d];
            ref.extent[d] =
                std::min(g.block[d], g.dim[d] - ref.origin[d]);
          }
          blocks.push_back(ref);
        }
  return blocks;
}

// Least-squares plane fit over a block of raw values.
template <typename T>
RegressionCoeffs fit_regression(const Geometry& g, const T* data,
                                const BlockRef& blk) {
  RegressionCoeffs rc;
  double n = 0.0, sum_x = 0.0;
  std::array<double, 4> sum_u{}, sum_uu{}, sum_ux{};
  std::array<std::size_t, 4> c{};
  for (c[0] = 0; c[0] < blk.extent[0]; ++c[0])
    for (c[1] = 0; c[1] < blk.extent[1]; ++c[1])
      for (c[2] = 0; c[2] < blk.extent[2]; ++c[2])
        for (c[3] = 0; c[3] < blk.extent[3]; ++c[3]) {
          std::size_t lin = 0;
          for (int d = 0; d < 4; ++d)
            lin += (blk.origin[d] + c[d]) * g.stride[d];
          const double x = static_cast<double>(data[lin]);
          n += 1.0;
          sum_x += x;
          for (int d = 0; d < 4; ++d) {
            const auto u = static_cast<double>(c[d]);
            sum_u[d] += u;
            sum_uu[d] += u * u;
            sum_ux[d] += u * x;
          }
        }
  const double mean_x = sum_x / n;
  double b0 = mean_x;
  for (int d = 0; d < 4; ++d) {
    const double mean_u = sum_u[d] / n;
    const double var_u = sum_uu[d] / n - mean_u * mean_u;
    const double cov = sum_ux[d] / n - mean_u * mean_x;
    const double slope = var_u > 1e-12 ? cov / var_u : 0.0;
    rc.slope[d] = static_cast<float>(slope);
    b0 -= slope * mean_u;
  }
  rc.b0 = static_cast<float>(b0);
  return rc;
}

double regression_predict(const RegressionCoeffs& rc,
                          const std::array<std::size_t, 4>& local) {
  double p = rc.b0;
  for (int d = 0; d < 4; ++d)
    p += static_cast<double>(rc.slope[d]) * static_cast<double>(local[d]);
  return p;
}

// Decides the per-block predictor by comparing sampled absolute residuals
// of raw-data Lorenzo vs. the regression plane (SZ2's selection heuristic).
template <typename T>
bool regression_wins(const Geometry& g, const T* data, const BlockRef& blk,
                     const RegressionCoeffs& rc) {
  double err_lorenzo = 0.0, err_reg = 0.0;
  std::array<std::size_t, 4> c{};
  for (c[0] = 0; c[0] < blk.extent[0]; ++c[0])
    for (c[1] = 0; c[1] < blk.extent[1]; ++c[1])
      for (c[2] = 0; c[2] < blk.extent[2]; c[2] += 2)
        for (c[3] = 0; c[3] < blk.extent[3]; c[3] += 2) {  // sample stride 2
          std::array<std::size_t, 4> gc;
          std::size_t lin = 0;
          for (int d = 0; d < 4; ++d) {
            gc[d] = blk.origin[d] + c[d];
            lin += gc[d] * g.stride[d];
          }
          const double x = static_cast<double>(data[lin]);
          // Raw-data Lorenzo residual (approximation to the real residual).
          double pred = 0.0;
          if (g.interior(gc)) {
            for (const auto& [off, sign] : g.lorenzo_terms)
              pred += sign * static_cast<double>(data[lin - off]);
          } else {
            for (unsigned mask : g.lorenzo_masks) {
              bool in_range = true;
              std::size_t off = 0;
              for (int d = 0; d < 4; ++d) {
                if (!(mask & (1u << d))) continue;
                if (gc[d] == 0) {
                  in_range = false;
                  break;
                }
                off += g.stride[d];
              }
              if (!in_range) continue;
              const double v = static_cast<double>(data[lin - off]);
              pred += (std::popcount(mask) & 1) ? v : -v;
            }
          }
          err_lorenzo += std::fabs(x - pred);
          err_reg += std::fabs(x - regression_predict(rc, c));
        }
  return err_reg < err_lorenzo;
}

struct SlabEncoding {
  std::vector<std::uint32_t> codes;
  Bytes mode_bits;      // 1 bit per block (regression?) for 2D/3D
  Bytes coeffs;         // RegressionCoeffs for regression blocks, in order
  Bytes unpred;         // raw T values for unpredictable points, in order
};

template <typename T>
SlabEncoding compress_slab(const Field& field, double abs_eb) {
  const NdArray<T>& arr = field.as<T>();
  const Geometry g = Geometry::from_dims(arr.shape().dims_vector());
  const T* data = arr.data();
  const LinearQuantizer quant(abs_eb, kRadius);
  const bool use_regression = g.real_dims == 2 || g.real_dims == 3;

  SlabEncoding enc;
  enc.codes.reserve(g.num_elements());
  std::vector<double> recon(g.num_elements(), 0.0);

  const auto blocks = enumerate_blocks(g);
  enc.mode_bits.assign((blocks.size() + 7) / 8, std::byte{0});

  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const BlockRef& blk = blocks[bi];
    RegressionCoeffs rc;
    bool reg = false;
    if (use_regression) {
      rc = fit_regression(g, data, blk);
      reg = regression_wins(g, data, blk, rc);
      if (reg) {
        enc.mode_bits[bi / 8] |= static_cast<std::byte>(1u << (bi % 8));
        append_pod(enc.coeffs, rc);
      }
    }
    std::array<std::size_t, 4> c{};
    for (c[0] = 0; c[0] < blk.extent[0]; ++c[0])
      for (c[1] = 0; c[1] < blk.extent[1]; ++c[1])
        for (c[2] = 0; c[2] < blk.extent[2]; ++c[2])
          for (c[3] = 0; c[3] < blk.extent[3]; ++c[3]) {
            std::array<std::size_t, 4> gc;
            std::size_t lin = 0;
            for (int d = 0; d < 4; ++d) {
              gc[d] = blk.origin[d] + c[d];
              lin += gc[d] * g.stride[d];
            }
            const double x = static_cast<double>(data[lin]);
            const double pred =
                reg ? regression_predict(rc, c)
                    : lorenzo_predict(g, recon.data(), gc, lin);
            double r = 0.0;
            const std::uint32_t code = quant.quantize<T>(x, pred, &r);
            if (code == 0) {
              append_pod<T>(enc.unpred, static_cast<T>(x));
              r = x;
            }
            recon[lin] = r;
            enc.codes.push_back(code);
          }
  }
  return enc;
}

template <typename T>
Field decompress_slab(const BlobHeader& header,
                      std::span<const std::uint32_t> codes,
                      std::span<const std::byte> mode_bits,
                      ByteReader& coeffs, ByteReader& unpred) {
  const Geometry g = Geometry::from_dims(header.dims);
  const LinearQuantizer quant(header.abs_error_bound, kRadius);
  const bool use_regression = g.real_dims == 2 || g.real_dims == 3;

  NdArray<T> arr(Shape{std::span<const std::size_t>(header.dims)});
  std::vector<double> recon(g.num_elements(), 0.0);

  const auto blocks = enumerate_blocks(g);
  EBLCIO_CHECK_STREAM(mode_bits.size() >= (blocks.size() + 7) / 8,
                      "SZ2: truncated block mode bits");
  std::size_t code_idx = 0;

  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const BlockRef& blk = blocks[bi];
    const bool reg =
        use_regression &&
        (static_cast<unsigned>(mode_bits[bi / 8]) >> (bi % 8)) & 1u;
    RegressionCoeffs rc;
    if (reg) rc = coeffs.read_pod<RegressionCoeffs>();

    std::array<std::size_t, 4> c{};
    for (c[0] = 0; c[0] < blk.extent[0]; ++c[0])
      for (c[1] = 0; c[1] < blk.extent[1]; ++c[1])
        for (c[2] = 0; c[2] < blk.extent[2]; ++c[2])
          for (c[3] = 0; c[3] < blk.extent[3]; ++c[3]) {
            std::array<std::size_t, 4> gc;
            std::size_t lin = 0;
            for (int d = 0; d < 4; ++d) {
              gc[d] = blk.origin[d] + c[d];
              lin += gc[d] * g.stride[d];
            }
            EBLCIO_CHECK_STREAM(code_idx < codes.size(),
                                "SZ2: code stream underrun");
            const std::uint32_t code = codes[code_idx++];
            T out;
            if (code == 0) {
              out = unpred.read_pod<T>();
            } else {
              const double pred =
                  reg ? regression_predict(rc, c)
                      : lorenzo_predict(g, recon.data(), gc, lin);
              out = static_cast<T>(quant.recover(pred, code));
            }
            recon[lin] = static_cast<double>(out);
            arr[lin] = out;
          }
  }
  return Field("SZ2", std::move(arr));
}

}  // namespace

Bytes Sz2Compressor::compress(const Field& field, const CompressOptions& opt) {
  EBLCIO_CHECK_ARG(opt.mode != BoundMode::kLossless,
                   "SZ2 is an error-bounded lossy compressor");
  if (opt.threads > 1 && !supports(field, opt))
    throw Unsupported(
        "the OpenMP version of SZ2 does not support 1D or 4D data");

  BlobHeader header;
  header.codec = name();
  header.dtype = field.dtype();
  header.dims = field.shape().dims_vector();
  header.abs_error_bound = absolute_bound_for(field, opt);
  header.requested_mode = opt.mode;
  header.requested_bound = opt.error_bound;

  // Stage 1 (parallel over slabs): prediction + quantization.
  const auto slabs = split_slabs(field, std::max(opt.threads, 1));
  std::vector<SlabEncoding> encs(slabs.size());
  parallel_for(slabs.size(), std::max(opt.threads, 1), [&](std::size_t i) {
    encs[i] = field.dtype() == DType::kFloat32
                  ? compress_slab<float>(slabs[i], header.abs_error_bound)
                  : compress_slab<double>(slabs[i], header.abs_error_bound);
  });

  // Stage 2 (serial, as in the reference implementation): one Huffman +
  // lossless pass over the concatenated code stream.
  std::vector<std::uint32_t> all_codes;
  std::size_t total = 0;
  for (const auto& e : encs) total += e.codes.size();
  all_codes.reserve(total);
  for (const auto& e : encs)
    all_codes.insert(all_codes.end(), e.codes.begin(), e.codes.end());

  Bytes out;
  header.encode(out);
  append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(encs.size()));
  for (const auto& e : encs) {
    append_pod<std::uint64_t>(out, e.codes.size());
    append_sized(out, e.mode_bits);
    append_sized(out, e.coeffs);
    append_sized(out, e.unpred);
  }
  Bytes code_blob = encode_code_stream(all_codes, 2 * kRadius + 1);
  append_bytes(out, code_blob);
  return out;
}

Field Sz2Compressor::decompress(std::span<const std::byte> blob,
                                int threads) {
  ByteReader r(blob);
  const BlobHeader header = BlobHeader::decode(r);
  const auto nslabs = r.read_pod<std::uint32_t>();
  EBLCIO_CHECK_STREAM(nslabs >= 1, "SZ2: bad slab count");

  struct SlabMeta {
    std::uint64_t ncodes;
    std::span<const std::byte> mode_bits, coeffs, unpred;
  };
  std::vector<SlabMeta> metas(nslabs);
  for (auto& m : metas) {
    m.ncodes = r.read_pod<std::uint64_t>();
    m.mode_bits = read_sized(r);
    m.coeffs = read_sized(r);
    m.unpred = read_sized(r);
  }
  // Serial entropy decode of the global code stream.
  auto codes = decode_code_stream(r);

  // Parallel per-slab reconstruction.
  std::vector<Field> slab_fields(nslabs);
  std::vector<std::size_t> code_offsets(nslabs, 0);
  {
    std::size_t off = 0;
    for (std::uint32_t i = 0; i < nslabs; ++i) {
      code_offsets[i] = off;
      off += metas[i].ncodes;
    }
    EBLCIO_CHECK_STREAM(off == codes.size(), "SZ2: code stream size mismatch");
  }
  parallel_for(nslabs, std::max(threads, 1), [&](std::size_t i) {
    BlobHeader slab_header = header;
    slab_header.dims[0] =
        slab_rows(header.dims[0], nslabs, static_cast<int>(i));
    ByteReader coeffs(metas[i].coeffs);
    ByteReader unpred(metas[i].unpred);
    std::span<const std::uint32_t> slab_codes(
        codes.data() + code_offsets[i], metas[i].ncodes);
    slab_fields[i] =
        header.dtype == DType::kFloat32
            ? decompress_slab<float>(slab_header, slab_codes,
                                     metas[i].mode_bits, coeffs, unpred)
            : decompress_slab<double>(slab_header, slab_codes,
                                      metas[i].mode_bits, coeffs, unpred);
  });
  return merge_slabs(slab_fields, header.dims, "SZ2");
}

}  // namespace eblcio
