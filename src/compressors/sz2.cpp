// SZ2 framing over the shared block engine (compressors/block_core.h):
// the prediction/quantization kernels this file used to own now live
// behind block_compress/block_decompress, and SZ2 is the
// (kLorenzoRegression, kLinearRecip) configuration of them — the same
// kernels the composed codec framework drives with other component pairs.
// The slab/stream framing below is frozen by the pinned reference blobs.
#include "compressors/sz2.h"

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "compressors/backend.h"
#include "compressors/block_core.h"
#include "compressors/chunking.h"
#include "parallel/executor.h"

namespace eblcio {

Bytes Sz2Compressor::compress(const Field& field, const CompressOptions& opt) {
  EBLCIO_CHECK_ARG(opt.mode != BoundMode::kLossless,
                   "SZ2 is an error-bounded lossy compressor");
  if (opt.threads > 1 && !supports(field, opt))
    throw Unsupported(
        "the OpenMP version of SZ2 does not support 1D or 4D data");

  BlobHeader header;
  header.codec = name();
  header.dtype = field.dtype();
  header.dims = field.shape().dims_vector();
  header.abs_error_bound = absolute_bound_for(field, opt);
  header.requested_mode = opt.mode;
  header.requested_bound = opt.error_bound;

  // Stage 1 (parallel over slabs): prediction + quantization. A single
  // slab is the whole field — compress it in place instead of paying
  // split_slabs' full-field copy for a no-op split.
  const int nslabs = static_cast<int>(
      std::min<std::size_t>(field.shape().dim(0),
                            static_cast<std::size_t>(std::max(opt.threads, 1))));
  std::vector<BlockEncoding> encs(static_cast<std::size_t>(nslabs));
  if (nslabs == 1) {
    encs[0] = block_compress(field, header.abs_error_bound,
                             BlockPredictor::kLorenzoRegression,
                             QuantizerId::kLinearRecip, 0.0);
  } else {
    const auto slabs = split_slabs(field, nslabs);
    parallel_for(slabs.size(), nslabs, [&](std::size_t i) {
      encs[i] = block_compress(slabs[i], header.abs_error_bound,
                               BlockPredictor::kLorenzoRegression,
                               QuantizerId::kLinearRecip, 0.0);
    });
  }

  // Stage 2 (serial, as in the reference implementation): one Huffman +
  // lossless pass over the concatenated code stream. One slab's codes are
  // already the whole stream; concatenate only when there are several.
  std::vector<std::uint32_t> multi_codes;
  if (encs.size() > 1) {
    std::size_t total = 0;
    for (const auto& e : encs) total += e.codes.size();
    multi_codes.reserve(total);
    for (const auto& e : encs)
      multi_codes.insert(multi_codes.end(), e.codes.begin(), e.codes.end());
  }
  const std::vector<std::uint32_t>& all_codes =
      encs.size() > 1 ? multi_codes : encs[0].codes;

  Bytes out;
  header.encode(out);
  append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(encs.size()));
  for (const auto& e : encs) {
    append_pod<std::uint64_t>(out, e.codes.size());
    append_sized(out, e.mode_bits);
    append_sized(out, e.coeffs);
    append_sized(out, e.unpred);
  }
  Bytes code_blob = encode_code_stream(all_codes, kQuantAlphabet);
  append_bytes(out, code_blob);
  BufferPool::global().release(std::move(code_blob));
  return out;
}

Field Sz2Compressor::decompress(std::span<const std::byte> blob,
                                int threads) {
  ByteReader r(blob);
  const BlobHeader header = BlobHeader::decode(r);
  const auto nslabs = r.read_pod<std::uint32_t>();
  EBLCIO_CHECK_STREAM(nslabs >= 1, "SZ2: bad slab count");

  struct SlabMeta {
    std::uint64_t ncodes;
    std::span<const std::byte> mode_bits, coeffs, unpred;
  };
  std::vector<SlabMeta> metas(nslabs);
  for (auto& m : metas) {
    m.ncodes = r.read_pod<std::uint64_t>();
    m.mode_bits = read_sized(r);
    m.coeffs = read_sized(r);
    m.unpred = read_sized(r);
  }
  // Serial entropy decode of the global code stream.
  auto codes = decode_code_stream(r);

  // Parallel per-slab reconstruction.
  std::vector<Field> slab_fields(nslabs);
  std::vector<std::size_t> code_offsets(nslabs, 0);
  {
    std::size_t off = 0;
    for (std::uint32_t i = 0; i < nslabs; ++i) {
      code_offsets[i] = off;
      off += metas[i].ncodes;
    }
    EBLCIO_CHECK_STREAM(off == codes.size(), "SZ2: code stream size mismatch");
  }
  parallel_for(nslabs, std::max(threads, 1), [&](std::size_t i) {
    BlobHeader slab_header = header;
    slab_header.dims[0] =
        slab_rows(header.dims[0], nslabs, static_cast<int>(i));
    ByteReader coeffs(metas[i].coeffs);
    ByteReader unpred(metas[i].unpred);
    std::span<const std::uint32_t> slab_codes(
        codes.data() + code_offsets[i], metas[i].ncodes);
    slab_fields[i] = block_decompress(
        slab_header, BlockPredictor::kLorenzoRegression,
        QuantizerId::kLinearRecip, 0.0, slab_codes, metas[i].mode_bits,
        coeffs, unpred);
  });
  return merge_slabs(slab_fields, header.dims, "SZ2");
}

}  // namespace eblcio
