// Composable predictor x quantizer x encoder codec framework.
//
// Every error-bounded pipeline in the SZ family is the same three stages —
// predict, quantize the residual, entropy-encode the codes — hard-wired
// per codec. This seam makes each stage a pluggable component selected at
// construction time (the SZ3 SZ_General_Compressor shape): a
// ComposedCompressor is one point of the predictor x quantizer x encoder
// grid, registered under the codec name
//
//   composed:<predictor>+<quantizer>+<encoder>
//
// e.g. "composed:lorenzo1+linear-recip+huffman-lz" (the SZ2-equivalent
// Lorenzo path) or "composed:interp-cubic+log+raw". Blobs are
// self-describing: the standard BlobHeader carries the composed codec name
// and each chunk payload repeats the component triple, so decompress_any()
// reconstructs a Field from the blob alone and a forged or mismatched
// component id is detected as CorruptStream before any payload is touched.
//
// The compressor(name) registry materializes composed configurations on
// demand — any of the grid's combinations is sweepable by name through
// advise_compression and the bench harness without prior registration.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "compressors/components.h"
#include "compressors/compressor.h"

namespace eblcio {

struct ComposedConfig {
  PredictorId predictor = PredictorId::kLorenzo1;
  QuantizerId quantizer = QuantizerId::kLinearRecip;
  EncoderId encoder = EncoderId::kHuffmanLz;

  friend bool operator==(const ComposedConfig&,
                         const ComposedConfig&) = default;
};

// "composed:<pred>+<quant>+<enc>" for the triple.
std::string composed_codec_name(const ComposedConfig& config);

// Inverse of composed_codec_name; nullopt when `name` is not a well-formed
// composed codec name (wrong prefix, unknown component, wrong arity).
std::optional<ComposedConfig> parse_composed_codec_name(
    const std::string& name);

// The full grid, predictor-major — kNumPredictors * kNumQuantizers *
// kNumEncoders configurations.
std::vector<ComposedConfig> all_composed_configs();

class ComposedCompressor : public Compressor {
 public:
  explicit ComposedCompressor(const ComposedConfig& config);

  std::string name() const override { return name_; }
  CompressorCaps caps() const override;
  Bytes compress(const Field& field, const CompressOptions& opt) override;
  Field decompress(std::span<const std::byte> blob, int threads) override;

 private:
  ComposedConfig config_;
  std::string name_;
};

}  // namespace eblcio
