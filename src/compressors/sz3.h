// SZ3-class interpolation-based error-bounded lossy compressor.
//
// Uses the multi-level dynamic spline interpolation predictor
// (interp_core.h) with a flat per-level error bound, followed by the
// Huffman + lossless backend — the SZ3 pipeline described in Sec. II-B of
// the paper. Compared with SZ2 it stores no regression coefficients, which
// is what buys its higher ratios at loose bounds.
//
// Parallel mode: slab domain decomposition, parallel in both directions —
// SZ3 is one of the two strong scalers in the paper's Fig. 10.
#pragma once

#include "compressors/compressor.h"

namespace eblcio {

class Sz3Compressor : public Compressor {
 public:
  std::string name() const override { return "SZ3"; }
  CompressorCaps caps() const override {
    CompressorCaps c;
    c.parallel_dims_mask = 0xF;
    c.parallel_decompress = true;
    return c;
  }

  Bytes compress(const Field& field, const CompressOptions& opt) override;
  Field decompress(std::span<const std::byte> blob, int threads) override;
};

}  // namespace eblcio
