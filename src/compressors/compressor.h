// Uniform compressor API and registry — the role LibPressio plays in the
// paper's harness (Sec. IV-A): every codec, lossy or lossless, is driven
// through this one interface.
//
// Compressed blobs are self-describing: a common header records the codec
// id, dtype, dimensions and the error bound actually applied, so
// `decompress_any` can reconstruct a Field from a blob alone.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/field.h"

namespace eblcio {

class Executor;

// Error-bound interpretation. The paper uses value-range relative bounds
// throughout (its footnote 1); absolute bounds are provided for
// completeness, and lossless codecs ignore the bound.
enum class BoundMode : std::uint8_t {
  kValueRangeRel = 0,  // |x - x̂| <= eb * (max D - min D)
  kAbsolute = 1,       // |x - x̂| <= eb
  kLossless = 2,       // exact reconstruction
};

struct CompressOptions {
  BoundMode mode = BoundMode::kValueRangeRel;
  double error_bound = 1e-3;
  // 1 = serial; >1 = OpenMP-style parallel operation. Codecs honour this
  // with the same asymmetries the reference implementations have (e.g. ZFP
  // parallelizes compression only; see each codec's header).
  int threads = 1;
  // Executor the parallel fan-out runs on (null = Executor::global()).
  // Tests and NUMA-aware callers use this to pin the slab tasks onto a
  // pool with an explicit pod layout.
  Executor* executor = nullptr;
};

// Capabilities, mirroring the restrictions the paper notes in Sec. IV-C
// ("QoZ is not capable of compressing 1D data, and the OpenMP version of
// SZ2 is not capable of compressing 1D or 4D data").
struct CompressorCaps {
  bool lossless = false;
  int min_dims = 1;
  int max_dims = 4;
  // Dimensionalities the *parallel* mode supports (0 bit = unsupported).
  // Bit d-1 set => d-dimensional parallel compression supported.
  unsigned parallel_dims_mask = 0xF;
  // Whether decompression can use multiple threads.
  bool parallel_decompress = true;
};

class Compressor {
 public:
  virtual ~Compressor() = default;

  // Canonical codec name ("SZ2", "ZFP", ...).
  virtual std::string name() const = 0;
  virtual CompressorCaps caps() const = 0;

  // Compresses `field` into a self-describing blob. Throws Unsupported for
  // dimensionality/mode combinations the codec cannot handle.
  virtual Bytes compress(const Field& field, const CompressOptions& opt) = 0;

  // Reconstructs a field from a blob produced by this codec's compress().
  virtual Field decompress(std::span<const std::byte> blob,
                           int threads = 1) = 0;

  // True if the codec can compress this field with these options.
  bool supports(const Field& field, const CompressOptions& opt) const;
};

// --- Blob framing shared by all codecs -----------------------------------

struct BlobHeader {
  std::string codec;
  DType dtype = DType::kFloat32;
  std::vector<std::size_t> dims;
  // Absolute error bound applied (0 for lossless), plus the requested
  // bound mode/value for bookkeeping.
  double abs_error_bound = 0.0;
  BoundMode requested_mode = BoundMode::kValueRangeRel;
  double requested_bound = 0.0;

  void encode(Bytes& out) const;
  static BlobHeader decode(ByteReader& r);

  std::size_t num_elements() const {
    std::size_t n = 1;
    for (auto d : dims) n *= d;
    return n;
  }
};

// Converts the requested bound to an absolute bound for `field`.
double absolute_bound_for(const Field& field, const CompressOptions& opt);

// --- Registry --------------------------------------------------------------

// Looks up a codec by (case-insensitive) name. Throws InvalidArgument for
// unknown codecs. The returned reference is to a process-wide singleton;
// codecs are stateless across calls.
Compressor& compressor(const std::string& name);

// Name lists for sweeps: the paper's five EBLCs, and the Fig. 1 lossless
// baselines.
const std::vector<std::string>& eblc_names();      // SZ2 SZ3 ZFP QoZ SZx
const std::vector<std::string>& lossless_names();  // zstd blosc fpzip fpc
std::vector<std::string> all_compressor_names();

// Decodes the header of any blob and dispatches to the producing codec.
Field decompress_any(std::span<const std::byte> blob, int threads = 1);

// Reads just the header (for inspecting blobs without decompressing).
BlobHeader peek_header(std::span<const std::byte> blob);

}  // namespace eblcio
