#include "compressors/lossless_zl.h"

#include "codec/lz77.h"
#include "compressors/lossless_common.h"

namespace eblcio {

Bytes ZlCompressor::compress(const Field& field, const CompressOptions& opt) {
  Bytes out;
  lossless_header(name(), field, opt).encode(out);
  Bytes payload = lz_compress(field.bytes());
  append_bytes(out, payload);
  return out;
}

Field ZlCompressor::decompress(std::span<const std::byte> blob,
                               int /*threads*/) {
  ByteReader r(blob);
  const BlobHeader header = BlobHeader::decode(r);
  const Bytes raw = lz_decompress(r.remaining());
  return field_from_bytes(header, raw);
}

}  // namespace eblcio
