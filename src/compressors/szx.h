// SZx-class ultrafast error-bounded lossy compressor.
//
// Mirrors SZx's design (Yu et al., HPDC'22): fixed-size 1D blocks of 128
// values, constant-block detection, and per-block leading-bit analysis that
// stores each value as a truncated fixed-point offset from the block
// minimum. One pass, no entropy coding — very fast, moderate ratios, which
// is exactly the trade-off the paper measures (lowest energy, lowest CR).
//
// Parallel mode: fully data-parallel in both directions via slab chunking
// (blocks are independent), matching SZx's strong OpenMP scaling in Fig. 10.
#pragma once

#include "compressors/compressor.h"

namespace eblcio {

class SzxCompressor : public Compressor {
 public:
  std::string name() const override { return "SZx"; }
  CompressorCaps caps() const override {
    CompressorCaps c;
    c.parallel_dims_mask = 0xF;
    c.parallel_decompress = true;
    return c;
  }

  Bytes compress(const Field& field, const CompressOptions& opt) override;
  Field decompress(std::span<const std::byte> blob, int threads) override;
};

}  // namespace eblcio
