// Deflate/Zstd-class general-purpose lossless baseline ("zstd" in Fig. 1).
//
// Runs the library's LZ77 + Huffman codec directly over the field's raw
// IEEE bytes. Like real zstd on floating-point scientific data, it finds
// little byte-level redundancy — the paper's Fig. 1 point.
#pragma once

#include "compressors/compressor.h"

namespace eblcio {

class ZlCompressor : public Compressor {
 public:
  std::string name() const override { return "zstd"; }
  CompressorCaps caps() const override {
    CompressorCaps c;
    c.lossless = true;
    return c;
  }

  Bytes compress(const Field& field, const CompressOptions& opt) override;
  Field decompress(std::span<const std::byte> blob, int threads) override;
};

}  // namespace eblcio
