// Domain-decomposition parallelism for compressors.
//
// The OpenMP modes of SZ3/QoZ/SZx (and our fallback for others) split the
// field into contiguous slabs along its slowest-varying dimension, compress
// each slab independently with the codec's serial kernel, and concatenate
// the per-slab payloads behind a chunk table. Decompression parallelizes
// the same way. This mirrors how the reference implementations parallelize
// (block/chunk independence), including the small compression-ratio loss
// from per-chunk entropy tables.
#pragma once

#include <functional>
#include <vector>

#include "common/bytes.h"
#include "common/field.h"
#include "compressors/compressor.h"

namespace eblcio {

// Codec kernels operate on header+payload; the chunk container owns the
// framing. The header passed to a kernel carries the dims of the (sub)field
// it must handle and the absolute error bound for the *whole* field.
using PayloadCompressFn = std::function<Bytes(
    const Field& field, const BlobHeader& header, const CompressOptions&)>;
using PayloadDecompressFn = std::function<Field(
    const BlobHeader& header, std::span<const std::byte> payload)>;

// Payload layout tags written immediately after the BlobHeader.
inline constexpr std::uint8_t kLayoutSingle = 0;
inline constexpr std::uint8_t kLayoutChunked = 1;

// Splits `field` into at most `nchunks` slabs along dimension 0 (each slab
// keeps full extent in the remaining dimensions). Returns fewer chunks when
// dim0 is too small to split. Row distribution is deterministic so the
// decompressor can recompute slab shapes.
std::vector<Field> split_slabs(const Field& field, int nchunks);

// Rows assigned to slab `c` of `nchunks` when splitting extent `d0`.
std::size_t slab_rows(std::size_t d0, int nchunks, int c);

// Reassembles slabs split by split_slabs into one field shaped `dims`.
Field merge_slabs(const std::vector<Field>& slabs,
                  const std::vector<std::size_t>& dims,
                  const std::string& name);

// Compresses with slab parallelism: runs `kernel` on each slab as tasks on
// the shared executor (at most opt.threads concurrent slab tasks). Falls
// back to a single chunk when opt.threads <= 1 or the field cannot be
// split.
Bytes compress_chunked(const BlobHeader& header, const Field& field,
                       const CompressOptions& opt,
                       const PayloadCompressFn& kernel);

// Decompresses blobs produced by compress_chunked (either layout).
Field decompress_chunked(std::span<const std::byte> blob, int threads,
                         const PayloadDecompressFn& kernel);

}  // namespace eblcio
