// ZFP-class transform-based error-bounded compressor (fixed-accuracy mode).
//
// Faithful re-implementation of the published scheme (Lindstrom, TVCG'14):
//  * data partitioned into 4^d blocks (d = 1..3; 4D fields are handled as a
//    stack of 3D slices along their slowest dimension, the standard way to
//    apply ZFP to field-stacked data like S3D),
//  * block-floating-point conversion to 62-bit fixed point against the
//    block's common exponent,
//  * the ZFP non-orthogonal lifted transform applied per dimension,
//  * coefficients reordered by total degree and mapped to negabinary,
//  * group-tested embedded bit-plane coding, planes truncated at the
//    precision implied by the absolute tolerance (zfp's fixed-accuracy
//    `precision = emax - minexp + 2(d+1)` rule).
//
// Parallel mode mirrors zfp 1.0's OpenMP execution policy: *compression
// only* is parallel (independent block ranges into separate byte-aligned
// sub-streams); decompression is always serial. This asymmetry is what
// makes ZFP's OpenMP energy curve flat in the paper's Fig. 10.
#pragma once

#include "compressors/compressor.h"

namespace eblcio {

class ZfpCompressor : public Compressor {
 public:
  std::string name() const override { return "ZFP"; }
  CompressorCaps caps() const override {
    CompressorCaps c;
    c.parallel_dims_mask = 0xF;
    c.parallel_decompress = false;  // zfp OpenMP: compression only
    return c;
  }

  Bytes compress(const Field& field, const CompressOptions& opt) override;
  Field decompress(std::span<const std::byte> blob, int threads) override;
};

}  // namespace eblcio
