#include "compressors/lossless_fpc.h"

#include <cstring>
#include <vector>

#include "compressors/lossless_common.h"

namespace eblcio {
namespace {

// Table sizes follow the original paper's defaults (log2 size 16).
constexpr std::size_t kTableBits = 16;
constexpr std::size_t kTableSize = 1u << kTableBits;

struct FpcState {
  std::vector<std::uint64_t> fcm = std::vector<std::uint64_t>(kTableSize, 0);
  std::vector<std::uint64_t> dfcm = std::vector<std::uint64_t>(kTableSize, 0);
  std::uint64_t fcm_hash = 0;
  std::uint64_t dfcm_hash = 0;
  std::uint64_t last = 0;

  std::uint64_t predict_fcm() const { return fcm[fcm_hash]; }
  std::uint64_t predict_dfcm() const { return dfcm[dfcm_hash] + last; }

  void update(std::uint64_t value) {
    fcm[fcm_hash] = value;
    fcm_hash = ((fcm_hash << 6) ^ (value >> 48)) & (kTableSize - 1);
    const std::uint64_t delta = value - last;
    dfcm[dfcm_hash] = delta;
    dfcm_hash = ((dfcm_hash << 2) ^ (delta >> 40)) & (kTableSize - 1);
    last = value;
  }
};

int leading_zero_bytes(std::uint64_t v) {
  int n = 0;
  for (int b = 7; b >= 0; --b) {
    if ((v >> (8 * b)) & 0xffu) break;
    ++n;
  }
  return n;
}

// FPC packs one header byte per pair of values: for each value a selector
// bit (FCM vs DFCM) and a 3-bit leading-zero-byte count.
Bytes fpc_compress_words(std::span<const std::byte> raw) {
  const std::size_t nwords = (raw.size() + 7) / 8;
  std::vector<std::uint64_t> words(nwords, 0);
  std::memcpy(words.data(), raw.data(), raw.size());

  FpcState st;
  Bytes headers, payload;
  headers.reserve((nwords + 1) / 2);
  payload.reserve(raw.size() / 2);

  std::uint8_t header = 0;
  for (std::size_t i = 0; i < nwords; ++i) {
    const std::uint64_t v = words[i];
    const std::uint64_t pf = st.predict_fcm();
    const std::uint64_t pd = st.predict_dfcm();
    const std::uint64_t xf = v ^ pf;
    const std::uint64_t xd = v ^ pd;
    const bool use_dfcm = xd < xf;
    const std::uint64_t resid = use_dfcm ? xd : xf;
    // 3-bit leading-zero-byte code; FPC cannot encode exactly 4, so 4 is
    // demoted to 3 (one extra stored byte). Counts {0,1,2,3,5,6,7,8} map to
    // codes {0..7}.
    int lzb = leading_zero_bytes(resid);
    if (lzb == 4) lzb = 3;
    const int code3 = lzb <= 3 ? lzb : lzb - 1;
    const auto code = static_cast<std::uint8_t>((use_dfcm ? 8 : 0) | code3);
    const int stored_bytes = 8 - lzb;
    for (int b = 0; b < stored_bytes; ++b)
      payload.push_back(static_cast<std::byte>((resid >> (8 * b)) & 0xffu));

    if (i % 2 == 0) {
      header = code;
    } else {
      headers.push_back(static_cast<std::byte>(header | (code << 4)));
    }
    st.update(v);
  }
  if (nwords % 2 == 1) headers.push_back(static_cast<std::byte>(header));

  Bytes out;
  append_pod<std::uint64_t>(out, raw.size());
  append_pod<std::uint64_t>(out, headers.size());
  append_bytes(out, headers);
  append_pod<std::uint64_t>(out, payload.size());
  append_bytes(out, payload);
  return out;
}

Bytes fpc_decompress_words(std::span<const std::byte> blob) {
  ByteReader r(blob);
  const auto raw_size = r.read_pod<std::uint64_t>();
  const auto headers_size = r.read_pod<std::uint64_t>();
  auto headers = r.read_bytes(headers_size);
  const auto payload_size = r.read_pod<std::uint64_t>();
  auto payload = r.read_bytes(payload_size);

  const std::size_t nwords = (raw_size + 7) / 8;
  std::vector<std::uint64_t> words(nwords, 0);

  FpcState st;
  std::size_t ppos = 0;
  for (std::size_t i = 0; i < nwords; ++i) {
    EBLCIO_CHECK_STREAM(i / 2 < headers.size(), "FPC: header underrun");
    const auto hb = static_cast<std::uint8_t>(headers[i / 2]);
    const std::uint8_t code = (i % 2 == 0) ? (hb & 0x0f) : (hb >> 4);
    const bool use_dfcm = code & 8;
    const int code3 = code & 7;
    const int lzb = code3 <= 3 ? code3 : code3 + 1;
    const int nbytes = 8 - lzb;
    std::uint64_t resid = 0;
    for (int b = 0; b < nbytes; ++b) {
      EBLCIO_CHECK_STREAM(ppos < payload.size(), "FPC: payload underrun");
      resid |= static_cast<std::uint64_t>(
                   static_cast<std::uint8_t>(payload[ppos++]))
               << (8 * b);
    }
    const std::uint64_t pred =
        use_dfcm ? st.predict_dfcm() : st.predict_fcm();
    const std::uint64_t v = pred ^ resid;
    words[i] = v;
    st.update(v);
  }

  Bytes raw(raw_size);
  std::memcpy(raw.data(), words.data(), raw_size);
  return raw;
}

}  // namespace

Bytes FpcCompressor::compress(const Field& field, const CompressOptions& opt) {
  Bytes out;
  lossless_header(name(), field, opt).encode(out);
  Bytes payload = fpc_compress_words(field.bytes());
  append_bytes(out, payload);
  return out;
}

Field FpcCompressor::decompress(std::span<const std::byte> blob,
                                int /*threads*/) {
  ByteReader r(blob);
  const BlobHeader header = BlobHeader::decode(r);
  const Bytes raw = fpc_decompress_words(r.remaining());
  return field_from_bytes(header, raw);
}

}  // namespace eblcio
