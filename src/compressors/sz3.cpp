#include "compressors/sz3.h"

#include "common/error.h"
#include "compressors/chunking.h"
#include "compressors/interp_core.h"

namespace eblcio {
namespace {

Bytes sz3_payload_compress(const Field& field, const BlobHeader& header,
                           const CompressOptions&) {
  InterpConfig config;  // flat bounds, cubic interpolation, auto anchors
  const InterpEncoding enc =
      interp_compress(field, header.abs_error_bound, config);
  return interp_payload_encode(config, enc);
}

Field sz3_payload_decompress(const BlobHeader& header,
                             std::span<const std::byte> payload) {
  const InterpPayload p = interp_payload_decode(payload);
  return interp_decompress(header, p.config, p.codes, p.anchors, p.unpred);
}

}  // namespace

Bytes Sz3Compressor::compress(const Field& field, const CompressOptions& opt) {
  EBLCIO_CHECK_ARG(opt.mode != BoundMode::kLossless,
                   "SZ3 is an error-bounded lossy compressor");
  BlobHeader header;
  header.codec = name();
  header.dtype = field.dtype();
  header.dims = field.shape().dims_vector();
  header.abs_error_bound = absolute_bound_for(field, opt);
  header.requested_mode = opt.mode;
  header.requested_bound = opt.error_bound;
  return compress_chunked(header, field, opt, sz3_payload_compress);
}

Field Sz3Compressor::decompress(std::span<const std::byte> blob,
                                int threads) {
  return decompress_chunked(blob, threads, sz3_payload_decompress);
}

}  // namespace eblcio
