// Shared plumbing for the lossless baselines: header construction and
// rebuilding a typed Field from exact raw bytes.
#pragma once

#include <cstring>

#include "common/error.h"
#include "compressors/compressor.h"

namespace eblcio {

inline BlobHeader lossless_header(const std::string& codec,
                                  const Field& field,
                                  const CompressOptions& opt) {
  BlobHeader h;
  h.codec = codec;
  h.dtype = field.dtype();
  h.dims = field.shape().dims_vector();
  h.abs_error_bound = 0.0;
  h.requested_mode = opt.mode;
  h.requested_bound = 0.0;
  return h;
}

inline Field field_from_bytes(const BlobHeader& header,
                              std::span<const std::byte> raw) {
  const Shape shape{std::span<const std::size_t>(header.dims)};
  const std::size_t expect = shape.num_elements() * dtype_size(header.dtype);
  EBLCIO_CHECK_STREAM(raw.size() == expect, "lossless: payload size mismatch");
  if (header.dtype == DType::kFloat32) {
    NdArray<float> arr(shape);
    std::memcpy(arr.data(), raw.data(), raw.size());
    return Field(header.codec, std::move(arr));
  }
  NdArray<double> arr(shape);
  std::memcpy(arr.data(), raw.data(), raw.size());
  return Field(header.codec, std::move(arr));
}

}  // namespace eblcio
