#include "compressors/lossless_fpzip.h"

#include <array>
#include <bit>
#include <cstring>
#include <vector>

#include "codec/bitstream.h"
#include "codec/huffman.h"
#include "codec/intcodec.h"
#include "compressors/lossless_common.h"

namespace eblcio {
namespace {

// Monotonic integer mapping of IEEE bit patterns: negative floats map below
// positive ones so integer arithmetic approximates value arithmetic.
// Prediction arithmetic wraps mod 2^64 (reversible), so overflow is benign.
std::uint64_t map_bits_f32(float v) {
  std::uint32_t b;
  std::memcpy(&b, &v, 4);
  const std::uint32_t m = (b & 0x80000000u) ? ~b : (b | 0x80000000u);
  return m;
}
float unmap_bits_f32(std::uint64_t m64) {
  const auto m = static_cast<std::uint32_t>(m64);
  const std::uint32_t b = (m & 0x80000000u) ? (m & 0x7fffffffu) : ~m;
  float v;
  std::memcpy(&v, &b, 4);
  return v;
}

std::uint64_t map_bits_f64(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, 8);
  return (b & 0x8000000000000000ull) ? ~b : (b | 0x8000000000000000ull);
}
double unmap_bits_f64(std::uint64_t m) {
  const std::uint64_t b =
      (m & 0x8000000000000000ull) ? (m & 0x7fffffffffffffffull) : ~m;
  double v;
  std::memcpy(&v, &b, 8);
  return v;
}

// 1D-3D Lorenzo in the mapped integer domain; the same inclusion-exclusion
// machinery as SZ2 but over exact integers.
struct IntGrid {
  std::array<std::size_t, 4> dim{1, 1, 1, 1};
  std::array<std::size_t, 4> stride{};

  static IntGrid from_dims(const std::vector<std::size_t>& dims) {
    IntGrid g;
    const int pad = 4 - static_cast<int>(dims.size());
    for (std::size_t i = 0; i < dims.size(); ++i) g.dim[pad + i] = dims[i];
    std::size_t acc = 1;
    for (int d = 3; d >= 0; --d) {
      g.stride[d] = acc;
      acc *= g.dim[d];
    }
    return g;
  }
};

std::uint64_t lorenzo_int(const IntGrid& g, const std::uint64_t* v,
                          const std::array<std::size_t, 4>& c,
                          std::size_t lin) {
  std::uint64_t pred = 0;
  for (unsigned mask = 1; mask < 16; ++mask) {
    bool ok = true;
    std::size_t off = 0;
    for (int d = 0; d < 4; ++d) {
      if (!(mask & (1u << d))) continue;
      if (c[d] == 0 || g.dim[d] == 1) {
        ok = false;
        break;
      }
      off += g.stride[d];
    }
    if (!ok) continue;
    pred += (std::popcount(mask) & 1) ? v[lin - off] : -v[lin - off];
  }
  return pred;
}

// Residual coding: Huffman over the bit-length class, then the raw
// (length-1) low bits of the zigzagged residual.
struct ResidualStream {
  std::vector<std::uint32_t> classes;
  BitWriter bits;
};

void emit_residual(ResidualStream& rs, std::uint64_t resid) {
  const std::uint64_t z = zigzag_encode(static_cast<std::int64_t>(resid));
  const int len = z == 0 ? 0 : std::bit_width(z);
  rs.classes.push_back(static_cast<std::uint32_t>(len));
  if (len > 1) rs.bits.put_bits(z, len - 1);  // top bit implicit
}

std::uint64_t read_residual(std::uint32_t cls, BitReader& br) {
  if (cls == 0) return 0;
  std::uint64_t z = br.get_bits(static_cast<int>(cls) - 1);
  z |= std::uint64_t{1} << (cls - 1);
  return static_cast<std::uint64_t>(zigzag_decode(z));
}

template <typename T>
Bytes fpzip_compress_impl(const Field& field) {
  const NdArray<T>& arr = field.as<T>();
  const IntGrid g = IntGrid::from_dims(arr.shape().dims_vector());
  const std::size_t n = arr.num_elements();

  std::vector<std::uint64_t> mapped(n);
  for (std::size_t i = 0; i < n; ++i) {
    if constexpr (sizeof(T) == 4)
      mapped[i] = map_bits_f32(arr[i]);
    else
      mapped[i] = map_bits_f64(arr[i]);
  }

  ResidualStream rs;
  rs.classes.reserve(n);
  std::array<std::size_t, 4> c{};
  std::size_t lin = 0;
  for (c[0] = 0; c[0] < g.dim[0]; ++c[0])
    for (c[1] = 0; c[1] < g.dim[1]; ++c[1])
      for (c[2] = 0; c[2] < g.dim[2]; ++c[2])
        for (c[3] = 0; c[3] < g.dim[3]; ++c[3], ++lin)
          emit_residual(rs, mapped[lin] - lorenzo_int(g, mapped.data(), c,
                                                      lin));

  Bytes out;
  Bytes class_blob = huffman_encode(rs.classes, 65);
  append_pod<std::uint64_t>(out, class_blob.size());
  append_bytes(out, class_blob);
  Bytes bits = rs.bits.take();
  append_pod<std::uint64_t>(out, bits.size());
  append_bytes(out, bits);
  return out;
}

template <typename T>
Field fpzip_decompress_impl(const BlobHeader& header,
                            std::span<const std::byte> payload) {
  ByteReader r(payload);
  const auto class_size = r.read_pod<std::uint64_t>();
  const auto classes = huffman_decode(r.read_bytes(class_size));
  const auto bits_size = r.read_pod<std::uint64_t>();
  BitReader br(r.read_bytes(bits_size));

  const IntGrid g = IntGrid::from_dims(header.dims);
  const std::size_t n = header.num_elements();
  EBLCIO_CHECK_STREAM(classes.size() == n, "fpzip: class count mismatch");

  std::vector<std::uint64_t> mapped(n);
  std::array<std::size_t, 4> c{};
  std::size_t lin = 0;
  for (c[0] = 0; c[0] < g.dim[0]; ++c[0])
    for (c[1] = 0; c[1] < g.dim[1]; ++c[1])
      for (c[2] = 0; c[2] < g.dim[2]; ++c[2])
        for (c[3] = 0; c[3] < g.dim[3]; ++c[3], ++lin) {
          const std::uint64_t resid = read_residual(classes[lin], br);
          mapped[lin] = lorenzo_int(g, mapped.data(), c, lin) + resid;
        }

  const Shape shape{std::span<const std::size_t>(header.dims)};
  NdArray<T> arr(shape);
  for (std::size_t i = 0; i < n; ++i) {
    if constexpr (sizeof(T) == 4)
      arr[i] = unmap_bits_f32(mapped[i]);
    else
      arr[i] = unmap_bits_f64(mapped[i]);
  }
  return Field(header.codec, std::move(arr));
}

}  // namespace

Bytes FpzipLikeCompressor::compress(const Field& field,
                                    const CompressOptions& opt) {
  Bytes out;
  lossless_header(name(), field, opt).encode(out);
  Bytes payload = field.dtype() == DType::kFloat32
                      ? fpzip_compress_impl<float>(field)
                      : fpzip_compress_impl<double>(field);
  append_bytes(out, payload);
  return out;
}

Field FpzipLikeCompressor::decompress(std::span<const std::byte> blob,
                                      int /*threads*/) {
  ByteReader r(blob);
  const BlobHeader header = BlobHeader::decode(r);
  return header.dtype == DType::kFloat32
             ? fpzip_decompress_impl<float>(header, r.remaining())
             : fpzip_decompress_impl<double>(header, r.remaining());
}

}  // namespace eblcio
