// Shared entropy backend for the SZ-family codecs: canonical Huffman over
// the quantization-code stream, optionally followed by the deflate-class
// lossless pass (the "Huffman + Zstd" stage of SZ2/SZ3/QoZ). Emits whichever
// of the two encodings is smaller, with a tag byte.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "codec/huffman.h"
#include "codec/lz77.h"
#include "common/buffer_pool.h"
#include "common/bytes.h"
#include "common/error.h"

namespace eblcio {

inline constexpr std::uint8_t kBackendHuffman = 0;
inline constexpr std::uint8_t kBackendHuffmanLz = 1;

// Note on the LZ stage cost: LZ over the Huffman blob is several times
// the Huffman pass itself and its result is discarded whenever Huffman
// alone is smaller. Sampling-based prescreens were tried and rejected —
// any fixed sample can misjudge a stream whose compressibility lies
// outside the sampled windows, and the emitted branch (hence the blob)
// must not depend on a heuristic. Both stages always run, exactly as the
// reference SZ pipeline does.
inline Bytes encode_code_stream(const std::vector<std::uint32_t>& codes,
                                std::uint32_t alphabet_size) {
  Bytes huff = huffman_encode(codes, alphabet_size);
  Bytes lz = lz_compress(huff);
  const std::size_t kept = std::min(lz.size(), huff.size());
  Bytes out = BufferPool::global().acquire(9 + kept);
  if (lz.size() < huff.size()) {
    append_pod<std::uint8_t>(out, kBackendHuffmanLz);
    append_pod<std::uint64_t>(out, lz.size());
    append_bytes(out, lz);
  } else {
    append_pod<std::uint8_t>(out, kBackendHuffman);
    append_pod<std::uint64_t>(out, huff.size());
    append_bytes(out, huff);
  }
  // Both stage buffers are dead once the winner is framed; recycling them
  // keeps steady-state zone compression allocation-free.
  BufferPool::global().release(std::move(huff));
  BufferPool::global().release(std::move(lz));
  return out;
}

inline std::vector<std::uint32_t> decode_code_stream(ByteReader& r) {
  const auto backend = r.read_pod<std::uint8_t>();
  const auto size = r.read_pod<std::uint64_t>();
  auto blob = r.read_bytes(size);
  if (backend == kBackendHuffmanLz) {
    const Bytes huff = lz_decompress(blob);
    return huffman_decode(huff);
  }
  EBLCIO_CHECK_STREAM(backend == kBackendHuffman, "bad backend tag");
  return huffman_decode(blob);
}

inline void append_sized(Bytes& out, const Bytes& b) {
  append_pod<std::uint64_t>(out, b.size());
  append_bytes(out, b);
}

inline std::span<const std::byte> read_sized(ByteReader& r) {
  const auto size = r.read_pod<std::uint64_t>();
  return r.read_bytes(size);
}

}  // namespace eblcio
