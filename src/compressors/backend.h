// Shared entropy backend for the SZ-family codecs: canonical Huffman over
// the quantization-code stream, optionally followed by the deflate-class
// lossless pass (the "Huffman + Zstd" stage of SZ2/SZ3/QoZ). Emits whichever
// of the two encodings is smaller, with a tag byte.
//
// The composed-codec framework widens the menu: encode_codes_with() emits
// any EncoderId behind the same [tag][u64 size][payload] framing, and
// decode_code_stream() decodes every tag — so legacy SZ2/SZ3 blobs (tags 0
// and 1) and composed blobs share one decoder.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "codec/huffman.h"
#include "codec/lz77.h"
#include "common/buffer_pool.h"
#include "common/bytes.h"
#include "common/error.h"
#include "compressors/components.h"

namespace eblcio {

// Wire tags for the code-stream blob. 0 and 1 predate the composed
// framework and are frozen by the reference blobs; never renumber.
inline constexpr std::uint8_t kBackendHuffman = 0;
inline constexpr std::uint8_t kBackendHuffmanLz = 1;
inline constexpr std::uint8_t kBackendLzRaw = 2;    // LZ77 over packed codes
inline constexpr std::uint8_t kBackendRaw = 3;      // width-packed codes
// Same bitstream as kBackendHuffman but decoded with the per-bit canonical
// referee instead of the LUT walker — the composed framework's way of
// keeping the reference decoder production-reachable.
inline constexpr std::uint8_t kBackendHuffmanCanonical = 4;

// Byte width of a packed code for `alphabet_size` symbols.
inline std::size_t raw_code_width(std::uint32_t alphabet_size) {
  if (alphabet_size <= (1u << 8)) return 1;
  if (alphabet_size <= (1u << 16)) return 2;
  return 4;
}

// Width-packed little-endian code stream: [u32 alphabet][u64 count][codes].
// The entropy-free baseline of the encoder menu (and the input to the
// LZ-only encoder).
inline Bytes pack_codes_raw(std::span<const std::uint32_t> codes,
                            std::uint32_t alphabet_size) {
  const std::size_t width = raw_code_width(alphabet_size);
  Bytes out = BufferPool::global().acquire(12 + width * codes.size());
  append_pod<std::uint32_t>(out, alphabet_size);
  append_pod<std::uint64_t>(out, codes.size());
  for (const std::uint32_t c : codes)
    for (std::size_t b = 0; b < width; ++b)
      out.push_back(static_cast<std::byte>((c >> (8 * b)) & 0xFFu));
  return out;
}

inline std::vector<std::uint32_t> unpack_codes_raw(
    std::span<const std::byte> blob) {
  ByteReader r(blob);
  const auto alphabet = r.read_pod<std::uint32_t>();
  const auto count = r.read_pod<std::uint64_t>();
  EBLCIO_CHECK_STREAM(alphabet >= 1, "raw codes: bad alphabet");
  const std::size_t width = raw_code_width(alphabet);
  const auto payload = r.read_bytes(count * width);
  std::vector<std::uint32_t> codes(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t c = 0;
    for (std::size_t b = 0; b < width; ++b)
      c |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(payload[i * width + b]))
           << (8 * b);
    EBLCIO_CHECK_STREAM(c < alphabet, "raw codes: symbol out of alphabet");
    codes[i] = c;
  }
  return codes;
}

// Note on the LZ stage cost: LZ over the Huffman blob is several times
// the Huffman pass itself and its result is discarded whenever Huffman
// alone is smaller. Sampling-based prescreens were tried and rejected —
// any fixed sample can misjudge a stream whose compressibility lies
// outside the sampled windows, and the emitted branch (hence the blob)
// must not depend on a heuristic. Both stages always run, exactly as the
// reference SZ pipeline does.
inline Bytes encode_code_stream(const std::vector<std::uint32_t>& codes,
                                std::uint32_t alphabet_size) {
  Bytes huff = huffman_encode(codes, alphabet_size);
  Bytes lz = lz_compress(huff);
  const std::size_t kept = std::min(lz.size(), huff.size());
  Bytes out = BufferPool::global().acquire(9 + kept);
  if (lz.size() < huff.size()) {
    append_pod<std::uint8_t>(out, kBackendHuffmanLz);
    append_pod<std::uint64_t>(out, lz.size());
    append_bytes(out, lz);
  } else {
    append_pod<std::uint8_t>(out, kBackendHuffman);
    append_pod<std::uint64_t>(out, huff.size());
    append_bytes(out, huff);
  }
  // Both stage buffers are dead once the winner is framed; recycling them
  // keeps steady-state zone compression allocation-free.
  BufferPool::global().release(std::move(huff));
  BufferPool::global().release(std::move(lz));
  return out;
}

// Frames `payload` behind its backend tag: [tag][u64 size][payload].
inline Bytes frame_code_blob(std::uint8_t tag, const Bytes& payload) {
  Bytes out = BufferPool::global().acquire(9 + payload.size());
  append_pod<std::uint8_t>(out, tag);
  append_pod<std::uint64_t>(out, payload.size());
  append_bytes(out, payload);
  return out;
}

// Encodes the code stream with a *specific* encoder component (the
// composed framework's encoder axis). kHuffmanLz delegates to
// encode_code_stream so composed:..+huffman-lz blobs carry the identical
// smaller-of-two stage the legacy codecs emit.
inline Bytes encode_codes_with(EncoderId enc,
                               const std::vector<std::uint32_t>& codes,
                               std::uint32_t alphabet_size) {
  switch (enc) {
    case EncoderId::kHuffman:
    case EncoderId::kHuffmanLut: {
      Bytes huff = huffman_encode(codes, alphabet_size);
      Bytes out = frame_code_blob(enc == EncoderId::kHuffman
                                      ? kBackendHuffmanCanonical
                                      : kBackendHuffman,
                                  huff);
      BufferPool::global().release(std::move(huff));
      return out;
    }
    case EncoderId::kHuffmanLz:
      return encode_code_stream(codes, alphabet_size);
    case EncoderId::kLz: {
      Bytes raw = pack_codes_raw(codes, alphabet_size);
      Bytes lz = lz_compress(raw);
      Bytes out = frame_code_blob(kBackendLzRaw, lz);
      BufferPool::global().release(std::move(raw));
      BufferPool::global().release(std::move(lz));
      return out;
    }
    case EncoderId::kRaw: {
      Bytes raw = pack_codes_raw(codes, alphabet_size);
      Bytes out = frame_code_blob(kBackendRaw, raw);
      BufferPool::global().release(std::move(raw));
      return out;
    }
  }
  throw InvalidArgument("bad encoder id");
}

inline std::vector<std::uint32_t> decode_code_stream(ByteReader& r) {
  const auto backend = r.read_pod<std::uint8_t>();
  const auto size = r.read_pod<std::uint64_t>();
  auto blob = r.read_bytes(size);
  switch (backend) {
    case kBackendHuffman:
      return huffman_decode(blob);
    case kBackendHuffmanLz: {
      const Bytes huff = lz_decompress(blob);
      return huffman_decode(huff);
    }
    case kBackendLzRaw: {
      const Bytes raw = lz_decompress(blob);
      return unpack_codes_raw(raw);
    }
    case kBackendRaw:
      return unpack_codes_raw(blob);
    case kBackendHuffmanCanonical:
      return huffman_decode_reference(blob);
    default:
      throw CorruptStream("bad backend tag");
  }
}

inline void append_sized(Bytes& out, const Bytes& b) {
  append_pod<std::uint64_t>(out, b.size());
  append_bytes(out, b);
}

inline std::span<const std::byte> read_sized(ByteReader& r) {
  const auto size = r.read_pod<std::uint64_t>();
  return r.read_bytes(size);
}

}  // namespace eblcio
