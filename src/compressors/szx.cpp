#include "compressors/szx.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>

#include "codec/bitstream.h"
#include "common/error.h"
#include "compressors/chunking.h"

namespace eblcio {
namespace {

constexpr std::size_t kBlock = 128;

template <typename T>
Bytes szx_payload_compress(const Field& field, const BlobHeader& header,
                           const CompressOptions&) {
  const NdArray<T>& arr = field.as<T>();
  const T* x = arr.data();
  const std::size_t n = arr.num_elements();
  const double eb = header.abs_error_bound;
  const double eb2 = 2.0 * eb;
  const std::size_t nblocks = (n + kBlock - 1) / kBlock;

  Bytes flags;                 // 1 byte per block: 0 = coded, 1 = constant,
                               // 2 = raw
  Bytes side;                  // per-block metadata
  BitWriter payload;

  std::array<std::uint64_t, kBlock> qbuf;
  auto emit_raw = [&payload](const T* vals, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      if constexpr (sizeof(T) == 4) {
        std::uint32_t bits;
        std::memcpy(&bits, &vals[i], 4);
        payload.put_bits(bits, 32);
      } else {
        std::uint64_t bits;
        std::memcpy(&bits, &vals[i], 8);
        payload.put_bits(bits, 64);
      }
    }
  };

  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t lo = b * kBlock;
    const std::size_t hi = std::min(n, lo + kBlock);
    double bmin = x[lo], bmax = x[lo];
    for (std::size_t i = lo + 1; i < hi; ++i) {
      bmin = std::min(bmin, static_cast<double>(x[i]));
      bmax = std::max(bmax, static_cast<double>(x[i]));
    }
    const double range = bmax - bmin;
    if (range <= eb2) {
      // Constant block — but only if the midpoint, *as stored in T*, still
      // satisfies the bound for the extremes (the cast can push it out at
      // bounds near T's precision).
      const double mid = 0.5 * (bmin + bmax);
      const auto mid_t = static_cast<double>(static_cast<T>(mid));
      if (bmax - mid_t <= eb && mid_t - bmin <= eb) {
        flags.push_back(static_cast<std::byte>(1));
        append_pod<double>(side, mid);
        continue;
      }
    }
    // Bits needed so that q_max = round(range / eb2) fits.
    int width = 0;
    if (eb2 > 0.0) {
      const double qmax = range / eb2 + 1.0;
      width = std::bit_width(static_cast<std::uint64_t>(qmax) + 1);
    }
    const int raw_bits = static_cast<int>(sizeof(T)) * 8;
    bool codable = eb2 > 0.0 && width < raw_bits;
    if (codable) {
      // Verify every reconstruction against the bound after the T cast;
      // one failure demotes the whole block to raw storage.
      for (std::size_t i = lo; i < hi && codable; ++i) {
        const double xv = static_cast<double>(x[i]);
        const auto q = static_cast<std::uint64_t>((xv - bmin) / eb2 + 0.5);
        const auto y =
            static_cast<double>(static_cast<T>(bmin + static_cast<double>(q) * eb2));
        if (std::fabs(y - xv) > eb) codable = false;
        qbuf[i - lo] = q;
      }
    }
    if (!codable) {
      // Bound tighter than the type's precision: store IEEE bits verbatim.
      flags.push_back(static_cast<std::byte>(2));
      emit_raw(x + lo, hi - lo);
      continue;
    }
    flags.push_back(static_cast<std::byte>(0));
    append_pod<double>(side, bmin);
    append_pod<std::uint8_t>(side, static_cast<std::uint8_t>(width));
    for (std::size_t i = lo; i < hi; ++i)
      payload.put_bits(qbuf[i - lo], width);
  }

  Bytes out;
  append_pod<std::uint64_t>(out, side.size());
  append_bytes(out, flags);
  append_bytes(out, side);
  Bytes bits = payload.take();
  append_pod<std::uint64_t>(out, bits.size());
  append_bytes(out, bits);
  return out;
}

template <typename T>
Field szx_payload_decompress(const BlobHeader& header,
                             std::span<const std::byte> payload) {
  const std::size_t n = header.num_elements();
  const double eb2 = 2.0 * header.abs_error_bound;
  const std::size_t nblocks = (n + kBlock - 1) / kBlock;

  ByteReader r(payload);
  const auto side_size = r.read_pod<std::uint64_t>();
  auto flags = r.read_bytes(nblocks);
  ByteReader side(r.read_bytes(side_size));
  const auto bits_size = r.read_pod<std::uint64_t>();
  BitReader bits(r.read_bytes(bits_size));

  NdArray<T> arr(Shape{std::span<const std::size_t>(header.dims)});
  T* y = arr.data();
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t lo = b * kBlock;
    const std::size_t hi = std::min(n, lo + kBlock);
    switch (static_cast<std::uint8_t>(flags[b])) {
      case 1: {
        const T v = static_cast<T>(side.read_pod<double>());
        for (std::size_t i = lo; i < hi; ++i) y[i] = v;
        break;
      }
      case 2: {
        for (std::size_t i = lo; i < hi; ++i) {
          if constexpr (sizeof(T) == 4) {
            const auto raw = static_cast<std::uint32_t>(bits.get_bits(32));
            std::memcpy(&y[i], &raw, 4);
          } else {
            const std::uint64_t raw = bits.get_bits(64);
            std::memcpy(&y[i], &raw, 8);
          }
        }
        break;
      }
      case 0: {
        const double bmin = side.read_pod<double>();
        const int width = side.read_pod<std::uint8_t>();
        for (std::size_t i = lo; i < hi; ++i) {
          const std::uint64_t q = bits.get_bits(width);
          y[i] = static_cast<T>(bmin + static_cast<double>(q) * eb2);
        }
        break;
      }
      default:
        throw CorruptStream("SZx: bad block flag");
    }
  }
  return Field("SZx", std::move(arr));
}

Bytes payload_compress(const Field& field, const BlobHeader& header,
                       const CompressOptions& opt) {
  return field.dtype() == DType::kFloat32
             ? szx_payload_compress<float>(field, header, opt)
             : szx_payload_compress<double>(field, header, opt);
}

Field payload_decompress(const BlobHeader& header,
                         std::span<const std::byte> payload) {
  return header.dtype == DType::kFloat32
             ? szx_payload_decompress<float>(header, payload)
             : szx_payload_decompress<double>(header, payload);
}

}  // namespace

Bytes SzxCompressor::compress(const Field& field, const CompressOptions& opt) {
  EBLCIO_CHECK_ARG(opt.mode != BoundMode::kLossless,
                   "SZx is an error-bounded lossy compressor");
  BlobHeader header;
  header.codec = name();
  header.dtype = field.dtype();
  header.dims = field.shape().dims_vector();
  header.abs_error_bound = absolute_bound_for(field, opt);
  header.requested_mode = opt.mode;
  header.requested_bound = opt.error_bound;
  return compress_chunked(header, field, opt, payload_compress);
}

Field SzxCompressor::decompress(std::span<const std::byte> blob,
                                int threads) {
  return decompress_chunked(blob, threads, payload_decompress);
}

}  // namespace eblcio
