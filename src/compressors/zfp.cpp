#include "compressors/zfp.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <numeric>
#include <vector>

#include "codec/bitstream.h"
#include "codec/intcodec.h"
#include "common/error.h"
#include "parallel/executor.h"

namespace eblcio {
namespace {

// 62-bit fixed point: bit k of the scaled integer has magnitude
// 2^(k - 62 + emax). Two guard bits keep the lifted transform overflow-free.
constexpr int kIntPrec = 64;
constexpr int kScaleBits = 62;
constexpr int kEmaxBits = 12;
constexpr int kEmaxBias = 2048;

// ---------------------------------------------------------------------------
// Lifted transform (the ZFP non-orthogonal transform; matrix in TVCG'14).

// Lifting arithmetic runs on uint64 with explicit wrapping (right shifts
// detour through int64 to stay arithmetic). For in-range blocks — every
// block the block-float scaling produces, per the guard-bit argument
// above — this is bit-identical to plain signed arithmetic; for a forged
// stream whose coefficients escape that range it wraps deterministically
// instead of tripping signed-overflow UB (the round-trip check downstream
// rejects such blocks either way).
inline std::uint64_t sra1(std::uint64_t v) {
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(v) >> 1);
}

void fwd_lift(std::int64_t* p, std::size_t s) {
  std::uint64_t x = static_cast<std::uint64_t>(p[0]);
  std::uint64_t y = static_cast<std::uint64_t>(p[s]);
  std::uint64_t z = static_cast<std::uint64_t>(p[2 * s]);
  std::uint64_t w = static_cast<std::uint64_t>(p[3 * s]);
  x += w; x = sra1(x); w -= x;
  z += y; z = sra1(z); y -= z;
  x += z; x = sra1(x); z -= x;
  w += y; w = sra1(w); y -= w;
  w += sra1(y); y -= sra1(w);
  p[0] = static_cast<std::int64_t>(x);
  p[s] = static_cast<std::int64_t>(y);
  p[2 * s] = static_cast<std::int64_t>(z);
  p[3 * s] = static_cast<std::int64_t>(w);
}

void inv_lift(std::int64_t* p, std::size_t s) {
  std::uint64_t x = static_cast<std::uint64_t>(p[0]);
  std::uint64_t y = static_cast<std::uint64_t>(p[s]);
  std::uint64_t z = static_cast<std::uint64_t>(p[2 * s]);
  std::uint64_t w = static_cast<std::uint64_t>(p[3 * s]);
  y += sra1(w); w -= sra1(y);
  y += w; w <<= 1; w -= y;
  z += x; x <<= 1; x -= z;
  y += z; z <<= 1; z -= y;
  w += x; x <<= 1; x -= w;
  p[0] = static_cast<std::int64_t>(x);
  p[s] = static_cast<std::int64_t>(y);
  p[2 * s] = static_cast<std::int64_t>(z);
  p[3 * s] = static_cast<std::int64_t>(w);
}

// Applies the transform along every dimension of a 4^d block.
void fwd_xform(std::int64_t* b, int d) {
  if (d >= 1)
    for (std::size_t z = 0; z < (d >= 3 ? 4u : 1u); ++z)
      for (std::size_t y = 0; y < (d >= 2 ? 4u : 1u); ++y)
        fwd_lift(b + 16 * z + 4 * y, 1);
  if (d >= 2)
    for (std::size_t z = 0; z < (d >= 3 ? 4u : 1u); ++z)
      for (std::size_t x = 0; x < 4; ++x)
        fwd_lift(b + 16 * z + x, 4);
  if (d >= 3)
    for (std::size_t y = 0; y < 4; ++y)
      for (std::size_t x = 0; x < 4; ++x)
        fwd_lift(b + 4 * y + x, 16);
}

void inv_xform(std::int64_t* b, int d) {
  if (d >= 3)
    for (std::size_t y = 0; y < 4; ++y)
      for (std::size_t x = 0; x < 4; ++x)
        inv_lift(b + 4 * y + x, 16);
  if (d >= 2)
    for (std::size_t z = 0; z < (d >= 3 ? 4u : 1u); ++z)
      for (std::size_t x = 0; x < 4; ++x)
        inv_lift(b + 16 * z + x, 4);
  if (d >= 1)
    for (std::size_t z = 0; z < (d >= 3 ? 4u : 1u); ++z)
      for (std::size_t y = 0; y < (d >= 2 ? 4u : 1u); ++y)
        inv_lift(b + 16 * z + 4 * y, 1);
}

// Total-degree coefficient ordering (low-frequency coefficients first).
const std::vector<std::uint16_t>& perm_for(int d) {
  static const std::array<std::vector<std::uint16_t>, 4> kPerms = [] {
    std::array<std::vector<std::uint16_t>, 4> perms;
    for (int d = 1; d <= 3; ++d) {
      const int n = 1 << (2 * d);
      std::vector<std::uint16_t> p(n);
      std::iota(p.begin(), p.end(), 0);
      auto degree = [d](int idx) {
        int s = 0;
        for (int k = 0; k < d; ++k) {
          s += idx & 3;
          idx >>= 2;
        }
        return s;
      };
      std::stable_sort(p.begin(), p.end(), [&](int a, int b) {
        return degree(a) < degree(b);
      });
      perms[d] = std::move(p);
    }
    return perms;
  }();
  return kPerms[d];
}

// zfp's fixed-accuracy precision rule.
int max_precision(int emax, int minexp, int d) {
  const long long p = static_cast<long long>(emax) - minexp + 2 * (d + 1);
  return static_cast<int>(std::clamp<long long>(p, 0, kIntPrec));
}

// ---------------------------------------------------------------------------
// Embedded bit-plane coder (ZFP's group-tested scheme, unlimited bit budget;
// the plane cutoff kmin plays the role of the rate control).

void encode_ints(BitWriter& bw, const std::uint64_t* u, int n, int kmin) {
  int frontier = 0;  // zfp's persistent per-block significance frontier
  for (int k = kIntPrec - 1; k >= kmin; --k) {
    std::uint64_t x = 0;
    for (int i = 0; i < n; ++i)
      x |= ((u[i] >> k) & std::uint64_t{1}) << i;
    // Verbatim bits for coefficients inside the frontier.
    bw.put_bits(x, frontier);
    x = frontier < 64 ? (x >> frontier) : 0;
    // Group-test + unary advance for the remainder.
    int m = frontier;
    while (m < n) {
      const std::uint32_t has = (x != 0);
      bw.put_bit(has);
      if (!has) break;
      while (m < n - 1) {
        const auto b = static_cast<std::uint32_t>(x & 1);
        bw.put_bit(b);
        if (b) break;
        x >>= 1;
        ++m;
      }
      // Consume the 1: explicit, or implicit at the last position (the
      // group test already told the decoder a 1 remains).
      x >>= 1;
      ++m;
    }
    frontier = std::max(frontier, m);
  }
}

void decode_ints(BitReader& br, std::uint64_t* u, int n, int kmin) {
  std::fill(u, u + n, 0);
  int frontier = 0;
  for (int k = kIntPrec - 1; k >= kmin; --k) {
    std::uint64_t x = br.get_bits(frontier);
    int m = frontier;
    while (m < n) {
      if (!br.get_bit()) break;  // group test: no more 1s this plane
      while (m < n - 1) {
        if (br.get_bit()) break;  // unary scan to the next 1
        ++m;
      }
      x |= std::uint64_t{1} << m;  // explicit 1, or implicit at position n-1
      ++m;
    }
    frontier = std::max(frontier, m);
    for (int j = 0; j < n; ++j)
      u[j] |= ((x >> j) & std::uint64_t{1}) << k;
  }
}

// ---------------------------------------------------------------------------
// Geometry: maps a global block index to a gather/scatter region, treating
// 4D fields as a stack of 3D slices.

struct ZfpGeometry {
  int d = 1;                // intrinsic block dimensionality (1..3)
  std::size_t slices = 1;   // leading-dimension slices (4D only)
  std::array<std::size_t, 3> n{1, 1, 1};   // per-slice extent (z, y, x order)
  std::array<std::size_t, 3> bg{1, 1, 1};  // block-grid extent
  std::size_t blocks_per_slice = 1;
  std::size_t total_blocks = 0;
  std::size_t slice_elems = 1;

  static ZfpGeometry from_dims(const std::vector<std::size_t>& dims) {
    ZfpGeometry g;
    std::vector<std::size_t> space = dims;
    if (dims.size() == 4) {
      g.slices = dims[0];
      space.erase(space.begin());
    }
    g.d = static_cast<int>(space.size());
    // Store as (z, y, x) with x fastest; pad missing leading dims with 1.
    for (int i = 0; i < g.d; ++i)
      g.n[3 - g.d + i] = space[i];
    for (int i = 0; i < 3; ++i)
      g.bg[i] = (g.n[i] + 3) / 4;
    // Only the intrinsic dims get blocked; unit dims have one "block" layer.
    g.blocks_per_slice = 1;
    for (int i = 3 - g.d; i < 3; ++i) g.blocks_per_slice *= g.bg[i];
    for (int i = 0; i < 3 - g.d; ++i) g.bg[i] = 1;
    g.slice_elems = g.n[0] * g.n[1] * g.n[2];
    g.total_blocks = g.slices * g.blocks_per_slice;
    return g;
  }
};

// Gathers one 4^d block (clamp-padded at edges) into vals[4^d].
template <typename T>
void gather_block(const ZfpGeometry& g, const T* base, std::size_t block,
                  double* vals) {
  const std::size_t slice = block / g.blocks_per_slice;
  std::size_t b = block % g.blocks_per_slice;
  const T* src = base + slice * g.slice_elems;

  // Block origin in (z, y, x).
  const std::size_t bx = b % g.bg[2];
  b /= g.bg[2];
  const std::size_t by = b % g.bg[1];
  const std::size_t bz = b / g.bg[1];
  const std::size_t oz = bz * 4, oy = by * 4, ox = bx * 4;

  const int nvals_z = g.d >= 3 ? 4 : 1;
  const int nvals_y = g.d >= 2 ? 4 : 1;
  int idx = 0;
  for (int z = 0; z < nvals_z; ++z) {
    const std::size_t cz = std::min(oz + z, g.n[0] - 1);
    for (int y = 0; y < nvals_y; ++y) {
      const std::size_t cy = std::min(oy + y, g.n[1] - 1);
      for (int x = 0; x < 4; ++x) {
        const std::size_t cx = std::min(ox + x, g.n[2] - 1);
        vals[idx++] = static_cast<double>(
            src[(cz * g.n[1] + cy) * g.n[2] + cx]);
      }
    }
  }
}

// Scatters the valid region of a reconstructed block back into the field.
template <typename T>
void scatter_block(const ZfpGeometry& g, T* base, std::size_t block,
                   const double* vals) {
  const std::size_t slice = block / g.blocks_per_slice;
  std::size_t b = block % g.blocks_per_slice;
  T* dst = base + slice * g.slice_elems;

  const std::size_t bx = b % g.bg[2];
  b /= g.bg[2];
  const std::size_t by = b % g.bg[1];
  const std::size_t bz = b / g.bg[1];
  const std::size_t oz = bz * 4, oy = by * 4, ox = bx * 4;

  const int nvals_z = g.d >= 3 ? 4 : 1;
  const int nvals_y = g.d >= 2 ? 4 : 1;
  int idx = 0;
  for (int z = 0; z < nvals_z; ++z) {
    for (int y = 0; y < nvals_y; ++y) {
      for (int x = 0; x < 4; ++x, ++idx) {
        const std::size_t cz = oz + z, cy = oy + y, cx = ox + x;
        if (cz >= g.n[0] || cy >= g.n[1] || cx >= g.n[2]) continue;
        dst[(cz * g.n[1] + cy) * g.n[2] + cx] = static_cast<T>(vals[idx]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Per-block codec.

void encode_block(BitWriter& bw, const double* vals, int d, int minexp) {
  const int n = 1 << (2 * d);
  double amax = 0.0;
  for (int i = 0; i < n; ++i) amax = std::max(amax, std::fabs(vals[i]));

  int emax = 0;
  if (amax > 0.0) std::frexp(amax, &emax);
  const int maxprec = amax > 0.0 ? max_precision(emax, minexp, d) : 0;
  if (maxprec == 0) {
    bw.put_bit(0);  // empty block: all values below the tolerance floor
    return;
  }
  bw.put_bit(1);
  bw.put_bits(static_cast<std::uint64_t>(emax + kEmaxBias), kEmaxBits);

  // Block-floating-point conversion.
  std::array<std::int64_t, 64> iblock;
  const double scale = std::ldexp(1.0, kScaleBits - emax);
  for (int i = 0; i < n; ++i)
    iblock[i] = static_cast<std::int64_t>(vals[i] * scale);

  fwd_xform(iblock.data(), d);

  const auto& perm = perm_for(d);
  std::array<std::uint64_t, 64> ublock;
  for (int i = 0; i < n; ++i)
    ublock[i] = int2uint_negabinary(iblock[perm[i]]);

  encode_ints(bw, ublock.data(), n, kIntPrec - maxprec);
}

void decode_block(BitReader& br, double* vals, int d, int minexp) {
  const int n = 1 << (2 * d);
  if (!br.get_bit()) {
    std::fill(vals, vals + n, 0.0);
    return;
  }
  const int emax =
      static_cast<int>(br.get_bits(kEmaxBits)) - kEmaxBias;
  const int maxprec = max_precision(emax, minexp, d);

  std::array<std::uint64_t, 64> ublock;
  decode_ints(br, ublock.data(), n, kIntPrec - maxprec);

  const auto& perm = perm_for(d);
  std::array<std::int64_t, 64> iblock;
  for (int i = 0; i < n; ++i)
    iblock[perm[i]] = uint2int_negabinary(ublock[i]);

  inv_xform(iblock.data(), d);

  const double scale = std::ldexp(1.0, emax - kScaleBits);
  for (int i = 0; i < n; ++i)
    vals[i] = static_cast<double>(iblock[i]) * scale;
}

int minexp_for(double tolerance) {
  if (tolerance <= 0.0) return -1074;  // full precision
  return static_cast<int>(std::floor(std::log2(tolerance)));
}

// ---------------------------------------------------------------------------

template <typename T>
Bytes zfp_compress_impl(const Field& field, const BlobHeader& header,
                        int threads) {
  const NdArray<T>& arr = field.as<T>();
  const ZfpGeometry g = ZfpGeometry::from_dims(header.dims);
  const int minexp = minexp_for(header.abs_error_bound);
  const T* base = arr.data();

  const int nchunks = std::max(
      1, static_cast<int>(std::min<std::size_t>(threads, g.total_blocks)));
  std::vector<Bytes> streams(nchunks);

  parallel_for(nchunks, nchunks, [&](std::size_t c) {
    const std::size_t lo = g.total_blocks * c / nchunks;
    const std::size_t hi = g.total_blocks * (c + 1) / nchunks;
    BitWriter bw;
    double vals[64];
    for (std::size_t blk = lo; blk < hi; ++blk) {
      gather_block(g, base, blk, vals);
      encode_block(bw, vals, g.d, minexp);
    }
    streams[c] = bw.take();
  });

  Bytes out;
  append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(nchunks));
  for (const Bytes& s : streams)
    append_pod<std::uint64_t>(out, s.size());
  for (const Bytes& s : streams) append_bytes(out, s);
  return out;
}

template <typename T>
Field zfp_decompress_impl(const BlobHeader& header,
                          std::span<const std::byte> payload) {
  const ZfpGeometry g = ZfpGeometry::from_dims(header.dims);
  const int minexp = minexp_for(header.abs_error_bound);

  NdArray<T> arr(Shape{std::span<const std::size_t>(header.dims)});
  T* base = arr.data();

  ByteReader r(payload);
  const auto nchunks = r.read_pod<std::uint32_t>();
  EBLCIO_CHECK_STREAM(nchunks >= 1, "ZFP: empty stream table");
  std::vector<std::uint64_t> sizes(nchunks);
  for (auto& s : sizes) s = r.read_pod<std::uint64_t>();

  // Serial block decode (zfp's OpenMP policy does not cover decompression).
  double vals[64];
  for (std::uint32_t c = 0; c < nchunks; ++c) {
    const std::size_t lo = g.total_blocks * c / nchunks;
    const std::size_t hi = g.total_blocks * (c + 1) / nchunks;
    BitReader br(r.read_bytes(sizes[c]));
    for (std::size_t blk = lo; blk < hi; ++blk) {
      decode_block(br, vals, g.d, minexp);
      scatter_block(g, base, blk, vals);
    }
  }
  return Field("ZFP", std::move(arr));
}

}  // namespace

Bytes ZfpCompressor::compress(const Field& field, const CompressOptions& opt) {
  EBLCIO_CHECK_ARG(opt.mode != BoundMode::kLossless,
                   "ZFP here implements fixed-accuracy (lossy) mode only");
  BlobHeader header;
  header.codec = name();
  header.dtype = field.dtype();
  header.dims = field.shape().dims_vector();
  header.abs_error_bound = absolute_bound_for(field, opt);
  header.requested_mode = opt.mode;
  header.requested_bound = opt.error_bound;

  Bytes out;
  header.encode(out);
  Bytes payload =
      field.dtype() == DType::kFloat32
          ? zfp_compress_impl<float>(field, header, opt.threads)
          : zfp_compress_impl<double>(field, header, opt.threads);
  append_bytes(out, payload);
  return out;
}

Field ZfpCompressor::decompress(std::span<const std::byte> blob,
                                int /*threads*/) {
  ByteReader r(blob);
  const BlobHeader header = BlobHeader::decode(r);
  return header.dtype == DType::kFloat32
             ? zfp_decompress_impl<float>(header, r.remaining())
             : zfp_decompress_impl<double>(header, r.remaining());
}

}  // namespace eblcio
