#include "compressors/block_core.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <type_traits>
#include <vector>

#include "common/buffer_pool.h"
#include "common/error.h"

namespace eblcio {
namespace {

// All fields are processed through a uniform 4D view: leading dimensions of
// extent 1 are prepended, and the Lorenzo inclusion-exclusion masks over
// size-1 dimensions vanish naturally.
struct Geometry {
  std::array<std::size_t, 4> dim{1, 1, 1, 1};
  std::array<std::size_t, 4> stride{};
  std::array<std::size_t, 4> block{1, 1, 1, 1};   // block edge per dim
  std::array<std::size_t, 4> nblocks{1, 1, 1, 1}; // block grid
  int real_dims = 1;
  std::vector<unsigned> lorenzo_masks;  // nonzero masks over real dims

  static Geometry from_dims(const std::vector<std::size_t>& dims) {
    Geometry g;
    g.real_dims = static_cast<int>(dims.size());
    const int pad = 4 - g.real_dims;
    for (int i = 0; i < g.real_dims; ++i) g.dim[pad + i] = dims[i];

    // Block edges per dimensionality, as in SZ2 (256 / 16x16 / 6^3).
    static constexpr std::array<std::array<std::size_t, 4>, 4> kEdges{{
        {1, 1, 1, 256},
        {1, 1, 16, 16},
        {1, 6, 6, 6},
        {6, 6, 6, 6},
    }};
    g.block = kEdges[g.real_dims - 1];

    std::size_t acc = 1;
    for (int d = 3; d >= 0; --d) {
      g.stride[d] = acc;
      acc *= g.dim[d];
    }
    for (int d = 0; d < 4; ++d)
      g.nblocks[d] = (g.dim[d] + g.block[d] - 1) / g.block[d];

    // Lorenzo neighbour masks: subsets of the real dimensions.
    for (unsigned mask = 1; mask < 16; ++mask) {
      bool ok = true;
      for (int d = 0; d < 4; ++d)
        if ((mask & (1u << d)) && g.dim[d] == 1) ok = false;
      if (ok) g.lorenzo_masks.push_back(mask);
    }
    return g;
  }

  std::size_t num_elements() const {
    return dim[0] * dim[1] * dim[2] * dim[3];
  }
  std::size_t total_blocks() const {
    return nblocks[0] * nblocks[1] * nblocks[2] * nblocks[3];
  }
};

// The Lorenzo stencil for one row (fixed c0..c2, c3 varying): the (offset,
// sign) pairs of every mask whose neighbours exist, in mask order — the
// same accumulation order as walking lorenzo_masks and skipping the
// out-of-range ones, so predictions are bit-identical to the per-element
// mask walk this replaces. Rows split into a head stencil (first element
// when its c3 coordinate is 0) and a tail stencil (c3 > 0); hoisting the
// boundary logic here leaves the per-element loop a fused multiply-add
// sweep over precomputed offsets.
struct RowStencil {
  std::array<std::pair<std::size_t, double>, 15> head_terms;
  std::array<std::pair<std::size_t, double>, 15> tail_terms;
  int head_n = 0;
  int tail_n = 0;
  // Tail terms before the first offset-1 term (the {d3} mask). Only an
  // offset-1 gather reads a value written earlier in the *same* row —
  // every other offset is at least stride[2] = dim[3] >= ext3, i.e. a row
  // completed by an earlier visit — so the leading split_n terms of every
  // element's sum are independent of the reconstruction feedback chain
  // and can be pre-accumulated for the whole row (in term order, hence
  // bit-identically) before the sequential sweep.
  int split_n = 0;
};

RowStencil row_stencil(const Geometry& g,
                       const std::array<std::size_t, 4>& row) {
  RowStencil st;
  for (unsigned mask : g.lorenzo_masks) {
    bool valid_fixed = true;  // dims 0..2 (fixed along the row)
    std::size_t off = 0;
    for (int d = 0; d < 3; ++d) {
      if (!(mask & (1u << d))) continue;
      if (row[d] == 0) {
        valid_fixed = false;
        break;
      }
      off += g.stride[d];
    }
    if (!valid_fixed) continue;
    const bool touches_d3 = (mask & (1u << 3)) != 0;
    if (touches_d3) off += g.stride[3];
    const double sign = (std::popcount(mask) & 1) ? 1.0 : -1.0;
    st.tail_terms[st.tail_n++] = {off, sign};
    if (!touches_d3) st.head_terms[st.head_n++] = {off, sign};
  }
  st.split_n = st.tail_n;
  for (int k = 0; k < st.tail_n; ++k)
    if (st.tail_terms[k].first == 1) {
      st.split_n = k;
      break;
    }
  return st;
}

// Prediction from a row stencil: sign-weighted neighbour sum over either
// the reconstruction buffer (double) or raw samples (T). Multiplying by
// the exact +-1.0 sign equals the branchy add/subtract bit-for-bit.
//
// The compile-time-N body lets the compiler fully unroll and schedule the
// gather+fma chain; the runtime wrapper dispatches on the term counts a
// Lorenzo stencil can actually have on interior rows (1/3/7/15 for
// 1D/2D/3D/4D). Identical sequential accumulation order, so the dispatch
// is bit-invisible.
template <int N, typename V>
inline double stencil_predict_n(
    const std::array<std::pair<std::size_t, double>, 15>& terms,
    const V* vals, std::size_t lin) {
  double pred = 0.0;
  for (int k = 0; k < N; ++k)
    pred += terms[k].second *
            static_cast<double>(vals[lin - terms[k].first]);
  return pred;
}

template <typename V>
inline double stencil_predict(
    const std::array<std::pair<std::size_t, double>, 15>& terms, int n,
    const V* vals, std::size_t lin) {
  switch (n) {
    case 7: return stencil_predict_n<7>(terms, vals, lin);
    case 3: return stencil_predict_n<3>(terms, vals, lin);
    case 15: return stencil_predict_n<15>(terms, vals, lin);
    case 1: return stencil_predict_n<1>(terms, vals, lin);
    default: break;
  }
  double pred = 0.0;
  for (int k = 0; k < n; ++k)
    pred += terms[k].second *
            static_cast<double>(vals[lin - terms[k].first]);
  return pred;
}

// Continues a prediction sum from `pred` over terms [k0, k0+N): the
// feedback-dependent suffix of a split row sweep. Same sequential
// accumulation as stencil_predict picking up at index k0, so
// prefix-then-suffix equals the one-pass sum bit-for-bit.
template <int N, typename V>
inline double stencil_accum_n(
    double pred, const std::array<std::pair<std::size_t, double>, 15>& terms,
    int k0, const V* vals, std::size_t lin) {
  for (int k = 0; k < N; ++k)
    pred += terms[k0 + k].second *
            static_cast<double>(vals[lin - terms[k0 + k].first]);
  return pred;
}

template <typename V>
inline double stencil_accum(
    double pred, const std::array<std::pair<std::size_t, double>, 15>& terms,
    int k0, int n, const V* vals, std::size_t lin) {
  switch (n - k0) {  // suffix counts per dimensionality: 4/2/1/8 hot
    case 4: return stencil_accum_n<4>(pred, terms, k0, vals, lin);
    case 2: return stencil_accum_n<2>(pred, terms, k0, vals, lin);
    case 1: return stencil_accum_n<1>(pred, terms, k0, vals, lin);
    case 8: return stencil_accum_n<8>(pred, terms, k0, vals, lin);
    case 0: return pred;
    default: break;
  }
  for (int k = k0; k < n; ++k)
    pred += terms[k].second *
            static_cast<double>(vals[lin - terms[k].first]);
  return pred;
}

// row_stencil only reads `row` through row[d] == 0 tests, so a stencil is
// fully determined by the 4-bit zero-pattern of the row base — 16
// possibilities. Rebuilding per boundary row was ~16% of compress-slab
// time; this table replaces ~8k rebuilds per 64^3 field with a lookup.
// The entry contents are byte-identical to a fresh row_stencil call, so
// predictions are unchanged. Index 0 (no zero coordinate) is the full
// interior stencil; rows in size-1 dimensions always carry their zero
// bit, and those dimensions never appear in lorenzo_masks, so the lookup
// stays consistent for them too.
struct StencilCache {
  std::array<RowStencil, 16> by_sig;

  explicit StencilCache(const Geometry& g) {
    for (unsigned sig = 0; sig < 16; ++sig) {
      std::array<std::size_t, 4> fake_row;
      for (int d = 0; d < 4; ++d)
        fake_row[d] = (sig & (1u << d)) ? 0 : 1;
      by_sig[sig] = row_stencil(g, fake_row);
    }
  }

  static unsigned signature(const std::array<std::size_t, 4>& row) {
    unsigned sig = 0;
    for (int d = 0; d < 4; ++d)
      if (row[d] == 0) sig |= 1u << d;
    return sig;
  }

  const RowStencil& for_row(const std::array<std::size_t, 4>& row) const {
    return by_sig[signature(row)];
  }

  // Visits one d3 row of Lorenzo predictions: head stencil for the global
  // first element (nothing behind it along d3), tail for the rest.
  // Exactly the split the original SZ2 walker performed inline.
  //
  // The tail sweep is split at the stencil's first offset-1 term: the
  // leading split_n terms read rows finished by earlier visits, so their
  // partial sums are computed for the whole row up front — off the
  // reconstruction feedback chain, where the CPU pipelines them freely —
  // and only the suffix (the {d3} term and the masks behind it) stays on
  // the element-to-element dependency path. Prefix and suffix accumulate
  // in the original term order from the original 0.0 seed, so every
  // prediction is bit-identical to the fused per-element sum; with the
  // 3D interior stencil this shortens the carried chain from 7 dependent
  // adds to 4.
  //
  // fn returns the double value of the reconstruction it just stored
  // (exactly (double)recon[lin]: the stored value is V-representable, so
  // the round trip through V is an identity). The offset-1 gather — the
  // only term that reads the element written one iteration ago — uses
  // that carried value instead of reloading recon, which takes the
  // store-to-load forward plus a widening convert off the feedback
  // chain. The product is numerically the same either way.
  template <typename V, typename Fn>
  void visit_row(const Geometry& g, const std::array<std::size_t, 4>& row,
                 std::size_t base, std::size_t ext3, const V* recon,
                 Fn&& fn) const {
    const RowStencil& st = for_row(row);
    std::size_t c3 = 0;
    double carried = 0.0;
    if (row[3] == 0 && g.dim[3] > 1 && ext3 > 0) {
      carried =
          fn(base, stencil_predict(st.head_terms, st.head_n, recon, base));
      c3 = 1;
    } else if (st.split_n < st.tail_n && ext3 > 0) {
      // A tail stencil only carries an offset-1 term when the coordinate
      // along that dimension is nonzero, so the element one slot back
      // exists and was written by an earlier row or block.
      carried = static_cast<double>(recon[base - 1]);
    }
    double pre[256];  // rows are at most the largest block edge long
    for (std::size_t i = c3; i < ext3; ++i)
      pre[i] = stencil_predict(st.tail_terms, st.split_n, recon, base + i);
    if (st.split_n < st.tail_n) {
      for (; c3 < ext3; ++c3) {
        const std::size_t lin = base + c3;
        // Same association as the fused sum: prefix, then the offset-1
        // term, then the remaining suffix terms in order.
        double pred = pre[c3] + st.tail_terms[st.split_n].second * carried;
        pred = stencil_accum(pred, st.tail_terms, st.split_n + 1, st.tail_n,
                             recon, lin);
        carried = fn(lin, pred);
      }
    } else {
      for (; c3 < ext3; ++c3) fn(base + c3, pre[c3]);
    }
  }
};

// --- 2-layer Lorenzo -------------------------------------------------------
//
// The order-2 Lorenzo predictor extrapolates from a 2-deep neighbour cube:
// for offsets k in {0,1,2}^d \ {0}, the neighbour at distance k carries
// coefficient (-1)^(|k|_1 + 1) * prod_d C(2, k_d) — the expansion of
// 1 - prod_d (1 - E_d^-1)^2 where E_d^-1 shifts back along dim d. In 1D
// this is the familiar 2*x[i-1] - x[i-2] linear extrapolation; the
// coefficients sum to 1 in every dimensionality. Neighbours that fall
// outside the field are dropped with their coefficients kept, the same
// boundary convention as the 1-layer stencil above.
struct L2RowStencil {
  // Up to 3^4 - 1 = 80 terms; head0 applies at global d3 coordinate 0,
  // head1 at coordinate 1 (no / only distance-1 neighbours along d3),
  // tail from coordinate 2 on.
  std::array<std::pair<std::size_t, double>, 80> head0_terms;
  std::array<std::pair<std::size_t, double>, 80> head1_terms;
  std::array<std::pair<std::size_t, double>, 80> tail_terms;
  int head0_n = 0;
  int head1_n = 0;
  int tail_n = 0;
};

template <typename V>
inline double l2_predict(
    const std::array<std::pair<std::size_t, double>, 80>& terms, int n,
    const V* vals, std::size_t lin) {
  double pred = 0.0;
  for (int k = 0; k < n; ++k)
    pred += terms[k].second *
            static_cast<double>(vals[lin - terms[k].first]);
  return pred;
}

// Like StencilCache, keyed by how deep each *fixed* dimension's row base
// sits: min(row[d], 2) per dim 0..2 -> base-3 signature, 27 entries. The
// varying d3 depth is handled by the head0/head1/tail split inside each
// entry.
struct Stencil2Cache {
  std::array<L2RowStencil, 27> by_sig;

  explicit Stencil2Cache(const Geometry& g) {
    static constexpr std::array<double, 3> kBinom{1.0, 2.0, 1.0};
    for (unsigned sig = 0; sig < 27; ++sig) {
      std::array<std::size_t, 3> depth{sig / 9 % 3, sig / 3 % 3, sig % 3};
      L2RowStencil& st = by_sig[sig];
      std::array<std::size_t, 4> k{};
      for (k[0] = 0; k[0] <= 2; ++k[0])
        for (k[1] = 0; k[1] <= 2; ++k[1])
          for (k[2] = 0; k[2] <= 2; ++k[2])
            for (k[3] = 0; k[3] <= 2; ++k[3]) {
              const std::size_t order = k[0] + k[1] + k[2] + k[3];
              if (order == 0) continue;
              bool valid = true;
              std::size_t off = 0;
              double coeff = (order & 1) ? 1.0 : -1.0;
              for (int d = 0; d < 4; ++d) {
                if (k[d] == 0) continue;
                // Fixed dims: the row base must be at least k[d] deep.
                // All dims: a size-1 dimension has no neighbours.
                if ((d < 3 && depth[d] < k[d]) || g.dim[d] == 1) {
                  valid = false;
                  break;
                }
                off += k[d] * g.stride[d];
                coeff *= kBinom[k[d]];
              }
              if (!valid) continue;
              st.tail_terms[st.tail_n++] = {off, coeff};
              if (k[3] <= 1) st.head1_terms[st.head1_n++] = {off, coeff};
              if (k[3] == 0) st.head0_terms[st.head0_n++] = {off, coeff};
            }
    }
  }

  static unsigned signature(const std::array<std::size_t, 4>& row) {
    unsigned sig = 0;
    for (int d = 0; d < 3; ++d)
      sig = sig * 3 + static_cast<unsigned>(std::min<std::size_t>(row[d], 2));
    return sig;
  }

  template <typename V, typename Fn>
  void visit_row(const Geometry& g, const std::array<std::size_t, 4>& row,
                 std::size_t base, std::size_t ext3, const V* recon,
                 Fn&& fn) const {
    const L2RowStencil& st = by_sig[signature(row)];
    std::size_t c3 = 0;
    if (g.dim[3] > 1) {
      // Block origins along d3 are multiples of the block edge, so only
      // the first block's rows can contain the global coordinates 0 and 1.
      if (row[3] == 0 && c3 < ext3) {
        fn(base, l2_predict(st.head0_terms, st.head0_n, recon, base));
        ++c3;
      }
      if (row[3] + c3 == 1 && c3 < ext3) {
        fn(base + c3,
           l2_predict(st.head1_terms, st.head1_n, recon, base + c3));
        ++c3;
      }
    }
    for (; c3 < ext3; ++c3) {
      const std::size_t lin = base + c3;
      fn(lin, l2_predict(st.tail_terms, st.tail_n, recon, lin));
    }
  }
};

struct RegressionCoeffs {
  float b0 = 0.f;
  std::array<float, 4> slope{};  // per uniform-4D dim (zeros for unit dims)
};

// Kernel state shared between the per-block passes.
struct BlockRef {
  std::array<std::size_t, 4> origin;
  std::array<std::size_t, 4> extent;
};

// Enumerates blocks in row-major block-grid order. Every Lorenzo neighbour
// (distance 1 or 2, any dim subset) lives at coordinates componentwise <=
// the element's with at least one strictly smaller, so lexicographic block
// order + row-major order inside a block visits each neighbour before its
// dependent — for both stencil orders.
std::vector<BlockRef> enumerate_blocks(const Geometry& g) {
  std::vector<BlockRef> blocks;
  blocks.reserve(g.total_blocks());
  std::array<std::size_t, 4> b{};
  for (b[0] = 0; b[0] < g.nblocks[0]; ++b[0])
    for (b[1] = 0; b[1] < g.nblocks[1]; ++b[1])
      for (b[2] = 0; b[2] < g.nblocks[2]; ++b[2])
        for (b[3] = 0; b[3] < g.nblocks[3]; ++b[3]) {
          BlockRef ref;
          for (int d = 0; d < 4; ++d) {
            ref.origin[d] = b[d] * g.block[d];
            ref.extent[d] =
                std::min(g.block[d], g.dim[d] - ref.origin[d]);
          }
          blocks.push_back(ref);
        }
  return blocks;
}

// Linear index of the row base (c3 = 0) for local row coords `c` inside
// `blk`; the d3 stride is 1 by construction, so rows advance unit-stride.
inline std::size_t row_base(const Geometry& g, const BlockRef& blk,
                            const std::array<std::size_t, 4>& c) {
  return (blk.origin[0] + c[0]) * g.stride[0] +
         (blk.origin[1] + c[1]) * g.stride[1] +
         (blk.origin[2] + c[2]) * g.stride[2] + blk.origin[3];
}

// Least-squares plane fit over a block of raw values. The data-independent
// moments (element count, coordinate sums, squared-coordinate sums) are
// sums of small integers — exact in double in any order — so they come
// from closed forms; only the data moments accumulate per element, in the
// original element-then-dimension order so sum_x / sum_ux stay
// bit-identical to the fused loop this replaces.
template <typename T>
RegressionCoeffs fit_regression(const Geometry& g, const T* data,
                                const BlockRef& blk) {
  RegressionCoeffs rc;
  const double n = static_cast<double>(blk.extent[0] * blk.extent[1] *
                                       blk.extent[2] * blk.extent[3]);
  std::array<double, 4> sum_u{}, sum_uu{};
  for (int d = 0; d < 4; ++d) {
    const double e = static_cast<double>(blk.extent[d]);
    const double others = n / e;
    // sum over c_d of c_d, and of c_d^2, times the count of other coords.
    sum_u[d] = others * (e * (e - 1.0) / 2.0);
    sum_uu[d] = others * ((e - 1.0) * e * (2.0 * e - 1.0) / 6.0);
  }

  double sum_x = 0.0;
  std::array<double, 4> sum_ux{};
  std::array<std::size_t, 4> c{};
  for (c[0] = 0; c[0] < blk.extent[0]; ++c[0])
    for (c[1] = 0; c[1] < blk.extent[1]; ++c[1])
      for (c[2] = 0; c[2] < blk.extent[2]; ++c[2]) {
        std::size_t lin = row_base(g, blk, c);
        const double u0 = static_cast<double>(c[0]);
        const double u1 = static_cast<double>(c[1]);
        const double u2 = static_cast<double>(c[2]);
        for (c[3] = 0; c[3] < blk.extent[3]; ++c[3], ++lin) {
          const double x = static_cast<double>(data[lin]);
          sum_x += x;
          sum_ux[0] += u0 * x;
          sum_ux[1] += u1 * x;
          sum_ux[2] += u2 * x;
          sum_ux[3] += static_cast<double>(c[3]) * x;
        }
      }
  const double mean_x = sum_x / n;
  double b0 = mean_x;
  for (int d = 0; d < 4; ++d) {
    const double mean_u = sum_u[d] / n;
    const double var_u = sum_uu[d] / n - mean_u * mean_u;
    const double cov = sum_ux[d] / n - mean_u * mean_x;
    const double slope = var_u > 1e-12 ? cov / var_u : 0.0;
    rc.slope[d] = static_cast<float>(slope);
    b0 -= slope * mean_u;
  }
  rc.b0 = static_cast<float>(b0);
  return rc;
}

// Decides the per-block predictor by comparing sampled absolute residuals
// of raw-data Lorenzo vs. the regression plane (SZ2's selection heuristic).
template <typename T>
bool regression_wins(const Geometry& g, const StencilCache& stencils,
                     const T* data, const BlockRef& blk,
                     const RegressionCoeffs& rc) {
  double err_lorenzo = 0.0, err_reg = 0.0;
  std::array<std::size_t, 4> c{};
  for (c[0] = 0; c[0] < blk.extent[0]; ++c[0])
    for (c[1] = 0; c[1] < blk.extent[1]; ++c[1])
      for (c[2] = 0; c[2] < blk.extent[2]; c[2] += 2) {
        const std::array<std::size_t, 4> row{
            blk.origin[0] + c[0], blk.origin[1] + c[1],
            blk.origin[2] + c[2], blk.origin[3]};
        const RowStencil& st = stencils.for_row(row);
        // regression_predict association: ((b0+s0c0)+s1c1)+s2c2, then +s3c3.
        const double reg_row =
            ((rc.b0 + static_cast<double>(rc.slope[0]) *
                          static_cast<double>(c[0])) +
             static_cast<double>(rc.slope[1]) * static_cast<double>(c[1])) +
            static_cast<double>(rc.slope[2]) * static_cast<double>(c[2]);
        const std::size_t base = row_base(g, blk, c);
        for (c[3] = 0; c[3] < blk.extent[3]; c[3] += 2) {  // sample stride 2
          const std::size_t lin = base + c[3];
          const double x = static_cast<double>(data[lin]);
          // Raw-data Lorenzo residual (approximation to the real residual).
          const bool head = row[3] + c[3] == 0 && g.dim[3] > 1;
          const double pred =
              head ? stencil_predict(st.head_terms, st.head_n, data, lin)
                   : stencil_predict(st.tail_terms, st.tail_n, data, lin);
          err_lorenzo += std::fabs(x - pred);
          err_reg +=
              std::fabs(x - (reg_row + static_cast<double>(rc.slope[3]) *
                                           static_cast<double>(c[3])));
        }
      }
  return err_reg < err_lorenzo;
}

// Walks one block in canonical element order, computing every element's
// prediction (regression plane or Lorenzo stencil over `recon`) and
// invoking fn(lin, pred) — except for regression rows, which are handed
// whole to reg_row_fn(base, row0, s3, n) because the regression plane has
// no reconstruction feedback: the callee may process the row with a
// stride-1 vectorized kernel as long as each element's prediction is
// evaluated as the bit-identical expression row0 + s3 * (double)k.
// Compress and decompress both iterate through this single walker: the
// round-trip contract requires the two sides to evaluate predictions
// bit-identically, so the shared code path makes that symmetry structural
// rather than maintained by hand (the callbacks are the only
// side-specific part — quantize+record vs recover+materialize). The
// stencil cache type selects the Lorenzo order (StencilCache = 1-layer,
// Stencil2Cache = 2-layer); its visit_row owns the head/tail split.
template <typename T, typename Cache, typename Fn, typename RegRowFn>
void walk_block_predictions(const Geometry& g, const BlockRef& blk,
                            const Cache& stencils, bool reg,
                            const RegressionCoeffs& rc, const T* recon,
                            Fn&& fn, RegRowFn&& reg_row_fn) {
  std::array<std::size_t, 4> c{};
  for (c[0] = 0; c[0] < blk.extent[0]; ++c[0])
    for (c[1] = 0; c[1] < blk.extent[1]; ++c[1])
      for (c[2] = 0; c[2] < blk.extent[2]; ++c[2]) {
        // Per-element work is hoisted to the row: the linear index
        // advances unit-stride, the predictor branch resolves once, and
        // boundary handling collapses into the precomputed stencils.
        const std::size_t base = row_base(g, blk, c);
        const std::size_t ext3 = blk.extent[3];
        if (reg) {
          // regression association: ((b0+s0c0)+s1c1)+s2c2, then +s3c3.
          const double reg_row =
              ((rc.b0 + static_cast<double>(rc.slope[0]) *
                            static_cast<double>(c[0])) +
               static_cast<double>(rc.slope[1]) *
                   static_cast<double>(c[1])) +
              static_cast<double>(rc.slope[2]) * static_cast<double>(c[2]);
          const double s3 = static_cast<double>(rc.slope[3]);
          reg_row_fn(base, reg_row, s3, ext3);
        } else {
          const std::array<std::size_t, 4> row{
              blk.origin[0] + c[0], blk.origin[1] + c[1],
              blk.origin[2] + c[2], blk.origin[3]};
          stencils.visit_row(g, row, base, ext3, recon, fn);
        }
      }
}

// Which blocks use the regression plane, given the predictor mode.
// kLorenzoRegression restricts the per-block choice to 2D/3D exactly as
// SZ2 does; kRegression fits every block; the pure Lorenzo modes none.
bool regression_allowed(BlockPredictor pred, int real_dims) {
  switch (pred) {
    case BlockPredictor::kLorenzoRegression:
      return real_dims == 2 || real_dims == 3;
    case BlockPredictor::kRegression:
      return true;
    default:
      return false;
  }
}

// Reconstruction scratch backed by the global BufferPool. The block
// kernels run once per slab/zone, and a fresh multi-megabyte vector per
// call is typically served straight from the OS by the allocator — an
// mmap round trip plus a page fault for every 4 KiB touched, paid again
// on every call. Recycling the allocation keeps the scratch's pages
// resident across calls. Pooled buffers come back cleared, so resize()
// zero-fills exactly like the value-initialized vector it replaces.
template <typename V>
class PooledScratch {
 public:
  explicit PooledScratch(std::size_t n)
      : buf_(BufferPool::global().acquire(n * sizeof(V))) {
    buf_.resize(n * sizeof(V));
  }
  ~PooledScratch() { BufferPool::global().release(std::move(buf_)); }
  PooledScratch(const PooledScratch&) = delete;
  PooledScratch& operator=(const PooledScratch&) = delete;
  V* data() { return reinterpret_cast<V*>(buf_.data()); }

 private:
  Bytes buf_;
};

template <typename T, typename Q, typename Cache>
BlockEncoding compress_impl(const NdArray<T>& arr, const Q& quant,
                            BlockPredictor pred) {
  const Geometry g = Geometry::from_dims(arr.shape().dims_vector());
  const T* data = arr.data();
  const bool reg_allowed = regression_allowed(pred, g.real_dims);
  const bool reg_always = pred == BlockPredictor::kRegression;

  BlockEncoding enc;
  enc.codes.resize(g.num_elements());
  std::uint32_t* code_dst = enc.codes.data();
  // recon holds values the decompressor materializes: every entry is the
  // T-cast of a prediction+residual, hence exactly T-representable — storing
  // T halves the buffer bandwidth with bit-identical reads.
  using ReconT = T;
  PooledScratch<ReconT> recon_scratch(g.num_elements());
  ReconT* const recon = recon_scratch.data();

  // All boundary stencils precomputed once; rows index by depth signature.
  const Cache stencils(g);

  const auto blocks = enumerate_blocks(g);
  enc.mode_bits.assign((blocks.size() + 7) / 8, std::byte{0});

  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const BlockRef& blk = blocks[bi];
    RegressionCoeffs rc;
    bool reg = false;
    if (reg_allowed) {
      rc = fit_regression(g, data, blk);
      if (reg_always) {
        reg = true;
      } else if constexpr (std::is_same_v<Cache, StencilCache>) {
        // Per-block selection compares against the 1-layer stencil (the
        // legacy mode is only ever instantiated with it).
        reg = regression_wins(g, stencils, data, blk, rc);
      }
      if (reg) {
        enc.mode_bits[bi / 8] |= static_cast<std::byte>(1u << (bi % 8));
        append_pod(enc.coeffs, rc);
      }
    }
    walk_block_predictions(
        g, blk, stencils, reg, rc, recon,
        [&](std::size_t lin, double pred_v) {
          const double x = static_cast<double>(data[lin]);
          double r = 0.0;
          const std::uint32_t code =
              quant.template quantize<T>(x, pred_v, &r);
          if (code == 0) {
            append_pod<T>(enc.unpred, static_cast<T>(x));
            r = x;
          }
          recon[lin] = static_cast<ReconT>(r);
          *code_dst++ = code;
          // r is exactly T-representable (quantize stores the double of a
          // T-cast; the unpredictable path stores the double of a T datum),
          // so this is (double)recon[lin] without re-reading the store.
          return r;
        },
        // Regression rows: stride-1 vectorized quantization, then a scan
        // for the (rare) unpredictable slots so the exact-value stream
        // stays in canonical element order.
        [&](std::size_t base, double row0, double s3, std::size_t n) {
          quant.template quantize_row<T>(data + base, n, row0, s3, code_dst,
                                         recon + base);
          for (std::size_t k = 0; k < n; ++k)
            if (code_dst[k] == 0) append_pod<T>(enc.unpred, data[base + k]);
          code_dst += n;
        });
  }
  return enc;
}

template <typename T, typename Q, typename Cache>
Field decompress_impl(const BlobHeader& header, const Q& quant,
                      BlockPredictor pred,
                      std::span<const std::uint32_t> codes,
                      std::span<const std::byte> mode_bits,
                      ByteReader& coeffs, ByteReader& unpred) {
  const Geometry g = Geometry::from_dims(header.dims);
  const bool reg_allowed = regression_allowed(pred, g.real_dims);

  NdArray<T> arr(Shape{std::span<const std::size_t>(header.dims)});
  // recon holds values the decompressor materializes: every entry is the
  // T-cast of a prediction+residual, hence exactly T-representable — storing
  // T halves the buffer bandwidth with bit-identical reads.
  using ReconT = T;
  PooledScratch<ReconT> recon_scratch(g.num_elements());
  ReconT* const recon = recon_scratch.data();

  // All boundary stencils precomputed once; rows index by depth signature.
  const Cache stencils(g);

  const auto blocks = enumerate_blocks(g);
  EBLCIO_CHECK_STREAM(mode_bits.size() >= (blocks.size() + 7) / 8,
                      "block: truncated block mode bits");
  std::size_t code_idx = 0;

  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const BlockRef& blk = blocks[bi];
    const bool reg =
        reg_allowed &&
        (static_cast<unsigned>(mode_bits[bi / 8]) >> (bi % 8)) & 1u;
    RegressionCoeffs rc;
    if (reg) rc = coeffs.read_pod<RegressionCoeffs>();

    // The whole block's codes must be present before any element is
    // consumed (stricter-earlier version of the per-element underrun
    // check; same exception on corrupt streams).
    std::size_t block_elems = 1;
    for (int d = 0; d < 4; ++d) block_elems *= blk.extent[d];
    EBLCIO_CHECK_STREAM(code_idx + block_elems <= codes.size(),
                        "block: code stream underrun");
    walk_block_predictions(
        g, blk, stencils, reg, rc, recon,
        [&](std::size_t lin, double pred_v) {
          const std::uint32_t code = codes[code_idx++];
          T out;
          if (code == 0) {
            out = unpred.read_pod<T>();
          } else {
            out = static_cast<T>(quant.recover(pred_v, code));
          }
          recon[lin] = out;
          arr[lin] = out;
          return static_cast<double>(out);
        },
        // Regression rows: stride-1 vectorized recovery into recon, then
        // overwrite the code-0 slots from the exact-value stream in
        // canonical order and mirror the row into the output array.
        [&](std::size_t base, double row0, double s3, std::size_t n) {
          const std::uint32_t* cs = codes.data() + code_idx;
          T* out = recon + base;
          quant.template recover_row<T>(cs, n, row0, s3, out);
          for (std::size_t k = 0; k < n; ++k)
            if (cs[k] == 0) out[k] = unpred.read_pod<T>();
          for (std::size_t k = 0; k < n; ++k) arr[base + k] = out[k];
          code_idx += n;
        });
  }
  return Field(header.codec, std::move(arr));
}

template <typename T, typename Q>
BlockEncoding compress_cache_dispatch(const NdArray<T>& arr, const Q& quant,
                                      BlockPredictor pred) {
  if (pred == BlockPredictor::kLorenzo2)
    return compress_impl<T, Q, Stencil2Cache>(arr, quant, pred);
  return compress_impl<T, Q, StencilCache>(arr, quant, pred);
}

template <typename T, typename Q>
Field decompress_cache_dispatch(const BlobHeader& header, const Q& quant,
                                BlockPredictor pred,
                                std::span<const std::uint32_t> codes,
                                std::span<const std::byte> mode_bits,
                                ByteReader& coeffs, ByteReader& unpred) {
  if (pred == BlockPredictor::kLorenzo2)
    return decompress_impl<T, Q, Stencil2Cache>(header, quant, pred, codes,
                                                mode_bits, coeffs, unpred);
  return decompress_impl<T, Q, StencilCache>(header, quant, pred, codes,
                                             mode_bits, coeffs, unpred);
}

}  // namespace

BlockEncoding block_compress(const Field& field, double abs_eb,
                             BlockPredictor pred, QuantizerId quant,
                             double quant_param) {
  return with_quantizer(quant, abs_eb, quant_param, [&](auto q) {
    return field.dtype() == DType::kFloat32
               ? compress_cache_dispatch<float>(field.as<float>(), q, pred)
               : compress_cache_dispatch<double>(field.as<double>(), q,
                                                 pred);
  });
}

Field block_decompress(const BlobHeader& header, BlockPredictor pred,
                       QuantizerId quant, double quant_param,
                       std::span<const std::uint32_t> codes,
                       std::span<const std::byte> mode_bits,
                       ByteReader& coeffs, ByteReader& unpred) {
  return with_quantizer(quant, header.abs_error_bound, quant_param,
                        [&](auto q) {
                          return header.dtype == DType::kFloat32
                                     ? decompress_cache_dispatch<float>(
                                           header, q, pred, codes, mode_bits,
                                           coeffs, unpred)
                                     : decompress_cache_dispatch<double>(
                                           header, q, pred, codes, mode_bits,
                                           coeffs, unpred);
                        });
}

}  // namespace eblcio
