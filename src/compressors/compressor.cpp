#include "compressors/compressor.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <mutex>

#include "common/error.h"
#include "compressors/composed.h"
#include "compressors/lossless_blosc.h"
#include "compressors/lossless_fpc.h"
#include "compressors/lossless_fpzip.h"
#include "compressors/lossless_zl.h"
#include "compressors/qoz.h"
#include "compressors/sz2.h"
#include "compressors/sz3.h"
#include "compressors/szx.h"
#include "compressors/zfp.h"

namespace eblcio {
namespace {

constexpr std::uint32_t kBlobMagic = 0x4f49424cu;  // "LBIO"

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

bool Compressor::supports(const Field& field,
                          const CompressOptions& opt) const {
  const CompressorCaps c = caps();
  const int d = field.ndims();
  if (d < c.min_dims || d > c.max_dims) return false;
  if (opt.threads > 1 && !(c.parallel_dims_mask & (1u << (d - 1))))
    return false;
  if (opt.mode == BoundMode::kLossless && !c.lossless) return false;
  return true;
}

void BlobHeader::encode(Bytes& out) const {
  append_pod<std::uint32_t>(out, kBlobMagic);
  append_string(out, codec);
  append_pod<std::uint8_t>(out, static_cast<std::uint8_t>(dtype));
  append_pod<std::uint8_t>(out, static_cast<std::uint8_t>(dims.size()));
  for (auto d : dims) append_pod<std::uint64_t>(out, d);
  append_pod<double>(out, abs_error_bound);
  append_pod<std::uint8_t>(out, static_cast<std::uint8_t>(requested_mode));
  append_pod<double>(out, requested_bound);
}

BlobHeader BlobHeader::decode(ByteReader& r) {
  EBLCIO_CHECK_STREAM(r.read_pod<std::uint32_t>() == kBlobMagic,
                      "bad blob magic");
  BlobHeader h;
  h.codec = r.read_string();
  h.dtype = static_cast<DType>(r.read_pod<std::uint8_t>());
  const int nd = r.read_pod<std::uint8_t>();
  EBLCIO_CHECK_STREAM(nd >= 1 && nd <= kMaxDims, "bad blob dims");
  for (int i = 0; i < nd; ++i)
    h.dims.push_back(static_cast<std::size_t>(r.read_pod<std::uint64_t>()));
  h.abs_error_bound = r.read_pod<double>();
  h.requested_mode = static_cast<BoundMode>(r.read_pod<std::uint8_t>());
  h.requested_bound = r.read_pod<double>();
  return h;
}

double absolute_bound_for(const Field& field, const CompressOptions& opt) {
  switch (opt.mode) {
    case BoundMode::kAbsolute:
      return opt.error_bound;
    case BoundMode::kValueRangeRel: {
      const auto range = field.value_range();
      return opt.error_bound * range.span();
    }
    case BoundMode::kLossless:
      return 0.0;
  }
  throw InvalidArgument("bad bound mode");
}

Compressor& compressor(const std::string& name) {
  static std::map<std::string, std::unique_ptr<Compressor>> registry = [] {
    std::map<std::string, std::unique_ptr<Compressor>> m;
    auto add = [&m](std::unique_ptr<Compressor> c) {
      m[lower(c->name())] = std::move(c);
    };
    add(std::make_unique<Sz2Compressor>());
    add(std::make_unique<Sz3Compressor>());
    add(std::make_unique<ZfpCompressor>());
    add(std::make_unique<QozCompressor>());
    add(std::make_unique<SzxCompressor>());
    add(std::make_unique<ZlCompressor>());
    add(std::make_unique<BloscLikeCompressor>());
    add(std::make_unique<FpzipLikeCompressor>());
    add(std::make_unique<FpcCompressor>());
    return m;
  }();
  const std::string key = lower(name);
  auto it = registry.find(key);
  if (it != registry.end()) return *it->second;

  // Composed configurations are materialized on demand: any point of the
  // predictor x quantizer x encoder grid is addressable by name without
  // prior registration. std::map nodes are stable, so returned references
  // stay valid as the dynamic registry grows.
  if (const auto config = parse_composed_codec_name(key)) {
    static std::mutex mutex;
    static std::map<std::string, std::unique_ptr<ComposedCompressor>>
        composed_registry;
    std::lock_guard<std::mutex> lock(mutex);
    auto& slot = composed_registry[key];
    if (!slot) slot = std::make_unique<ComposedCompressor>(*config);
    return *slot;
  }
  throw InvalidArgument("unknown compressor: " + name);
}

const std::vector<std::string>& eblc_names() {
  static const std::vector<std::string> kNames = {"SZ2", "SZ3", "ZFP", "QoZ",
                                                  "SZx"};
  return kNames;
}

const std::vector<std::string>& lossless_names() {
  static const std::vector<std::string> kNames = {"zstd", "C-Blosc2", "fpzip",
                                                  "FPC"};
  return kNames;
}

std::vector<std::string> all_compressor_names() {
  std::vector<std::string> names = eblc_names();
  const auto& ll = lossless_names();
  names.insert(names.end(), ll.begin(), ll.end());
  return names;
}

Field decompress_any(std::span<const std::byte> blob, int threads) {
  ByteReader r(blob);
  const BlobHeader h = BlobHeader::decode(r);
  return compressor(h.codec).decompress(blob, threads);
}

BlobHeader peek_header(std::span<const std::byte> blob) {
  ByteReader r(blob);
  return BlobHeader::decode(r);
}

}  // namespace eblcio
