// Zone-sharded compression: the serving-scale read layer.
//
// The paper's checkpoint experiments compress and restore whole fields;
// at serving scale an analysis client wants a small subregion and should
// not pay for decoding the whole thing. Following the SZ3 zone-compressor
// design, a field is sharded into zones along its slowest-varying
// dimension — each zone independently compressed with its own quantizer
// stream and entropy tables (automatic: every zone is a self-describing
// codec blob) — so full-field decode parallelism is embarrassing and a
// region query decodes only its covering zones.
//
// Zone extents use the exact slab_rows distribution of the chunking layer
// (compressors/chunking.h), and every zone is compressed at the absolute
// bound derived from the *whole* field, so the merged reconstruction is
// bit-identical to the unzoned chunked/streamed path.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/field.h"
#include "common/region.h"
#include "compressors/compressor.h"

namespace eblcio {

// The zone row distribution for a field with leading extent `d0`: at most
// `zones` contiguous extents matching slab_rows (fewer when d0 is small).
std::vector<ZoneExtent> zone_extents(std::size_t d0, int zones);

// A zone-sharded compressed field: per-zone self-describing codec blobs
// plus the extents that place them.
struct ZonedField {
  std::string name;
  std::string codec;
  DType dtype = DType::kFloat32;
  std::vector<std::size_t> dims;  // full-field dims
  std::vector<ZoneExtent> extents;
  std::vector<Bytes> blobs;  // blobs[i] covers extents[i]

  std::size_t zones() const { return blobs.size(); }
  std::size_t compressed_bytes() const {
    std::size_t n = 0;
    for (const Bytes& b : blobs) n += b.size();
    return n;
  }
  // Returns every blob's allocation to the BufferPool (blobs are cleared).
  void recycle();
};

// Copies the intersection of `zone` (rows [zone_row_start, ...) of the full
// field) and `region` into `out` (shaped region.shape). Used by both the
// parallel region decode and the serial reference so they are identical by
// construction.
void scatter_zone_into_region(const Field& zone, std::size_t zone_row_start,
                              const Region& region, Field& out);

class ZoneCompressor {
 public:
  // `zones` is the requested shard count (clamped to the field's leading
  // extent at compress time).
  ZoneCompressor(std::string codec, int zones);

  const std::string& codec() const { return codec_; }
  int zones() const { return zones_; }

  // Shards `field` and compresses every zone as an independent task on the
  // shared executor (sweep_grid fan-out; serial when parallel = false).
  // The bound is converted to an absolute bound from the whole field first,
  // so all zones honour one bound and the reconstruction matches the
  // unzoned path bit for bit.
  ZonedField compress(const Field& field, const CompressOptions& opt,
                      bool parallel = true) const;

  // Decodes every zone (independent tasks when parallel) and merges them
  // into the full field. Bit-identical between parallel and serial.
  static Field decompress_all(const ZonedField& zoned, bool parallel = true);

  // Decodes only the zones covering `region` and assembles the region
  // field. Throws InvalidArgument when the region falls outside the field.
  static Field decompress_region(const ZonedField& zoned, const Region& region,
                                 bool parallel = true);

 private:
  std::string codec_;
  int zones_;
};

}  // namespace eblcio
