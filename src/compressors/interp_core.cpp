#include "compressors/interp_core.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>

#include "common/error.h"
#include "compressors/backend.h"
#include "compressors/components.h"
#include "compressors/quantizer.h"

namespace eblcio {
namespace {

constexpr std::uint32_t kRadius = 32768;

// Uniform 4D view with leading unit dimensions.
struct Grid {
  std::array<std::size_t, 4> dim{1, 1, 1, 1};
  std::array<std::size_t, 4> stride{};
  int real_dims = 1;

  static Grid from_dims(const std::vector<std::size_t>& dims) {
    Grid g;
    g.real_dims = static_cast<int>(dims.size());
    const int pad = 4 - g.real_dims;
    for (int i = 0; i < g.real_dims; ++i) g.dim[pad + i] = dims[i];
    std::size_t acc = 1;
    for (int d = 3; d >= 0; --d) {
      g.stride[d] = acc;
      acc *= g.dim[d];
    }
    return g;
  }

  std::size_t num_elements() const {
    return dim[0] * dim[1] * dim[2] * dim[3];
  }
  std::size_t max_dim() const {
    return std::max(std::max(dim[0], dim[1]), std::max(dim[2], dim[3]));
  }
};

std::size_t auto_anchor_stride(const Grid& g) {
  return std::bit_ceil(g.max_dim());
}

// Interpolates along dimension `d` at position `c` (coord c[d] is the
// midpoint between known grid points at distance `h`). The buffer holds T
// values (each exactly T-representable); every operand widens to double
// before any arithmetic, so predictions match the all-double original
// bit for bit.
template <typename T>
double interp_predict(const Grid& g, const T* recon,
                      const std::array<std::size_t, 4>& c, int d,
                      std::size_t h, bool cubic, std::size_t lin) {
  const std::size_t cd = c[d];
  const std::size_t nd = g.dim[d];
  const std::size_t sd = g.stride[d];
  const bool has_l1 = cd >= h;
  const bool has_r1 = cd + h < nd;
  if (cubic && cd >= 3 * h && cd + 3 * h < nd) {
    const double fm3 = static_cast<double>(recon[lin - 3 * h * sd]);
    const double fm1 = static_cast<double>(recon[lin - h * sd]);
    const double fp1 = static_cast<double>(recon[lin + h * sd]);
    const double fp3 = static_cast<double>(recon[lin + 3 * h * sd]);
    return (-fm3 + 9.0 * fm1 + 9.0 * fp1 - fp3) / 16.0;
  }
  if (has_l1 && has_r1)
    return 0.5 * (static_cast<double>(recon[lin - h * sd]) +
                  static_cast<double>(recon[lin + h * sd]));
  if (has_l1) return static_cast<double>(recon[lin - h * sd]);
  if (has_r1) return static_cast<double>(recon[lin + h * sd]);
  return 0.0;
}

// Visits every interpolation target in deterministic order, one d3 row at
// a time. The visitor is called as f(coords, row_base, dim, half, level,
// start3, step3) and iterates c3 = start3, start3+step3, ... itself — the
// element order (and hence every code/unpredictable stream) is identical
// to the per-element traversal this replaces. Handing out whole rows lets
// the callbacks hoist the per-level quantizer and the boundary predicate
// (constant along the row when d < 3) out of the element loop.
//
// Within one (s, d) pass, targets sit at odd multiples of h along dim d
// while their interpolation neighbours sit at even multiples (previous
// levels): no target of a pass is a neighbour of another target of the
// same pass, so the pass is data-independent and row batching is safe.
template <typename F>
void traverse(const Grid& g, std::size_t anchor_stride, F&& f) {
  int level = 0;
  {
    std::size_t s = anchor_stride;
    while (s > 1) {
      ++level;
      s >>= 1;
    }
  }
  for (std::size_t s = anchor_stride; s > 1; s >>= 1, --level) {
    const std::size_t h = s / 2;
    for (int d = 0; d < 4; ++d) {
      if (g.dim[d] == 1) continue;
      if (h >= g.dim[d]) continue;  // no midpoints along this dim yet
      // Iteration steps: dims refined earlier this round advance by h,
      // later dims by s, dimension d starts at h and advances by s.
      std::array<std::size_t, 4> start{}, step{};
      for (int e = 0; e < 4; ++e) {
        start[e] = (e == d) ? h : 0;
        step[e] = (e < d) ? h : s;
      }
      step[d] = s;
      std::array<std::size_t, 4> c{};
      for (c[0] = start[0]; c[0] < g.dim[0]; c[0] += step[0])
        for (c[1] = start[1]; c[1] < g.dim[1]; c[1] += step[1])
          for (c[2] = start[2]; c[2] < g.dim[2]; c[2] += step[2]) {
            // The d3 stride is 1, so the innermost index advances by
            // step[3] without re-deriving it from the coordinates.
            const std::size_t base = c[0] * g.stride[0] +
                                     c[1] * g.stride[1] +
                                     c[2] * g.stride[2];
            f(c, base, d, h, level, start[3], step[3]);
          }
    }
  }
}

// Row-batched predictions for a pass refining d < 3: the interp_predict
// predicate depends only on c[d], h and dim[d] — constant along the d3
// row — so each boundary case becomes its own branch-free sweep over the
// row's targets. Expression-for-expression the same arithmetic as
// interp_predict, so predictions are bit-identical.
template <typename T>
void interp_predict_row(const Grid& g, const T* recon,
                        const std::array<std::size_t, 4>& c, int d,
                        std::size_t h, bool cubic, std::size_t base,
                        std::size_t start3, std::size_t step3,
                        double* pred) {
  const std::size_t off = h * g.stride[d];
  const std::size_t cd = c[d];
  const std::size_t nd = g.dim[d];
  const std::size_t n3 = g.dim[3];
  std::size_t i = 0;
  if (cubic && cd >= 3 * h && cd + 3 * h < nd) {
    const std::size_t off3 = 3 * off;
    for (std::size_t c3 = start3; c3 < n3; c3 += step3, ++i) {
      const std::size_t lin = base + c3;
      const double fm3 = static_cast<double>(recon[lin - off3]);
      const double fm1 = static_cast<double>(recon[lin - off]);
      const double fp1 = static_cast<double>(recon[lin + off]);
      const double fp3 = static_cast<double>(recon[lin + off3]);
      pred[i] = (-fm3 + 9.0 * fm1 + 9.0 * fp1 - fp3) / 16.0;
    }
  } else if (cd >= h && cd + h < nd) {
    for (std::size_t c3 = start3; c3 < n3; c3 += step3, ++i) {
      const std::size_t lin = base + c3;
      pred[i] = 0.5 * (static_cast<double>(recon[lin - off]) +
                       static_cast<double>(recon[lin + off]));
    }
  } else if (cd >= h) {
    for (std::size_t c3 = start3; c3 < n3; c3 += step3, ++i)
      pred[i] = static_cast<double>(recon[base + c3 - off]);
  } else if (cd + h < nd) {
    for (std::size_t c3 = start3; c3 < n3; c3 += step3, ++i)
      pred[i] = static_cast<double>(recon[base + c3 + off]);
  } else {
    for (std::size_t c3 = start3; c3 < n3; c3 += step3, ++i) pred[i] = 0.0;
  }
}

// Predictions for a pass refining d == 3: the predicate varies with c3,
// but the cubic window [3h, n3-3h) is one contiguous middle range — the
// few edge targets go through the per-element helper, the interior gets a
// tight data-independent sweep. Predicate tests match interp_predict's
// exactly, so every element lands in the same branch with the same
// arithmetic.
template <typename T>
void interp_predict_row_d3(const Grid& g, const T* recon,
                           std::array<std::size_t, 4> c, std::size_t h,
                           bool cubic, std::size_t base, std::size_t start3,
                           std::size_t step3, double* pred) {
  const std::size_t n3 = g.dim[3];
  std::size_t i = 0;
  std::size_t c3 = start3;
  if (cubic) {
    for (; c3 < n3 && c3 < 3 * h; c3 += step3, ++i) {
      c[3] = c3;
      pred[i] = interp_predict(g, recon, c, 3, h, cubic, base + c3);
    }
    for (; c3 + 3 * h < n3; c3 += step3, ++i) {
      const std::size_t lin = base + c3;
      const double fm3 = static_cast<double>(recon[lin - 3 * h]);
      const double fm1 = static_cast<double>(recon[lin - h]);
      const double fp1 = static_cast<double>(recon[lin + h]);
      const double fp3 = static_cast<double>(recon[lin + 3 * h]);
      pred[i] = (-fm3 + 9.0 * fm1 + 9.0 * fp1 - fp3) / 16.0;
    }
  } else {
    // Linear window: targets start at c3 = h, so only the right edge
    // needs the per-element fallback.
    for (; c3 >= h && c3 + h < n3; c3 += step3, ++i) {
      const std::size_t lin = base + c3;
      pred[i] = 0.5 * (static_cast<double>(recon[lin - h]) +
                       static_cast<double>(recon[lin + h]));
    }
  }
  for (; c3 < n3; c3 += step3, ++i) {
    c[3] = c3;
    pred[i] = interp_predict(g, recon, c, 3, h, cubic, base + c3);
  }
}

// Dispatches a row to the d < 3 uniform-predicate sweep or the d == 3
// segmented sweep.
template <typename T>
void predict_row(const Grid& g, const T* recon,
                 const std::array<std::size_t, 4>& c, int d, std::size_t h,
                 bool cubic, std::size_t base, std::size_t start3,
                 std::size_t step3, double* pred) {
  if (d < 3)
    interp_predict_row(g, recon, c, d, h, cubic, base, start3, step3, pred);
  else
    interp_predict_row_d3(g, recon, c, h, cubic, base, start3, step3, pred);
}

double level_eb(double abs_eb, double gamma, int level) {
  // gamma < 1 tightens coarse (high) levels; bound capped at abs_eb so the
  // overall guarantee holds at every level.
  double eb = abs_eb * std::pow(gamma, level - 1);
  return std::min(eb, abs_eb);
}

// Per-level error bounds, precomputed once per (de)compression so the hot
// loop avoids pow().
std::array<double, 64> level_eb_table(double abs_eb, double gamma) {
  std::array<double, 64> t{};
  for (int l = 0; l < 64; ++l) t[l] = level_eb(abs_eb, gamma, l);
  return t;
}

template <typename T, typename Q>
InterpEncoding compress_impl(const NdArray<T>& arr, double abs_eb,
                             const InterpConfig& config) {
  const Grid g = Grid::from_dims(arr.shape().dims_vector());
  const std::size_t anchor_stride =
      config.anchor_stride ? config.anchor_stride : auto_anchor_stride(g);
  EBLCIO_CHECK_ARG(std::has_single_bit(anchor_stride),
                   "anchor stride must be a power of two");
  const T* data = arr.data();

  InterpEncoding enc;
  enc.alphabet_size = 2 * kRadius + 1;
  enc.codes.reserve(g.num_elements());
  // recon entries are anchors or quantizer round-trips: exactly
  // T-representable, so storing T halves the buffer bandwidth with
  // bit-identical reads.
  std::vector<T> recon(g.num_elements(), T{0});

  // Anchors: exact values on the coarse grid.
  std::array<std::size_t, 4> a{};
  for (a[0] = 0; a[0] < g.dim[0]; a[0] += anchor_stride)
    for (a[1] = 0; a[1] < g.dim[1]; a[1] += anchor_stride)
      for (a[2] = 0; a[2] < g.dim[2]; a[2] += anchor_stride)
        for (a[3] = 0; a[3] < g.dim[3]; a[3] += anchor_stride) {
          const std::size_t lin = a[0] * g.stride[0] + a[1] * g.stride[1] +
                                  a[2] * g.stride[2] + a[3];
          append_pod<T>(enc.anchors, data[lin]);
          recon[lin] = data[lin];
        }

  // Per-level quantizers built once: the constructor's reciprocal divide
  // was previously paid per element.
  const auto leb = level_eb_table(abs_eb, config.level_gamma);
  std::vector<Q> quants;
  quants.reserve(leb.size());
  for (double eb : leb)
    quants.push_back(make_quantizer<Q>(eb, config.quant_param, kRadius));
  std::vector<double> predbuf(g.dim[3]);

  traverse(g, anchor_stride,
           [&](const std::array<std::size_t, 4>& c, std::size_t base, int d,
               std::size_t h, int level, std::size_t start3,
               std::size_t step3) {
             predict_row(g, recon.data(), c, d, h, config.cubic, base,
                         start3, step3, predbuf.data());
             const Q& quant = quants[level];
             std::size_t i = 0;
             for (std::size_t c3 = start3; c3 < g.dim[3];
                  c3 += step3, ++i) {
               const std::size_t lin = base + c3;
               const double x = static_cast<double>(data[lin]);
               double r = 0.0;
               const std::uint32_t code =
                   quant.template quantize<T>(x, predbuf[i], &r);
               if (code == 0) {
                 append_pod<T>(enc.unpred, static_cast<T>(x));
                 r = x;
               }
               recon[lin] = static_cast<T>(r);
               enc.codes.push_back(code);
             }
           });
  return enc;
}

template <typename T, typename Q>
Field decompress_impl(const BlobHeader& header, const InterpConfig& config,
                      std::span<const std::uint32_t> codes,
                      std::span<const std::byte> anchors,
                      std::span<const std::byte> unpred) {
  const Grid g = Grid::from_dims(header.dims);
  const std::size_t anchor_stride =
      config.anchor_stride ? config.anchor_stride : auto_anchor_stride(g);
  const double abs_eb = header.abs_error_bound;

  NdArray<T> arr(Shape{std::span<const std::size_t>(header.dims)});
  // recon entries are anchors or quantizer round-trips: exactly
  // T-representable, so storing T halves the buffer bandwidth with
  // bit-identical reads.
  std::vector<T> recon(g.num_elements(), T{0});
  ByteReader anchor_r(anchors);
  ByteReader unpred_r(unpred);

  std::array<std::size_t, 4> a{};
  for (a[0] = 0; a[0] < g.dim[0]; a[0] += anchor_stride)
    for (a[1] = 0; a[1] < g.dim[1]; a[1] += anchor_stride)
      for (a[2] = 0; a[2] < g.dim[2]; a[2] += anchor_stride)
        for (a[3] = 0; a[3] < g.dim[3]; a[3] += anchor_stride) {
          const std::size_t lin = a[0] * g.stride[0] + a[1] * g.stride[1] +
                                  a[2] * g.stride[2] + a[3];
          const T v = anchor_r.read_pod<T>();
          recon[lin] = v;
          arr[lin] = v;
        }

  std::size_t code_idx = 0;
  const auto leb = level_eb_table(abs_eb, config.level_gamma);
  std::vector<Q> quants;
  quants.reserve(leb.size());
  for (double eb : leb)
    quants.push_back(make_quantizer<Q>(eb, config.quant_param, kRadius));
  std::vector<double> predbuf(g.dim[3]);

  traverse(g, anchor_stride,
           [&](const std::array<std::size_t, 4>& c, std::size_t base, int d,
               std::size_t h, int level, std::size_t start3,
               std::size_t step3) {
             // Predictions read only previous-level recon values, so
             // computing the whole row up front (including slots that turn
             // out unpredictable, where the value goes unused) is safe.
             predict_row(g, recon.data(), c, d, h, config.cubic, base,
                         start3, step3, predbuf.data());
             const Q& quant = quants[level];
             std::size_t i = 0;
             for (std::size_t c3 = start3; c3 < g.dim[3];
                  c3 += step3, ++i) {
               EBLCIO_CHECK_STREAM(code_idx < codes.size(),
                                   "interp: code stream underrun");
               const std::uint32_t code = codes[code_idx++];
               const std::size_t lin = base + c3;
               T out;
               if (code == 0) {
                 out = unpred_r.read_pod<T>();
               } else {
                 out = static_cast<T>(quant.recover(predbuf[i], code));
               }
               recon[lin] = out;
               arr[lin] = out;
             }
           });
  EBLCIO_CHECK_STREAM(code_idx == codes.size(),
                      "interp: code stream overrun");
  return Field(header.codec, std::move(arr));
}

}  // namespace

InterpEncoding interp_compress(const Field& field, double abs_eb,
                               const InterpConfig& config) {
  return with_quantizer(
      config.quantizer, abs_eb, config.quant_param, [&](auto proto) {
        using Q = decltype(proto);
        return field.dtype() == DType::kFloat32
                   ? compress_impl<float, Q>(field.as<float>(), abs_eb,
                                             config)
                   : compress_impl<double, Q>(field.as<double>(), abs_eb,
                                              config);
      });
}

Field interp_decompress(const BlobHeader& header, const InterpConfig& config,
                        std::span<const std::uint32_t> codes,
                        std::span<const std::byte> anchors,
                        std::span<const std::byte> unpred) {
  return with_quantizer(
      config.quantizer, header.abs_error_bound, config.quant_param,
      [&](auto proto) {
        using Q = decltype(proto);
        return header.dtype == DType::kFloat32
                   ? decompress_impl<float, Q>(header, config, codes,
                                               anchors, unpred)
                   : decompress_impl<double, Q>(header, config, codes,
                                                anchors, unpred);
      });
}

Bytes interp_payload_encode(const InterpConfig& config,
                            const InterpEncoding& enc) {
  Bytes out;
  append_pod<std::uint64_t>(out, config.anchor_stride);
  append_pod<double>(out, config.level_gamma);
  append_pod<std::uint8_t>(out, config.cubic ? 1 : 0);
  append_pod<std::uint64_t>(out, enc.codes.size());
  append_sized(out, enc.anchors);
  append_sized(out, enc.unpred);
  Bytes code_blob = encode_code_stream(enc.codes, enc.alphabet_size);
  append_bytes(out, code_blob);
  BufferPool::global().release(std::move(code_blob));
  return out;
}

InterpPayload interp_payload_decode(std::span<const std::byte> payload) {
  ByteReader r(payload);
  InterpPayload p;
  p.config.anchor_stride = r.read_pod<std::uint64_t>();
  p.config.level_gamma = r.read_pod<double>();
  p.config.cubic = r.read_pod<std::uint8_t>() != 0;
  const auto ncodes = r.read_pod<std::uint64_t>();
  p.anchors = read_sized(r);
  p.unpred = read_sized(r);
  p.codes = decode_code_stream(r);
  EBLCIO_CHECK_STREAM(p.codes.size() == ncodes,
                      "interp: code count mismatch");
  return p;
}

}  // namespace eblcio
