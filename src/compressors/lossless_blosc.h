// C-Blosc2-class lossless baseline: byte-shuffle filter + fast LZ.
//
// The shuffle transposes element bytes so the slowly-varying exponent bytes
// of IEEE floats become contiguous runs, which LZ then compresses — Blosc's
// core trick, and why it modestly beats plain LZ on float data in Fig. 1.
#pragma once

#include "compressors/compressor.h"

namespace eblcio {

class BloscLikeCompressor : public Compressor {
 public:
  std::string name() const override { return "C-Blosc2"; }
  CompressorCaps caps() const override {
    CompressorCaps c;
    c.lossless = true;
    return c;
  }

  Bytes compress(const Field& field, const CompressOptions& opt) override;
  Field decompress(std::span<const std::byte> blob, int threads) override;
};

}  // namespace eblcio
