#include "compressors/lossless_blosc.h"

#include "codec/lz77.h"
#include "codec/shuffle.h"
#include "compressors/lossless_common.h"

namespace eblcio {

Bytes BloscLikeCompressor::compress(const Field& field,
                                    const CompressOptions& opt) {
  Bytes out;
  lossless_header(name(), field, opt).encode(out);
  const Bytes shuffled =
      shuffle_bytes(field.bytes(), dtype_size(field.dtype()));
  // Blosc trades ratio for speed: a shallow match search is part of the
  // imitation (and of why Blosc lands between zstd and fpzip in Fig. 1).
  LzOptions lz_opt;
  lz_opt.max_probes = 8;
  Bytes payload = lz_compress(shuffled, lz_opt);
  append_bytes(out, payload);
  return out;
}

Field BloscLikeCompressor::decompress(std::span<const std::byte> blob,
                                      int /*threads*/) {
  ByteReader r(blob);
  const BlobHeader header = BlobHeader::decode(r);
  const Bytes shuffled = lz_decompress(r.remaining());
  const Bytes raw = unshuffle_bytes(shuffled, dtype_size(header.dtype));
  return field_from_bytes(header, raw);
}

}  // namespace eblcio
