// SZ2-class prediction-based error-bounded lossy compressor.
//
// Follows the published SZ 2.x design (Liang et al., Big Data'18): the field
// is partitioned into small multi-dimensional blocks; each block selects
// between a k-d Lorenzo predictor (on reconstructed values) and a linear
// regression plane (2D/3D blocks), residuals are quantized on a 2*eb grid
// with a 65536-entry code alphabet, unpredictable points are stored exactly,
// and the code stream is entropy-coded with canonical Huffman followed by
// the deflate-class lossless backend (the "Huffman + Zstd" pipeline).
//
// Parallel mode mirrors the reference OpenMP implementation's structure —
// prediction/quantization is data-parallel per slab but the Huffman +
// lossless stage over the global code stream is serial, which is why SZ2
// "does not scale based on thread counts" in the paper's Fig. 10. Like the
// reference, the parallel mode rejects 1D and 4D inputs (Sec. IV-C).
#pragma once

#include "compressors/compressor.h"

namespace eblcio {

class Sz2Compressor : public Compressor {
 public:
  std::string name() const override { return "SZ2"; }
  CompressorCaps caps() const override {
    CompressorCaps c;
    c.parallel_dims_mask = 0b0110;  // OpenMP mode: 2D and 3D only
    c.parallel_decompress = true;   // reconstruction only; entropy is serial
    return c;
  }

  Bytes compress(const Field& field, const CompressOptions& opt) override;
  Field decompress(std::span<const std::byte> blob, int threads) override;
};

}  // namespace eblcio
