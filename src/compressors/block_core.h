// Block-structured prediction+quantization engine — the SZ2 kernel family,
// factored out of sz2.cpp so the composable codec framework can drive it
// with any (predictor, quantizer) pair while SZ2 itself stays a thin
// framing layer over the kLorenzoRegression configuration.
//
// The engine walks the field in SZ2's canonical block order (256 / 16x16 /
// 6^3 / 6^4 blocks), predicts every element from the *reconstruction*
// buffer (so compress and decompress see bit-identical predictions), and
// quantizes residuals to radius-32768 codes. Unpredictable elements emit
// code 0 and their exact value in the `unpred` stream.
//
// Bit-exactness contract: block_compress(kLorenzoRegression, kLinearRecip)
// reproduces the pre-refactor SZ2 slab encoding byte-for-byte — the 17
// pinned reference blobs in tests/test_reference_blobs.cpp enforce this.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/field.h"
#include "compressors/components.h"
#include "compressors/compressor.h"

namespace eblcio {

// Prediction modes of the block engine. kLorenzoRegression is the legacy
// SZ2 behaviour (per-block choice between Lorenzo and a regression plane
// for 2D/3D, pure Lorenzo otherwise); the rest pin one predictor for every
// block, which is what the composed framework's predictor axis selects.
enum class BlockPredictor : std::uint8_t {
  kLorenzoRegression = 0,
  kLorenzo1 = 1,
  kLorenzo2 = 2,
  kRegression = 3,
};

// One slab's encoding, stream-per-stream (the caller owns framing and the
// entropy stage). Identical layout to SZ2's historical SlabEncoding.
struct BlockEncoding {
  std::vector<std::uint32_t> codes;  // one per element, canonical order
  Bytes mode_bits;  // 1 bit per block: regression plane used?
  Bytes coeffs;     // RegressionCoeffs for regression blocks, in order
  Bytes unpred;     // raw T values for unpredictable points, in order
};

// Compresses one field (or slab). `quant_param` is the quantizer's
// field-dependent parameter (see make_quantizer); pass 0 for the linear
// quantizers.
BlockEncoding block_compress(const Field& field, double abs_eb,
                             BlockPredictor pred, QuantizerId quant,
                             double quant_param);

// Reconstructs a field from streams produced by block_compress with the
// same (dims, abs_eb, pred, quant, quant_param). The returned Field is
// named after header.codec. Throws CorruptStream on truncated or
// inconsistent streams.
Field block_decompress(const BlobHeader& header, BlockPredictor pred,
                       QuantizerId quant, double quant_param,
                       std::span<const std::uint32_t> codes,
                       std::span<const std::byte> mode_bits,
                       ByteReader& coeffs, ByteReader& unpred);

}  // namespace eblcio
