// QoZ-class quality-oriented error-bounded lossy compressor.
//
// QoZ (Liu et al., SC'22) builds on the SZ3 interpolation engine with
// quality-oriented refinements, which we reproduce:
//  * a denser exactly-stored anchor grid that stops error propagation,
//  * level-wise error-bound tuning (tighter bounds at coarse levels, since
//    coarse-level errors are amplified by every finer level),
//  * an auto-tuning pass that trials candidate configurations on a sampled
//    sub-region and picks the best quality/ratio trade-off — the extra
//    passes are why QoZ costs more energy than SZ3 in the paper's Fig. 7
//    while delivering higher PSNR at the same bound (its off-trend position
//    in Fig. 9).
//
// Like the reference implementation, QoZ rejects 1D inputs (paper Sec.
// IV-C: "QoZ is not capable of compressing 1D data").
#pragma once

#include "compressors/compressor.h"

namespace eblcio {

class QozCompressor : public Compressor {
 public:
  std::string name() const override { return "QoZ"; }
  CompressorCaps caps() const override {
    CompressorCaps c;
    c.min_dims = 2;  // no 1D support
    c.parallel_dims_mask = 0xF;
    c.parallel_decompress = true;
    return c;
  }

  Bytes compress(const Field& field, const CompressOptions& opt) override;
  Field decompress(std::span<const std::byte> blob, int threads) override;
};

}  // namespace eblcio
