#include "compressors/composed.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "compressors/backend.h"
#include "compressors/block_core.h"
#include "compressors/chunking.h"
#include "compressors/interp_core.h"

namespace eblcio {
namespace {

// Composed chunk payloads open with a component header so every chunk is
// independently self-describing (and forgeries are caught before any
// stream is parsed): [u8 version][u8 pred][u8 quant][u8 enc][f64 param].
constexpr std::uint8_t kComposedVersion = 1;

bool is_interp(PredictorId p) {
  return p == PredictorId::kInterpLinear || p == PredictorId::kInterpCubic;
}

BlockPredictor block_predictor_for(PredictorId p) {
  switch (p) {
    case PredictorId::kLorenzo1: return BlockPredictor::kLorenzo1;
    case PredictorId::kLorenzo2: return BlockPredictor::kLorenzo2;
    case PredictorId::kRegression: return BlockPredictor::kRegression;
    default: break;
  }
  throw InvalidArgument("not a block-family predictor");
}

InterpConfig interp_config_for(const ComposedConfig& c, double quant_param) {
  InterpConfig cfg;  // auto anchor stride, gamma 1.0 (the SZ3 defaults)
  cfg.cubic = c.predictor == PredictorId::kInterpCubic;
  cfg.quantizer = c.quantizer;
  cfg.quant_param = quant_param;
  return cfg;
}

// Wire tags each encoder component may legitimately emit (huffman-lz picks
// the smaller of its two stages per stream).
bool backend_tag_matches(EncoderId enc, std::uint8_t tag) {
  switch (enc) {
    case EncoderId::kHuffman: return tag == kBackendHuffmanCanonical;
    case EncoderId::kHuffmanLut: return tag == kBackendHuffman;
    case EncoderId::kHuffmanLz:
      return tag == kBackendHuffman || tag == kBackendHuffmanLz;
    case EncoderId::kLz: return tag == kBackendLzRaw;
    case EncoderId::kRaw: return tag == kBackendRaw;
  }
  return false;
}

void write_component_header(Bytes& out, const ComposedConfig& c,
                            double quant_param) {
  out.reserve(out.size() + 12);
  append_pod<std::uint8_t>(out, kComposedVersion);
  append_pod<std::uint8_t>(out, static_cast<std::uint8_t>(c.predictor));
  append_pod<std::uint8_t>(out, static_cast<std::uint8_t>(c.quantizer));
  append_pod<std::uint8_t>(out, static_cast<std::uint8_t>(c.encoder));
  append_pod<double>(out, quant_param);
}

// Reads and fully validates the component header: ids must be in range
// AND equal to the configuration this compressor was built with — a blob
// whose payload names a different triple than its BlobHeader codec string
// is corrupt, not merely misrouted.
double read_component_header(ByteReader& r, const ComposedConfig& expect) {
  EBLCIO_CHECK_STREAM(r.read_pod<std::uint8_t>() == kComposedVersion,
                      "composed: bad payload version");
  const auto pred = r.read_pod<std::uint8_t>();
  const auto quant = r.read_pod<std::uint8_t>();
  const auto enc = r.read_pod<std::uint8_t>();
  EBLCIO_CHECK_STREAM(pred < kNumPredictors, "composed: bad predictor id");
  EBLCIO_CHECK_STREAM(quant < kNumQuantizers, "composed: bad quantizer id");
  EBLCIO_CHECK_STREAM(enc < kNumEncoders, "composed: bad encoder id");
  EBLCIO_CHECK_STREAM(
      static_cast<PredictorId>(pred) == expect.predictor &&
          static_cast<QuantizerId>(quant) == expect.quantizer &&
          static_cast<EncoderId>(enc) == expect.encoder,
      "composed: component/payload mismatch");
  const double quant_param = r.read_pod<double>();
  EBLCIO_CHECK_STREAM(std::isfinite(quant_param),
                      "composed: bad quantizer parameter");
  return quant_param;
}

// Decodes the encoder blob, checking its wire tag against the declared
// encoder component first (decode_code_stream would accept any valid tag).
std::vector<std::uint32_t> decode_codes_checked(ByteReader& r,
                                                EncoderId enc) {
  const auto rest = r.remaining();
  EBLCIO_CHECK_STREAM(!rest.empty(), "composed: missing code stream");
  EBLCIO_CHECK_STREAM(
      backend_tag_matches(enc, static_cast<std::uint8_t>(rest[0])),
      "composed: encoder/payload mismatch");
  return decode_code_stream(r);
}

// The quantizer's field-dependent parameter, computed once over the whole
// field (not per chunk, so serial and chunked blobs quantize identically).
double quant_param_for(QuantizerId q, const Field& field) {
  if (q != QuantizerId::kLog) return 0.0;
  const auto range = field.value_range();
  return std::max(std::fabs(range.min), std::fabs(range.max));
}

}  // namespace

std::string composed_codec_name(const ComposedConfig& config) {
  std::string name = "composed:";
  name += predictor_name(config.predictor);
  name += '+';
  name += quantizer_name(config.quantizer);
  name += '+';
  name += encoder_name(config.encoder);
  return name;
}

std::optional<ComposedConfig> parse_composed_codec_name(
    const std::string& name) {
  constexpr std::string_view kPrefix = "composed:";
  std::string_view s(name);
  if (!s.starts_with(kPrefix)) return std::nullopt;
  s.remove_prefix(kPrefix.size());

  const auto plus1 = s.find('+');
  if (plus1 == std::string_view::npos) return std::nullopt;
  const auto plus2 = s.find('+', plus1 + 1);
  if (plus2 == std::string_view::npos) return std::nullopt;
  if (s.find('+', plus2 + 1) != std::string_view::npos) return std::nullopt;

  const auto pred = parse_predictor(s.substr(0, plus1));
  const auto quant = parse_quantizer(s.substr(plus1 + 1, plus2 - plus1 - 1));
  const auto enc = parse_encoder(s.substr(plus2 + 1));
  if (!pred || !quant || !enc) return std::nullopt;
  return ComposedConfig{*pred, *quant, *enc};
}

std::vector<ComposedConfig> all_composed_configs() {
  std::vector<ComposedConfig> grid;
  grid.reserve(static_cast<std::size_t>(kNumPredictors) * kNumQuantizers *
               kNumEncoders);
  for (int p = 0; p < kNumPredictors; ++p)
    for (int q = 0; q < kNumQuantizers; ++q)
      for (int e = 0; e < kNumEncoders; ++e)
        grid.push_back(ComposedConfig{static_cast<PredictorId>(p),
                                      static_cast<QuantizerId>(q),
                                      static_cast<EncoderId>(e)});
  return grid;
}

ComposedCompressor::ComposedCompressor(const ComposedConfig& config)
    : config_(config), name_(composed_codec_name(config)) {}

CompressorCaps ComposedCompressor::caps() const {
  // Every component pair handles 1D-4D; chunked slab parallelism applies
  // uniformly (the framework has no per-dimensionality OpenMP gaps to
  // mirror, unlike the reference SZ2 binary).
  CompressorCaps c;
  c.lossless = false;
  c.min_dims = 1;
  c.max_dims = 4;
  c.parallel_dims_mask = 0xF;
  c.parallel_decompress = true;
  return c;
}

Bytes ComposedCompressor::compress(const Field& field,
                                   const CompressOptions& opt) {
  EBLCIO_CHECK_ARG(opt.mode != BoundMode::kLossless,
                   "composed codecs are error-bounded lossy compressors");

  BlobHeader header;
  header.codec = name_;
  header.dtype = field.dtype();
  header.dims = field.shape().dims_vector();
  header.abs_error_bound = absolute_bound_for(field, opt);
  header.requested_mode = opt.mode;
  header.requested_bound = opt.error_bound;

  const double quant_param = quant_param_for(config_.quantizer, field);

  return compress_chunked(
      header, field, opt,
      [this, quant_param](const Field& slab, const BlobHeader& hdr,
                          const CompressOptions&) {
        Bytes payload;
        write_component_header(payload, config_, quant_param);
        if (is_interp(config_.predictor)) {
          const InterpEncoding enc = interp_compress(
              slab, hdr.abs_error_bound,
              interp_config_for(config_, quant_param));
          append_pod<std::uint64_t>(payload, enc.codes.size());
          append_sized(payload, enc.anchors);
          append_sized(payload, enc.unpred);
          Bytes code_blob =
              encode_codes_with(config_.encoder, enc.codes, kQuantAlphabet);
          append_bytes(payload, code_blob);
          BufferPool::global().release(std::move(code_blob));
        } else {
          const BlockEncoding enc = block_compress(
              slab, hdr.abs_error_bound,
              block_predictor_for(config_.predictor), config_.quantizer,
              quant_param);
          append_pod<std::uint64_t>(payload, enc.codes.size());
          append_sized(payload, enc.mode_bits);
          append_sized(payload, enc.coeffs);
          append_sized(payload, enc.unpred);
          Bytes code_blob =
              encode_codes_with(config_.encoder, enc.codes, kQuantAlphabet);
          append_bytes(payload, code_blob);
          BufferPool::global().release(std::move(code_blob));
        }
        return payload;
      });
}

Field ComposedCompressor::decompress(std::span<const std::byte> blob,
                                     int threads) {
  return decompress_chunked(
      blob, threads,
      [this](const BlobHeader& hdr, std::span<const std::byte> payload) {
        ByteReader r(payload);
        const double quant_param = read_component_header(r, config_);
        if (is_interp(config_.predictor)) {
          const auto ncodes = r.read_pod<std::uint64_t>();
          const auto anchors = read_sized(r);
          const auto unpred = read_sized(r);
          const auto codes = decode_codes_checked(r, config_.encoder);
          EBLCIO_CHECK_STREAM(codes.size() == ncodes,
                              "composed: code count mismatch");
          return interp_decompress(
              hdr, interp_config_for(config_, quant_param), codes, anchors,
              unpred);
        }
        const auto ncodes = r.read_pod<std::uint64_t>();
        // Block payloads carry one code per element; a mismatched count
        // can only be corruption.
        EBLCIO_CHECK_STREAM(ncodes == hdr.num_elements(),
                            "composed: code count mismatch");
        const auto mode_bits = read_sized(r);
        const auto coeffs_bytes = read_sized(r);
        const auto unpred_bytes = read_sized(r);
        const auto codes = decode_codes_checked(r, config_.encoder);
        EBLCIO_CHECK_STREAM(codes.size() == ncodes,
                            "composed: code count mismatch");
        ByteReader coeffs(coeffs_bytes);
        ByteReader unpred(unpred_bytes);
        return block_decompress(hdr, block_predictor_for(config_.predictor),
                                config_.quantizer, quant_param, codes,
                                mode_bits, coeffs, unpred);
      });
}

}  // namespace eblcio
