// Multi-level multidimensional interpolation engine shared by SZ3 and QoZ.
//
// Implements the SZ3 prediction scheme (Zhao et al., ICDE'21): values on a
// coarse power-of-two anchor grid are stored exactly; each refinement level
// halves the stride, predicting the new grid points by cubic (or linear)
// spline interpolation along one dimension at a time from already-
// reconstructed neighbours, then quantizing the residual. QoZ reuses the
// same engine with per-level error-bound tuning and a denser anchor grid.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/field.h"
#include "compressors/components.h"
#include "compressors/compressor.h"

namespace eblcio {

struct InterpConfig {
  // Anchor-grid stride (power of two). 0 = auto: smallest power of two
  // >= every dimension (a single anchor when dims are powers of two).
  std::size_t anchor_stride = 0;
  // Per-level error-bound multiplier: eb(level) = abs_eb * pow(level_gamma,
  // level - 1) with gamma <= 1 tightening coarse levels (QoZ); 1.0 = SZ3.
  double level_gamma = 1.0;
  // Cubic (4-point) vs linear (2-point) interpolation.
  bool cubic = true;
  // Quantizer component for the residual stage. The default reproduces
  // the legacy SZ3/QoZ pipeline exactly; the composed framework selects
  // others. NOT serialized by interp_payload_encode (the legacy SZ3/QoZ
  // payload is frozen) — composed blobs carry these in their own payload.
  QuantizerId quantizer = QuantizerId::kLinearRecip;
  double quant_param = 0.0;  // field-dependent parameter (log: peak |x|)
};

struct InterpEncoding {
  std::vector<std::uint32_t> codes;  // quantization codes, traversal order
  Bytes anchors;                      // exact anchor values (raw T)
  Bytes unpred;                       // exact unpredictable values (raw T)
  std::uint32_t alphabet_size = 0;
};

// Compresses one field (or slab); deterministic traversal so decompression
// can mirror it from (dims, abs_eb, config) alone.
InterpEncoding interp_compress(const Field& field, double abs_eb,
                               const InterpConfig& config);

// Reconstructs a field from an InterpEncoding produced with identical
// (dims, abs_eb, config).
Field interp_decompress(const BlobHeader& header, const InterpConfig& config,
                        std::span<const std::uint32_t> codes,
                        std::span<const std::byte> anchors,
                        std::span<const std::byte> unpred);

// Serialization helpers shared by SZ3 and QoZ: payload =
//   [config] [ncodes] [anchors] [unpred] [code stream backend blob].
Bytes interp_payload_encode(const InterpConfig& config,
                            const InterpEncoding& enc);
struct InterpPayload {
  InterpConfig config;
  std::vector<std::uint32_t> codes;
  std::span<const std::byte> anchors;
  std::span<const std::byte> unpred;
};
InterpPayload interp_payload_decode(std::span<const std::byte> payload);

}  // namespace eblcio
