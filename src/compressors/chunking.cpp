#include "compressors/chunking.h"

#include <algorithm>
#include <cstring>

#include "common/buffer_pool.h"
#include "common/error.h"
#include "parallel/executor.h"

namespace eblcio {
namespace {

template <typename T>
std::vector<Field> split_impl(const Field& field, int nchunks) {
  const NdArray<T>& arr = field.as<T>();
  const Shape& shape = arr.shape();
  const std::size_t d0 = shape.dim(0);
  const int chunks = static_cast<int>(
      std::min<std::size_t>(d0, static_cast<std::size_t>(nchunks)));
  const std::size_t row_elems = shape.num_elements() / d0;

  std::vector<Field> out;
  out.reserve(chunks);
  std::size_t start = 0;
  for (int c = 0; c < chunks; ++c) {
    const std::size_t rows = slab_rows(d0, chunks, c);
    std::vector<std::size_t> dims = shape.dims_vector();
    dims[0] = rows;
    NdArray<T> slab(Shape{std::span<const std::size_t>(dims)});
    std::memcpy(slab.data(), arr.data() + start * row_elems,
                rows * row_elems * sizeof(T));
    out.emplace_back(field.name(), std::move(slab));
    start += rows;
  }
  return out;
}

template <typename T>
Field merge_impl(const std::vector<Field>& slabs,
                 const std::vector<std::size_t>& dims,
                 const std::string& name) {
  NdArray<T> arr(Shape{std::span<const std::size_t>(dims)});
  std::size_t offset = 0;
  for (const Field& slab : slabs) {
    const NdArray<T>& s = slab.as<T>();
    std::memcpy(arr.data() + offset, s.data(), s.num_elements() * sizeof(T));
    offset += s.num_elements();
  }
  EBLCIO_CHECK(offset == arr.num_elements(), "slab merge size mismatch");
  return Field(name, std::move(arr));
}

}  // namespace

std::size_t slab_rows(std::size_t d0, int nchunks, int c) {
  return d0 / nchunks +
         (static_cast<std::size_t>(c) < d0 % nchunks ? 1 : 0);
}

std::vector<Field> split_slabs(const Field& field, int nchunks) {
  EBLCIO_CHECK_ARG(nchunks >= 1, "chunk count must be positive");
  if (field.dtype() == DType::kFloat32)
    return split_impl<float>(field, nchunks);
  return split_impl<double>(field, nchunks);
}

Field merge_slabs(const std::vector<Field>& slabs,
                  const std::vector<std::size_t>& dims,
                  const std::string& name) {
  EBLCIO_CHECK_ARG(!slabs.empty(), "no slabs to merge");
  if (slabs[0].dtype() == DType::kFloat32)
    return merge_impl<float>(slabs, dims, name);
  return merge_impl<double>(slabs, dims, name);
}

Bytes compress_chunked(const BlobHeader& header, const Field& field,
                       const CompressOptions& opt,
                       const PayloadCompressFn& kernel) {
  Bytes out;
  header.encode(out);

  if (opt.threads <= 1 || field.shape().dim(0) < 2) {
    append_pod<std::uint8_t>(out, kLayoutSingle);
    Bytes payload = kernel(field, header, opt);
    append_pod<std::uint64_t>(out, payload.size());
    append_bytes(out, payload);
    return out;
  }

  auto slabs = split_slabs(field, opt.threads);
  std::vector<Bytes> blobs(slabs.size());
  CompressOptions serial_opt = opt;
  serial_opt.threads = 1;
  // parallel_for's deterministic block->pod mapping places slab i's
  // compress task on the pod that owns slab i's buffers.
  Executor& ex = opt.executor ? *opt.executor : Executor::global();
  parallel_for(slabs.size(), opt.threads, [&](std::size_t i) {
    BlobHeader slab_header = header;
    slab_header.dims = slabs[i].shape().dims_vector();
    blobs[i] = kernel(slabs[i], slab_header, serial_opt);
  }, ex);

  append_pod<std::uint8_t>(out, kLayoutChunked);
  append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(blobs.size()));
  for (const Bytes& b : blobs) append_pod<std::uint64_t>(out, b.size());
  for (Bytes& b : blobs) {
    append_bytes(out, b);
    // Per-slab payloads are copied into the framed container; recycle
    // their allocations for the next chunked compression.
    BufferPool::global().release(std::move(b));
  }
  return out;
}

Field decompress_chunked(std::span<const std::byte> blob, int threads,
                         const PayloadDecompressFn& kernel) {
  ByteReader r(blob);
  const BlobHeader header = BlobHeader::decode(r);
  const auto layout = r.read_pod<std::uint8_t>();

  if (layout == kLayoutSingle) {
    const auto size = r.read_pod<std::uint64_t>();
    return kernel(header, r.read_bytes(size));
  }
  EBLCIO_CHECK_STREAM(layout == kLayoutChunked, "bad payload layout tag");

  const auto nchunks = r.read_pod<std::uint32_t>();
  EBLCIO_CHECK_STREAM(nchunks >= 1, "empty chunk table");
  std::vector<std::uint64_t> sizes(nchunks);
  for (auto& s : sizes) s = r.read_pod<std::uint64_t>();
  std::vector<std::span<const std::byte>> spans(nchunks);
  for (std::uint32_t i = 0; i < nchunks; ++i)
    spans[i] = r.read_bytes(sizes[i]);

  std::vector<Field> slabs(nchunks);
  parallel_for(nchunks, std::max(threads, 1), [&](std::size_t i) {
    BlobHeader slab_header = header;
    slab_header.dims[0] =
        slab_rows(header.dims[0], nchunks, static_cast<int>(i));
    slabs[i] = kernel(slab_header, spans[i]);
  });

  return merge_slabs(slabs, header.dims, header.codec);
}

}  // namespace eblcio
