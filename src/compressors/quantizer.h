// Linear-scale quantizer shared by the SZ-family compressors (SZ2, SZ3,
// QoZ). Identical in spirit to SZ's error-controlled quantizer: prediction
// residuals are mapped to integer codes on a 2*eb grid; residuals outside
// the code capacity (or failing the round-trip check) are flagged
// "unpredictable" and stored exactly.
//
// The round-trip check is performed against the value *after casting to the
// field's storage type*: the decompressed field holds T, and for bounds
// near T's precision the cast itself would otherwise push the error past
// the bound.
#pragma once

#include <cmath>
#include <cstdint>

namespace eblcio {

class LinearQuantizer {
 public:
  // `abs_eb` is the absolute per-element error bound; `radius` gives code
  // capacity 2*radius (SZ uses 32768 by default -> 65536-entry alphabet).
  explicit LinearQuantizer(double abs_eb, std::uint32_t radius = 32768)
      : eb_(abs_eb),
        eb2_(2.0 * abs_eb),
        inv_eb2_(eb2_ > 0.0 ? 1.0 / eb2_ : 0.0),
        radius_(radius) {}

  std::uint32_t radius() const { return radius_; }
  // Alphabet size for the entropy stage: code 0 = unpredictable.
  std::uint32_t alphabet_size() const { return 2 * radius_ + 1; }
  double abs_eb() const { return eb_; }

  // Quantizes `value` against `pred` for a field stored as T. On success
  // returns a nonzero code and sets *recon to the exact value the
  // decompressor will materialize (T-cast, then widened); guaranteed
  // |*recon - value| <= eb. Returns 0 if unquantizable; the caller stores
  // the value exactly.
  template <typename T>
  std::uint32_t quantize(double value, double pred, double* recon) const {
    const double diff = value - pred;
    if (eb2_ <= 0.0) {
      // Degenerate bound (constant field under a relative bound): only an
      // exact prediction is codable.
      if (diff == 0.0) {
        *recon = value;
        return radius_;
      }
      return 0;
    }
    // Reciprocal multiply instead of a divide: ~15 cycles off the
    // prediction-feedback dependency chain. The (at most 1-ulp) difference
    // in qf can only shift the chosen q where llround sat within an ulp of
    // a half-integer — and any q is validated by the cast-value round-trip
    // check below, so the error bound holds regardless. Decoding is
    // unaffected: recover() never uses the reciprocal.
    const double qf = diff * inv_eb2_;
    if (!(std::fabs(qf) < static_cast<double>(radius_) - 1)) return 0;
    const auto q = static_cast<std::int64_t>(std::llround(qf));
    const T cast = static_cast<T>(pred + static_cast<double>(q) * eb2_);
    if (std::fabs(static_cast<double>(cast) - value) > eb_) return 0;
    *recon = static_cast<double>(cast);
    return static_cast<std::uint32_t>(q + static_cast<std::int64_t>(radius_));
  }

  // Inverse mapping for a nonzero code; the caller casts the result to T
  // and must track the cast value in its reconstruction state (mirroring
  // what quantize() verified).
  double recover(double pred, std::uint32_t code) const {
    const auto q = static_cast<std::int64_t>(code) -
                   static_cast<std::int64_t>(radius_);
    return pred + static_cast<double>(q) * eb2_;
  }

 private:
  double eb_;
  double eb2_;
  double inv_eb2_;
  std::uint32_t radius_;
};

}  // namespace eblcio
