// Linear-scale quantizer shared by the SZ-family compressors (SZ2, SZ3,
// QoZ). Identical in spirit to SZ's error-controlled quantizer: prediction
// residuals are mapped to integer codes on a 2*eb grid; residuals outside
// the code capacity (or failing the round-trip check) are flagged
// "unpredictable" and stored exactly.
//
// The round-trip check is performed against the value *after casting to the
// field's storage type*: the decompressed field holds T, and for bounds
// near T's precision the cast itself would otherwise push the error past
// the bound.
#pragma once

#include <cmath>
#include <cstdint>

namespace eblcio {

// Branch-free round-to-nearest with halves away from zero — bit-exact with
// std::llround for |x| < 2^51 (proven against llround over adversarial tie
// and ulp-neighbour inputs in test_quantizer), but inlineable and
// auto-vectorizable: no libm call, and both fixups compile to selects. The
// magic add/sub snaps x to the nearest-even integer exactly; d = x - y is
// then exact, so the only inputs nearest-even and llround disagree on —
// exact .5 ties — are detected and bumped away from zero.
inline double round_half_away(double x) {
  constexpr double kMagic = 6755399441055744.0;  // 1.5 * 2^52
  const double y = (x + kMagic) - kMagic;
  const double d = x - y;
  const double up = (d == 0.5) & (x > 0.0) ? 1.0 : 0.0;
  const double dn = (d == -0.5) & (x < 0.0) ? 1.0 : 0.0;
  return (y + up) - dn;
}

class LinearQuantizer {
 public:
  // `abs_eb` is the absolute per-element error bound; `radius` gives code
  // capacity 2*radius (SZ uses 32768 by default -> 65536-entry alphabet).
  explicit LinearQuantizer(double abs_eb, std::uint32_t radius = 32768)
      : eb_(abs_eb),
        eb2_(2.0 * abs_eb),
        inv_eb2_(eb2_ > 0.0 ? 1.0 / eb2_ : 0.0),
        radius_(radius) {}

  std::uint32_t radius() const { return radius_; }
  // Alphabet size for the entropy stage: code 0 = unpredictable.
  std::uint32_t alphabet_size() const { return 2 * radius_ + 1; }
  double abs_eb() const { return eb_; }

  // Quantizes `value` against `pred` for a field stored as T. On success
  // returns a nonzero code and sets *recon to the exact value the
  // decompressor will materialize (T-cast, then widened); guaranteed
  // |*recon - value| <= eb. Returns 0 if unquantizable; the caller stores
  // the value exactly.
  template <typename T>
  std::uint32_t quantize(double value, double pred, double* recon) const {
    const double diff = value - pred;
    if (eb2_ <= 0.0) {
      // Degenerate bound (constant field under a relative bound): only an
      // exact prediction is codable.
      if (diff == 0.0) {
        *recon = value;
        return radius_;
      }
      return 0;
    }
    // Reciprocal multiply instead of a divide: ~15 cycles off the
    // prediction-feedback dependency chain. The (at most 1-ulp) difference
    // in qf can only shift the chosen q where llround sat within an ulp of
    // a half-integer — and any q is validated by the cast-value round-trip
    // check below, so the error bound holds regardless. Decoding is
    // unaffected: recover() never uses the reciprocal.
    const double qf = diff * inv_eb2_;
    if (!(std::fabs(qf) < static_cast<double>(radius_) - 1)) return 0;
    const auto q = static_cast<std::int64_t>(round_half_away(qf));
    const T cast = static_cast<T>(pred + static_cast<double>(q) * eb2_);
    if (std::fabs(static_cast<double>(cast) - value) > eb_) return 0;
    *recon = static_cast<double>(cast);
    return static_cast<std::uint32_t>(q + static_cast<std::int64_t>(radius_));
  }

  // Batch quantization of a regression-predicted row: pred_k = row0 +
  // slope*k. Regression rows have no reconstruction feedback (unlike
  // Lorenzo), so the loop is stride-1 and branch-free — written for the
  // auto-vectorizer. Writes codes[k] and recon[k]; a code-0 slot leaves
  // recon[k] = data[k] (exactly what the decompressor's unpredictable
  // path materializes) and the caller appends data[k] to its
  // unpredictable stream. Bit-identical to calling quantize<T>(data[k],
  // row0 + slope*k, ...) per element: round_half_away is the rounding
  // used there, and every other operation is the same expression.
  template <typename T>
  void quantize_row(const T* data, std::size_t n, double row0, double slope,
                    std::uint32_t* codes, T* recon) const {
    if (eb2_ <= 0.0) {  // degenerate bound: per-element scalar fallback
      for (std::size_t k = 0; k < n; ++k) {
        const double x = static_cast<double>(data[k]);
        double r = x;
        codes[k] = quantize<T>(x, row0 + slope * static_cast<double>(k), &r);
        recon[k] = static_cast<T>(r);
      }
      return;
    }
    const double rad_guard = static_cast<double>(radius_) - 1;
    // int32 induction: signed int->double is the one conversion SSE2
    // vectorizes (u64->double lowers to a branchy sequence that blocks
    // the vectorizer). Rows are dimension extents, far below 2^31.
    const auto ni = static_cast<std::int32_t>(n);
    for (std::int32_t k = 0; k < ni; ++k) {
      const double x = static_cast<double>(data[k]);
      const double pred = row0 + slope * static_cast<double>(k);
      const double qf = (x - pred) * inv_eb2_;
      // The select to 0.0 keeps the int conversion below defined even for
      // wildly out-of-range qf (scalar quantize() never reaches it); the
      // bitwise & (not &&) keeps the body branch-free for the vectorizer.
      const bool in_range = std::fabs(qf) < rad_guard;
      const double qd = round_half_away(in_range ? qf : 0.0);
      const T cast = static_cast<T>(pred + qd * eb2_);
      const bool ok =
          in_range & (std::fabs(static_cast<double>(cast) - x) <= eb_);
      codes[k] = ok ? static_cast<std::uint32_t>(
                          static_cast<std::int32_t>(qd) +
                          static_cast<std::int32_t>(radius_))
                    : 0u;
      recon[k] = ok ? cast : data[k];
    }
  }

  // Batch recovery of a regression-predicted row. Code-0 slots get a
  // finite garbage value the caller overwrites from its unpredictable
  // stream; nonzero slots are bit-identical to static_cast<T>(
  // recover(row0 + slope*k, code)).
  template <typename T>
  void recover_row(const std::uint32_t* codes, std::size_t n, double row0,
                   double slope, T* out) const {
    const double rad = static_cast<double>(radius_);
    const auto ni = static_cast<std::int32_t>(n);  // see quantize_row
    for (std::int32_t k = 0; k < ni; ++k) {
      const double pred = row0 + slope * static_cast<double>(k);
      // Codes are < 2^17, so the int32 detour is exact — and signed
      // int->double is the conversion SSE2 vectorizes.
      const double q =
          static_cast<double>(static_cast<std::int32_t>(codes[k])) - rad;
      out[k] = static_cast<T>(pred + q * eb2_);
    }
  }

  // Inverse mapping for a nonzero code; the caller casts the result to T
  // and must track the cast value in its reconstruction state (mirroring
  // what quantize() verified).
  double recover(double pred, std::uint32_t code) const {
    const auto q = static_cast<std::int64_t>(code) -
                   static_cast<std::int64_t>(radius_);
    return pred + static_cast<double>(q) * eb2_;
  }

 private:
  double eb_;
  double eb2_;
  double inv_eb2_;
  std::uint32_t radius_;
};

}  // namespace eblcio
