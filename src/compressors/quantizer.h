// Quantization components shared by the SZ-family compressors and the
// composable codec framework (compressors/composed.h):
//
//  * LinearQuantizer     — reciprocal-multiply linear quantizer (the SZ2/
//                          SZ3/QoZ production path), tie-corrected so its
//                          code choices are bit-identical to an exact
//                          division at half-integer ties;
//  * DivLinearQuantizer  — the same error-controlled linear quantizer with
//                          a correctly-rounded divide on the hot path (the
//                          textbook formulation; differential referee for
//                          LinearQuantizer);
//  * LogQuantizer        — sign-symmetric log-domain quantizer: residuals
//                          quantized on a uniform grid over
//                          t(x) = sgn(x)·log1p(|x|), validated against the
//                          absolute bound in the original domain.
//
// All three share one contract, which is what makes them pluggable behind
// the block/interp prediction kernels: prediction residuals map to integer
// codes on a 2*eb grid; residuals outside the code capacity (or failing
// the round-trip check) are flagged "unpredictable" (code 0) and stored
// exactly by the caller.
//
// The round-trip check is performed against the value *after casting to the
// field's storage type*: the decompressed field holds T, and for bounds
// near T's precision the cast itself would otherwise push the error past
// the bound.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace eblcio {

// Magic constant for the add/sub round-to-nearest-even snap: 1.5 * 2^52.
inline constexpr double kRoundMagic = 6755399441055744.0;

// Branch-free round-to-nearest with halves away from zero — bit-exact with
// std::llround for |x| < 2^51, but inlineable and auto-vectorizable: no
// libm call, and both fixups compile to selects. The magic add/sub snaps x
// to the nearest-even integer exactly; d = x - y is then exact, so the
// only inputs nearest-even and llround disagree on — exact .5 ties — are
// detected and bumped away from zero.
inline double round_half_away(double x) {
  const double y = (x + kRoundMagic) - kRoundMagic;
  const double d = x - y;
  const double up = (d == 0.5) & (x > 0.0) ? 1.0 : 0.0;
  const double dn = (d == -0.5) & (x < 0.0) ? 1.0 : 0.0;
  return (y + up) - dn;
}

// Half-integer tie zone test for a reciprocal-multiply quotient. d is the
// distance from qf to its nearest-even snap (|d| <= 0.5); the zone is
// |qf| within 2^-48·max(1,|qf|) of a half-integer — orders of magnitude
// wider than the <= 2-ulp error of a reciprocal multiply, yet still
// vanishingly rare on real residual streams.
inline bool near_half_tie(double qf, double d) {
  return std::fabs(std::fabs(d) - 0.5) <=
         0x1p-48 * std::max(1.0, std::fabs(qf));
}

// Rounds the quotient diff/eb2 given its reciprocal-multiply approximation
// qf = diff * (1/eb2), halves away from zero — and, unlike a plain
// round_half_away(qf), always yields the SAME integer the correctly-
// rounded division would: inside the (rare) tie zone, where the <= 2-ulp
// reciprocal error is the difference between rounding up and down, the
// quotient is recomputed with an exact divide and that value decides.
// Outside the zone the nearest-even snap is already the right integer.
// This is the fix for the documented reciprocal-multiply ulp edge case:
// every quantizer that rounds a reciprocal-multiply quotient routes
// through here, so composed and legacy paths emit the same code at
// half-integer ties (regression-locked in tests/test_composed.cpp).
inline double round_quotient_half_away(double qf, double diff, double eb2) {
  const double y = (qf + kRoundMagic) - kRoundMagic;
  const double d = qf - y;
  if (near_half_tie(qf, d)) [[unlikely]]
    return round_half_away(diff / eb2);
  return y;
}

class LinearQuantizer {
 public:
  // `abs_eb` is the absolute per-element error bound; `radius` gives code
  // capacity 2*radius (SZ uses 32768 by default -> 65536-entry alphabet).
  explicit LinearQuantizer(double abs_eb, std::uint32_t radius = 32768)
      : eb_(abs_eb),
        eb2_(2.0 * abs_eb),
        inv_eb2_(eb2_ > 0.0 ? 1.0 / eb2_ : 0.0),
        radius_(radius) {}

  std::uint32_t radius() const { return radius_; }
  // Alphabet size for the entropy stage: code 0 = unpredictable.
  std::uint32_t alphabet_size() const { return 2 * radius_ + 1; }
  double abs_eb() const { return eb_; }

  // Quantizes `value` against `pred` for a field stored as T. On success
  // returns a nonzero code and sets *recon to the exact value the
  // decompressor will materialize (T-cast, then widened); guaranteed
  // |*recon - value| <= eb. Returns 0 if unquantizable; the caller stores
  // the value exactly.
  template <typename T>
  std::uint32_t quantize(double value, double pred, double* recon) const {
    const double diff = value - pred;
    if (eb2_ <= 0.0) {
      // Degenerate bound (constant field under a relative bound): only an
      // exact prediction is codable.
      if (diff == 0.0) {
        *recon = value;
        return radius_;
      }
      return 0;
    }
    // Reciprocal multiply instead of a divide: ~15 cycles off the
    // prediction-feedback dependency chain. The (at most ~2-ulp)
    // difference in qf could only shift the chosen q where qf sits within
    // an ulp of a half-integer — and round_quotient_half_away detects
    // exactly that zone and re-derives the quotient with an exact divide,
    // so the emitted code always matches the division semantics. Decoding
    // is unaffected: recover() never uses the reciprocal.
    const double qf = diff * inv_eb2_;
    if (!(std::fabs(qf) < static_cast<double>(radius_) - 1)) return 0;
    // qd is an exact integer below 2^17, so using it directly (instead of
    // an int64 round-trip) in the reconstruction is bit-identical — and
    // keeps two conversions off the prediction-feedback dependency chain
    // that serializes the Lorenzo sweep; the integer cast happens once,
    // for the emitted code, off that chain.
    const double qd = round_quotient_half_away(qf, diff, eb2_);
    const T cast = static_cast<T>(pred + qd * eb2_);
    if (std::fabs(static_cast<double>(cast) - value) > eb_) return 0;
    *recon = static_cast<double>(cast);
    return static_cast<std::uint32_t>(static_cast<std::int64_t>(qd) +
                                      static_cast<std::int64_t>(radius_));
  }

  // Batch quantization of a regression-predicted row: pred_k = row0 +
  // slope*k. Regression rows have no reconstruction feedback (unlike
  // Lorenzo), so the loop is stride-1 and branch-free — written for the
  // auto-vectorizer. Writes codes[k] and recon[k]; a code-0 slot leaves
  // recon[k] = data[k] (exactly what the decompressor's unpredictable
  // path materializes) and the caller appends data[k] to its
  // unpredictable stream. Bit-identical to calling quantize<T>(data[k],
  // row0 + slope*k, ...) per element: the vector pass accumulates a
  // half-tie flag with the same detector the scalar path uses, and any
  // row that trips it (vanishingly rare) is redone element-by-element
  // through quantize<T>.
  template <typename T>
  void quantize_row(const T* data, std::size_t n, double row0, double slope,
                    std::uint32_t* codes, T* recon) const {
    if (eb2_ <= 0.0) {  // degenerate bound: per-element scalar fallback
      quantize_row_scalar(data, n, row0, slope, codes, recon);
      return;
    }
    const double rad_guard = static_cast<double>(radius_) - 1;
    // Chunked two-pass formulation. The fused single loop mixes double
    // arithmetic with T/u32 narrowing stores in one body, which GCC 12
    // refuses to vectorize as a whole; splitting it at the type boundary
    // leaves pass A all-double (quantize + round + tie detect into stack
    // buffers) and pass B all-narrowing (T cast, bound check, code/recon
    // stores), and each pass vectorizes on its own. The chunk keeps the
    // buffers in L1. Every element goes through the same operations in
    // the same order as the fused loop did, so the pass split cannot
    // change a single emitted bit.
    constexpr std::int32_t kChunk = 128;
    double xb[kChunk];     // widened inputs
    double predb[kChunk];  // regression predictions
    double qdb[kChunk];    // rounded quotients (0.0 when out of range)
    double inrb[kChunk];   // in-range flag as 1.0/0.0
    double tieb[kChunk];   // half-tie flag as 1.0/0.0
    // int32 induction: signed int->double is the one conversion SSE2
    // vectorizes (u64->double lowers to a branchy sequence that blocks
    // the vectorizer). Rows are dimension extents, far below 2^31.
    const auto ni = static_cast<std::int32_t>(n);
    std::int32_t any_tie = 0;
    for (std::int32_t base = 0; base < ni; base += kChunk) {
      const std::int32_t len = std::min(kChunk, ni - base);
      // Pass A: pure double. The select to 0.0 keeps pass B's int
      // conversion defined even for wildly out-of-range qf (scalar
      // quantize() never reaches it); the bitwise & (not &&) keeps the
      // body branch-free for the vectorizer. round_half_away is inlined
      // with its snap distance exposed, so the half-tie detector shares
      // the add/sub with the rounding itself.
      for (std::int32_t k = 0; k < len; ++k) {
        const double x = static_cast<double>(data[base + k]);
        const double pred = row0 + slope * static_cast<double>(base + k);
        const double qf = (x - pred) * inv_eb2_;
        const bool in_range = std::fabs(qf) < rad_guard;
        const double qc = in_range ? qf : 0.0;
        const double y = (qc + kRoundMagic) - kRoundMagic;
        const double dd = qc - y;
        const double up = (dd == 0.5) & (qc > 0.0) ? 1.0 : 0.0;
        const double dn = (dd == -0.5) & (qc < 0.0) ? 1.0 : 0.0;
        xb[k] = x;
        predb[k] = pred;
        qdb[k] = (y + up) - dn;
        inrb[k] = in_range ? 1.0 : 0.0;
        tieb[k] = near_half_tie(qc, dd) ? 1.0 : 0.0;
      }
      // Pass B: narrowing. T cast, original-domain bound check, and the
      // u32/T stores — the same expressions the fused body evaluated on
      // the same pass-A values.
      for (std::int32_t k = 0; k < len; ++k) {
        const T cast = static_cast<T>(predb[k] + qdb[k] * eb2_);
        const bool ok =
            (inrb[k] != 0.0) &
            (std::fabs(static_cast<double>(cast) - xb[k]) <= eb_);
        codes[base + k] = ok ? static_cast<std::uint32_t>(
                                   static_cast<std::int32_t>(qdb[k]) +
                                   static_cast<std::int32_t>(radius_))
                             : 0u;
        recon[base + k] = ok ? cast : data[base + k];
        any_tie |= static_cast<std::int32_t>(tieb[k] != 0.0);
      }
    }
    // A row that grazed a half-integer tie re-runs through the scalar
    // path, whose round_quotient_half_away settles the tie with an exact
    // divide — keeping the batch path bit-identical to the scalar one.
    if (any_tie) [[unlikely]]
      quantize_row_scalar(data, n, row0, slope, codes, recon);
  }

  // Batch recovery of a regression-predicted row. Code-0 slots get a
  // finite garbage value the caller overwrites from its unpredictable
  // stream; nonzero slots are bit-identical to static_cast<T>(
  // recover(row0 + slope*k, code)).
  template <typename T>
  void recover_row(const std::uint32_t* codes, std::size_t n, double row0,
                   double slope, T* out) const {
    const double rad = static_cast<double>(radius_);
    const auto ni = static_cast<std::int32_t>(n);  // see quantize_row
    for (std::int32_t k = 0; k < ni; ++k) {
      const double pred = row0 + slope * static_cast<double>(k);
      // Codes are < 2^17, so the int32 detour is exact — and signed
      // int->double is the conversion SSE2 vectorizes.
      const double q =
          static_cast<double>(static_cast<std::int32_t>(codes[k])) - rad;
      out[k] = static_cast<T>(pred + q * eb2_);
    }
  }

  // Inverse mapping for a nonzero code; the caller casts the result to T
  // and must track the cast value in its reconstruction state (mirroring
  // what quantize() verified).
  double recover(double pred, std::uint32_t code) const {
    const auto q = static_cast<std::int64_t>(code) -
                   static_cast<std::int64_t>(radius_);
    return pred + static_cast<double>(q) * eb2_;
  }

 private:
  template <typename T>
  void quantize_row_scalar(const T* data, std::size_t n, double row0,
                           double slope, std::uint32_t* codes,
                           T* recon) const {
    for (std::size_t k = 0; k < n; ++k) {
      const double x = static_cast<double>(data[k]);
      double r = x;
      codes[k] = quantize<T>(x, row0 + slope * static_cast<double>(k), &r);
      recon[k] = static_cast<T>(r);
    }
  }

  double eb_;
  double eb2_;
  double inv_eb2_;
  std::uint32_t radius_;
};

// The same error-controlled linear quantizer with a correctly-rounded
// divide on the hot path — the textbook formulation of the SZ quantizer.
// With LinearQuantizer's half-tie correction the two emit identical codes
// on every input whose quotient is not within an ulp of the radius guard,
// which makes this the differential referee for the production reciprocal
// path (asserted over random fields in tests/test_composed.cpp).
class DivLinearQuantizer {
 public:
  explicit DivLinearQuantizer(double abs_eb, std::uint32_t radius = 32768)
      : eb_(abs_eb), eb2_(2.0 * abs_eb), radius_(radius) {}

  std::uint32_t radius() const { return radius_; }
  std::uint32_t alphabet_size() const { return 2 * radius_ + 1; }
  double abs_eb() const { return eb_; }

  template <typename T>
  std::uint32_t quantize(double value, double pred, double* recon) const {
    const double diff = value - pred;
    if (eb2_ <= 0.0) {
      if (diff == 0.0) {
        *recon = value;
        return radius_;
      }
      return 0;
    }
    const double qf = diff / eb2_;
    if (!(std::fabs(qf) < static_cast<double>(radius_) - 1)) return 0;
    const auto q = static_cast<std::int64_t>(round_half_away(qf));
    const T cast = static_cast<T>(pred + static_cast<double>(q) * eb2_);
    if (std::fabs(static_cast<double>(cast) - value) > eb_) return 0;
    *recon = static_cast<double>(cast);
    return static_cast<std::uint32_t>(q + static_cast<std::int64_t>(radius_));
  }

  template <typename T>
  void quantize_row(const T* data, std::size_t n, double row0, double slope,
                    std::uint32_t* codes, T* recon) const {
    for (std::size_t k = 0; k < n; ++k) {
      const double x = static_cast<double>(data[k]);
      double r = x;
      codes[k] = quantize<T>(x, row0 + slope * static_cast<double>(k), &r);
      recon[k] = static_cast<T>(r);
    }
  }

  template <typename T>
  void recover_row(const std::uint32_t* codes, std::size_t n, double row0,
                   double slope, T* out) const {
    // Identical expression to LinearQuantizer::recover_row — decode never
    // divides, so the two linear quantizers share one inverse mapping.
    const double rad = static_cast<double>(radius_);
    const auto ni = static_cast<std::int32_t>(n);
    for (std::int32_t k = 0; k < ni; ++k) {
      const double pred = row0 + slope * static_cast<double>(k);
      const double q =
          static_cast<double>(static_cast<std::int32_t>(codes[k])) - rad;
      out[k] = static_cast<T>(pred + q * eb2_);
    }
  }

  double recover(double pred, std::uint32_t code) const {
    const auto q = static_cast<std::int64_t>(code) -
                   static_cast<std::int64_t>(radius_);
    return pred + static_cast<double>(q) * eb2_;
  }

 private:
  double eb_;
  double eb2_;
  std::uint32_t radius_;
};

// Sign-symmetric log-domain quantizer: residuals are quantized on a
// uniform grid over t(x) = sgn(x)·log1p(|x|) (a monotone bijection of the
// whole real line, so negative and zero values need no special casing).
// The t-domain half-step is log1p(abs_eb / (1 + vmax)) — by the mean value
// theorem a t-domain error of that size maps to at most ~abs_eb in the
// original domain for |x| <= vmax — and every emitted code is still
// validated against the absolute bound on the original-domain T-cast, so
// the per-element guarantee never rests on the analytic argument alone.
// `vmax` (the field's peak magnitude) travels in the composed payload as
// the quantizer parameter, making blobs self-describing.
class LogQuantizer {
 public:
  LogQuantizer(double abs_eb, double vmax, std::uint32_t radius = 32768)
      : eb_(abs_eb), radius_(radius) {
    const double half =
        abs_eb > 0.0 ? std::log1p(abs_eb / (1.0 + std::fabs(vmax))) : 0.0;
    eb2t_ = 2.0 * half;
  }

  std::uint32_t radius() const { return radius_; }
  std::uint32_t alphabet_size() const { return 2 * radius_ + 1; }
  double abs_eb() const { return eb_; }

  template <typename T>
  std::uint32_t quantize(double value, double pred, double* recon) const {
    if (eb2t_ <= 0.0) {
      if (value - pred == 0.0) {
        *recon = value;
        return radius_;
      }
      return 0;
    }
    const double tp = fwd(pred);
    const double qf = (fwd(value) - tp) / eb2t_;
    if (!(std::fabs(qf) < static_cast<double>(radius_) - 1)) return 0;
    const auto q = static_cast<std::int64_t>(round_half_away(qf));
    const T cast =
        static_cast<T>(inv(tp + static_cast<double>(q) * eb2t_));
    // Negated comparison so a NaN cast (from non-finite inputs) also
    // falls to the unpredictable path.
    if (!(std::fabs(static_cast<double>(cast) - value) <= eb_)) return 0;
    *recon = static_cast<double>(cast);
    return static_cast<std::uint32_t>(q + static_cast<std::int64_t>(radius_));
  }

  template <typename T>
  void quantize_row(const T* data, std::size_t n, double row0, double slope,
                    std::uint32_t* codes, T* recon) const {
    for (std::size_t k = 0; k < n; ++k) {
      const double x = static_cast<double>(data[k]);
      double r = x;
      codes[k] = quantize<T>(x, row0 + slope * static_cast<double>(k), &r);
      recon[k] = static_cast<T>(r);
    }
  }

  template <typename T>
  void recover_row(const std::uint32_t* codes, std::size_t n, double row0,
                   double slope, T* out) const {
    for (std::size_t k = 0; k < n; ++k) {
      // Code-0 slots are overwritten by the caller from the unpredictable
      // stream; skip them so the placeholder stays a benign constant
      // rather than an exp of an extreme argument.
      out[k] = codes[k]
                   ? static_cast<T>(recover(
                         row0 + slope * static_cast<double>(k), codes[k]))
                   : T{0};
    }
  }

  double recover(double pred, std::uint32_t code) const {
    const auto q = static_cast<std::int64_t>(code) -
                   static_cast<std::int64_t>(radius_);
    return inv(fwd(pred) + static_cast<double>(q) * eb2t_);
  }

 private:
  static double fwd(double x) {
    return x < 0.0 ? -std::log1p(-x) : std::log1p(x);
  }
  static double inv(double t) {
    // |t| <= 60 keeps expm1 finite (~1.1e26, within float range) so the
    // caller's T-cast stays defined even for corrupt code streams; values
    // whose transform exceeds the clamp fail quantize()'s original-domain
    // check and are stored exactly instead.
    const double c = std::clamp(t, -60.0, 60.0);
    return c < 0.0 ? -std::expm1(-c) : std::expm1(c);
  }

  double eb_;
  double eb2t_ = 0.0;
  std::uint32_t radius_;
};

}  // namespace eblcio
