// fpzip-class lossless floating-point baseline (Lindstrom & Isenburg,
// TVCG'06): k-d Lorenzo prediction in a monotonic integer mapping of the
// IEEE bit patterns, with residuals coded as (bit-length class, raw bits).
#pragma once

#include "compressors/compressor.h"

namespace eblcio {

class FpzipLikeCompressor : public Compressor {
 public:
  std::string name() const override { return "fpzip"; }
  CompressorCaps caps() const override {
    CompressorCaps c;
    c.lossless = true;
    return c;
  }

  Bytes compress(const Field& field, const CompressOptions& opt) override;
  Field decompress(std::span<const std::byte> blob, int threads) override;
};

}  // namespace eblcio
