#include "compressors/qoz.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.h"
#include "compressors/chunking.h"
#include "compressors/interp_core.h"
#include "metrics/error_stats.h"

namespace eblcio {
namespace {

// Candidate level-gamma settings trialed by the auto-tuner. gamma < 1
// tightens coarse-level bounds (QoZ's level-wise error control).
constexpr std::array<double, 3> kGammaCandidates = {1.0, 0.7, 0.5};

InterpConfig qoz_base_config() {
  InterpConfig c;
  c.anchor_stride = 64;  // dense anchor grid, stored exactly
  c.cubic = true;
  return c;
}

// Extracts a centered sample sub-field (up to 48 per dimension) used by the
// tuning trials.
template <typename T>
Field sample_region(const Field& field) {
  const NdArray<T>& arr = field.as<T>();
  const Shape& s = arr.shape();
  const int nd = s.ndims();
  std::vector<std::size_t> dims(nd), start(nd);
  for (int d = 0; d < nd; ++d) {
    dims[d] = std::min<std::size_t>(s.dim(d), 48);
    start[d] = (s.dim(d) - dims[d]) / 2;
  }
  NdArray<T> sample(Shape{std::span<const std::size_t>(dims)});
  const auto src_strides = s.strides();
  const auto dst_strides = sample.shape().strides();
  std::array<std::size_t, kMaxDims> c{};
  const std::size_t total = sample.num_elements();
  for (std::size_t lin = 0; lin < total; ++lin) {
    std::size_t rem = lin;
    std::size_t src = 0;
    for (int d = 0; d < nd; ++d) {
      c[d] = rem / dst_strides[d];
      rem %= dst_strides[d];
      src += (start[d] + c[d]) * src_strides[d];
    }
    sample[lin] = arr.data()[src];
  }
  return Field(field.name(), std::move(sample));
}

// Trials each gamma candidate on the sample and returns the config with the
// best quality/size score: highest compression ratio among candidates within
// 1 dB of the best PSNR observed.
InterpConfig tune_config(const Field& field, double abs_eb) {
  Field sample = field.dtype() == DType::kFloat32
                     ? sample_region<float>(field)
                     : sample_region<double>(field);

  struct Trial {
    InterpConfig config;
    double psnr = 0.0;
    double bits_per_value = 64.0;
  };
  std::vector<Trial> trials;
  BlobHeader sample_header;
  sample_header.codec = "QoZ";
  sample_header.dtype = sample.dtype();
  sample_header.dims = sample.shape().dims_vector();
  sample_header.abs_error_bound = abs_eb;

  for (double gamma : kGammaCandidates) {
    Trial t;
    t.config = qoz_base_config();
    t.config.level_gamma = gamma;
    const InterpEncoding enc = interp_compress(sample, abs_eb, t.config);
    const Bytes payload = interp_payload_encode(t.config, enc);
    Field recon = interp_decompress(sample_header, t.config,
                                    std::span(enc.codes), enc.anchors,
                                    enc.unpred);
    const ErrorStats st = compute_error_stats(sample, recon);
    t.psnr = st.psnr_db;
    t.bits_per_value = 8.0 * static_cast<double>(payload.size()) /
                       static_cast<double>(sample.num_elements());
    trials.push_back(t);
  }

  double best_psnr = 0.0;
  for (const Trial& t : trials) best_psnr = std::max(best_psnr, t.psnr);
  const Trial* best = &trials.front();
  for (const Trial& t : trials)
    if (t.psnr >= best_psnr - 1.0 &&
        t.bits_per_value < best->bits_per_value)
      best = &t;
  return best->config;
}

Bytes qoz_payload_compress(const Field& field, const BlobHeader& header,
                           const CompressOptions&) {
  const InterpConfig config = tune_config(field, header.abs_error_bound);
  const InterpEncoding enc =
      interp_compress(field, header.abs_error_bound, config);
  return interp_payload_encode(config, enc);
}

Field qoz_payload_decompress(const BlobHeader& header,
                             std::span<const std::byte> payload) {
  const InterpPayload p = interp_payload_decode(payload);
  return interp_decompress(header, p.config, p.codes, p.anchors, p.unpred);
}

}  // namespace

Bytes QozCompressor::compress(const Field& field, const CompressOptions& opt) {
  EBLCIO_CHECK_ARG(opt.mode != BoundMode::kLossless,
                   "QoZ is an error-bounded lossy compressor");
  if (field.ndims() < 2)
    throw Unsupported("QoZ is not capable of compressing 1D data");
  BlobHeader header;
  header.codec = name();
  header.dtype = field.dtype();
  header.dims = field.shape().dims_vector();
  header.abs_error_bound = absolute_bound_for(field, opt);
  header.requested_mode = opt.mode;
  header.requested_bound = opt.error_bound;
  return compress_chunked(header, field, opt, qoz_payload_compress);
}

Field QozCompressor::decompress(std::span<const std::byte> blob,
                                int threads) {
  return decompress_chunked(blob, threads, qoz_payload_decompress);
}

}  // namespace eblcio
