// zPerf-class gray-box compression estimation (the paper's ref. [51], Wang
// et al., ToC'23, and the CR-modeling line of its ref. [39]).
//
// Predicts compression ratio for a (codec, bound) pair from cheap sampled
// statistics of the field — no full compression run. Used to pre-screen
// sweeps and by capacity planning ("how many devices will I need?") where
// compressing petabytes to find out is not an option.
//
// Models (all operating on a strided sample of the field):
//  * SZ-family (SZ2/SZ3/QoZ): predict Lorenzo residuals on the sample,
//    quantize at the bound, and measure the empirical entropy of the code
//    histogram — bits/value ≈ H(codes) + side-channel overhead.
//  * SZx: per-block range statistics give the truncated-width distribution.
//  * ZFP: per-block leading exponents give the fixed-accuracy plane count
//    (emax - minexp + 2(d+1)) and the group-test overhead.
#pragma once

#include <string>

#include "common/field.h"

namespace eblcio {

struct RatioEstimate {
  double bits_per_value = 0.0;
  double predicted_ratio = 0.0;
  std::size_t sampled_values = 0;
};

// Estimates the compression ratio of `codec` on `field` at value-range
// relative bound `eb_rel`. `max_sample` caps the number of sampled values.
RatioEstimate estimate_ratio(const Field& field, const std::string& codec,
                             double eb_rel, std::size_t max_sample = 262144);

}  // namespace eblcio
