// zPerf-class gray-box compression estimation (the paper's ref. [51], Wang
// et al., ToC'23, and the CR-modeling line of its ref. [39]).
//
// Predicts compression ratio for a (codec, bound) pair from cheap sampled
// statistics of the field — no full compression run. Used to pre-screen
// sweeps and by capacity planning ("how many devices will I need?") where
// compressing petabytes to find out is not an option.
//
// Models (all operating on a strided sample of the field):
//  * SZ-family (SZ2/SZ3/QoZ): predict Lorenzo residuals on the sample,
//    quantize at the bound, and measure the empirical entropy of the code
//    histogram — bits/value ≈ H(codes) + side-channel overhead.
//  * SZx: per-block range statistics give the truncated-width distribution.
//  * ZFP: per-block leading exponents give the fixed-accuracy plane count
//    (emax - minexp + 2(d+1)) and the group-test overhead.
//
// Reentrancy / thread-safety (audited): estimation is a pure function of
// its inputs — no shared RNG, no shared scratch buffers, no mutable
// statics. estimate_ratio may be called concurrently, and a RatioSample
// (immutable once taken) may be shared by any number of concurrent grid
// cells; estimate_ratio_grid relies on exactly that.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/field.h"
#include "core/sweep.h"

namespace eblcio {

struct RatioEstimate {
  double bits_per_value = 0.0;
  double predicted_ratio = 0.0;
  std::size_t sampled_values = 0;
};

// Field statistics shared by every cell of a pre-screen sweep: taking the
// sample (and the O(N) value-range scan) once per field instead of once
// per (codec, bound) cell is what makes grid estimation cheap. Immutable
// after take(); safe to share across threads.
struct RatioSample {
  std::vector<double> values;  // contiguous-rows sample of the field
  std::size_t row_len = 1;
  double value_span = 0.0;     // max - min of the full field
  int raw_bits = 32;           // uncompressed bits per value
  int ndims = 1;

  static RatioSample take(const Field& field,
                          std::size_t max_sample = 262144);
};

// Estimates the compression ratio of `codec` on `field` at value-range
// relative bound `eb_rel`. `max_sample` caps the number of sampled values.
RatioEstimate estimate_ratio(const Field& field, const std::string& codec,
                             double eb_rel, std::size_t max_sample = 262144);

// Same estimate from a pre-taken sample (the per-cell work of a grid).
RatioEstimate estimate_ratio(const RatioSample& sample,
                             const std::string& codec, double eb_rel);

// One cell of a codec×bound pre-screen grid.
struct RatioGridEntry {
  std::string codec;
  double eb_rel = 0.0;
  RatioEstimate estimate;  // valid iff ok
  bool ok = false;
  std::string error;       // why the cell failed (unknown codec, bad bound)
};

// Pre-screens the codec×bound grid through the estimator, sampling the
// field once and fanning the cells out per `options` (default: parallel on
// the shared executor). Entries come back in domain (codec-major) order;
// `on_entry` streams them in that same order with running progress. A
// failing cell (e.g. a codec with no ratio model) is reported in its
// entry's `error` and never aborts the rest of the grid.
std::vector<RatioGridEntry> estimate_ratio_grid(
    const Field& field, const std::vector<std::string>& codecs,
    const std::vector<double>& bounds, std::size_t max_sample = 262144,
    const SweepOptions& options = {},
    const std::function<void(const RatioGridEntry&, std::size_t done,
                             std::size_t total)>& on_entry = nullptr);

}  // namespace eblcio
