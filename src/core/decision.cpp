#include "core/decision.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/timer.h"
#include "compressors/compressor.h"
#include "core/sweep.h"
#include "energy/powercap_monitor.h"
#include "metrics/error_stats.h"

namespace eblcio {
namespace {

// Centered sample region (at most 64 per dimension) so the advisor stays
// cheap even on production-size fields.
template <typename T>
Field sample_region(const Field& field) {
  const NdArray<T>& arr = field.as<T>();
  const Shape& s = arr.shape();
  const int nd = s.ndims();
  std::vector<std::size_t> dims(nd), start(nd);
  for (int d = 0; d < nd; ++d) {
    dims[d] = std::min<std::size_t>(s.dim(d), 64);
    start[d] = (s.dim(d) - dims[d]) / 2;
  }
  NdArray<T> sample(Shape{std::span<const std::size_t>(dims)});
  const auto src_strides = s.strides();
  const auto dst_strides = sample.shape().strides();
  const std::size_t total = sample.num_elements();
  for (std::size_t lin = 0; lin < total; ++lin) {
    std::size_t rem = lin;
    std::size_t src = 0;
    for (int d = 0; d < nd; ++d) {
      const std::size_t c = rem / dst_strides[d];
      rem %= dst_strides[d];
      src += (start[d] + c) * src_strides[d];
    }
    sample[lin] = arr.data()[src];
  }
  return Field(field.name(), std::move(sample));
}

double candidate_score(const AdvisorCandidate& c, Objective objective) {
  if (!c.feasible) return -1.0;
  switch (objective) {
    case Objective::kMinEnergy:
      return c.compress_j > 0 ? 1.0 / c.compress_j : 0.0;
    case Objective::kMaxRatio:
      return c.ratio;
    case Objective::kBalanced:
      return c.compress_j > 0 ? c.ratio / c.compress_j : c.ratio;
  }
  return 0.0;
}

// One (codec, bound) trial of the advisor grid.
struct TrialCell {
  Compressor* comp = nullptr;
  double error_bound = 0.0;
};

}  // namespace

AdvisorReport advise_compression(const Field& field,
                                 const AdvisorConstraints& constraints,
                                 const AdvisorProgressFn& on_trial) {
  // Shared read-only inputs of every cell: the sample is built once here
  // and only read by the trials (see the header's reentrancy note).
  const Field sample = field.dtype() == DType::kFloat32
                           ? sample_region<float>(field)
                           : sample_region<double>(field);
  const CpuModel& cpu = cpu_model(constraints.cpu);
  const std::vector<std::string>& codecs =
      constraints.codecs.empty() ? eblc_names() : constraints.codecs;

  std::vector<TrialCell> cells;
  for (const std::string& name : codecs) {
    Compressor& comp = compressor(name);
    for (double eb : constraints.error_bounds) {
      CompressOptions opt;
      opt.mode = BoundMode::kValueRangeRel;
      opt.error_bound = eb;
      if (!comp.supports(sample, opt)) continue;
      cells.push_back({&comp, eb});
    }
  }

  SweepOptions sweep;
  sweep.parallel = constraints.parallel;
  sweep.max_tasks = constraints.max_concurrent_trials;
  sweep.repeat = constraints.repeat;

  const std::size_t total = cells.size();
  std::size_t done = 0;  // mutated only by the serialized in-order emitter
  auto sweep_report = sweep_grid(
      std::move(cells),
      [&](const TrialCell& cell,
          SweepCellContext& ctx) -> std::optional<AdvisorCandidate> {
        CompressOptions opt;
        opt.mode = BoundMode::kValueRangeRel;
        opt.error_bound = cell.error_bound;

        AdvisorCandidate c;
        c.codec = cell.comp->name();
        c.error_bound = cell.error_bound;
        try {
          Bytes blob;
          auto one_compress = [&] {
            return timed_s([&] { blob = cell.comp->compress(sample, opt); });
          };
          const double t = constraints.repeat
                               ? ctx.repeat(one_compress).mean
                               : one_compress();
          const Field recon = cell.comp->decompress(blob, 1);
          const ErrorStats st = compute_error_stats(sample, recon);
          c.ratio = compression_ratio(sample.size_bytes(), blob.size());
          c.psnr_db = st.psnr_db;
          PowercapMonitor monitor(cpu);
          c.compress_j = monitor.record_compute("compress", t, 1).joules;
          c.feasible = st.psnr_db >= constraints.psnr_min_db;
        } catch (const Unsupported&) {
          return std::nullopt;  // codec rejected the cell; not a candidate
        }
        c.score = candidate_score(c, constraints.objective);
        return c;
      },
      sweep,
      [&](const SweepCell<TrialCell, std::optional<AdvisorCandidate>>& cell) {
        ++done;
        if (on_trial && cell.result && *cell.result)
          on_trial(**cell.result, done, total);
      });
  // Trial errors other than Unsupported keep their old throw semantics;
  // the sweep merely guaranteed the rest of the grid still evaluated.
  sweep_report.rethrow_first_error();

  AdvisorReport report;
  for (auto& cell : sweep_report.cells)
    if (cell.result && *cell.result)
      report.candidates.push_back(std::move(**cell.result));

  // stable_sort over the domain-ordered candidates: equal scores keep
  // codec-major order no matter how the sweep interleaved.
  std::stable_sort(report.candidates.begin(), report.candidates.end(),
                   [](const AdvisorCandidate& a, const AdvisorCandidate& b) {
                     return a.score > b.score;
                   });
  for (const auto& c : report.candidates)
    if (c.feasible) {
      report.recommendation = c;
      break;
    }
  return report;
}

}  // namespace eblcio
