#include "core/decision.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/timer.h"
#include "compressors/compressor.h"
#include "energy/powercap_monitor.h"
#include "metrics/error_stats.h"

namespace eblcio {
namespace {

// Centered sample region (at most 64 per dimension) so the advisor stays
// cheap even on production-size fields.
template <typename T>
Field sample_region(const Field& field) {
  const NdArray<T>& arr = field.as<T>();
  const Shape& s = arr.shape();
  const int nd = s.ndims();
  std::vector<std::size_t> dims(nd), start(nd);
  for (int d = 0; d < nd; ++d) {
    dims[d] = std::min<std::size_t>(s.dim(d), 64);
    start[d] = (s.dim(d) - dims[d]) / 2;
  }
  NdArray<T> sample(Shape{std::span<const std::size_t>(dims)});
  const auto src_strides = s.strides();
  const auto dst_strides = sample.shape().strides();
  const std::size_t total = sample.num_elements();
  for (std::size_t lin = 0; lin < total; ++lin) {
    std::size_t rem = lin;
    std::size_t src = 0;
    for (int d = 0; d < nd; ++d) {
      const std::size_t c = rem / dst_strides[d];
      rem %= dst_strides[d];
      src += (start[d] + c) * src_strides[d];
    }
    sample[lin] = arr.data()[src];
  }
  return Field(field.name(), std::move(sample));
}

double candidate_score(const AdvisorCandidate& c, Objective objective) {
  if (!c.feasible) return -1.0;
  switch (objective) {
    case Objective::kMinEnergy:
      return c.compress_j > 0 ? 1.0 / c.compress_j : 0.0;
    case Objective::kMaxRatio:
      return c.ratio;
    case Objective::kBalanced:
      return c.compress_j > 0 ? c.ratio / c.compress_j : c.ratio;
  }
  return 0.0;
}

}  // namespace

AdvisorReport advise_compression(const Field& field,
                                 const AdvisorConstraints& constraints) {
  Field sample = field.dtype() == DType::kFloat32
                     ? sample_region<float>(field)
                     : sample_region<double>(field);
  const CpuModel& cpu = cpu_model(constraints.cpu);
  const std::vector<std::string>& codecs =
      constraints.codecs.empty() ? eblc_names() : constraints.codecs;

  AdvisorReport report;
  for (const std::string& name : codecs) {
    Compressor& comp = compressor(name);
    for (double eb : constraints.error_bounds) {
      CompressOptions opt;
      opt.mode = BoundMode::kValueRangeRel;
      opt.error_bound = eb;
      if (!comp.supports(sample, opt)) continue;

      AdvisorCandidate c;
      c.codec = comp.name();
      c.error_bound = eb;
      try {
        Bytes blob;
        const double t = timed_s([&] { blob = comp.compress(sample, opt); });
        const Field recon = comp.decompress(blob, 1);
        const ErrorStats st = compute_error_stats(sample, recon);
        c.ratio = compression_ratio(sample.size_bytes(), blob.size());
        c.psnr_db = st.psnr_db;
        PowercapMonitor monitor(cpu);
        c.compress_j = monitor.record_compute("compress", t, 1).joules;
        c.feasible = st.psnr_db >= constraints.psnr_min_db;
      } catch (const Unsupported&) {
        continue;
      }
      c.score = candidate_score(c, constraints.objective);
      report.candidates.push_back(c);
    }
  }

  std::sort(report.candidates.begin(), report.candidates.end(),
            [](const AdvisorCandidate& a, const AdvisorCandidate& b) {
              return a.score > b.score;
            });
  for (const auto& c : report.candidates)
    if (c.feasible) {
      report.recommendation = c;
      break;
    }
  return report;
}

}  // namespace eblcio
