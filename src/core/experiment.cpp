#include "core/experiment.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "common/error.h"

namespace eblcio {

double t_critical_95(int n) {
  EBLCIO_CHECK_ARG(n >= 2, "need at least two samples for a CI");
  // Two-sided 95% critical values for df = 1..30.
  static constexpr std::array<double, 30> kTable = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  const int df = n - 1;
  if (df <= 30) return kTable[df - 1];
  return 1.96;
}

RepeatConfig repeat_protocol(int reps) {
  RepeatConfig cfg;
  cfg.max_runs = std::max(2, reps);
  cfg.min_runs = std::min(3, cfg.max_runs);
  return cfg;
}

RepeatedStats run_repeated(const std::function<double()>& sample,
                           const RepeatConfig& config) {
  EBLCIO_CHECK_ARG(config.min_runs >= 2 && config.max_runs >= config.min_runs,
                   "bad repeat configuration");
  std::vector<double> values;
  values.reserve(config.max_runs);

  RepeatedStats st;
  for (int i = 0; i < config.max_runs; ++i) {
    values.push_back(sample());
    if (static_cast<int>(values.size()) < config.min_runs) continue;

    const auto n = static_cast<double>(values.size());
    double mean = 0.0;
    for (double v : values) mean += v;
    mean /= n;
    double var = 0.0;
    for (double v : values) var += (v - mean) * (v - mean);
    var /= (n - 1.0);
    const double sd = std::sqrt(var);
    const double half =
        t_critical_95(static_cast<int>(values.size())) * sd / std::sqrt(n);

    st.mean = mean;
    st.stddev = sd;
    st.ci95_half = half;
    st.runs = static_cast<int>(values.size());
    if (mean == 0.0 || half / std::fabs(mean) <= config.target_rel_ci) break;
  }
  return st;
}

}  // namespace eblcio
