// The paper's Sec. III benefit conditions:
//   Eq. 3 (time):    Tc + Tw(D') < Tw(D)
//   Eq. 4 (energy):  Ec + Ew(D') < Ew(D)
//   Eq. 5 (quality): PSNR(D, D̂) >= PSNR_min
// Compression is worthwhile iff all three hold simultaneously.
#pragma once

namespace eblcio {

struct TradeoffMeasurement {
  // Compression phase.
  double compress_seconds = 0.0;
  double compress_joules = 0.0;
  // Writing the compressed data D'.
  double write_compressed_seconds = 0.0;
  double write_compressed_joules = 0.0;
  // Writing the original data D (the baseline).
  double write_original_seconds = 0.0;
  double write_original_joules = 0.0;
  // Reconstruction quality.
  double psnr_db = 0.0;
};

struct TradeoffVerdict {
  bool time_beneficial = false;     // Eq. 3
  bool energy_beneficial = false;   // Eq. 4
  bool quality_acceptable = false;  // Eq. 5
  bool beneficial() const {
    return time_beneficial && energy_beneficial && quality_acceptable;
  }

  // Diagnostic ratios the paper reports.
  double io_energy_reduction = 0.0;     // Ew(D) / Ew(D')  (Fig. 11 gap)
  double total_energy_reduction = 0.0;  // Ew(D) / (Ec + Ew(D'))
  double io_time_reduction = 0.0;       // Tw(D) / Tw(D')
};

TradeoffVerdict evaluate_tradeoff(const TradeoffMeasurement& m,
                                  double psnr_min_db);

}  // namespace eblcio
