#include "core/sweep.h"

#include <algorithm>
#include <mutex>

#include "common/timer.h"

namespace eblcio {
namespace detail {
namespace {

// Serializes completions and releases the on-cell callback strictly in
// index order: cell i's status is buffered until every j < i has resolved.
// The emit cursor advances *before* the callback runs, so a throwing
// callback cannot double-emit a cell. The first callback exception is
// captured (not propagated mid-grid): it suppresses every later callback,
// makes unstarted cells skip (via aborted()), and rethrows from run_sweep
// once the grid has settled — identically in serial and parallel mode.
class OrderedEmitter {
 public:
  OrderedEmitter(std::size_t n,
                 const std::function<void(const SweepCellStatus&)>& on_cell)
      : statuses_(n), done_(n, 0), on_cell_(on_cell) {}

  void complete(SweepCellStatus st, SweepStats& stats) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t i = st.index;
    if (st.skipped)
      ++stats.skipped;
    else if (st.error)
      ++stats.failed;
    else
      ++stats.completed;
    stats.cell_seconds += st.seconds;
    statuses_[i] = std::move(st);
    done_[i] = 1;
    while (next_ < done_.size() && done_[next_]) {
      const SweepCellStatus& ready = statuses_[next_];
      ++next_;
      if (on_cell_ && !callback_error_) {
        try {
          on_cell_(ready);
        } catch (...) {
          callback_error_ = std::current_exception();
          aborted_.store(true, std::memory_order_relaxed);
        }
      }
    }
  }

  bool aborted() const { return aborted_.load(std::memory_order_relaxed); }

  void rethrow_callback_error() const {
    if (callback_error_) std::rethrow_exception(callback_error_);
  }

 private:
  std::mutex mu_;
  std::size_t next_ = 0;
  std::vector<SweepCellStatus> statuses_;
  std::vector<char> done_;
  const std::function<void(const SweepCellStatus&)>& on_cell_;
  std::exception_ptr callback_error_;
  std::atomic<bool> aborted_{false};
};

}  // namespace

SweepStats run_sweep(
    std::size_t n,
    const std::function<void(std::size_t, SweepCellContext&)>& eval,
    const std::function<void(const SweepCellStatus&)>& on_cell,
    const SweepOptions& options) {
  SweepStats stats;
  stats.cells = n;
  if (n == 0) return stats;

  const RepeatConfig repeat = options.repeat.value_or(RepeatConfig{});
  OrderedEmitter emitter(n, on_cell);
  WallTimer sweep_timer;

  auto eval_one = [&](std::size_t i) {
    SweepCellStatus st;
    st.index = i;
    if ((options.cancel && options.cancel->requested()) || emitter.aborted()) {
      st.skipped = true;
    } else {
      SweepCellContext ctx(i, options.cancel, repeat);
      WallTimer timer;
      try {
        eval(i, ctx);
      } catch (...) {
        st.error = std::current_exception();
      }
      st.seconds = timer.elapsed_s();
    }
    emitter.complete(std::move(st), stats);
  };

  if (!options.parallel) {
    for (std::size_t i = 0; i < n; ++i) eval_one(i);
  } else {
    Executor& ex = options.executor ? *options.executor : Executor::global();
    const std::size_t ntasks =
        options.max_tasks <= 0
            ? n
            : std::min<std::size_t>(n,
                                    static_cast<std::size_t>(options.max_tasks));
    // Consecutive cell blocks map to consecutive locality pods, so a
    // zone/slab-ordered domain keeps each cell's working set on the pod
    // that owns it (placement hint only — stealing still balances).
    // Pod-interleaved submission feeds every pod from the first few
    // blocks, so no pod starves into cross-stealing the early batch.
    const int npods = ex.pods();
    TaskGroup group(ex);
    for (std::size_t t : pod_interleaved_order(ntasks, npods)) {
      const std::size_t lo = n * t / ntasks;
      const std::size_t hi = n * (t + 1) / ntasks;
      group.run(
          [&eval_one, lo, hi] {
            for (std::size_t i = lo; i < hi; ++i) eval_one(i);
          },
          static_cast<int>(t * static_cast<std::size_t>(npods) / ntasks));
    }
    group.wait();
  }

  stats.wall_s = sweep_timer.elapsed_s();
  emitter.rethrow_callback_error();
  return stats;
}

}  // namespace detail
}  // namespace eblcio
