// Repetition protocol from Sec. IV-C: "up to twenty-five runs of each
// compression and decompression, or until achieving a 95% confidence
// interval about the mean of the recorded energy."
#pragma once

#include <functional>

namespace eblcio {

struct RepeatedStats {
  double mean = 0.0;
  double stddev = 0.0;
  double ci95_half = 0.0;  // half-width of the 95% confidence interval
  int runs = 0;
  double ci95_rel() const { return mean != 0.0 ? ci95_half / mean : 0.0; }
};

struct RepeatConfig {
  int min_runs = 3;
  int max_runs = 25;          // the paper's cap
  double target_rel_ci = 0.05;  // stop once the 95% CI is within 5% of mean
};

// Runs `sample` repeatedly per the protocol and returns the statistics.
RepeatedStats run_repeated(const std::function<double()>& sample,
                           const RepeatConfig& config = {});

// Builds the protocol configuration for a requested repetition budget:
// the cap is `reps` (at least the 2 runs a confidence interval needs),
// warming up to 3 runs before the CI stop-check when the budget allows.
// This is the one clamp every caller of the protocol shares — benches
// (`bench/bench_util.h::BenchEnv::repeat_config`) and examples route a
// user-facing `--reps` through it instead of hand-rolling bounds.
RepeatConfig repeat_protocol(int reps);

// Two-sided 95% Student-t critical value for n-1 degrees of freedom
// (n >= 2; clamped to the asymptotic 1.96 for large n).
double t_critical_95(int n);

}  // namespace eblcio
