// Generic grid-sweep engine — the one way every paper-scale grid fans its
// independent cells out onto the shared executor.
//
// The paper's headline artifacts are grids: the Sec. VII advisor trials a
// codec×bound table, capacity planning pre-screens the same grid through
// the gray-box estimator (ref. [51]), and the Sec. IV-E experiment sweeps
// node×rank worlds. Every cell is independent, so a sweep takes a cell
// domain (any vector of descriptors), a per-cell evaluation functor, and
// options, and executes the cells as one TaskGroup on the executor.
//
// Guarantees, regardless of how execution interleaves:
//  * results land in *domain order* (cell i's outcome is slot i), and the
//    optional on-cell-complete callback streams outcomes in that same
//    order — partial tables render incrementally and deterministically;
//  * one failing cell never aborts the grid: its exception is captured in
//    its slot (callers inspect, or rethrow_first_error());
//  * cancellation is cooperative: cells not yet started when the token
//    fires are marked skipped, and skipped cells are still streamed so
//    consumers see every index;
//  * the per-cell repetition protocol (core/experiment.h) is available
//    through the cell context, configured once per sweep, and produces
//    bit-for-bit the statistics the serial path produces.
//
// options.parallel = false degrades to an in-order run on the calling
// thread through the same code path — that is what makes serial/parallel
// equivalence directly testable.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "parallel/executor.h"

namespace eblcio {

// Cooperative cancellation token shared between a sweep and its caller
// (or between a sweep and its own on-cell callback). Thread-safe: any
// thread may request() at any time; the sweep observes the flag before
// starting each not-yet-running cell and marks the remainder skipped.
// Cells already executing are not interrupted — long-running cells poll
// SweepCellContext::cancel_requested() and return early if they care.
// Requesting cancellation is idempotent and cannot be revoked.
class SweepCancel {
 public:
  void request() { flag_.store(true, std::memory_order_relaxed); }
  bool requested() const { return flag_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

struct SweepOptions {
  Executor* executor = nullptr;  // null = Executor::global()
  bool parallel = true;          // false = in-order on the calling thread
  // Caps concurrently-runnable cell tasks by grouping consecutive cells
  // into at most this many tasks (<= 0: one task per cell). Bound this
  // when cells are themselves heavyweight worlds (a 512-rank simmpi cell
  // lends 512 replacement workers while it runs).
  int max_tasks = 0;
  SweepCancel* cancel = nullptr;
  // Engages ctx.repeat() with this protocol; cells may also call
  // ctx.repeat() without it and get the default RepeatConfig. Grid
  // benches build this from their --reps budget via
  // core/experiment.h::repeat_protocol (see
  // bench/bench_util.h::BenchEnv::sweep_options).
  std::optional<RepeatConfig> repeat;
};

// Handed to the evaluation functor; read-only view of one cell's slot in
// the running sweep.
class SweepCellContext {
 public:
  SweepCellContext(std::size_t index, const SweepCancel* cancel,
                   const RepeatConfig& repeat)
      : index_(index), cancel_(cancel), repeat_(repeat) {}

  std::size_t index() const { return index_; }

  // True once cancellation was requested; long-running cells may poll it
  // and return early (their partial result is still recorded).
  bool cancel_requested() const { return cancel_ && cancel_->requested(); }

  // Runs `sample` under the sweep's repetition protocol (Sec. IV-C: up to
  // max_runs, or until the 95% CI tightens) and returns the statistics.
  RepeatedStats repeat(const std::function<double()>& sample) const {
    return run_repeated(sample, repeat_);
  }

 private:
  std::size_t index_;
  const SweepCancel* cancel_;
  const RepeatConfig& repeat_;
};

// Per-cell outcome of the type-erased layer.
struct SweepCellStatus {
  std::size_t index = 0;
  bool skipped = false;      // cancelled before evaluation started
  std::exception_ptr error;  // the cell threw; isolated to this slot
  double seconds = 0.0;      // host wall clock of this evaluation
  bool ok() const { return !skipped && !error; }
};

struct SweepStats {
  std::size_t cells = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t skipped = 0;
  double wall_s = 0.0;        // whole-grid host wall clock
  double cell_seconds = 0.0;  // summed per-cell wall clock
};

namespace detail {
// Type-erased engine: evaluates eval(i, ctx) for i in [0, n), streaming
// on_cell(status) in index order (on_cell may be null). Cell exceptions
// are captured per status. An exception thrown by on_cell itself aborts
// the sweep: later callbacks are suppressed, unstarted cells are skipped,
// and the first callback exception rethrows from run_sweep once in-flight
// cells settle — the same observable behavior in serial and parallel mode.
SweepStats run_sweep(std::size_t n,
                     const std::function<void(std::size_t, SweepCellContext&)>& eval,
                     const std::function<void(const SweepCellStatus&)>& on_cell,
                     const SweepOptions& options);
}  // namespace detail

// One cell of a typed sweep: the descriptor plus its outcome.
template <typename Cell, typename Result>
struct SweepCell {
  std::size_t index = 0;
  Cell cell{};
  std::optional<Result> result;  // engaged iff the cell completed
  std::exception_ptr error;      // engaged iff the cell threw
  bool skipped = false;          // cancelled before start
  double seconds = 0.0;          // host wall clock of the evaluation
  bool ok() const { return result.has_value(); }
};

template <typename Cell, typename Result>
struct SweepReport {
  std::vector<SweepCell<Cell, Result>> cells;  // always in domain order
  SweepStats stats;

  void rethrow_first_error() const {
    for (const auto& c : cells)
      if (c.error) std::rethrow_exception(c.error);
  }
};

// Evaluates eval(cell, ctx) -> Result over every cell of the domain and
// returns the outcomes in domain order. `on_cell` (optional) is invoked
// once per cell — including failed and skipped ones — serialized and in
// domain order, as soon as every earlier cell has also resolved; this is
// the streaming hook incremental tables build on (the figure/table
// benches consume it through bench/bench_util.h::run_grid_bench, which
// adds the --serial/--verify/--jobs conventions on top). Serialization
// means callbacks never overlap and need no locking of their own; a
// callback that throws aborts the sweep with the semantics documented on
// detail::run_sweep. (The callback parameter is non-deduced, so call
// sites pass bare lambdas.)
template <typename Cell, typename Eval,
          typename Result = std::invoke_result_t<Eval&, const Cell&,
                                                 SweepCellContext&>>
SweepReport<Cell, Result> sweep_grid(
    std::vector<Cell> cells, Eval eval, const SweepOptions& options = {},
    const std::type_identity_t<
        std::function<void(const SweepCell<Cell, Result>&)>>& on_cell =
        nullptr) {
  static_assert(!std::is_void_v<Result>,
                "sweep cells must return a value; use bool for effect-only "
                "cells");
  SweepReport<Cell, Result> report;
  report.cells.resize(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    report.cells[i].index = i;
    report.cells[i].cell = std::move(cells[i]);
  }
  auto eval_erased = [&](std::size_t i, SweepCellContext& ctx) {
    const Cell& cell = report.cells[i].cell;
    report.cells[i].result.emplace(eval(cell, ctx));
  };
  auto emit = [&](const SweepCellStatus& st) {
    SweepCell<Cell, Result>& c = report.cells[st.index];
    c.skipped = st.skipped;
    c.error = st.error;
    c.seconds = st.seconds;
    if (on_cell) on_cell(c);
  };
  report.stats = detail::run_sweep(report.cells.size(), eval_erased, emit,
                                   options);
  return report;
}

}  // namespace eblcio
