#include "core/estimator.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <exception>
#include <map>
#include <vector>

#include "common/error.h"
#include "core/sweep.h"

namespace eblcio {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// Gathers a contiguous-rows sample (keeps neighbour structure intact so
// residual statistics are representative; a strided scatter would not).
template <typename T>
std::vector<double> sample_rows(const NdArray<T>& arr,
                                std::size_t max_sample, std::size_t* row_len) {
  const Shape& s = arr.shape();
  const std::size_t fastest = s.dim(s.ndims() - 1);
  *row_len = fastest;
  const std::size_t rows_total = arr.num_elements() / fastest;
  const std::size_t rows_wanted =
      std::max<std::size_t>(1, std::min(rows_total, max_sample / fastest));
  const std::size_t stride = std::max<std::size_t>(1, rows_total / rows_wanted);

  std::vector<double> out;
  out.reserve(rows_wanted * fastest);
  for (std::size_t r = 0; r < rows_total && out.size() + fastest <=
                                                rows_wanted * fastest;
       r += stride) {
    const T* base = arr.data() + r * fastest;
    for (std::size_t i = 0; i < fastest; ++i)
      out.push_back(static_cast<double>(base[i]));
  }
  return out;
}

double entropy_bits(const std::map<std::int64_t, std::size_t>& hist,
                    std::size_t total) {
  double h = 0.0;
  for (const auto& [code, count] : hist) {
    const double p = static_cast<double>(count) / static_cast<double>(total);
    h += -p * std::log2(p);
  }
  return h;
}

// SZ-family: entropy of 1D Lorenzo-residual quantization codes on the
// sample, plus the unpredictable/lossless-backend overhead terms.
double sz_bits_per_value(const std::vector<double>& sample,
                         std::size_t row_len, double abs_eb) {
  if (abs_eb <= 0.0) return 64.0;
  const double eb2 = 2.0 * abs_eb;
  std::map<std::int64_t, std::size_t> hist;
  std::size_t total = 0, unpred = 0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    if (i % row_len == 0) continue;  // no left neighbour
    const double resid = sample[i] - sample[i - 1];
    const double qf = resid / eb2;
    if (std::fabs(qf) >= 32767.0) {
      ++unpred;
      continue;
    }
    ++hist[static_cast<std::int64_t>(std::llround(qf))];
    ++total;
  }
  if (total == 0) return 32.0;
  const double h = entropy_bits(hist, total);
  const double unpred_frac =
      static_cast<double>(unpred) / static_cast<double>(total + unpred);
  // Huffman overhead above entropy ~0.15 bits; unpredictables cost raw
  // storage; small constant for tables/markers.
  return (1.0 - unpred_frac) * (h + 0.15) + unpred_frac * 32.0 + 0.1;
}

// SZx: per-128-block range gives the truncated width; constants for the
// per-block side channel (min + width byte).
double szx_bits_per_value(const std::vector<double>& sample, double abs_eb,
                          int raw_bits) {
  if (abs_eb <= 0.0) return static_cast<double>(raw_bits);
  constexpr std::size_t kBlock = 128;
  const double eb2 = 2.0 * abs_eb;
  double bits = 0.0;
  std::size_t blocks = 0;
  for (std::size_t lo = 0; lo + kBlock <= sample.size(); lo += kBlock) {
    double mn = sample[lo], mx = sample[lo];
    for (std::size_t i = lo + 1; i < lo + kBlock; ++i) {
      mn = std::min(mn, sample[i]);
      mx = std::max(mx, sample[i]);
    }
    const double range = mx - mn;
    double width;
    if (range <= eb2) {
      width = 0.0;  // constant block
    } else {
      width = std::ceil(std::log2(range / eb2 + 2.0));
      if (width >= raw_bits) width = raw_bits;
    }
    bits += width * kBlock + 72.0;  // + block min (8B) and width byte
    ++blocks;
  }
  if (blocks == 0) return static_cast<double>(raw_bits);
  return bits / static_cast<double>(blocks * kBlock);
}

// ZFP fixed-accuracy: plane count from per-block max exponents; roughly
// half the kept planes carry significant bits after the decorrelating
// transform on smooth data, plus group-test overhead.
double zfp_bits_per_value(const std::vector<double>& sample, double abs_eb,
                          int dims) {
  if (abs_eb <= 0.0) return 64.0;
  const int minexp =
      static_cast<int>(std::floor(std::log2(std::max(abs_eb, 1e-300))));
  const std::size_t block = static_cast<std::size_t>(1)
                            << (2 * std::min(dims, 3));
  double bits = 0.0;
  std::size_t blocks = 0;
  for (std::size_t lo = 0; lo + block <= sample.size(); lo += block) {
    double amax = 0.0, mean = 0.0;
    for (std::size_t i = lo; i < lo + block; ++i) {
      amax = std::max(amax, std::fabs(sample[i]));
      mean += sample[i];
    }
    mean /= static_cast<double>(block);
    if (amax == 0.0) {
      bits += 1.0;
      ++blocks;
      continue;
    }
    int emax = 0;
    std::frexp(amax, &emax);
    const double maxprec = std::clamp<double>(
        emax - minexp + 2.0 * (std::min(dims, 3) + 1), 0.0, 64.0);
    // The transform concentrates the block mean into one DC coefficient;
    // the per-value payload tracks the *AC* magnitude (deviation from the
    // mean) against the tolerance floor, not the block maximum.
    double payload = maxprec;  // DC coefficient
    for (std::size_t i = lo; i < lo + block; ++i) {
      const double ac = std::fabs(sample[i] - mean);
      if (ac == 0.0) continue;
      int e = 0;
      std::frexp(ac, &e);
      payload += std::clamp<double>(e - minexp + 2.0, 0.0, maxprec);
    }
    // Header + payload + ~1 group-test bit per encoded plane.
    bits += 13.0 + payload + maxprec;
    ++blocks;
  }
  if (blocks == 0) return 32.0;
  return bits / static_cast<double>(blocks * block);
}

}  // namespace

RatioSample RatioSample::take(const Field& field, std::size_t max_sample) {
  RatioSample s;
  s.value_span = field.value_range().span();
  s.raw_bits = static_cast<int>(dtype_size(field.dtype())) * 8;
  s.ndims = field.ndims();
  s.values = field.dtype() == DType::kFloat32
                 ? sample_rows(field.as<float>(), max_sample, &s.row_len)
                 : sample_rows(field.as<double>(), max_sample, &s.row_len);
  return s;
}

RatioEstimate estimate_ratio(const RatioSample& sample,
                             const std::string& codec, double eb_rel) {
  EBLCIO_CHECK_ARG(eb_rel > 0.0, "estimator needs a positive bound");
  const double abs_eb = eb_rel * sample.value_span;

  const std::string key = lower(codec);
  double bits;
  if (key == "szx") {
    bits = szx_bits_per_value(sample.values, abs_eb, sample.raw_bits);
  } else if (key == "zfp") {
    bits = zfp_bits_per_value(sample.values, abs_eb, sample.ndims);
  } else if (key == "sz2" || key == "sz3" || key == "qoz") {
    bits = sz_bits_per_value(sample.values, sample.row_len, abs_eb);
  } else {
    throw InvalidArgument("no ratio model for codec: " + codec);
  }
  bits = std::clamp(bits, 0.05, static_cast<double>(sample.raw_bits));

  RatioEstimate est;
  est.bits_per_value = bits;
  est.predicted_ratio = static_cast<double>(sample.raw_bits) / bits;
  est.sampled_values = sample.values.size();
  return est;
}

RatioEstimate estimate_ratio(const Field& field, const std::string& codec,
                             double eb_rel, std::size_t max_sample) {
  return estimate_ratio(RatioSample::take(field, max_sample), codec, eb_rel);
}

std::vector<RatioGridEntry> estimate_ratio_grid(
    const Field& field, const std::vector<std::string>& codecs,
    const std::vector<double>& bounds, std::size_t max_sample,
    const SweepOptions& options,
    const std::function<void(const RatioGridEntry&, std::size_t done,
                             std::size_t total)>& on_entry) {
  const RatioSample sample = RatioSample::take(field, max_sample);

  struct Cell {
    std::string codec;
    double eb = 0.0;
  };
  std::vector<Cell> cells;
  cells.reserve(codecs.size() * bounds.size());
  for (const std::string& codec : codecs)
    for (double eb : bounds) cells.push_back({codec, eb});

  std::vector<RatioGridEntry> entries(cells.size());
  const std::size_t total = cells.size();
  std::size_t done = 0;  // mutated only by the serialized in-order emitter
  auto report = sweep_grid(
      std::move(cells),
      [&](const Cell& cell, SweepCellContext&) {
        return estimate_ratio(sample, cell.codec, cell.eb);
      },
      options,
      [&](const SweepCell<Cell, RatioEstimate>& cell) {
        RatioGridEntry& e = entries[cell.index];
        e.codec = cell.cell.codec;
        e.eb_rel = cell.cell.eb;
        if (cell.result) {
          e.estimate = *cell.result;
          e.ok = true;
        } else if (cell.error) {
          try {
            std::rethrow_exception(cell.error);
          } catch (const std::exception& ex) {
            e.error = ex.what();
          } catch (...) {
            e.error = "unknown estimator error";
          }
        } else {
          e.error = "cancelled";
        }
        ++done;
        if (on_entry) on_entry(e, done, total);
      });
  return entries;
}

}  // namespace eblcio
