// End-to-end measured pipelines — the orchestration the paper's harness
// (LibPressio + PAPI + HDF5/NetCDF) performs for each experiment cell.
//
// Each runner really executes the codec kernels (timed on the host),
// dilates the measured runtimes onto a Table-I platform, charges the node
// power model through the simulated RAPL counters, and drives container
// writes through the PFS simulator. Benches format the returned records
// into the paper's tables and figures.
#pragma once

#include <optional>
#include <string>

#include "common/field.h"
#include "common/region.h"
#include "core/tradeoff.h"
#include "energy/powercap_monitor.h"
#include "io/pfs.h"
#include "io/transport.h"
#include "metrics/error_stats.h"

namespace eblcio {

struct PipelineConfig {
  std::string codec = "SZ3";
  double error_bound = 1e-3;       // value-range relative
  int threads = 1;
  std::string cpu = "9480";        // Table I platform (substring match)
  std::string io_library = "HDF5"; // "HDF5" or "NetCDF"
  double psnr_min_db = 60.0;       // Eq. 5 threshold
};

// One compression/decompression measurement (no I/O): Figs. 5, 7, 10.
struct CompressionRecord {
  std::string codec;
  double error_bound = 0.0;
  int threads = 1;
  std::size_t original_bytes = 0;
  std::size_t compressed_bytes = 0;
  double ratio = 0.0;
  // Host-measured kernel times.
  double host_compress_s = 0.0;
  double host_decompress_s = 0.0;
  // Platform-dilated times and modeled energies.
  double compress_s = 0.0;
  double decompress_s = 0.0;
  double compress_j = 0.0;
  double decompress_j = 0.0;
  ErrorStats quality;
  double total_j() const { return compress_j + decompress_j; }
  double total_s() const { return compress_s + decompress_s; }
};

// Runs compress + decompress on `field`, returning times/energies/quality.
// When `blob_out` is non-null the compressed blob is handed back so callers
// can write it without re-compressing.
CompressionRecord run_compression(const Field& field,
                                  const PipelineConfig& config,
                                  Bytes* blob_out = nullptr);

// Full single-node write experiment (Sec. IV-D, Fig. 11): compress, write
// compressed via the I/O library, write the original as baseline, evaluate
// the Sec. III conditions.
struct WriteRecord {
  CompressionRecord compression;
  std::string io_library;
  double write_compressed_s = 0.0;
  double write_compressed_j = 0.0;
  double write_original_s = 0.0;
  double write_original_j = 0.0;
  TradeoffVerdict verdict;
};

WriteRecord run_compress_write(const Field& field,
                               const PipelineConfig& config,
                               PfsSimulator& pfs);

// --- Streaming (chunked) write experiment ---------------------------------
//
// Instead of compressing the whole field and only then touching the PFS,
// the field is split into slabs and pushed through a producer/consumer
// pipeline on the shared executor: slab i compresses while the container's
// chunked-dataset stream is still writing slab i-1. A bounded channel
// between the stages provides backpressure (the producer stalls when
// `queue_depth` compressed slabs are waiting). The container is whichever
// IoTool config.io_library names — each compressed slab lands as one chunk
// through IoTool::ChunkWriter, so the on-PFS file is a real HDF5/NetCDF/
// ADIOS chunked dataset, not a bespoke stream format. This is the overlap
// mechanism behind the paper's parallel write results (Figs. 10-12).

struct StreamConfig {
  int slabs = 8;        // pipeline depth: slabs split along dim 0
  int queue_depth = 2;  // slabs buffered in the channel before backpressure
  // Sector-ring transport between the pipeline and the PFS (io/transport.h):
  // chunks are staged into fixed-size pooled sectors and shipped by a
  // doorbell task with ring_depth sectors in flight per channel, so slab
  // compression, sector staging, and wire transfer all overlap. false
  // reverts to the blocking per-chunk append/fetch path (the container
  // bytes are identical either way).
  bool use_transport = true;
  TransportConfig transport;
};

// Transport columns shared by the streamed write/read/region records; all
// zero when the blocking path ran.
struct TransportTelemetry {
  int channels = 0;
  int ring_depth = 0;
  std::size_t sector_bytes = 0;
  std::size_t sectors = 0;         // sector transfers on the wire
  std::size_t credit_stalls = 0;   // host waits for a free descriptor
  double credit_stall_s = 0.0;     // modeled staging time lost to credits
  double mean_inflight = 0.0;      // time-averaged sectors in flight
  int peak_inflight = 0;           // max sectors simultaneously in flight
};

struct StreamWriteRecord {
  std::string codec;
  std::string io_library;  // container the chunks streamed through
  std::string path;        // chunked container on the PFS
  int slabs = 0;
  int queue_depth = 0;
  std::size_t original_bytes = 0;
  std::size_t compressed_bytes = 0;  // whole container (header+chunks+index)
  // Modeled platform times. serial_total_s charges compress-everything-
  // then-write-everything (the identical container writes, just not
  // overlapped); streamed_total_s is the pipeline makespan from the
  // per-slab recurrence (writer busy on slab i-1 while slab i compresses,
  // bounded by queue_depth).
  double serial_total_s = 0.0;
  double streamed_total_s = 0.0;
  // Host wall clock of the real concurrent run (compress tasks genuinely
  // overlap the writer thread on the executor).
  double host_wall_s = 0.0;
  // What the same run would have cost through the PR-8 blocking per-chunk
  // append path (reconstructed from the identical compress samples and
  // per-chunk stripe pricing; equals streamed_total_s when the blocking
  // path actually ran). The transport's speedup is
  // blocking_total_s / streamed_total_s.
  double blocking_total_s = 0.0;
  // Energy recorded through one shared thread-safe monitor.
  double compress_j = 0.0;
  double write_j = 0.0;
  // Per-slab platform times feeding the recurrence (compress, write).
  std::vector<double> slab_compress_s;
  std::vector<double> slab_write_s;
  // Sector-ring transport telemetry (zeros when use_transport was false).
  TransportTelemetry transport;

  double ratio() const {
    return compressed_bytes
               ? static_cast<double>(original_bytes) / compressed_bytes
               : 0.0;
  }
  double overlap_saving_s() const { return serial_total_s - streamed_total_s; }
};

// Runs the streamed experiment and leaves the chunked container at
// record.path (readable by run_streamed_read / read_chunked_field with the
// same io_library). The container is *zoned* (format version 2): each slab
// lands with the row interval it covers in the footer zone index, so
// partial-region readers (run_streamed_read_region) can later fetch only a
// query's covering slabs. Each append is priced at the PFS's live
// concurrent_writers()+concurrent_readers() count, so overlapping streams
// contend honestly.
StreamWriteRecord run_streamed_compress_write(const Field& field,
                                              const PipelineConfig& config,
                                              PfsSimulator& pfs,
                                              const StreamConfig& stream = {});

// --- Streaming (chunked) read experiment -----------------------------------
//
// The restart-time mirror of the write pipeline: a producer task fetches
// chunk i from the container with ranged PFS reads while this thread
// decompresses chunk i-1, connected by the same bounded channel. Fetch of
// slab i overlaps decompression of slab i-1, so the makespan undercuts the
// serial fetch-everything-then-decompress-everything schedule — the
// paper's Sec. VI-A "doubly effective" read-side benefit, measured.

struct StreamReadRecord {
  std::string io_library;
  std::string path;
  int slabs = 0;        // chunks found in the container index
  int queue_depth = 0;
  std::size_t container_bytes = 0;  // compressed container size on the PFS
  std::size_t field_bytes = 0;      // reconstructed field size
  // Modeled platform times: serial_total_s charges open + every fetch +
  // every decompression back-to-back; streamed_total_s is the pipeline
  // makespan (fetcher ahead of the decompressor, bounded by queue_depth).
  double serial_total_s = 0.0;
  double streamed_total_s = 0.0;
  double host_wall_s = 0.0;
  // Energy recorded through one shared thread-safe monitor.
  double fetch_j = 0.0;
  double decompress_j = 0.0;
  // Per-slab platform times feeding the recurrence (fetch, decompress).
  std::vector<double> slab_fetch_s;
  std::vector<double> slab_decompress_s;
  // Sector-ring transport telemetry (zeros when use_transport was false).
  TransportTelemetry transport;
  // The reassembled field.
  Field field;

  double overlap_saving_s() const { return serial_total_s - streamed_total_s; }
};

// Reads a chunked container written by run_streamed_compress_write (or any
// IoTool::ChunkWriter holding compressed slabs) back through the streamed
// fetch→decompress pipeline. config.io_library must name the container's
// tool; config.cpu selects the platform model. Only stream.queue_depth is
// honoured (the slab count comes from the container's chunk index). Throws
// CorruptStream — with no partial field escaping — when the container, its
// chunk index, or any slab is malformed.
StreamReadRecord run_streamed_read(PfsSimulator& pfs, const std::string& path,
                                   const PipelineConfig& config,
                                   const StreamConfig& stream = {});

// Serial reference for the same container: fetches every chunk in order,
// then decompresses them in order, on the calling thread. Bit-for-bit
// identical to run_streamed_read's field — the --verify baseline.
Field read_chunked_field(PfsSimulator& pfs, const std::string& path,
                         const std::string& io_library);

// --- Partial-region (zoned) read experiment --------------------------------
//
// The serving-scale query path: a client wants `region`, not the whole
// field. The container's footer zone index resolves the query box to its
// covering zones, and only those zones are fetched (ranged PFS reads) and
// decoded — fetch of zone i overlaps decode of zone i-1 through the same
// bounded channel as the full read pipeline. Bytes fetched therefore scale
// with the query, not with the field.

struct RegionReadRecord {
  std::string io_library;
  std::string path;
  Region region;
  int zones_total = 0;    // zones in the container's index
  int zones_decoded = 0;  // covering zones actually fetched + decoded
  int queue_depth = 0;
  std::size_t container_bytes = 0;  // whole container size on the PFS
  std::size_t bytes_fetched = 0;    // compressed bytes the query fetched
  std::size_t field_bytes = 0;      // reconstructed region size
  // Modeled platform times, same recurrence as StreamReadRecord but over
  // the covering set only.
  double serial_total_s = 0.0;
  double streamed_total_s = 0.0;
  double host_wall_s = 0.0;
  double fetch_j = 0.0;
  double decompress_j = 0.0;
  // Per-covering-zone platform times feeding the recurrence.
  std::vector<double> zone_fetch_s;
  std::vector<double> zone_decompress_s;
  // Sector-ring transport telemetry (zeros when use_transport was false).
  TransportTelemetry transport;
  // The assembled region (shaped region.shape).
  Field field;

  double overlap_saving_s() const { return serial_total_s - streamed_total_s; }
  // Fetched compressed bytes relative to the whole container — the
  // amplification a full-field fetch would have paid instead.
  double fetch_fraction() const {
    return container_bytes ? static_cast<double>(bytes_fetched) /
                                 static_cast<double>(container_bytes)
                           : 0.0;
  }
};

// Reads `region` of a zoned container written by run_streamed_compress_write
// through the streamed fetch→decode pipeline. Throws CorruptStream when the
// container has no zone index or any covering zone is malformed (no partial
// Field escapes), InvalidArgument when the region falls outside the dataset.
RegionReadRecord run_streamed_read_region(PfsSimulator& pfs,
                                          const std::string& path,
                                          const Region& region,
                                          const PipelineConfig& config,
                                          const StreamConfig& stream = {});

// Serial reference for the same query: fetches the covering zones in order,
// then decodes and assembles them in order, on the calling thread.
// Bit-for-bit identical to run_streamed_read_region's field — the --verify
// baseline for partial reads.
Field read_region_reference(PfsSimulator& pfs, const std::string& path,
                            const Region& region,
                            const std::string& io_library);

}  // namespace eblcio
