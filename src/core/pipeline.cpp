#include "core/pipeline.h"

#include <algorithm>

#include "common/buffer_pool.h"
#include "common/timer.h"
#include "compressors/chunking.h"
#include "compressors/compressor.h"
#include "compressors/zone.h"
#include "io/io_tool.h"
#include "parallel/executor.h"

namespace eblcio {

CompressionRecord run_compression(const Field& field,
                                  const PipelineConfig& config,
                                  Bytes* blob_out) {
  Compressor& comp = compressor(config.codec);
  const CpuModel& cpu = cpu_model(config.cpu);

  CompressOptions opt;
  opt.mode = BoundMode::kValueRangeRel;
  opt.error_bound = config.error_bound;
  opt.threads = config.threads;

  CompressionRecord rec;
  rec.codec = comp.name();
  rec.error_bound = config.error_bound;
  rec.threads = config.threads;
  rec.original_bytes = field.size_bytes();

  Bytes blob;
  rec.host_compress_s = timed_s([&] { blob = comp.compress(field, opt); });
  rec.compressed_bytes = blob.size();
  rec.ratio = static_cast<double>(rec.original_bytes) /
              static_cast<double>(blob.size());

  Field recon;
  const int decomp_threads =
      comp.caps().parallel_decompress ? config.threads : 1;
  rec.host_decompress_s =
      timed_s([&] { recon = comp.decompress(blob, decomp_threads); });
  rec.quality = compute_error_stats(field, recon);

  PowercapMonitor monitor(cpu);
  const auto ec =
      monitor.record_compute("compress", rec.host_compress_s, config.threads);
  const auto ed = monitor.record_compute("decompress", rec.host_decompress_s,
                                         decomp_threads);
  rec.compress_s = ec.seconds;
  rec.compress_j = ec.joules;
  rec.decompress_s = ed.seconds;
  rec.decompress_j = ed.joules;
  if (blob_out) *blob_out = std::move(blob);
  return rec;
}

WriteRecord run_compress_write(const Field& field,
                               const PipelineConfig& config,
                               PfsSimulator& pfs) {
  const CpuModel& cpu = cpu_model(config.cpu);
  IoTool& io = io_tool(config.io_library);

  WriteRecord rec;
  rec.io_library = io.name();
  Bytes blob;
  rec.compression = run_compression(field, config, &blob);

  const std::string base = "/pfs/" + field.name();
  PowercapMonitor monitor(cpu);

  const IoCost wc = io.write_blob(pfs, base + ".eblc." + io.name(),
                                  field.name(), blob);
  const auto wc_prep =
      monitor.record_compute("write-prep", wc.prep_seconds, 1);
  const auto wc_io = monitor.record_io("write", wc.transfer_seconds);
  rec.write_compressed_s = wc_prep.seconds + wc_io.seconds;
  rec.write_compressed_j = wc_prep.joules + wc_io.joules;

  const IoCost wo = io.write_field(pfs, base + ".orig." + io.name(), field);
  const auto wo_prep =
      monitor.record_compute("write-orig-prep", wo.prep_seconds, 1);
  const auto wo_io = monitor.record_io("write-orig", wo.transfer_seconds);
  rec.write_original_s = wo_prep.seconds + wo_io.seconds;
  rec.write_original_j = wo_prep.joules + wo_io.joules;

  TradeoffMeasurement m;
  m.compress_seconds = rec.compression.compress_s;
  m.compress_joules = rec.compression.compress_j;
  m.write_compressed_seconds = rec.write_compressed_s;
  m.write_compressed_joules = rec.write_compressed_j;
  m.write_original_seconds = rec.write_original_s;
  m.write_original_joules = rec.write_original_j;
  m.psnr_db = rec.compression.quality.psnr_db;
  rec.verdict = evaluate_tradeoff(m, config.psnr_min_db);
  return rec;
}

// --- Streaming (chunked) experiments ---------------------------------------

namespace {

struct ProducedSlab {
  std::size_t index = 0;
  Bytes blob;
};

// Closes the channel on every exit path so neither stage can wedge the
// other when one of them throws (a blocked push/pop returns once closed).
template <typename T>
struct ChannelCloser {
  BoundedChannel<T>* channel;
  ~ChannelCloser() { channel->close(); }
};

// The live client count the streamed pipelines feed the PFS contention
// model for *blocking* transfers: every registered writer and reader fleet
// across overlapping worlds, plus this client itself. Streams register
// with the PFS only while their data is in flight (see
// AppendStream::engage), so at call time the caller's own stream is not
// yet counted — the +1 adds it, exactly reproducing what the old
// whole-function WriterScope/ReaderScope registration fed the model. A
// lone pipeline sees 1; overlapping streams contend honestly. (Transport
// endpoints price their sectors themselves, while engaged, without the
// +1.)
int self_inclusive_clients(const PfsSimulator& pfs) {
  return std::max(1,
                  pfs.concurrent_writers() + pfs.concurrent_readers() + 1);
}

// One handle of a transported prefetch: slab ordinal + transport message.
struct PrefetchedSlab {
  std::size_t index = 0;
  std::size_t handle = 0;
};

void fill_telemetry(TransportTelemetry& t, const TransportConfig& config,
                    std::size_t sectors, std::size_t credit_stalls,
                    double credit_stall_s, double mean_inflight,
                    int peak_inflight) {
  t.channels = config.channels;
  t.ring_depth = config.ring_depth;
  t.sector_bytes = config.sector_bytes;
  t.sectors = sectors;
  t.credit_stalls = credit_stalls;
  t.credit_stall_s = credit_stall_s;
  t.mean_inflight = mean_inflight;
  t.peak_inflight = peak_inflight;
}

// Checks a decoded zone field against the container's zone index entry
// before any of its bytes are assembled: dims must match the dataset with
// the extent's row count, so a swapped or forged blob fails cleanly.
void check_zone_field(const Field& zone, const ChunkIndex& index,
                      std::size_t zi, const std::string& path) {
  const auto& dims = index.meta.dims;
  const Shape& s = zone.shape();
  EBLCIO_CHECK_STREAM(
      s.ndims() == static_cast<int>(dims.size()) &&
          s.dim(0) == static_cast<std::size_t>(index.zones[zi].rows),
      "zone blob does not match its index extent: " + path);
  for (int d = 1; d < s.ndims(); ++d)
    EBLCIO_CHECK_STREAM(s.dim(d) == dims[static_cast<std::size_t>(d)],
                        "zone blob does not match the dataset dims: " + path);
}

}  // namespace

StreamWriteRecord run_streamed_compress_write(const Field& field,
                                              const PipelineConfig& config,
                                              PfsSimulator& pfs,
                                              const StreamConfig& stream) {
  EBLCIO_CHECK_ARG(stream.slabs >= 1, "stream needs at least one slab");
  EBLCIO_CHECK_ARG(stream.queue_depth >= 1, "queue depth must be positive");
  Compressor& comp = compressor(config.codec);
  const CpuModel& cpu = cpu_model(config.cpu);
  IoTool& tool = io_tool(config.io_library);

  const auto slabs = split_slabs(field, stream.slabs);
  const std::size_t nslabs = slabs.size();
  // Slabs are zones: the same slab_rows distribution, so the footer zone
  // index places each chunk's row interval for later partial-region reads.
  const auto zones = zone_extents(field.shape().dim(0), stream.slabs);

  CompressOptions opt;
  opt.mode = BoundMode::kValueRangeRel;
  opt.error_bound = config.error_bound;
  opt.threads = config.threads;
  // The bound must be computed from the whole field's value range, not per
  // slab, or slab reconstructions would satisfy different bounds.
  const double abs_bound = absolute_bound_for(field, opt);
  CompressOptions slab_opt = opt;
  slab_opt.mode = BoundMode::kAbsolute;
  slab_opt.error_bound = abs_bound;

  StreamWriteRecord rec;
  rec.codec = comp.name();
  rec.io_library = tool.name();
  rec.path = "/pfs/" + field.name() + ".eblc.stream." + tool.name();
  rec.slabs = static_cast<int>(nslabs);
  rec.queue_depth = stream.queue_depth;
  rec.original_bytes = field.size_bytes();
  rec.slab_compress_s.resize(nslabs);
  rec.slab_write_s.resize(nslabs);

  PowercapMonitor monitor(cpu);  // thread-safe: both stages record into it
  BoundedChannel<ProducedSlab> channel(
      static_cast<std::size_t>(stream.queue_depth));

  WallTimer wall;

  // Producer: compresses slabs in order as one executor task (each slab may
  // itself fan out onto the pool via opt.threads); blocks on the channel
  // when queue_depth blobs await the writer.
  TaskGroup producer;
  double compress_j = 0.0;
  producer.run([&] {
    // The channel must close even when a slab fails to compress, or the
    // consumer would block in pop() forever and the exception (captured
    // by the group) would never surface through producer.wait().
    ChannelCloser<ProducedSlab> closer{&channel};
    for (std::size_t i = 0; i < nslabs; ++i) {
      WallTimer t;
      Bytes blob = comp.compress(slabs[i], slab_opt);
      const auto reading = monitor.record_compute("stream-compress",
                                                  t.elapsed_s(),
                                                  config.threads);
      rec.slab_compress_s[i] = reading.seconds;
      compress_j += reading.joules;
      channel.push({i, std::move(blob)});
    }
  });

  // Records one chunk-write IoCost: prep is container serialization work
  // (compute at one core), transfer is PFS time.
  const auto charge_io = [&](const char* prep_label, const char* io_label,
                             const IoCost& cost) {
    const auto prep = monitor.record_compute(prep_label, cost.prep_seconds, 1);
    const auto io = monitor.record_io(io_label, cost.transfer_seconds);
    return std::pair<double, double>(prep.seconds + io.seconds,
                                     prep.joules + io.joules);
  };

  // Consumer (this thread): streams chunks into the IoTool container, one
  // append_chunk per slab, while the producer compresses ahead. If it
  // throws, the closer unblocks the producer so the TaskGroup can unwind.
  ChannelCloser<ProducedSlab> closer{&channel};
  ChunkedDatasetMeta meta;
  meta.name = field.name();
  meta.dtype_code = 2;  // opaque compressed chunks
  meta.dims = field.shape().dims_vector();
  meta.attributes["content"] = "eblc-compressed";
  meta.attributes["codec"] = rec.codec;
  auto out = tool.open_zoned(pfs, rec.path, meta);
  if (stream.use_transport) out.enable_transport(stream.transport);
  auto [open_s, open_j] =
      charge_io("stream-write-prep", "stream-write-open", out.open_cost());
  double write_j = open_j;
  // Per-slab container prep (compute) and payload size, kept for the
  // transport timeline solver and the blocking-path reconstruction.
  std::vector<double> stage_prep_s(nslabs, 0.0);
  std::vector<std::size_t> chunk_bytes(nslabs, 0);
  while (auto produced = channel.pop()) {
    chunk_bytes[produced->index] = produced->blob.size();
    const IoCost w = out.append_zone(produced->blob, zones[produced->index],
                                     self_inclusive_clients(pfs));
    if (stream.use_transport) {
      // Transport mode: the append only *staged* sectors (transfer is 0);
      // the wire cost lands in transport()->records() and is charged after
      // the drain, when every sector's contended price is known.
      const auto prep =
          monitor.record_compute("stream-write-prep", w.prep_seconds, 1);
      stage_prep_s[produced->index] = prep.seconds;
      rec.slab_write_s[produced->index] = prep.seconds;
      write_j += prep.joules;
    } else {
      const auto [seconds, joules] =
          charge_io("stream-write-prep", "stream-write", w);
      rec.slab_write_s[produced->index] = seconds;
      write_j += joules;
    }
    // The blob has landed in the container; recycle its allocation for the
    // next slab's compress/staging buffers.
    BufferPool::global().release(std::move(produced->blob));
  }
  // close() drains the transport rings first, so every sector has retired
  // (and priced itself) before the footer commits.
  const IoCost close_cost = out.close(self_inclusive_clients(pfs));
  const auto [close_s, close_j] =
      charge_io("stream-write-prep", "stream-write-close", close_cost);
  write_j += close_j;
  producer.wait();

  rec.host_wall_s = wall.elapsed_s();
  rec.compressed_bytes = pfs.file_size(rec.path);
  rec.compress_j = compress_j;

  const std::size_t depth = static_cast<std::size_t>(stream.queue_depth);
  double serial_compress = 0.0;
  for (std::size_t i = 0; i < nslabs; ++i)
    serial_compress += rec.slab_compress_s[i];

  // Runs the PR-8 blocking pipeline recurrence — the producer finishes
  // slab i after slab i-1 and after a channel slot frees (the writer
  // popped slab i-1-depth); the writer starts slab i when both it and the
  // slab are ready — over the given per-slab write costs, returning the
  // last write's finish time.
  const auto blocking_recurrence = [&](const std::vector<double>& write_s) {
    std::vector<double> fc(nslabs, 0.0), fw(nslabs, 0.0);
    for (std::size_t i = 0; i < nslabs; ++i) {
      double start = i > 0 ? fc[i - 1] : 0.0;
      if (i >= depth + 2) start = std::max(start, fw[i - 2 - depth]);
      else if (i == depth + 1) start = std::max(start, open_s);
      fc[i] = start + rec.slab_compress_s[i];
      const double writer_free = i > 0 ? fw[i - 1] : open_s;
      fw[i] = std::max(fc[i], writer_free) + write_s[i];
    }
    return fw[nslabs - 1];
  };

  if (stream.use_transport) {
    SectorWriter& transport = *out.transport();
    const auto& sectors = transport.records();
    // Charge the wire once, now that every sector has its contended price;
    // fold each message's wire seconds into its slab_write_s column.
    double wire_total = 0.0;
    std::vector<double> slab_wire_s(nslabs, 0.0), slab_xfer_s(nslabs, 0.0);
    for (const SectorRecord& s : sectors) {
      wire_total += s.rpc_s + s.xfer_s;
      slab_wire_s[s.message] += s.rpc_s + s.xfer_s;
      slab_xfer_s[s.message] += s.xfer_s;
    }
    const auto wire = monitor.record_io("stream-write", wire_total);
    write_j += wire.joules;
    for (std::size_t i = 0; i < nslabs; ++i)
      rec.slab_write_s[i] += slab_wire_s[i];

    const WriteTimeline timeline =
        solve_write_timeline(stream.transport, sectors, rec.slab_compress_s,
                             stage_prep_s, depth, open_s);
    rec.streamed_total_s = timeline.makespan_s + close_s;
    fill_telemetry(rec.transport, stream.transport, sectors.size(),
                   transport.stats().credit_stalls, timeline.credit_stall_s,
                   timeline.mean_inflight, timeline.peak_inflight);

    // Blocking-path reconstruction: what the identical chunk sequence
    // would have cost through PR-8's one-append-per-chunk path — the same
    // prep and transfer bytes, but per-chunk stripe RPCs and no overlap
    // between staging and the wire.
    const PfsConfig& pc = pfs.config();
    std::vector<double> blocking_write_s(nslabs, 0.0);
    std::size_t offset = out.open_cost().bytes_written;
    double serial_write = 0.0;
    for (std::size_t i = 0; i < nslabs; ++i) {
      const std::size_t len = chunk_bytes[i];
      const std::size_t stripes =
          len ? (offset + len - 1) / pc.stripe_size - offset / pc.stripe_size +
                    1
              : (offset % pc.stripe_size != 0 ? 1 : 0);
      blocking_write_s[i] = stage_prep_s[i] +
                            static_cast<double>(stripes) * pc.rpc_latency_s +
                            slab_xfer_s[i];
      offset += len;
      serial_write += blocking_write_s[i];
    }
    rec.blocking_total_s = blocking_recurrence(blocking_write_s) + close_s;
    rec.serial_total_s = serial_compress + open_s + serial_write + close_s;
  } else {
    double serial_write = 0.0;
    for (std::size_t i = 0; i < nslabs; ++i)
      serial_write += rec.slab_write_s[i];
    rec.streamed_total_s = blocking_recurrence(rec.slab_write_s) + close_s;
    rec.blocking_total_s = rec.streamed_total_s;
    // Serial reference: the identical container writes, scheduled after all
    // compression instead of overlapped with it.
    rec.serial_total_s = serial_compress + open_s + serial_write + close_s;
  }
  rec.write_j = write_j;
  return rec;
}

StreamReadRecord run_streamed_read(PfsSimulator& pfs, const std::string& path,
                                   const PipelineConfig& config,
                                   const StreamConfig& stream) {
  EBLCIO_CHECK_ARG(stream.queue_depth >= 1, "queue depth must be positive");
  const CpuModel& cpu = cpu_model(config.cpu);
  IoTool& tool = io_tool(config.io_library);

  StreamReadRecord rec;
  rec.io_library = tool.name();
  rec.path = path;
  rec.queue_depth = stream.queue_depth;
  rec.container_bytes = pfs.file_size(path);

  PowercapMonitor monitor(cpu);  // thread-safe: both stages record into it

  // Open the container: the footer chunk index and dataset metadata arrive
  // through ranged reads before the pipeline starts (open paid once).
  auto reader =
      tool.open_chunked_reader(pfs, path, self_inclusive_clients(pfs));
  if (stream.use_transport) reader.enable_transport(stream.transport);
  const std::size_t nslabs = reader.index().chunks.size();
  EBLCIO_CHECK_STREAM(nslabs >= 1, "chunked container holds no slabs");
  rec.slabs = static_cast<int>(nslabs);
  rec.slab_fetch_s.resize(nslabs);
  rec.slab_decompress_s.resize(nslabs);

  const auto open_prep = monitor.record_compute(
      "stream-read-prep", reader.open_cost().prep_seconds, 1);
  const auto open_io =
      monitor.record_io("stream-read-open", reader.open_cost().transfer_seconds);
  const double open_s = open_prep.seconds + open_io.seconds;
  double fetch_j = open_prep.joules + open_io.joules;

  WallTimer wall;
  std::vector<Field> slab_fields(nslabs);
  // Per-slab consumer-side compute (fetch prep + decompress), the transport
  // timeline solver's consume column.
  std::vector<double> consume_s(nslabs, 0.0);
  double decompress_j = 0.0;
  TaskGroup producer;

  if (stream.use_transport) {
    // Producer: stages each chunk's sector fetches through the transport
    // (blocking only on channel credits) and hands the message handle
    // over; the drainer ships sectors while this thread decompresses.
    BoundedChannel<PrefetchedSlab> handles(
        static_cast<std::size_t>(stream.queue_depth));
    producer.run([&] {
      ChannelCloser<PrefetchedSlab> closer{&handles};
      for (std::size_t i = 0; i < nslabs; ++i)
        handles.push({i, reader.prefetch_chunk(i)});
    });

    // Consumer (this thread): awaits each assembled chunk, charges its
    // fetch, and decompresses it. A corrupt slab throws here; the closer
    // unblocks the producer and no partial field escapes.
    ChannelCloser<PrefetchedSlab> closer{&handles};
    while (auto produced = handles.pop()) {
      IoCost cost;
      Bytes blob = reader.await_chunk(produced->handle, produced->index, &cost);
      const auto prep =
          monitor.record_compute("stream-fetch-prep", cost.prep_seconds, 1);
      const auto io = monitor.record_io("stream-fetch", cost.transfer_seconds);
      rec.slab_fetch_s[produced->index] = prep.seconds + io.seconds;
      fetch_j += prep.joules + io.joules;
      WallTimer t;
      Field slab = decompress_any(blob, 1);
      const auto reading =
          monitor.record_compute("stream-decompress", t.elapsed_s(), 1);
      rec.slab_decompress_s[produced->index] = reading.seconds;
      consume_s[produced->index] = prep.seconds + reading.seconds;
      decompress_j += reading.joules;
      BufferPool::global().release(std::move(blob));
      slab_fields[produced->index] = std::move(slab);
    }
    producer.wait();
  } else {
    // Producer: fetches chunk i with blocking ranged PFS reads as one
    // executor task while the consumer decompresses chunk i-1; blocks on
    // the channel when queue_depth fetched slabs await the decompressor.
    BoundedChannel<ProducedSlab> channel(
        static_cast<std::size_t>(stream.queue_depth));
    producer.run([&] {
      ChannelCloser<ProducedSlab> closer{&channel};
      for (std::size_t i = 0; i < nslabs; ++i) {
        IoCost cost;
        Bytes blob = reader.read_chunk(i, &cost, self_inclusive_clients(pfs));
        const auto prep =
            monitor.record_compute("stream-fetch-prep", cost.prep_seconds, 1);
        const auto io =
            monitor.record_io("stream-fetch", cost.transfer_seconds);
        rec.slab_fetch_s[i] = prep.seconds + io.seconds;
        fetch_j += prep.joules + io.joules;
        channel.push({i, std::move(blob)});
      }
    });

    // Consumer (this thread): decompresses slabs as they arrive. A corrupt
    // slab throws here; the closer unblocks the producer and no partial
    // field escapes (the exception propagates out of this function).
    ChannelCloser<ProducedSlab> closer{&channel};
    while (auto produced = channel.pop()) {
      WallTimer t;
      Field slab = decompress_any(produced->blob, 1);
      const auto reading =
          monitor.record_compute("stream-decompress", t.elapsed_s(), 1);
      rec.slab_decompress_s[produced->index] = reading.seconds;
      decompress_j += reading.joules;
      // The fetched slab is decoded; its buffer feeds the next fetch.
      BufferPool::global().release(std::move(produced->blob));
      slab_fields[produced->index] = std::move(slab);
    }
    producer.wait();
  }

  rec.host_wall_s = wall.elapsed_s();
  rec.fetch_j = fetch_j;
  rec.decompress_j = decompress_j;
  rec.field = merge_slabs(slab_fields, reader.index().meta.dims,
                          reader.index().meta.name);
  rec.field_bytes = rec.field.size_bytes();

  const std::size_t depth = static_cast<std::size_t>(stream.queue_depth);
  double serial_fetch = 0.0, serial_decompress = 0.0;
  for (std::size_t i = 0; i < nslabs; ++i) {
    serial_fetch += rec.slab_fetch_s[i];
    serial_decompress += rec.slab_decompress_s[i];
  }

  if (stream.use_transport) {
    SectorReader& transport = *reader.transport();
    const ReadTimeline timeline =
        solve_read_timeline(stream.transport, transport.records(), consume_s,
                            depth, open_s);
    rec.streamed_total_s = timeline.makespan_s;
    fill_telemetry(rec.transport, stream.transport,
                   transport.records().size(),
                   transport.stats().credit_stalls, timeline.credit_stall_s,
                   timeline.mean_inflight, timeline.peak_inflight);
  } else {
    // Mirror of the write recurrence with the roles swapped: the fetcher
    // finishes slab i after slab i-1 and after a channel slot frees (the
    // decompressor popped slab i-1-depth when it finished slab i-2-depth);
    // the first fetch waits for the index fetch at open. The decompressor
    // starts slab i when both it and the fetched slab are ready.
    std::vector<double> ff(nslabs, 0.0), fd(nslabs, 0.0);
    for (std::size_t i = 0; i < nslabs; ++i) {
      double start = i > 0 ? ff[i - 1] : open_s;
      if (i >= depth + 2) start = std::max(start, fd[i - 2 - depth]);
      ff[i] = start + rec.slab_fetch_s[i];
      const double decomp_free = i > 0 ? fd[i - 1] : 0.0;
      fd[i] = std::max(ff[i], decomp_free) + rec.slab_decompress_s[i];
    }
    rec.streamed_total_s = fd[nslabs - 1];
  }
  // Serial reference: open, fetch everything, then decompress everything.
  rec.serial_total_s = open_s + serial_fetch + serial_decompress;
  return rec;
}

Field read_chunked_field(PfsSimulator& pfs, const std::string& path,
                         const std::string& io_library) {
  IoTool& tool = io_tool(io_library);
  auto reader = tool.open_chunked_reader(pfs, path);
  const std::size_t nslabs = reader.index().chunks.size();
  EBLCIO_CHECK_STREAM(nslabs >= 1, "chunked container holds no slabs");
  std::vector<Field> slab_fields(nslabs);
  for (std::size_t i = 0; i < nslabs; ++i) {
    Bytes blob = reader.read_chunk(i);
    slab_fields[i] = decompress_any(blob, 1);
    BufferPool::global().release(std::move(blob));
  }
  return merge_slabs(slab_fields, reader.index().meta.dims,
                     reader.index().meta.name);
}

// --- Partial-region (zoned) reads -------------------------------------------

namespace {

// Allocates the region-shaped output field once the first zone reveals the
// dtype (the container's dtype_code is the opaque-compressed tag, not the
// payload dtype).
Field make_region_field(const std::string& name, const Region& region,
                        DType dtype) {
  Shape shape{std::span<const std::size_t>(region.shape)};
  return dtype == DType::kFloat32 ? Field(name, NdArray<float>(shape))
                                  : Field(name, NdArray<double>(shape));
}

}  // namespace

RegionReadRecord run_streamed_read_region(PfsSimulator& pfs,
                                          const std::string& path,
                                          const Region& region,
                                          const PipelineConfig& config,
                                          const StreamConfig& stream) {
  EBLCIO_CHECK_ARG(stream.queue_depth >= 1, "queue depth must be positive");
  const CpuModel& cpu = cpu_model(config.cpu);
  IoTool& tool = io_tool(config.io_library);

  RegionReadRecord rec;
  rec.io_library = tool.name();
  rec.path = path;
  rec.region = region;
  rec.queue_depth = stream.queue_depth;
  rec.container_bytes = pfs.file_size(path);

  PowercapMonitor monitor(cpu);  // thread-safe: both stages record into it

  auto reader =
      tool.open_chunked_reader(pfs, path, self_inclusive_clients(pfs));
  if (stream.use_transport) reader.enable_transport(stream.transport);
  const ChunkIndex& index = reader.index();
  EBLCIO_CHECK_STREAM(index.zoned(),
                      "container has no zone index (written before zoning, "
                      "or unzoned writer): " + path);
  // Resolve the query box to its covering zones from the footer index
  // alone; everything after this touches only those zones.
  const std::vector<std::size_t> covering = reader.covering(region);
  EBLCIO_CHECK_STREAM(!covering.empty(),
                      "region resolves to no covering zones: " + path);
  const std::size_t nzones = covering.size();
  rec.zones_total = static_cast<int>(index.zones.size());
  rec.zones_decoded = static_cast<int>(nzones);
  rec.zone_fetch_s.resize(nzones);
  rec.zone_decompress_s.resize(nzones);

  const auto open_prep = monitor.record_compute(
      "region-read-prep", reader.open_cost().prep_seconds, 1);
  const auto open_io = monitor.record_io("region-read-open",
                                         reader.open_cost().transfer_seconds);
  const double open_s = open_prep.seconds + open_io.seconds;
  double fetch_j = open_prep.joules + open_io.joules;

  WallTimer wall;
  Field out;
  bool out_ready = false;
  std::vector<double> consume_s(nzones, 0.0);
  std::size_t bytes_fetched = 0;
  double decompress_j = 0.0;
  TaskGroup producer;

  // Consumer step shared by both paths: decodes one covering zone,
  // validates it against the index, and scatters its intersection with the
  // region into the output. Returns the dilated decode seconds. A corrupt
  // zone throws here; no partial field escapes.
  const auto consume_zone = [&](std::size_t i, const Bytes& blob) {
    const std::size_t zi = covering[i];
    WallTimer t;
    Field zone = decompress_any(blob, 1);
    check_zone_field(zone, index, zi, path);
    if (!out_ready) {
      out = make_region_field(index.meta.name, region, zone.dtype());
      out_ready = true;
    }
    EBLCIO_CHECK_STREAM(zone.dtype() == out.dtype(),
                        "zone blobs disagree on dtype: " + path);
    scatter_zone_into_region(
        zone, static_cast<std::size_t>(index.zones[zi].row_start), region,
        out);
    const auto reading =
        monitor.record_compute("region-decompress", t.elapsed_s(), 1);
    rec.zone_decompress_s[i] = reading.seconds;
    decompress_j += reading.joules;
    return reading.seconds;
  };

  if (stream.use_transport) {
    // Producer: stages each covering zone's sector fetches (in covering
    // order) while the consumer decodes the previous zone.
    BoundedChannel<PrefetchedSlab> handles(
        static_cast<std::size_t>(stream.queue_depth));
    producer.run([&] {
      ChannelCloser<PrefetchedSlab> closer{&handles};
      for (std::size_t i = 0; i < nzones; ++i)
        handles.push({i, reader.prefetch_chunk(covering[i])});
    });

    ChannelCloser<PrefetchedSlab> closer{&handles};
    while (auto produced = handles.pop()) {
      IoCost cost;
      Bytes blob =
          reader.await_chunk(produced->handle, covering[produced->index],
                             &cost);
      const auto prep =
          monitor.record_compute("region-fetch-prep", cost.prep_seconds, 1);
      const auto io = monitor.record_io("region-fetch", cost.transfer_seconds);
      rec.zone_fetch_s[produced->index] = prep.seconds + io.seconds;
      fetch_j += prep.joules + io.joules;
      bytes_fetched += blob.size();
      consume_s[produced->index] =
          prep.seconds + consume_zone(produced->index, blob);
      BufferPool::global().release(std::move(blob));
    }
    producer.wait();
  } else {
    // Producer: issues one blocking ranged fetch per covering zone (in
    // covering order) while the consumer decodes the previous zone.
    BoundedChannel<ProducedSlab> channel(
        static_cast<std::size_t>(stream.queue_depth));
    producer.run([&] {
      ChannelCloser<ProducedSlab> closer{&channel};
      for (std::size_t i = 0; i < nzones; ++i) {
        IoCost cost;
        Bytes blob = reader.read_chunk(covering[i], &cost,
                                       self_inclusive_clients(pfs));
        const auto prep =
            monitor.record_compute("region-fetch-prep", cost.prep_seconds, 1);
        const auto io =
            monitor.record_io("region-fetch", cost.transfer_seconds);
        rec.zone_fetch_s[i] = prep.seconds + io.seconds;
        fetch_j += prep.joules + io.joules;
        bytes_fetched += blob.size();
        channel.push({i, std::move(blob)});
      }
    });

    ChannelCloser<ProducedSlab> closer{&channel};
    while (auto produced = channel.pop()) {
      consume_zone(produced->index, produced->blob);
      BufferPool::global().release(std::move(produced->blob));
    }
    producer.wait();
  }

  rec.host_wall_s = wall.elapsed_s();
  rec.fetch_j = fetch_j;
  rec.decompress_j = decompress_j;
  rec.bytes_fetched = bytes_fetched;
  rec.field = std::move(out);
  rec.field_bytes = rec.field.size_bytes();

  const std::size_t depth = static_cast<std::size_t>(stream.queue_depth);
  double serial_fetch = 0.0, serial_decompress = 0.0;
  for (std::size_t i = 0; i < nzones; ++i) {
    serial_fetch += rec.zone_fetch_s[i];
    serial_decompress += rec.zone_decompress_s[i];
  }

  if (stream.use_transport) {
    SectorReader& transport = *reader.transport();
    const ReadTimeline timeline =
        solve_read_timeline(stream.transport, transport.records(), consume_s,
                            depth, open_s);
    rec.streamed_total_s = timeline.makespan_s;
    fill_telemetry(rec.transport, stream.transport,
                   transport.records().size(),
                   transport.stats().credit_stalls, timeline.credit_stall_s,
                   timeline.mean_inflight, timeline.peak_inflight);
  } else {
    // Same recurrence as the full read pipeline, over the covering set
    // only.
    std::vector<double> ff(nzones, 0.0), fd(nzones, 0.0);
    for (std::size_t i = 0; i < nzones; ++i) {
      double start = i > 0 ? ff[i - 1] : open_s;
      if (i >= depth + 2) start = std::max(start, fd[i - 2 - depth]);
      ff[i] = start + rec.zone_fetch_s[i];
      const double decomp_free = i > 0 ? fd[i - 1] : 0.0;
      fd[i] = std::max(ff[i], decomp_free) + rec.zone_decompress_s[i];
    }
    rec.streamed_total_s = fd[nzones - 1];
  }
  rec.serial_total_s = open_s + serial_fetch + serial_decompress;
  return rec;
}

Field read_region_reference(PfsSimulator& pfs, const std::string& path,
                            const Region& region,
                            const std::string& io_library) {
  IoTool& tool = io_tool(io_library);
  auto reader = tool.open_chunked_reader(pfs, path);
  const ChunkIndex& index = reader.index();
  EBLCIO_CHECK_STREAM(index.zoned(),
                      "container has no zone index: " + path);
  auto fetched = reader.read_zones(region);
  EBLCIO_CHECK_STREAM(!fetched.empty(),
                      "region resolves to no covering zones: " + path);

  Field out;
  bool out_ready = false;
  for (auto& f : fetched) {
    Field zone = decompress_any(f.blob, 1);
    check_zone_field(zone, index, f.zone, path);
    if (!out_ready) {
      out = make_region_field(index.meta.name, region, zone.dtype());
      out_ready = true;
    }
    EBLCIO_CHECK_STREAM(zone.dtype() == out.dtype(),
                        "zone blobs disagree on dtype: " + path);
    scatter_zone_into_region(
        zone, static_cast<std::size_t>(index.zones[f.zone].row_start), region,
        out);
    BufferPool::global().release(std::move(f.blob));
  }
  return out;
}

}  // namespace eblcio

