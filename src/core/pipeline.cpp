#include "core/pipeline.h"

#include "common/timer.h"
#include "compressors/compressor.h"
#include "io/io_tool.h"

namespace eblcio {

CompressionRecord run_compression(const Field& field,
                                  const PipelineConfig& config,
                                  Bytes* blob_out) {
  Compressor& comp = compressor(config.codec);
  const CpuModel& cpu = cpu_model(config.cpu);

  CompressOptions opt;
  opt.mode = BoundMode::kValueRangeRel;
  opt.error_bound = config.error_bound;
  opt.threads = config.threads;

  CompressionRecord rec;
  rec.codec = comp.name();
  rec.error_bound = config.error_bound;
  rec.threads = config.threads;
  rec.original_bytes = field.size_bytes();

  Bytes blob;
  rec.host_compress_s = timed_s([&] { blob = comp.compress(field, opt); });
  rec.compressed_bytes = blob.size();
  rec.ratio = static_cast<double>(rec.original_bytes) /
              static_cast<double>(blob.size());

  Field recon;
  const int decomp_threads =
      comp.caps().parallel_decompress ? config.threads : 1;
  rec.host_decompress_s =
      timed_s([&] { recon = comp.decompress(blob, decomp_threads); });
  rec.quality = compute_error_stats(field, recon);

  PowercapMonitor monitor(cpu);
  const auto ec =
      monitor.record_compute("compress", rec.host_compress_s, config.threads);
  const auto ed = monitor.record_compute("decompress", rec.host_decompress_s,
                                         decomp_threads);
  rec.compress_s = ec.seconds;
  rec.compress_j = ec.joules;
  rec.decompress_s = ed.seconds;
  rec.decompress_j = ed.joules;
  if (blob_out) *blob_out = std::move(blob);
  return rec;
}

WriteRecord run_compress_write(const Field& field,
                               const PipelineConfig& config,
                               PfsSimulator& pfs) {
  const CpuModel& cpu = cpu_model(config.cpu);
  IoTool& io = io_tool(config.io_library);

  WriteRecord rec;
  rec.io_library = io.name();
  Bytes blob;
  rec.compression = run_compression(field, config, &blob);

  const std::string base = "/pfs/" + field.name();
  PowercapMonitor monitor(cpu);

  const IoCost wc = io.write_blob(pfs, base + ".eblc." + io.name(),
                                  field.name(), blob);
  const auto wc_prep =
      monitor.record_compute("write-prep", wc.prep_seconds, 1);
  const auto wc_io = monitor.record_io("write", wc.transfer_seconds);
  rec.write_compressed_s = wc_prep.seconds + wc_io.seconds;
  rec.write_compressed_j = wc_prep.joules + wc_io.joules;

  const IoCost wo = io.write_field(pfs, base + ".orig." + io.name(), field);
  const auto wo_prep =
      monitor.record_compute("write-orig-prep", wo.prep_seconds, 1);
  const auto wo_io = monitor.record_io("write-orig", wo.transfer_seconds);
  rec.write_original_s = wo_prep.seconds + wo_io.seconds;
  rec.write_original_j = wo_prep.joules + wo_io.joules;

  TradeoffMeasurement m;
  m.compress_seconds = rec.compression.compress_s;
  m.compress_joules = rec.compression.compress_j;
  m.write_compressed_seconds = rec.write_compressed_s;
  m.write_compressed_joules = rec.write_compressed_j;
  m.write_original_seconds = rec.write_original_s;
  m.write_original_joules = rec.write_original_j;
  m.psnr_db = rec.compression.quality.psnr_db;
  rec.verdict = evaluate_tradeoff(m, config.psnr_min_db);
  return rec;
}

}  // namespace eblcio
