#include "core/pipeline.h"

#include <algorithm>

#include "common/timer.h"
#include "compressors/chunking.h"
#include "compressors/compressor.h"
#include "io/io_tool.h"
#include "parallel/executor.h"

namespace eblcio {

CompressionRecord run_compression(const Field& field,
                                  const PipelineConfig& config,
                                  Bytes* blob_out) {
  Compressor& comp = compressor(config.codec);
  const CpuModel& cpu = cpu_model(config.cpu);

  CompressOptions opt;
  opt.mode = BoundMode::kValueRangeRel;
  opt.error_bound = config.error_bound;
  opt.threads = config.threads;

  CompressionRecord rec;
  rec.codec = comp.name();
  rec.error_bound = config.error_bound;
  rec.threads = config.threads;
  rec.original_bytes = field.size_bytes();

  Bytes blob;
  rec.host_compress_s = timed_s([&] { blob = comp.compress(field, opt); });
  rec.compressed_bytes = blob.size();
  rec.ratio = static_cast<double>(rec.original_bytes) /
              static_cast<double>(blob.size());

  Field recon;
  const int decomp_threads =
      comp.caps().parallel_decompress ? config.threads : 1;
  rec.host_decompress_s =
      timed_s([&] { recon = comp.decompress(blob, decomp_threads); });
  rec.quality = compute_error_stats(field, recon);

  PowercapMonitor monitor(cpu);
  const auto ec =
      monitor.record_compute("compress", rec.host_compress_s, config.threads);
  const auto ed = monitor.record_compute("decompress", rec.host_decompress_s,
                                         decomp_threads);
  rec.compress_s = ec.seconds;
  rec.compress_j = ec.joules;
  rec.decompress_s = ed.seconds;
  rec.decompress_j = ed.joules;
  if (blob_out) *blob_out = std::move(blob);
  return rec;
}

WriteRecord run_compress_write(const Field& field,
                               const PipelineConfig& config,
                               PfsSimulator& pfs) {
  const CpuModel& cpu = cpu_model(config.cpu);
  IoTool& io = io_tool(config.io_library);

  WriteRecord rec;
  rec.io_library = io.name();
  Bytes blob;
  rec.compression = run_compression(field, config, &blob);

  const std::string base = "/pfs/" + field.name();
  PowercapMonitor monitor(cpu);

  const IoCost wc = io.write_blob(pfs, base + ".eblc." + io.name(),
                                  field.name(), blob);
  const auto wc_prep =
      monitor.record_compute("write-prep", wc.prep_seconds, 1);
  const auto wc_io = monitor.record_io("write", wc.transfer_seconds);
  rec.write_compressed_s = wc_prep.seconds + wc_io.seconds;
  rec.write_compressed_j = wc_prep.joules + wc_io.joules;

  const IoCost wo = io.write_field(pfs, base + ".orig." + io.name(), field);
  const auto wo_prep =
      monitor.record_compute("write-orig-prep", wo.prep_seconds, 1);
  const auto wo_io = monitor.record_io("write-orig", wo.transfer_seconds);
  rec.write_original_s = wo_prep.seconds + wo_io.seconds;
  rec.write_original_j = wo_prep.joules + wo_io.joules;

  TradeoffMeasurement m;
  m.compress_seconds = rec.compression.compress_s;
  m.compress_joules = rec.compression.compress_j;
  m.write_compressed_seconds = rec.write_compressed_s;
  m.write_compressed_joules = rec.write_compressed_j;
  m.write_original_seconds = rec.write_original_s;
  m.write_original_joules = rec.write_original_j;
  m.psnr_db = rec.compression.quality.psnr_db;
  rec.verdict = evaluate_tradeoff(m, config.psnr_min_db);
  return rec;
}

// --- Streaming (chunked) write experiment ---------------------------------

namespace {

// Streamed container framing: the header goes to the PFS before the first
// slab finishes compressing; each slab is an independent self-describing
// compressed blob, so the format needs no global size table.
constexpr std::uint32_t kStreamMagic = 0x45425331;  // "EBS1"

Bytes encode_stream_header(const Field& field, std::size_t nslabs) {
  Bytes out;
  append_pod<std::uint32_t>(out, kStreamMagic);
  append_string(out, field.name());
  const auto dims = field.shape().dims_vector();
  append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(dims.size()));
  for (std::size_t d : dims) append_pod<std::uint64_t>(out, d);
  append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(nslabs));
  return out;
}

struct ProducedSlab {
  std::size_t index = 0;
  Bytes blob;
};

// Closes the channel on every exit path so neither stage can wedge the
// other when one of them throws (a blocked push/pop returns once closed).
template <typename T>
struct ChannelCloser {
  BoundedChannel<T>* channel;
  ~ChannelCloser() { channel->close(); }
};

}  // namespace

StreamWriteRecord run_streamed_compress_write(const Field& field,
                                              const PipelineConfig& config,
                                              PfsSimulator& pfs,
                                              const StreamConfig& stream) {
  EBLCIO_CHECK_ARG(stream.slabs >= 1, "stream needs at least one slab");
  EBLCIO_CHECK_ARG(stream.queue_depth >= 1, "queue depth must be positive");
  Compressor& comp = compressor(config.codec);
  const CpuModel& cpu = cpu_model(config.cpu);

  const auto slabs = split_slabs(field, stream.slabs);
  const std::size_t nslabs = slabs.size();

  CompressOptions opt;
  opt.mode = BoundMode::kValueRangeRel;
  opt.error_bound = config.error_bound;
  opt.threads = config.threads;
  // The bound must be computed from the whole field's value range, not per
  // slab, or slab reconstructions would satisfy different bounds.
  const double abs_bound = absolute_bound_for(field, opt);
  CompressOptions slab_opt = opt;
  slab_opt.mode = BoundMode::kAbsolute;
  slab_opt.error_bound = abs_bound;

  StreamWriteRecord rec;
  rec.codec = comp.name();
  rec.path = "/pfs/" + field.name() + ".eblc.stream";
  rec.slabs = static_cast<int>(nslabs);
  rec.queue_depth = stream.queue_depth;
  rec.original_bytes = field.size_bytes();
  rec.slab_compress_s.resize(nslabs);
  rec.slab_write_s.resize(nslabs);

  PowercapMonitor monitor(cpu);  // thread-safe: both stages record into it
  BoundedChannel<ProducedSlab> channel(
      static_cast<std::size_t>(stream.queue_depth));

  WallTimer wall;

  // Producer: compresses slabs in order as one executor task (each slab may
  // itself fan out onto the pool via opt.threads); blocks on the channel
  // when queue_depth blobs await the writer.
  TaskGroup producer;
  double compress_j = 0.0;
  producer.run([&] {
    // The channel must close even when a slab fails to compress, or the
    // consumer would block in pop() forever and the exception (captured
    // by the group) would never surface through producer.wait().
    ChannelCloser<ProducedSlab> closer{&channel};
    for (std::size_t i = 0; i < nslabs; ++i) {
      WallTimer t;
      Bytes blob = comp.compress(slabs[i], slab_opt);
      const auto reading = monitor.record_compute("stream-compress",
                                                  t.elapsed_s(),
                                                  config.threads);
      rec.slab_compress_s[i] = reading.seconds;
      compress_j += reading.joules;
      channel.push({i, std::move(blob)});
    }
  });

  // Consumer (this thread): streams the container to the PFS, one append
  // per slab, while the producer compresses ahead. If it throws, the
  // closer unblocks the producer so the TaskGroup can unwind.
  ChannelCloser<ProducedSlab> closer{&channel};
  auto out = pfs.open_append(rec.path);
  const auto header_w = out.append(encode_stream_header(field, nslabs));
  double write_j =
      monitor.record_io("stream-write-header", header_w.seconds).joules;
  while (auto produced = channel.pop()) {
    Bytes framed;
    append_pod<std::uint64_t>(framed, produced->blob.size());
    append_bytes(framed, produced->blob);
    const auto w = out.append(framed);
    const auto reading = monitor.record_io("stream-write", w.seconds);
    rec.slab_write_s[produced->index] = reading.seconds;
    write_j += reading.joules;
  }
  producer.wait();

  rec.host_wall_s = wall.elapsed_s();
  rec.compressed_bytes = out.bytes_written();
  rec.compress_j = compress_j;
  rec.write_j = write_j;

  // Pipeline recurrence: the producer finishes slab i after finishing
  // slab i-1 and after a channel slot frees. A slot frees when the writer
  // *pops* slab i-1-depth — i.e. when it finishes the write before it
  // (effective buffering is queue_depth + the slab in the writer's
  // hands). The writer starts slab i when both it and the slab are ready.
  const std::size_t depth = static_cast<std::size_t>(stream.queue_depth);
  std::vector<double> fc(nslabs, 0.0), fw(nslabs, 0.0);
  double serial_compress = 0.0;
  for (std::size_t i = 0; i < nslabs; ++i) {
    double start = i > 0 ? fc[i - 1] : 0.0;
    if (i >= depth + 2) start = std::max(start, fw[i - 2 - depth]);
    else if (i == depth + 1) start = std::max(start, header_w.seconds);
    fc[i] = start + rec.slab_compress_s[i];
    const double writer_free = i > 0 ? fw[i - 1] : header_w.seconds;
    fw[i] = std::max(fc[i], writer_free) + rec.slab_write_s[i];
    serial_compress += rec.slab_compress_s[i];
  }
  rec.streamed_total_s = fw[nslabs - 1];
  rec.serial_total_s =
      serial_compress + pfs.transfer_seconds(rec.compressed_bytes, 1);
  return rec;
}

Field read_streamed_field(PfsSimulator& pfs, const std::string& path,
                          int threads) {
  const Bytes data = pfs.read_file(path);
  ByteReader r(data);
  EBLCIO_CHECK_STREAM(r.read_pod<std::uint32_t>() == kStreamMagic,
                      "not a streamed container");
  const std::string name = r.read_string();
  const auto ndims = r.read_pod<std::uint32_t>();
  std::vector<std::size_t> dims(ndims);
  for (auto& d : dims)
    d = static_cast<std::size_t>(r.read_pod<std::uint64_t>());
  const auto nslabs = r.read_pod<std::uint32_t>();
  EBLCIO_CHECK_STREAM(nslabs >= 1, "streamed container holds no slabs");

  std::vector<std::span<const std::byte>> blobs(nslabs);
  for (auto& b : blobs) {
    const auto size = r.read_pod<std::uint64_t>();
    b = r.read_bytes(size);
  }

  std::vector<Field> slab_fields(nslabs);
  parallel_for(nslabs, std::max(threads, 1), [&](std::size_t i) {
    slab_fields[i] = decompress_any(blobs[i], 1);
  });
  return merge_slabs(slab_fields, dims, name);
}

}  // namespace eblcio
