// Compression advisor: the "actionable takeaways" engine from the paper's
// discussion (Sec. VII) turned into an API. Given a field, a quality floor
// and an optimization objective, it trials the EBLC suite on a sampled
// sub-region and recommends compressor + error bound.
//
// Reentrancy / thread-safety (audited): advise_compression may be called
// concurrently from any threads, and its internal codec×bound trials run
// as concurrent sweep cells by default. This is safe because every trial
// owns its state: the sampled sub-region is built once and then only read,
// codec singletons from compressors/compressor.h are stateless across
// calls, each cell constructs its own PowercapMonitor (itself lock-
// protected), and scores/sorting happen after the sweep on the caller's
// thread. Candidate order in the report is deterministic: cells are
// collected in domain (codec-major, bound-minor) order and stable-sorted
// by score, so equal-score ties never depend on execution interleaving.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/field.h"
#include "core/experiment.h"

namespace eblcio {

enum class Objective {
  kMinEnergy,   // favour SZx/ZFP-style cheap compression
  kMaxRatio,    // favour SZ3/QoZ-style aggressive reduction
  kBalanced,    // ratio per joule
};

struct AdvisorConstraints {
  double psnr_min_db = 60.0;           // Eq. 5 floor
  Objective objective = Objective::kBalanced;
  std::vector<double> error_bounds = {1e-1, 1e-2, 1e-3, 1e-4, 1e-5};
  std::vector<std::string> codecs;     // empty = all five EBLCs
  std::string cpu = "9480";
  // Sweep execution: trials fan out as cells on the shared executor by
  // default; parallel = false runs them in order on the calling thread
  // (identical results — cells are independent and deterministic apart
  // from measured kernel time).
  bool parallel = true;
  int max_concurrent_trials = 0;  // <= 0: one executor task per trial
  // When set, each trial's compression is timed under the Sec. IV-C
  // repetition protocol and the mean kernel time feeds the energy model.
  std::optional<RepeatConfig> repeat;
};

struct AdvisorCandidate {
  std::string codec;
  double error_bound = 0.0;
  double ratio = 0.0;
  double psnr_db = 0.0;
  double compress_j = 0.0;   // on the sample, platform-modeled
  double score = 0.0;
  bool feasible = false;     // meets the PSNR floor
};

struct AdvisorReport {
  std::vector<AdvisorCandidate> candidates;  // sorted by descending score
  // The winner (first feasible candidate); empty codec if none feasible.
  AdvisorCandidate recommendation;
};

// Streaming hook: called once per evaluated (codec, bound) trial, in
// domain order, with running progress — incremental tables hang off this.
// `done`/`total` count trials, including ones a codec rejected.
using AdvisorProgressFn = std::function<void(
    const AdvisorCandidate& candidate, std::size_t done, std::size_t total)>;

// Trials every (codec, bound) pair on a centered sample of `field` (fast)
// and ranks them under the constraints. Trials execute as a grid sweep on
// the shared executor (see core/sweep.h and constraints.parallel).
AdvisorReport advise_compression(const Field& field,
                                 const AdvisorConstraints& constraints,
                                 const AdvisorProgressFn& on_trial = nullptr);

}  // namespace eblcio
