// Compression advisor: the "actionable takeaways" engine from the paper's
// discussion (Sec. VII) turned into an API. Given a field, a quality floor
// and an optimization objective, it trials the EBLC suite on a sampled
// sub-region and recommends compressor + error bound.
#pragma once

#include <string>
#include <vector>

#include "common/field.h"

namespace eblcio {

enum class Objective {
  kMinEnergy,   // favour SZx/ZFP-style cheap compression
  kMaxRatio,    // favour SZ3/QoZ-style aggressive reduction
  kBalanced,    // ratio per joule
};

struct AdvisorConstraints {
  double psnr_min_db = 60.0;           // Eq. 5 floor
  Objective objective = Objective::kBalanced;
  std::vector<double> error_bounds = {1e-1, 1e-2, 1e-3, 1e-4, 1e-5};
  std::vector<std::string> codecs;     // empty = all five EBLCs
  std::string cpu = "9480";
};

struct AdvisorCandidate {
  std::string codec;
  double error_bound = 0.0;
  double ratio = 0.0;
  double psnr_db = 0.0;
  double compress_j = 0.0;   // on the sample, platform-modeled
  double score = 0.0;
  bool feasible = false;     // meets the PSNR floor
};

struct AdvisorReport {
  std::vector<AdvisorCandidate> candidates;  // sorted by descending score
  // The winner (first feasible candidate); empty codec if none feasible.
  AdvisorCandidate recommendation;
};

// Trials every (codec, bound) pair on a centered sample of `field` (fast)
// and ranks them under the constraints.
AdvisorReport advise_compression(const Field& field,
                                 const AdvisorConstraints& constraints);

}  // namespace eblcio
