#include "core/tradeoff.h"

namespace eblcio {

TradeoffVerdict evaluate_tradeoff(const TradeoffMeasurement& m,
                                  double psnr_min_db) {
  TradeoffVerdict v;
  v.time_beneficial = m.compress_seconds + m.write_compressed_seconds <
                      m.write_original_seconds;
  v.energy_beneficial = m.compress_joules + m.write_compressed_joules <
                        m.write_original_joules;
  v.quality_acceptable = m.psnr_db >= psnr_min_db;

  if (m.write_compressed_joules > 0.0)
    v.io_energy_reduction = m.write_original_joules / m.write_compressed_joules;
  const double total = m.compress_joules + m.write_compressed_joules;
  if (total > 0.0)
    v.total_energy_reduction = m.write_original_joules / total;
  if (m.write_compressed_seconds > 0.0)
    v.io_time_reduction = m.write_original_seconds / m.write_compressed_seconds;
  return v;
}

}  // namespace eblcio
