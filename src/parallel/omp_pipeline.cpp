#include "parallel/omp_pipeline.h"

#include "common/timer.h"
#include "compressors/compressor.h"
#include "metrics/error_stats.h"
#include "parallel/executor.h"

namespace eblcio {

OmpRunResult run_omp_pipeline(const std::string& codec, const Field& field,
                              double eb_rel, int threads, bool verify) {
  Compressor& comp = compressor(codec);
  CompressOptions opt;
  opt.mode = BoundMode::kValueRangeRel;
  opt.error_bound = eb_rel;
  opt.threads = threads;

  OmpRunResult r;
  r.threads = threads;
  r.original_bytes = field.size_bytes();

  const ExecutorStats before = Executor::global().stats();

  Bytes blob;
  r.compress_seconds = timed_s([&] { blob = comp.compress(field, opt); });
  r.compressed_bytes = blob.size();

  Field recon;
  const int decomp_threads =
      comp.caps().parallel_decompress ? threads : 1;
  r.decompress_seconds =
      timed_s([&] { recon = comp.decompress(blob, decomp_threads); });

  const ExecutorStats after = Executor::global().stats();
  r.tasks_dispatched = after.tasks_completed - before.tasks_completed;
  r.task_seconds = after.task_seconds - before.task_seconds;

  if (verify) r.bound_ok = check_value_range_bound(field, recon, eb_rel);
  return r;
}

std::vector<OmpRunResult> run_thread_sweep(const std::string& codec,
                                           const Field& field, double eb_rel,
                                           const std::vector<int>& threads,
                                           bool verify) {
  const std::vector<int>& sweep =
      threads.empty() ? paper_thread_sweep() : threads;
  std::vector<OmpRunResult> results;
  results.reserve(sweep.size());
  for (int t : sweep)
    results.push_back(run_omp_pipeline(codec, field, eb_rel, t, verify));
  return results;
}

const std::vector<int>& paper_thread_sweep() {
  static const std::vector<int> kThreads = {1, 2, 4, 8, 16, 32, 64};
  return kThreads;
}

}  // namespace eblcio
