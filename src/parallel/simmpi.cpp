#include "parallel/simmpi.h"

#include <algorithm>
#include <cstring>
#include <exception>

#include "common/error.h"
#include "parallel/executor.h"

namespace eblcio {
namespace {

// Collective tags live in a reserved negative range so they never collide
// with user tags.
constexpr int kTagCollectiveUp = -1;
constexpr int kTagCollectiveDown = -2;

Bytes pack_doubles(std::span<const double> vals) {
  Bytes b;
  for (double v : vals) append_pod<double>(b, v);
  return b;
}

std::vector<double> unpack_doubles(std::span<const std::byte> b) {
  std::vector<double> out(b.size() / sizeof(double));
  std::memcpy(out.data(), b.data(), out.size() * sizeof(double));
  return out;
}

}  // namespace

int Communicator::size() const { return world_->nranks_; }

void Communicator::send(int dest, int tag, Bytes data) {
  EBLCIO_CHECK_ARG(dest >= 0 && dest < size(), "bad destination rank");
  world_->push({rank_, dest, tag}, std::move(data));
}

Bytes Communicator::recv(int src, int tag) {
  EBLCIO_CHECK_ARG(src >= 0 && src < size(), "bad source rank");
  return world_->pop({src, rank_, tag});
}

void Communicator::send_double(int dest, int tag, double v) {
  send(dest, tag, pack_doubles(std::span<const double>(&v, 1)));
}

double Communicator::recv_double(int src, int tag) {
  const Bytes b = recv(src, tag);
  EBLCIO_CHECK_STREAM(b.size() == sizeof(double), "bad double message");
  double v;
  std::memcpy(&v, b.data(), sizeof(double));
  return v;
}

// All collectives funnel through rank 0: each rank sends (sim_time, value),
// rank 0 reduces, then broadcasts (max_time, result). Clocks join at max.
namespace {
struct UpMsg {
  double time;
  double value;
};
}  // namespace

double Communicator::allreduce_sum(double v) {
  if (rank_ == 0) {
    double sum = v;
    double tmax = sim_time_s_;
    for (int r = 1; r < size(); ++r) {
      const Bytes b = recv(r, kTagCollectiveUp);
      const auto vals = unpack_doubles(b);
      tmax = std::max(tmax, vals[0]);
      sum += vals[1];
    }
    sim_time_s_ = tmax;
    for (int r = 1; r < size(); ++r) {
      const double down[2] = {tmax, sum};
      send(r, kTagCollectiveDown, pack_doubles(down));
    }
    return sum;
  }
  const double up[2] = {sim_time_s_, v};
  send(0, kTagCollectiveUp, pack_doubles(up));
  const auto vals = unpack_doubles(recv(0, kTagCollectiveDown));
  sim_time_s_ = vals[0];
  return vals[1];
}

double Communicator::allreduce_max(double v) {
  if (rank_ == 0) {
    double m = v;
    double tmax = sim_time_s_;
    for (int r = 1; r < size(); ++r) {
      const auto vals = unpack_doubles(recv(r, kTagCollectiveUp));
      tmax = std::max(tmax, vals[0]);
      m = std::max(m, vals[1]);
    }
    sim_time_s_ = tmax;
    for (int r = 1; r < size(); ++r) {
      const double down[2] = {tmax, m};
      send(r, kTagCollectiveDown, pack_doubles(down));
    }
    return m;
  }
  const double up[2] = {sim_time_s_, v};
  send(0, kTagCollectiveUp, pack_doubles(up));
  const auto vals = unpack_doubles(recv(0, kTagCollectiveDown));
  sim_time_s_ = vals[0];
  return vals[1];
}

void Communicator::barrier() { (void)allreduce_sum(0.0); }

std::vector<double> Communicator::gather(double v, int root) {
  // Time-synchronizing like the other collectives, routed through rank 0
  // then re-sent to root if root != 0 (simple, and fine at this scale).
  std::vector<double> result;
  if (rank_ == 0) {
    std::vector<double> all(size());
    all[0] = v;
    double tmax = sim_time_s_;
    for (int r = 1; r < size(); ++r) {
      const auto vals = unpack_doubles(recv(r, kTagCollectiveUp));
      tmax = std::max(tmax, vals[0]);
      all[r] = vals[1];
    }
    sim_time_s_ = tmax;
    for (int r = 1; r < size(); ++r)
      send(r, kTagCollectiveDown, pack_doubles(std::span(&tmax, 1)));
    if (root == 0) {
      result = std::move(all);
    } else {
      send(root, kTagCollectiveDown, pack_doubles(all));
    }
  } else {
    const double up[2] = {sim_time_s_, v};
    send(0, kTagCollectiveUp, pack_doubles(up));
    sim_time_s_ = unpack_doubles(recv(0, kTagCollectiveDown))[0];
    if (rank_ == root) result = unpack_doubles(recv(0, kTagCollectiveDown));
  }
  return result;
}

Bytes Communicator::bcast(Bytes data, int root) {
  barrier();
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r)
      if (r != rank_) send(r, kTagCollectiveDown, data);
    return data;
  }
  return recv(root, kTagCollectiveDown);
}

void Communicator::advance_time(double seconds) {
  EBLCIO_CHECK_ARG(seconds >= 0.0, "negative time advance");
  sim_time_s_ += seconds;
}

void SimMpiWorld::push(const Key& key, Bytes data) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    mailboxes_[key].push(std::move(data));
  }
  cv_.notify_all();
}

Bytes SimMpiWorld::pop(const Key& key) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    auto it = mailboxes_.find(key);
    return it != mailboxes_.end() && !it->second.empty();
  });
  auto& q = mailboxes_[key];
  Bytes data = std::move(q.front());
  q.pop();
  return data;
}

void SimMpiWorld::run(int nranks, const RankFn& fn) {
  EBLCIO_CHECK_ARG(nranks >= 1, "need at least one rank");
  SimMpiWorld world(nranks);

  // Rank bodies run as tasks on the shared executor. Each declares a
  // BlockingScope for its whole lifetime: ranks block in recv()/collectives
  // waiting on peers, so every *started* rank lends the pool a replacement
  // worker — that guarantees all nranks bodies eventually run concurrently
  // (the same liveness property the previous thread-per-rank code had)
  // while idle replacement workers retire once the world completes.
  TaskGroup group(Executor::global());
  for (int r = 0; r < nranks; ++r) {
    group.run([&world, &fn, r] {
      Executor::BlockingScope scope;
      Communicator comm(&world, r);
      fn(comm);
    });
  }
  group.wait();  // rethrows the first rank exception
}

}  // namespace eblcio
