// Strong-scaling driver for parallel compressor modes (paper Sec. IV-C:
// threads 1..64 in powers of two, fixed problem size).
//
// Naming note: "omp" here is the *paper's* terminology — Fig. 10 measures
// the codecs' "OpenMP modes" — kept so benches/tests map to figures. The
// implementation has no OpenMP: since the executor refactor, parallelism
// is slab tasks on the shared pool (see parallel/executor.h and
// parallel/README.md for the thread-count semantics).
//
// Runs the *real* parallel compress/decompress paths and reports measured
// wall times plus the blob size; the energy layer turns these into the
// Fig. 10 stacked bars. All parallelism rides the shared executor
// (parallel/executor.h): a whole thread sweep reuses one warm pool instead
// of re-spawning OpenMP teams per cell, and each result carries the
// executor task accounting for its cell.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/field.h"

namespace eblcio {

struct OmpRunResult {
  int threads = 1;
  double compress_seconds = 0.0;
  double decompress_seconds = 0.0;
  std::size_t compressed_bytes = 0;
  std::size_t original_bytes = 0;
  bool bound_ok = true;  // reconstruction verified against the bound
  // Executor accounting for this cell (deltas over the shared pool).
  std::uint64_t tasks_dispatched = 0;
  double task_seconds = 0.0;
  double ratio() const {
    return compressed_bytes
               ? static_cast<double>(original_bytes) / compressed_bytes
               : 0.0;
  }
};

// Compresses and decompresses `field` with `codec` at the value-range
// relative bound `eb_rel` using `threads` slab tasks on the shared
// executor (1 = serial mode). When `verify` is set the reconstruction is
// checked against the bound.
OmpRunResult run_omp_pipeline(const std::string& codec, const Field& field,
                              double eb_rel, int threads, bool verify = false);

// Runs the whole strong-scaling sweep on the one shared pool, one result
// per entry of `threads` (defaults to paper_thread_sweep()).
std::vector<OmpRunResult> run_thread_sweep(
    const std::string& codec, const Field& field, double eb_rel,
    const std::vector<int>& threads = {}, bool verify = false);

// The paper's thread sweep: 1, 2, 4, ..., 64.
const std::vector<int>& paper_thread_sweep();

}  // namespace eblcio
