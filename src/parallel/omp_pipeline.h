// Strong-scaling driver for OpenMP compressor modes (paper Sec. IV-C:
// threads 1..64 in powers of two, fixed problem size).
//
// Runs the *real* parallel compress/decompress paths and reports measured
// wall times plus the blob size; the energy layer turns these into the
// Fig. 10 stacked bars.
#pragma once

#include <string>

#include "common/field.h"

namespace eblcio {

struct OmpRunResult {
  int threads = 1;
  double compress_seconds = 0.0;
  double decompress_seconds = 0.0;
  std::size_t compressed_bytes = 0;
  std::size_t original_bytes = 0;
  bool bound_ok = true;  // reconstruction verified against the bound
  double ratio() const {
    return compressed_bytes
               ? static_cast<double>(original_bytes) / compressed_bytes
               : 0.0;
  }
};

// Compresses and decompresses `field` with `codec` at the value-range
// relative bound `eb_rel` using `threads` threads (1 = serial mode).
// When `verify` is set the reconstruction is checked against the bound.
OmpRunResult run_omp_pipeline(const std::string& codec, const Field& field,
                              double eb_rel, int threads, bool verify = false);

// The paper's thread sweep: 1, 2, 4, ..., 64.
const std::vector<int>& paper_thread_sweep();

}  // namespace eblcio
