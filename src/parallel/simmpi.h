// simmpi: an in-process message-passing runtime standing in for MPI.
//
// The paper's multi-node experiment (Sec. IV-E, Fig. 12) runs N nodes x R
// ranks, each compressing a copy of the data set and writing it to the PFS.
// We reproduce the programming model: ranks execute concurrently (as tasks
// on the shared executor, each holding a BlockingScope so blocking in recv
// never starves the pool), communicate via typed point-to-point messages,
// and synchronize through collectives. Each rank additionally carries a simulated clock so
// experiments can account platform time for modeled phases (compute dilated
// onto a CpuModel, PFS transfer times); collectives synchronize clocks to
// the maximum, exactly how barrier time behaves on a real machine.
//
// Collectives are implemented on top of send/recv through rank 0, keeping
// the runtime small and the semantics obvious.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace eblcio {

class SimMpiWorld;

// Per-rank handle passed to the rank function.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  // --- point to point ---
  void send(int dest, int tag, Bytes data);
  Bytes recv(int src, int tag);
  // Typed convenience wrappers.
  void send_double(int dest, int tag, double v);
  double recv_double(int src, int tag);

  // --- collectives (synchronize simulated clocks to the max) ---
  void barrier();
  double allreduce_sum(double v);
  double allreduce_max(double v);
  std::vector<double> gather(double v, int root);  // non-empty at root only
  Bytes bcast(Bytes data, int root);

  // --- simulated time ---
  void advance_time(double seconds);
  double sim_time() const { return sim_time_s_; }

 private:
  friend class SimMpiWorld;
  Communicator(SimMpiWorld* world, int rank) : world_(world), rank_(rank) {}

  SimMpiWorld* world_;
  int rank_;
  double sim_time_s_ = 0.0;
};

// Launches `nranks` rank functions as executor tasks and awaits them.
// The first exception thrown by a rank function is rethrown after all
// ranks finish or abort.
class SimMpiWorld {
 public:
  using RankFn = std::function<void(Communicator&)>;

  static void run(int nranks, const RankFn& fn);

 private:
  friend class Communicator;

  explicit SimMpiWorld(int nranks) : nranks_(nranks) {}

  struct Key {
    int src, dst, tag;
    bool operator<(const Key& o) const {
      if (src != o.src) return src < o.src;
      if (dst != o.dst) return dst < o.dst;
      return tag < o.tag;
    }
  };

  void push(const Key& key, Bytes data);
  Bytes pop(const Key& key);

  int nranks_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<Key, std::queue<Bytes>> mailboxes_;
};

}  // namespace eblcio
