// Shared work-stealing task executor — the one concurrency substrate for
// the whole library.
//
// Every parallel site (slab codecs, the strong-scaling sweep, simmpi ranks,
// the streaming compress→write pipeline) used to spin its own threads or
// OpenMP teams; they now all submit tasks here. One process-wide pool
// (Executor::global()) owns the worker threads, so repeated experiment
// cells reuse warm threads instead of re-spawning, and per-task wall-clock
// accounting is available in one place for the energy layer and benches.
//
// Structure: each worker owns a deque (LIFO for its own pushes, FIFO for
// thieves); external submissions land in a bounded injection queue whose
// capacity provides backpressure. Threads that wait on a TaskGroup help
// execute queued tasks instead of sleeping, which makes nested groups
// (a task submitting subtasks and waiting on them) deadlock-free. Tasks
// that legitimately block — a simmpi rank in recv(), a pipeline stage
// waiting on a channel — declare it with BlockingScope, and the pool
// temporarily grows a replacement worker so blocked tasks never starve
// runnable ones.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace eblcio {

struct ExecutorStats {
  std::uint64_t tasks_completed = 0;
  double task_seconds = 0.0;       // summed per-task wall clock
  std::uint64_t steals = 0;        // tasks taken from another worker's deque
  std::uint64_t pod_local_steals = 0;   // steals from a same-pod victim
  std::uint64_t pod_remote_steals = 0;  // steals that crossed a pod boundary
  std::uint64_t help_runs = 0;     // tasks run inline by a waiting thread
  std::uint64_t submit_waits = 0;  // submissions throttled by backpressure
  // Pod-hinted tasks, classified where they *ran*: local means on a worker
  // of the hinted pod — or inline on a waiting off-pool thread, which owns
  // the fan-out's buffers and so never crosses a memory node. Remote means
  // a worker of another pod executed it (a cross-pod steal moved it).
  // Every hinted task lands in exactly one bucket, so
  // placed_local + placed_remote equals the number of hinted submissions.
  std::uint64_t placed_local = 0;
  std::uint64_t placed_remote = 0;
  int workers = 0;                 // workers currently alive
  int pods = 0;                    // locality pods the workers split into
  double avg_task_seconds() const {
    return tasks_completed ? task_seconds / tasks_completed : 0.0;
  }
};

class TaskGroup;

class Executor {
 public:
  // threads <= 0 picks the hardware concurrency (at least 2 so producer/
  // consumer pipelines overlap even on one-core hosts). queue_capacity
  // bounds the external injection queue; full-queue submissions block.
  // pods <= 0 auto-detects the machine's NUMA node count (1 when sysfs is
  // unavailable); pods > 0 forces that many locality pods. Workers split
  // into contiguous pods and thieves scan same-pod victims before crossing
  // a pod boundary, so under plentiful work tasks tend to stay on the
  // memory node that spawned them; cross-pod stealing still happens
  // whenever a pod runs dry, so no task is ever stranded.
  explicit Executor(int threads = 0, std::size_t queue_capacity = 4096,
                    int pods = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Process-wide pool shared by codecs, pipelines, and simmpi.
  static Executor& global();

  // Base worker count (excludes temporary replacements for blocked tasks).
  int concurrency() const { return base_workers_; }

  // Number of locality pods the workers are partitioned into.
  int pods() const { return npods_; }

  ExecutorStats stats() const;

  // Declares that the current pool task may block outside the executor's
  // control (condition variables, channels, message recv). While the scope
  // is alive the pool keeps an extra worker so runnable tasks still make
  // progress; constructed outside a pool thread it is a no-op. Throws
  // Error when the pool's hard worker cap prevents covering the blocked
  // task — deadlock would be the alternative.
  class BlockingScope {
   public:
    BlockingScope();
    ~BlockingScope();
    BlockingScope(const BlockingScope&) = delete;
    BlockingScope& operator=(const BlockingScope&) = delete;

   private:
    Executor* ex_;
  };

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
    // Locality pod this task's working set lives on; -1 = no preference.
    // Hinted tasks are *placed* onto a worker of that pod (see submit);
    // stealing is unchanged, so work conservation holds regardless.
    int pod_hint = -1;
  };

  struct Worker {
    std::mutex mu;
    std::deque<Task> deque;
    int pod = 0;  // locality pod; fixed at slot creation
  };

  static int detect_pods();    // NUMA node count from sysfs; 1 on failure
  int pod_of_slot(int slot) const;
  // Contiguous base-worker slot range [begin, end) forming pod `pod`
  // (non-empty: pods are clamped to the base worker count).
  int pod_slot_begin(int pod) const;
  int pod_slot_end(int pod) const;
  bool spawn_worker_locked();  // requires spawn_mu_; false at the hard cap
  void worker_loop(Worker* self, int slot);
  void run_task(Task& task);
  void submit(Task task);  // local push for pool threads, else injection
  bool try_pop_local(Worker* self, Task& out);
  bool try_pop_injection(Task& out);
  bool try_steal(const Worker* self, Task& out);
  // Acquire used by helping waiters: takes only tasks belonging to
  // `group`. Helpers must never run arbitrary tasks — an unrelated task
  // that blocks on the helper's own progress (a simmpi rank awaiting a
  // collective with the helper's rank) would deadlock on its stack.
  bool try_acquire_of_group(const TaskGroup* group, Task& out);
  void notify_one_worker();
  void begin_blocking();
  void end_blocking();

  // Worker context of the current thread (null off-pool).
  static thread_local Executor* tl_executor_;
  static thread_local Worker* tl_worker_;

  const int base_workers_;
  const std::size_t queue_capacity_;
  const int max_workers_;
  const int npods_;

  // Worker slots are pre-sized so stealers can scan without locking the
  // slot array; slots [0, alive_workers_) are populated.
  std::vector<std::unique_ptr<Worker>> slots_;
  std::atomic<int> published_workers_{0};

  std::mutex spawn_mu_;
  std::vector<std::thread> threads_;
  std::atomic<int> alive_workers_{0};
  std::atomic<int> target_workers_{0};

  // Slot indices of retired replacement workers, available for reuse. Own
  // lock so a spawner holding spawn_mu_ can join a retiring thread without
  // a lock cycle.
  std::mutex free_mu_;
  std::vector<int> free_slots_;

  std::mutex inj_mu_;
  std::condition_variable inj_not_full_;
  std::deque<Task> injection_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<std::size_t> queued_{0};
  std::atomic<bool> stop_{false};

  // Stats.
  std::atomic<std::uint64_t> tasks_completed_{0};
  std::atomic<double> task_seconds_{0.0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> pod_local_steals_{0};
  std::atomic<std::uint64_t> pod_remote_steals_{0};
  std::atomic<std::uint64_t> help_runs_{0};
  std::atomic<std::uint64_t> submit_waits_{0};
  std::atomic<std::uint64_t> placed_local_{0};
  std::atomic<std::uint64_t> placed_remote_{0};

  // Round-robin cursor per pod for hinted placement (allocated to npods_).
  std::unique_ptr<std::atomic<std::uint32_t>[]> pod_rr_;
};

// A set of tasks submitted together and awaited together. wait() helps the
// pool execute queued tasks *of this group* while it is unfinished, then
// rethrows the first exception any task raised. Groups nest: a pool task
// may create and wait on its own group. (Helping is group-scoped on
// purpose: running an arbitrary task inline could pick up one that blocks
// on the waiter's own progress and deadlock the stack.)
class TaskGroup {
 public:
  explicit TaskGroup(Executor& ex = Executor::global()) : ex_(&ex) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  Executor& executor() const { return *ex_; }

  // Submits one task. Blocks when the executor's injection queue is full
  // (backpressure), unless called from a pool worker (local push).
  void run(std::function<void()> fn);

  // Submits one task with a locality-pod placement hint: the task is
  // enqueued onto a worker of pod `pod_hint % pods()` so its working set
  // stays on the memory node that owns it. pod_hint < 0 = no preference.
  // Hinted placement bypasses the injection queue (like a local push), so
  // callers should use it for bounded fan-outs, not unbounded streams.
  void run(std::function<void()> fn, int pod_hint);

  // Waits for every submitted task, executing this group's queued tasks
  // while waiting. Rethrows the first captured exception.
  void wait();

  std::size_t pending() const { return pending_.load(); }

 private:
  friend class Executor;
  void finish(std::exception_ptr err);

  Executor* ex_;
  std::atomic<std::size_t> pending_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  std::exception_ptr error_;
};

// Runs body(i) for i in [0, n) as executor tasks and waits. At most
// max_tasks tasks are created (consecutive-index blocks); max_tasks <= 0
// means one task per index. The calling thread helps execute. Blocks map
// to locality pods deterministically (block t -> pod t*pods/ntasks) and
// are submitted pod-interleaved so every pod is fed from the first few
// submissions.
void parallel_for(std::size_t n, int max_tasks,
                  const std::function<void(std::size_t)>& body,
                  Executor& ex = Executor::global());

// Submission order for a hinted fan-out of `ntasks` blocks over `npods`
// pods (block t hinted to pod t*npods/ntasks): round-robins across the
// pods' block ranges, so every pod receives a task within the first
// `npods` submissions. Emitting one pod's whole batch before the next
// pod's first task would let the idle pods' workers wake to empty deques
// and cross-steal the early batch, defeating placement at the start of
// every fan-out. Identity order when npods <= 1.
std::vector<std::size_t> pod_interleaved_order(std::size_t ntasks,
                                               int npods);

// Bounded single-producer/single-consumer-friendly channel used to connect
// pipeline stages with backpressure. push() blocks while the channel holds
// `capacity` items; pop() blocks until an item or close() arrives. Both
// waits declare BlockingScope so pool tasks on either end never starve the
// pool.
template <typename T>
class BoundedChannel {
 public:
  explicit BoundedChannel(std::size_t capacity) : capacity_(capacity) {}

  void push(T item) {
    Executor::BlockingScope scope;
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return;  // dropped: consumer is gone
    items_.push_back(std::move(item));
    not_empty_.notify_one();
  }

  // Returns nullopt once the channel is closed and drained.
  std::optional<T> pop() {
    Executor::BlockingScope scope;
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  const std::size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace eblcio
