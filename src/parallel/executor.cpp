#include "parallel/executor.h"

#include <algorithm>
#include <exception>
#include <fstream>
#include <functional>
#include <string>

#include "common/error.h"
#include "common/rng.h"
#include "common/timer.h"

namespace eblcio {
thread_local Executor* Executor::tl_executor_ = nullptr;
thread_local Executor::Worker* Executor::tl_worker_ = nullptr;

int Executor::detect_pods() {
  // The online-node list ("0", "0-3", "0,2-3", ...) counts the machine's
  // populated NUMA nodes. Any parse or open failure degrades to a single
  // pod — exactly the pre-pod stealing behavior.
  std::ifstream f("/sys/devices/system/node/online");
  if (!f) return 1;
  std::string spec;
  if (!std::getline(f, spec) || spec.empty()) return 1;
  int nodes = 0;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t next = spec.find(',', pos);
    if (next == std::string::npos) next = spec.size();
    const std::string item = spec.substr(pos, next - pos);
    const std::size_t dash = item.find('-');
    try {
      if (dash == std::string::npos) {
        nodes += 1;
      } else {
        const long lo = std::stol(item.substr(0, dash));
        const long hi = std::stol(item.substr(dash + 1));
        if (hi < lo) return 1;
        nodes += static_cast<int>(hi - lo + 1);
      }
    } catch (...) {
      return 1;
    }
    pos = next + 1;
  }
  return std::max(1, nodes);
}

int Executor::pod_of_slot(int slot) const {
  // Base workers split into contiguous pods (mirroring how node-bound
  // threads would be laid out); temporary replacement workers round-robin
  // so blocking-heavy phases don't pile every replacement into pod 0.
  if (slot < base_workers_)
    return static_cast<int>((static_cast<long long>(slot) * npods_) /
                            base_workers_);
  return slot % npods_;
}

int Executor::pod_slot_begin(int pod) const {
  // Inverse of pod_of_slot over the base workers: the first slot s with
  // s * npods / base == pod.
  return static_cast<int>(
      (static_cast<long long>(pod) * base_workers_ + npods_ - 1) / npods_);
}

int Executor::pod_slot_end(int pod) const {
  return pod_slot_begin(pod + 1);
}

Executor::Executor(int threads, std::size_t queue_capacity, int pods)
    : base_workers_(threads > 0
                        ? threads
                        : std::max(2u, std::thread::hardware_concurrency())),
      queue_capacity_(queue_capacity),
      max_workers_(base_workers_ + 4096),
      npods_(std::clamp(pods > 0 ? pods : detect_pods(), 1, base_workers_)) {
  EBLCIO_CHECK_ARG(queue_capacity >= 1, "queue capacity must be positive");
  pod_rr_ = std::make_unique<std::atomic<std::uint32_t>[]>(
      static_cast<std::size_t>(npods_));
  for (int p = 0; p < npods_; ++p) pod_rr_[p].store(0);
  slots_.resize(max_workers_);
  threads_.resize(max_workers_);
  target_workers_.store(base_workers_);
  std::lock_guard<std::mutex> lock(spawn_mu_);
  for (int i = 0; i < base_workers_; ++i) spawn_worker_locked();
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_.store(true);
  }
  wake_cv_.notify_all();
  inj_not_full_.notify_all();
  for (auto& t : threads_)
    if (t.joinable()) t.join();
}

Executor& Executor::global() {
  static Executor ex;
  return ex;
}

bool Executor::spawn_worker_locked() {
  int slot = -1;
  {
    std::lock_guard<std::mutex> lock(free_mu_);
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    }
  }
  if (slot < 0) {
    slot = published_workers_.load();
    if (slot >= max_workers_) return false;  // pool at its hard cap
    slots_[slot] = std::make_unique<Worker>();
    slots_[slot]->pod = pod_of_slot(slot);
    published_workers_.store(slot + 1);  // publish after construction
  } else if (threads_[slot].joinable()) {
    threads_[slot].join();  // reap the retired thread that used this slot
  }
  alive_workers_.fetch_add(1);
  Worker* w = slots_[slot].get();
  threads_[slot] = std::thread([this, w, slot] { worker_loop(w, slot); });
  return true;
}

void Executor::worker_loop(Worker* self, int slot) {
  tl_executor_ = this;
  tl_worker_ = self;
  while (true) {
    Task task;
    if (try_pop_local(self, task) || try_pop_injection(task) ||
        try_steal(self, task)) {
      run_task(task);
      continue;
    }
    // Spare replacement worker (its blocked peer returned)? The retire
    // decision must serialize with begin_blocking's spawn decision on
    // spawn_mu_, or a concurrent retire + spawn-skip could erode the
    // runnable worker count below the target.
    if (alive_workers_.load() > target_workers_.load()) {
      std::lock_guard<std::mutex> spawn_lock(spawn_mu_);
      if (alive_workers_.load() > target_workers_.load()) {
        alive_workers_.fetch_sub(1);
        std::lock_guard<std::mutex> free_lock(free_mu_);
        free_slots_.push_back(slot);
        tl_executor_ = nullptr;
        tl_worker_ = nullptr;
        return;
      }
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    if (stop_.load()) break;
    if (queued_.load() == 0)
      wake_cv_.wait(lock, [&] {
        return stop_.load() || queued_.load() > 0 ||
               alive_workers_.load() > target_workers_.load();
      });
  }
  tl_executor_ = nullptr;
  tl_worker_ = nullptr;
}

void Executor::run_task(Task& task) {
  if (task.pod_hint >= 0) {
    // Placement efficacy accounting: a hinted task counts local when it
    // runs on a worker of the hinted pod, or inline on an off-pool waiter
    // (the thread that owns the fan-out's buffers — no node crossing
    // either way). It counts remote when a cross-pod steal or help moved
    // it onto a worker of another pod. Exactly one bucket per hinted task.
    const int pod = task.pod_hint % std::max(npods_, 1);
    Worker* w = tl_executor_ == this ? tl_worker_ : nullptr;
    ((!w || w->pod == pod) ? placed_local_ : placed_remote_).fetch_add(1);
  }
  WallTimer timer;
  std::exception_ptr err;
  try {
    task.fn();
  } catch (...) {
    err = std::current_exception();
  }
  task_seconds_.fetch_add(timer.elapsed_s());
  tasks_completed_.fetch_add(1);
  if (task.group) task.group->finish(err);
}

void Executor::submit(Task task) {
  // Pod-hinted placement: enqueue onto a worker of the hinted pod so the
  // task's first execution attempt happens on the memory node that owns
  // its working set. Round-robin inside the pod spreads a fan-out across
  // the pod's workers; thieves still steal from the FIFO end as usual, so
  // a hinted task is only a *preference* — work conservation is untouched.
  // Skipped when the submitter already sits in the hinted pod (its local
  // push IS the placement) and during shutdown (the injection path below
  // owns the task-drop protocol).
  if (task.pod_hint >= 0 && npods_ > 1 && !stop_.load()) {
    const int pod = task.pod_hint % npods_;
    if (!(tl_executor_ == this && tl_worker_ && tl_worker_->pod == pod)) {
      const int lo = pod_slot_begin(pod);
      const int width = pod_slot_end(pod) - lo;
      const int slot =
          lo + static_cast<int>(pod_rr_[pod].fetch_add(1) %
                                static_cast<std::uint32_t>(width));
      Worker* target = slots_[slot].get();
      {
        std::lock_guard<std::mutex> lock(target->mu);
        target->deque.push_back(std::move(task));
      }
      queued_.fetch_add(1);
      notify_one_worker();
      return;
    }
  }
  if (tl_executor_ == this && tl_worker_) {
    // Pool thread: push to the owner's deque (LIFO end). Local pushes are
    // not bounded — task recursion depth bounds them naturally, and
    // blocking a worker on its own queue would deadlock nested groups.
    {
      std::lock_guard<std::mutex> lock(tl_worker_->mu);
      tl_worker_->deque.push_back(std::move(task));
    }
    queued_.fetch_add(1);
    notify_one_worker();
    return;
  }
  std::unique_lock<std::mutex> lock(inj_mu_);
  if (injection_.size() >= queue_capacity_) {
    submit_waits_.fetch_add(1);
    Executor::BlockingScope scope;  // submitting task may be a pool task
    inj_not_full_.wait(lock, [&] {
      return injection_.size() < queue_capacity_ || stop_.load();
    });
  }
  if (stop_.load()) {
    // Executor is shutting down: the task will never run, but the group's
    // pending count must still resolve or its waiter spins forever.
    lock.unlock();
    if (task.group)
      task.group->finish(std::make_exception_ptr(
          Error("task dropped: executor is shutting down")));
    return;
  }
  injection_.push_back(std::move(task));
  lock.unlock();
  queued_.fetch_add(1);
  notify_one_worker();
}

bool Executor::try_pop_local(Worker* self, Task& out) {
  std::lock_guard<std::mutex> lock(self->mu);
  if (self->deque.empty()) return false;
  out = std::move(self->deque.back());
  self->deque.pop_back();
  queued_.fetch_sub(1);
  return true;
}

bool Executor::try_pop_injection(Task& out) {
  std::lock_guard<std::mutex> lock(inj_mu_);
  if (injection_.empty()) return false;
  out = std::move(injection_.front());
  injection_.pop_front();
  queued_.fetch_sub(1);
  inj_not_full_.notify_one();
  return true;
}

bool Executor::try_steal(const Worker* self, Task& out) {
  const int published = published_workers_.load();
  if (published <= 0) return false;
  // Randomized victim selection: scanning upward from slot 0 made every
  // thief hammer worker 0's deque lock first, so under fan-out from one
  // producer all thieves serialized on the same mutex. A per-thread random
  // starting slot spreads the scan pressure uniformly across victims; the
  // circular scan still visits every published worker, so no queued task
  // is ever missed.
  //
  // Locality pods layer on top: pass 0 considers only same-pod victims,
  // pass 1 only cross-pod ones. A stolen task's working set was touched by
  // its producer, so preferring a victim on the thief's own memory node
  // keeps the refetch on-node; the cross-pod pass preserves full work
  // conservation when the local pod is dry.
  static thread_local Rng steal_rng(
      0x9e3779b97f4a7c15ULL ^
      static_cast<std::uint64_t>(
          std::hash<std::thread::id>{}(std::this_thread::get_id())));
  const int start = static_cast<int>(
      steal_rng.next_below(static_cast<std::uint64_t>(published)));
  const int passes = npods_ > 1 ? 2 : 1;
  for (int pass = 0; pass < passes; ++pass) {
    for (int k = 0; k < published; ++k) {
      const int i =
          start + k < published ? start + k : start + k - published;
      Worker* victim = slots_[i].get();
      if (victim == self) continue;
      const bool same_pod = victim->pod == self->pod;
      if (npods_ > 1 && same_pod != (pass == 0)) continue;
      std::lock_guard<std::mutex> lock(victim->mu);
      if (victim->deque.empty()) continue;
      out = std::move(victim->deque.front());  // FIFO end: oldest task
      victim->deque.pop_front();
      queued_.fetch_sub(1);
      steals_.fetch_add(1);
      (same_pod ? pod_local_steals_ : pod_remote_steals_).fetch_add(1);
      return true;
    }
  }
  return false;
}

bool Executor::try_acquire_of_group(const TaskGroup* group, Task& out) {
  // Scan every queue for a task of `group` (newest-first in the helper's
  // own deque, oldest-first elsewhere). Tasks of other groups are left in
  // place: they may block on progress only this thread can make.
  auto take_from = [&](Worker* w, bool from_back) {
    std::lock_guard<std::mutex> lock(w->mu);
    auto& dq = w->deque;
    for (std::size_t k = 0; k < dq.size(); ++k) {
      const std::size_t i = from_back ? dq.size() - 1 - k : k;
      if (dq[i].group != group) continue;
      out = std::move(dq[i]);
      dq.erase(dq.begin() + static_cast<std::ptrdiff_t>(i));
      queued_.fetch_sub(1);
      return true;
    }
    return false;
  };
  if (tl_executor_ == this && tl_worker_ && take_from(tl_worker_, true))
    return true;
  {
    std::lock_guard<std::mutex> lock(inj_mu_);
    for (std::size_t i = 0; i < injection_.size(); ++i) {
      if (injection_[i].group != group) continue;
      out = std::move(injection_[i]);
      injection_.erase(injection_.begin() + static_cast<std::ptrdiff_t>(i));
      queued_.fetch_sub(1);
      inj_not_full_.notify_one();
      return true;
    }
  }
  const int published = published_workers_.load();
  if (published <= 0) return false;
  // Randomized starting victim, same rationale as try_steal: a helper
  // that always scans up from slot 0 drains pod 0's deques first, so
  // pod 0's workers run dry early and cross-steal the other pods' placed
  // tasks. A random start spreads the helper's draining evenly.
  static thread_local Rng acquire_rng(
      0xd1b54a32d192ed03ULL ^
      static_cast<std::uint64_t>(
          std::hash<std::thread::id>{}(std::this_thread::get_id())));
  const int start = static_cast<int>(
      acquire_rng.next_below(static_cast<std::uint64_t>(published)));
  for (int k = 0; k < published; ++k) {
    const int i = start + k < published ? start + k : start + k - published;
    Worker* victim = slots_[i].get();
    if (victim == tl_worker_) continue;
    if (take_from(victim, false)) {
      steals_.fetch_add(1);
      return true;
    }
  }
  return false;
}

void Executor::notify_one_worker() {
  std::lock_guard<std::mutex> lock(wake_mu_);
  wake_cv_.notify_one();
}

void Executor::begin_blocking() {
  // target++ and the spawn decision form one critical section on
  // spawn_mu_, pairing with the worker retire check: at every release of
  // spawn_mu_, alive >= target holds. A blocking task without a
  // replacement worker is a liveness hole (peers it waits on may never be
  // scheduled), so hitting the hard cap is a structured error, not a
  // silent degradation into deadlock.
  std::lock_guard<std::mutex> lock(spawn_mu_);
  target_workers_.fetch_add(1);
  if (alive_workers_.load() < target_workers_.load() &&
      !spawn_worker_locked()) {
    target_workers_.fetch_sub(1);
    throw Error("executor worker cap reached: cannot cover a blocking task");
  }
}

void Executor::end_blocking() {
  {
    std::lock_guard<std::mutex> lock(spawn_mu_);
    target_workers_.fetch_sub(1);
  }
  // Let one idle worker notice it is now spare and retire.
  std::lock_guard<std::mutex> lock(wake_mu_);
  wake_cv_.notify_one();
}

Executor::BlockingScope::BlockingScope()
    : ex_(tl_worker_ ? tl_executor_ : nullptr) {
  if (ex_) ex_->begin_blocking();
}

Executor::BlockingScope::~BlockingScope() {
  if (ex_) ex_->end_blocking();
}

ExecutorStats Executor::stats() const {
  ExecutorStats s;
  s.tasks_completed = tasks_completed_.load();
  s.task_seconds = task_seconds_.load();
  s.steals = steals_.load();
  s.pod_local_steals = pod_local_steals_.load();
  s.pod_remote_steals = pod_remote_steals_.load();
  s.help_runs = help_runs_.load();
  s.submit_waits = submit_waits_.load();
  s.placed_local = placed_local_.load();
  s.placed_remote = placed_remote_.load();
  s.workers = alive_workers_.load();
  s.pods = npods_;
  return s;
}

// --- TaskGroup -------------------------------------------------------------

TaskGroup::~TaskGroup() {
  if (pending_.load() > 0) {
    try {
      wait();
    } catch (...) {
      // Destructor must not throw; call wait() explicitly to observe errors.
    }
  }
}

void TaskGroup::run(std::function<void()> fn) {
  run(std::move(fn), /*pod_hint=*/-1);
}

void TaskGroup::run(std::function<void()> fn, int pod_hint) {
  pending_.fetch_add(1);
  ex_->submit(Executor::Task{std::move(fn), this, pod_hint});
}

void TaskGroup::wait() {
  while (pending_.load() > 0) {
    Executor::Task task;
    if (ex_->try_acquire_of_group(this, task)) {
      ex_->help_runs_.fetch_add(1);
      ex_->run_task(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (pending_.load() == 0) break;
    // Woken on every task completion; re-scan for queued work then.
    cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void TaskGroup::finish(std::exception_ptr err) {
  // One critical section, notify included: the waiter may observe
  // pending_ == 0 lock-free and destroy the group the moment we release
  // mu_, so no member may be touched after the unlock.
  std::lock_guard<std::mutex> lock(mu_);
  if (err && !error_) error_ = err;
  pending_.fetch_sub(1);
  cv_.notify_all();
}

// --- parallel_for ----------------------------------------------------------

std::vector<std::size_t> pod_interleaved_order(std::size_t ntasks,
                                               int npods) {
  std::vector<std::size_t> order;
  order.reserve(ntasks);
  if (npods <= 1) {
    for (std::size_t t = 0; t < ntasks; ++t) order.push_back(t);
    return order;
  }
  // Block t is hinted to pod t*npods/ntasks, so pod p owns the contiguous
  // block range [ceil(p*ntasks/npods), ceil((p+1)*ntasks/npods)). Emit the
  // j-th block of every pod before the (j+1)-th of any.
  const std::size_t pods = static_cast<std::size_t>(npods);
  for (std::size_t j = 0; order.size() < ntasks; ++j) {
    for (std::size_t p = 0; p < pods; ++p) {
      const std::size_t lo = (p * ntasks + pods - 1) / pods;
      const std::size_t hi = ((p + 1) * ntasks + pods - 1) / pods;
      if (lo + j < hi) order.push_back(lo + j);
    }
  }
  return order;
}

void parallel_for(std::size_t n, int max_tasks,
                  const std::function<void(std::size_t)>& body,
                  Executor& ex) {
  if (n == 0) return;
  if (n == 1) {
    body(0);
    return;
  }
  const std::size_t ntasks =
      max_tasks <= 0 ? n
                     : std::min<std::size_t>(
                           n, static_cast<std::size_t>(max_tasks));
  // Deterministic index-range -> pod mapping: consecutive blocks land on
  // consecutive pods, so when the caller's items are slab-ordered (the
  // chunked codecs, the zone sweep), slab i's task is placed on the pod
  // that owns slab i's buffers. Submission is pod-interleaved: emitting
  // pod 0's whole batch before pod 1's first task would let pod 1's
  // workers wake to empty deques and cross-steal pod 0's work, defeating
  // the placement before it starts.
  const int npods = ex.pods();
  TaskGroup group(ex);
  const auto submit_block = [&](std::size_t t) {
    const std::size_t lo = n * t / ntasks;
    const std::size_t hi = n * (t + 1) / ntasks;
    group.run(
        [&body, lo, hi] {
          for (std::size_t i = lo; i < hi; ++i) body(i);
        },
        static_cast<int>(t * static_cast<std::size_t>(npods) / ntasks));
  };
  for (std::size_t t : pod_interleaved_order(ntasks, npods)) submit_block(t);
  group.wait();
}

}  // namespace eblcio
