#include "energy/powercap_monitor.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace eblcio {

PowercapMonitor::PowercapMonitor(const CpuModel& cpu, double sample_dt_s)
    : cpu_(&cpu), sample_dt_s_(sample_dt_s) {
  EBLCIO_CHECK_ARG(sample_dt_s > 0.0, "sample interval must be positive");
}

EnergyReading PowercapMonitor::integrate(const std::string& label,
                                         double seconds, double watts) {
  // Discrete sampling like the real powercap reader: whole sample steps,
  // plus the final partial step. The slight quantization is intentional —
  // it is what the instrument in the paper sees.
  EnergyReading reading;
  std::lock_guard<std::mutex> lock(mu_);
  const double before = rapl_.total_joules();
  double remaining = seconds;
  int samples = 0;
  while (remaining > 0.0) {
    const double dt = std::min(remaining, sample_dt_s_);
    rapl_.advance(dt, watts);
    remaining -= dt;
    ++samples;
  }
  reading.seconds = seconds;
  reading.joules = rapl_.total_joules() - before;
  reading.samples = samples;
  phases_.push_back({label, reading});
  return reading;
}

EnergyReading PowercapMonitor::record_compute(const std::string& label,
                                              double host_seconds,
                                              int threads) {
  EBLCIO_CHECK_ARG(host_seconds >= 0.0, "negative runtime");
  const double platform_seconds = host_seconds / cpu_->speed_factor;
  const double watts = cpu_->node_power_w(std::max(threads, 1));
  return integrate(label, platform_seconds, watts);
}

EnergyReading PowercapMonitor::record_io(const std::string& label,
                                         double seconds) {
  return integrate(label, seconds, cpu_->io_power_w());
}

EnergyReading PowercapMonitor::record_raw(const std::string& label,
                                          double seconds, double watts) {
  return integrate(label, seconds, watts);
}

std::vector<PhaseEnergy> PowercapMonitor::phases() const {
  std::lock_guard<std::mutex> lock(mu_);
  return phases_;
}

EnergyReading PowercapMonitor::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  EnergyReading t;
  for (const auto& p : phases_) {
    t.seconds += p.reading.seconds;
    t.joules += p.reading.joules;
    t.samples += p.reading.samples;
  }
  return t;
}

void PowercapMonitor::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  phases_.clear();
  rapl_ = RaplSimulator();
}

}  // namespace eblcio
