#include "energy/cpu_model.h"

#include <cmath>
#include <algorithm>
#include <cctype>

#include "common/error.h"

namespace eblcio {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

double CpuModel::node_power_w(int busy_cores) const {
  const int busy = std::clamp(busy_cores, 0, cores);
  const double idle_node = packages * idle_w;
  const double active = busy * active_core_w;
  const double cap = packages * tdp_w;
  return std::min(idle_node + active, cap);
}

double CpuModel::io_power_w() const {
  return packages * idle_w + io_interface_w;
}

double CpuModel::node_power_w_at(int busy_cores, double freq_scale) const {
  EBLCIO_CHECK_ARG(freq_scale > 0.0, "frequency scale must be positive");
  const int busy = std::clamp(busy_cores, 0, cores);
  const double idle_node = packages * idle_w;
  const double active =
      busy * active_core_w * std::pow(freq_scale, kDvfsPowerExponent);
  const double cap = packages * tdp_w;
  return std::min(idle_node + active, cap);
}

double CpuModel::compute_energy_j(double nominal_seconds, int busy_cores,
                                  double freq_scale) const {
  EBLCIO_CHECK_ARG(nominal_seconds >= 0.0, "negative runtime");
  return node_power_w_at(busy_cores, freq_scale) *
         (nominal_seconds / freq_scale);
}

const std::vector<CpuModel>& cpu_catalog() {
  // Speed/idle/active parameters are calibrated to reproduce the paper's
  // ordinal findings: Sapphire Rapids (MAX 9480) is the fastest and most
  // energy-efficient; the Cascade Lake 8260M node (4 TB extreme-memory
  // partition) burns the most energy; Skylake 8160 sits between.
  static const std::vector<CpuModel> kCatalog = {
      {/*name=*/"Intel Xeon Platinum 8260M",
       /*system=*/"PSC Bridges2 (Extreme Memory)",
       /*generation=*/"Cascade Lake",
       /*cores=*/96, /*packages=*/2, /*memory=*/"4TB DDR4",
       /*tdp_w=*/165.0, /*idle_w=*/78.0, /*active_core_w=*/5.6,
       /*speed_factor=*/0.75, /*io_interface_w=*/38.0},
      {/*name=*/"Intel Xeon CPU Max 9480",
       /*system=*/"TACC Stampede3 (Sapphire Rapids)",
       /*generation=*/"Sapphire Rapids",
       /*cores=*/112, /*packages=*/2, /*memory=*/"128GB HBM2e",
       /*tdp_w=*/350.0, /*idle_w=*/52.0, /*active_core_w=*/3.6,
       /*speed_factor=*/1.35, /*io_interface_w=*/24.0},
      {/*name=*/"Intel Xeon Platinum 8160",
       /*system=*/"TACC Stampede3 (Skylake)",
       /*generation=*/"Skylake",
       /*cores=*/48, /*packages=*/2, /*memory=*/"192GB DDR4",
       /*tdp_w=*/270.0, /*idle_w=*/60.0, /*active_core_w=*/4.6,
       /*speed_factor=*/1.0, /*io_interface_w=*/30.0},
  };
  return kCatalog;
}

const CpuModel& cpu_model(const std::string& name) {
  const std::string key = lower(name);
  for (const auto& cpu : cpu_catalog())
    if (lower(cpu.name).find(key) != std::string::npos) return cpu;
  throw InvalidArgument("unknown CPU model: " + name);
}

const CpuModel& default_cpu() { return cpu_catalog()[1]; }

}  // namespace eblcio
