// Platform catalogue and node power model (paper Table I).
//
// The paper measures energy on three Intel Xeon platforms via RAPL. We do
// not have that hardware, so each platform is a parameter set: per-package TDP
// and idle power (power model endpoints) and a speed factor that dilates
// *really measured* kernel runtimes onto the target platform. Energy is
// then runtime x modeled power, exactly the E = Σ P(tᵢ)Δt accounting of
// Sec. IV-B. All cross-platform claims reproduced by the benches are
// ordinal (newer CPU => faster and more energy-efficient), which is what
// this parameterization encodes; see DESIGN.md §2.
#pragma once

#include <string>
#include <vector>

namespace eblcio {

struct CpuModel {
  std::string name;        // e.g. "Intel Xeon CPU Max 9480"
  std::string system;      // hosting system from Table I
  std::string generation;  // microarchitecture
  int cores = 1;           // cores per node (Table I)
  int packages = 2;        // RAPL zones (PACKAGE_0 / PACKAGE_1)
  std::string memory;      // RAM column of Table I
  double tdp_w = 0.0;      // per-package TDP (Table I)
  double idle_w = 0.0;     // per-package idle power
  double active_core_w = 0.0;  // incremental power per busy core
  double speed_factor = 1.0;   // single-thread speed vs. calibration host
  double io_interface_w = 0.0; // extra node power while driving I/O

  // Node power with `busy_cores` cores active (both packages).
  double node_power_w(int busy_cores) const;
  // Node power while blocked on I/O (mostly idle + interface power).
  double io_power_w() const;

  // --- DVFS extension (after Wilkins & Calhoun, IPDPSW'22 — the paper's
  // ref. [21], which models lossy-compression power under frequency
  // scaling). `freq_scale` is relative to nominal (1.0): compute-bound
  // kernel runtime stretches by 1/freq_scale while the active power
  // component scales ~ f^2.4 (voltage tracks frequency); idle power is
  // frequency-independent.
  static constexpr double kDvfsPowerExponent = 2.4;
  double node_power_w_at(int busy_cores, double freq_scale) const;
  // Energy for a compute phase of `nominal_seconds` (at freq 1.0) run at
  // `freq_scale` with `busy_cores` cores: P(f) * t/f. Minimized at an
  // interior frequency when idle power is non-negligible.
  double compute_energy_j(double nominal_seconds, int busy_cores,
                          double freq_scale) const;
};

// The three platforms of Table I. Index 0 = PSC 8260M, 1 = TACC MAX 9480,
// 2 = TACC 8160, matching the figure rows of the paper.
const std::vector<CpuModel>& cpu_catalog();

// Case-insensitive substring lookup ("9480", "8160", "8260M").
const CpuModel& cpu_model(const std::string& name);

// The platform used when a bench needs a single default (Intel Xeon CPU MAX
// 9480, the paper's most frequent subject).
const CpuModel& default_cpu();

}  // namespace eblcio
