// PAPI-style region energy monitor over the simulated RAPL counters.
//
// The paper instruments compression and I/O phases with PAPI reads of the
// powercap counters (Sec. IV-B/IV-C, Fig. 4). This monitor plays that role:
// benches record each *really measured* kernel runtime here; the monitor
// dilates it onto the target platform (speed factor), applies the node
// power model at the phase's utilization, and integrates energy through
// RaplSimulator with discrete sampling — E = Σ P(tᵢ)Δt.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "energy/cpu_model.h"
#include "energy/rapl_sim.h"

namespace eblcio {

struct EnergyReading {
  double seconds = 0.0;  // platform (simulated) time
  double joules = 0.0;
  int samples = 0;       // discrete RAPL samples taken
  double avg_watts() const { return seconds > 0 ? joules / seconds : 0.0; }
};

// A labeled phase inside a measured region ("compress", "decompress",
// "write"), so benches can report stacked energy like Figs. 7/10/12.
struct PhaseEnergy {
  std::string label;
  EnergyReading reading;
};

// Thread-safe: concurrent record_* calls (e.g. the streaming pipeline's
// compress tasks and its PFS writer, or simmpi ranks sharing a monitor)
// serialize on an internal mutex, so per-phase joules accumulate exactly.
class PowercapMonitor {
 public:
  explicit PowercapMonitor(const CpuModel& cpu, double sample_dt_s = 0.01);

  const CpuModel& cpu() const { return *cpu_; }

  // Records a compute phase measured on the calibration host: wall time is
  // divided by the platform speed factor and charged at `threads` busy
  // cores. Returns this phase's reading.
  EnergyReading record_compute(const std::string& label, double host_seconds,
                               int threads);

  // Records an I/O wait phase of `seconds` *platform* time (I/O time comes
  // from the PFS simulator, already in platform time).
  EnergyReading record_io(const std::string& label, double seconds);

  // Records an explicit (seconds, watts) segment, e.g. from simmpi.
  EnergyReading record_raw(const std::string& label, double seconds,
                           double watts);

  // Snapshot of the recorded phases. (Returned by value so callers never
  // iterate a vector another thread is appending to.)
  std::vector<PhaseEnergy> phases() const;
  EnergyReading total() const;
  void reset();

 private:
  EnergyReading integrate(const std::string& label, double seconds,
                          double watts);

  const CpuModel* cpu_;
  double sample_dt_s_;
  mutable std::mutex mu_;
  RaplSimulator rapl_;
  std::vector<PhaseEnergy> phases_;
};

}  // namespace eblcio
