// Simulated RAPL (Running Average Power Limit) counters.
//
// Mirrors the powercap interface the paper reads (Sec. IV-B, Fig. 3): two
// package zones whose energy counters advance as power is drawn over time.
// Power traces are fed in by the PowercapMonitor; the counters quantize to
// microjoules and wrap at 32 bits of microjoules like the real MSRs, so the
// reader has to handle wraparound exactly as PAPI does.
#pragma once

#include <array>
#include <cstdint>

namespace eblcio {

class RaplSimulator {
 public:
  static constexpr int kPackages = 2;
  // Real RAPL energy-status counters wrap at 2^32 microjoule units.
  static constexpr std::uint64_t kWrap = std::uint64_t{1} << 32;

  // Advances simulated time by `seconds` with the node drawing
  // `node_watts`, split evenly between packages (our workloads are
  // symmetric across sockets).
  void advance(double seconds, double node_watts);

  // Raw counter value (microjoules, wrapping) for a package zone.
  std::uint64_t package_energy_uj(int package) const;

  // Total unwrapped energy in joules across both packages
  // (E_CPU = E_P0 + E_P1, Eq. 6).
  double total_joules() const;

  double elapsed_seconds() const { return elapsed_s_; }

 private:
  std::array<double, kPackages> exact_uj_{};  // unwrapped, for bookkeeping
  double elapsed_s_ = 0.0;
};

}  // namespace eblcio
