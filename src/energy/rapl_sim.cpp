#include "energy/rapl_sim.h"

#include <cmath>

#include "common/error.h"

namespace eblcio {

void RaplSimulator::advance(double seconds, double node_watts) {
  EBLCIO_CHECK_ARG(seconds >= 0.0 && node_watts >= 0.0,
                   "negative time or power");
  elapsed_s_ += seconds;
  const double per_pkg_uj = node_watts * seconds * 1e6 / kPackages;
  for (auto& e : exact_uj_) e += per_pkg_uj;
}

std::uint64_t RaplSimulator::package_energy_uj(int package) const {
  EBLCIO_CHECK_ARG(package >= 0 && package < kPackages, "bad package index");
  const auto uj = static_cast<std::uint64_t>(exact_uj_[package]);
  return uj % kWrap;
}

double RaplSimulator::total_joules() const {
  double uj = 0.0;
  for (double e : exact_uj_) uj += e;
  return uj * 1e-6;
}

}  // namespace eblcio
