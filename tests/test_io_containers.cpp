// H5Lite / NcLite container tests: round-trips through the PFS, format
// metadata, and the modeled HDF5-vs-NetCDF cost gap (Fig. 11 mechanism).
#include <gtest/gtest.h>

#include "common/error.h"
#include "io/h5lite.h"
#include "io/io_tool.h"
#include "io/nclite.h"
#include "test_util.h"

namespace eblcio {
namespace {

using test::double_field_4d;
using test::smooth_field_3d;

TEST(IoRegistry, NamesAndLookup) {
  EXPECT_EQ(io_tool("HDF5").name(), "HDF5");
  EXPECT_EQ(io_tool("netcdf").name(), "NetCDF");
  EXPECT_EQ(io_tool("h5").name(), "HDF5");
  EXPECT_EQ(io_tool("adios").name(), "ADIOS");  // extension tool
  EXPECT_THROW(io_tool("posix"), InvalidArgument);
  // The paper's Sec. IV-D sweep covers exactly HDF5 and NetCDF.
  EXPECT_EQ(io_tool_names().size(), 2u);
}

class ContainerRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(ContainerRoundTrip, FieldThroughPfs) {
  IoTool& tool = io_tool(GetParam());
  PfsSimulator pfs;
  const Field f = smooth_field_3d(24);
  const IoCost cost = tool.write_field(pfs, "/data/f", f);
  EXPECT_GT(cost.total_seconds(), 0.0);
  EXPECT_GT(cost.bytes_written, f.size_bytes());  // container overhead

  const Field r = tool.read_field(pfs, "/data/f");
  ASSERT_EQ(r.shape(), f.shape());
  for (std::size_t i = 0; i < f.num_elements(); ++i)
    EXPECT_EQ(r.as<float>()[i], f.as<float>()[i]);
}

TEST_P(ContainerRoundTrip, DoubleFieldThroughPfs) {
  IoTool& tool = io_tool(GetParam());
  PfsSimulator pfs;
  const Field f = double_field_4d(3, 10);
  tool.write_field(pfs, "/data/d", f);
  const Field r = tool.read_field(pfs, "/data/d");
  for (std::size_t i = 0; i < f.num_elements(); ++i)
    EXPECT_EQ(r.as<double>()[i], f.as<double>()[i]);
}

TEST_P(ContainerRoundTrip, BlobThroughPfs) {
  IoTool& tool = io_tool(GetParam());
  PfsSimulator pfs;
  Bytes blob(5000);
  for (std::size_t i = 0; i < blob.size(); ++i)
    blob[i] = static_cast<std::byte>(i * 31);
  tool.write_blob(pfs, "/data/b", "compressed", blob);
  EXPECT_EQ(tool.read_blob(pfs, "/data/b", "compressed"), blob);
}

INSTANTIATE_TEST_SUITE_P(BothLibraries, ContainerRoundTrip,
                         ::testing::Values("HDF5", "NetCDF"));

TEST(H5Lite, MultiDatasetFile) {
  H5LiteFile file;
  H5Dataset a;
  a.name = "alpha";
  a.dtype_code = 0;
  a.dims = {4};
  a.data = Bytes(16, std::byte{1});
  a.attributes["units"] = "K";
  file.add_dataset(a);
  H5Dataset b;
  b.name = "beta";
  b.dtype_code = 2;
  b.dims = {9};
  b.data = Bytes(9, std::byte{2});
  file.add_dataset(b);

  const Bytes encoded = file.encode();
  const H5LiteFile back = H5LiteFile::decode(encoded);
  ASSERT_EQ(back.datasets().size(), 2u);
  EXPECT_EQ(back.dataset("alpha").attributes.at("units"), "K");
  EXPECT_EQ(back.dataset("beta").data, b.data);
  EXPECT_THROW(back.dataset("gamma"), InvalidArgument);
}

TEST(H5Lite, ChunkedLayoutSplitsLargeData) {
  H5LiteFile file;
  H5Dataset d;
  d.name = "big";
  d.dtype_code = 2;
  d.dims = {3u << 20};
  d.data = Bytes(3u << 20, std::byte{7});
  file.add_dataset(std::move(d));
  const Bytes encoded = file.encode();
  const H5LiteFile back = H5LiteFile::decode(encoded);
  EXPECT_EQ(back.dataset("big").data.size(), 3u << 20);
}

TEST(H5Lite, RejectsCorruptMagic) {
  Bytes bad(16, std::byte{0});
  EXPECT_THROW(H5LiteFile::decode(bad), CorruptStream);
}

TEST(NcLite, HeaderThenDataLayout) {
  NcLiteFile file;
  NcVariable v;
  v.name = "temp";
  v.dtype_code = 0;
  v.dims = {2, 3};
  v.data = Bytes(24, std::byte{5});
  v.attributes["units"] = "degC";
  file.add_variable(std::move(v));

  int syncs = 0;
  const Bytes encoded = file.encode(&syncs);
  EXPECT_EQ(syncs, 2);  // enddef + close for one variable
  const NcLiteFile back = NcLiteFile::decode(encoded);
  EXPECT_EQ(back.variable("temp").attributes.at("units"), "degC");
  EXPECT_EQ(back.variable("temp").data.size(), 24u);
}

TEST(NcLite, RejectsCorruptMagic) {
  Bytes bad(16, std::byte{9});
  EXPECT_THROW(NcLiteFile::decode(bad), CorruptStream);
}

TEST(IoCosts, NetCdfCostsMoreThanHdf5) {
  // The Fig. 11 finding, from mechanism: classic-model staging + header
  // rewrites make NetCDF writes several times more expensive.
  PfsSimulator pfs;
  const Field f = smooth_field_3d(48);
  const IoCost h5 = io_tool("HDF5").write_field(pfs, "/h5", f);
  const IoCost nc = io_tool("NetCDF").write_field(pfs, "/nc", f);
  EXPECT_GT(nc.total_seconds(), h5.total_seconds() * 2.0);
  EXPECT_LT(nc.total_seconds(), h5.total_seconds() * 12.0);
}

TEST(IoCosts, SmallBlobsCheaperThanLargeFields) {
  // The core compressed-I/O effect: a CR~50 blob writes much faster. The
  // field must be large enough that transfer (not open latency) dominates,
  // as with the paper's multi-hundred-MB data sets.
  PfsSimulator pfs;
  const Field f = smooth_field_3d(128);
  const Bytes small_blob(f.size_bytes() / 50, std::byte{3});
  const IoCost orig = io_tool("HDF5").write_field(pfs, "/o", f);
  const IoCost comp =
      io_tool("HDF5").write_blob(pfs, "/c", "x", small_blob);
  EXPECT_LT(comp.total_seconds() * 5.0, orig.total_seconds());
}

TEST(IoCosts, ContentionPropagatesToContainers) {
  PfsSimulator pfs;
  const Field f = smooth_field_3d(32);
  const IoCost solo = io_tool("HDF5").write_field(pfs, "/s", f, 1);
  const IoCost busy = io_tool("HDF5").write_field(pfs, "/b", f, 512);
  EXPECT_GT(busy.transfer_seconds, solo.transfer_seconds * 2.0);
}

// --- chunked datasets (append_chunk / read_chunk through the footer index) --

class ChunkedDataset : public ::testing::TestWithParam<std::string> {
 protected:
  static Bytes chunk_bytes(std::size_t n, std::uint8_t tag) {
    Bytes b(n);
    for (std::size_t i = 0; i < n; ++i)
      b[i] = static_cast<std::byte>((i * 131 + tag) & 0xff);
    return b;
  }
};

TEST_P(ChunkedDataset, RoundTripsBitForBit) {
  IoTool& tool = io_tool(GetParam());
  PfsSimulator pfs;

  ChunkedDatasetMeta meta;
  meta.name = "slabs";
  meta.dtype_code = 2;
  meta.dims = {40, 30, 20};
  meta.attributes["content"] = "eblc-compressed";

  std::vector<Bytes> chunks;
  for (int i = 0; i < 5; ++i)
    chunks.push_back(chunk_bytes(10000 + 997 * i, static_cast<std::uint8_t>(i)));

  auto writer = tool.open_chunked(pfs, "/c/ds", meta);
  EXPECT_GT(writer.open_cost().total_seconds(), 0.0);
  std::size_t payload = 0;
  for (const Bytes& c : chunks) {
    const IoCost cost = writer.append_chunk(c);
    EXPECT_GT(cost.total_seconds(), 0.0);
    payload += c.size();
  }
  EXPECT_EQ(writer.payload_bytes(), payload);
  EXPECT_EQ(writer.chunks_written(), chunks.size());
  const IoCost close_cost = writer.close();
  EXPECT_GT(close_cost.total_seconds(), 0.0);
  EXPECT_TRUE(writer.closed());
  EXPECT_THROW(writer.append_chunk(chunks[0]), InvalidArgument);

  auto reader = tool.open_chunked_reader(pfs, "/c/ds");
  const ChunkIndex& index = reader.index();
  EXPECT_EQ(index.meta.name, "slabs");
  EXPECT_EQ(index.meta.dims, meta.dims);
  EXPECT_EQ(index.meta.attributes.at("content"), "eblc-compressed");
  ASSERT_EQ(index.chunks.size(), chunks.size());
  EXPECT_EQ(index.total_bytes(), payload);
  EXPECT_GT(reader.open_cost().total_seconds(), 0.0);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    IoCost cost;
    EXPECT_EQ(reader.read_chunk(i, &cost), chunks[i]);
    EXPECT_GT(cost.total_seconds(), 0.0);
  }
  EXPECT_THROW(reader.read_chunk(chunks.size()), InvalidArgument);
}

TEST_P(ChunkedDataset, EmptyDatasetRoundTrips) {
  IoTool& tool = io_tool(GetParam());
  PfsSimulator pfs;
  ChunkedDatasetMeta meta;
  meta.name = "empty";
  auto writer = tool.open_chunked(pfs, "/c/empty", meta);
  writer.close();
  auto reader = tool.open_chunked_reader(pfs, "/c/empty");
  EXPECT_EQ(reader.index().chunks.size(), 0u);
  EXPECT_EQ(reader.index().meta.name, "empty");
}

TEST_P(ChunkedDataset, RejectsForeignAndCorruptContainers) {
  IoTool& tool = io_tool(GetParam());
  PfsSimulator pfs;
  // Another tool's chunked container is refused by name.
  const std::string other = GetParam() == "HDF5" ? "NetCDF" : "HDF5";
  ChunkedDatasetMeta meta;
  meta.name = "x";
  auto writer = io_tool(other).open_chunked(pfs, "/c/foreign", meta);
  writer.append_chunk(Bytes(100, std::byte{1}));
  writer.close();
  EXPECT_THROW(tool.open_chunked_reader(pfs, "/c/foreign"), CorruptStream);

  // A non-chunked file is rejected cleanly.
  pfs.write_file("/c/garbage", Bytes(64, std::byte{0xab}));
  EXPECT_THROW(tool.open_chunked_reader(pfs, "/c/garbage"), CorruptStream);
  pfs.write_file("/c/tiny", Bytes(4, std::byte{1}));
  EXPECT_THROW(tool.open_chunked_reader(pfs, "/c/tiny"), CorruptStream);
}

INSTANTIATE_TEST_SUITE_P(AllTools, ChunkedDataset,
                         ::testing::Values("HDF5", "NetCDF", "ADIOS"));

TEST(ChunkedCosts, MechanismGapShowsUpInChunkStreams) {
  // The Fig. 11 mechanism carries over to chunked streaming: NetCDF stages
  // every chunk through its conversion buffer and rewrites the header at
  // close, so the same chunk stream costs more than HDF5's direct layout.
  PfsSimulator pfs;
  const Bytes chunk(2u << 20, std::byte{3});
  double total[2] = {0.0, 0.0};
  const char* tools[2] = {"HDF5", "NetCDF"};
  for (int t = 0; t < 2; ++t) {
    ChunkedDatasetMeta meta;
    meta.name = "m";
    auto writer =
        io_tool(tools[t]).open_chunked(pfs, std::string("/c/") + tools[t], meta);
    total[t] += writer.open_cost().total_seconds();
    for (int i = 0; i < 4; ++i)
      total[t] += writer.append_chunk(chunk).total_seconds();
    total[t] += writer.close().total_seconds();
  }
  EXPECT_GT(total[1], total[0] * 1.5);
}

}  // namespace
}  // namespace eblcio
