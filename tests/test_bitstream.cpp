// BitWriter/BitReader round-trip and boundary tests.
#include <gtest/gtest.h>

#include "codec/bitstream.h"
#include "common/rng.h"

namespace eblcio {
namespace {

TEST(BitStream, SingleBits) {
  BitWriter bw;
  const int pattern[] = {1, 0, 1, 1, 0, 0, 1, 0, 1};
  for (int b : pattern) bw.put_bit(b);
  const Bytes bytes = bw.take();
  BitReader br(bytes);
  for (int b : pattern) EXPECT_EQ(br.get_bit(), static_cast<unsigned>(b));
}

TEST(BitStream, MultiBitValues) {
  BitWriter bw;
  bw.put_bits(0x5, 3);
  bw.put_bits(0xABCD, 16);
  bw.put_bits(0x1, 1);
  const Bytes bytes = bw.take();
  BitReader br(bytes);
  EXPECT_EQ(br.get_bits(3), 0x5u);
  EXPECT_EQ(br.get_bits(16), 0xABCDu);
  EXPECT_EQ(br.get_bits(1), 0x1u);
}

TEST(BitStream, SixtyFourBitValues) {
  BitWriter bw;
  bw.put_bits(0xfedcba9876543210ull, 64);
  bw.put_bit(1);
  bw.put_bits(0xffffffffffffffffull, 64);
  const Bytes bytes = bw.take();
  BitReader br(bytes);
  EXPECT_EQ(br.get_bits(64), 0xfedcba9876543210ull);
  EXPECT_EQ(br.get_bit(), 1u);
  EXPECT_EQ(br.get_bits(64), 0xffffffffffffffffull);
}

TEST(BitStream, ZeroWidthWrites) {
  BitWriter bw;
  bw.put_bits(0x123, 0);  // no-op
  bw.put_bits(0x3, 2);
  const Bytes bytes = bw.take();
  BitReader br(bytes);
  EXPECT_EQ(br.get_bits(0), 0u);
  EXPECT_EQ(br.get_bits(2), 0x3u);
}

TEST(BitStream, BitCountTracksWrites) {
  BitWriter bw;
  EXPECT_EQ(bw.bit_count(), 0u);
  bw.put_bits(0, 13);
  EXPECT_EQ(bw.bit_count(), 13u);
  bw.put_bits(0, 64);
  EXPECT_EQ(bw.bit_count(), 77u);
}

TEST(BitStream, PaddedTailReadsZero) {
  BitWriter bw;
  bw.put_bit(1);
  const Bytes bytes = bw.take();
  EXPECT_EQ(bytes.size(), 1u);
  BitReader br(bytes);
  EXPECT_EQ(br.get_bit(), 1u);
  // Past-end reads must be zero (ZFP stream semantics).
  for (int i = 0; i < 100; ++i) EXPECT_EQ(br.get_bit(), 0u);
  EXPECT_TRUE(br.exhausted());
}

TEST(BitStream, MasksHighBits) {
  BitWriter bw;
  bw.put_bits(0xffffffffffffffffull, 5);  // only low 5 bits
  bw.put_bits(0, 3);
  const Bytes bytes = bw.take();
  BitReader br(bytes);
  EXPECT_EQ(br.get_bits(8), 0x1fu);
}

// --- word-at-a-time reader APIs --------------------------------------------

TEST(BitStream, PeekDoesNotConsume) {
  BitWriter bw;
  bw.put_bits(0xABCD, 16);
  const Bytes bytes = bw.take();
  BitReader br(bytes);
  EXPECT_EQ(br.peek_bits(12), 0xBCDu);
  EXPECT_EQ(br.peek_bits(12), 0xBCDu);  // unchanged
  EXPECT_EQ(br.bit_pos(), 0u);
  br.consume(4);
  EXPECT_EQ(br.peek_bits(12), 0xABCu);
  EXPECT_EQ(br.bit_pos(), 4u);
}

TEST(BitStream, PeekPastEndIsZeroPadded) {
  BitWriter bw;
  bw.put_bits(0x3, 2);
  const Bytes bytes = bw.take();  // one byte
  BitReader br(bytes);
  br.consume(6);
  EXPECT_EQ(br.peek_bits(16), 0u);  // only padding left
  br.consume(16);
  EXPECT_TRUE(br.exhausted());
  EXPECT_EQ(br.bit_pos(), 22u);
}

TEST(BitStream, PeekThenGetMatches) {
  Rng rng(7);
  BitWriter bw;
  std::vector<std::pair<std::uint64_t, int>> writes;
  for (int i = 0; i < 500; ++i) {
    const int n = 1 + static_cast<int>(rng.next_below(32));
    const std::uint64_t v = rng.next_u64() & ((1ull << n) - 1);
    writes.emplace_back(v, n);
    bw.put_bits(v, n);
  }
  const Bytes bytes = bw.take();
  BitReader br(bytes);
  for (const auto& [v, n] : writes) {
    EXPECT_EQ(br.peek_bits(n), v);
    br.consume(n);
  }
}

TEST(BitStream, RefillAccBatchedConsume) {
  // The huffman decode pattern: one refill, several symbols consumed from
  // a local copy, one consume() for the batch total.
  BitWriter bw;
  for (int i = 0; i < 32; ++i) bw.put_bits(static_cast<std::uint64_t>(i), 6);
  const Bytes bytes = bw.take();
  BitReader br(bytes);
  int decoded = 0;
  while (decoded < 32) {
    std::uint64_t acc = br.refill_acc();
    const int avail = br.bits_buffered();
    ASSERT_GE(avail, 6);
    int used = 0;
    while (decoded < 32 && used + 6 <= avail) {
      EXPECT_EQ(acc & 0x3F, static_cast<std::uint64_t>(decoded));
      acc >>= 6;
      used += 6;
      ++decoded;
    }
    br.consume(used);
  }
  EXPECT_EQ(br.bit_pos(), 32u * 6u);
}

TEST(BitStream, MixedBitAndWordReads) {
  // get_bit / get_bits / peek+consume interleave against one position.
  BitWriter bw;
  bw.put_bits(0b1011, 4);
  bw.put_bits(0x5555, 16);
  bw.put_bits(0xFFFFFFFFull, 32);
  const Bytes bytes = bw.take();
  BitReader br(bytes);
  EXPECT_EQ(br.get_bit(), 1u);
  EXPECT_EQ(br.peek_bits(3), 0b101u);
  br.consume(3);
  EXPECT_EQ(br.get_bits(16), 0x5555u);
  EXPECT_EQ(br.get_bits(32), 0xFFFFFFFFull);
  EXPECT_EQ(br.get_bits(4), 0u);  // byte padding
  EXPECT_TRUE(br.exhausted());
}

// Property: random sequences of mixed-width writes round-trip exactly.
class BitStreamFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitStreamFuzz, RandomRoundTrip) {
  Rng rng(GetParam());
  std::vector<std::pair<std::uint64_t, int>> writes;
  BitWriter bw;
  for (int i = 0; i < 3000; ++i) {
    const int n = static_cast<int>(rng.next_below(65));
    const std::uint64_t v = rng.next_u64();
    writes.emplace_back(n < 64 ? (v & ((n ? (~0ull >> (64 - n)) : 0))) : v, n);
    bw.put_bits(v, n);
  }
  const Bytes bytes = bw.take();
  BitReader br(bytes);
  for (const auto& [v, n] : writes) EXPECT_EQ(br.get_bits(n), v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitStreamFuzz,
                         ::testing::Values(1, 2, 3, 42, 1234, 99999));

}  // namespace
}  // namespace eblcio
