// End-to-end integration tests: generate a data set, compress it, write it
// through an I/O library to the PFS, read it back, decompress, verify the
// bound — the full loop a scientist's checkpoint/restart takes. Also a
// compact multi-node pipeline over simmpi.
#include <gtest/gtest.h>

#include <mutex>

#include "common/timer.h"
#include "compressors/compressor.h"
#include "core/pipeline.h"
#include "data/dataset.h"
#include "io/io_tool.h"
#include "metrics/error_stats.h"
#include "parallel/simmpi.h"

namespace eblcio {
namespace {

struct Scenario {
  std::string dataset;
  std::vector<std::size_t> dims;
  std::string codec;
  std::string io;
  double eb;
};

class EndToEnd : public ::testing::TestWithParam<Scenario> {};

TEST_P(EndToEnd, CheckpointRestartLoop) {
  const Scenario& sc = GetParam();
  const Field original = generate_dataset_dims(sc.dataset, sc.dims, 33);

  CompressOptions opt;
  opt.mode = BoundMode::kValueRangeRel;
  opt.error_bound = sc.eb;
  Compressor& comp = compressor(sc.codec);
  const Bytes blob = comp.compress(original, opt);

  // Checkpoint: write blob through the I/O library onto the PFS.
  PfsSimulator pfs;
  IoTool& tool = io_tool(sc.io);
  const std::string path = "/ckpt/" + sc.dataset;
  tool.write_blob(pfs, path, original.name(), blob);

  // Restart: read back, decode whoever wrote it, verify the bound.
  const Bytes back = tool.read_blob(pfs, path, original.name());
  ASSERT_EQ(back.size(), blob.size());
  const Field restored = decompress_any(back);
  EXPECT_EQ(restored.shape(), original.shape());
  EXPECT_TRUE(check_value_range_bound(original, restored, sc.eb))
      << sc.dataset << "/" << sc.codec << "/" << sc.io;
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsCodecsLibraries, EndToEnd,
    ::testing::Values(
        Scenario{"NYX", {32, 32, 32}, "SZ3", "HDF5", 1e-3},
        Scenario{"NYX", {32, 32, 32}, "ZFP", "NetCDF", 1e-3},
        Scenario{"CESM", {4, 48, 96}, "SZ2", "HDF5", 1e-4},
        Scenario{"CESM", {4, 48, 96}, "QoZ", "NetCDF", 1e-2},
        Scenario{"HACC", {80000}, "SZx", "HDF5", 1e-3},
        Scenario{"HACC", {80000}, "SZ3", "NetCDF", 1e-4},
        Scenario{"S3D", {3, 20, 20, 20}, "ZFP", "HDF5", 1e-3},
        Scenario{"S3D", {3, 20, 20, 20}, "SZx", "NetCDF", 1e-5},
        Scenario{"ISABEL", {8, 40, 40}, "SZ3", "HDF5", 1e-3},
        Scenario{"QMCPack", {24, 24, 24}, "SZ2", "HDF5", 1e-3}));

TEST(EndToEndLossless, ArchiveLoop) {
  const Field original = generate_dataset_dims("EXAFEL", {2, 96, 96}, 4);
  PfsSimulator pfs;
  for (const std::string& codec : lossless_names()) {
    CompressOptions opt;
    opt.mode = BoundMode::kLossless;
    const Bytes blob = compressor(codec).compress(original, opt);
    io_tool("HDF5").write_blob(pfs, "/arch/" + codec, "img", blob);
    const Field back = decompress_any(
        io_tool("HDF5").read_blob(pfs, "/arch/" + codec, "img"));
    const auto st = compute_error_stats(original, back);
    EXPECT_EQ(st.max_abs_error, 0.0) << codec;
  }
}

TEST(EndToEndMultiNode, RanksCompressAndWriteConcurrently) {
  // A miniature Fig. 12: every rank compresses its copy of the field and
  // writes it to a shared PFS; sim clocks account compute + contended I/O.
  const int kRanks = 8;
  const Field field = generate_dataset_dims("NYX", {24, 24, 24}, 9);
  PfsSimulator pfs;
  std::mutex pfs_mu;
  std::vector<double> rank_times(kRanks, 0.0);

  SimMpiWorld::run(kRanks, [&](Communicator& comm) {
    CompressOptions opt;
    opt.error_bound = 1e-3;
    Compressor& comp = compressor("SZ3");

    WallTimer timer;
    const Bytes blob = comp.compress(field, opt);
    comm.advance_time(timer.elapsed_s());

    double write_s = 0.0;
    {
      std::lock_guard<std::mutex> lock(pfs_mu);
      const auto res = pfs.write_file(
          "/dump/rank" + std::to_string(comm.rank()), blob, comm.size());
      write_s = res.seconds;
    }
    comm.advance_time(write_s);
    comm.barrier();
    rank_times[comm.rank()] = comm.sim_time();
  });

  // All ranks produced a file; barrier equalized simulated completion time.
  EXPECT_EQ(pfs.list_files().size(), static_cast<std::size_t>(kRanks));
  for (int r = 1; r < kRanks; ++r)
    EXPECT_DOUBLE_EQ(rank_times[r], rank_times[0]);
  EXPECT_GT(rank_times[0], 0.0);

  // Every rank's dump decodes within bound.
  const Field check = decompress_any(pfs.read_file("/dump/rank3"));
  EXPECT_TRUE(check_value_range_bound(field, check, 1e-3));
}

TEST(EndToEndPipeline, FullSweepSmall) {
  // A miniature Fig. 11 cell for every codec on a small NYX field.
  const Field f = generate_dataset_dims("NYX", {32, 32, 32}, 13);
  PfsSimulator pfs;
  for (const std::string& codec : eblc_names()) {
    PipelineConfig cfg;
    cfg.codec = codec;
    cfg.error_bound = 1e-3;
    cfg.psnr_min_db = 0.0;
    const auto rec = run_compress_write(f, cfg, pfs);
    EXPECT_GT(rec.compression.ratio, 1.0) << codec;
    EXPECT_TRUE(rec.verdict.quality_acceptable) << codec;
    EXPECT_GT(rec.verdict.io_energy_reduction, 1.0) << codec;
  }
}

}  // namespace
}  // namespace eblcio
