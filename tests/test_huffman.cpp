// Canonical Huffman codec tests: round-trips, degenerate alphabets,
// compression effectiveness, corrupt-stream handling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <random>

#include "codec/huffman.h"
#include "common/error.h"
#include "common/rng.h"

namespace eblcio {
namespace {

std::vector<std::uint32_t> roundtrip(const std::vector<std::uint32_t>& syms,
                                     std::uint32_t alphabet) {
  const Bytes blob = huffman_encode(syms, alphabet);
  return huffman_decode(blob);
}

TEST(Huffman, EmptyInput) {
  EXPECT_TRUE(roundtrip({}, 10).empty());
}

TEST(Huffman, SingleSymbolAlphabet) {
  const std::vector<std::uint32_t> syms(1000, 7);
  EXPECT_EQ(roundtrip(syms, 256), syms);
}

TEST(Huffman, TwoSymbols) {
  std::vector<std::uint32_t> syms;
  for (int i = 0; i < 100; ++i) syms.push_back(i % 2 ? 3u : 250u);
  EXPECT_EQ(roundtrip(syms, 256), syms);
}

TEST(Huffman, SkewedDistributionCompresses) {
  // 95% zeros: entropy ~0.3 bits/symbol; Huffman should get close to 1
  // bit/symbol, far below the 4 bytes/symbol raw encoding.
  Rng rng(5);
  std::vector<std::uint32_t> syms;
  for (int i = 0; i < 100000; ++i)
    syms.push_back(rng.next_double() < 0.95 ? 0u : 1u + rng.next_below(100));
  const Bytes blob = huffman_encode(syms, 200);
  EXPECT_LT(blob.size(), syms.size() / 4);  // < 2 bits per symbol
  EXPECT_EQ(huffman_decode(blob), syms);
}

TEST(Huffman, NearOptimalOnGeometricDistribution) {
  Rng rng(6);
  std::vector<std::uint32_t> syms;
  double entropy_bits = 0.0;
  std::vector<std::size_t> counts(64, 0);
  for (int i = 0; i < 200000; ++i) {
    std::uint32_t s = 0;
    while (s < 63 && rng.next_double() < 0.5) ++s;
    syms.push_back(s);
    ++counts[s];
  }
  for (std::size_t c : counts) {
    if (!c) continue;
    const double p = static_cast<double>(c) / syms.size();
    entropy_bits += -p * std::log2(p);
  }
  const Bytes blob = huffman_encode(syms, 64);
  const double bits_per_symbol = 8.0 * blob.size() / syms.size();
  EXPECT_LT(bits_per_symbol, entropy_bits * 1.1 + 0.2);
  EXPECT_EQ(huffman_decode(blob), syms);
}

TEST(Huffman, LargeAlphabetRoundTrip) {
  // SZ-style 65537-entry alphabet with codes concentrated near the center.
  Rng rng(8);
  std::vector<std::uint32_t> syms;
  for (int i = 0; i < 50000; ++i) {
    const double g = rng.normal() * 20.0;
    syms.push_back(static_cast<std::uint32_t>(
        std::clamp(32768.0 + g, 0.0, 65536.0)));
  }
  EXPECT_EQ(roundtrip(syms, 65537), syms);
}

TEST(Huffman, UniformBytesRoundTrip) {
  Rng rng(10);
  std::vector<std::uint32_t> syms;
  for (int i = 0; i < 10000; ++i)
    syms.push_back(static_cast<std::uint32_t>(rng.next_below(256)));
  EXPECT_EQ(roundtrip(syms, 256), syms);
}

TEST(Huffman, RejectsSymbolOutsideAlphabet) {
  EXPECT_THROW(huffman_encode(std::vector<std::uint32_t>{300}, 256),
               InvalidArgument);
}

TEST(Huffman, RejectsOutOfAlphabetSymbolAtAnyPosition) {
  // The hot encoder validates with a pre-scan rather than a per-symbol
  // branch inside the histogram loop; a bad symbol must be caught whether
  // it sits at the front, the middle, or the back of the stream — and the
  // reference encoder must agree.
  std::vector<std::uint32_t> base(999, 5);
  for (const std::size_t pos : {std::size_t{0}, base.size() / 2,
                                base.size() - 1}) {
    std::vector<std::uint32_t> syms = base;
    syms[pos] = 256;
    EXPECT_THROW(huffman_encode(syms, 256), InvalidArgument)
        << "pos " << pos;
    EXPECT_THROW(huffman_encode_reference(syms, 256), InvalidArgument)
        << "pos " << pos;
  }
}

TEST(Huffman, RejectsTruncatedBlob) {
  const std::vector<std::uint32_t> syms(100, 3);
  Bytes blob = huffman_encode(syms, 16);
  blob.resize(blob.size() / 2);
  EXPECT_THROW(huffman_decode(blob), CorruptStream);
}

TEST(HuffmanLengths, KraftInequalityHolds) {
  Rng rng(3);
  std::vector<std::uint64_t> freqs(1000);
  for (auto& f : freqs) f = rng.next_below(10000);
  const auto lengths = huffman_code_lengths(freqs);
  long double kraft = 0;
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    if (freqs[s] == 0) {
      EXPECT_EQ(lengths[s], 0);
    } else {
      EXPECT_GE(lengths[s], 1);
      EXPECT_LE(lengths[s], kMaxHuffmanBits);
      kraft += std::pow(2.0L, -static_cast<int>(lengths[s]));
    }
  }
  EXPECT_LE(kraft, 1.0L + 1e-12L);
}

TEST(HuffmanLengths, MoreFrequentGetsShorterOrEqualCode) {
  std::vector<std::uint64_t> freqs = {1000, 10, 500, 1, 0};
  const auto lengths = huffman_code_lengths(freqs);
  EXPECT_LE(lengths[0], lengths[1]);
  EXPECT_LE(lengths[2], lengths[1]);
  EXPECT_LE(lengths[1], lengths[3]);
}

// --- LUT decoder vs reference decoder (differential) -----------------------

// The table-driven decoder and the per-bit canonical reference must agree
// symbol-for-symbol on every blob the encoder can produce. These tests pit
// them against each other on the regimes that stress the LUT specifically:
// codes longer than the table width (slow-path fallback), degenerate
// alphabets, and random mixes.

TEST(HuffmanDifferential, SingleSymbolAlphabet) {
  const std::vector<std::uint32_t> syms(513, 9);
  const Bytes blob = huffman_encode(syms, 64);
  EXPECT_EQ(huffman_decode(blob), syms);
  EXPECT_EQ(huffman_decode_reference(blob), syms);
}

TEST(HuffmanDifferential, MaxLengthCodesUseSlowPath) {
  // Fibonacci-like frequencies drive tree depth past kMaxHuffmanBits, so
  // the Kraft fix-up clamps to 32-bit codes — far past the LUT width — and
  // the rare symbols decode through the canonical fallback.
  const int n = 48;
  std::vector<std::uint64_t> freqs(n);
  std::uint64_t a = 1, b = 1;
  for (int i = 0; i < n; ++i) {
    freqs[i] = a;
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  const auto lengths = huffman_code_lengths(freqs);
  EXPECT_EQ(*std::max_element(lengths.begin(), lengths.end()),
            kMaxHuffmanBits);

  // A stream hitting every symbol (so every code length appears),
  // including long runs of the rarest (longest-code) symbols.
  std::vector<std::uint32_t> syms;
  Rng rng(17);
  for (int i = 0; i < n; ++i)
    for (int k = 0; k < 1 + static_cast<int>(rng.next_below(5)); ++k)
      syms.push_back(static_cast<std::uint32_t>(i));
  for (int i = 0; i < 2000; ++i)
    syms.push_back(static_cast<std::uint32_t>(
        n - 1 - rng.next_below(static_cast<std::uint32_t>(n) / 2)));
  const Bytes blob = huffman_encode(syms, n);
  EXPECT_EQ(huffman_decode(blob), syms);
  EXPECT_EQ(huffman_decode_reference(blob), syms);
}

TEST(HuffmanDifferential, RandomLengthsAndSymbols) {
  Rng rng(99);
  for (int round = 0; round < 40; ++round) {
    const std::uint32_t alphabet = 2 + rng.next_below(5000);
    const int count = static_cast<int>(rng.next_below(4000));
    std::vector<std::uint32_t> syms;
    syms.reserve(count);
    // Mix skew regimes so short-, medium-, and long-code alphabets appear.
    const bool skewed = round % 2 == 0;
    for (int i = 0; i < count; ++i) {
      std::uint32_t s = rng.next_below(alphabet);
      if (skewed && rng.next_below(4) != 0) s = s % (1 + alphabet / 16);
      syms.push_back(s);
    }
    const Bytes blob = huffman_encode(syms, alphabet);
    const auto fast = huffman_decode(blob);
    const auto slow = huffman_decode_reference(blob);
    ASSERT_EQ(fast, slow) << "round " << round;
    ASSERT_EQ(fast, syms) << "round " << round;
  }
}

TEST(HuffmanDifferential, CorruptStreamsAgreeOnRejection) {
  // Both decoders must throw (not crash, not disagree) on truncated and
  // bit-flipped payloads.
  Rng rng(5);
  std::vector<std::uint32_t> syms;
  for (int i = 0; i < 4000; ++i)
    syms.push_back(static_cast<std::uint32_t>(rng.next_below(300)));
  const Bytes good = huffman_encode(syms, 300);
  for (std::size_t cut : {good.size() / 4, good.size() / 2}) {
    Bytes bad = good;
    bad.resize(cut);
    EXPECT_THROW(huffman_decode(bad), CorruptStream);
    EXPECT_THROW(huffman_decode_reference(bad), CorruptStream);
  }
}

TEST(HuffmanDifferential, OverflowSafeCountGuard) {
  // A forged header with count near UINT64_MAX must be rejected by the
  // payload-size guard without overflowing the comparison.
  const std::vector<std::uint32_t> syms(64, 1);
  Bytes blob = huffman_encode(syms, 4);
  const std::uint64_t forged = ~std::uint64_t{0} - 3;
  std::memcpy(blob.data(), &forged, sizeof forged);
  EXPECT_THROW(huffman_decode(blob), CorruptStream);
  EXPECT_THROW(huffman_decode_reference(blob), CorruptStream);
}

// The double-symbol LUT packs two decoded symbols into one table slot when
// their combined code length fits the table width. These differentials
// stress that packing specifically: streams dominated by short codes (pair
// hits on nearly every lookup), odd symbol counts (the decode loop's
// last-symbol guard must refuse a pair write past the end), and symbols
// too wide for the packed u16 fields.

TEST(HuffmanDifferential, LowEntropyGeometricPairsEveryParity) {
  Rng rng(123);
  for (int round = 0; round < 12; ++round) {
    // Geometric symbols: the top few codes are 1-3 bits, so most LUT slots
    // hold packed pairs. Vary the count by round so streams end on every
    // parity and the i+2<=count guard sees both final shapes.
    std::vector<std::uint32_t> syms;
    const int count = 3001 + round;  // odd and even totals
    for (int i = 0; i < count; ++i) {
      std::uint32_t v = 0;
      while (v < 63 && rng.next_double() < 0.5) ++v;
      syms.push_back(v);
    }
    const Bytes blob = huffman_encode(syms, 64);
    const auto fast = huffman_decode(blob);
    const auto slow = huffman_decode_reference(blob);
    ASSERT_EQ(fast, slow) << "round " << round;
    ASSERT_EQ(fast, syms) << "round " << round;
  }
}

TEST(HuffmanDifferential, TinyCountsNeverPairPastEnd) {
  // Counts 1..8 over a pair-heavy alphabet: the shortest streams are all
  // tail for the pair loop, so any out-of-bounds second write would land
  // on the result vector's edge.
  Rng rng(7);
  for (int count = 1; count <= 8; ++count) {
    std::vector<std::uint32_t> syms;
    for (int i = 0; i < count; ++i)
      syms.push_back(static_cast<std::uint32_t>(rng.next_below(4)));
    const Bytes blob = huffman_encode(syms, 4);
    EXPECT_EQ(huffman_decode(blob), syms) << "count " << count;
    EXPECT_EQ(huffman_decode_reference(blob), syms) << "count " << count;
  }
}

TEST(HuffmanDifferential, WideSymbolsFallBackToSingleSlots) {
  // Symbols >= 2^16 cannot pack into the LUT's u16 pair fields. Use the
  // quantizer-shaped alphabet (65537 symbols) with the widest symbol as
  // the most frequent: its code is short enough to pair by length, so the
  // width check is the only thing keeping it on the single-symbol path.
  Rng rng(31);
  std::vector<std::uint32_t> syms;
  for (int i = 0; i < 6000; ++i) {
    const auto r = rng.next_below(10);
    if (r < 6) {
      syms.push_back(65536u);
    } else if (r < 9) {
      syms.push_back(32768u);
    } else {
      syms.push_back(static_cast<std::uint32_t>(rng.next_below(65537)));
    }
  }
  const Bytes blob = huffman_encode(syms, 65537);
  const auto fast = huffman_decode(blob);
  EXPECT_EQ(fast, huffman_decode_reference(blob));
  EXPECT_EQ(fast, syms);
}

TEST(HuffmanDifferential, PairAndSlowPathInterleave) {
  // Fibonacci frequencies again, but with the common (short-code) symbols
  // dominating: decode alternates between packed-pair hits and the
  // canonical slow path for the >11-bit codes, exercising the
  // consumed-bits bookkeeping across the transition.
  const int n = 48;
  std::vector<std::uint64_t> freqs(n);
  std::uint64_t a = 1, b = 1;
  for (int i = 0; i < n; ++i) {
    freqs[i] = a;
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  const auto lengths = huffman_code_lengths(freqs);
  ASSERT_EQ(*std::max_element(lengths.begin(), lengths.end()),
            kMaxHuffmanBits);
  Rng rng(271);
  std::vector<std::uint32_t> syms;
  for (int i = 0; i < 20001; ++i) {  // odd count
    if (rng.next_below(16) == 0) {
      // a rare, long-code symbol
      syms.push_back(static_cast<std::uint32_t>(rng.next_below(8)));
    } else {
      // a frequent, short-code symbol (high Fibonacci index)
      syms.push_back(static_cast<std::uint32_t>(
          n - 1 - rng.next_below(6)));
    }
  }
  const Bytes blob = huffman_encode(syms, n);
  const auto fast = huffman_decode(blob);
  EXPECT_EQ(fast, huffman_decode_reference(blob));
  EXPECT_EQ(fast, syms);
}

TEST(HuffmanDifferential, ForgedCountTruncatesInsidePairRun) {
  // Shrink the header count so decoding must stop mid-stream: both
  // decoders return exactly `forged` symbols, agree on them, and never
  // read past the adjusted count even when the cut lands between the two
  // symbols of a packed pair.
  Rng rng(43);
  std::vector<std::uint32_t> syms;
  for (int i = 0; i < 4096; ++i) {
    std::uint32_t v = 0;
    while (v < 63 && rng.next_double() < 0.5) ++v;
    syms.push_back(v);
  }
  const Bytes good = huffman_encode(syms, 64);
  for (const std::uint64_t forged : {std::uint64_t{4095},
                                     std::uint64_t{2048},
                                     std::uint64_t{1}}) {
    Bytes blob = good;
    std::memcpy(blob.data(), &forged, sizeof forged);
    const auto fast = huffman_decode(blob);
    const auto slow = huffman_decode_reference(blob);
    ASSERT_EQ(fast.size(), forged);
    ASSERT_EQ(fast, slow) << "forged " << forged;
    for (std::size_t i = 0; i < forged; ++i)
      ASSERT_EQ(fast[i], syms[i]) << "forged " << forged << " idx " << i;
  }
}

// --- Hot encoder vs reference encoder (differential) -----------------------

// The split-counter/batched-emit encoder must produce blobs BYTE-IDENTICAL
// to the retained reference encoder — not merely decodable. Byte equality
// is what keeps the 17 pinned reference blobs frozen: the hot path's
// Moffat length pass falls back to the reference heap builder on any
// tie-ambiguous merge, so the two paths can never canonicalize differently.

void expect_encoders_agree(const std::vector<std::uint32_t>& syms,
                           std::uint32_t alphabet, const char* what) {
  const Bytes hot = huffman_encode(syms, alphabet);
  const Bytes ref = huffman_encode_reference(syms, alphabet);
  ASSERT_EQ(hot, ref) << what;
  ASSERT_EQ(huffman_decode(hot), syms) << what;
}

TEST(HuffmanEncoderDifferential, DegenerateInputs) {
  expect_encoders_agree({}, 16, "empty");
  expect_encoders_agree(std::vector<std::uint32_t>(1000, 7), 256,
                        "single symbol");
  expect_encoders_agree({5}, 6, "one element");
}

TEST(HuffmanEncoderDifferential, LowEntropyGeometric) {
  Rng rng(6);
  std::vector<std::uint32_t> syms;
  for (int i = 0; i < 100000; ++i) {
    std::uint32_t v = 0;
    while (v < 63 && rng.next_double() < 0.5) ++v;
    syms.push_back(v);
  }
  expect_encoders_agree(syms, 64, "geometric");
}

TEST(HuffmanEncoderDifferential, QuantizerAlphabetNormal) {
  // The SZ-shaped 65537-entry alphabet: exactly the stream the sz2 gate
  // times, and the largest alphabet the pooled scratch serves.
  Rng rng(2);
  std::vector<std::uint32_t> syms;
  for (int i = 0; i < 50000; ++i) {
    const double g = rng.normal() * 12.0;
    syms.push_back(static_cast<std::uint32_t>(
        std::clamp(32768.0 + g, 0.0, 65536.0)));
  }
  expect_encoders_agree(syms, 65537, "quantizer normal");
}

TEST(HuffmanEncoderDifferential, FibonacciDepthForcesKraftFixup) {
  // Fibonacci frequencies drive depth past kMaxHuffmanBits, so the Moffat
  // pass bails to the reference heap builder and its Kraft fix-up; the
  // fallback must still be byte-identical.
  const int n = 48;
  Rng rng(17);
  std::vector<std::uint32_t> syms;
  std::uint64_t a = 1, b = 1;
  for (int i = 0; i < n; ++i) {
    for (std::uint64_t k = 0; k < std::min<std::uint64_t>(a, 400); ++k)
      syms.push_back(static_cast<std::uint32_t>(i));
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  std::shuffle(syms.begin(), syms.end(),
               std::mt19937_64(rng.next_below(1u << 30)));
  expect_encoders_agree(syms, n, "fibonacci depth");
}

TEST(HuffmanEncoderDifferential, PowerOfTwoFrequenciesStayOnMoffatPath) {
  // Distinct power-of-two counts: every merge is tie-free, so this stream
  // exercises the in-place two-queue path end to end (no fallback).
  std::vector<std::uint32_t> syms;
  for (int s = 0; s < 12; ++s)
    for (int k = 0; k < (1 << s); ++k)
      syms.push_back(static_cast<std::uint32_t>(s * 3));
  Rng rng(91);
  std::shuffle(syms.begin(), syms.end(), std::mt19937_64(rng.next_below(999)));
  expect_encoders_agree(syms, 64, "power-of-two freqs");
}

TEST(HuffmanEncoderDifferential, RandomSweep) {
  Rng rng(424242);
  for (int round = 0; round < 60; ++round) {
    const std::uint32_t alphabet = 2 + rng.next_below(70000);
    const int count = static_cast<int>(rng.next_below(6000));
    std::vector<std::uint32_t> syms;
    syms.reserve(count);
    // Alternate skew regimes: uniform, concentrated, tie-heavy (many
    // count-1 symbols, the regime most likely to hit the Moffat fallback).
    const int regime = round % 3;
    for (int i = 0; i < count; ++i) {
      std::uint32_t s = rng.next_below(alphabet);
      if (regime == 1) s = s % (1 + alphabet / 32);
      syms.push_back(s);
    }
    const Bytes hot = huffman_encode(syms, alphabet);
    const Bytes ref = huffman_encode_reference(syms, alphabet);
    ASSERT_EQ(hot, ref) << "round " << round << " alphabet " << alphabet;
    ASSERT_EQ(huffman_decode(hot), syms) << "round " << round;
  }
}

// Property sweep over random alphabets and sizes.
class HuffmanFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(HuffmanFuzz, RandomRoundTrip) {
  const auto [seed, alphabet] = GetParam();
  Rng rng(seed);
  std::vector<std::uint32_t> syms;
  const int n = 1000 + static_cast<int>(rng.next_below(20000));
  for (int i = 0; i < n; ++i)
    syms.push_back(static_cast<std::uint32_t>(rng.next_below(alphabet)));
  EXPECT_EQ(roundtrip(syms, alphabet), syms);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndAlphabets, HuffmanFuzz,
    ::testing::Combine(::testing::Values(1, 7, 21, 77),
                       ::testing::Values(2, 3, 17, 256, 4096)));

}  // namespace
}  // namespace eblcio
