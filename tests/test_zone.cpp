// Zone-sharded compression and partial-region reads: extent math, the
// ZoneCompressor's parallel/serial bit-parity, region decodes against the
// full-field slice, the zoned container index through every IoTool, random
// query boxes vs the serial reference, and robustness (corrupt zone
// indexes, truncated zone blobs, out-of-bounds queries must fail cleanly
// with no partial field escaping).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>

#include "common/error.h"
#include "common/region.h"
#include "common/rng.h"
#include "compressors/compressor.h"
#include "compressors/zone.h"
#include "core/pipeline.h"
#include "io/io_tool.h"
#include "io/pfs.h"
#include "test_util.h"

namespace eblcio {
namespace {

using test::double_field_4d;
using test::noisy_field_1d;
using test::smooth_field_2d;
using test::smooth_field_3d;

bool bytes_equal(const Field& a, const Field& b) {
  const auto ab = a.bytes();
  const auto bb = b.bytes();
  return ab.size() == bb.size() &&
         std::equal(ab.begin(), ab.end(), bb.begin());
}

// A zeroed field shaped like `region`, dtype matching `like`.
Field region_shaped(const Field& like, const Region& region) {
  const Shape s{std::span<const std::size_t>(region.shape)};
  if (like.dtype() == DType::kFloat32)
    return Field(like.name(), NdArray<float>(s));
  return Field(like.name(), NdArray<double>(s));
}

// Independent slice extraction: the whole field is one "zone" starting at
// row 0, so scattering it into `region` yields exactly the region's values.
Field slice_region(const Field& full, const Region& region) {
  Field out = region_shaped(full, region);
  scatter_zone_into_region(full, 0, region, out);
  return out;
}

Region random_region(Rng& rng, const std::vector<std::size_t>& dims) {
  Region r;
  for (std::size_t d : dims) {
    const std::size_t start = rng.next_below(d);
    const std::size_t len = 1 + rng.next_below(d - start);
    r.start.push_back(start);
    r.shape.push_back(len);
  }
  return r;
}

// --- extent math ------------------------------------------------------------

TEST(ZoneExtents, PartitionLeadingDimensionLikeSlabs) {
  const auto ext = zone_extents(40, 8);
  ASSERT_EQ(ext.size(), 8u);
  std::size_t next = 0, total = 0;
  for (const auto& z : ext) {
    EXPECT_EQ(z.row_start, next);
    EXPECT_GT(z.rows, 0u);
    next += z.rows;
    total += z.rows;
  }
  EXPECT_EQ(total, 40u);
  // 43 = 8*5 + 3: the first three zones take the extra row.
  const auto uneven = zone_extents(43, 8);
  EXPECT_EQ(uneven[0].rows, 6u);
  EXPECT_EQ(uneven[2].rows, 6u);
  EXPECT_EQ(uneven[3].rows, 5u);
}

TEST(ZoneExtents, ClampsToLeadingExtent) {
  const auto ext = zone_extents(3, 16);
  ASSERT_EQ(ext.size(), 3u);
  for (const auto& z : ext) EXPECT_EQ(z.rows, 1u);
}

TEST(CoveringZones, IntersectionIsContiguousRun) {
  const auto ext = zone_extents(40, 8);  // 5 rows each
  EXPECT_EQ(covering_zones(ext, 0, 40).size(), 8u);
  const auto one = covering_zones(ext, 7, 2);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 1u);
  // Rows [4, 6) straddle the zone 0 / zone 1 boundary.
  const auto straddle = covering_zones(ext, 4, 2);
  ASSERT_EQ(straddle.size(), 2u);
  EXPECT_EQ(straddle[0], 0u);
  EXPECT_EQ(straddle[1], 1u);
  // A boundary-aligned query touches only the zone it starts in.
  const auto aligned = covering_zones(ext, 5, 5);
  ASSERT_EQ(aligned.size(), 1u);
  EXPECT_EQ(aligned[0], 1u);
}

TEST(RegionValidate, RejectsEmptyAndOutOfBounds) {
  const std::vector<std::size_t> dims{8, 8};
  EXPECT_NO_THROW(validate_region({{0, 0}, {8, 8}}, dims));
  EXPECT_THROW(validate_region({{0, 0}, {0, 8}}, dims), InvalidArgument);
  EXPECT_THROW(validate_region({{8, 0}, {1, 1}}, dims), InvalidArgument);
  EXPECT_THROW(validate_region({{4, 0}, {5, 1}}, dims), InvalidArgument);
  EXPECT_THROW(validate_region({{0}, {8}}, dims), InvalidArgument);
}

// --- ZoneCompressor ---------------------------------------------------------

TEST(ZoneCompressor, ParallelDecodeMatchesSerialAndUnzonedBitForBit) {
  const Field f = smooth_field_3d(40);
  CompressOptions opt;
  opt.error_bound = 1e-3;
  const ZoneCompressor zc("SZ3", 8);

  const ZonedField zoned = zc.compress(f, opt, /*parallel=*/true);
  EXPECT_EQ(zoned.zones(), 8u);
  const ZonedField serial_zoned = zc.compress(f, opt, /*parallel=*/false);
  ASSERT_EQ(serial_zoned.zones(), zoned.zones());
  for (std::size_t i = 0; i < zoned.zones(); ++i)
    EXPECT_EQ(zoned.blobs[i], serial_zoned.blobs[i]) << "zone " << i;

  const Field par = ZoneCompressor::decompress_all(zoned, true);
  const Field ser = ZoneCompressor::decompress_all(zoned, false);
  EXPECT_TRUE(bytes_equal(par, ser));

  // The acceptance bar: zones shard exactly like the streamed pipeline's
  // slabs and compress at the whole-field absolute bound, so the merged
  // zone reconstruction is bit-identical to the unzoned chunked path.
  PfsSimulator pfs;
  PipelineConfig pc;
  pc.codec = "SZ3";
  pc.error_bound = 1e-3;
  StreamConfig stream;
  stream.slabs = 8;
  const auto wrec = run_streamed_compress_write(f, pc, pfs, stream);
  const Field chunked = run_streamed_read(pfs, wrec.path, pc).field;
  EXPECT_TRUE(bytes_equal(par, chunked));
}

TEST(ZoneCompressor, RegionDecodeMatchesFullDecodeSlice) {
  const Field f = smooth_field_3d(40);
  CompressOptions opt;
  opt.error_bound = 1e-3;
  const ZoneCompressor zc("SZ3", 8);
  const ZonedField zoned = zc.compress(f, opt);
  const Field full = ZoneCompressor::decompress_all(zoned);

  Rng rng(31);
  for (int q = 0; q < 6; ++q) {
    const Region region = random_region(rng, zoned.dims);
    const Field got = ZoneCompressor::decompress_region(zoned, region);
    const Field got_serial =
        ZoneCompressor::decompress_region(zoned, region, false);
    const Field want = slice_region(full, region);
    EXPECT_TRUE(bytes_equal(got, want)) << "query " << q;
    EXPECT_TRUE(bytes_equal(got_serial, want)) << "query " << q;
  }
}

TEST(ZoneCompressor, BoundaryStraddlingRegions) {
  const Field f = smooth_field_3d(40);  // 8 zones of 5 rows
  CompressOptions opt;
  opt.error_bound = 1e-3;
  const ZonedField zoned = ZoneCompressor("SZ3", 8).compress(f, opt);
  const Field full = ZoneCompressor::decompress_all(zoned);
  // Straddle one boundary, several boundaries, and align exactly on one.
  for (const Region& region :
       {Region{{4, 0, 0}, {2, 40, 40}}, Region{{3, 10, 5}, {20, 7, 30}},
        Region{{5, 0, 0}, {5, 40, 40}}, Region{{0, 0, 0}, {40, 40, 40}}}) {
    const Field got = ZoneCompressor::decompress_region(zoned, region);
    EXPECT_TRUE(bytes_equal(got, slice_region(full, region)));
  }
}

TEST(ZoneCompressor, CoversEveryRankAndDtype) {
  CompressOptions opt;
  opt.error_bound = 1e-3;
  Rng rng(77);
  for (const Field& f : {noisy_field_1d(600), smooth_field_2d(48),
                         smooth_field_3d(24), double_field_4d(8, 12)}) {
    const ZonedField zoned = ZoneCompressor("SZ3", 4).compress(f, opt);
    const Field full = ZoneCompressor::decompress_all(zoned);
    EXPECT_EQ(full.shape(), f.shape());
    for (int q = 0; q < 3; ++q) {
      const Region region = random_region(rng, zoned.dims);
      const Field got = ZoneCompressor::decompress_region(zoned, region);
      EXPECT_TRUE(bytes_equal(got, slice_region(full, region)))
          << f.name() << " query " << q;
    }
  }
}

TEST(ZoneCompressor, WorksForEveryEblcCodec) {
  const Field f = smooth_field_3d(32);
  CompressOptions opt;
  opt.error_bound = 1e-3;
  const Region region{{5, 8, 0}, {10, 16, 32}};
  for (const std::string& codec : eblc_names()) {
    const ZonedField zoned = ZoneCompressor(codec, 4).compress(f, opt);
    const Field full = ZoneCompressor::decompress_all(zoned);
    const Field got = ZoneCompressor::decompress_region(zoned, region);
    EXPECT_TRUE(bytes_equal(got, slice_region(full, region))) << codec;
  }
}

TEST(ZoneCompressor, RejectsBadArguments) {
  const Field f = smooth_field_3d(16);
  CompressOptions opt;
  EXPECT_THROW(ZoneCompressor("SZ3", 0), InvalidArgument);
  const ZonedField zoned = ZoneCompressor("SZ3", 4).compress(f, opt);
  EXPECT_THROW(ZoneCompressor::decompress_region(zoned, {{0, 0}, {4, 4}}),
               InvalidArgument);
  EXPECT_THROW(
      ZoneCompressor::decompress_region(zoned, {{0, 0, 0}, {17, 16, 16}}),
      InvalidArgument);
}

// --- zoned containers through every IoTool ----------------------------------

class ZonedContainer : public ::testing::TestWithParam<std::string> {};

TEST_P(ZonedContainer, FooterZoneIndexRoundTrips) {
  const Field f = smooth_field_3d(40);
  PfsSimulator pfs;
  PipelineConfig config;
  config.codec = "SZ3";
  config.io_library = GetParam();
  StreamConfig stream;
  stream.slabs = 8;
  const auto wrec = run_streamed_compress_write(f, config, pfs, stream);

  auto reader = io_tool(GetParam()).open_chunked_reader(pfs, wrec.path);
  ASSERT_TRUE(reader.index().zoned());
  EXPECT_EQ(reader.index().zones, zone_extents(40, 8));

  // covering() resolves boxes from the footer alone; read_zones fetches
  // exactly the covering chunks byte-for-byte.
  const Region straddle{{4, 0, 0}, {2, 40, 40}};
  const auto cover = reader.covering(straddle);
  ASSERT_EQ(cover.size(), 2u);
  auto fetched = reader.read_zones(straddle);
  ASSERT_EQ(fetched.size(), 2u);
  for (std::size_t i = 0; i < fetched.size(); ++i) {
    EXPECT_EQ(fetched[i].zone, cover[i]);
    EXPECT_EQ(fetched[i].blob, reader.read_chunk(cover[i]));
    EXPECT_GT(fetched[i].cost.total_seconds(), 0.0);
  }
}

TEST_P(ZonedContainer, RandomQueryBoxesMatchSerialReference) {
  // The acceptance loop for partial reads: every random query box decoded
  // through the streamed region pipeline must be bit-identical to the
  // serial fetch-then-decode reference, and to the corresponding slice of
  // the full-field streamed read.
  const Field f = smooth_field_3d(40);
  PfsSimulator pfs;
  PipelineConfig config;
  config.codec = "SZ3";
  config.error_bound = 1e-3;
  config.io_library = GetParam();
  StreamConfig stream;
  stream.slabs = 8;
  const auto wrec = run_streamed_compress_write(f, config, pfs, stream);
  const Field full = run_streamed_read(pfs, wrec.path, config).field;

  Rng rng(101);
  for (int q = 0; q < 6; ++q) {
    const Region region = random_region(rng, {40, 40, 40});
    const auto rec = run_streamed_read_region(pfs, wrec.path, region, config);
    const Field ref = read_region_reference(pfs, wrec.path, region, GetParam());
    EXPECT_TRUE(bytes_equal(rec.field, ref)) << "query " << q;
    EXPECT_TRUE(bytes_equal(rec.field, slice_region(full, region)))
        << "query " << q;
    EXPECT_EQ(rec.field_bytes, rec.field.size_bytes());
    EXPECT_EQ(rec.zones_total, 8);
    EXPECT_EQ(static_cast<std::size_t>(rec.zones_decoded),
              covering_zones(zone_extents(40, 8), region.start[0],
                             region.shape[0])
                  .size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllContainers, ZonedContainer,
                         ::testing::Values("HDF5", "NetCDF", "ADIOS"));

// --- the point of the zone index: fetch scales with the query ---------------

TEST(ZoneRegionRead, BytesFetchedScaleWithQueryNotField) {
  const Field f = smooth_field_3d(48);
  PfsSimulator pfs;
  PipelineConfig config;
  config.codec = "SZ3";
  StreamConfig stream;
  stream.slabs = 8;
  const auto wrec = run_streamed_compress_write(f, config, pfs, stream);

  const Region one_zone{{0, 0, 0}, {2, 48, 48}};
  const auto small = run_streamed_read_region(pfs, wrec.path, one_zone, config);
  EXPECT_EQ(small.zones_decoded, 1);
  EXPECT_GT(small.bytes_fetched, 0u);
  EXPECT_LT(small.fetch_fraction(), 0.5);

  const Region everything{{0, 0, 0}, {48, 48, 48}};
  const auto all = run_streamed_read_region(pfs, wrec.path, everything, config);
  EXPECT_EQ(all.zones_decoded, 8);
  EXPECT_GT(all.bytes_fetched, small.bytes_fetched);
  // A full-box query fetches every chunk payload, nothing more.
  auto reader = io_tool("HDF5").open_chunked_reader(pfs, wrec.path);
  EXPECT_EQ(all.bytes_fetched, reader.index().total_bytes());
}

TEST(ZoneRegionRead, StreamedOverlapUndercutsSerialSchedule) {
  const Field f = smooth_field_3d(48);
  PfsSimulator pfs;
  PipelineConfig config;
  config.codec = "SZ3";
  StreamConfig stream;
  stream.slabs = 8;
  const auto wrec = run_streamed_compress_write(f, config, pfs, stream);
  const Region region{{8, 0, 0}, {30, 48, 48}};
  const auto rec = run_streamed_read_region(pfs, wrec.path, region, config);
  ASSERT_EQ(rec.zone_fetch_s.size(),
            static_cast<std::size_t>(rec.zones_decoded));
  ASSERT_EQ(rec.zone_decompress_s.size(),
            static_cast<std::size_t>(rec.zones_decoded));
  for (double s : rec.zone_fetch_s) EXPECT_GT(s, 0.0);
  for (double s : rec.zone_decompress_s) EXPECT_GT(s, 0.0);
  EXPECT_GT(rec.streamed_total_s, 0.0);
  EXPECT_LT(rec.streamed_total_s, rec.serial_total_s);
  EXPECT_GT(rec.overlap_saving_s(), 0.0);
  EXPECT_GT(rec.fetch_j, 0.0);
  EXPECT_GT(rec.decompress_j, 0.0);
}

// --- robustness -------------------------------------------------------------

class ZoneRobustness : public ::testing::Test {
 protected:
  void SetUp() override {
    field_ = smooth_field_3d(24);
    config_.codec = "SZ3";
    StreamConfig stream;
    stream.slabs = 4;
    path_ = run_streamed_compress_write(field_, config_, pfs_, stream).path;
    nchunks_ = 4;
  }

  void corrupt(const std::function<void(Bytes&)>& mutate) {
    Bytes raw = pfs_.read_file(path_);
    mutate(raw);
    pfs_.write_file(path_, raw);
  }

  // Byte offset of zone entry `i`'s field `word` (0 = offset, 1 = size,
  // 2 = row_start, 3 = rows) inside the container's footer.
  std::size_t footer_word(const Bytes& raw, std::size_t i,
                          std::size_t word) const {
    const std::size_t footer_len = 12 + 32 * nchunks_ + 8;
    return raw.size() - footer_len + 12 + 32 * i + 8 * word;
  }

  Region region_{{0, 0, 0}, {24, 24, 24}};
  Field field_;
  PipelineConfig config_;
  PfsSimulator pfs_;
  std::string path_;
  std::size_t nchunks_ = 0;
};

TEST_F(ZoneRobustness, OutOfBoundsExtentFailsCleanly) {
  // Blow up the first entry's size: the overflow-safe extent check must
  // reject the index at open, before any chunk fetch.
  corrupt([&](Bytes& raw) {
    const std::uint64_t huge = ~std::uint64_t{0} / 2;
    std::memcpy(raw.data() + footer_word(raw, 0, 1), &huge, 8);
  });
  EXPECT_THROW(run_streamed_read_region(pfs_, path_, region_, config_),
               CorruptStream);
  EXPECT_THROW(read_region_reference(pfs_, path_, region_, "HDF5"),
               CorruptStream);
}

TEST_F(ZoneRobustness, NonContiguousZoneIndexFailsCleanly) {
  // Shift zone 1's row_start: the index no longer partitions the rows.
  corrupt([&](Bytes& raw) {
    const std::uint64_t bad = 17;
    std::memcpy(raw.data() + footer_word(raw, 1, 2), &bad, 8);
  });
  EXPECT_THROW(run_streamed_read_region(pfs_, path_, region_, config_),
               CorruptStream);
}

TEST_F(ZoneRobustness, ShortZoneCoverageFailsCleanly) {
  // Shrink the last zone so the index stops short of the dataset rows.
  corrupt([&](Bytes& raw) {
    const std::uint64_t bad = 1;
    std::memcpy(raw.data() + footer_word(raw, nchunks_ - 1, 3), &bad, 8);
  });
  EXPECT_THROW(run_streamed_read_region(pfs_, path_, region_, config_),
               CorruptStream);
}

TEST_F(ZoneRobustness, TruncatedZoneBlobFailsWithoutPartialField) {
  // Halve the first zone's recorded size: the extent stays in bounds, so
  // the open succeeds, but decoding the truncated blob must throw — from
  // both the streamed pipeline and the serial reference — with no partial
  // region escaping.
  corrupt([&](Bytes& raw) {
    std::uint64_t size = 0;
    std::memcpy(&size, raw.data() + footer_word(raw, 0, 1), 8);
    size /= 2;
    std::memcpy(raw.data() + footer_word(raw, 0, 1), &size, 8);
  });
  const Region hits_zone0{{0, 0, 0}, {2, 24, 24}};
  EXPECT_THROW(
      (void)run_streamed_read_region(pfs_, path_, hits_zone0, config_), Error);
  EXPECT_THROW((void)read_region_reference(pfs_, path_, hits_zone0, "HDF5"),
               Error);
  // Queries that never touch the truncated zone still decode.
  const Region other_zones{{12, 0, 0}, {6, 24, 24}};
  const auto rec = run_streamed_read_region(pfs_, path_, other_zones, config_);
  EXPECT_TRUE(bytes_equal(
      rec.field, read_region_reference(pfs_, path_, other_zones, "HDF5")));
}

TEST_F(ZoneRobustness, CorruptZoneBlobFailsWithoutPartialField) {
  // Flip the middle of zone 2's payload: fetch succeeds, decode throws.
  auto reader = io_tool("HDF5").open_chunked_reader(pfs_, path_);
  const auto extent = reader.index().chunks[2];
  corrupt([&](Bytes& raw) {
    for (std::size_t i = 0; i < extent.size; ++i)
      raw[static_cast<std::size_t>(extent.offset) + i] ^= std::byte{0xff};
  });
  const Region hits_zone2{{13, 0, 0}, {2, 24, 24}};
  EXPECT_THROW(
      (void)run_streamed_read_region(pfs_, path_, hits_zone2, config_), Error);
  EXPECT_THROW((void)read_region_reference(pfs_, path_, hits_zone2, "HDF5"),
               Error);
}

TEST_F(ZoneRobustness, OutOfBoundsRegionIsInvalidArgument) {
  EXPECT_THROW(run_streamed_read_region(pfs_, path_, {{0, 0, 0}, {25, 24, 24}},
                                        config_),
               InvalidArgument);
  EXPECT_THROW(
      run_streamed_read_region(pfs_, path_, {{0, 0}, {4, 4}}, config_),
      InvalidArgument);
  EXPECT_THROW(
      read_region_reference(pfs_, path_, {{24, 0, 0}, {1, 1, 1}}, "HDF5"),
      InvalidArgument);
}

// --- version-1 back-compat --------------------------------------------------

TEST(ZoneBackCompat, V1ChunkedContainersStillDecodeAndRejectRegionQueries) {
  // Containers written through the original open_chunked path carry no
  // zone index: they must round-trip exactly as before, and partial-region
  // APIs must refuse them cleanly rather than misread the v1 footer.
  const Field f = smooth_field_3d(24);
  PipelineConfig config;
  config.codec = "SZ3";
  PfsSimulator pfs;
  CompressOptions opt;
  opt.error_bound = config.error_bound;
  const Bytes blob = compressor("SZ3").compress(f, opt);

  IoTool& tool = io_tool("HDF5");
  ChunkedDatasetMeta meta;
  meta.name = f.name();
  meta.dims = f.shape().dims_vector();
  auto writer = tool.open_chunked(pfs, "/pfs/v1", meta);
  EXPECT_THROW(writer.append_zone(blob, {0, 24}), InvalidArgument);
  writer.append_chunk(blob);
  writer.close();

  auto reader = tool.open_chunked_reader(pfs, "/pfs/v1");
  EXPECT_FALSE(reader.index().zoned());
  const Region region{{0, 0, 0}, {4, 24, 24}};
  EXPECT_THROW(reader.covering(region), InvalidArgument);
  EXPECT_THROW(run_streamed_read_region(pfs, "/pfs/v1", region, config),
               CorruptStream);
  EXPECT_THROW(read_region_reference(pfs, "/pfs/v1", region, "HDF5"),
               CorruptStream);

  // The full-field streamed read still serves v1 containers bit-for-bit.
  const auto read = run_streamed_read(pfs, "/pfs/v1", config);
  EXPECT_TRUE(bytes_equal(read.field, decompress_any(blob)));
}

TEST(ZoneBackCompat, ZonedWriterRejectsPlainAppendAndBadPartitions) {
  const Field f = smooth_field_3d(16);
  PfsSimulator pfs;
  IoTool& tool = io_tool("HDF5");
  ChunkedDatasetMeta meta;
  meta.name = "zs";
  meta.dims = f.shape().dims_vector();
  const Bytes blob(512, std::byte{0x2a});

  auto writer = tool.open_zoned(pfs, "/pfs/z", meta);
  EXPECT_THROW(writer.append_chunk(blob), InvalidArgument);
  EXPECT_THROW(writer.append_zone(blob, {0, 0}), InvalidArgument);
  writer.append_zone(blob, {0, 8});
  // Out-of-order / gapped extents are rejected immediately.
  EXPECT_THROW(writer.append_zone(blob, {9, 7}), InvalidArgument);
  // Closing before the zones cover the dataset rows is rejected.
  EXPECT_THROW(writer.close(), InvalidArgument);
}

}  // namespace
}  // namespace eblcio
