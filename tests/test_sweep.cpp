// Sweep-engine tests: deterministic result ordering under parallel
// execution, in-order streaming, per-cell exception isolation, mid-sweep
// cancellation, repetition-protocol parity with the serial path, measured
// overlap speedup, and the refactored advisor/estimator/multi-node sites.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/timer.h"
#include "core/decision.h"
#include "core/estimator.h"
#include "core/sweep.h"
#include "io/pfs.h"
#include "parallel/simmpi.h"
#include "test_util.h"

namespace eblcio {
namespace {

using test::smooth_field_3d;

TEST(Sweep, ResultsInDomainOrderUnderParallelExecution) {
  // Later cells finish first (descending sleep), yet slots and the
  // streamed callback sequence stay in domain order.
  Executor ex(4);
  SweepOptions options;
  options.executor = &ex;
  std::vector<int> cells;
  for (int i = 0; i < 16; ++i) cells.push_back(i);

  std::vector<std::size_t> streamed;
  const auto report = sweep_grid(
      cells,
      [](const int& cell, SweepCellContext&) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds((15 - cell) % 4 * 3));
        return cell * 10;
      },
      options,
      [&](const SweepCell<int, int>& cell) { streamed.push_back(cell.index); });

  ASSERT_EQ(report.cells.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(report.cells[i].index, i);
    EXPECT_EQ(report.cells[i].cell, static_cast<int>(i));
    ASSERT_TRUE(report.cells[i].result.has_value());
    EXPECT_EQ(*report.cells[i].result, static_cast<int>(i) * 10);
  }
  ASSERT_EQ(streamed.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(streamed[i], i);
  EXPECT_EQ(report.stats.completed, 16u);
  EXPECT_EQ(report.stats.failed, 0u);
}

TEST(Sweep, SerialAndParallelEmitIdenticalSequences) {
  std::vector<int> cells;
  for (int i = 0; i < 24; ++i) cells.push_back(i * 7 + 1);

  auto run = [&](bool parallel) {
    SweepOptions options;
    options.parallel = parallel;
    std::vector<int> emitted;
    sweep_grid(
        cells,
        [](const int& cell, SweepCellContext&) { return cell * cell; },
        options,
        [&](const SweepCell<int, int>& cell) {
          emitted.push_back(*cell.result);
        });
    return emitted;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Sweep, CellExceptionIsIsolated) {
  std::vector<int> cells;
  for (int i = 0; i < 32; ++i) cells.push_back(i);
  const auto report = sweep_grid(
      cells, [](const int& cell, SweepCellContext&) {
        if (cell == 7) throw InvalidArgument("cell 7 boom");
        return cell;
      });
  EXPECT_EQ(report.stats.failed, 1u);
  EXPECT_EQ(report.stats.completed, 31u);
  EXPECT_TRUE(report.cells[7].error != nullptr);
  EXPECT_FALSE(report.cells[7].result.has_value());
  for (std::size_t i = 0; i < 32; ++i) {
    if (i == 7) continue;
    ASSERT_TRUE(report.cells[i].result.has_value()) << i;
  }
  EXPECT_THROW(report.rethrow_first_error(), InvalidArgument);
}

TEST(Sweep, CancellationSkipsUnstartedCells) {
  // max_tasks = 1 runs the cells in order inside one executor task, so
  // cancelling from the on-cell stream after cell 3 deterministically
  // skips cells 4..15; skipped cells are still streamed.
  SweepCancel cancel;
  SweepOptions options;
  options.max_tasks = 1;
  options.cancel = &cancel;
  std::vector<int> cells(16, 0);
  std::vector<std::pair<std::size_t, bool>> streamed;  // (index, skipped)
  const auto report = sweep_grid(
      cells, [](const int&, SweepCellContext&) { return 1; }, options,
      [&](const SweepCell<int, int>& cell) {
        streamed.push_back({cell.index, cell.skipped});
        if (cell.index == 3) cancel.request();
      });
  EXPECT_EQ(report.stats.completed, 4u);
  EXPECT_EQ(report.stats.skipped, 12u);
  ASSERT_EQ(streamed.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(streamed[i].first, i);
    EXPECT_EQ(streamed[i].second, i > 3);
    EXPECT_EQ(report.cells[i].skipped, i > 3);
  }
}

TEST(Sweep, CallbackExceptionAbortsGridUniformly) {
  // A throwing on_cell stops further callbacks, skips unstarted cells, and
  // rethrows from sweep_grid — identically in serial and parallel mode.
  auto run = [&](bool parallel) {
    SweepOptions options;
    options.parallel = parallel;
    options.max_tasks = 1;  // in-order evaluation in parallel mode too
    std::vector<int> cells(8, 0);
    std::size_t emitted = 0;
    bool threw = false;
    try {
      sweep_grid(
          cells, [](const int&, SweepCellContext&) { return 1; }, options,
          [&](const SweepCell<int, int>& cell) {
            ++emitted;
            if (cell.index == 2) throw Error("consumer stop");
          });
    } catch (const Error&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
    return emitted;
  };
  EXPECT_EQ(run(false), 3u);  // cells 0..2 streamed, then the abort
  EXPECT_EQ(run(true), 3u);
}

TEST(Sweep, CancelRequestedVisibleInsideCells) {
  SweepCancel cancel;
  SweepOptions options;
  options.parallel = false;
  options.cancel = &cancel;
  std::vector<int> cells(4, 0);
  int observed = 0;
  sweep_grid(cells, [&](const int&, SweepCellContext& ctx) {
    if (ctx.index() == 1) cancel.request();
    if (ctx.cancel_requested()) ++observed;
    return 0;
  }, options);
  // Cell 1 requested mid-grid; cells 2/3 were skipped before starting, so
  // only cell 1 itself observed the flag from inside.
  EXPECT_EQ(observed, 1);
}

TEST(Sweep, RepetitionStatsMatchSerialPathBitForBit) {
  // Deterministic per-cell sample streams: cell i's k-th sample is a pure
  // function of (i, k), so the Sec. IV-C statistics must be bit-identical
  // between the serial and the parallel execution of the same grid.
  RepeatConfig repeat;
  repeat.min_runs = 3;
  repeat.max_runs = 9;
  repeat.target_rel_ci = 0.02;

  auto run = [&](bool parallel) {
    SweepOptions options;
    options.parallel = parallel;
    options.repeat = repeat;
    std::vector<int> cells;
    for (int i = 0; i < 20; ++i) cells.push_back(i);
    auto report = sweep_grid(cells, [](const int& cell, SweepCellContext& ctx) {
      int k = 0;
      return ctx.repeat([cell, k]() mutable {
        ++k;
        return 100.0 + cell + 3.0 * std::sin(cell * 17.0 + k * 5.0);
      });
    }, options);
    std::vector<RepeatedStats> stats;
    for (auto& c : report.cells) stats.push_back(*c.result);
    return stats;
  };

  const auto serial = run(false);
  const auto parallel = run(true);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].runs, parallel[i].runs) << i;
    EXPECT_EQ(serial[i].mean, parallel[i].mean) << i;          // bit-for-bit
    EXPECT_EQ(serial[i].stddev, parallel[i].stddev) << i;
    EXPECT_EQ(serial[i].ci95_half, parallel[i].ci95_half) << i;
  }
}

TEST(Sweep, ParallelGridBeatsSerialWallClock) {
  // >= 20 cells of pure waiting: overlap must beat the serial path by a
  // wide margin (sleeps overlap even on a single-core host). Acceptance
  // datapoint for the unified sweep engine.
  Executor ex(8);
  std::vector<int> cells(24, 0);
  auto run = [&](bool parallel) {
    SweepOptions options;
    options.parallel = parallel;
    options.executor = &ex;
    WallTimer timer;
    auto report = sweep_grid(cells, [](const int&, SweepCellContext&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      return 1;
    }, options);
    EXPECT_EQ(report.stats.completed, 24u);
    return timer.elapsed_s();
  };
  const double serial_s = run(false);
  const double parallel_s = run(true);
  std::printf("sweep speedup over serial: %.1fx (serial %.0f ms, parallel "
              "%.0f ms, 24 cells)\n",
              serial_s / parallel_s, serial_s * 1e3, parallel_s * 1e3);
  EXPECT_LT(parallel_s, serial_s * 0.6);
}

TEST(Advisor, ParallelSweepMatchesSerialResults) {
  const Field f = smooth_field_3d(32);
  auto run = [&](bool parallel) {
    AdvisorConstraints cons;
    cons.psnr_min_db = 40.0;
    cons.parallel = parallel;
    auto report = advise_compression(f, cons);
    // Compare the deterministic fields (measured kernel *time* legitimately
    // varies run-to-run, so energies/scores may reorder equal-ratio cells).
    std::vector<std::tuple<std::string, double, double, double, bool>> rows;
    for (const auto& c : report.candidates)
      rows.push_back({c.codec, c.error_bound, c.ratio, c.psnr_db, c.feasible});
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Advisor, StreamsTrialsInDomainOrder) {
  const Field f = smooth_field_3d(24);
  AdvisorConstraints cons;
  cons.psnr_min_db = 40.0;
  cons.codecs = {"SZ3", "SZx"};
  cons.error_bounds = {1e-2, 1e-3};
  std::vector<std::pair<std::string, double>> streamed;
  std::size_t last_done = 0;
  advise_compression(f, cons,
                     [&](const AdvisorCandidate& c, std::size_t done,
                         std::size_t total) {
                       EXPECT_GT(done, last_done);
                       last_done = done;
                       EXPECT_EQ(total, 4u);
                       streamed.push_back({c.codec, c.error_bound});
                     });
  const std::vector<std::pair<std::string, double>> want = {
      {"SZ3", 1e-2}, {"SZ3", 1e-3}, {"SZx", 1e-2}, {"SZx", 1e-3}};
  EXPECT_EQ(streamed, want);
}

TEST(Estimator, GridMatchesSingleCellCallsBitForBit) {
  const Field f = smooth_field_3d(40);
  const std::vector<std::string> codecs = {"SZ3", "ZFP", "SZx", "QoZ"};
  const std::vector<double> bounds = {1e-2, 1e-3, 1e-4};
  const auto entries = estimate_ratio_grid(f, codecs, bounds);
  ASSERT_EQ(entries.size(), codecs.size() * bounds.size());
  std::size_t k = 0;
  for (const auto& codec : codecs)
    for (double eb : bounds) {
      const RatioEstimate one = estimate_ratio(f, codec, eb);
      ASSERT_TRUE(entries[k].ok) << entries[k].error;
      EXPECT_EQ(entries[k].codec, codec);
      EXPECT_EQ(entries[k].estimate.bits_per_value, one.bits_per_value);
      EXPECT_EQ(entries[k].estimate.predicted_ratio, one.predicted_ratio);
      EXPECT_EQ(entries[k].estimate.sampled_values, one.sampled_values);
      ++k;
    }
}

TEST(Estimator, GridIsolatesUnknownCodec) {
  const Field f = smooth_field_3d(24);
  const auto entries =
      estimate_ratio_grid(f, {"SZ3", "zstd", "ZFP"}, {1e-3});
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_TRUE(entries[0].ok);
  EXPECT_FALSE(entries[1].ok);
  EXPECT_NE(entries[1].error.find("no ratio model"), std::string::npos);
  EXPECT_TRUE(entries[2].ok);
}

TEST(Pfs, WriterRegistryCountsAndPeaks) {
  PfsSimulator pfs;
  EXPECT_EQ(pfs.concurrent_writers(), 0);
  {
    PfsSimulator::WriterScope a(pfs, 3);
    EXPECT_EQ(pfs.concurrent_writers(), 3);
    {
      PfsSimulator::WriterScope b(pfs, 4);
      EXPECT_EQ(pfs.concurrent_writers(), 7);
    }
    EXPECT_EQ(pfs.concurrent_writers(), 3);
  }
  EXPECT_EQ(pfs.concurrent_writers(), 0);
  EXPECT_EQ(pfs.peak_concurrent_writers(), 7);
  pfs.reset_writer_peak();
  EXPECT_EQ(pfs.peak_concurrent_writers(), 0);
}

TEST(Pfs, ConcurrentAppendsFromManyTasksStayIntact) {
  // The PFS is now internally locked: concurrent clients writing distinct
  // files must never corrupt stripes or lose bytes.
  PfsSimulator pfs;
  parallel_for(16, 0, [&](std::size_t i) {
    Bytes data;
    for (std::size_t k = 0; k < 40000; ++k)
      data.push_back(static_cast<std::byte>((i * 131 + k) & 0xFF));
    const std::string path = "/t/file" + std::to_string(i);
    pfs.append_file(path, std::span<const std::byte>(data.data(), 16384), 16);
    pfs.append_file(path,
                    std::span<const std::byte>(data.data() + 16384,
                                               data.size() - 16384),
                    16);
  });
  for (std::size_t i = 0; i < 16; ++i) {
    const Bytes back = pfs.read_file("/t/file" + std::to_string(i));
    ASSERT_EQ(back.size(), 40000u);
    for (std::size_t k = 0; k < back.size(); ++k)
      ASSERT_EQ(back[k], static_cast<std::byte>((i * 131 + k) & 0xFF));
  }
}

TEST(MultiNode, BatchedWorldsFeedTrueWriterCountToSharedPfs) {
  // Three simmpi worlds as sweep cells against one PFS. Serial: worlds
  // never overlap, so the peak registered-writer count is exactly the
  // largest fleet. Batched: the peak can only grow (overlapping fleets
  // sum) and never exceed the whole-grid fleet sum.
  const std::vector<int> fleets = {3, 5, 4};
  auto run = [&](bool parallel) {
    PfsSimulator pfs;
    SweepOptions options;
    options.parallel = parallel;
    auto report = sweep_grid(fleets, [&](const int& nranks,
                                         SweepCellContext&) {
      PfsSimulator::WriterScope fleet(pfs, nranks);
      double total = 0.0;
      SimMpiWorld::run(nranks, [&](Communicator& comm) {
        const int clients = std::max(comm.size(), pfs.concurrent_writers());
        EXPECT_GE(clients, nranks);
        comm.advance_time(pfs.transfer_seconds(1 << 20, clients));
        const double world_max = comm.allreduce_max(comm.sim_time());
        if (comm.rank() == 0) total = world_max;
      });
      return total;
    }, options);
    report.rethrow_first_error();
    return pfs.peak_concurrent_writers();
  };
  EXPECT_EQ(run(false), 5);  // serial: exactly the largest fleet
  const int batched_peak = run(true);
  EXPECT_GE(batched_peak, 5);
  EXPECT_LE(batched_peak, 12);
}

}  // namespace
}  // namespace eblcio
