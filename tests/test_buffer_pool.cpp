// BufferPool: reuse semantics, thread churn, and the zero-allocation
// steady state of the streamed pipelines that ride on it.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "codec/huffman.h"
#include "common/buffer_pool.h"
#include "common/rng.h"
#include "compressors/compressor.h"
#include "compressors/zone.h"
#include "core/pipeline.h"
#include "data/dataset.h"
#include "io/pfs.h"

namespace eblcio {
namespace {

TEST(BufferPool, AcquireReleaseReusesAllocation) {
  BufferPool pool;
  Bytes a = pool.acquire(1024);
  a.resize(1024);
  const std::byte* ptr = a.data();
  pool.release(std::move(a));

  Bytes b = pool.acquire(512);
  EXPECT_EQ(b.size(), 0u);           // always handed back empty
  EXPECT_GE(b.capacity(), 1024u);    // same allocation recycled
  EXPECT_EQ(b.data(), ptr);

  const auto s = pool.stats();
  EXPECT_EQ(s.acquires, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.releases, 1u);
}

TEST(BufferPool, BestFitPrefersSmallestCoveringBuffer) {
  BufferPool pool;
  for (std::size_t cap : {4096u, 256u, 1024u}) {
    Bytes b;
    b.reserve(cap);
    pool.release(std::move(b));
  }
  Bytes got = pool.acquire(512);
  EXPECT_GE(got.capacity(), 512u);
  EXPECT_LT(got.capacity(), 4096u);  // 1024 is the best fit, not 4096
}

TEST(BufferPool, EmptyReleaseIsDropped) {
  BufferPool pool;
  pool.release(Bytes());
  EXPECT_EQ(pool.stats().retained_buffers, 0u);
}

TEST(BufferPool, TrimFreesRetainedBuffers) {
  BufferPool pool;
  Bytes b;
  b.reserve(4096);
  pool.release(std::move(b));
  EXPECT_GT(pool.stats().retained_bytes, 0u);
  pool.trim();
  EXPECT_EQ(pool.stats().retained_buffers, 0u);
  EXPECT_EQ(pool.stats().retained_bytes, 0u);
}

TEST(BufferPool, ThreadChurnStaysConsistent) {
  BufferPool pool;
  constexpr int kThreads = 8;
  constexpr int kLaps = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kLaps; ++i) {
        Bytes b = pool.acquire(64 + static_cast<std::size_t>(t) * 128);
        b.resize(64 + static_cast<std::size_t>(i % 7) * 32,
                 std::byte{static_cast<unsigned char>(t)});
        // Buffers must come back empty regardless of who released them.
        for (std::size_t k = 0; k < b.size(); ++k)
          b[k] = std::byte{static_cast<unsigned char>(i)};
        pool.release(std::move(b));
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto s = pool.stats();
  EXPECT_EQ(s.acquires, static_cast<std::uint64_t>(kThreads) * kLaps);
  EXPECT_EQ(s.releases, static_cast<std::uint64_t>(kThreads) * kLaps);
  EXPECT_LE(s.retained_buffers, 8u * 16u);  // shard caps hold
  // Churning threads over a shared pool must reuse far more than it mints.
  EXPECT_GT(s.hits, s.acquires / 2);
}

TEST(BufferPool, StreamedWritePipelineReachesSteadyStateReuse) {
  // After a first warm-up lap, the streamed write path (compress ->
  // append_chunk -> recycle) should serve its slab buffers from the pool:
  // hits strictly increase across subsequent runs.
  const Field field = generate_dataset_dims("NYX", {32, 32, 32}, 3);
  PipelineConfig config;
  config.codec = "SZ3";
  config.error_bound = 1e-3;
  config.threads = 1;
  // NetCDF stages every chunk through a conversion buffer, and the read
  // pipeline fetches through pooled ranged reads — both pull from the
  // recycled slab blobs.
  config.io_library = "NetCDF";
  StreamConfig stream;
  stream.slabs = 8;
  stream.queue_depth = 2;

  BufferPool& pool = BufferPool::global();
  pool.reset_stats();
  {
    PfsSimulator pfs;
    (void)run_streamed_compress_write(field, config, pfs, stream);
  }
  const auto warm = pool.stats();
  {
    PfsSimulator pfs;
    const auto rec = run_streamed_compress_write(field, config, pfs, stream);
    (void)run_streamed_read(pfs, rec.path, config, stream);
  }
  const auto second = pool.stats();
  // Second lap: the write path's staging copies and the read path's
  // ranged fetches are served from recycled slab buffers.
  EXPECT_GT(second.hits, warm.hits);
}

TEST(BufferPool, ZoneCompressSteadyStateIsAllocationFree) {
  // The per-zone codec path (bitstream take -> huffman/lz blob -> code
  // stream framing) acquires every working buffer from the pool and
  // releases it once framed. After one warm lap, a serial zone compress
  // must therefore run with zero fresh pool allocations: every acquire is
  // a hit. (Serial keeps all acquires on one thread, i.e. one shard, so
  // the assertion is exact rather than scheduling-dependent.)
  const Field field = generate_dataset_dims("NYX", {32, 32, 32}, 3);
  CompressOptions opt;
  opt.error_bound = 1e-3;
  const ZoneCompressor zc("SZ3", 4);

  BufferPool& pool = BufferPool::global();
  ZonedField warm = zc.compress(field, opt, /*parallel=*/false);
  warm.recycle();  // zone blobs rejoin the pool for the next lap
  pool.reset_stats();

  ZonedField hot = zc.compress(field, opt, /*parallel=*/false);
  const auto s = pool.stats();
  EXPECT_GT(s.acquires, 0u);
  EXPECT_EQ(s.acquires, s.hits);  // steady state: no per-zone allocations
  hot.recycle();
}

TEST(BufferPool, HuffmanEncodeSteadyStateIsAllocationFree) {
  // The hot encoder keeps its histogram/emit scratch in thread_local
  // storage and sizes the output acquire exactly (header bound + payload
  // bits), so a re-encode loop must reach the pool's steady state: after a
  // warm lap, every output-buffer acquire is a hit and nothing else
  // allocates per call.
  Rng rng(2);
  std::vector<std::uint32_t> syms(1 << 16);
  for (auto& s : syms) {
    const double g = rng.normal() * 12.0;
    s = static_cast<std::uint32_t>(std::clamp(32768.0 + g, 0.0, 65536.0));
  }

  BufferPool& pool = BufferPool::global();
  Bytes warm = huffman_encode(syms, 65537);
  pool.release(std::move(warm));
  pool.reset_stats();

  for (int lap = 0; lap < 16; ++lap) {
    Bytes blob = huffman_encode(syms, 65537);
    pool.release(std::move(blob));
  }
  const auto s = pool.stats();
  EXPECT_GT(s.acquires, 0u);
  EXPECT_EQ(s.acquires, s.hits);  // steady state: no encoder allocations
}

}  // namespace
}  // namespace eblcio
