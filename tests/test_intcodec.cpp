// Integer-coding primitive tests: zigzag, negabinary, varint, shuffle.
#include <gtest/gtest.h>

#include <limits>

#include "codec/intcodec.h"
#include "codec/shuffle.h"
#include "common/rng.h"

namespace eblcio {
namespace {

TEST(ZigZag, KnownValues) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  EXPECT_EQ(zigzag_encode(2), 4u);
}

TEST(ZigZag, RoundTripExtremes) {
  for (std::int64_t v : {std::numeric_limits<std::int64_t>::min(),
                         std::numeric_limits<std::int64_t>::max(),
                         std::int64_t{0}, std::int64_t{-1}}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

TEST(ZigZag, RandomRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next_u64());
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

TEST(Negabinary, RoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next_u64() >> 2);
    EXPECT_EQ(uint2int_negabinary(int2uint_negabinary(v)), v);
    EXPECT_EQ(uint2int_negabinary(int2uint_negabinary(-v)), -v);
  }
}

TEST(Negabinary, SmallMagnitudesHaveFewBits) {
  // The property ZFP's bit-plane coder relies on: values of small magnitude
  // (either sign) have their significant bits in the low planes.
  for (std::int64_t v = -8; v <= 8; ++v) {
    const std::uint64_t u = int2uint_negabinary(v);
    EXPECT_LT(u, 64u) << "v=" << v;
  }
}

TEST(Varint, RoundTrip) {
  Bytes b;
  const std::uint64_t values[] = {0,   1,          127,          128,
                                  300, 1000000ull, (1ull << 35), ~0ull};
  for (auto v : values) varint_encode(b, v);
  ByteReader r(b);
  for (auto v : values) EXPECT_EQ(varint_decode(r), v);
  EXPECT_TRUE(r.at_end());
}

TEST(Varint, SmallValuesOneByte) {
  Bytes b;
  varint_encode(b, 127);
  EXPECT_EQ(b.size(), 1u);
  varint_encode(b, 128);
  EXPECT_EQ(b.size(), 3u);
}

TEST(Shuffle, RoundTrip) {
  Rng rng(3);
  Bytes data(8 * 1000);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_below(256));
  for (std::size_t elem : {4u, 8u}) {
    const Bytes shuffled = shuffle_bytes(data, elem);
    EXPECT_EQ(unshuffle_bytes(shuffled, elem), data);
  }
}

TEST(Shuffle, GroupsBytePositions) {
  // Elements 0x04030201 repeated: after shuffle, first quarter should be
  // all 0x01 bytes.
  Bytes data;
  for (int i = 0; i < 100; ++i)
    for (std::uint8_t b : {1, 2, 3, 4}) data.push_back(std::byte{b});
  const Bytes s = shuffle_bytes(data, 4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(s[i], std::byte{1});
    EXPECT_EQ(s[100 + i], std::byte{2});
  }
}

TEST(Shuffle, RejectsMisalignedBuffer) {
  EXPECT_THROW(shuffle_bytes(Bytes(10), 4), InvalidArgument);
  EXPECT_THROW(unshuffle_bytes(Bytes(10), 8), InvalidArgument);
}

}  // namespace
}  // namespace eblcio
