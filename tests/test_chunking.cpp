// Slab chunking tests: split/merge inverses, deterministic row
// distribution, chunk container layout.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "compressors/chunking.h"
#include "parallel/executor.h"
#include "test_util.h"

namespace eblcio {
namespace {

using test::double_field_4d;
using test::smooth_field_3d;

TEST(Chunking, SlabRowsDistributesRemainder) {
  // 10 rows over 4 chunks -> 3,3,2,2.
  EXPECT_EQ(slab_rows(10, 4, 0), 3u);
  EXPECT_EQ(slab_rows(10, 4, 1), 3u);
  EXPECT_EQ(slab_rows(10, 4, 2), 2u);
  EXPECT_EQ(slab_rows(10, 4, 3), 2u);
  std::size_t total = 0;
  for (int c = 0; c < 4; ++c) total += slab_rows(10, 4, c);
  EXPECT_EQ(total, 10u);
}

TEST(Chunking, SplitMergeIsIdentity) {
  const Field f = smooth_field_3d(20);
  for (int chunks : {1, 2, 3, 7, 20}) {
    const auto slabs = split_slabs(f, chunks);
    const Field merged =
        merge_slabs(slabs, f.shape().dims_vector(), f.name());
    ASSERT_EQ(merged.shape(), f.shape());
    for (std::size_t i = 0; i < f.num_elements(); ++i)
      EXPECT_EQ(merged.as<float>()[i], f.as<float>()[i]);
  }
}

TEST(Chunking, SplitCapsAtDimZero) {
  const Field f = double_field_4d(3, 8);  // dim0 = 3
  const auto slabs = split_slabs(f, 16);
  EXPECT_EQ(slabs.size(), 3u);
}

TEST(Chunking, SlabShapesMatchDistribution) {
  const Field f = smooth_field_3d(10);
  const auto slabs = split_slabs(f, 4);
  ASSERT_EQ(slabs.size(), 4u);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(slabs[c].shape().dim(0), slab_rows(10, 4, static_cast<int>(c)));
    EXPECT_EQ(slabs[c].shape().dim(1), 10u);
  }
}

TEST(Chunking, ContainerRoundTripSingleAndChunked) {
  const Field f = smooth_field_3d(16);
  BlobHeader header;
  header.codec = "test";
  header.dtype = f.dtype();
  header.dims = f.shape().dims_vector();

  // Identity "codec": payload = raw bytes.
  PayloadCompressFn kernel = [](const Field& field, const BlobHeader&,
                                const CompressOptions&) {
    auto raw = field.bytes();
    return Bytes(raw.begin(), raw.end());
  };
  PayloadDecompressFn dekernel = [](const BlobHeader& h,
                                    std::span<const std::byte> payload) {
    NdArray<float> arr(Shape{std::span<const std::size_t>(h.dims)});
    EBLCIO_CHECK_STREAM(payload.size() == arr.size_bytes(), "size");
    std::memcpy(arr.data(), payload.data(), payload.size());
    return Field(h.codec, std::move(arr));
  };

  for (int threads : {1, 4}) {
    CompressOptions opt;
    opt.threads = threads;
    const Bytes blob = compress_chunked(header, f, opt, kernel);
    const Field r = decompress_chunked(blob, threads, dekernel);
    ASSERT_EQ(r.shape(), f.shape());
    for (std::size_t i = 0; i < f.num_elements(); ++i)
      EXPECT_EQ(r.as<float>()[i], f.as<float>()[i]);
  }
}

TEST(Chunking, PoddedChunkedCompressPlacesSlabsPodLocally) {
  // Route a real chunked compression through an explicitly podded pool via
  // CompressOptions::executor. parallel_for's deterministic block->pod
  // mapping hints slab i onto the pod owning slab i's buffers; with real
  // per-slab work keeping every worker busy, >=90% of the hinted tasks
  // must actually run pod-locally.
  // Tall dim0 -> many slabs: the hinted fan-out is long enough that the
  // unavoidable cross-pod steals at the drained tail stay a small share.
  NdArray<float> arr(Shape{256, 64, 64});
  for (std::size_t i = 0; i < arr.num_elements(); ++i)
    arr[i] = static_cast<float>(i % 251);
  const Field f("tall", std::move(arr));
  BlobHeader header;
  header.codec = "test";
  header.dtype = f.dtype();
  header.dims = f.shape().dims_vector();
  PayloadCompressFn kernel = [](const Field& field, const BlobHeader&,
                                const CompressOptions&) {
    auto raw = field.bytes();
    Bytes out(raw.begin(), raw.end());
    // A dependent per-byte chain over the slab (unvectorizable, so tens
    // of microseconds per task): each pod's deques hold real depth for
    // several scheduler quanta, so placement — not starvation stealing —
    // decides where slab tasks run, even on a single-CPU host.
    unsigned x = 1;
    for (int pass = 0; pass < 2; ++pass)
      for (std::byte b : out)
        x = x * 1664525u + std::to_integer<unsigned>(b);
    out.push_back(std::byte{static_cast<std::uint8_t>(x)});
    return out;
  };

  Executor ex(4, 4096, 2);
  CompressOptions opt;
  opt.threads = 256;  // one slab per row block -> many hinted tasks
  opt.executor = &ex;

  // On a multi-core host one lap suffices; a single-CPU host time-slices
  // the workers, and an unlucky schedule can hand one worker several
  // consecutive quanta in which it legitimately cross-steals a starving
  // pod dry. Placement conservation must hold on EVERY lap; the >=90%
  // locality property must show up within a few schedules.
  bool reached_local_share = false;
  for (int attempt = 0; attempt < 4 && !reached_local_share; ++attempt) {
    const auto before = ex.stats();
    // Occupy every worker while the fan-out is being enqueued (the busy-
    // pipeline shape: workers are mid-slab when the next batch arrives).
    // Without this, on a single-CPU host the first worker to wake sees an
    // almost-empty pool and steals the few submitted tasks cross-pod
    // before placement has anything to say.
    TaskGroup warm(ex);
    for (int i = 0; i < 4; ++i)
      warm.run([] {
        std::this_thread::sleep_for(std::chrono::milliseconds(4));
      });
    const Bytes blob = compress_chunked(header, f, opt, kernel);
    warm.wait();
    const auto after = ex.stats();
    EXPECT_GT(blob.size(), f.size_bytes());

    const std::uint64_t local = after.placed_local - before.placed_local;
    const std::uint64_t remote = after.placed_remote - before.placed_remote;
    ASSERT_EQ(local + remote, f.shape().dim(0))
        << "every hinted slab task classifies exactly once";
    reached_local_share = local * 10 >= (local + remote) * 9;
  }
  EXPECT_TRUE(reached_local_share)
      << "no schedule reached >=90% pod-local slab placement";
}

TEST(Chunking, ChunkedLayoutTagAfterHeader) {
  const Field f = smooth_field_3d(16);
  BlobHeader header;
  header.codec = "t";
  header.dtype = f.dtype();
  header.dims = f.shape().dims_vector();
  PayloadCompressFn kernel = [](const Field&, const BlobHeader&,
                                const CompressOptions&) {
    return Bytes(8, std::byte{1});
  };
  CompressOptions serial;
  const Bytes single = compress_chunked(header, f, serial, kernel);
  CompressOptions parallel;
  parallel.threads = 4;
  const Bytes chunked = compress_chunked(header, f, parallel, kernel);

  ByteReader r1(single);
  BlobHeader::decode(r1);
  EXPECT_EQ(r1.read_pod<std::uint8_t>(), kLayoutSingle);
  ByteReader r2(chunked);
  BlobHeader::decode(r2);
  EXPECT_EQ(r2.read_pod<std::uint8_t>(), kLayoutChunked);
  EXPECT_EQ(r2.read_pod<std::uint32_t>(), 4u);
}

}  // namespace
}  // namespace eblcio
