// Slab chunking tests: split/merge inverses, deterministic row
// distribution, chunk container layout.
#include <gtest/gtest.h>

#include <cstring>

#include "compressors/chunking.h"
#include "test_util.h"

namespace eblcio {
namespace {

using test::double_field_4d;
using test::smooth_field_3d;

TEST(Chunking, SlabRowsDistributesRemainder) {
  // 10 rows over 4 chunks -> 3,3,2,2.
  EXPECT_EQ(slab_rows(10, 4, 0), 3u);
  EXPECT_EQ(slab_rows(10, 4, 1), 3u);
  EXPECT_EQ(slab_rows(10, 4, 2), 2u);
  EXPECT_EQ(slab_rows(10, 4, 3), 2u);
  std::size_t total = 0;
  for (int c = 0; c < 4; ++c) total += slab_rows(10, 4, c);
  EXPECT_EQ(total, 10u);
}

TEST(Chunking, SplitMergeIsIdentity) {
  const Field f = smooth_field_3d(20);
  for (int chunks : {1, 2, 3, 7, 20}) {
    const auto slabs = split_slabs(f, chunks);
    const Field merged =
        merge_slabs(slabs, f.shape().dims_vector(), f.name());
    ASSERT_EQ(merged.shape(), f.shape());
    for (std::size_t i = 0; i < f.num_elements(); ++i)
      EXPECT_EQ(merged.as<float>()[i], f.as<float>()[i]);
  }
}

TEST(Chunking, SplitCapsAtDimZero) {
  const Field f = double_field_4d(3, 8);  // dim0 = 3
  const auto slabs = split_slabs(f, 16);
  EXPECT_EQ(slabs.size(), 3u);
}

TEST(Chunking, SlabShapesMatchDistribution) {
  const Field f = smooth_field_3d(10);
  const auto slabs = split_slabs(f, 4);
  ASSERT_EQ(slabs.size(), 4u);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(slabs[c].shape().dim(0), slab_rows(10, 4, static_cast<int>(c)));
    EXPECT_EQ(slabs[c].shape().dim(1), 10u);
  }
}

TEST(Chunking, ContainerRoundTripSingleAndChunked) {
  const Field f = smooth_field_3d(16);
  BlobHeader header;
  header.codec = "test";
  header.dtype = f.dtype();
  header.dims = f.shape().dims_vector();

  // Identity "codec": payload = raw bytes.
  PayloadCompressFn kernel = [](const Field& field, const BlobHeader&,
                                const CompressOptions&) {
    auto raw = field.bytes();
    return Bytes(raw.begin(), raw.end());
  };
  PayloadDecompressFn dekernel = [](const BlobHeader& h,
                                    std::span<const std::byte> payload) {
    NdArray<float> arr(Shape{std::span<const std::size_t>(h.dims)});
    EBLCIO_CHECK_STREAM(payload.size() == arr.size_bytes(), "size");
    std::memcpy(arr.data(), payload.data(), payload.size());
    return Field(h.codec, std::move(arr));
  };

  for (int threads : {1, 4}) {
    CompressOptions opt;
    opt.threads = threads;
    const Bytes blob = compress_chunked(header, f, opt, kernel);
    const Field r = decompress_chunked(blob, threads, dekernel);
    ASSERT_EQ(r.shape(), f.shape());
    for (std::size_t i = 0; i < f.num_elements(); ++i)
      EXPECT_EQ(r.as<float>()[i], f.as<float>()[i]);
  }
}

TEST(Chunking, ChunkedLayoutTagAfterHeader) {
  const Field f = smooth_field_3d(16);
  BlobHeader header;
  header.codec = "t";
  header.dtype = f.dtype();
  header.dims = f.shape().dims_vector();
  PayloadCompressFn kernel = [](const Field&, const BlobHeader&,
                                const CompressOptions&) {
    return Bytes(8, std::byte{1});
  };
  CompressOptions serial;
  const Bytes single = compress_chunked(header, f, serial, kernel);
  CompressOptions parallel;
  parallel.threads = 4;
  const Bytes chunked = compress_chunked(header, f, parallel, kernel);

  ByteReader r1(single);
  BlobHeader::decode(r1);
  EXPECT_EQ(r1.read_pod<std::uint8_t>(), kLayoutSingle);
  ByteReader r2(chunked);
  BlobHeader::decode(r2);
  EXPECT_EQ(r2.read_pod<std::uint8_t>(), kLayoutChunked);
  EXPECT_EQ(r2.read_pod<std::uint32_t>(), 4u);
}

}  // namespace
}  // namespace eblcio
