// Core framework tests: the 25-rep/95%-CI protocol, the Sec. III benefit
// conditions, the measured pipeline, and the compression advisor.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compressors/compressor.h"
#include "core/decision.h"
#include "core/experiment.h"
#include "core/pipeline.h"
#include "core/tradeoff.h"
#include "test_util.h"

namespace eblcio {
namespace {

using test::smooth_field_3d;

TEST(Experiment, TCriticalValues) {
  EXPECT_NEAR(t_critical_95(2), 12.706, 1e-3);
  EXPECT_NEAR(t_critical_95(5), 2.776, 1e-3);
  EXPECT_NEAR(t_critical_95(25), 2.064, 1e-3);
  EXPECT_NEAR(t_critical_95(1000), 1.96, 1e-3);
}

TEST(Experiment, StopsEarlyOnStableSamples) {
  int calls = 0;
  const auto st = run_repeated([&] {
    ++calls;
    return 100.0;  // zero variance
  });
  EXPECT_EQ(st.runs, 3);  // min_runs
  EXPECT_EQ(calls, 3);
  EXPECT_DOUBLE_EQ(st.mean, 100.0);
  EXPECT_DOUBLE_EQ(st.ci95_half, 0.0);
}

TEST(Experiment, CapsAtTwentyFiveRuns) {
  Rng rng(1);
  int calls = 0;
  const auto st = run_repeated([&] {
    ++calls;
    return rng.normal() * 1000.0;  // hopelessly noisy
  });
  EXPECT_EQ(st.runs, 25);  // the paper's cap
  EXPECT_EQ(calls, 25);
}

TEST(Experiment, ComputesSaneStatistics) {
  // Alternating 9/11: mean 10, sd ~1.
  int i = 0;
  RepeatConfig cfg;
  cfg.target_rel_ci = 1e-9;  // force all runs
  const auto st = run_repeated([&] { return (i++ % 2) ? 11.0 : 9.0; }, cfg);
  EXPECT_NEAR(st.mean, 10.0, 0.1);
  EXPECT_NEAR(st.stddev, 1.0, 0.05);
  EXPECT_GT(st.ci95_half, 0.0);
}

TEST(Tradeoff, AllThreeConditionsRequired) {
  TradeoffMeasurement m;
  m.compress_seconds = 1.0;
  m.compress_joules = 100.0;
  m.write_compressed_seconds = 0.1;
  m.write_compressed_joules = 10.0;
  m.write_original_seconds = 5.0;
  m.write_original_joules = 500.0;
  m.psnr_db = 80.0;

  auto v = evaluate_tradeoff(m, 60.0);
  EXPECT_TRUE(v.time_beneficial);
  EXPECT_TRUE(v.energy_beneficial);
  EXPECT_TRUE(v.quality_acceptable);
  EXPECT_TRUE(v.beneficial());

  // Fail quality only (Eq. 5).
  v = evaluate_tradeoff(m, 90.0);
  EXPECT_FALSE(v.quality_acceptable);
  EXPECT_FALSE(v.beneficial());

  // Fail energy only (Eq. 4): expensive compression.
  m.compress_joules = 1000.0;
  v = evaluate_tradeoff(m, 60.0);
  EXPECT_FALSE(v.energy_beneficial);
  EXPECT_TRUE(v.time_beneficial);
  EXPECT_FALSE(v.beneficial());
}

TEST(Tradeoff, ReductionRatios) {
  TradeoffMeasurement m;
  m.compress_joules = 40.0;
  m.write_compressed_joules = 10.0;
  m.write_original_joules = 1000.0;
  m.write_compressed_seconds = 0.01;
  m.write_original_seconds = 1.0;
  const auto v = evaluate_tradeoff(m, 0.0);
  EXPECT_DOUBLE_EQ(v.io_energy_reduction, 100.0);
  EXPECT_DOUBLE_EQ(v.total_energy_reduction, 20.0);
  EXPECT_DOUBLE_EQ(v.io_time_reduction, 100.0);
}

TEST(Pipeline, CompressionRecordIsConsistent) {
  PipelineConfig cfg;
  cfg.codec = "SZx";
  cfg.error_bound = 1e-3;
  const Field f = smooth_field_3d(32);
  const auto rec = run_compression(f, cfg);
  EXPECT_EQ(rec.codec, "SZx");
  EXPECT_EQ(rec.original_bytes, f.size_bytes());
  EXPECT_GT(rec.compressed_bytes, 0u);
  EXPECT_GT(rec.ratio, 1.0);
  EXPECT_GT(rec.compress_j, 0.0);
  EXPECT_GT(rec.decompress_j, 0.0);
  EXPECT_LE(rec.quality.max_rel_error, 1e-3 * (1 + 1e-9));
  // Platform time = host time / 1.35 on the default 9480.
  EXPECT_LT(rec.compress_s, rec.host_compress_s);
}

TEST(Pipeline, BlobOutAvoidsRecompression) {
  PipelineConfig cfg;
  cfg.codec = "SZx";
  const Field f = smooth_field_3d(24);
  Bytes blob;
  run_compression(f, cfg, &blob);
  EXPECT_GT(blob.size(), 0u);
  EXPECT_EQ(peek_header(blob).codec, "SZx");
}

TEST(Pipeline, WriteRecordEvaluatesTradeoff) {
  PipelineConfig cfg;
  cfg.codec = "SZ3";
  cfg.error_bound = 1e-2;
  cfg.psnr_min_db = 20.0;
  PfsSimulator pfs;
  // Large enough that transfer (not open latency) dominates the write.
  const Field f = smooth_field_3d(128);
  const auto rec = run_compress_write(f, cfg, pfs);
  // Compressed write must be far cheaper than the original write.
  EXPECT_GT(rec.verdict.io_energy_reduction, 5.0);
  EXPECT_TRUE(rec.verdict.quality_acceptable);
  // Files actually landed on the PFS.
  EXPECT_EQ(pfs.list_files().size(), 2u);
}

TEST(Pipeline, NetCdfWritesCostMore) {
  PipelineConfig h5cfg, nccfg;
  h5cfg.codec = nccfg.codec = "SZx";
  h5cfg.io_library = "HDF5";
  nccfg.io_library = "NetCDF";
  PfsSimulator pfs;
  const Field f = smooth_field_3d(32);
  const auto h5 = run_compress_write(f, h5cfg, pfs);
  const auto nc = run_compress_write(f, nccfg, pfs);
  EXPECT_GT(nc.write_original_j, h5.write_original_j * 1.5);
}

TEST(Advisor, RecommendsFeasibleCandidate) {
  const Field f = smooth_field_3d(48);
  AdvisorConstraints cons;
  cons.psnr_min_db = 50.0;
  const auto report = advise_compression(f, cons);
  EXPECT_FALSE(report.candidates.empty());
  ASSERT_FALSE(report.recommendation.codec.empty());
  EXPECT_GE(report.recommendation.psnr_db, 50.0);
  EXPECT_GT(report.recommendation.ratio, 1.0);
}

TEST(Advisor, ObjectiveChangesRanking) {
  const Field f = smooth_field_3d(48);
  AdvisorConstraints energy_cons;
  energy_cons.objective = Objective::kMinEnergy;
  energy_cons.psnr_min_db = 40.0;
  AdvisorConstraints ratio_cons;
  ratio_cons.objective = Objective::kMaxRatio;
  ratio_cons.psnr_min_db = 40.0;
  const auto e = advise_compression(f, energy_cons);
  const auto r = advise_compression(f, ratio_cons);
  // Max-ratio recommendation should compress at least as hard.
  EXPECT_GE(r.recommendation.ratio, e.recommendation.ratio * 0.99);
}

TEST(Advisor, ImpossibleFloorYieldsNoRecommendation) {
  const Field f = smooth_field_3d(24);
  AdvisorConstraints cons;
  cons.psnr_min_db = 1e9;
  const auto report = advise_compression(f, cons);
  EXPECT_TRUE(report.recommendation.codec.empty());
}

}  // namespace
}  // namespace eblcio
