// Streaming pipeline tests: PFS append/ranged-read semantics, chunked
// container round-trips through the IoTool formats, the compress/write
// overlap the chunked mode exists for, and the symmetric fetch/decompress
// overlap on the read side — plus robustness (corrupt slabs and chunk
// indexes must fail cleanly, with no partial field escaping).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <numeric>

#include "common/error.h"
#include "core/pipeline.h"
#include "io/io_tool.h"
#include "io/pfs.h"
#include "metrics/error_stats.h"
#include "test_util.h"

namespace eblcio {
namespace {

using test::smooth_field_3d;

TEST(PfsAppend, AppendEqualsWholeFileContent) {
  PfsSimulator pfs;
  Bytes whole;
  auto stream = pfs.open_append("/pfs/parts");
  for (int i = 0; i < 5; ++i) {
    Bytes part(300000 + i * 1000, static_cast<std::byte>(i + 1));
    whole.insert(whole.end(), part.begin(), part.end());
    stream.append(part);
  }
  EXPECT_EQ(stream.bytes_written(), whole.size());
  EXPECT_EQ(pfs.file_size("/pfs/parts"), whole.size());
  EXPECT_EQ(pfs.read_file("/pfs/parts"), whole);
}

TEST(PfsAppend, OpenCostChargedOnceAndStripesFill) {
  PfsSimulator pfs;
  const Bytes small(1000, std::byte{7});
  const auto first = pfs.append_file("/pfs/a", small);
  const auto second = pfs.append_file("/pfs/a", small);
  // Creation pays open/metadata latency; the follow-up append does not.
  EXPECT_GT(first.seconds, second.seconds);
  EXPECT_GT(second.seconds, 0.0);
  // Both fit in the first stripe unit: no extra stripe allocated.
  EXPECT_EQ(pfs.file_size("/pfs/a"), 2000u);
  const auto usage = pfs.ost_usage();
  EXPECT_EQ(std::accumulate(usage.begin(), usage.end(), std::size_t{0}),
            2000u);
}

TEST(PfsAppend, TruncatesOnOpenAppend) {
  PfsSimulator pfs;
  pfs.write_file("/pfs/x", Bytes(100, std::byte{1}));
  auto stream = pfs.open_append("/pfs/x");
  stream.append(Bytes(10, std::byte{2}));
  EXPECT_EQ(pfs.file_size("/pfs/x"), 10u);
}

// --- streamed write ---------------------------------------------------------

TEST(StreamPipeline, RoundTripHoldsBound) {
  const Field f = smooth_field_3d(40);
  PfsSimulator pfs;
  PipelineConfig config;
  config.codec = "SZ3";
  config.error_bound = 1e-3;
  StreamConfig stream;
  stream.slabs = 8;

  const auto rec = run_streamed_compress_write(f, config, pfs, stream);
  EXPECT_EQ(rec.slabs, 8);
  EXPECT_EQ(rec.io_library, "HDF5");
  EXPECT_EQ(rec.original_bytes, f.size_bytes());
  EXPECT_GT(rec.ratio(), 1.0);
  // Independent cross-check of the container accounting: the header (up
  // to the first chunk), the chunk payloads, and the zone-index footer
  // (magic + count + 32 bytes per zone entry + trailing start offset)
  // must tile the stored container exactly.
  auto reader = io_tool("HDF5").open_chunked_reader(pfs, rec.path);
  const auto& chunks = reader.index().chunks;
  ASSERT_EQ(chunks.size(), 8u);
  ASSERT_TRUE(reader.index().zoned());
  const std::size_t footer_bytes = 4 + 8 + 32 * chunks.size() + 8;
  EXPECT_EQ(chunks.front().offset + reader.index().total_bytes() +
                footer_bytes,
            rec.compressed_bytes);
  EXPECT_EQ(pfs.file_size(rec.path), rec.compressed_bytes);

  const auto read = run_streamed_read(pfs, rec.path, config);
  ASSERT_EQ(read.field.shape(), f.shape());
  EXPECT_TRUE(check_value_range_bound(f, read.field, config.error_bound));
}

TEST(StreamPipeline, ChunkedStreamingBeatsSerialCompressThenWrite) {
  // The point of the chunked mode: slab i compresses while the container
  // writes slab i-1, so the modeled end-to-end time undercuts the serial
  // compress-everything-then-write-everything schedule.
  const Field f = smooth_field_3d(64);
  PfsSimulator pfs;
  PipelineConfig config;
  config.codec = "SZ3";
  config.error_bound = 1e-3;
  StreamConfig stream;
  stream.slabs = 8;

  const auto rec = run_streamed_compress_write(f, config, pfs, stream);
  ASSERT_EQ(rec.slab_compress_s.size(), 8u);
  ASSERT_EQ(rec.slab_write_s.size(), 8u);
  for (double s : rec.slab_compress_s) EXPECT_GT(s, 0.0);
  for (double s : rec.slab_write_s) EXPECT_GT(s, 0.0);
  EXPECT_GT(rec.streamed_total_s, 0.0);
  EXPECT_LT(rec.streamed_total_s, rec.serial_total_s);
  EXPECT_GT(rec.overlap_saving_s(), 0.0);
  // Overlap can never beat the sum of the slower stage plus one unit of
  // the faster one; sanity-bound the model from below too.
  const double compress_total = std::accumulate(
      rec.slab_compress_s.begin(), rec.slab_compress_s.end(), 0.0);
  EXPECT_GE(rec.streamed_total_s, compress_total);
  // Energy was charged by both stages through the shared monitor.
  EXPECT_GT(rec.compress_j, 0.0);
  EXPECT_GT(rec.write_j, 0.0);
}

TEST(StreamPipeline, WorksForEveryEblcCodec) {
  const Field f = smooth_field_3d(32);
  for (const std::string codec : {"SZ2", "SZ3", "ZFP", "QoZ", "SZx"}) {
    PfsSimulator pfs;
    PipelineConfig config;
    config.codec = codec;
    config.error_bound = 1e-3;
    StreamConfig stream;
    stream.slabs = 4;
    const auto rec = run_streamed_compress_write(f, config, pfs, stream);
    const auto read = run_streamed_read(pfs, rec.path, config);
    EXPECT_TRUE(check_value_range_bound(f, read.field, config.error_bound))
        << codec;
  }
}

TEST(StreamPipeline, SingleSlabDegeneratesGracefully) {
  const Field f = smooth_field_3d(16);
  PfsSimulator pfs;
  PipelineConfig config;
  config.codec = "SZx";
  StreamConfig stream;
  stream.slabs = 1;
  const auto rec = run_streamed_compress_write(f, config, pfs, stream);
  EXPECT_EQ(rec.slabs, 1);
  const auto read = run_streamed_read(pfs, rec.path, config);
  EXPECT_EQ(read.field.shape(), f.shape());
}

TEST(StreamPipeline, RejectsBadConfig) {
  const Field f = smooth_field_3d(8);
  PfsSimulator pfs;
  PipelineConfig config;
  StreamConfig bad;
  bad.slabs = 0;
  EXPECT_THROW(run_streamed_compress_write(f, config, pfs, bad),
               InvalidArgument);
  bad.slabs = 2;
  bad.queue_depth = 0;
  EXPECT_THROW(run_streamed_compress_write(f, config, pfs, bad),
               InvalidArgument);
}

// --- streamed write through every container ---------------------------------

class StreamAllContainers : public ::testing::TestWithParam<std::string> {};

TEST_P(StreamAllContainers, WriteStreamsReadStreamsBitParity) {
  // The acceptance loop: write via the chunk API, read via the pipeline,
  // and require the streamed field bit-for-bit identical to the serial
  // fetch-then-decompress reference — in each of the three containers.
  const Field f = smooth_field_3d(32);
  PfsSimulator pfs;
  PipelineConfig config;
  config.codec = "SZ3";
  config.error_bound = 1e-3;
  config.io_library = GetParam();
  StreamConfig stream;
  stream.slabs = 6;

  const auto rec = run_streamed_compress_write(f, config, pfs, stream);
  EXPECT_EQ(rec.io_library, io_tool(GetParam()).name());
  EXPECT_LT(rec.streamed_total_s, rec.serial_total_s);

  const auto read = run_streamed_read(pfs, rec.path, config);
  const Field serial = read_chunked_field(pfs, rec.path, GetParam());
  ASSERT_EQ(read.field.shape(), serial.shape());
  const auto streamed_bytes = read.field.bytes();
  const auto serial_bytes = serial.bytes();
  ASSERT_EQ(streamed_bytes.size(), serial_bytes.size());
  EXPECT_TRUE(std::equal(streamed_bytes.begin(), streamed_bytes.end(),
                         serial_bytes.begin()));
  EXPECT_TRUE(check_value_range_bound(f, read.field, config.error_bound));
}

INSTANTIATE_TEST_SUITE_P(AllContainers, StreamAllContainers,
                         ::testing::Values("HDF5", "NetCDF", "ADIOS"));

// --- streamed read ----------------------------------------------------------

TEST(StreamRead, FetchOverlapsDecompression) {
  // The read-side mirror: the PFS fetch of slab i overlaps decompression
  // of slab i-1, so the streamed makespan undercuts the serial
  // fetch-everything-then-decompress-everything schedule.
  const Field f = smooth_field_3d(64);
  PfsSimulator pfs;
  PipelineConfig config;
  config.codec = "SZ3";
  config.error_bound = 1e-3;
  StreamConfig stream;
  stream.slabs = 8;

  const auto wrec = run_streamed_compress_write(f, config, pfs, stream);
  const auto rec = run_streamed_read(pfs, wrec.path, config, stream);
  ASSERT_EQ(rec.slabs, 8);
  ASSERT_EQ(rec.slab_fetch_s.size(), 8u);
  ASSERT_EQ(rec.slab_decompress_s.size(), 8u);
  for (double s : rec.slab_fetch_s) EXPECT_GT(s, 0.0);
  for (double s : rec.slab_decompress_s) EXPECT_GT(s, 0.0);
  EXPECT_GT(rec.streamed_total_s, 0.0);
  EXPECT_LT(rec.streamed_total_s, rec.serial_total_s);
  EXPECT_GT(rec.overlap_saving_s(), 0.0);
  // The pipeline can never finish before the decompress stage alone.
  const double decompress_total = std::accumulate(
      rec.slab_decompress_s.begin(), rec.slab_decompress_s.end(), 0.0);
  EXPECT_GE(rec.streamed_total_s, decompress_total);
  // Both stages charged energy through the shared monitor.
  EXPECT_GT(rec.fetch_j, 0.0);
  EXPECT_GT(rec.decompress_j, 0.0);
  EXPECT_EQ(rec.container_bytes, wrec.compressed_bytes);
  EXPECT_EQ(rec.field_bytes, f.size_bytes());
}

TEST(StreamRead, RegistersWithReaderRegistry) {
  const Field f = smooth_field_3d(24);
  PfsSimulator pfs;
  PipelineConfig config;
  config.codec = "SZx";
  const auto wrec = run_streamed_compress_write(f, config, pfs);
  EXPECT_GE(pfs.peak_concurrent_writers(), 1);
  pfs.reset_reader_peak();
  EXPECT_EQ(pfs.peak_concurrent_readers(), 0);
  (void)run_streamed_read(pfs, wrec.path, config);
  EXPECT_GE(pfs.peak_concurrent_readers(), 1);
  EXPECT_EQ(pfs.concurrent_readers(), 0);  // scope released
}

TEST(StreamRead, WrongToolFailsCleanly) {
  const Field f = smooth_field_3d(16);
  PfsSimulator pfs;
  PipelineConfig config;
  config.codec = "SZx";
  config.io_library = "HDF5";
  const auto wrec = run_streamed_compress_write(f, config, pfs);
  PipelineConfig wrong = config;
  wrong.io_library = "NetCDF";
  EXPECT_THROW(run_streamed_read(pfs, wrec.path, wrong), CorruptStream);
}

// --- robustness: corrupt containers must fail cleanly ------------------------

class StreamReadRobustness : public ::testing::Test {
 protected:
  void SetUp() override {
    field_ = smooth_field_3d(24);
    config_.codec = "SZ3";
    config_.error_bound = 1e-3;
    StreamConfig stream;
    stream.slabs = 4;
    path_ = run_streamed_compress_write(field_, config_, pfs_, stream).path;
  }

  // Rewrites the container with `mutate` applied to its bytes.
  void corrupt(const std::function<void(Bytes&)>& mutate) {
    Bytes raw = pfs_.read_file(path_);
    mutate(raw);
    pfs_.write_file(path_, raw);
  }

  Field field_;
  PipelineConfig config_;
  PfsSimulator pfs_;
  std::string path_;
};

TEST_F(StreamReadRobustness, TruncatedContainerFailsCleanly) {
  corrupt([](Bytes& raw) { raw.resize(raw.size() / 2); });
  EXPECT_THROW(run_streamed_read(pfs_, path_, config_), Error);
  EXPECT_THROW(read_chunked_field(pfs_, path_, config_.io_library), Error);
}

TEST_F(StreamReadRobustness, UnclosedContainerFailsCleanly) {
  // A writer that never committed its footer: the trailing 8 bytes are
  // compressed payload, not a footer offset.
  IoTool& tool = io_tool(config_.io_library);
  ChunkedDatasetMeta meta;
  meta.name = "unclosed";
  auto writer = tool.open_chunked(pfs_, "/pfs/unclosed", meta);
  writer.append_chunk(Bytes(4096, std::byte{0x5a}));
  EXPECT_THROW(run_streamed_read(pfs_, "/pfs/unclosed", config_), Error);
}

TEST_F(StreamReadRobustness, CorruptedSlabFailsWithoutPartialField) {
  // Flip bytes in the middle of the first chunk's payload: the slab's
  // decompression must throw and run_streamed_read must not hand back a
  // partially reconstructed field.
  IoTool& tool = io_tool(config_.io_library);
  auto reader = tool.open_chunked_reader(pfs_, path_);
  const auto extent = reader.index().chunks.front();
  corrupt([&](Bytes& raw) {
    for (std::size_t i = 0; i < extent.size; ++i)
      raw[static_cast<std::size_t>(extent.offset) + i] ^= std::byte{0xff};
  });
  EXPECT_THROW((void)run_streamed_read(pfs_, path_, config_), Error);
}

TEST_F(StreamReadRobustness, BadChunkIndexFailsCleanly) {
  // Point the footer's first extent past end of file: the ranged fetch
  // must reject it instead of crashing (overflow-safe extent check).
  IoTool& tool = io_tool(config_.io_library);
  auto reader = tool.open_chunked_reader(pfs_, path_);
  const std::size_t nchunks = reader.index().chunks.size();
  corrupt([&](Bytes& raw) {
    // Zoned footer layout: [magic u32][nchunks u64]
    // [(offset,size,row_start,rows) u64 quads][footer_start u64];
    // locate the first entry and blow up its size.
    const std::size_t footer_len = 12 + 32 * nchunks + 8;
    const std::size_t first_extent = raw.size() - footer_len + 12;
    const std::uint64_t huge = ~std::uint64_t{0} / 2;
    std::memcpy(raw.data() + first_extent + 8, &huge, 8);
  });
  EXPECT_THROW((void)run_streamed_read(pfs_, path_, config_), Error);
}

}  // namespace
}  // namespace eblcio
