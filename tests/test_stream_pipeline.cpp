// Streaming compress→write pipeline tests: PFS append semantics, container
// round-trip, and the compress/write overlap the chunked mode exists for.
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "core/pipeline.h"
#include "io/pfs.h"
#include "metrics/error_stats.h"
#include "test_util.h"

namespace eblcio {
namespace {

using test::smooth_field_3d;

TEST(PfsAppend, AppendEqualsWholeFileContent) {
  PfsSimulator pfs;
  Bytes whole;
  auto stream = pfs.open_append("/pfs/parts");
  for (int i = 0; i < 5; ++i) {
    Bytes part(300000 + i * 1000, static_cast<std::byte>(i + 1));
    whole.insert(whole.end(), part.begin(), part.end());
    stream.append(part);
  }
  EXPECT_EQ(stream.bytes_written(), whole.size());
  EXPECT_EQ(pfs.file_size("/pfs/parts"), whole.size());
  EXPECT_EQ(pfs.read_file("/pfs/parts"), whole);
}

TEST(PfsAppend, OpenCostChargedOnceAndStripesFill) {
  PfsSimulator pfs;
  const Bytes small(1000, std::byte{7});
  const auto first = pfs.append_file("/pfs/a", small);
  const auto second = pfs.append_file("/pfs/a", small);
  // Creation pays open/metadata latency; the follow-up append does not.
  EXPECT_GT(first.seconds, second.seconds);
  EXPECT_GT(second.seconds, 0.0);
  // Both fit in the first stripe unit: no extra stripe allocated.
  EXPECT_EQ(pfs.file_size("/pfs/a"), 2000u);
  const auto usage = pfs.ost_usage();
  EXPECT_EQ(std::accumulate(usage.begin(), usage.end(), std::size_t{0}),
            2000u);
}

TEST(PfsAppend, TruncatesOnOpenAppend) {
  PfsSimulator pfs;
  pfs.write_file("/pfs/x", Bytes(100, std::byte{1}));
  auto stream = pfs.open_append("/pfs/x");
  stream.append(Bytes(10, std::byte{2}));
  EXPECT_EQ(pfs.file_size("/pfs/x"), 10u);
}

TEST(StreamPipeline, RoundTripHoldsBound) {
  const Field f = smooth_field_3d(40);
  PfsSimulator pfs;
  PipelineConfig config;
  config.codec = "SZ3";
  config.error_bound = 1e-3;
  StreamConfig stream;
  stream.slabs = 8;

  const auto rec = run_streamed_compress_write(f, config, pfs, stream);
  EXPECT_EQ(rec.slabs, 8);
  EXPECT_EQ(rec.original_bytes, f.size_bytes());
  EXPECT_GT(rec.ratio(), 1.0);
  EXPECT_EQ(pfs.file_size(rec.path), rec.compressed_bytes);

  const Field recon = read_streamed_field(pfs, rec.path, 4);
  ASSERT_EQ(recon.shape(), f.shape());
  EXPECT_TRUE(check_value_range_bound(f, recon, config.error_bound));
}

TEST(StreamPipeline, ChunkedStreamingBeatsSerialCompressThenWrite) {
  // The point of the chunked mode: slab i compresses while the PFS writes
  // slab i-1, so the modeled end-to-end time undercuts the serial
  // compress-everything-then-write-everything schedule.
  const Field f = smooth_field_3d(64);
  PfsSimulator pfs;
  PipelineConfig config;
  config.codec = "SZ3";
  config.error_bound = 1e-3;
  StreamConfig stream;
  stream.slabs = 8;

  const auto rec = run_streamed_compress_write(f, config, pfs, stream);
  ASSERT_EQ(rec.slab_compress_s.size(), 8u);
  ASSERT_EQ(rec.slab_write_s.size(), 8u);
  for (double s : rec.slab_compress_s) EXPECT_GT(s, 0.0);
  for (double s : rec.slab_write_s) EXPECT_GT(s, 0.0);
  EXPECT_GT(rec.streamed_total_s, 0.0);
  EXPECT_LT(rec.streamed_total_s, rec.serial_total_s);
  EXPECT_GT(rec.overlap_saving_s(), 0.0);
  // Overlap can never beat the sum of the slower stage plus one unit of
  // the faster one; sanity-bound the model from below too.
  const double compress_total = std::accumulate(
      rec.slab_compress_s.begin(), rec.slab_compress_s.end(), 0.0);
  EXPECT_GE(rec.streamed_total_s, compress_total);
  // Energy was charged by both stages through the shared monitor.
  EXPECT_GT(rec.compress_j, 0.0);
  EXPECT_GT(rec.write_j, 0.0);
}

TEST(StreamPipeline, WorksForEveryEblcCodec) {
  const Field f = smooth_field_3d(32);
  for (const std::string codec : {"SZ2", "SZ3", "ZFP", "QoZ", "SZx"}) {
    PfsSimulator pfs;
    PipelineConfig config;
    config.codec = codec;
    config.error_bound = 1e-3;
    StreamConfig stream;
    stream.slabs = 4;
    const auto rec = run_streamed_compress_write(f, config, pfs, stream);
    const Field recon = read_streamed_field(pfs, rec.path, 2);
    EXPECT_TRUE(check_value_range_bound(f, recon, config.error_bound))
        << codec;
  }
}

TEST(StreamPipeline, SingleSlabDegeneratesGracefully) {
  const Field f = smooth_field_3d(16);
  PfsSimulator pfs;
  PipelineConfig config;
  config.codec = "SZx";
  StreamConfig stream;
  stream.slabs = 1;
  const auto rec = run_streamed_compress_write(f, config, pfs, stream);
  EXPECT_EQ(rec.slabs, 1);
  const Field recon = read_streamed_field(pfs, rec.path);
  EXPECT_EQ(recon.shape(), f.shape());
}

TEST(StreamPipeline, RejectsBadConfig) {
  const Field f = smooth_field_3d(8);
  PfsSimulator pfs;
  PipelineConfig config;
  StreamConfig bad;
  bad.slabs = 0;
  EXPECT_THROW(run_streamed_compress_write(f, config, pfs, bad),
               InvalidArgument);
  bad.slabs = 2;
  bad.queue_depth = 0;
  EXPECT_THROW(run_streamed_compress_write(f, config, pfs, bad),
               InvalidArgument);
}

}  // namespace
}  // namespace eblcio
