// LZ77 codec tests: round-trips on varied content, ratio expectations,
// overlapping matches, corrupt streams.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "codec/lz77.h"
#include "common/error.h"
#include "common/rng.h"

namespace eblcio {
namespace {

Bytes to_bytes(const std::string& s) {
  Bytes b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

void expect_roundtrip(const Bytes& data) {
  const Bytes blob = lz_compress(data);
  const Bytes back = lz_decompress(blob);
  ASSERT_EQ(back.size(), data.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
}

TEST(Lz77, EmptyInput) { expect_roundtrip({}); }

TEST(Lz77, TinyInput) { expect_roundtrip(to_bytes("ab")); }

TEST(Lz77, PureLiterals) { expect_roundtrip(to_bytes("abcdefgh")); }

TEST(Lz77, RepeatedTextCompressesWell) {
  std::string s;
  for (int i = 0; i < 1000; ++i) s += "the quick brown fox ";
  const Bytes data = to_bytes(s);
  const Bytes blob = lz_compress(data);
  EXPECT_LT(blob.size(), data.size() / 20);
  expect_roundtrip(data);
}

TEST(Lz77, OverlappingMatchRle) {
  // 100k 'a's exercises dist=1 overlapping copies.
  expect_roundtrip(Bytes(100000, std::byte{'a'}));
}

TEST(Lz77, AllByteValues) {
  Bytes data(256 * 40);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::byte>(i % 256);
  expect_roundtrip(data);
}

TEST(Lz77, IncompressibleRandomDataSurvives) {
  Rng rng(3);
  Bytes data(65536);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_below(256));
  const Bytes blob = lz_compress(data);
  // Random bytes should not shrink meaningfully, but must round-trip.
  EXPECT_GT(blob.size(), data.size() / 2);
  expect_roundtrip(data);
}

TEST(Lz77, FloatDataLowRatio) {
  // The Fig. 1 point: byte-level LZ on floating-point fields barely helps.
  Rng rng(4);
  Bytes data(4 * 50000);
  double v = 0.0;
  for (std::size_t i = 0; i < data.size() / 4; ++i) {
    v = 0.99 * v + 0.01 * rng.normal();
    const float f = static_cast<float>(v);
    std::memcpy(data.data() + 4 * i, &f, 4);
  }
  const Bytes blob = lz_compress(data);
  const double ratio = static_cast<double>(data.size()) / blob.size();
  EXPECT_LT(ratio, 3.0);
  expect_roundtrip(data);
}

TEST(Lz77, RejectsBadMagic) {
  Bytes blob = lz_compress(to_bytes("hello world hello world"));
  blob[0] = static_cast<std::byte>(0xff);
  EXPECT_THROW(lz_decompress(blob), CorruptStream);
}

TEST(Lz77, RejectsTruncatedBlob) {
  Bytes blob = lz_compress(Bytes(10000, std::byte{'x'}));
  blob.resize(blob.size() - 8);
  EXPECT_THROW(lz_decompress(blob), CorruptStream);
}

TEST(Lz77, ProbeDepthTradesRatioForSpeed) {
  std::string s;
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    s += "pattern-";
    s += std::to_string(rng.next_below(30));
  }
  const Bytes data = to_bytes(s);
  LzOptions shallow;
  shallow.max_probes = 1;
  LzOptions deep;
  deep.max_probes = 128;
  const auto blob_shallow = lz_compress(data, shallow);
  const auto blob_deep = lz_compress(data, deep);
  EXPECT_LE(blob_deep.size(), blob_shallow.size());
  EXPECT_EQ(lz_decompress(blob_deep), lz_decompress(blob_shallow));
}

class Lz77Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lz77Fuzz, StructuredRandomRoundTrip) {
  Rng rng(GetParam());
  // Mix of runs, repeats and noise.
  Bytes data;
  for (int seg = 0; seg < 50; ++seg) {
    const int kind = static_cast<int>(rng.next_below(3));
    const std::size_t len = 10 + rng.next_below(3000);
    if (kind == 0) {
      data.insert(data.end(), len,
                  static_cast<std::byte>(rng.next_below(256)));
    } else if (kind == 1 && !data.empty()) {
      const std::size_t src = rng.next_below(data.size());
      for (std::size_t i = 0; i < len; ++i)
        data.push_back(data[src + (i % (data.size() - src))]);
    } else {
      for (std::size_t i = 0; i < len; ++i)
        data.push_back(static_cast<std::byte>(rng.next_below(256)));
    }
  }
  expect_roundtrip(data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lz77Fuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace eblcio
