// LZ77 codec tests: round-trips on varied content, ratio expectations,
// overlapping matches, corrupt streams.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "codec/intcodec.h"
#include "compressors/backend.h"
#include "codec/lz77.h"
#include "common/error.h"
#include "common/rng.h"

namespace eblcio {
namespace {

Bytes to_bytes(const std::string& s) {
  Bytes b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

void expect_roundtrip(const Bytes& data) {
  const Bytes blob = lz_compress(data);
  const Bytes back = lz_decompress(blob);
  ASSERT_EQ(back.size(), data.size());
  // memcmp's pointers must be non-null even for size 0 (empty vectors
  // return nullptr from data()).
  if (!data.empty())
    EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
}

TEST(Lz77, EmptyInput) { expect_roundtrip({}); }

TEST(Lz77, TinyInput) { expect_roundtrip(to_bytes("ab")); }

TEST(Lz77, PureLiterals) { expect_roundtrip(to_bytes("abcdefgh")); }

TEST(Lz77, RepeatedTextCompressesWell) {
  std::string s;
  for (int i = 0; i < 1000; ++i) s += "the quick brown fox ";
  const Bytes data = to_bytes(s);
  const Bytes blob = lz_compress(data);
  EXPECT_LT(blob.size(), data.size() / 20);
  expect_roundtrip(data);
}

TEST(Lz77, OverlappingMatchRle) {
  // 100k 'a's exercises dist=1 overlapping copies.
  expect_roundtrip(Bytes(100000, std::byte{'a'}));
}

TEST(Lz77, AllByteValues) {
  Bytes data(256 * 40);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::byte>(i % 256);
  expect_roundtrip(data);
}

TEST(Lz77, IncompressibleRandomDataSurvives) {
  Rng rng(3);
  Bytes data(65536);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_below(256));
  const Bytes blob = lz_compress(data);
  // Random bytes should not shrink meaningfully, but must round-trip.
  EXPECT_GT(blob.size(), data.size() / 2);
  expect_roundtrip(data);
}

TEST(Lz77, FloatDataLowRatio) {
  // The Fig. 1 point: byte-level LZ on floating-point fields barely helps.
  Rng rng(4);
  Bytes data(4 * 50000);
  double v = 0.0;
  for (std::size_t i = 0; i < data.size() / 4; ++i) {
    v = 0.99 * v + 0.01 * rng.normal();
    const float f = static_cast<float>(v);
    std::memcpy(data.data() + 4 * i, &f, 4);
  }
  const Bytes blob = lz_compress(data);
  const double ratio = static_cast<double>(data.size()) / blob.size();
  EXPECT_LT(ratio, 3.0);
  expect_roundtrip(data);
}

TEST(Lz77, RejectsBadMagic) {
  Bytes blob = lz_compress(to_bytes("hello world hello world"));
  blob[0] = static_cast<std::byte>(0xff);
  EXPECT_THROW(lz_decompress(blob), CorruptStream);
}

TEST(Lz77, RejectsTruncatedBlob) {
  Bytes blob = lz_compress(Bytes(10000, std::byte{'x'}));
  blob.resize(blob.size() - 8);
  EXPECT_THROW(lz_decompress(blob), CorruptStream);
}

TEST(Lz77, RejectsForgedHugeTokenLengths) {
  // A hand-built blob whose token carries match_len (or literal_run) near
  // UINT64_MAX: the decoder's output-size checks must reject it without
  // the size arithmetic wrapping into an out-of-bounds copy.
  const auto forge = [](std::uint64_t lit_run, std::uint64_t match_len,
                        std::uint64_t dist) {
    // Tokens are varint-coded; build the frame around a real literal blob.
    const Bytes seed = lz_compress(to_bytes("aa"));  // header + lit blob
    Bytes blob;
    // magic + orig_size
    append_pod<std::uint32_t>(blob, 0x4c5a4542u);
    append_pod<std::uint64_t>(blob, 2);
    // reuse the genuine huffman literal blob from the seed frame
    ByteReader r(seed);
    (void)r.read_pod<std::uint32_t>();
    (void)r.read_pod<std::uint64_t>();
    const auto lit_size = r.read_pod<std::uint64_t>();
    auto lit_blob = r.read_bytes(lit_size);
    append_pod<std::uint64_t>(blob, lit_size);
    append_bytes(blob, lit_blob);
    append_pod<std::uint64_t>(blob, 1);  // one token
    varint_encode(blob, lit_run);
    varint_encode(blob, match_len);
    if (match_len > 0) varint_encode(blob, dist);
    return blob;
  };
  const std::uint64_t huge = ~std::uint64_t{0} - 1;
  EXPECT_THROW(lz_decompress(forge(1, huge, 1)), CorruptStream);
  EXPECT_THROW(lz_decompress(forge(huge, 0, 0)), CorruptStream);
  EXPECT_THROW(lz_decompress(forge(2, huge, 2)), CorruptStream);
}

TEST(Lz77, ProbeDepthTradesRatioForSpeed) {
  std::string s;
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    s += "pattern-";
    s += std::to_string(rng.next_below(30));
  }
  const Bytes data = to_bytes(s);
  LzOptions shallow;
  shallow.max_probes = 1;
  LzOptions deep;
  deep.max_probes = 128;
  const auto blob_shallow = lz_compress(data, shallow);
  const auto blob_deep = lz_compress(data, deep);
  EXPECT_LE(blob_deep.size(), blob_shallow.size());
  EXPECT_EQ(lz_decompress(blob_deep), lz_decompress(blob_shallow));
}

TEST(Lz77, BackendKeepsLzBranchForHeterogeneousStreams) {
  // encode_code_stream must pick the LZ branch whenever it is smaller —
  // including on heterogeneous streams (a noisy region followed by a long
  // smooth one, a normal quantization-code shape) whose Huffman-blob
  // *prefix* is incompressible. Guards against any future sampling
  // shortcut that would judge the stream by its head.
  Rng rng(31);
  std::vector<std::uint32_t> codes;
  for (int i = 0; i < (1 << 17); ++i)
    codes.push_back(rng.next_below(65537));       // noisy head
  codes.insert(codes.end(), 1 << 21, 32768u);     // smooth tail
  const Bytes blob = encode_code_stream(codes, 65537);
  const Bytes huff = huffman_encode(codes, 65537);
  const Bytes lz = lz_compress(huff);
  // The emitted stream must be the (much smaller) LZ branch, not the
  // skipped-pass Huffman fallback.
  EXPECT_LT(blob.size(), huff.size() / 2);
  EXPECT_LE(blob.size(), lz.size() + 16);  // LZ payload + backend framing
  ByteReader r(blob);
  EXPECT_EQ(decode_code_stream(r), codes);
}

class Lz77Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lz77Fuzz, StructuredRandomRoundTrip) {
  Rng rng(GetParam());
  // Mix of runs, repeats and noise.
  Bytes data;
  for (int seg = 0; seg < 50; ++seg) {
    const int kind = static_cast<int>(rng.next_below(3));
    const std::size_t len = 10 + rng.next_below(3000);
    if (kind == 0) {
      data.insert(data.end(), len,
                  static_cast<std::byte>(rng.next_below(256)));
    } else if (kind == 1 && !data.empty()) {
      const std::size_t src = rng.next_below(data.size());
      for (std::size_t i = 0; i < len; ++i)
        data.push_back(data[src + (i % (data.size() - src))]);
    } else {
      for (std::size_t i = 0; i < len; ++i)
        data.push_back(static_cast<std::byte>(rng.next_below(256)));
    }
  }
  expect_roundtrip(data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lz77Fuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace eblcio
