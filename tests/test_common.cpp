// Tests for the common module: Shape/NdArray/Field, Rng, CLI parsing,
// formatting, byte serialization and the table printer.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/cli.h"
#include "common/error.h"
#include "common/field.h"
#include "common/format.h"
#include "common/ndarray.h"
#include "common/rng.h"
#include "common/table.h"

namespace eblcio {
namespace {

TEST(Shape, BasicProperties) {
  Shape s{4, 5, 6};
  EXPECT_EQ(s.ndims(), 3);
  EXPECT_EQ(s.dim(0), 4u);
  EXPECT_EQ(s.dim(2), 6u);
  EXPECT_EQ(s.num_elements(), 120u);
}

TEST(Shape, RowMajorStrides) {
  Shape s{4, 5, 6};
  const auto st = s.strides();
  EXPECT_EQ(st[2], 1u);
  EXPECT_EQ(st[1], 6u);
  EXPECT_EQ(st[0], 30u);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_FALSE(Shape({2, 3}) == Shape({3, 2}));
  EXPECT_FALSE(Shape({2, 3}) == Shape({2, 3, 1}));
}

TEST(Shape, RejectsBadDims) {
  EXPECT_THROW(Shape({0, 3}), InvalidArgument);
  EXPECT_THROW(Shape({1, 2, 3, 4, 5}), InvalidArgument);
}

TEST(NdArray, IndexingMatchesLinearLayout) {
  NdArray<float> a(Shape{3, 4});
  for (std::size_t i = 0; i < a.num_elements(); ++i)
    a[i] = static_cast<float>(i);
  EXPECT_EQ(a.at(1, 2), 6.0f);
  EXPECT_EQ(a.at(2, 3), 11.0f);
}

TEST(NdArray, SizeBytes) {
  NdArray<double> a(Shape{10, 10});
  EXPECT_EQ(a.size_bytes(), 800u);
}

TEST(Field, DTypeAndRange) {
  NdArray<float> a(Shape{4});
  a[0] = -3.f;
  a[1] = 0.f;
  a[2] = 7.f;
  a[3] = 2.f;
  Field f("t", std::move(a));
  EXPECT_EQ(f.dtype(), DType::kFloat32);
  const auto r = f.value_range();
  EXPECT_DOUBLE_EQ(r.min, -3.0);
  EXPECT_DOUBLE_EQ(r.max, 7.0);
  EXPECT_DOUBLE_EQ(r.span(), 10.0);
}

TEST(Field, BytesViewMatchesData) {
  NdArray<double> a(Shape{3});
  a[0] = 1.5;
  Field f("t", std::move(a));
  EXPECT_EQ(f.bytes().size(), 24u);
  double v;
  std::memcpy(&v, f.bytes().data(), 8);
  EXPECT_DOUBLE_EQ(v, 1.5);
}

TEST(Field, TypedAccessorThrowsOnWrongType) {
  Field f("t", NdArray<float>(Shape{2}));
  EXPECT_NO_THROW(f.as<float>());
  EXPECT_THROW(f.as<double>(), InvalidArgument);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, NextBelowBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog",       "positional", "--alpha=1.5",
                        "--name",     "hello",      "--verbose"};
  CliArgs args(6, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0), 1.5);
  EXPECT_EQ(args.get("name"), "hello");
  EXPECT_TRUE(args.get_bool("verbose"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
}

TEST(Cli, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  CliArgs args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("threads", 4), 4);
  EXPECT_FALSE(args.has("anything"));
}

TEST(Format, HumanBytesDecimalUnits) {
  EXPECT_EQ(human_bytes(512), "512B");
  EXPECT_EQ(human_bytes(673'900'000), "673.9MB");
  EXPECT_EQ(human_bytes(10'490'400'000ull), "10.5GB");
}

TEST(Format, ErrorBoundAxisLabels) {
  EXPECT_EQ(fmt_error_bound(1e-3), "1E-03");
  EXPECT_EQ(fmt_error_bound(1e-1), "1E-01");
  EXPECT_EQ(fmt_error_bound(1e-5), "1E-05");
}

TEST(Format, Dims) {
  EXPECT_EQ(fmt_dims({26, 1800, 3600}), "26x1800x3600");
  EXPECT_EQ(fmt_dims({512}), "512");
}

TEST(Bytes, PodRoundTrip) {
  Bytes b;
  append_pod<std::uint32_t>(b, 0xdeadbeef);
  append_pod<double>(b, 3.25);
  append_string(b, "hi");
  ByteReader r(b);
  EXPECT_EQ(r.read_pod<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_DOUBLE_EQ(r.read_pod<double>(), 3.25);
  EXPECT_EQ(r.read_string(), "hi");
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, ReaderThrowsOnUnderrun) {
  Bytes b;
  append_pod<std::uint16_t>(b, 7);
  ByteReader r(b);
  EXPECT_THROW(r.read_pod<std::uint64_t>(), CorruptStream);
}

TEST(Table, AlignsColumns) {
  TextTable t({"a", "long-header"});
  t.add_row({"x", "1"});
  t.add_rule();
  t.add_row({"longer-cell", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a           | long-header |"), std::string::npos);
  EXPECT_NE(s.find("longer-cell"), std::string::npos);
}

}  // namespace
}  // namespace eblcio
