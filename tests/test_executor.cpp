// Shared executor tests: stress, nesting, exception propagation, blocking
// scopes, backpressure, channels, and accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "common/error.h"
#include "parallel/executor.h"

namespace eblcio {
namespace {

TEST(Executor, StressThousandTasks) {
  std::atomic<int> count{0};
  std::atomic<long long> sum{0};
  TaskGroup group;
  for (int i = 0; i < 1000; ++i)
    group.run([&, i] {
      count.fetch_add(1);
      sum.fetch_add(i);
    });
  group.wait();
  EXPECT_EQ(count.load(), 1000);
  EXPECT_EQ(sum.load(), 999LL * 1000 / 2);
}

TEST(Executor, NestedGroupsFromPoolTasks) {
  // Each outer task spawns and awaits its own inner group — the shape the
  // chunked codecs produce when a streamed slab fans out again. Waiting
  // tasks help execute, so this must not deadlock even on a 1-worker pool.
  Executor ex(1);
  std::atomic<int> inner_runs{0};
  TaskGroup outer(ex);
  for (int i = 0; i < 8; ++i)
    outer.run([&] {
      TaskGroup inner(ex);
      for (int j = 0; j < 16; ++j) inner.run([&] { inner_runs.fetch_add(1); });
      inner.wait();
    });
  outer.wait();
  EXPECT_EQ(inner_runs.load(), 8 * 16);
}

TEST(Executor, ExceptionPropagatesToWaiter) {
  TaskGroup group;
  for (int i = 0; i < 32; ++i)
    group.run([i] {
      if (i == 17) throw InvalidArgument("boom");
    });
  EXPECT_THROW(group.wait(), InvalidArgument);
}

TEST(Executor, ExceptionFromNestedGroupPropagates) {
  TaskGroup outer;
  outer.run([] {
    TaskGroup inner;
    inner.run([] { throw CorruptStream("inner boom"); });
    inner.wait();  // rethrows inside the outer task
  });
  EXPECT_THROW(outer.wait(), CorruptStream);
}

TEST(Executor, GroupReusableAfterException) {
  TaskGroup group;
  group.run([] { throw Error("first"); });
  EXPECT_THROW(group.wait(), Error);
  std::atomic<int> ran{0};
  group.run([&] { ran.fetch_add(1); });
  group.wait();  // error was consumed; second wave is clean
  EXPECT_EQ(ran.load(), 1);
}

TEST(Executor, ParallelForCoversRange) {
  std::vector<int> hits(777, 0);
  parallel_for(hits.size(), 8, [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 777);
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(Executor, ParallelForZeroAndOne) {
  int calls = 0;
  parallel_for(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, 4, [&](std::size_t i) { calls += static_cast<int>(i) + 1; });
  EXPECT_EQ(calls, 1);  // runs inline
}

TEST(Executor, BackpressureBoundsInjectionQueue) {
  // Tiny queue: submissions must block-and-drain rather than grow
  // unboundedly, and every task still runs exactly once.
  Executor ex(2, /*queue_capacity=*/4);
  std::atomic<int> count{0};
  TaskGroup group(ex);
  for (int i = 0; i < 200; ++i)
    group.run([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      count.fetch_add(1);
    });
  group.wait();
  EXPECT_EQ(count.load(), 200);
  EXPECT_GT(ex.stats().submit_waits, 0u);
}

TEST(Executor, BlockingScopeLendsReplacementWorker) {
  // One worker; task A blocks until task B runs. Without BlockingScope the
  // single worker would sit in A forever and B would never start.
  Executor ex(1);
  BoundedChannel<int> ch(1);
  TaskGroup group(ex);
  int received = 0;
  group.run([&] {
    Executor::BlockingScope scope;
    received = ch.pop().value_or(-1);
  });
  group.run([&] { ch.push(42); });
  group.wait();
  EXPECT_EQ(received, 42);
}

TEST(Executor, ChannelDeliversInOrderAndCloses) {
  BoundedChannel<int> ch(2);
  std::vector<int> got;
  TaskGroup group;
  group.run([&] {
    for (int i = 0; i < 50; ++i) ch.push(i);
    ch.close();
  });
  while (auto v = ch.pop()) got.push_back(*v);
  group.wait();
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[i], i);
}

TEST(Executor, PopAfterCloseDrainsThenEnds) {
  BoundedChannel<int> ch(4);
  ch.push(1);
  ch.push(2);
  ch.close();
  EXPECT_EQ(ch.pop().value_or(-1), 1);
  EXPECT_EQ(ch.pop().value_or(-1), 2);
  EXPECT_FALSE(ch.pop().has_value());
}

TEST(Executor, StatsAccountTaskTime) {
  Executor ex(2);
  const auto before = ex.stats();
  TaskGroup group(ex);
  for (int i = 0; i < 10; ++i)
    group.run([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  group.wait();
  const auto after = ex.stats();
  EXPECT_EQ(after.tasks_completed - before.tasks_completed, 10u);
  EXPECT_GE(after.task_seconds - before.task_seconds, 0.008);
  EXPECT_GE(after.workers, 2);
}

TEST(Executor, ManyBlockingTasksAllProgress) {
  // A chain: task i waits for token i then passes token i+1 — forces every
  // task to be live at once, far beyond the base worker count.
  Executor ex(2);
  const int n = 32;
  std::vector<std::unique_ptr<BoundedChannel<int>>> links;
  for (int i = 0; i <= n; ++i)
    links.push_back(std::make_unique<BoundedChannel<int>>(1));
  TaskGroup group(ex);
  for (int i = 0; i < n; ++i)
    group.run([&, i] {
      Executor::BlockingScope scope;
      const auto v = links[i]->pop();
      links[i + 1]->push(v.value_or(0) + 1);
    });
  links[0]->push(0);
  group.wait();
  EXPECT_EQ(links[n]->pop().value_or(-1), n);
}

TEST(Executor, RejectsZeroCapacity) {
  EXPECT_THROW(Executor(1, 0), InvalidArgument);
}

TEST(Executor, PodCountDetectsOrOverrides) {
  // Auto-detection must land on at least one pod, and never more pods
  // than workers.
  Executor auto_ex(4);
  EXPECT_GE(auto_ex.pods(), 1);
  EXPECT_LE(auto_ex.pods(), 4);
  // Explicit override wins, clamped to the worker count.
  EXPECT_EQ(Executor(4, 4096, 2).pods(), 2);
  EXPECT_EQ(Executor(2, 4096, 8).pods(), 2);
  EXPECT_EQ(Executor(4, 4096, 2).stats().pods, 2);
}

TEST(Executor, PoddedPoolCompletesFanOutAndAccountsSteals) {
  // Two pods over four workers; one producer task floods its own deque so
  // every other worker must steal. All tasks must still run exactly once
  // (cross-pod stealing keeps work conserved), and every steal is
  // classified as exactly one of pod-local / pod-remote.
  Executor ex(4, 4096, 2);
  const auto before = ex.stats();
  std::atomic<int> count{0};
  const int n = 5000;
  TaskGroup outer(ex);
  outer.run([&] {
    TaskGroup inner(ex);
    for (int i = 0; i < n; ++i)
      inner.run([&] {
        count.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(1));
      });
    inner.wait();
  });
  outer.wait();
  EXPECT_EQ(count.load(), n);
  const auto after = ex.stats();
  EXPECT_EQ(after.steals - before.steals,
            (after.pod_local_steals - before.pod_local_steals) +
                (after.pod_remote_steals - before.pod_remote_steals));
}

TEST(Executor, PodHintedPlacementIsConserved) {
  // Every hinted task is classified exactly once at run time, as pod-local
  // or pod-remote — whether it ran on a worker of the hinted pod, was
  // stolen cross-pod, or was help-run inline by the waiting submitter.
  Executor ex(4, 4096, 2);
  const auto before = ex.stats();
  std::atomic<int> count{0};
  const int n = 3000;
  TaskGroup group(ex);
  for (int i = 0; i < n; ++i)
    group.run([&] { count.fetch_add(1); }, i % 2);
  group.wait();
  EXPECT_EQ(count.load(), n);
  const auto after = ex.stats();
  EXPECT_EQ((after.placed_local - before.placed_local) +
                (after.placed_remote - before.placed_remote),
            static_cast<std::uint64_t>(n));
}

TEST(Executor, PodHintedPlacementIsMostlyLocalUnderPlentifulWork) {
  // With every worker kept busy by its own deque, cross-pod stealing is
  // rare, so hinted tasks overwhelmingly run inside their hinted pod. This
  // is the property the chunked compressors rely on: slab i's task lands
  // on the pod that owns slab i's buffers.
  Executor ex(4, 4096, 2);
  const auto before = ex.stats();
  std::atomic<unsigned> sink{0};
  const int n = 4000;
  TaskGroup group(ex);
  for (int i = 0; i < n; ++i)
    group.run(
        [&, i] {
          // A dependent LCG chain the compiler cannot fold: each task
          // costs a few microseconds, so deques build depth and workers
          // stay fed from their own pod instead of starving into steals.
          unsigned x = static_cast<unsigned>(i) + 1;
          for (int k = 0; k < 20000; ++k) x = x * 1664525u + 1013904223u;
          sink.fetch_add(x, std::memory_order_relaxed);
        },
        i % 2);
  group.wait();
  const auto after = ex.stats();
  const std::uint64_t local = after.placed_local - before.placed_local;
  const std::uint64_t remote = after.placed_remote - before.placed_remote;
  ASSERT_EQ(local + remote, static_cast<std::uint64_t>(n));
  EXPECT_GE(local, static_cast<std::uint64_t>(n) * 9 / 10)
      << "local " << local << " remote " << remote;
}

TEST(Executor, UnhintedTasksDoNotCountAsPlacements) {
  Executor ex(2, 4096, 2);
  const auto before = ex.stats();
  std::atomic<int> count{0};
  TaskGroup group(ex);
  for (int i = 0; i < 500; ++i) group.run([&] { count.fetch_add(1); });
  group.wait();
  EXPECT_EQ(count.load(), 500);
  const auto after = ex.stats();
  EXPECT_EQ(after.placed_local, before.placed_local);
  EXPECT_EQ(after.placed_remote, before.placed_remote);
}

TEST(Executor, SinglePodClassifiesAllStealsLocal) {
  Executor ex(3, 4096, 1);
  std::atomic<int> count{0};
  TaskGroup outer(ex);
  outer.run([&] {
    TaskGroup inner(ex);
    for (int i = 0; i < 2000; ++i) inner.run([&] { count.fetch_add(1); });
    inner.wait();
  });
  outer.wait();
  EXPECT_EQ(count.load(), 2000);
  const auto s = ex.stats();
  EXPECT_EQ(s.pods, 1);
  EXPECT_EQ(s.pod_remote_steals, 0u);
  EXPECT_EQ(s.pod_local_steals, s.steals);
}

}  // namespace
}  // namespace eblcio
