// Tests for the extension modules: Z-checker-class quality reports,
// zPerf-class ratio estimation, and the ADIOS-class I/O tool.
#include <gtest/gtest.h>

#include <cmath>

#include "compressors/compressor.h"
#include "core/estimator.h"
#include "data/dataset.h"
#include "io/adioslite.h"
#include "io/io_tool.h"
#include "metrics/quality_report.h"
#include "test_util.h"

namespace eblcio {
namespace {

using test::smooth_field_2d;
using test::smooth_field_3d;

// --- quality_report --------------------------------------------------------

TEST(QualityReport, PerfectReconstruction) {
  const Field f = smooth_field_3d(16);
  const auto rep = assess_quality(f, f);
  EXPECT_DOUBLE_EQ(rep.nrmse, 0.0);
  EXPECT_NEAR(rep.pearson_r, 1.0, 1e-12);
  EXPECT_NEAR(rep.ssim, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(rep.gradient_rmse_ratio, 0.0);
  EXPECT_DOUBLE_EQ(rep.mean_error, 0.0);
  EXPECT_TRUE(rep.unbiased());
}

TEST(QualityReport, DetectsBias) {
  const Field f = smooth_field_2d(32);
  NdArray<float> shifted = f.as<float>();
  for (std::size_t i = 0; i < shifted.num_elements(); ++i)
    shifted[i] += 0.5f;
  const Field g("shifted", std::move(shifted));
  const auto rep = assess_quality(f, g);
  EXPECT_NEAR(rep.mean_error, -0.5, 1e-5);
  EXPECT_FALSE(rep.unbiased());
  // A pure shift preserves structure: correlation stays perfect and
  // gradients are untouched.
  EXPECT_NEAR(rep.pearson_r, 1.0, 1e-9);
  EXPECT_NEAR(rep.gradient_rmse_ratio, 0.0, 1e-6);
}

TEST(QualityReport, SsimDropsWithNoise) {
  const Field f = smooth_field_2d(64);
  Rng rng(3);
  NdArray<float> noisy = f.as<float>();
  for (std::size_t i = 0; i < noisy.num_elements(); ++i)
    noisy[i] += 0.3f * static_cast<float>(rng.normal());
  const Field g("noisy", std::move(noisy));
  const auto rep = assess_quality(f, g);
  EXPECT_LT(rep.ssim, 0.98);
  EXPECT_LT(rep.pearson_r, 0.999);
  EXPECT_GT(rep.gradient_rmse_ratio, 0.5);  // noise shreds gradients
}

TEST(QualityReport, TracksCompressorQualityOrdering) {
  // Tighter bounds must produce a monotonically better battery.
  const Field f = smooth_field_3d(32);
  Compressor& c = compressor("SZ3");
  QualityReport prev;
  bool first = true;
  for (double eb : {1e-1, 1e-3, 1e-5}) {
    CompressOptions o;
    o.error_bound = eb;
    const auto rep = assess_quality(f, c.decompress(c.compress(f, o), 1));
    if (!first) {
      EXPECT_GE(rep.basic.psnr_db, prev.basic.psnr_db);
      EXPECT_LE(rep.nrmse, prev.nrmse);
      EXPECT_GE(rep.ssim, prev.ssim - 1e-9);
    }
    prev = rep;
    first = false;
  }
}

TEST(QualityReport, FormatsAllFields) {
  const Field f = smooth_field_2d(16);
  const std::string text = format_quality_report(assess_quality(f, f));
  for (const char* needle : {"PSNR", "NRMSE", "SSIM", "pearson", "gradient"})
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

// --- estimator --------------------------------------------------------------

class EstimatorAccuracy
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(EstimatorAccuracy, WithinFactorOfActual) {
  const auto [codec, eb] = GetParam();
  const Field f = generate_dataset_dims("NYX", {64, 64, 64}, 5);
  const RatioEstimate est = estimate_ratio(f, codec, eb);

  CompressOptions o;
  o.error_bound = eb;
  const Bytes blob = compressor(codec).compress(f, o);
  const double actual =
      static_cast<double>(f.size_bytes()) / static_cast<double>(blob.size());

  EXPECT_GT(est.predicted_ratio, 0.9);
  // Gray-box estimation: within ~4x of the truth, per the zPerf-class
  // accuracy regime, and on the same side of "compressible vs not".
  EXPECT_LT(est.predicted_ratio / actual, 4.0)
      << codec << " predicted " << est.predicted_ratio << " actual "
      << actual;
  EXPECT_GT(est.predicted_ratio / actual, 0.25)
      << codec << " predicted " << est.predicted_ratio << " actual "
      << actual;
}

INSTANTIATE_TEST_SUITE_P(
    CodecsBounds, EstimatorAccuracy,
    ::testing::Combine(::testing::Values("SZ3", "SZx", "ZFP"),
                       ::testing::Values(1e-2, 1e-3, 1e-4)));

TEST(Estimator, OrdersBoundsCorrectly) {
  const Field f = generate_dataset_dims("NYX", {48, 48, 48}, 6);
  double prev = 1e18;
  for (double eb : {1e-1, 1e-2, 1e-3, 1e-4, 1e-5}) {
    const double r = estimate_ratio(f, "SZ3", eb).predicted_ratio;
    EXPECT_LE(r, prev * 1.01);
    prev = r;
  }
}

TEST(Estimator, RejectsUnknownCodecAndBadBound) {
  const Field f = smooth_field_2d(16);
  EXPECT_THROW(estimate_ratio(f, "zstd", 1e-3), InvalidArgument);
  EXPECT_THROW(estimate_ratio(f, "SZ3", 0.0), InvalidArgument);
}

TEST(Estimator, IsCheap) {
  // The whole point: estimation must not scale with field size.
  const Field f = generate_dataset_dims("NYX", {128, 128, 128}, 7);
  const RatioEstimate est = estimate_ratio(f, "SZ3", 1e-3);
  EXPECT_LE(est.sampled_values, 262144u + 128u);
}

// --- AdiosLite ---------------------------------------------------------------

TEST(AdiosLite, RegistryLookup) {
  EXPECT_EQ(io_tool("ADIOS").name(), "ADIOS");
  EXPECT_EQ(io_tool("bp").name(), "ADIOS");
}

TEST(AdiosLite, FieldRoundTripThroughPfs) {
  PfsSimulator pfs;
  const Field f = smooth_field_3d(24);
  io_tool("ADIOS").write_field(pfs, "/bp/f", f);
  const Field r = io_tool("ADIOS").read_field(pfs, "/bp/f");
  ASSERT_EQ(r.shape(), f.shape());
  for (std::size_t i = 0; i < f.num_elements(); ++i)
    EXPECT_EQ(r.as<float>()[i], f.as<float>()[i]);
}

TEST(AdiosLite, BlobRoundTrip) {
  PfsSimulator pfs;
  Bytes blob(3000);
  for (std::size_t i = 0; i < blob.size(); ++i)
    blob[i] = static_cast<std::byte>(i * 7);
  io_tool("ADIOS").write_blob(pfs, "/bp/b", "x", blob);
  EXPECT_EQ(io_tool("ADIOS").read_blob(pfs, "/bp/b", "x"), blob);
}

TEST(AdiosLite, MultiVariableProcessGroups) {
  AdiosLiteFile file;
  for (int i = 0; i < 3; ++i) {
    BpVariable v;
    v.name = "var" + std::to_string(i);
    v.dtype_code = 2;
    v.dims = {64};
    v.data = Bytes(64, static_cast<std::byte>(i + 1));
    v.attributes["step"] = std::to_string(i);
    file.append_variable(std::move(v));
  }
  int syncs = -1;
  const Bytes enc = file.encode(&syncs);
  EXPECT_EQ(syncs, 1);  // single footer write at close
  const AdiosLiteFile back = AdiosLiteFile::decode(enc);
  ASSERT_EQ(back.variables().size(), 3u);
  EXPECT_EQ(back.variable("var1").data[0], std::byte{2});
  EXPECT_EQ(back.variable("var2").attributes.at("step"), "2");
}

TEST(AdiosLite, TruncationThrows) {
  AdiosLiteFile file;
  BpVariable v;
  v.name = "x";
  v.dtype_code = 2;
  v.dims = {512};
  v.data = Bytes(512, std::byte{9});
  file.append_variable(std::move(v));
  const Bytes good = file.encode();
  Rng rng(11);
  for (int i = 0; i < 25; ++i) {
    Bytes cut(good.begin(), good.begin() + rng.next_below(good.size()));
    EXPECT_THROW(AdiosLiteFile::decode(cut), Error);
  }
}

TEST(AdiosLite, CheapestWritePathOfTheThree) {
  // BP's append + single footer sync should undercut both HDF5 (chunk
  // tables) and NetCDF (staging + header rewrites).
  PfsSimulator pfs;
  const Field f = smooth_field_3d(64);
  const IoCost bp = io_tool("ADIOS").write_field(pfs, "/w/bp", f);
  const IoCost h5 = io_tool("HDF5").write_field(pfs, "/w/h5", f);
  const IoCost nc = io_tool("NetCDF").write_field(pfs, "/w/nc", f);
  EXPECT_LE(bp.total_seconds(), h5.total_seconds());
  EXPECT_LT(h5.total_seconds(), nc.total_seconds());
}

TEST(AdiosLite, EndToEndCompressedCheckpoint) {
  PfsSimulator pfs;
  const Field f = generate_dataset_dims("ISABEL", {8, 48, 48}, 4);
  CompressOptions o;
  o.error_bound = 1e-3;
  const Bytes blob = compressor("SZ3").compress(f, o);
  io_tool("ADIOS").write_blob(pfs, "/ckpt/bp", f.name(), blob);
  const Field back =
      decompress_any(io_tool("ADIOS").read_blob(pfs, "/ckpt/bp", f.name()));
  EXPECT_TRUE(check_value_range_bound(f, back, 1e-3));
}

}  // namespace
}  // namespace eblcio
