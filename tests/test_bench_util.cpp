// Tests for the shared grid-bench scaffolding (bench/bench_util.h): flag
// parsing into BenchEnv/SweepOptions, streamed-row ordering and table
// formatting, serial-vs-sweep bit-parity through run_grid_bench's verify
// path, and the memoized measure_compression returning identical records
// to concurrent cells.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"

namespace eblcio {
namespace {

using bench::BenchEnv;
using bench::GridRunSummary;
using bench::StreamedTable;

BenchEnv env_from(std::vector<std::string> argv_strings) {
  argv_strings.insert(argv_strings.begin(), "test_bench");
  std::vector<char*> argv;
  for (std::string& s : argv_strings) argv.push_back(s.data());
  const CliArgs args(static_cast<int>(argv.size()), argv.data());
  return BenchEnv::from_cli(args);
}

TEST(BenchUtilFlags, DefaultsAndParsing) {
  const BenchEnv def = env_from({});
  EXPECT_EQ(def.scale, 1.0);
  EXPECT_EQ(def.reps, 1);
  EXPECT_FALSE(def.serial);
  EXPECT_FALSE(def.verify);
  EXPECT_EQ(def.jobs, 0);

  const BenchEnv env = env_from(
      {"--scale=0.5", "--reps=5", "--seed=7", "--serial", "--verify",
       "--jobs=4"});
  EXPECT_EQ(env.scale, 0.5);
  EXPECT_EQ(env.reps, 5);
  EXPECT_EQ(env.seed, 7u);
  EXPECT_TRUE(env.serial);
  EXPECT_TRUE(env.verify);
  EXPECT_EQ(env.jobs, 4);
}

TEST(BenchUtilFlags, SweepOptionsReflectFlags) {
  const BenchEnv env = env_from({"--serial", "--jobs=3", "--reps=5"});
  const SweepOptions opt = env.sweep_options();
  EXPECT_FALSE(opt.parallel);
  EXPECT_EQ(opt.max_tasks, 3);
  ASSERT_TRUE(opt.repeat.has_value());
  EXPECT_EQ(opt.repeat->min_runs, 3);
  EXPECT_EQ(opt.repeat->max_runs, 5);

  // A single-rep budget does not engage the protocol (it needs >= 2 runs).
  EXPECT_FALSE(env_from({}).sweep_options().repeat.has_value());
}

TEST(BenchUtilFlags, RepeatConfigUsesSharedProtocolClamp) {
  // BenchEnv::repeat_config is repeat_protocol: never below the 2 runs a
  // CI needs, warm-up capped at 3, budget respected.
  const RepeatConfig one = env_from({"--reps=1"}).repeat_config();
  EXPECT_EQ(one.min_runs, 2);
  EXPECT_EQ(one.max_runs, 2);
  const RepeatConfig two = env_from({"--reps=2"}).repeat_config();
  EXPECT_EQ(two.min_runs, 2);
  EXPECT_EQ(two.max_runs, 2);
  const RepeatConfig paper = env_from({"--reps=25"}).repeat_config();
  EXPECT_EQ(paper.min_runs, 3);
  EXPECT_EQ(paper.max_runs, 25);
}

TEST(StreamedTableTest, MatchesTextTableFrameWhenCellsFit) {
  // With cells no wider than the (min_width-padded) header, the streamed
  // output is byte-identical to TextTable's — same frame, same alignment.
  const std::vector<std::string> header = {"a column xx", "b column yy"};
  TextTable reference(header);
  std::ostringstream streamed;
  StreamedTable table(header, streamed, 10);
  for (int r = 0; r < 3; ++r) {
    const std::vector<std::string> row = {"r" + std::to_string(r), "v"};
    reference.add_row(row);
    table.add_row(row);
    if (r == 1) {
      reference.add_rule();
      table.add_rule();
    }
  }
  table.finish();
  EXPECT_EQ(streamed.str(), reference.to_string());
  EXPECT_EQ(table.rows(), 3u);
}

TEST(StreamedTableTest, RowsAppearIncrementally) {
  std::ostringstream os;
  StreamedTable table({"h"}, os);
  const std::size_t after_header = os.str().size();
  table.add_row({"first"});
  EXPECT_GT(os.str().size(), after_header);
  EXPECT_NE(os.str().find("first"), std::string::npos);
  // finish() is idempotent.
  table.finish();
  const std::string closed = os.str();
  table.finish();
  EXPECT_EQ(os.str(), closed);
}

TEST(GridBench, StreamsRowsInDomainOrderUnderParallelExecution) {
  BenchEnv env;  // parallel, no verify
  std::vector<int> cells;
  for (int i = 0; i < 24; ++i) cells.push_back(i);

  std::vector<std::size_t> order;
  std::vector<std::string> rendered;
  const GridRunSummary summary = bench::run_grid_bench(
      cells,
      env,
      [](const int& cell, SweepCellContext&) { return cell * cell; },
      [](const int& cell, const int& result) {
        return std::vector<std::string>{std::to_string(cell),
                                        std::to_string(result)};
      },
      [&](const int&, std::size_t index,
          const std::vector<std::string>& fragment) {
        order.push_back(index);
        rendered.push_back(fragment[1]);
      });
  ASSERT_EQ(order.size(), cells.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
    EXPECT_EQ(rendered[i], std::to_string(static_cast<int>(i * i)));
  }
  EXPECT_EQ(summary.stats.completed, cells.size());
  EXPECT_FALSE(summary.verified);
  EXPECT_EQ(summary.exit_code(), 0);
}

TEST(GridBench, VerifyPassesForDeterministicCells) {
  BenchEnv env;
  env.verify = true;
  std::vector<int> cells = {3, 1, 4, 1, 5, 9, 2, 6};
  const GridRunSummary summary = bench::run_grid_bench(
      cells, env,
      [](const int& cell, SweepCellContext&) { return 7 * cell + 1; },
      [](const int&, const int& result) {
        return std::vector<std::string>{std::to_string(result)};
      },
      nullptr);
  EXPECT_TRUE(summary.verified);
  EXPECT_FALSE(summary.verify_trivial);
  EXPECT_TRUE(summary.verify_ok);
  EXPECT_EQ(summary.verify_cells, cells.size());
  EXPECT_EQ(summary.exit_code(), 0);
}

TEST(GridBench, VerifyCatchesNondeterminismAndVerifyViewExcludesIt) {
  // A cell whose rendered row depends on execution count differs between
  // the sweep and the serial rerun: full-fragment comparison must fail,
  // and a verify_view projecting the fragment to its deterministic column
  // must pass — the mechanism benches with wall-clock columns rely on.
  std::atomic<int> calls{0};
  auto eval = [&](const int& cell, SweepCellContext&) {
    return std::pair<int, int>(cell, calls.fetch_add(1));
  };
  auto render = [](const int&, const std::pair<int, int>& r) {
    return std::vector<std::string>{std::to_string(r.first),
                                    std::to_string(r.second)};
  };
  std::vector<int> cells = {10, 20, 30, 40};

  BenchEnv env;
  env.verify = true;
  const GridRunSummary full =
      bench::run_grid_bench(cells, env, eval, render, nullptr);
  EXPECT_TRUE(full.verified);
  EXPECT_FALSE(full.verify_ok);
  EXPECT_GT(full.verify_mismatches, 0u);
  EXPECT_EQ(full.exit_code(), 1);

  const GridRunSummary projected = bench::run_grid_bench(
      cells, env, eval, render, nullptr,
      [](const int&, const std::vector<std::string>& fragment) {
        return fragment[0];  // drop the execution-order column
      });
  EXPECT_TRUE(projected.verify_ok);
  EXPECT_EQ(projected.exit_code(), 0);
}

TEST(GridBench, SerialRunMarksVerifyTrivial) {
  BenchEnv env;
  env.serial = true;
  env.verify = true;
  std::vector<int> cells = {1, 2, 3};
  const GridRunSummary summary = bench::run_grid_bench(
      cells, env, [](const int& c, SweepCellContext&) { return c; },
      [](const int&, const int& r) {
        return std::vector<std::string>{std::to_string(r)};
      },
      nullptr);
  EXPECT_TRUE(summary.verified);
  EXPECT_TRUE(summary.verify_trivial);
  EXPECT_TRUE(summary.verify_ok);
  EXPECT_EQ(summary.stats.cells, 3u);
}

TEST(GridBench, CellFailureRethrowsAfterSettling) {
  BenchEnv env;
  std::vector<int> cells = {0, 1, 2, 3};
  EXPECT_THROW(
      bench::run_grid_bench(
          cells, env,
          [](const int& cell, SweepCellContext&) {
            if (cell == 2) throw std::runtime_error("cell 2 failed");
            return cell;
          },
          [](const int&, const int& r) {
            return std::vector<std::string>{std::to_string(r)};
          },
          nullptr),
      std::runtime_error);
}

TEST(GridBench, RepeatStatsBitParityBetweenSerialAndSweep) {
  // ctx.repeat with a deterministic sample must produce bit-identical
  // statistics on the serial and parallel paths (the sweep engine already
  // guarantees this; the grid bench driver must preserve it end to end).
  auto eval = [](const int& cell, SweepCellContext& ctx) {
    int i = 0;
    const RepeatedStats st =
        ctx.repeat([&]() { return static_cast<double>(cell + (i++ % 3)); });
    return st;
  };
  auto render = [](const int&, const RepeatedStats& st) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%.17g|%.17g|%.17g|%d", st.mean,
                  st.stddev, st.ci95_half, st.runs);
    return std::vector<std::string>{buf};
  };
  std::vector<int> cells = {2, 4, 8, 16, 32};

  BenchEnv env;
  env.reps = 5;
  env.verify = true;  // sweep vs serial rerun, full-fragment comparison
  const GridRunSummary summary =
      bench::run_grid_bench(cells, env, eval, render, nullptr);
  EXPECT_TRUE(summary.verify_ok);
  EXPECT_EQ(summary.verify_mismatches, 0u);
}

TEST(BenchUtilMeasure, ConcurrentCellsSharingAKeyGetIdenticalRecords) {
  // Eight sweep cells measure the same (field, codec, bound) key at once;
  // the per-key once-flag must hand every cell the same memoized record,
  // or --verify could never be exact for measured quantities.
  BenchEnv env;
  env.scale = 0.05;  // tiny working set: this is a scheduling test
  const Field& f = bench::bench_dataset("CESM", env);

  std::vector<int> cells = {0, 1, 2, 3, 4, 5, 6, 7};
  auto eval = [&](const int&, SweepCellContext& ctx) {
    PipelineConfig cfg;
    cfg.codec = "SZx";
    cfg.error_bound = 1e-2;
    return bench::measure_compression(f, cfg, env, &ctx);
  };
  auto render = [](const int&, const CompressionRecord& rec) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%zu|%.17g|%.17g|%.17g",
                  rec.compressed_bytes, rec.ratio, rec.host_compress_s,
                  rec.host_decompress_s);
    return std::vector<std::string>{buf};
  };
  std::set<std::string> distinct;
  const GridRunSummary summary = bench::run_grid_bench(
      cells, env, eval, render,
      [&](const int&, std::size_t, const std::vector<std::string>& fragment) {
        distinct.insert(fragment[0]);
      });
  EXPECT_EQ(summary.stats.completed, cells.size());
  EXPECT_EQ(distinct.size(), 1u);
}

}  // namespace
}  // namespace eblcio
