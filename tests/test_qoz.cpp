// QoZ compressor tests: quality-oriented tuning behaviour, bound
// guarantees, the documented 1D restriction.
#include <gtest/gtest.h>

#include "compressors/compressor.h"
#include "metrics/error_stats.h"
#include "test_util.h"

namespace eblcio {
namespace {

using test::double_field_4d;
using test::noisy_field_1d;
using test::smooth_field_2d;
using test::smooth_field_3d;

CompressOptions rel(double eb, int threads = 1) {
  CompressOptions o;
  o.mode = BoundMode::kValueRangeRel;
  o.error_bound = eb;
  o.threads = threads;
  return o;
}

class QozBound
    : public ::testing::TestWithParam<std::tuple<double, std::string>> {};

TEST_P(QozBound, GuaranteesValueRangeBound) {
  const auto [eb, which] = GetParam();
  Field f;
  if (which == "2d") f = smooth_field_2d();
  else if (which == "3d") f = smooth_field_3d();
  else f = double_field_4d();

  Compressor& c = compressor("QoZ");
  const Field r = c.decompress(c.compress(f, rel(eb)), 1);
  EXPECT_TRUE(check_value_range_bound(f, r, eb)) << which << " eb=" << eb;
}

INSTANTIATE_TEST_SUITE_P(
    BoundSweep, QozBound,
    ::testing::Combine(::testing::Values(1e-1, 1e-2, 1e-3, 1e-4, 1e-5),
                       ::testing::Values("2d", "3d", "4d")));

TEST(Qoz, Rejects1dData) {
  // Paper Sec. IV-C: "QoZ is not capable of compressing 1D data."
  Compressor& c = compressor("QoZ");
  EXPECT_THROW(c.compress(noisy_field_1d(), rel(1e-3)), Unsupported);
  CompressOptions o = rel(1e-3);
  EXPECT_FALSE(c.supports(noisy_field_1d(), o));
}

TEST(Qoz, QualityAtLeastSz3AtSameBound) {
  // QoZ's design goal: better (or equal) quality than SZ3 at a bound,
  // thanks to level-wise error control.
  const Field f = smooth_field_3d(48);
  Compressor& qoz = compressor("QoZ");
  Compressor& sz3 = compressor("SZ3");
  const double eb = 1e-2;
  const auto q_st = compute_error_stats(
      f, qoz.decompress(qoz.compress(f, rel(eb)), 1));
  const auto s_st = compute_error_stats(
      f, sz3.decompress(sz3.compress(f, rel(eb)), 1));
  EXPECT_GE(q_st.psnr_db, s_st.psnr_db - 1.0);
}

TEST(Qoz, DenserAnchorsThanAutoStride) {
  // QoZ stores an anchor grid every 64 points; on a 128^3 field that is
  // more exact storage than SZ3's single auto anchor, so QoZ blobs can be
  // slightly larger on very smooth data — but never catastrophically so.
  const Field f = smooth_field_3d(64);
  const auto qoz_size = compressor("QoZ").compress(f, rel(1e-3)).size();
  const auto sz3_size = compressor("SZ3").compress(f, rel(1e-3)).size();
  EXPECT_LT(qoz_size, sz3_size * 4);
}

TEST(Qoz, ParallelSlabsPreserveBound) {
  Compressor& c = compressor("QoZ");
  const Field f = smooth_field_3d(40);
  for (int threads : {2, 4}) {
    const Bytes blob = c.compress(f, rel(1e-3, threads));
    EXPECT_TRUE(
        check_value_range_bound(f, c.decompress(blob, threads), 1e-3));
  }
}

TEST(Qoz, SelfDescribingBlob) {
  Compressor& c = compressor("QoZ");
  const Field f = smooth_field_2d();
  const Bytes blob = c.compress(f, rel(1e-3));
  const BlobHeader h = peek_header(blob);
  EXPECT_EQ(h.codec, "QoZ");
  const Field r = decompress_any(blob);
  EXPECT_TRUE(check_value_range_bound(f, r, 1e-3));
}

TEST(Qoz, TruncatedBlobThrows) {
  Compressor& c = compressor("QoZ");
  Bytes blob = c.compress(smooth_field_2d(), rel(1e-3));
  blob.resize(blob.size() / 2);
  EXPECT_THROW(c.decompress(blob, 1), CorruptStream);
}

}  // namespace
}  // namespace eblcio
