// SZ3 compressor tests: interpolation predictor correctness, bound
// guarantees across dimensionalities, ratio behaviour.
#include <gtest/gtest.h>

#include "compressors/compressor.h"
#include "data/dataset.h"
#include "metrics/error_stats.h"
#include "test_util.h"

namespace eblcio {
namespace {

using test::constant_field;
using test::double_field_4d;
using test::noisy_field_1d;
using test::smooth_field_2d;
using test::smooth_field_3d;

CompressOptions rel(double eb, int threads = 1) {
  CompressOptions o;
  o.mode = BoundMode::kValueRangeRel;
  o.error_bound = eb;
  o.threads = threads;
  return o;
}

class Sz3Bound
    : public ::testing::TestWithParam<std::tuple<double, std::string>> {};

TEST_P(Sz3Bound, GuaranteesValueRangeBound) {
  const auto [eb, which] = GetParam();
  Field f;
  if (which == "1d") f = noisy_field_1d();
  else if (which == "2d") f = smooth_field_2d();
  else if (which == "3d") f = smooth_field_3d();
  else f = double_field_4d();

  Compressor& c = compressor("SZ3");
  const Bytes blob = c.compress(f, rel(eb));
  const Field r = c.decompress(blob, 1);
  EXPECT_TRUE(check_value_range_bound(f, r, eb))
      << which << " eb=" << eb;
  EXPECT_EQ(r.shape(), f.shape());
}

INSTANTIATE_TEST_SUITE_P(
    BoundSweep, Sz3Bound,
    ::testing::Combine(::testing::Values(1e-1, 1e-2, 1e-3, 1e-4, 1e-5),
                       ::testing::Values("1d", "2d", "3d", "4d")));

TEST(Sz3, SmoothDataHighRatioAtLooseBound) {
  Compressor& c = compressor("SZ3");
  const Field f = smooth_field_3d(48);
  const Bytes blob = c.compress(f, rel(1e-2));
  const double cr = compression_ratio(f.size_bytes(), blob.size());
  EXPECT_GT(cr, 20.0);  // interpolation should crush smooth fields
}

TEST(Sz3, BeatsSzxOnSmoothData) {
  // The paper's trade-off: SZ3 gets higher ratios than SZx (at higher
  // compute cost). Verify the ratio ordering on a smooth field.
  const Field f = smooth_field_3d(48);
  const auto sz3 = compressor("SZ3").compress(f, rel(1e-3)).size();
  const auto szx = compressor("SZx").compress(f, rel(1e-3)).size();
  EXPECT_LT(sz3, szx);
}

TEST(Sz3, RatioDecreasesWithTighterBound) {
  Compressor& c = compressor("SZ3");
  const Field f = smooth_field_3d(48);
  std::size_t prev = 0;
  for (double eb : {1e-1, 1e-3, 1e-5}) {
    const std::size_t size = c.compress(f, rel(eb)).size();
    EXPECT_GE(size, prev);
    prev = size;
  }
}

TEST(Sz3, ConstantField) {
  Compressor& c = compressor("SZ3");
  const Field f = constant_field(65536);
  const Bytes blob = c.compress(f, rel(1e-3));
  const Field r = c.decompress(blob, 1);
  EXPECT_TRUE(check_value_range_bound(f, r, 1e-3));
  EXPECT_LT(blob.size(), f.size_bytes() / 100);
}

TEST(Sz3, NonPowerOfTwoDims) {
  NdArray<float> arr(Shape{13, 29, 7});
  for (std::size_t i = 0; i < arr.num_elements(); ++i)
    arr[i] = static_cast<float>(i % 97) * 0.1f;
  const Field f("odd", std::move(arr));
  Compressor& c = compressor("SZ3");
  const Field r = c.decompress(c.compress(f, rel(1e-3)), 1);
  EXPECT_TRUE(check_value_range_bound(f, r, 1e-3));
}

TEST(Sz3, TinyField) {
  NdArray<float> arr(Shape{2, 2});
  arr[0] = 1;
  arr[1] = 2;
  arr[2] = 3;
  arr[3] = 4;
  const Field f("tiny", std::move(arr));
  Compressor& c = compressor("SZ3");
  const Field r = c.decompress(c.compress(f, rel(1e-2)), 1);
  EXPECT_TRUE(check_value_range_bound(f, r, 1e-2));
}

TEST(Sz3, ParallelSlabsPreserveBound) {
  Compressor& c = compressor("SZ3");
  const Field f = smooth_field_3d(40);
  for (int threads : {2, 4, 8}) {
    const Bytes blob = c.compress(f, rel(1e-3, threads));
    const Field r = c.decompress(blob, threads);
    EXPECT_TRUE(check_value_range_bound(f, r, 1e-3)) << threads;
  }
}

TEST(Sz3, ParallelCostsSomeRatio) {
  // Chunked entropy tables cost a little ratio vs. serial — but not much.
  Compressor& c = compressor("SZ3");
  const Field f = smooth_field_3d(48);
  const auto serial = c.compress(f, rel(1e-3, 1)).size();
  const auto parallel = c.compress(f, rel(1e-3, 8)).size();
  EXPECT_GE(parallel, serial);
  EXPECT_LT(parallel, serial * 2);
}

TEST(Sz3, RealisticDatasetBounds) {
  Compressor& c = compressor("SZ3");
  for (const char* name : {"NYX", "CESM"}) {
    const Field f = generate_dataset_dims(
        name, name == std::string("CESM")
                  ? std::vector<std::size_t>{4, 64, 128}
                  : std::vector<std::size_t>{48, 48, 48},
        11);
    const Field r = c.decompress(c.compress(f, rel(1e-3)), 1);
    EXPECT_TRUE(check_value_range_bound(f, r, 1e-3)) << name;
  }
}

TEST(Sz3, TruncatedBlobThrows) {
  Compressor& c = compressor("SZ3");
  Bytes blob = c.compress(smooth_field_2d(), rel(1e-3));
  blob.resize(blob.size() * 2 / 3);
  EXPECT_THROW(c.decompress(blob, 1), CorruptStream);
}

}  // namespace
}  // namespace eblcio
