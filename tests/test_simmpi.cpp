// simmpi runtime tests: point-to-point ordering, collectives, simulated
// clock synchronization, error propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "common/error.h"
#include "compressors/compressor.h"
#include "parallel/simmpi.h"
#include "test_util.h"

namespace eblcio {
namespace {

TEST(SimMpi, SingleRankRuns) {
  int visited = 0;
  SimMpiWorld::run(1, [&](Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    visited = 1;
  });
  EXPECT_EQ(visited, 1);
}

TEST(SimMpi, PointToPointFifoOrder) {
  std::vector<double> received;
  SimMpiWorld::run(2, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) comm.send_double(1, 5, i * 1.5);
    } else {
      for (int i = 0; i < 10; ++i) received.push_back(comm.recv_double(0, 5));
    }
  });
  ASSERT_EQ(received.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(received[i], i * 1.5);
}

TEST(SimMpi, TagsAreIndependentChannels) {
  double a = 0, b = 0;
  SimMpiWorld::run(2, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_double(1, 2, 22.0);
      comm.send_double(1, 1, 11.0);
    } else {
      a = comm.recv_double(0, 1);  // receive tag 1 first despite send order
      b = comm.recv_double(0, 2);
    }
  });
  EXPECT_DOUBLE_EQ(a, 11.0);
  EXPECT_DOUBLE_EQ(b, 22.0);
}

TEST(SimMpi, AllreduceSum) {
  std::vector<double> results(8, -1);
  SimMpiWorld::run(8, [&](Communicator& comm) {
    results[comm.rank()] =
        comm.allreduce_sum(static_cast<double>(comm.rank() + 1));
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 36.0);  // 1+..+8
}

TEST(SimMpi, AllreduceMax) {
  std::vector<double> results(5, -1);
  SimMpiWorld::run(5, [&](Communicator& comm) {
    results[comm.rank()] =
        comm.allreduce_max(static_cast<double>((comm.rank() * 7) % 5));
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 4.0);
}

TEST(SimMpi, GatherAtRoot) {
  std::vector<double> gathered;
  SimMpiWorld::run(6, [&](Communicator& comm) {
    auto g = comm.gather(static_cast<double>(comm.rank() * comm.rank()), 2);
    if (comm.rank() == 2) gathered = g;
    else EXPECT_TRUE(g.empty());
  });
  ASSERT_EQ(gathered.size(), 6u);
  for (int r = 0; r < 6; ++r) EXPECT_DOUBLE_EQ(gathered[r], r * r);
}

TEST(SimMpi, Broadcast) {
  std::vector<int> ok(4, 0);
  SimMpiWorld::run(4, [&](Communicator& comm) {
    Bytes data;
    if (comm.rank() == 1) {
      const double v = 3.25;
      data.resize(8);
      std::memcpy(data.data(), &v, 8);
    }
    const Bytes out = comm.bcast(std::move(data), 1);
    double v = 0;
    ASSERT_EQ(out.size(), 8u);
    std::memcpy(&v, out.data(), 8);
    if (v == 3.25) ok[comm.rank()] = 1;
  });
  for (int o : ok) EXPECT_EQ(o, 1);
}

TEST(SimMpi, BarrierSynchronizesClocksToMax) {
  std::vector<double> times(4, 0);
  SimMpiWorld::run(4, [&](Communicator& comm) {
    comm.advance_time(static_cast<double>(comm.rank()) * 2.0);  // 0,2,4,6
    comm.barrier();
    times[comm.rank()] = comm.sim_time();
  });
  for (double t : times) EXPECT_DOUBLE_EQ(t, 6.0);
}

TEST(SimMpi, ClockAccumulatesAcrossPhases) {
  SimMpiWorld::run(2, [&](Communicator& comm) {
    comm.advance_time(1.0);
    comm.barrier();
    comm.advance_time(0.5);
    comm.barrier();
    EXPECT_DOUBLE_EQ(comm.sim_time(), 1.5);
  });
}

TEST(SimMpi, ManyRanksScale) {
  std::atomic<int> count{0};
  SimMpiWorld::run(64, [&](Communicator& comm) {
    (void)comm.allreduce_sum(1.0);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(SimMpi, RanksMayFanOutOnExecutor) {
  // Regression: a rank that fans slab tasks onto the shared pool
  // (threads > 1) and then joins a collective must not deadlock. Helping
  // waiters only run tasks of their own group, so a rank's parallel_for
  // can never pull a peer's rank body onto its stack and strand a
  // collective.
  const Field f = test::smooth_field_3d(32);
  std::atomic<int> done{0};
  SimMpiWorld::run(4, [&](Communicator& comm) {
    CompressOptions opt;
    opt.error_bound = 1e-3;
    opt.threads = 4;
    const Bytes blob = compressor("SZx").compress(f, opt);
    const double total = comm.allreduce_sum(static_cast<double>(blob.size()));
    EXPECT_GT(total, 0.0);
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 4);
}

TEST(SimMpi, RankExceptionPropagates) {
  EXPECT_THROW(
      SimMpiWorld::run(1,
                       [](Communicator&) { throw InvalidArgument("boom"); }),
      InvalidArgument);
}

TEST(SimMpi, RejectsBadRankCount) {
  EXPECT_THROW(SimMpiWorld::run(0, [](Communicator&) {}), InvalidArgument);
}

TEST(SimMpi, RejectsBadPeer) {
  SimMpiWorld::run(2, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.send_double(5, 0, 1.0), InvalidArgument);
      comm.send_double(1, 0, 1.0);  // unblock peer
    } else {
      (void)comm.recv_double(0, 0);
    }
  });
}

}  // namespace
}  // namespace eblcio
