// Shared fixtures/helpers for the eblcio test suite.
#pragma once

#include <cmath>
#include <vector>

#include "common/field.h"
#include "common/rng.h"

namespace eblcio::test {

// Small smooth 3D field (sum of sines + mild noise): friendly to every
// predictor, good for ratio sanity checks.
inline Field smooth_field_3d(std::size_t n = 32, std::uint64_t seed = 7) {
  NdArray<float> arr(Shape{n, n, n});
  Rng rng(seed);
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t y = 0; y < n; ++y)
      for (std::size_t x = 0; x < n; ++x)
        arr.at(z, y, x) = static_cast<float>(
            std::sin(0.21 * z) * std::cos(0.13 * y) + 0.5 * std::sin(0.08 * x) +
            0.01 * rng.normal());
  return Field("smooth3d", std::move(arr));
}

inline Field smooth_field_2d(std::size_t n = 64, std::uint64_t seed = 7) {
  NdArray<float> arr(Shape{n, n});
  Rng rng(seed);
  for (std::size_t y = 0; y < n; ++y)
    for (std::size_t x = 0; x < n; ++x)
      arr.at(y, x) = static_cast<float>(std::sin(0.17 * y) * std::cos(0.11 * x) +
                                        0.01 * rng.normal());
  return Field("smooth2d", std::move(arr));
}

inline Field noisy_field_1d(std::size_t n = 4096, std::uint64_t seed = 11) {
  NdArray<float> arr(Shape{n});
  Rng rng(seed);
  double v = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v = 0.95 * v + rng.normal();
    arr[i] = static_cast<float>(v);
  }
  return Field("noisy1d", std::move(arr));
}

inline Field double_field_4d(std::size_t s = 6, std::size_t n = 16,
                             std::uint64_t seed = 3) {
  NdArray<double> arr(Shape{s, n, n, n});
  Rng rng(seed);
  for (std::size_t w = 0; w < s; ++w)
    for (std::size_t z = 0; z < n; ++z)
      for (std::size_t y = 0; y < n; ++y)
        for (std::size_t x = 0; x < n; ++x)
          arr.at(w, z, y, x) =
              std::tanh(0.2 * (static_cast<double>(z) - 8.0) + 0.05 * w) +
              0.02 * std::sin(0.3 * x + 0.2 * y) + 0.001 * rng.normal();
  return Field("double4d", std::move(arr));
}

inline Field constant_field(std::size_t n = 1000, float value = 42.5f) {
  NdArray<float> arr(Shape{n});
  for (std::size_t i = 0; i < n; ++i) arr[i] = value;
  return Field("constant", std::move(arr));
}

// Field with extreme dynamic range (exercise value-range bounds).
inline Field spiky_field(std::size_t n = 2048, std::uint64_t seed = 5) {
  NdArray<float> arr(Shape{n});
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i)
    arr[i] = static_cast<float>(std::exp(6.0 * rng.next_double()) - 1.0);
  return Field("spiky", std::move(arr));
}

}  // namespace eblcio::test
