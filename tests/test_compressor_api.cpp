// Uniform compressor API tests: registry, capabilities, blob framing,
// cross-codec dispatch.
#include <gtest/gtest.h>

#include "compressors/compressor.h"
#include "metrics/error_stats.h"
#include "test_util.h"

namespace eblcio {
namespace {

using test::noisy_field_1d;
using test::smooth_field_2d;
using test::smooth_field_3d;

TEST(Registry, AllPaperCodecsPresent) {
  for (const std::string& name : eblc_names())
    EXPECT_EQ(compressor(name).name(), name);
  for (const std::string& name : lossless_names())
    EXPECT_EQ(compressor(name).name(), name);
  EXPECT_EQ(eblc_names().size(), 5u);
  EXPECT_EQ(lossless_names().size(), 4u);
}

TEST(Registry, CaseInsensitiveLookup) {
  EXPECT_EQ(compressor("sz3").name(), "SZ3");
  EXPECT_EQ(compressor("ZfP").name(), "ZFP");
  EXPECT_EQ(compressor("qoz").name(), "QoZ");
}

TEST(Registry, UnknownCodecThrows) {
  EXPECT_THROW(compressor("nope"), InvalidArgument);
}

TEST(Registry, AllNamesListsNine) {
  EXPECT_EQ(all_compressor_names().size(), 9u);
}

TEST(Caps, MatchPaperRestrictions) {
  EXPECT_EQ(compressor("QoZ").caps().min_dims, 2);
  EXPECT_EQ(compressor("SZ2").caps().parallel_dims_mask, 0b0110u);
  EXPECT_FALSE(compressor("ZFP").caps().parallel_decompress);
  EXPECT_TRUE(compressor("SZx").caps().parallel_decompress);
  for (const std::string& name : lossless_names())
    EXPECT_TRUE(compressor(name).caps().lossless) << name;
}

TEST(Caps, SupportsChecksThreadsAndDims) {
  CompressOptions serial;
  CompressOptions parallel;
  parallel.threads = 8;
  EXPECT_TRUE(compressor("SZ2").supports(noisy_field_1d(), serial));
  EXPECT_FALSE(compressor("SZ2").supports(noisy_field_1d(), parallel));
  EXPECT_FALSE(compressor("QoZ").supports(noisy_field_1d(), serial));
  EXPECT_TRUE(compressor("QoZ").supports(smooth_field_2d(), parallel));
}

TEST(BlobFraming, DecompressAnyDispatchesByHeader) {
  const Field f = smooth_field_3d();
  CompressOptions o;
  o.error_bound = 1e-3;
  for (const std::string& name : eblc_names()) {
    if (!compressor(name).supports(f, o)) continue;
    const Bytes blob = compressor(name).compress(f, o);
    const BlobHeader h = peek_header(blob);
    EXPECT_EQ(h.codec, name);
    const Field r = decompress_any(blob);
    EXPECT_TRUE(check_value_range_bound(f, r, 1e-3)) << name;
  }
}

TEST(BlobFraming, HeaderRoundTrip) {
  BlobHeader h;
  h.codec = "SZ3";
  h.dtype = DType::kFloat64;
  h.dims = {11, 500, 500, 500};
  h.abs_error_bound = 0.125;
  h.requested_mode = BoundMode::kValueRangeRel;
  h.requested_bound = 1e-3;
  Bytes b;
  h.encode(b);
  ByteReader r(b);
  const BlobHeader d = BlobHeader::decode(r);
  EXPECT_EQ(d.codec, h.codec);
  EXPECT_EQ(d.dtype, h.dtype);
  EXPECT_EQ(d.dims, h.dims);
  EXPECT_DOUBLE_EQ(d.abs_error_bound, h.abs_error_bound);
  EXPECT_EQ(d.requested_mode, h.requested_mode);
  EXPECT_DOUBLE_EQ(d.requested_bound, h.requested_bound);
  EXPECT_EQ(d.num_elements(), 11u * 500 * 500 * 500);
}

TEST(BlobFraming, GarbageBlobThrows) {
  Bytes garbage(64, std::byte{0x5a});
  EXPECT_THROW(decompress_any(garbage), CorruptStream);
  EXPECT_THROW(peek_header(garbage), CorruptStream);
}

TEST(BoundConversion, ValueRangeRelUsesSpan) {
  NdArray<float> arr(Shape{2});
  arr[0] = -50.f;
  arr[1] = 50.f;
  const Field f("t", std::move(arr));
  CompressOptions o;
  o.mode = BoundMode::kValueRangeRel;
  o.error_bound = 1e-2;
  EXPECT_DOUBLE_EQ(absolute_bound_for(f, o), 1.0);  // 0.01 * 100
  o.mode = BoundMode::kAbsolute;
  o.error_bound = 0.25;
  EXPECT_DOUBLE_EQ(absolute_bound_for(f, o), 0.25);
  o.mode = BoundMode::kLossless;
  EXPECT_DOUBLE_EQ(absolute_bound_for(f, o), 0.0);
}

}  // namespace
}  // namespace eblcio
