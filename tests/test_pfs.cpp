// PFS simulator tests: striping correctness, bandwidth/latency model,
// contention behaviour (the Fig. 12 mechanism).
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "io/pfs.h"

namespace eblcio {
namespace {

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes b(n);
  for (auto& x : b) x = static_cast<std::byte>(rng.next_below(256));
  return b;
}

TEST(Pfs, WriteReadRoundTrip) {
  PfsSimulator pfs;
  const Bytes data = random_bytes(3u << 20, 1);  // 3 MB: several stripes
  pfs.write_file("/a/b", data, 1);
  EXPECT_TRUE(pfs.exists("/a/b"));
  EXPECT_EQ(pfs.file_size("/a/b"), data.size());
  EXPECT_EQ(pfs.read_file("/a/b"), data);
}

TEST(Pfs, EmptyFile) {
  PfsSimulator pfs;
  pfs.write_file("/empty", {}, 1);
  EXPECT_EQ(pfs.read_file("/empty").size(), 0u);
}

TEST(Pfs, OverwriteReplacesContent) {
  PfsSimulator pfs;
  pfs.write_file("/f", random_bytes(1000, 2), 1);
  const Bytes second = random_bytes(500, 3);
  pfs.write_file("/f", second, 1);
  EXPECT_EQ(pfs.read_file("/f"), second);
}

TEST(Pfs, MissingFileThrows) {
  PfsSimulator pfs;
  EXPECT_THROW(pfs.read_file("/nope"), InvalidArgument);
  EXPECT_THROW(pfs.file_size("/nope"), InvalidArgument);
}

TEST(Pfs, RemoveAndList) {
  PfsSimulator pfs;
  pfs.write_file("/x", random_bytes(10, 4), 1);
  pfs.write_file("/y", random_bytes(10, 5), 1);
  EXPECT_EQ(pfs.list_files().size(), 2u);
  pfs.remove("/x");
  EXPECT_FALSE(pfs.exists("/x"));
  EXPECT_EQ(pfs.list_files().size(), 1u);
}

TEST(Pfs, StripesSpreadAcrossOsts) {
  PfsConfig cfg;
  cfg.stripe_count = 4;
  cfg.num_osts = 8;
  PfsSimulator pfs(cfg);
  pfs.write_file("/big", random_bytes(8u << 20, 6), 1);  // 8 stripes
  const auto usage = pfs.ost_usage();
  int used = 0;
  for (auto u : usage)
    if (u > 0) ++used;
  EXPECT_EQ(used, 4);  // exactly stripe_count OSTs carry data
}

TEST(Pfs, WriteTimeScalesWithBytes) {
  PfsSimulator pfs;
  const auto small = pfs.write_file("/s", random_bytes(1u << 20, 7), 1);
  const auto large = pfs.write_file("/l", random_bytes(64u << 20, 8), 1);
  EXPECT_GT(large.seconds, small.seconds * 10);
}

TEST(Pfs, SmallWritesDominatedByLatency) {
  PfsSimulator pfs;
  const auto tiny = pfs.write_file("/t", random_bytes(1024, 9), 1);
  EXPECT_GE(tiny.seconds, pfs.config().open_latency_s);
  EXPECT_LT(tiny.seconds, pfs.config().open_latency_s * 3);
}

TEST(Pfs, ContentionReducesPerClientBandwidth) {
  PfsSimulator pfs;
  double prev_bw = 1e18;
  for (int clients : {1, 8, 64, 512}) {
    const double t = pfs.transfer_seconds(32u << 20, clients);
    const double bw = (32.0 * (1u << 20)) / t;
    EXPECT_LT(bw, prev_bw * 1.001);
    prev_bw = bw;
  }
}

TEST(Pfs, AggregateCapacitySaturates) {
  // The Fig. 12 jump: once clients * demand exceeds aggregate PFS
  // bandwidth, per-client time grows ~linearly with client count.
  PfsSimulator pfs;
  const std::size_t bytes = 64u << 20;
  const double t256 = pfs.transfer_seconds(bytes, 256);
  const double t512 = pfs.transfer_seconds(bytes, 512);
  EXPECT_GT(t512, t256 * 1.8);  // near-linear growth in the saturated regime
  // While 1 -> 2 clients is barely affected (client-link bound).
  const double t1 = pfs.transfer_seconds(bytes, 1);
  const double t2 = pfs.transfer_seconds(bytes, 2);
  EXPECT_LT(t2, t1 * 1.3);
}

TEST(Pfs, ReadCostMatchesContentionModel) {
  PfsSimulator pfs;
  pfs.write_file("/r", random_bytes(8u << 20, 10), 1);
  const auto solo = pfs.read_cost("/r", 1);
  const auto busy = pfs.read_cost("/r", 256);
  EXPECT_GT(busy.seconds, solo.seconds);
  EXPECT_EQ(solo.bytes, 8u << 20);
}

// --- ranged reads (the fetch mirror of append_file) -------------------------

TEST(PfsRead, RangeMatchesFileContent) {
  PfsSimulator pfs;
  const Bytes data = random_bytes(3u << 20, 11);  // spans several stripes
  pfs.write_file("/rr", data, 1);
  // Extents chosen to hit: inside one stripe, across a stripe boundary,
  // the file head, and the exact tail.
  const std::size_t stripe = pfs.config().stripe_size;
  const std::pair<std::size_t, std::size_t> extents[] = {
      {100, 5000},
      {stripe - 10, 20},
      {0, stripe},
      {data.size() - 777, 777},
  };
  for (const auto& [off, len] : extents) {
    const auto r = pfs.read_range("/rr", off, len);
    ASSERT_EQ(r.data.size(), len);
    EXPECT_TRUE(std::equal(r.data.begin(), r.data.end(),
                           data.begin() + off));
    EXPECT_EQ(r.cost.bytes, len);
    EXPECT_GT(r.cost.seconds, 0.0);
  }
}

TEST(PfsRead, RangePastEofThrows) {
  PfsSimulator pfs;
  pfs.write_file("/rr", random_bytes(1000, 12), 1);
  EXPECT_THROW(pfs.read_range("/rr", 500, 501), InvalidArgument);
  EXPECT_THROW(pfs.read_range("/rr", 1001, 0), InvalidArgument);
  // Overflow-safe: offset near SIZE_MAX must not wrap past the check.
  EXPECT_THROW(pfs.read_range("/rr", ~std::size_t{0} - 4, 10),
               InvalidArgument);
  EXPECT_THROW(pfs.read_range("/missing", 0, 1), InvalidArgument);
}

TEST(PfsRead, PricingIsSymmetricWithAppends) {
  // Reads pay open/metadata once per open and a per-touched-stripe RPC —
  // the same mechanism appends pay — instead of a flat whole-file cost.
  PfsSimulator pfs;
  const std::size_t stripe = pfs.config().stripe_size;
  pfs.write_file("/sym", random_bytes(4 * stripe, 13), 1);

  // An opened ranged fetch within one stripe: one RPC + transfer.
  const auto one = pfs.read_range("/sym", 10, 1000, 1, /*pay_open=*/false);
  EXPECT_NEAR(one.cost.seconds,
              pfs.config().rpc_latency_s + 1000.0 / one.cost.effective_bw_bps,
              1e-12);
  // The same extent across a stripe boundary: two RPCs.
  const auto two =
      pfs.read_range("/sym", stripe - 500, 1000, 1, /*pay_open=*/false);
  EXPECT_NEAR(two.cost.seconds - one.cost.seconds, pfs.config().rpc_latency_s,
              1e-12);
  // A fresh open adds exactly the open/metadata charge.
  const auto opened = pfs.read_range("/sym", 10, 1000, 1, /*pay_open=*/true);
  EXPECT_NEAR(opened.cost.seconds - one.cost.seconds,
              pfs.config().open_latency_s + pfs.config().mds_service_s,
              1e-12);
}

TEST(PfsRead, StreamPaysOpenOnce) {
  PfsSimulator pfs;
  pfs.write_file("/st", random_bytes(1u << 20, 14), 1);
  auto stream = pfs.open_read("/st");
  EXPECT_EQ(stream.size(), 1u << 20);
  const auto first = stream.read(0, 4096);
  const auto second = stream.read(4096, 4096);
  // Identical extents, but only the first fetch paid the open.
  EXPECT_GT(first.cost.seconds, second.cost.seconds);
  EXPECT_NEAR(first.cost.seconds - second.cost.seconds,
              pfs.config().open_latency_s + pfs.config().mds_service_s,
              1e-12);
  EXPECT_EQ(stream.bytes_read(), 8192u);
  EXPECT_NEAR(stream.seconds_total(), first.cost.seconds + second.cost.seconds,
              1e-12);
  EXPECT_THROW(pfs.open_read("/missing"), InvalidArgument);
}

TEST(PfsRead, WholeFileReadCostCountsStripes) {
  // read_cost = open + one RPC per stripe + transfer, matching what the
  // stripes-touched accounting of an equivalent append sequence paid.
  PfsSimulator pfs;
  const std::size_t stripe = pfs.config().stripe_size;
  pfs.write_file("/wf", random_bytes(5 * stripe + 100, 15), 1);
  const auto cost = pfs.read_cost("/wf", 1);
  const double expected =
      pfs.config().open_latency_s + pfs.config().mds_service_s +
      6 * pfs.config().rpc_latency_s +
      static_cast<double>(5 * stripe + 100) / cost.effective_bw_bps;
  EXPECT_NEAR(cost.seconds, expected, 1e-12);
}

TEST(PfsRead, ReaderRegistryTracksScopes) {
  PfsSimulator pfs;
  EXPECT_EQ(pfs.concurrent_readers(), 0);
  {
    PfsSimulator::ReaderScope a(pfs, 3);
    EXPECT_EQ(pfs.concurrent_readers(), 3);
    {
      PfsSimulator::ReaderScope b(pfs, 2);
      EXPECT_EQ(pfs.concurrent_readers(), 5);
    }
    EXPECT_EQ(pfs.concurrent_readers(), 3);
  }
  EXPECT_EQ(pfs.concurrent_readers(), 0);
  EXPECT_EQ(pfs.peak_concurrent_readers(), 5);
  pfs.reset_reader_peak();
  EXPECT_EQ(pfs.peak_concurrent_readers(), 0);
  EXPECT_THROW(PfsSimulator::ReaderScope(pfs, 0), InvalidArgument);
}

TEST(Pfs, RejectsBadConfig) {
  PfsConfig cfg;
  cfg.stripe_count = 20;
  cfg.num_osts = 8;
  EXPECT_THROW(PfsSimulator{cfg}, InvalidArgument);
}

}  // namespace
}  // namespace eblcio
