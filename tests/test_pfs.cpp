// PFS simulator tests: striping correctness, bandwidth/latency model,
// contention behaviour (the Fig. 12 mechanism).
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "io/pfs.h"

namespace eblcio {
namespace {

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes b(n);
  for (auto& x : b) x = static_cast<std::byte>(rng.next_below(256));
  return b;
}

TEST(Pfs, WriteReadRoundTrip) {
  PfsSimulator pfs;
  const Bytes data = random_bytes(3u << 20, 1);  // 3 MB: several stripes
  pfs.write_file("/a/b", data, 1);
  EXPECT_TRUE(pfs.exists("/a/b"));
  EXPECT_EQ(pfs.file_size("/a/b"), data.size());
  EXPECT_EQ(pfs.read_file("/a/b"), data);
}

TEST(Pfs, EmptyFile) {
  PfsSimulator pfs;
  pfs.write_file("/empty", {}, 1);
  EXPECT_EQ(pfs.read_file("/empty").size(), 0u);
}

TEST(Pfs, OverwriteReplacesContent) {
  PfsSimulator pfs;
  pfs.write_file("/f", random_bytes(1000, 2), 1);
  const Bytes second = random_bytes(500, 3);
  pfs.write_file("/f", second, 1);
  EXPECT_EQ(pfs.read_file("/f"), second);
}

TEST(Pfs, MissingFileThrows) {
  PfsSimulator pfs;
  EXPECT_THROW(pfs.read_file("/nope"), InvalidArgument);
  EXPECT_THROW(pfs.file_size("/nope"), InvalidArgument);
}

TEST(Pfs, RemoveAndList) {
  PfsSimulator pfs;
  pfs.write_file("/x", random_bytes(10, 4), 1);
  pfs.write_file("/y", random_bytes(10, 5), 1);
  EXPECT_EQ(pfs.list_files().size(), 2u);
  pfs.remove("/x");
  EXPECT_FALSE(pfs.exists("/x"));
  EXPECT_EQ(pfs.list_files().size(), 1u);
}

TEST(Pfs, StripesSpreadAcrossOsts) {
  PfsConfig cfg;
  cfg.stripe_count = 4;
  cfg.num_osts = 8;
  PfsSimulator pfs(cfg);
  pfs.write_file("/big", random_bytes(8u << 20, 6), 1);  // 8 stripes
  const auto usage = pfs.ost_usage();
  int used = 0;
  for (auto u : usage)
    if (u > 0) ++used;
  EXPECT_EQ(used, 4);  // exactly stripe_count OSTs carry data
}

TEST(Pfs, WriteTimeScalesWithBytes) {
  PfsSimulator pfs;
  const auto small = pfs.write_file("/s", random_bytes(1u << 20, 7), 1);
  const auto large = pfs.write_file("/l", random_bytes(64u << 20, 8), 1);
  EXPECT_GT(large.seconds, small.seconds * 10);
}

TEST(Pfs, SmallWritesDominatedByLatency) {
  PfsSimulator pfs;
  const auto tiny = pfs.write_file("/t", random_bytes(1024, 9), 1);
  EXPECT_GE(tiny.seconds, pfs.config().open_latency_s);
  EXPECT_LT(tiny.seconds, pfs.config().open_latency_s * 3);
}

TEST(Pfs, ContentionReducesPerClientBandwidth) {
  PfsSimulator pfs;
  double prev_bw = 1e18;
  for (int clients : {1, 8, 64, 512}) {
    const double t = pfs.transfer_seconds(32u << 20, clients);
    const double bw = (32.0 * (1u << 20)) / t;
    EXPECT_LT(bw, prev_bw * 1.001);
    prev_bw = bw;
  }
}

TEST(Pfs, AggregateCapacitySaturates) {
  // The Fig. 12 jump: once clients * demand exceeds aggregate PFS
  // bandwidth, per-client time grows ~linearly with client count.
  PfsSimulator pfs;
  const std::size_t bytes = 64u << 20;
  const double t256 = pfs.transfer_seconds(bytes, 256);
  const double t512 = pfs.transfer_seconds(bytes, 512);
  EXPECT_GT(t512, t256 * 1.8);  // near-linear growth in the saturated regime
  // While 1 -> 2 clients is barely affected (client-link bound).
  const double t1 = pfs.transfer_seconds(bytes, 1);
  const double t2 = pfs.transfer_seconds(bytes, 2);
  EXPECT_LT(t2, t1 * 1.3);
}

TEST(Pfs, ReadCostMatchesContentionModel) {
  PfsSimulator pfs;
  pfs.write_file("/r", random_bytes(8u << 20, 10), 1);
  const auto solo = pfs.read_cost("/r", 1);
  const auto busy = pfs.read_cost("/r", 256);
  EXPECT_GT(busy.seconds, solo.seconds);
  EXPECT_EQ(solo.bytes, 8u << 20);
}

TEST(Pfs, RejectsBadConfig) {
  PfsConfig cfg;
  cfg.stripe_count = 20;
  cfg.num_osts = 8;
  EXPECT_THROW(PfsSimulator{cfg}, InvalidArgument);
}

}  // namespace
}  // namespace eblcio
