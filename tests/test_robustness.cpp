// Failure-injection and robustness properties across the whole codec and
// container surface: truncated blobs, bit flips, determinism, and
// idempotence. A decoder facing corrupt input must either throw an
// eblcio::Error or return a correctly-shaped field — never crash or hang.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compressors/compressor.h"
#include "io/h5lite.h"
#include "io/nclite.h"
#include "metrics/error_stats.h"
#include "test_util.h"

namespace eblcio {
namespace {

using test::smooth_field_2d;
using test::smooth_field_3d;

CompressOptions options_for(const std::string& codec) {
  CompressOptions o;
  if (compressor(codec).caps().lossless) {
    o.mode = BoundMode::kLossless;
  } else {
    o.mode = BoundMode::kValueRangeRel;
    o.error_bound = 1e-3;
  }
  return o;
}

class CodecRobustness : public ::testing::TestWithParam<std::string> {};

TEST_P(CodecRobustness, TruncationNeverCrashes) {
  Compressor& c = compressor(GetParam());
  const Field f = smooth_field_2d(48);
  const Bytes blob = c.compress(f, options_for(GetParam()));

  Rng rng(1234);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t cut = rng.next_below(blob.size());
    Bytes truncated(blob.begin(), blob.begin() + cut);
    try {
      const Field r = c.decompress(truncated, 1);
      // If decoding "succeeded", the shape must still be coherent.
      EXPECT_LE(r.num_elements(), f.num_elements());
    } catch (const Error&) {
      // Expected: structured failure.
    }
  }
}

TEST_P(CodecRobustness, BitFlipsNeverCrash) {
  Compressor& c = compressor(GetParam());
  const Field f = smooth_field_2d(48);
  const Bytes blob = c.compress(f, options_for(GetParam()));

  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    Bytes mutated = blob;
    // Flip a byte somewhere after the codec name so dispatch still works.
    const std::size_t pos = 16 + rng.next_below(mutated.size() - 16);
    mutated[pos] ^= static_cast<std::byte>(1u << rng.next_below(8));
    try {
      const Field r = c.decompress(mutated, 1);
      (void)r;
    } catch (const Error&) {
    }
  }
}

TEST_P(CodecRobustness, CompressionIsDeterministic) {
  Compressor& c = compressor(GetParam());
  const Field f = smooth_field_3d(24);
  const auto opt = options_for(GetParam());
  const Bytes a = c.compress(f, opt);
  const Bytes b = c.compress(f, opt);
  EXPECT_EQ(a, b);
}

TEST_P(CodecRobustness, DecompressOfDecompressedIsStable) {
  // Idempotence on the reconstruction: compressing the reconstruction at
  // the same bound and decompressing again must stay within 2x the bound
  // of the original (and exactly the bound of the first reconstruction).
  Compressor& c = compressor(GetParam());
  if (c.caps().lossless) GTEST_SKIP();
  const Field f = smooth_field_3d(24);
  const auto opt = options_for(GetParam());
  const Field r1 = c.decompress(c.compress(f, opt), 1);
  const Field r2 = c.decompress(c.compress(r1, opt), 1);
  const auto st = compute_error_stats(f, r2);
  EXPECT_LE(st.max_abs_error,
            2.0 * 1e-3 * f.value_range().span() * (1 + 1e-6));
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecRobustness,
    ::testing::Values("SZ2", "SZ3", "ZFP", "QoZ", "SZx", "zstd", "C-Blosc2",
                      "fpzip", "FPC"));

TEST(ContainerRobustness, H5LiteTruncation) {
  H5LiteFile file;
  H5Dataset d;
  d.name = "x";
  d.dtype_code = 2;
  d.dims = {4096};
  d.data = Bytes(4096, std::byte{0x41});
  file.add_dataset(std::move(d));
  const Bytes good = file.encode();
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    Bytes cut(good.begin(),
              good.begin() + rng.next_below(good.size()));
    EXPECT_THROW(H5LiteFile::decode(cut), Error);
  }
}

TEST(ContainerRobustness, NcLiteTruncation) {
  NcLiteFile file;
  NcVariable v;
  v.name = "x";
  v.dtype_code = 2;
  v.dims = {4096};
  v.data = Bytes(4096, std::byte{0x42});
  file.add_variable(std::move(v));
  const Bytes good = file.encode();
  Rng rng(8);
  for (int trial = 0; trial < 30; ++trial) {
    Bytes cut(good.begin(),
              good.begin() + rng.next_below(good.size()));
    EXPECT_THROW(NcLiteFile::decode(cut), Error);
  }
}

TEST(CrossCodec, WrongCodecHeaderIsRejectedOrStructured) {
  // Feed an SZ3 blob to SZx's decoder: the self-describing header carries
  // "SZ3", and dispatch via decompress_any is correct, but a direct call
  // on the wrong codec must fail in a structured way if it fails.
  const Field f = smooth_field_2d(32);
  CompressOptions o;
  o.error_bound = 1e-3;
  const Bytes sz3 = compressor("SZ3").compress(f, o);
  try {
    const Field r = compressor("SZx").decompress(sz3, 1);
    (void)r;
  } catch (const Error&) {
  }
  // decompress_any must always route correctly.
  const Field ok = decompress_any(sz3);
  EXPECT_TRUE(check_value_range_bound(f, ok, 1e-3));
}

TEST(CrossCodec, AllCodecsRoundTripAllDTypes) {
  CompressOptions lossy;
  lossy.error_bound = 1e-3;
  CompressOptions lossless;
  lossless.mode = BoundMode::kLossless;
  for (const std::string& name : all_compressor_names()) {
    Compressor& c = compressor(name);
    for (DType dt : {DType::kFloat32, DType::kFloat64}) {
      Field f;
      if (dt == DType::kFloat32) {
        f = smooth_field_3d(16);
      } else {
        NdArray<double> arr(Shape{16, 16, 16});
        for (std::size_t i = 0; i < arr.num_elements(); ++i)
          arr[i] = std::sin(0.1 * static_cast<double>(i));
        f = Field("d3", std::move(arr));
      }
      const auto& opt = c.caps().lossless ? lossless : lossy;
      const Field r = c.decompress(c.compress(f, opt), 1);
      EXPECT_EQ(r.dtype(), dt) << name;
      EXPECT_EQ(r.shape(), f.shape()) << name;
      if (!c.caps().lossless)
        EXPECT_TRUE(check_value_range_bound(f, r, 1e-3)) << name;
    }
  }
}

}  // namespace
}  // namespace eblcio
