// Composable codec framework (compressors/composed.h) test grid.
//
// Five suites:
//  * ComposedNames      — codec-name round-trip and registry routing;
//  * QuantizerTies      — the reciprocal-multiply half-integer-tie fix:
//                         LinearQuantizer's code choice is locked to the
//                         exact-divide DivLinearQuantizer at ties, scalar
//                         and row paths alike (ISSUE PR-8 satellite);
//  * LogQuantizerBound  — per-element bound property of the log quantizer;
//  * ComposedGrid       — differential round-trip of EVERY predictor x
//                         quantizer x encoder combination, rank 1D-4D,
//                         float and double, three error bounds, with
//                         decode determinism across thread counts and
//                         serial==parallel sweep parity;
//  * ComposedFuzz       — corrupt-stream handling: truncations, forged
//                         component ids, component/payload mismatches and
//                         mid-stage damage must raise CorruptStream, never
//                         return a partial Field.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <vector>

#include "common/error.h"
#include "common/field.h"
#include "common/rng.h"
#include "compressors/backend.h"
#include "compressors/composed.h"
#include "compressors/compressor.h"
#include "compressors/quantizer.h"
#include "core/decision.h"
#include "core/sweep.h"

namespace eblcio {
namespace {

// Deterministic smooth-ish test field (decaying walk + ramp), pure Rng
// arithmetic — the same construction the reference-blob suite uses.
template <typename T>
Field make_field(const std::vector<std::size_t>& dims, std::uint64_t seed) {
  NdArray<T> arr(Shape{std::span<const std::size_t>(dims)});
  Rng rng(seed);
  double v = 0.0;
  const std::size_t d_last = dims.back();
  std::size_t i = 0;
  for (auto& x : arr.span()) {
    v = 0.96 * v + (rng.next_double() - 0.5);
    const double ramp = 0.05 * static_cast<double>(i % d_last);
    x = static_cast<T>(v + ramp);
    ++i;
  }
  return Field("grid", std::move(arr));
}

std::uint64_t fnv1a(std::span<const std::byte> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

template <typename T>
void expect_within_bound(const Field& orig, const Field& back,
                         double abs_eb) {
  auto a = orig.as<T>().span();
  auto b = back.as<T>().span();
  ASSERT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double err = std::fabs(static_cast<double>(a[i]) -
                                 static_cast<double>(b[i]));
    worst = std::max(worst, err);
    ASSERT_LE(err, abs_eb) << "element " << i << " out of bound";
  }
  // Sanity: the bound is actually exercised, not trivially zero.
  EXPECT_GT(worst, 0.0);
}

// --- ComposedNames ---------------------------------------------------------

TEST(ComposedNames, NameRoundTripAllConfigs) {
  const auto grid = all_composed_configs();
  ASSERT_EQ(grid.size(),
            static_cast<std::size_t>(kNumPredictors) * kNumQuantizers *
                kNumEncoders);
  std::set<std::string> names;
  for (const auto& config : grid) {
    const std::string name = composed_codec_name(config);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    const auto parsed = parse_composed_codec_name(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, config) << name;
    // The registry materializes the config on demand, under its own name.
    EXPECT_EQ(compressor(name).name(), name);
  }
}

TEST(ComposedNames, MalformedNamesRejected) {
  const char* bad[] = {
      "composed:",
      "composed:lorenzo1",
      "composed:lorenzo1+linear",
      "composed:lorenzo1+linear+huffman+extra",
      "composed:bogus+linear+huffman",
      "composed:lorenzo1+bogus+huffman",
      "composed:lorenzo1+linear+bogus",
      "decomposed:lorenzo1+linear+huffman",
      "lorenzo1+linear+huffman",
  };
  for (const char* name : bad) {
    EXPECT_FALSE(parse_composed_codec_name(name).has_value()) << name;
    EXPECT_THROW(compressor(name), InvalidArgument) << name;
  }
}

// --- QuantizerTies ---------------------------------------------------------

// Exact half-integer tie: diff/eb2 = 2.5 precisely. The reciprocal-multiply
// quotient 7.5 * (1/3.0) is NOT exactly 2.5, so without the tie fix the
// reciprocal path could round to 2 where the exact divide rounds (halves
// away from zero) to 3. This test locks the encoder-side code choice.
TEST(QuantizerTies, HalfIntegerTieMatchesExactDivide) {
  const double eb = 1.5;  // eb2 = 3.0, inv not exactly representable
  const LinearQuantizer recip(eb);
  const DivLinearQuantizer div(eb);

  double r1 = 0.0, r2 = 0.0;
  // +2.5 quotient: away-from-zero = 3 -> code radius + 3.
  EXPECT_EQ(recip.quantize<double>(7.5, 0.0, &r1), 32768u + 3u);
  EXPECT_EQ(div.quantize<double>(7.5, 0.0, &r2), 32768u + 3u);
  EXPECT_EQ(r1, r2);
  // -2.5 quotient: away-from-zero = -3 -> code radius - 3.
  EXPECT_EQ(recip.quantize<double>(-7.5, 0.0, &r1), 32768u - 3u);
  EXPECT_EQ(div.quantize<double>(-7.5, 0.0, &r2), 32768u - 3u);
  EXPECT_EQ(r1, r2);
}

// Sweep many constructed half-integer ties with an eb2 whose reciprocal is
// inexact; the reciprocal path must agree with the exact divide on every
// one (this is precisely the zone round_quotient_half_away re-derives).
TEST(QuantizerTies, ConstructedTieSweepAgrees) {
  const double eb = 0.3;  // eb2 = 0.6; 1/0.6 is inexact
  const LinearQuantizer recip(eb);
  const DivLinearQuantizer div(eb);
  int disagreements = 0;
  for (int k = -2000; k <= 2000; ++k) {
    // value whose quotient is as close to k + 0.5 as doubles allow
    const double value = (static_cast<double>(k) + 0.5) * (2.0 * eb);
    double r1 = 0.0, r2 = 0.0;
    const auto c1 = recip.quantize<double>(value, 0.0, &r1);
    const auto c2 = div.quantize<double>(value, 0.0, &r2);
    if (c1 != c2) ++disagreements;
    if (c1 && c1 == c2) EXPECT_EQ(r1, r2);
  }
  EXPECT_EQ(disagreements, 0);
}

// Random differential: over random (value, pred, eb) triples the
// production reciprocal quantizer and the textbook divide quantizer must
// emit identical codes and reconstructions.
TEST(QuantizerTies, RandomDifferentialRecipVsDivide) {
  Rng rng(0xd1ffULL);
  int checked = 0;
  for (int trial = 0; trial < 200000; ++trial) {
    const double eb = 1e-5 + rng.next_double() * 0.5;
    const LinearQuantizer recip(eb);
    const DivLinearQuantizer div(eb);
    const double pred = (rng.next_double() - 0.5) * 100.0;
    const double value = pred + (rng.next_double() - 0.5) * 64.0 * eb;
    double r1 = 0.0, r2 = 0.0;
    const auto c1 = recip.quantize<float>(value, pred, &r1);
    const auto c2 = div.quantize<float>(value, pred, &r2);
    ASSERT_EQ(c1, c2) << "value=" << value << " pred=" << pred
                      << " eb=" << eb;
    if (c1) {
      ASSERT_EQ(r1, r2);
      ++checked;
    }
  }
  EXPECT_GT(checked, 100000);  // the comparison actually exercised codes
}

// The vectorized row path must stay bit-identical to the scalar path even
// when the row contains half-integer ties (the any_tie redo).
TEST(QuantizerTies, RowPathMatchesScalarOnTies) {
  const double eb = 0.25;  // eb2 = 0.5 (exact, so ties are hit exactly)
  const LinearQuantizer quant(eb);
  const double row0 = 1.0, slope = 0.125;
  constexpr std::size_t kN = 64;
  double data[kN];
  Rng rng(7);
  for (std::size_t k = 0; k < kN; ++k) {
    const double pred = row0 + slope * static_cast<double>(k);
    // Every third element sits exactly on a half-integer quotient.
    data[k] = (k % 3 == 0)
                  ? pred + (static_cast<double>(k % 7) + 0.5) * 0.5
                  : pred + (rng.next_double() - 0.5) * 4.0;
  }
  std::uint32_t row_codes[kN];
  double row_recon[kN];
  quant.quantize_row<double>(data, kN, row0, slope, row_codes, row_recon);
  for (std::size_t k = 0; k < kN; ++k) {
    double r = data[k];
    const auto c = quant.quantize<double>(
        data[k], row0 + slope * static_cast<double>(k), &r);
    ASSERT_EQ(row_codes[k], c) << "row/scalar divergence at k=" << k;
    ASSERT_EQ(row_recon[k], r) << "row/scalar recon divergence at k=" << k;
  }
}

// --- LogQuantizerBound -----------------------------------------------------

TEST(LogQuantizerBound, PerElementBoundHolds) {
  Rng rng(0x10eULL);
  const double vmax = 50.0;
  for (double eb : {1e-1, 1e-3, 1e-5}) {
    const LogQuantizer quant(eb, vmax);
    int coded = 0;
    for (int trial = 0; trial < 20000; ++trial) {
      const double value = (rng.next_double() - 0.5) * 2.0 * vmax;
      const double pred = value + (rng.next_double() - 0.5) * 16.0 * eb;
      double recon = value;
      const auto code = quant.quantize<double>(value, pred, &recon);
      if (code == 0) continue;  // unpredictable: caller stores exactly
      ++coded;
      ASSERT_LE(std::fabs(recon - value), eb)
          << "value=" << value << " pred=" << pred << " eb=" << eb;
      // recover() must reproduce what quantize() promised.
      ASSERT_EQ(static_cast<double>(static_cast<double>(
                    quant.recover(pred, code))),
                recon);
    }
    EXPECT_GT(coded, 10000) << "eb=" << eb;
  }
}

// --- ComposedGrid ----------------------------------------------------------

struct GridShape {
  const char* label;
  std::vector<std::size_t> dims;
};

const std::vector<GridShape>& grid_shapes() {
  static const std::vector<GridShape> kShapes = {
      {"1d", {400}},
      {"2d", {24, 20}},
      {"3d", {12, 10, 8}},
      {"4d", {6, 6, 5, 4}},
  };
  return kShapes;
}

// One case of the differential grid: compress, enforce the per-element
// bound against the header's absolute bound, and check the decoder is
// deterministic across thread counts.
template <typename T>
void check_grid_case(Compressor& comp, const GridShape& shape, double rel_eb) {
  SCOPED_TRACE(testing::Message() << comp.name() << " " << shape.label
                                  << " eb=" << rel_eb);
  const Field f = make_field<T>(shape.dims, 0x5eedULL);
  CompressOptions opt;
  opt.mode = BoundMode::kValueRangeRel;
  opt.error_bound = rel_eb;
  const Bytes blob = comp.compress(f, opt);

  const BlobHeader header = peek_header(blob);
  EXPECT_EQ(header.codec, comp.name());
  ASSERT_GT(header.abs_error_bound, 0.0);

  const Field back = comp.decompress(blob, 1);
  ASSERT_EQ(back.shape(), f.shape());
  ASSERT_EQ(back.dtype(), f.dtype());
  expect_within_bound<T>(f, back, header.abs_error_bound);

  // Decode determinism across --jobs: byte-identical reconstructions.
  const Field back3 = comp.decompress(blob, 3);
  ASSERT_EQ(back3.shape(), f.shape());
  EXPECT_TRUE(std::equal(back.bytes().begin(), back.bytes().end(),
                         back3.bytes().begin(), back3.bytes().end()))
      << "decode differs between 1 and 3 threads";
}

// Every predictor x quantizer x encoder combination, every rank 1D-4D,
// float and double, three relative bounds — per-element error within the
// header bound everywhere.
TEST(ComposedGrid, AllCombosRoundTripWithinBound) {
  for (const auto& config : all_composed_configs()) {
    Compressor& comp = compressor(composed_codec_name(config));
    for (const auto& shape : grid_shapes()) {
      for (double rel_eb : {1e-2, 1e-3, 1e-4}) {
        check_grid_case<float>(comp, shape, rel_eb);
        check_grid_case<double>(comp, shape, rel_eb);
      }
    }
  }
}

// Chunked (multi-slab) layout round-trip: the quantizer parameter is
// computed whole-field, so chunked blobs must still honour the bound and
// decode identically at any thread count.
TEST(ComposedGrid, ChunkedRoundTrip) {
  const Field f = make_field<float>({32, 16, 12}, 0x5eedULL);
  for (const auto& config : all_composed_configs()) {
    // One chunked case per (predictor, quantizer) pair keeps runtime sane;
    // encoders are exercised exhaustively by the serial grid above.
    if (config.encoder != EncoderId::kHuffmanLz) continue;
    Compressor& comp = compressor(composed_codec_name(config));
    SCOPED_TRACE(comp.name());
    CompressOptions opt;
    opt.error_bound = 1e-3;
    opt.threads = 4;
    const Bytes blob = comp.compress(f, opt);
    const Field back4 = comp.decompress(blob, 4);
    ASSERT_EQ(back4.shape(), f.shape());
    expect_within_bound<float>(f, back4, peek_header(blob).abs_error_bound);
    const Field back1 = comp.decompress(blob, 1);
    EXPECT_TRUE(std::equal(back4.bytes().begin(), back4.bytes().end(),
                           back1.bytes().begin(), back1.bytes().end()));
  }
}

// Serial and parallel sweeps over the full grid must produce bit-identical
// blobs cell for cell (core/sweep.h's options.parallel toggle).
TEST(ComposedGrid, SweepSerialParallelParity) {
  const Field f = make_field<float>({16, 16, 16}, 0x5eedULL);
  auto eval = [&](const ComposedConfig& config, SweepCellContext&) {
    CompressOptions opt;
    opt.error_bound = 1e-3;
    return fnv1a(compressor(composed_codec_name(config)).compress(f, opt));
  };
  SweepOptions serial_opts;
  serial_opts.parallel = false;
  const auto serial = sweep_grid(all_composed_configs(), eval, serial_opts);
  SweepOptions parallel_opts;
  parallel_opts.parallel = true;
  const auto parallel = sweep_grid(all_composed_configs(), eval,
                                   parallel_opts);

  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  serial.rethrow_first_error();
  parallel.rethrow_first_error();
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    ASSERT_TRUE(serial.cells[i].ok());
    ASSERT_TRUE(parallel.cells[i].ok());
    EXPECT_EQ(*serial.cells[i].result, *parallel.cells[i].result)
        << composed_codec_name(serial.cells[i].cell);
  }
}

// advise_compression routes composed configurations as sweep cells: given
// >= 8 composed codec names it trials each (codec, bound) pair, streams
// progress in domain order, and ranks the candidates.
TEST(ComposedGrid, AdvisorRanksComposedConfigs) {
  const Field f = make_field<float>({24, 24, 24}, 0x5eedULL);
  AdvisorConstraints constraints;
  constraints.objective = Objective::kMaxRatio;  // time-independent score
  constraints.psnr_min_db = 20.0;
  constraints.error_bounds = {1e-2, 1e-3};
  constraints.codecs = {
      "composed:lorenzo1+linear-recip+huffman-lz",
      "composed:lorenzo1+linear+huffman",
      "composed:lorenzo1+log+huffman-lut",
      "composed:lorenzo2+linear-recip+huffman",
      "composed:lorenzo2+linear+lz",
      "composed:regression+linear-recip+huffman-lz",
      "composed:interp-cubic+linear-recip+huffman",
      "composed:interp-cubic+log+huffman-lz",
      "composed:interp-linear+linear+raw",
  };

  std::size_t calls = 0, last_done = 0;
  const auto report = advise_compression(
      f, constraints,
      [&](const AdvisorCandidate&, std::size_t done, std::size_t total) {
        // Streamed in domain order with monotone running progress.
        EXPECT_EQ(total, constraints.codecs.size() *
                             constraints.error_bounds.size());
        EXPECT_EQ(done, last_done + 1);
        last_done = done;
        ++calls;
      });
  EXPECT_EQ(calls,
            constraints.codecs.size() * constraints.error_bounds.size());
  ASSERT_EQ(report.candidates.size(), calls);
  // Ranked by descending score.
  for (std::size_t i = 1; i < report.candidates.size(); ++i)
    EXPECT_GE(report.candidates[i - 1].score, report.candidates[i].score);
  // A feasible recommendation exists and is one of the composed names.
  ASSERT_FALSE(report.recommendation.codec.empty());
  EXPECT_TRUE(report.recommendation.codec.starts_with("composed:"));
  EXPECT_TRUE(report.recommendation.feasible);
  // Serial execution reproduces the same ranking data exactly.
  AdvisorConstraints serial_constraints = constraints;
  serial_constraints.parallel = false;
  const auto serial_report = advise_compression(f, serial_constraints);
  ASSERT_EQ(serial_report.candidates.size(), report.candidates.size());
  for (std::size_t i = 0; i < report.candidates.size(); ++i) {
    EXPECT_EQ(serial_report.candidates[i].codec,
              report.candidates[i].codec);
    EXPECT_EQ(serial_report.candidates[i].error_bound,
              report.candidates[i].error_bound);
    EXPECT_EQ(serial_report.candidates[i].ratio,
              report.candidates[i].ratio);
    EXPECT_EQ(serial_report.candidates[i].psnr_db,
              report.candidates[i].psnr_db);
  }
}

// --- ComposedFuzz ----------------------------------------------------------

struct ComposedBlobMap {
  Bytes blob;
  std::size_t payload_off = 0;    // first byte of the chunk payload
  std::size_t code_blob_off = 0;  // first byte of the encoder blob (its tag)
  std::size_t ncodes_off = 0;     // the payload's u64 code count
};

// Builds a serial composed blob and locates the payload landmarks the
// fuzz cases flip bytes at.
ComposedBlobMap mapped_blob(const std::string& codec_name) {
  ComposedBlobMap m;
  const Field f = make_field<float>({16, 12, 10}, 0x5eedULL);
  CompressOptions opt;
  opt.error_bound = 1e-3;
  m.blob = compressor(codec_name).compress(f, opt);

  // Serial layout: [BlobHeader][u8 kLayoutSingle][u64 size][payload].
  Bytes header_bytes;
  peek_header(m.blob).encode(header_bytes);
  m.payload_off = header_bytes.size() + 1 + 8;

  // Payload: [12B component header][u64 ncodes][3 sized streams][code blob]
  // for the block family, [u64 ncodes][2 sized streams][code blob] for the
  // interp family — walk the sized streams to find the encoder blob.
  const bool interp = codec_name.find("interp") != std::string::npos;
  ByteReader r(std::span<const std::byte>(m.blob).subspan(m.payload_off));
  r.read_pod<std::uint8_t>();  // version
  r.read_pod<std::uint8_t>();  // predictor
  r.read_pod<std::uint8_t>();  // quantizer
  r.read_pod<std::uint8_t>();  // encoder
  r.read_pod<double>();        // quant_param
  m.ncodes_off = m.payload_off + r.pos();
  r.read_pod<std::uint64_t>();  // ncodes
  for (int i = 0; i < (interp ? 2 : 3); ++i) read_sized(r);
  m.code_blob_off = m.payload_off + r.pos();
  EXPECT_LT(m.code_blob_off, m.blob.size());
  return m;
}

void expect_corrupt(const Bytes& blob, const char* what) {
  SCOPED_TRACE(what);
  EXPECT_THROW(decompress_any(blob, 1), CorruptStream);
  // Parallel decode paths must reject it identically.
  EXPECT_THROW(decompress_any(blob, 3), CorruptStream);
}

Bytes with_byte(const Bytes& blob, std::size_t off, std::uint8_t value) {
  Bytes mutated = blob;
  mutated[off] = static_cast<std::byte>(value);
  return mutated;
}

TEST(ComposedFuzz, TruncationsRaiseCorruptStream) {
  const auto m = mapped_blob("composed:lorenzo1+linear-recip+huffman");
  // Truncate inside the blob header, at the layout byte, inside the
  // component header, mid sized-streams, and inside the code blob.
  const std::size_t cuts[] = {m.payload_off - 9,      // inside the u64 size
                              m.payload_off,          // payload absent
                              m.payload_off + 6,      // mid component header
                              m.ncodes_off + 3,       // mid code count
                              m.code_blob_off - 1,    // code blob absent
                              m.code_blob_off + 2,    // mid code blob
                              m.blob.size() - 1};     // last byte missing
  for (std::size_t cut : cuts) {
    ASSERT_LT(cut, m.blob.size());
    Bytes truncated(m.blob.begin(),
                    m.blob.begin() + static_cast<std::ptrdiff_t>(cut));
    SCOPED_TRACE(testing::Message() << "cut at " << cut);
    EXPECT_THROW(decompress_any(truncated, 1), CorruptStream);
  }
  // Header-only truncation can't even name a codec.
  Bytes tiny(m.blob.begin(), m.blob.begin() + 3);
  EXPECT_THROW(decompress_any(tiny, 1), Error);
}

TEST(ComposedFuzz, ForgedComponentHeaderRaiseCorruptStream) {
  const auto m = mapped_blob("composed:lorenzo1+linear-recip+huffman");
  const std::size_t version_off = m.payload_off;
  const std::size_t pred_off = m.payload_off + 1;
  const std::size_t quant_off = m.payload_off + 2;
  const std::size_t enc_off = m.payload_off + 3;

  expect_corrupt(with_byte(m.blob, version_off, 0xFF), "bad version");
  expect_corrupt(with_byte(m.blob, pred_off, 200), "predictor out of range");
  expect_corrupt(with_byte(m.blob, quant_off, 77), "quantizer out of range");
  expect_corrupt(with_byte(m.blob, enc_off, 99), "encoder out of range");
  // Valid-but-different ids: the payload names a component triple that
  // contradicts the blob header's codec string.
  expect_corrupt(
      with_byte(m.blob, pred_off,
                static_cast<std::uint8_t>(PredictorId::kLorenzo2)),
      "forged valid predictor");
  expect_corrupt(with_byte(m.blob, quant_off,
                           static_cast<std::uint8_t>(QuantizerId::kLog)),
                 "forged valid quantizer");
  expect_corrupt(with_byte(m.blob, enc_off,
                           static_cast<std::uint8_t>(EncoderId::kRaw)),
                 "forged valid encoder");
  // Non-finite quantizer parameter (a NaN double's top byte).
  Bytes nan_param = m.blob;
  const double nan = std::nan("");
  std::memcpy(nan_param.data() + m.payload_off + 4, &nan, sizeof nan);
  expect_corrupt(nan_param, "non-finite quant param");
}

TEST(ComposedFuzz, EncoderPayloadMismatchRaisesCorruptStream) {
  // The component header says "huffman" but the code blob's wire tag says
  // otherwise: caught before any entropy decode runs.
  const auto m = mapped_blob("composed:lorenzo1+linear-recip+huffman");
  expect_corrupt(with_byte(m.blob, m.code_blob_off, 0xEE),
                 "invalid backend tag");
  expect_corrupt(with_byte(m.blob, m.code_blob_off, kBackendRaw),
                 "valid but mismatched backend tag");
}

TEST(ComposedFuzz, ForgedCodeCountRaisesCorruptStream) {
  const auto m = mapped_blob("composed:lorenzo1+linear-recip+huffman");
  // Block payloads carry one code per element; +1 must be rejected.
  std::uint64_t ncodes = 0;
  std::memcpy(&ncodes, m.blob.data() + m.ncodes_off, sizeof ncodes);
  Bytes forged = m.blob;
  const std::uint64_t bumped = ncodes + 1;
  std::memcpy(forged.data() + m.ncodes_off, &bumped, sizeof bumped);
  expect_corrupt(forged, "code count mismatch");
}

TEST(ComposedFuzz, InterpFamilyFuzz) {
  const auto m = mapped_blob("composed:interp-cubic+log+huffman-lz");
  expect_corrupt(with_byte(m.blob, m.payload_off, 0xFF), "bad version");
  expect_corrupt(
      with_byte(m.blob, m.payload_off + 1,
                static_cast<std::uint8_t>(PredictorId::kInterpLinear)),
      "forged interp predictor");
  expect_corrupt(with_byte(m.blob, m.code_blob_off, 0xEE),
                 "invalid backend tag");
  for (std::size_t cut :
       {m.payload_off + 6, m.code_blob_off + 1, m.blob.size() - 1}) {
    Bytes truncated(m.blob.begin(),
                    m.blob.begin() + static_cast<std::ptrdiff_t>(cut));
    SCOPED_TRACE(testing::Message() << "cut at " << cut);
    EXPECT_THROW(decompress_any(truncated, 1), CorruptStream);
  }
}

}  // namespace
}  // namespace eblcio
