// Strong-scaling driver tests: correctness at every thread count and the
// per-codec scaling shapes the paper documents (Fig. 10 mechanisms).
#include <gtest/gtest.h>

#include <algorithm>

#include "parallel/omp_pipeline.h"
#include "test_util.h"

namespace eblcio {
namespace {

using test::smooth_field_3d;

TEST(OmpPipeline, ThreadSweepMatchesPaper) {
  const auto& sweep = paper_thread_sweep();
  ASSERT_EQ(sweep.size(), 7u);
  EXPECT_EQ(sweep.front(), 1);
  EXPECT_EQ(sweep.back(), 64);
  for (std::size_t i = 1; i < sweep.size(); ++i)
    EXPECT_EQ(sweep[i], sweep[i - 1] * 2);  // powers of two (Sec. IV-C)
}

class OmpCodecs : public ::testing::TestWithParam<std::string> {};

TEST_P(OmpCodecs, BoundHoldsAtEveryThreadCount) {
  const Field f = smooth_field_3d(40);
  for (int threads : {1, 2, 8}) {
    const auto r = run_omp_pipeline(GetParam(), f, 1e-3, threads,
                                    /*verify=*/true);
    EXPECT_TRUE(r.bound_ok) << GetParam() << " threads=" << threads;
    EXPECT_GT(r.ratio(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllEblcs, OmpCodecs,
                         ::testing::Values("SZ2", "SZ3", "ZFP", "QoZ",
                                           "SZx"));

TEST(OmpPipeline, ThreadSweepReusesSharedPoolAndAccounts) {
  const Field f = smooth_field_3d(24);
  const auto results = run_thread_sweep("SZx", f, 1e-3, {1, 2, 4});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].threads, 1);
  EXPECT_EQ(results[2].threads, 4);
  // Parallel cells dispatch slab tasks onto the shared executor and the
  // per-cell accounting captures them; serial cells dispatch none.
  EXPECT_EQ(results[0].tasks_dispatched, 0u);
  EXPECT_GT(results[2].tasks_dispatched, 0u);
  EXPECT_GT(results[2].task_seconds, 0.0);
  for (const auto& r : results) EXPECT_GT(r.ratio(), 1.0);
}

TEST(OmpPipeline, ReportsSizes) {
  const Field f = smooth_field_3d(32);
  const auto r = run_omp_pipeline("SZx", f, 1e-3, 4);
  EXPECT_EQ(r.original_bytes, f.size_bytes());
  EXPECT_GT(r.compressed_bytes, 0u);
  EXPECT_EQ(r.threads, 4);
  EXPECT_GT(r.compress_seconds, 0.0);
  EXPECT_GT(r.decompress_seconds, 0.0);
}

TEST(OmpPipeline, SzxParallelIsNotPathological) {
  // Quantitative speedup factors belong to the Fig. 10 bench (this host is
  // shared, so wall-clock ratios are too noisy for a hard unit assertion).
  // Here we only guard against a pathological parallel path: 8 threads must
  // not be meaningfully slower than serial on a sizeable field.
  const Field f = smooth_field_3d(96);
  auto best = [&](int threads) {
    double t = 1e9;
    for (int i = 0; i < 3; ++i)
      t = std::min(t, run_omp_pipeline("SZx", f, 1e-3, threads)
                          .compress_seconds);
    return t;
  };
  EXPECT_LT(best(8), best(1) * 1.5);
}

}  // namespace
}  // namespace eblcio
