// Energy substrate tests: CPU catalogue (Table I), power model, RAPL
// counters, PAPI-style monitor.
#include <gtest/gtest.h>

#include "common/error.h"
#include "energy/cpu_model.h"
#include "energy/powercap_monitor.h"
#include "energy/rapl_sim.h"
#include "parallel/executor.h"

namespace eblcio {
namespace {

TEST(CpuCatalog, TableOneEntries) {
  const auto& cat = cpu_catalog();
  ASSERT_EQ(cat.size(), 3u);
  EXPECT_EQ(cpu_model("8260M").cores, 96);
  EXPECT_DOUBLE_EQ(cpu_model("8260M").tdp_w, 165.0);
  EXPECT_EQ(cpu_model("9480").cores, 112);
  EXPECT_DOUBLE_EQ(cpu_model("9480").tdp_w, 350.0);
  EXPECT_EQ(cpu_model("8160").cores, 48);
  EXPECT_DOUBLE_EQ(cpu_model("8160").tdp_w, 270.0);
}

TEST(CpuCatalog, LookupIsSubstringAndCaseInsensitive) {
  EXPECT_EQ(cpu_model("xeon cpu max").name, "Intel Xeon CPU Max 9480");
  EXPECT_THROW(cpu_model("EPYC"), InvalidArgument);
}

TEST(CpuModel, PaperOrdinalClaims) {
  // Newer CPU = faster and more energy-efficient (paper Sec. V-A):
  // Sapphire Rapids < Skylake < Cascade Lake in serial-task energy.
  const auto& spr = cpu_model("9480");
  const auto& skl = cpu_model("8160");
  const auto& clx = cpu_model("8260M");
  EXPECT_GT(spr.speed_factor, skl.speed_factor);
  EXPECT_GT(skl.speed_factor, clx.speed_factor);
  // Energy of a fixed serial task: P(1 core) * (t / speed).
  auto serial_energy = [](const CpuModel& c) {
    return c.node_power_w(1) / c.speed_factor;
  };
  EXPECT_LT(serial_energy(spr), serial_energy(skl));
  EXPECT_LT(serial_energy(skl), serial_energy(clx));
}

TEST(CpuModel, PowerMonotoneInThreadsAndCapped) {
  const auto& cpu = cpu_model("9480");
  double prev = 0.0;
  for (int t : {0, 1, 8, 32, 112}) {
    const double p = cpu.node_power_w(t);
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_LE(cpu.node_power_w(10000), cpu.packages * cpu.tdp_w);
  // Idle floor.
  EXPECT_DOUBLE_EQ(cpu.node_power_w(0), cpu.packages * cpu.idle_w);
}

TEST(CpuModel, IoPowerAboveIdleBelowBusy) {
  for (const auto& cpu : cpu_catalog()) {
    EXPECT_GT(cpu.io_power_w(), cpu.node_power_w(0));
    EXPECT_LT(cpu.io_power_w(), cpu.node_power_w(cpu.cores));
  }
}

TEST(Rapl, EnergyAccumulatesAcrossPackages) {
  RaplSimulator rapl;
  rapl.advance(2.0, 100.0);  // 200 J total, 100 J per package
  EXPECT_NEAR(rapl.total_joules(), 200.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(rapl.package_energy_uj(0)), 100e6, 1.0);
  EXPECT_NEAR(static_cast<double>(rapl.package_energy_uj(1)), 100e6, 1.0);
  EXPECT_DOUBLE_EQ(rapl.elapsed_seconds(), 2.0);
}

TEST(Rapl, CountersWrapAt32BitMicrojoules) {
  RaplSimulator rapl;
  // Push ~3000 J per package: 3e9 uJ < 2^32 (~4.29e9): no wrap yet.
  rapl.advance(30.0, 200.0);
  const auto before = rapl.package_energy_uj(0);
  // Another 2000 J per package wraps the 32-bit counter.
  rapl.advance(40.0, 100.0);
  const auto after = rapl.package_energy_uj(0);
  EXPECT_LT(after, before);  // wrapped
  EXPECT_NEAR(rapl.total_joules(), 30 * 200 + 40 * 100, 1e-6);
}

TEST(Rapl, RejectsNegativeInput) {
  RaplSimulator rapl;
  EXPECT_THROW(rapl.advance(-1.0, 10.0), InvalidArgument);
  EXPECT_THROW(rapl.advance(1.0, -10.0), InvalidArgument);
}

TEST(Monitor, ComputePhaseDilatesBySpeedFactor) {
  const auto& cpu = cpu_model("9480");  // speed 1.35
  PowercapMonitor mon(cpu);
  const auto r = mon.record_compute("compress", 1.35, 1);
  EXPECT_NEAR(r.seconds, 1.0, 1e-9);
  EXPECT_NEAR(r.joules, cpu.node_power_w(1) * 1.0, cpu.node_power_w(1) * 0.02);
  EXPECT_GT(r.samples, 50);  // 10 ms sampling over 1 s
}

TEST(Monitor, EnergyIsSumOfSampledPower) {
  const auto& cpu = cpu_model("8160");
  PowercapMonitor mon(cpu, 0.01);
  mon.record_compute("a", 0.5, 4);
  mon.record_io("b", 0.25);
  const auto total = mon.total();
  const double expect = cpu.node_power_w(4) * 0.5 + cpu.io_power_w() * 0.25;
  EXPECT_NEAR(total.joules, expect, expect * 0.02);
  EXPECT_EQ(mon.phases().size(), 2u);
  EXPECT_EQ(mon.phases()[0].label, "a");
}

TEST(Monitor, MoreThreadsShorterButHotter) {
  // Same host-measured work parallelized: if runtime halves and power
  // less than doubles, energy drops — the Fig. 10 mechanism.
  const auto& cpu = cpu_model("9480");
  PowercapMonitor m1(cpu), m2(cpu);
  const auto serial = m1.record_compute("c", 8.0, 1);
  const auto parallel = m2.record_compute("c", 1.0, 8);  // perfect speedup
  EXPECT_LT(parallel.seconds, serial.seconds);
  EXPECT_LT(parallel.joules, serial.joules);
}

TEST(Dvfs, PowerScalesSuperlinearlyActiveOnly) {
  const auto& cpu = cpu_model("9480");
  // Idle floor is frequency independent.
  EXPECT_DOUBLE_EQ(cpu.node_power_w_at(0, 0.5), cpu.node_power_w(0));
  // Active power at half frequency is well below half nominal (~f^2.4).
  const double idle = cpu.node_power_w(0);
  const double active_nominal = cpu.node_power_w_at(16, 1.0) - idle;
  const double active_half = cpu.node_power_w_at(16, 0.5) - idle;
  EXPECT_LT(active_half, active_nominal * 0.25);
  EXPECT_THROW(cpu.node_power_w_at(1, 0.0), InvalidArgument);
}

TEST(Dvfs, EnergyOptimalFrequencyIsInterior) {
  // With a non-trivial idle floor, E(f) = P(f) * t/f has an interior
  // minimum: slower wastes idle energy, faster pays the f^2.4 premium.
  const auto& cpu = cpu_model("9480");
  const double t_nominal = 10.0;
  const int cores = 32;
  double best_f = 0.0, best_e = 1e300;
  for (double f = 0.4; f <= 1.6; f += 0.05) {
    const double e = cpu.compute_energy_j(t_nominal, cores, f);
    if (e < best_e) {
      best_e = e;
      best_f = f;
    }
  }
  EXPECT_GT(best_f, 0.45);
  EXPECT_LT(best_f, 1.55);
  EXPECT_LT(best_e, cpu.compute_energy_j(t_nominal, cores, 0.4));
  EXPECT_LT(best_e, cpu.compute_energy_j(t_nominal, cores, 1.6));
}

TEST(Monitor, ConcurrentChargesAccumulateExactly) {
  // Regression: the streaming pipeline and simmpi ranks charge one monitor
  // from concurrent tasks. Every phase must land and the joules must equal
  // the serial sum — lost updates would silently shrink Fig. 11/12 energy.
  const auto& cpu = cpu_model("9480");
  PowercapMonitor expected(cpu);
  for (int i = 0; i < 8; ++i) expected.record_compute("phase", 0.13, 2);

  PowercapMonitor mon(cpu);
  TaskGroup group;
  for (int i = 0; i < 8; ++i)
    group.run([&] { mon.record_compute("phase", 0.13, 2); });
  group.wait();

  EXPECT_EQ(mon.phases().size(), 8u);
  EXPECT_NEAR(mon.total().joules, expected.total().joules, 1e-9);
  EXPECT_NEAR(mon.total().seconds, expected.total().seconds, 1e-12);
  EXPECT_EQ(mon.total().samples, expected.total().samples);
}

TEST(Monitor, ConcurrentMixedPhasesAllLand) {
  const auto& cpu = cpu_model("8160");
  PowercapMonitor mon(cpu);
  TaskGroup group;
  for (int i = 0; i < 4; ++i) {
    group.run([&] { mon.record_compute("c", 0.05, 4); });
    group.run([&] { mon.record_io("w", 0.05); });
  }
  group.wait();
  EXPECT_EQ(mon.phases().size(), 8u);
  const double expect =
      4 * cpu.node_power_w(4) * 0.05 / cpu.speed_factor +
      4 * cpu.io_power_w() * 0.05;
  EXPECT_NEAR(mon.total().joules, expect, expect * 0.02);
}

TEST(Monitor, ResetClearsState) {
  PowercapMonitor mon(default_cpu());
  mon.record_io("x", 1.0);
  mon.reset();
  EXPECT_EQ(mon.phases().size(), 0u);
  EXPECT_DOUBLE_EQ(mon.total().joules, 0.0);
}

}  // namespace
}  // namespace eblcio
