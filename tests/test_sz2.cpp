// SZ2 compressor tests: Lorenzo/regression block prediction, bound
// guarantees, the paper's documented OpenMP restrictions.
#include <gtest/gtest.h>

#include "compressors/compressor.h"
#include "metrics/error_stats.h"
#include "test_util.h"

namespace eblcio {
namespace {

using test::constant_field;
using test::double_field_4d;
using test::noisy_field_1d;
using test::smooth_field_2d;
using test::smooth_field_3d;

CompressOptions rel(double eb, int threads = 1) {
  CompressOptions o;
  o.mode = BoundMode::kValueRangeRel;
  o.error_bound = eb;
  o.threads = threads;
  return o;
}

class Sz2Bound
    : public ::testing::TestWithParam<std::tuple<double, std::string>> {};

TEST_P(Sz2Bound, GuaranteesValueRangeBound) {
  const auto [eb, which] = GetParam();
  Field f;
  if (which == "1d") f = noisy_field_1d();
  else if (which == "2d") f = smooth_field_2d();
  else if (which == "3d") f = smooth_field_3d();
  else f = double_field_4d();

  Compressor& c = compressor("SZ2");
  const Field r = c.decompress(c.compress(f, rel(eb)), 1);
  EXPECT_TRUE(check_value_range_bound(f, r, eb)) << which << " eb=" << eb;
}

INSTANTIATE_TEST_SUITE_P(
    BoundSweep, Sz2Bound,
    ::testing::Combine(::testing::Values(1e-1, 1e-2, 1e-3, 1e-4, 1e-5),
                       ::testing::Values("1d", "2d", "3d", "4d")));

TEST(Sz2, RegressionHelpsOnLinearRamp) {
  // A plane ramp is exactly a regression plane: SZ2 should compress it
  // dramatically (all residuals ~0 under the regression predictor).
  NdArray<float> arr(Shape{64, 64});
  for (std::size_t y = 0; y < 64; ++y)
    for (std::size_t x = 0; x < 64; ++x)
      arr.at(y, x) = 3.0f * y - 2.0f * x + 10.0f;
  const Field f("ramp", std::move(arr));
  Compressor& c = compressor("SZ2");
  const Bytes blob = c.compress(f, rel(1e-4));
  EXPECT_GT(compression_ratio(f.size_bytes(), blob.size()), 15.0);
  EXPECT_TRUE(check_value_range_bound(f, c.decompress(blob, 1), 1e-4));
}

TEST(Sz2, OpenMpRejects1dAnd4d) {
  // Paper Sec. IV-C: "the OpenMP version of SZ2 is not capable of
  // compressing 1D or 4D data."
  Compressor& c = compressor("SZ2");
  EXPECT_THROW(c.compress(noisy_field_1d(), rel(1e-3, 4)), Unsupported);
  EXPECT_THROW(c.compress(double_field_4d(), rel(1e-3, 4)), Unsupported);
  // Serial mode handles both fine.
  EXPECT_NO_THROW(c.compress(noisy_field_1d(), rel(1e-3, 1)));
}

TEST(Sz2, OpenMpWorksFor2dAnd3d) {
  Compressor& c = compressor("SZ2");
  for (int threads : {2, 4}) {
    const Field f2 = smooth_field_2d();
    EXPECT_TRUE(check_value_range_bound(
        f2, c.decompress(c.compress(f2, rel(1e-3, threads)), threads), 1e-3));
    const Field f3 = smooth_field_3d();
    EXPECT_TRUE(check_value_range_bound(
        f3, c.decompress(c.compress(f3, rel(1e-3, threads)), threads), 1e-3));
  }
}

TEST(Sz2, ConstantField) {
  Compressor& c = compressor("SZ2");
  const Field f = constant_field(50000);
  const Bytes blob = c.compress(f, rel(1e-3));
  EXPECT_LT(blob.size(), f.size_bytes() / 100);
  EXPECT_TRUE(check_value_range_bound(f, c.decompress(blob, 1), 1e-3));
}

TEST(Sz2, RatioDecreasesWithTighterBound) {
  Compressor& c = compressor("SZ2");
  const Field f = smooth_field_3d(48);
  std::size_t prev = 0;
  for (double eb : {1e-1, 1e-3, 1e-5}) {
    const std::size_t size = c.compress(f, rel(eb)).size();
    EXPECT_GE(size, prev);
    prev = size;
  }
}

TEST(Sz2, NonBlockAlignedDims) {
  NdArray<float> arr(Shape{7, 19, 11});
  for (std::size_t i = 0; i < arr.num_elements(); ++i)
    arr[i] = 0.01f * static_cast<float>((i * 37) % 101);
  const Field f("odd", std::move(arr));
  Compressor& c = compressor("SZ2");
  const Field r = c.decompress(c.compress(f, rel(1e-3)), 1);
  EXPECT_TRUE(check_value_range_bound(f, r, 1e-3));
  EXPECT_EQ(r.shape(), f.shape());
}

TEST(Sz2, DecompressIsDeterministic) {
  Compressor& c = compressor("SZ2");
  const Field f = smooth_field_3d();
  const Bytes blob = c.compress(f, rel(1e-3));
  const Field a = c.decompress(blob, 1);
  const Field b = c.decompress(blob, 1);
  for (std::size_t i = 0; i < a.num_elements(); ++i)
    EXPECT_EQ(a.as<float>()[i], b.as<float>()[i]);
}

TEST(Sz2, TruncatedBlobThrows) {
  Compressor& c = compressor("SZ2");
  Bytes blob = c.compress(smooth_field_2d(), rel(1e-3));
  blob.resize(blob.size() / 2);
  EXPECT_THROW(c.decompress(blob, 1), CorruptStream);
}

}  // namespace
}  // namespace eblcio
