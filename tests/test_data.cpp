// Data-set generator tests: catalogue integrity, determinism, statistical
// character, and the Fig. 13 inflation machinery.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "data/dataset.h"
#include "data/inflate.h"
#include "data/smooth_noise.h"

namespace eblcio {
namespace {

TEST(DatasetCatalog, ContainsTableTwoAndFigOneSets) {
  const auto& cat = dataset_catalog();
  for (const char* name :
       {"CESM", "HACC", "NYX", "S3D", "QMCPack", "ISABEL", "EXAFEL"}) {
    EXPECT_NO_THROW(dataset_spec(name)) << name;
  }
  EXPECT_GE(cat.size(), 7u);
}

TEST(DatasetCatalog, PaperDimensionsMatchTableTwo) {
  EXPECT_EQ(dataset_spec("CESM").paper_dims,
            (std::vector<std::size_t>{26, 1800, 3600}));
  EXPECT_EQ(dataset_spec("HACC").paper_dims,
            (std::vector<std::size_t>{280953867}));
  EXPECT_EQ(dataset_spec("NYX").paper_dims,
            (std::vector<std::size_t>{512, 512, 512}));
  EXPECT_EQ(dataset_spec("S3D").paper_dims,
            (std::vector<std::size_t>{11, 500, 500, 500}));
  EXPECT_EQ(dataset_spec("S3D").dtype, DType::kFloat64);
  EXPECT_EQ(dataset_spec("NYX").dtype, DType::kFloat32);
}

TEST(DatasetCatalog, UnknownNameThrows) {
  EXPECT_THROW(dataset_spec("NOPE"), InvalidArgument);
}

TEST(DatasetCatalog, ScaledDimsKeepFieldCount) {
  const auto dims = scaled_dims(dataset_spec("S3D"), 0.1);
  EXPECT_EQ(dims[0], 11u);  // species axis preserved
  EXPECT_EQ(dims[1], 50u);
  const auto cesm = scaled_dims(dataset_spec("CESM"), 0.1);
  EXPECT_EQ(cesm[0], 26u);  // level axis preserved
}

TEST(Generators, Deterministic) {
  const Field a = generate_dataset_dims("NYX", {16, 16, 16}, 42);
  const Field b = generate_dataset_dims("NYX", {16, 16, 16}, 42);
  const Field c = generate_dataset_dims("NYX", {16, 16, 16}, 43);
  ASSERT_EQ(a.num_elements(), b.num_elements());
  bool all_equal = true, any_diff_seed = false;
  for (std::size_t i = 0; i < a.num_elements(); ++i) {
    if (a.as<float>()[i] != b.as<float>()[i]) all_equal = false;
    if (a.as<float>()[i] != c.as<float>()[i]) any_diff_seed = true;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed);
}

TEST(Generators, DefaultSizesAreWorkable) {
  for (const char* name : {"CESM", "HACC", "NYX"}) {
    const Field f = generate_dataset(name);
    EXPECT_GT(f.num_elements(), 500000u) << name;
    EXPECT_LT(f.size_bytes(), 300u << 20) << name;
  }
}

TEST(Generators, NyxIsLogNormalWithHeavyTail) {
  const Field f = generate_dataset_dims("NYX", {48, 48, 48}, 1);
  const auto& arr = f.as<float>();
  double mean = 0, maxv = 0;
  for (std::size_t i = 0; i < arr.num_elements(); ++i) {
    EXPECT_GT(arr[i], 0.0f);
    mean += arr[i];
    maxv = std::max(maxv, static_cast<double>(arr[i]));
  }
  mean /= static_cast<double>(arr.num_elements());
  // Heavy tail: the max dominates the mean by a large factor.
  EXPECT_GT(maxv / mean, 10.0);
}

TEST(Generators, HaccIsBoundedParticleBox) {
  const Field f = generate_dataset_dims("HACC", {100000}, 2);
  const auto r = f.value_range();
  EXPECT_GE(r.min, 0.0);
  EXPECT_LE(r.max, 256.0);
  EXPECT_GT(r.span(), 100.0);  // particles spread through the box
}

TEST(Generators, CesmHasLatitudinalStructure) {
  const Field f = generate_dataset_dims("CESM", {4, 64, 128}, 3);
  const auto& arr = f.as<float>();
  // Equator rows should be warmer than pole rows on average (banding term).
  double pole = 0, equator = 0;
  for (std::size_t j = 0; j < 128; ++j) {
    pole += arr.at(0, 0, j);
    equator += arr.at(0, 32, j);
  }
  EXPECT_GT(equator, pole + 128 * 10.0);
}

TEST(Generators, S3dIsDoubleWithSpeciesScales) {
  const Field f = generate_dataset_dims("S3D", {4, 12, 12, 12}, 4);
  EXPECT_EQ(f.dtype(), DType::kFloat64);
  EXPECT_EQ(f.ndims(), 4);
}

TEST(Generators, ExafelHasSparseBrightPeaks) {
  const Field f = generate_dataset_dims("EXAFEL", {2, 128, 128}, 5);
  const auto& arr = f.as<float>();
  std::size_t bright = 0;
  for (std::size_t i = 0; i < arr.num_elements(); ++i)
    if (arr[i] > 200.0f) ++bright;
  EXPECT_GT(bright, 0u);
  EXPECT_LT(bright, arr.num_elements() / 20);  // sparse
}

TEST(SmoothNoise, BlurReducesVariationAndPreservesMean) {
  Rng rng(6);
  Shape shape{64, 64};
  auto data = white_noise(shape, rng);
  const auto n = static_cast<double>(data.size());
  double mean_before = 0;
  for (double v : data) mean_before += v;
  mean_before /= n;
  auto copy = data;
  box_blur(copy, shape, 4);
  double mean_after = 0, tv_before = 0, tv_after = 0;
  for (double v : copy) mean_after += v;
  mean_after /= n;
  for (std::size_t i = 1; i < data.size(); ++i) {
    tv_before += std::fabs(data[i] - data[i - 1]);
    tv_after += std::fabs(copy[i] - copy[i - 1]);
  }
  // Clamped boundaries shift the mean slightly; 0.05 sigma is generous.
  EXPECT_NEAR(mean_after, mean_before, 0.05);
  EXPECT_LT(tv_after, tv_before * 0.3);
}

TEST(SmoothNoise, StandardizedField) {
  Rng rng(7);
  auto g = smooth_gaussian_field(Shape{32, 32, 32}, 3, rng);
  double mean = 0, var = 0;
  for (double v : g) mean += v;
  mean /= static_cast<double>(g.size());
  for (double v : g) var += (v - mean) * (v - mean);
  var /= static_cast<double>(g.size());
  EXPECT_NEAR(mean, 0.0, 1e-9);
  EXPECT_NEAR(var, 1.0, 1e-6);
}

TEST(Inflate, DimensionsMultiply) {
  const Field base = generate_dataset_dims("NYX", {12, 12, 12}, 8);
  const Field big = inflate_field(base, 3);
  EXPECT_EQ(big.shape().dim(0), 36u);
  EXPECT_EQ(big.num_elements(), base.num_elements() * 27);
}

TEST(Inflate, FactorOneKeepsShape) {
  const Field base = generate_dataset_dims("NYX", {10, 10, 10}, 8);
  const Field same = inflate_field(base, 1);
  EXPECT_EQ(same.shape(), base.shape());
}

TEST(Inflate, PreservesValueScale) {
  const Field base = generate_dataset_dims("ISABEL", {8, 32, 32}, 9);
  const Field big = inflate_field(base, 2);
  const auto rb = base.value_range();
  const auto ri = big.value_range();
  EXPECT_NEAR(ri.min, rb.min, rb.span() * 0.2);
  EXPECT_NEAR(ri.max, rb.max, rb.span() * 0.2);
}

TEST(Inflate, RejectsBadFactor) {
  const Field base = generate_dataset_dims("NYX", {8, 8, 8}, 1);
  EXPECT_THROW(inflate_field(base, 0), InvalidArgument);
}

}  // namespace
}  // namespace eblcio
