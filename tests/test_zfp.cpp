// ZFP compressor tests: transform correctness, fixed-accuracy bound
// guarantees, the compression-only OpenMP policy.
#include <gtest/gtest.h>

#include "compressors/compressor.h"
#include "metrics/error_stats.h"
#include "test_util.h"

namespace eblcio {
namespace {

using test::constant_field;
using test::double_field_4d;
using test::noisy_field_1d;
using test::smooth_field_2d;
using test::smooth_field_3d;
using test::spiky_field;

CompressOptions rel(double eb, int threads = 1) {
  CompressOptions o;
  o.mode = BoundMode::kValueRangeRel;
  o.error_bound = eb;
  o.threads = threads;
  return o;
}

class ZfpBound
    : public ::testing::TestWithParam<std::tuple<double, std::string>> {};

TEST_P(ZfpBound, GuaranteesValueRangeBound) {
  const auto [eb, which] = GetParam();
  Field f;
  if (which == "1d") f = noisy_field_1d();
  else if (which == "2d") f = smooth_field_2d();
  else if (which == "3d") f = smooth_field_3d();
  else f = double_field_4d();

  Compressor& c = compressor("ZFP");
  const Field r = c.decompress(c.compress(f, rel(eb)), 1);
  EXPECT_TRUE(check_value_range_bound(f, r, eb)) << which << " eb=" << eb;
  EXPECT_EQ(r.shape(), f.shape());
}

INSTANTIATE_TEST_SUITE_P(
    BoundSweep, ZfpBound,
    ::testing::Combine(::testing::Values(1e-1, 1e-2, 1e-3, 1e-4, 1e-5),
                       ::testing::Values("1d", "2d", "3d", "4d")));

TEST(Zfp, AllZeroBlocksAreOneBit) {
  NdArray<float> arr(Shape{64, 64, 64});  // all zeros
  const Field f("zeros", std::move(arr));
  Compressor& c = compressor("ZFP");
  const Bytes blob = c.compress(f, rel(1e-3));
  // 4096 blocks, ~1 bit each + header: far below one byte per block * 10.
  EXPECT_LT(blob.size(), 4096u);
  const Field r = c.decompress(blob, 1);
  for (std::size_t i = 0; i < r.num_elements(); ++i)
    EXPECT_EQ(r.as<float>()[i], 0.0f);
}

TEST(Zfp, SmoothFieldCompressesWell) {
  Compressor& c = compressor("ZFP");
  const Field f = smooth_field_3d(48);
  const Bytes blob = c.compress(f, rel(1e-2));
  // ~6.5 bits/value: the 2(d+1) guard planes below the tolerance are the
  // dominant cost on noisy-smooth data, as with the reference coder.
  EXPECT_GT(compression_ratio(f.size_bytes(), blob.size()), 4.0);
}

TEST(Zfp, ErrorTracksToleranceNotJustBelowBound) {
  // Fixed-accuracy mode should use the tolerance budget: at a loose bound
  // the observed max error should be within ~3 orders of magnitude of the
  // tolerance (not e.g. lossless).
  Compressor& c = compressor("ZFP");
  const Field f = smooth_field_3d(48);
  const Field r = c.decompress(c.compress(f, rel(1e-2)), 1);
  const auto st = compute_error_stats(f, r);
  EXPECT_GT(st.max_rel_error, 1e-6);
  EXPECT_LE(st.max_rel_error, 1e-2 * (1 + 1e-9));
}

TEST(Zfp, SpikyDataRespectsBound) {
  Compressor& c = compressor("ZFP");
  const Field f = spiky_field();
  for (double eb : {1e-2, 1e-4}) {
    const Field r = c.decompress(c.compress(f, rel(eb)), 1);
    EXPECT_TRUE(check_value_range_bound(f, r, eb));
  }
}

TEST(Zfp, ConstantFieldWithinBound) {
  Compressor& c = compressor("ZFP");
  const Field f = constant_field(10000, 13.5f);
  const Field r = c.decompress(c.compress(f, rel(1e-3)), 1);
  EXPECT_TRUE(check_value_range_bound(f, r, 1e-3));
}

TEST(Zfp, NonBlockAlignedDims) {
  NdArray<float> arr(Shape{9, 17, 6});
  for (std::size_t i = 0; i < arr.num_elements(); ++i)
    arr[i] = 0.01f * static_cast<float>((i * 53) % 211);
  const Field f("odd", std::move(arr));
  Compressor& c = compressor("ZFP");
  const Field r = c.decompress(c.compress(f, rel(1e-3)), 1);
  EXPECT_TRUE(check_value_range_bound(f, r, 1e-3));
}

TEST(Zfp, ParallelCompressionMatchesSerialOutputSizeClosely) {
  Compressor& c = compressor("ZFP");
  const Field f = smooth_field_3d(48);
  const auto serial = c.compress(f, rel(1e-3, 1));
  const auto parallel = c.compress(f, rel(1e-3, 8));
  // Same blocks, same planes — only sub-stream padding differs.
  EXPECT_LT(std::abs(static_cast<long>(serial.size()) -
                     static_cast<long>(parallel.size())),
            static_cast<long>(serial.size() / 10 + 256));
  // Both decode to in-bound reconstructions.
  EXPECT_TRUE(check_value_range_bound(f, c.decompress(parallel, 1), 1e-3));
}

TEST(Zfp, DecompressIgnoresThreadArgument) {
  // zfp 1.0's OpenMP policy: decompression is serial. The thread argument
  // must not change results.
  Compressor& c = compressor("ZFP");
  const Field f = smooth_field_3d();
  const Bytes blob = c.compress(f, rel(1e-3, 4));
  const Field a = c.decompress(blob, 1);
  const Field b = c.decompress(blob, 16);
  for (std::size_t i = 0; i < a.num_elements(); ++i)
    EXPECT_EQ(a.as<float>()[i], b.as<float>()[i]);
  EXPECT_FALSE(c.caps().parallel_decompress);
}

TEST(Zfp, RatioImprovesWithLooserBound) {
  Compressor& c = compressor("ZFP");
  const Field f = smooth_field_3d(48);
  std::size_t prev = 0;
  for (double eb : {1e-1, 1e-3, 1e-5}) {
    const std::size_t size = c.compress(f, rel(eb)).size();
    EXPECT_GE(size, prev);
    prev = size;
  }
}

TEST(Zfp, DoublePrecisionPath) {
  Compressor& c = compressor("ZFP");
  const Field f = double_field_4d();
  const Field r = c.decompress(c.compress(f, rel(1e-4)), 1);
  EXPECT_EQ(r.dtype(), DType::kFloat64);
  EXPECT_TRUE(check_value_range_bound(f, r, 1e-4));
}

}  // namespace
}  // namespace eblcio
