// Seed reference blobs: 17 deterministic compression cases whose encoded
// blob AND decoded reconstruction are pinned by FNV-1a hash.
//
// The wire formats of every codec in the library are frozen: kernel
// optimizations (table-driven Huffman, multi-symbol LUT packing,
// vectorized SZ2/interp regression blocks, LZ match-finder changes) must
// not change a single emitted or reconstructed byte. These hashes were
// captured from the PR-6 seed library; any future kernel change that
// alters one is a wire-format break, not a speedup, and must be rejected
// (or, for an intentional format revision, re-pinned with a version bump
// and a migration note).
//
// Inputs are generated with pure Rng arithmetic — no libm transcendentals
// — so the cases hash identically across hosts and libm versions.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "codec/huffman.h"
#include "codec/lz77.h"
#include "codec/shuffle.h"
#include "common/field.h"
#include "common/rng.h"
#include "compressors/backend.h"
#include "compressors/block_core.h"
#include "compressors/chunking.h"
#include "compressors/compressor.h"
#include "compressors/interp_core.h"
#include "data/dataset.h"

namespace eblcio {
namespace {

std::uint64_t fnv1a(std::span<const std::byte> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

template <typename T>
std::uint64_t fnv1a_pod_span(std::span<const T> s) {
  return fnv1a(std::as_bytes(s));
}

// Smooth-ish deterministic field: a decaying random walk plus a linear
// ramp, built from Rng uniforms and plain arithmetic only. The ramp makes
// the SZ2 regression predictor win on a meaningful share of blocks, so the
// regression code path is exercised by every SZ2 case.
template <typename T>
Field make_field(const std::vector<std::size_t>& dims, std::uint64_t seed) {
  NdArray<T> arr(Shape{std::span<const std::size_t>(dims)});
  Rng rng(seed);
  double v = 0.0;
  const std::size_t d_last = dims.back();
  std::size_t i = 0;
  for (auto& x : arr.span()) {
    v = 0.96 * v + (rng.next_double() - 0.5);
    const double ramp = 0.05 * static_cast<double>(i % d_last);
    x = static_cast<T>(v + ramp);
    ++i;
  }
  return Field("ref", std::move(arr));
}

struct PinnedCase {
  const char* name;
  std::uint64_t blob_hash;
  std::uint64_t decode_hash;  // 0 when decode is checked by equality instead
};

// Hashes captured from the seed library (see file comment).
constexpr PinnedCase kPinned[] = {
    {"huffman_normal", 0x4467567e6d191f16ULL, 0},
    {"huffman_geometric", 0x755c5e6c92773666ULL, 0},
    {"lz_mixed", 0x2b45625abb3f31a3ULL, 0},
    {"shuffle_3d", 0xae76bc95179f3960ULL, 0},
    {"sz2_1d_f32", 0x160a96d25db9438bULL, 0x98e4a43170d39902ULL},
    {"sz2_2d_f32", 0x1203f1d00074f3f5ULL, 0xbc1de66adec71cb3ULL},
    {"sz2_3d_f32", 0x789d9d1365207282ULL, 0x5ca41afb46d5f560ULL},
    {"sz2_3d_f64", 0x5e4e9716ab07a95aULL, 0xf34e8330f19cc1cbULL},
    {"sz2_3d_f32_chunked", 0xbf7c701bd67a12bbULL, 0xc2c23155f71beecdULL},
    {"sz3_1d_f32", 0xabfa5d3c64676e23ULL, 0xee65a0c91555006cULL},
    {"sz3_2d_f32", 0xb53b60d67bb83b64ULL, 0x953e1a749e159d61ULL},
    {"sz3_3d_f32", 0x9183e77cd1b0ea3eULL, 0x1bb6555a58242a40ULL},
    {"qoz_2d_f32", 0x5444939602d7dcb0ULL, 0x780f12cdaea4090eULL},
    {"qoz_3d_f32", 0x285f3ed2903ef832ULL, 0x1bb6555a58242a40ULL},
    {"zfp_2d_f32", 0x05c07800c2434772ULL, 0x003f1892d7af440fULL},
    {"zfp_3d_f32", 0x2aa46e65ca097fd7ULL, 0x2c64ea576c5a5848ULL},
    {"szx_3d_f32", 0xfdae947bbd03bc52ULL, 0xb9f57fec561e5609ULL},
};

const PinnedCase& pinned(const char* name) {
  for (const auto& c : kPinned)
    if (std::string_view(c.name) == name) return c;
  ADD_FAILURE() << "no pinned case named " << name;
  static PinnedCase none{"", 0, 0};
  return none;
}

// When set, prints harvest-ready hash lines for re-pinning after an
// intentional wire-format change:
//   EBLCIO_DUMP_REF_HASHES=1 ./test_reference_blobs
bool dump_hashes() {
  static const bool dump = std::getenv("EBLCIO_DUMP_REF_HASHES") != nullptr;
  return dump;
}

void check_case(const char* name, std::uint64_t blob_hash,
                std::uint64_t decode_hash) {
  if (dump_hashes())
    std::printf("    {\"%s\", 0x%016llxULL, 0x%016llxULL},\n", name,
                static_cast<unsigned long long>(blob_hash),
                static_cast<unsigned long long>(decode_hash));
  const PinnedCase& p = pinned(name);
  EXPECT_EQ(blob_hash, p.blob_hash)
      << name << ": encoded blob changed (wire-format break)";
  EXPECT_EQ(decode_hash, p.decode_hash)
      << name << ": decoded bytes changed (decoder behaviour break)";
}

void check_codec_case(const char* name, const std::string& codec, DType dtype,
                      const std::vector<std::size_t>& dims, int threads) {
  SCOPED_TRACE(name);
  const Field f = dtype == DType::kFloat32
                      ? make_field<float>(dims, 0x5eedULL)
                      : make_field<double>(dims, 0x5eedULL);
  CompressOptions opt;
  opt.error_bound = 1e-3;
  opt.threads = threads;
  Compressor& comp = compressor(codec);
  const Bytes blob = comp.compress(f, opt);
  const Field back = comp.decompress(blob, threads);
  ASSERT_EQ(back.shape(), f.shape());
  check_case(name, fnv1a(blob), fnv1a(back.bytes()));
}

TEST(ReferenceBlobs, HuffmanNormalStream) {
  // SZ-style quantization codes: Irwin-Hall sum of uniforms approximates
  // the centered normal the entropy stage sees, with no libm calls.
  Rng rng(2);
  std::vector<std::uint32_t> syms(1 << 16);
  for (auto& s : syms) {
    double g = 0.0;
    for (int k = 0; k < 8; ++k) g += rng.next_double() - 0.5;
    double v = 32768.0 + g * 42.0;
    if (v < 0.0) v = 0.0;
    if (v > 65536.0) v = 65536.0;
    s = static_cast<std::uint32_t>(v);
  }
  const Bytes blob = huffman_encode(syms, 65537);
  ASSERT_EQ(huffman_decode(blob), syms);
  ASSERT_EQ(huffman_decode_reference(blob), syms);
  check_case("huffman_normal", fnv1a(blob), 0);
}

TEST(ReferenceBlobs, HuffmanGeometricStream) {
  // Low-entropy geometric stream: typical code lengths <= 5 bits, the
  // regime the multi-symbol LUT packs two symbols per slot for.
  Rng rng(6);
  std::vector<std::uint32_t> syms(1 << 16);
  for (auto& s : syms) {
    std::uint32_t v = 0;
    while (v < 63 && rng.next_double() < 0.5) ++v;
    s = v;
  }
  const Bytes blob = huffman_encode(syms, 64);
  ASSERT_EQ(huffman_decode(blob), syms);
  ASSERT_EQ(huffman_decode_reference(blob), syms);
  check_case("huffman_geometric", fnv1a(blob), 0);
}

TEST(ReferenceBlobs, LzMixedCorpus) {
  Rng rng(3);
  Bytes corpus;
  for (int seg = 0; seg < 48; ++seg) {
    const std::size_t len = 512 + rng.next_below(2048);
    if (seg % 3 == 0) {
      corpus.insert(corpus.end(), len,
                    static_cast<std::byte>(rng.next_below(256)));
    } else {
      for (std::size_t i = 0; i < len; ++i)
        corpus.push_back(static_cast<std::byte>(rng.next_below(16) * 17));
    }
  }
  const Bytes blob = lz_compress(corpus);
  ASSERT_EQ(lz_decompress(blob), corpus);
  check_case("lz_mixed", fnv1a(blob), 0);
}

TEST(ReferenceBlobs, ShuffleField) {
  const Field f = make_field<float>({32, 32, 32}, 0x5eedULL);
  const Bytes shuffled = shuffle_bytes(f.bytes(), 4);
  ASSERT_EQ(unshuffle_bytes(shuffled, 4),
            Bytes(f.bytes().begin(), f.bytes().end()));
  check_case("shuffle_3d", fnv1a(shuffled), 0);
}

TEST(ReferenceBlobs, Sz2) {
  check_codec_case("sz2_1d_f32", "SZ2", DType::kFloat32, {4096}, 1);
  check_codec_case("sz2_2d_f32", "SZ2", DType::kFloat32, {96, 96}, 1);
  check_codec_case("sz2_3d_f32", "SZ2", DType::kFloat32, {32, 32, 32}, 1);
  check_codec_case("sz2_3d_f64", "SZ2", DType::kFloat64, {32, 32, 32}, 1);
  // Multi-slab chunked layout: same field, 4-thread slab split.
  check_codec_case("sz2_3d_f32_chunked", "SZ2", DType::kFloat32,
                   {32, 32, 32}, 4);
}

TEST(ReferenceBlobs, Sz3) {
  check_codec_case("sz3_1d_f32", "SZ3", DType::kFloat32, {4096}, 1);
  check_codec_case("sz3_2d_f32", "SZ3", DType::kFloat32, {96, 96}, 1);
  check_codec_case("sz3_3d_f32", "SZ3", DType::kFloat32, {32, 32, 32}, 1);
}

TEST(ReferenceBlobs, QoZ) {
  check_codec_case("qoz_2d_f32", "QoZ", DType::kFloat32, {96, 96}, 1);
  check_codec_case("qoz_3d_f32", "QoZ", DType::kFloat32, {32, 32, 32}, 1);
}

TEST(ReferenceBlobs, Zfp) {
  check_codec_case("zfp_2d_f32", "ZFP", DType::kFloat32, {96, 96}, 1);
  check_codec_case("zfp_3d_f32", "ZFP", DType::kFloat32, {32, 32, 32}, 1);
}

TEST(ReferenceBlobs, Szx) {
  check_codec_case("szx_3d_f32", "SZx", DType::kFloat32, {32, 32, 32}, 1);
}

// --- Component-framework equivalence ---------------------------------------
//
// The composed-codec refactor (PR 8) factored SZ2's kernels into
// block_core and templated interp_core over the quantizer. These tests
// pin that the framework components, assembled with the legacy framing,
// reproduce the frozen SZ2/SZ3 wire formats byte-for-byte — i.e. the
// legacy codecs really are configurations of the new framework, not
// parallel implementations.

BlobHeader legacy_header(const char* codec, const Field& f,
                         const CompressOptions& opt) {
  BlobHeader h;
  h.codec = codec;
  h.dtype = f.dtype();
  h.dims = f.shape().dims_vector();
  h.abs_error_bound = absolute_bound_for(f, opt);
  h.requested_mode = opt.mode;
  h.requested_bound = opt.error_bound;
  return h;
}

// Assembles an SZ2 blob from the framework components: the
// (kLorenzoRegression, kLinearRecip) block engine plus the huffman-lz
// encoder, behind SZ2's single-slab framing.
void check_sz2_equivalence(const char* pinned_name, DType dtype,
                           const std::vector<std::size_t>& dims) {
  SCOPED_TRACE(pinned_name);
  const Field f = dtype == DType::kFloat32
                      ? make_field<float>(dims, 0x5eedULL)
                      : make_field<double>(dims, 0x5eedULL);
  CompressOptions opt;
  opt.error_bound = 1e-3;
  const Bytes expect = compressor("SZ2").compress(f, opt);

  const BlobHeader header = legacy_header("SZ2", f, opt);
  const BlockEncoding enc = block_compress(
      f, header.abs_error_bound, BlockPredictor::kLorenzoRegression,
      QuantizerId::kLinearRecip, 0.0);
  Bytes out;
  header.encode(out);
  append_pod<std::uint32_t>(out, 1);  // one slab (serial compression)
  append_pod<std::uint64_t>(out, enc.codes.size());
  append_sized(out, enc.mode_bits);
  append_sized(out, enc.coeffs);
  append_sized(out, enc.unpred);
  // The huffman-lz encoder component is the legacy entropy stage.
  append_bytes(out, encode_codes_with(EncoderId::kHuffmanLz, enc.codes,
                                      kQuantAlphabet));

  ASSERT_EQ(out, expect) << "component-assembled SZ2 blob diverged";
  EXPECT_EQ(fnv1a(out), pinned(pinned_name).blob_hash);
}

TEST(ReferenceBlobs, ComposedSz2Equivalence) {
  check_sz2_equivalence("sz2_1d_f32", DType::kFloat32, {4096});
  check_sz2_equivalence("sz2_2d_f32", DType::kFloat32, {96, 96});
  check_sz2_equivalence("sz2_3d_f32", DType::kFloat32, {32, 32, 32});
  check_sz2_equivalence("sz2_3d_f64", DType::kFloat64, {32, 32, 32});
}

// Assembles an SZ3 blob from the interp engine at its default (legacy)
// configuration — which, post-refactor, routes through the same templated
// kernel the composed interp-cubic configurations use.
void check_interp_equivalence(const char* pinned_name,
                              const std::vector<std::size_t>& dims) {
  SCOPED_TRACE(pinned_name);
  const Field f = make_field<float>(dims, 0x5eedULL);
  CompressOptions opt;
  opt.error_bound = 1e-3;
  const Bytes expect = compressor("SZ3").compress(f, opt);

  const BlobHeader header = legacy_header("SZ3", f, opt);
  InterpConfig config;  // legacy defaults, incl. the linear-recip quantizer
  const InterpEncoding enc =
      interp_compress(f, header.abs_error_bound, config);
  Bytes out;
  header.encode(out);
  append_pod<std::uint8_t>(out, kLayoutSingle);
  const Bytes payload = interp_payload_encode(config, enc);
  append_pod<std::uint64_t>(out, payload.size());
  append_bytes(out, payload);

  ASSERT_EQ(out, expect) << "component-assembled SZ3 blob diverged";
  EXPECT_EQ(fnv1a(out), pinned(pinned_name).blob_hash);
}

TEST(ReferenceBlobs, ComposedInterpEquivalence) {
  check_interp_equivalence("sz3_1d_f32", {4096});
  check_interp_equivalence("sz3_2d_f32", {96, 96});
  check_interp_equivalence("sz3_3d_f32", {32, 32, 32});
}

}  // namespace
}  // namespace eblcio
