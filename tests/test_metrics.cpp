// Quality metric tests: MSE/PSNR known values, bound checking,
// autocorrelation behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "metrics/error_stats.h"
#include "test_util.h"

namespace eblcio {
namespace {

Field make_f32(std::vector<float> v) {
  const std::size_t n = v.size();
  NdArray<float> arr(Shape{n}, std::move(v));
  return Field("t", std::move(arr));
}

TEST(Metrics, IdenticalFieldsInfinitePsnr) {
  const Field a = make_f32({1, 2, 3, 4});
  const auto st = compute_error_stats(a, a);
  EXPECT_DOUBLE_EQ(st.mse, 0.0);
  EXPECT_TRUE(std::isinf(st.psnr_db));
  EXPECT_DOUBLE_EQ(st.max_abs_error, 0.0);
}

TEST(Metrics, KnownMseAndPsnr) {
  // Original [0, 10], recon off by 0.1 everywhere: MSE = 0.01,
  // PSNR = 20*log10(10 / 0.1) = 40 dB (Eq. 2 with peak = max(D) = 10).
  const Field a = make_f32({0, 10});
  const Field b = make_f32({0.1f, 9.9f});
  const auto st = compute_error_stats(a, b);
  EXPECT_NEAR(st.mse, 0.01, 1e-6);       // float(0.1) is not exact
  EXPECT_NEAR(st.psnr_db, 40.0, 1e-3);
  EXPECT_NEAR(st.max_abs_error, 0.1, 1e-6);
  EXPECT_NEAR(st.max_rel_error, 0.01, 1e-6);
}

TEST(Metrics, ValueRangeBoundCheck) {
  const Field a = make_f32({0, 100});
  const Field good = make_f32({0.5f, 99.5f});
  const Field bad = make_f32({2.0f, 98.0f});
  EXPECT_TRUE(check_value_range_bound(a, good, 0.01));   // 0.5 <= 1.0
  EXPECT_FALSE(check_value_range_bound(a, bad, 0.01));   // 2.0 > 1.0
}

TEST(Metrics, MismatchedShapesThrow) {
  const Field a = make_f32({1, 2, 3});
  const Field b = make_f32({1, 2});
  EXPECT_THROW(compute_error_stats(a, b), InvalidArgument);
}

TEST(Metrics, MismatchedTypesThrow) {
  const Field a = make_f32({1, 2});
  NdArray<double> d(Shape{2});
  const Field b("t", std::move(d));
  EXPECT_THROW(compute_error_stats(a, b), InvalidArgument);
}

TEST(Metrics, AutocorrelationDetectsStructuredError) {
  // Error = constant offset: perfectly correlated (lag-1 autocorr ~ 1 would
  // need variance; constant error has zero variance => 0). Use a slow sine
  // error instead, which is strongly lag-1 correlated.
  const std::size_t n = 4096;
  NdArray<float> a(Shape{n}), b(Shape{n});
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<float>(i % 17);
    b[i] = a[i] + 0.01f * static_cast<float>(std::sin(0.01 * i));
  }
  const Field fa("a", std::move(a)), fb("b", std::move(b));
  const auto st = compute_error_stats(fa, fb);
  EXPECT_GT(st.error_autocorr_lag1, 0.9);
}

TEST(Metrics, AutocorrelationNearZeroForWhiteError) {
  Rng rng(5);
  const std::size_t n = 8192;
  NdArray<float> a(Shape{n}), b(Shape{n});
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<float>(i % 13);
    b[i] = a[i] + 0.01f * static_cast<float>(rng.normal());
  }
  const Field fa("a", std::move(a)), fb("b", std::move(b));
  const auto st = compute_error_stats(fa, fb);
  EXPECT_LT(std::fabs(st.error_autocorr_lag1), 0.1);
}

TEST(Metrics, CompressionRatioHelper) {
  EXPECT_DOUBLE_EQ(compression_ratio(1000, 10), 100.0);
  EXPECT_DOUBLE_EQ(compression_ratio(1000, 0), 0.0);
}

TEST(Metrics, DoublePrecisionFields) {
  NdArray<double> a(Shape{3}), b(Shape{3});
  for (int i = 0; i < 3; ++i) {
    a[i] = i;
    b[i] = i + 1e-12;
  }
  const Field fa("a", std::move(a)), fb("b", std::move(b));
  const auto st = compute_error_stats(fa, fb);
  EXPECT_NEAR(st.max_abs_error, 1e-12, 1e-15);
}

}  // namespace
}  // namespace eblcio
