// Sector-ring transport tests: file-byte parity with the blocking append
// path, credit exhaustion and recovery, per-channel FIFO retirement,
// in-flight-only registry accounting, contended pricing monotonicity,
// concurrent N-writer × M-reader interleavings, and error-path hygiene
// (a mid-stream wire failure must release every credit and pooled sector
// buffer).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "common/buffer_pool.h"
#include "common/error.h"
#include "core/pipeline.h"
#include "io/transport.h"
#include "test_util.h"

namespace eblcio {
namespace {

using test::smooth_field_3d;

bool bytes_equal(const Field& a, const Field& b) {
  const auto sa = a.bytes();
  const auto sb = b.bytes();
  return sa.size() == sb.size() &&
         std::equal(sa.begin(), sa.end(), sb.begin());
}

Bytes pattern_bytes(std::size_t n, unsigned seed) {
  Bytes b(n);
  std::uint32_t s = seed * 2654435761u + 1u;
  for (std::size_t i = 0; i < n; ++i) {
    s = s * 1664525u + 1013904223u;
    b[i] = static_cast<std::byte>(s >> 24);
  }
  return b;
}

// Stages `messages` through a SectorWriter and returns the file content.
Bytes write_through_transport(PfsSimulator& pfs, const std::string& path,
                              const std::vector<Bytes>& messages,
                              const TransportConfig& config,
                              TransportStats* stats_out = nullptr,
                              std::vector<SectorRecord>* records_out = nullptr) {
  auto stream = pfs.open_append(path);
  {
    SectorWriter writer(stream, config);
    for (std::size_t m = 0; m < messages.size(); ++m)
      writer.stage(m, messages[m]);
    writer.drain();
    EXPECT_EQ(writer.inflight(), 0);
    if (stats_out) *stats_out = writer.stats();
    if (records_out) *records_out = writer.records();
  }
  return pfs.read_file(path);
}

TEST(SectorWriterTest, FileBytesIdenticalToBlockingAppends) {
  std::vector<Bytes> messages;
  for (unsigned m = 0; m < 7; ++m)
    messages.push_back(pattern_bytes(40000 + m * 17001, m));

  PfsSimulator blocking_pfs;
  auto blocking = blocking_pfs.open_append("/pfs/blocking");
  for (const auto& msg : messages) blocking.append(msg);

  TransportConfig config;
  config.sector_bytes = 16u << 10;
  PfsSimulator pfs;
  const Bytes got =
      write_through_transport(pfs, "/pfs/transport", messages, config);
  EXPECT_EQ(got, blocking_pfs.read_file("/pfs/blocking"));
}

TEST(SectorWriterTest, CreditExhaustionStallsAndRecovers) {
  // Deterministic exhaustion: a single-worker executor whose one worker is
  // pinned by a spin task, so the drainer cannot retire sector 0 while the
  // producer stages sector 1 — with one channel and one credit the
  // producer MUST record a credit stall. A watcher releases the worker
  // once the stall registers, and the write must then complete exactly.
  Executor ex(1);
  std::atomic<bool> release{false};
  TaskGroup blocker(ex);
  blocker.run([&] {
    while (!release.load()) std::this_thread::yield();
  });

  TransportConfig config;
  config.sector_bytes = 4u << 10;
  config.ring_depth = 1;
  config.channels = 1;
  const std::vector<Bytes> messages{pattern_bytes(100000, 3),
                                    pattern_bytes(120000, 4)};
  PfsSimulator pfs;
  auto stream = pfs.open_append("/pfs/tight");
  TransportStats stats;
  {
    SectorWriter writer(stream, config, ex);
    std::thread releaser([&] {
      while (writer.stats().credit_stalls == 0) std::this_thread::yield();
      release.store(true);
    });
    for (std::size_t m = 0; m < messages.size(); ++m)
      writer.stage(m, messages[m]);
    writer.drain();
    releaser.join();
    stats = writer.stats();
    EXPECT_EQ(writer.inflight(), 0);
  }
  blocker.wait();

  Bytes whole;
  for (const auto& m : messages)
    whole.insert(whole.end(), m.begin(), m.end());
  EXPECT_EQ(pfs.read_file("/pfs/tight"), whole);
  EXPECT_EQ(stats.sectors, (100000 + 4095) / 4096 + (120000 + 4095) / 4096);
  EXPECT_GT(stats.credit_stalls, 0u);
}

TEST(SectorWriterTest, RetirementIsPerChannelFifoInStagingOrder) {
  TransportConfig config;
  config.sector_bytes = 8u << 10;
  config.ring_depth = 3;
  config.channels = 3;
  std::vector<Bytes> messages;
  for (unsigned m = 0; m < 5; ++m)
    messages.push_back(pattern_bytes(60000 + 1234 * m, m + 9));
  PfsSimulator pfs;
  std::vector<SectorRecord> records;
  write_through_transport(pfs, "/pfs/fifo", messages, config, nullptr,
                          &records);
  ASSERT_FALSE(records.empty());
  // Global service order equals staging order (that is what makes the file
  // bytes blocking-identical), hence per-channel ordinals are FIFO too.
  std::map<int, std::size_t> last_by_channel;
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].sector, i);
    EXPECT_EQ(records[i].channel,
              static_cast<int>(i % static_cast<std::size_t>(config.channels)));
    auto it = last_by_channel.find(records[i].channel);
    if (it != last_by_channel.end()) EXPECT_LT(it->second, records[i].sector);
    last_by_channel[records[i].channel] = records[i].sector;
  }
}

TEST(SectorReaderTest, AssemblesMessagesAndMatchesFile) {
  PfsSimulator pfs;
  const Bytes content = pattern_bytes(300000, 42);
  pfs.write_file("/pfs/src", content);

  TransportConfig config;
  config.sector_bytes = 32u << 10;
  auto stream = pfs.open_read("/pfs/src");
  SectorReader reader(stream, config);
  const std::size_t h0 = reader.request(0, 100000);
  const std::size_t h1 = reader.request(100000, 150000);
  const std::size_t h2 = reader.request(250000, 50000);
  double wire1 = 0.0;
  Bytes m1 = reader.await(h1, &wire1);
  Bytes m0 = reader.await(h0);
  Bytes m2 = reader.await(h2);
  EXPECT_GT(wire1, 0.0);
  EXPECT_TRUE(std::equal(m0.begin(), m0.end(), content.begin()));
  EXPECT_TRUE(std::equal(m1.begin(), m1.end(), content.begin() + 100000));
  EXPECT_TRUE(std::equal(m2.begin(), m2.end(), content.begin() + 250000));
  EXPECT_EQ(reader.inflight(), 0);
  BufferPool::global().release(std::move(m0));
  BufferPool::global().release(std::move(m1));
  BufferPool::global().release(std::move(m2));
}

TEST(SectorTransportTest, RegistryCountsOnlyInFlightOccupancy) {
  PfsSimulator pfs;
  pfs.write_file("/pfs/idle", pattern_bytes(10000, 1));

  // Open-but-idle streams must not register.
  auto ws = pfs.open_append("/pfs/idle2");
  auto rs = pfs.open_read("/pfs/idle");
  EXPECT_EQ(pfs.concurrent_writers(), 0);
  EXPECT_EQ(pfs.concurrent_readers(), 0);

  // Idle endpoints must not register either; traffic must have registered
  // at serve time (visible via the peak counters).
  pfs.reset_writer_peak();
  pfs.reset_reader_peak();
  {
    SectorWriter writer(ws, TransportConfig{});
    SectorReader reader(rs, TransportConfig{});
    EXPECT_EQ(pfs.concurrent_writers(), 0);
    EXPECT_EQ(pfs.concurrent_readers(), 0);
    writer.stage(0, pattern_bytes(50000, 2));
    writer.drain();
    Bytes got = reader.await(reader.request(0, 10000));
    BufferPool::global().release(std::move(got));
  }
  EXPECT_EQ(pfs.peak_concurrent_writers(), 1);
  EXPECT_EQ(pfs.peak_concurrent_readers(), 1);
  // Everything retired: the registries are empty again.
  EXPECT_EQ(pfs.concurrent_writers(), 0);
  EXPECT_EQ(pfs.concurrent_readers(), 0);
}

TEST(SectorTransportTest, ContendedPricingMonotoneInOccupancy) {
  // The same sector traffic priced under growing registered fleets must
  // never get cheaper: clients and summed wire seconds are monotone.
  const std::vector<Bytes> messages{pattern_bytes(200000, 5),
                                    pattern_bytes(180000, 6)};
  TransportConfig config;
  config.sector_bytes = 16u << 10;
  double prev_wire = 0.0;
  int prev_clients = 0;
  for (int fleet : {0, 3, 9}) {
    PfsSimulator pfs;
    std::optional<PfsSimulator::WriterScope> scope;
    if (fleet > 0) scope.emplace(pfs, fleet);
    std::vector<SectorRecord> records;
    write_through_transport(pfs, "/pfs/fleet", messages, config, nullptr,
                            &records);
    double wire = 0.0;
    int clients = 0;
    for (const auto& r : records) {
      wire += r.rpc_s + r.xfer_s;
      clients = std::max(clients, r.clients);
    }
    EXPECT_EQ(clients, fleet + 1);  // fleet + this engaged stream
    EXPECT_GE(wire, prev_wire);
    EXPECT_GT(clients, prev_clients);
    prev_wire = wire;
    prev_clients = clients;
  }
}

TEST(SectorTransportTest, ConcurrentWritersAndReadersStayCoherent) {
  // N writer threads and M reader threads share one PFS, each moving its
  // own file through its own endpoint. Every byte must land/read exactly,
  // and the pooled sector buffers must balance out.
  constexpr int kWriters = 3;
  constexpr int kReaders = 2;
  PfsSimulator pfs;
  std::vector<Bytes> sources(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    sources[r] = pattern_bytes(250000 + 30000 * r, 100 + r);
    pfs.write_file("/pfs/source" + std::to_string(r), sources[r]);
  }

  TransportConfig config;
  config.sector_bytes = 16u << 10;
  const auto pool_before = BufferPool::global().stats();

  std::vector<std::thread> threads;
  std::vector<Bytes> expected(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    for (unsigned m = 0; m < 4; ++m) {
      const Bytes msg = pattern_bytes(90000 + 7000 * m, w * 10 + m);
      expected[w].insert(expected[w].end(), msg.begin(), msg.end());
    }
  }
  std::vector<Bytes> read_back(kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      auto stream = pfs.open_append("/pfs/out" + std::to_string(w));
      SectorWriter writer(stream, config);
      std::size_t off = 0;
      for (unsigned m = 0; m < 4; ++m) {
        const std::size_t len = 90000 + 7000 * m;
        writer.stage(m, std::span<const std::byte>(expected[w]).subspan(
                            off, len));
        off += len;
      }
      writer.drain();
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      auto stream = pfs.open_read("/pfs/source" + std::to_string(r));
      SectorReader reader(stream, config);
      std::vector<std::size_t> handles;
      const std::size_t half = sources[r].size() / 2;
      handles.push_back(reader.request(0, half));
      handles.push_back(reader.request(half, sources[r].size() - half));
      for (std::size_t h : handles) {
        Bytes part = reader.await(h);
        read_back[r].insert(read_back[r].end(), part.begin(), part.end());
        BufferPool::global().release(std::move(part));
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int w = 0; w < kWriters; ++w)
    EXPECT_EQ(pfs.read_file("/pfs/out" + std::to_string(w)), expected[w]);
  for (int r = 0; r < kReaders; ++r) EXPECT_EQ(read_back[r], sources[r]);
  EXPECT_EQ(pfs.concurrent_writers(), 0);
  EXPECT_EQ(pfs.concurrent_readers(), 0);
  const auto pool_after = BufferPool::global().stats();
  EXPECT_EQ(pool_after.acquires - pool_before.acquires,
            pool_after.releases - pool_before.releases);
}

TEST(SectorTransportTest, MidStreamErrorReleasesCreditsAndBuffers) {
  PfsSimulator pfs;
  pfs.write_file("/pfs/short", pattern_bytes(50000, 8));
  const auto pool_before = BufferPool::global().stats();
  {
    auto stream = pfs.open_read("/pfs/short");
    TransportConfig config;
    config.sector_bytes = 8u << 10;
    SectorReader reader(stream, config);
    const std::size_t good = reader.request(0, 30000);
    // Past-EOF extent: the drainer's ranged fetch throws mid-message. The
    // error surfaces from request() (when the drainer races ahead and
    // poisons the endpoint while sectors are still staging) or from
    // await() — either way it must be the wire error, and the endpoint
    // must come out with no credits or descriptors held.
    bool threw = false;
    try {
      reader.await(reader.request(30000, 40000));
    } catch (const InvalidArgument&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
    EXPECT_EQ(reader.inflight(), 0);
    // The earlier message finished assembling before the failure (sectors
    // serve in staging order) and stays redeemable.
    Bytes ok = reader.await(good);
    EXPECT_EQ(ok.size(), 30000u);
    BufferPool::global().release(std::move(ok));
  }
  EXPECT_EQ(pfs.concurrent_readers(), 0);
  const auto pool_after = BufferPool::global().stats();
  EXPECT_EQ(pool_after.acquires - pool_before.acquires,
            pool_after.releases - pool_before.releases);
}

TEST(SectorTransportTest, StreamedWriteContainerBitIdenticalToBlocking) {
  // The tentpole invariant end to end: the transported pipeline must land
  // byte-identical containers vs the blocking path, and both must read
  // back to the exact serial-reference field.
  const Field field = smooth_field_3d(24);
  PipelineConfig config;
  config.codec = "SZx";
  config.error_bound = 1e-3;
  config.io_library = "HDF5";

  StreamConfig transported;
  transported.slabs = 6;
  transported.use_transport = true;
  transported.transport.sector_bytes = 4u << 10;
  StreamConfig blocking = transported;
  blocking.use_transport = false;

  PfsSimulator pfs_a, pfs_b;
  const auto rec_a =
      run_streamed_compress_write(field, config, pfs_a, transported);
  const auto rec_b =
      run_streamed_compress_write(field, config, pfs_b, blocking);
  EXPECT_GT(rec_a.transport.sectors, 0u);
  EXPECT_EQ(rec_b.transport.sectors, 0u);
  EXPECT_EQ(rec_b.blocking_total_s, rec_b.streamed_total_s);
  EXPECT_GT(rec_a.blocking_total_s, 0.0);
  EXPECT_EQ(pfs_a.read_file(rec_a.path), pfs_b.read_file(rec_b.path));

  const Field ref = read_chunked_field(pfs_a, rec_a.path, config.io_library);
  const auto read_rec = run_streamed_read(pfs_a, rec_a.path, config,
                                          transported);
  EXPECT_TRUE(bytes_equal(read_rec.field, ref));
  EXPECT_GT(read_rec.transport.sectors, 0u);
}

}  // namespace
}  // namespace eblcio
