// SZx compressor tests: error-bound guarantee, block behaviours, parallel
// equivalence.
#include <gtest/gtest.h>

#include "compressors/compressor.h"
#include "metrics/error_stats.h"
#include "test_util.h"

namespace eblcio {
namespace {

using test::constant_field;
using test::double_field_4d;
using test::noisy_field_1d;
using test::smooth_field_2d;
using test::smooth_field_3d;
using test::spiky_field;

CompressOptions rel(double eb, int threads = 1) {
  CompressOptions o;
  o.mode = BoundMode::kValueRangeRel;
  o.error_bound = eb;
  o.threads = threads;
  return o;
}

class SzxBound : public ::testing::TestWithParam<double> {};

TEST_P(SzxBound, GuaranteesValueRangeBound3D) {
  const double eb = GetParam();
  Compressor& c = compressor("SZx");
  const Field f = smooth_field_3d();
  const Bytes blob = c.compress(f, rel(eb));
  const Field r = c.decompress(blob, 1);
  EXPECT_TRUE(check_value_range_bound(f, r, eb)) << "eb=" << eb;
}

TEST_P(SzxBound, GuaranteesBoundOnNoisy1D) {
  const double eb = GetParam();
  Compressor& c = compressor("SZx");
  const Field f = noisy_field_1d();
  const Field r = c.decompress(c.compress(f, rel(eb)), 1);
  EXPECT_TRUE(check_value_range_bound(f, r, eb));
}

TEST_P(SzxBound, GuaranteesBoundOnSpikyData) {
  const double eb = GetParam();
  Compressor& c = compressor("SZx");
  const Field f = spiky_field();
  const Field r = c.decompress(c.compress(f, rel(eb)), 1);
  EXPECT_TRUE(check_value_range_bound(f, r, eb));
}

TEST_P(SzxBound, GuaranteesBoundOnDouble4D) {
  const double eb = GetParam();
  Compressor& c = compressor("SZx");
  const Field f = double_field_4d();
  const Field r = c.decompress(c.compress(f, rel(eb)), 1);
  EXPECT_TRUE(check_value_range_bound(f, r, eb));
  EXPECT_EQ(r.dtype(), DType::kFloat64);
}

INSTANTIATE_TEST_SUITE_P(BoundSweep, SzxBound,
                         ::testing::Values(1e-1, 1e-2, 1e-3, 1e-4, 1e-5,
                                           1e-6));

TEST(Szx, ConstantFieldCollapsesToConstantBlocks) {
  Compressor& c = compressor("SZx");
  const Field f = constant_field(100000);
  const Bytes blob = c.compress(f, rel(1e-3));
  EXPECT_LT(blob.size(), f.size_bytes() / 50);
  const Field r = c.decompress(blob, 1);
  for (std::size_t i = 0; i < r.num_elements(); ++i)
    EXPECT_EQ(r.as<float>()[i], 42.5f);
}

TEST(Szx, RatioDecreasesWithTighterBound) {
  Compressor& c = compressor("SZx");
  const Field f = smooth_field_3d(48);
  const std::size_t loose = c.compress(f, rel(1e-1)).size();
  const std::size_t mid = c.compress(f, rel(1e-3)).size();
  const std::size_t tight = c.compress(f, rel(1e-5)).size();
  EXPECT_LE(loose, mid);
  EXPECT_LE(mid, tight);
}

TEST(Szx, TightBoundFallsBackToRawBlocks) {
  // A bound below float precision must still round-trip within bound
  // (via raw IEEE storage), just without compression.
  Compressor& c = compressor("SZx");
  const Field f = noisy_field_1d(2048);
  const Bytes blob = c.compress(f, rel(1e-9));
  const Field r = c.decompress(blob, 1);
  EXPECT_TRUE(check_value_range_bound(f, r, 1e-9));
}

TEST(Szx, ParallelMatchesBoundAndIsSelfDescribing) {
  Compressor& c = compressor("SZx");
  const Field f = smooth_field_3d(40);
  for (int threads : {2, 4, 8}) {
    const Bytes blob = c.compress(f, rel(1e-3, threads));
    const Field r = decompress_any(blob, threads);
    EXPECT_TRUE(check_value_range_bound(f, r, 1e-3)) << threads;
  }
}

TEST(Szx, HeaderRecordsMetadata) {
  Compressor& c = compressor("SZx");
  const Field f = smooth_field_2d();
  const Bytes blob = c.compress(f, rel(1e-2));
  const BlobHeader h = peek_header(blob);
  EXPECT_EQ(h.codec, "SZx");
  EXPECT_EQ(h.dims, f.shape().dims_vector());
  EXPECT_EQ(h.requested_bound, 1e-2);
  EXPECT_GT(h.abs_error_bound, 0.0);
}

TEST(Szx, RejectsLosslessMode) {
  Compressor& c = compressor("SZx");
  CompressOptions o;
  o.mode = BoundMode::kLossless;
  EXPECT_THROW(c.compress(smooth_field_2d(), o), InvalidArgument);
}

TEST(Szx, AbsoluteBoundMode) {
  Compressor& c = compressor("SZx");
  CompressOptions o;
  o.mode = BoundMode::kAbsolute;
  o.error_bound = 0.05;
  const Field f = smooth_field_3d();
  const Field r = c.decompress(c.compress(f, o), 1);
  const auto st = compute_error_stats(f, r);
  EXPECT_LE(st.max_abs_error, 0.05 * (1 + 1e-9));
}

TEST(Szx, TruncatedBlobThrows) {
  Compressor& c = compressor("SZx");
  Bytes blob = c.compress(smooth_field_2d(), rel(1e-3));
  blob.resize(blob.size() / 3);
  EXPECT_THROW(c.decompress(blob, 1), CorruptStream);
}

}  // namespace
}  // namespace eblcio
