// Lossless baseline tests (zstd-class, C-Blosc2, fpzip, FPC): exact
// round-trips on every field type, plus the Fig. 1 ratio ordering
// (float-aware codecs beat byte-level LZ on float data).
#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "compressors/compressor.h"
#include "data/dataset.h"
#include "test_util.h"

namespace eblcio {
namespace {

using test::double_field_4d;
using test::noisy_field_1d;
using test::smooth_field_2d;
using test::smooth_field_3d;

CompressOptions lossless_opt() {
  CompressOptions o;
  o.mode = BoundMode::kLossless;
  return o;
}

template <typename T>
void expect_bit_exact(const Field& a, const Field& b) {
  ASSERT_EQ(a.shape(), b.shape());
  const auto& x = a.as<T>();
  const auto& y = b.as<T>();
  for (std::size_t i = 0; i < x.num_elements(); ++i) {
    T xv = x[i], yv = y[i];
    EXPECT_EQ(std::memcmp(&xv, &yv, sizeof(T)), 0) << "index " << i;
  }
}

class LosslessRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(LosslessRoundTrip, BitExact) {
  const auto [codec, which] = GetParam();
  Field f;
  if (which == "1d") f = noisy_field_1d();
  else if (which == "2d") f = smooth_field_2d();
  else if (which == "3d") f = smooth_field_3d();
  else f = double_field_4d();

  Compressor& c = compressor(codec);
  EXPECT_TRUE(c.caps().lossless);
  const Bytes blob = c.compress(f, lossless_opt());
  const Field r = c.decompress(blob, 1);
  if (f.dtype() == DType::kFloat32)
    expect_bit_exact<float>(f, r);
  else
    expect_bit_exact<double>(f, r);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllShapes, LosslessRoundTrip,
    ::testing::Combine(::testing::Values("zstd", "C-Blosc2", "fpzip", "FPC"),
                       ::testing::Values("1d", "2d", "3d", "4d")));

TEST(Lossless, SpecialFloatValuesSurvive) {
  NdArray<float> arr(Shape{8});
  arr[0] = 0.0f;
  arr[1] = -0.0f;
  arr[2] = std::numeric_limits<float>::infinity();
  arr[3] = -std::numeric_limits<float>::infinity();
  arr[4] = std::numeric_limits<float>::denorm_min();
  arr[5] = std::numeric_limits<float>::max();
  arr[6] = -std::numeric_limits<float>::min();
  arr[7] = 1.5f;
  const Field f("special", std::move(arr));
  for (const std::string& codec : lossless_names()) {
    Compressor& c = compressor(codec);
    const Field r = c.decompress(c.compress(f, lossless_opt()), 1);
    expect_bit_exact<float>(f, r);
  }
}

TEST(Lossless, FloatAwareCodecsBeatByteLevelLzOnSmoothFloats) {
  // Fig. 1's message: general lossless (zstd-class) achieves little on
  // floating-point fields; float-aware predictors (fpzip) do better.
  const Field f = generate_dataset_dims("CESM", {4, 64, 128}, 21);
  const auto zl = compressor("zstd").compress(f, lossless_opt()).size();
  const auto fp = compressor("fpzip").compress(f, lossless_opt()).size();
  EXPECT_LT(fp, zl);
}

TEST(Lossless, RatiosAreModestComparedToEblc) {
  // The headline Fig. 1 contrast: every lossless ratio is far below what
  // SZ2 reaches at even a tight bound on the same data.
  const Field f = generate_dataset_dims("CESM", {4, 64, 128}, 22);
  CompressOptions eblc;
  eblc.mode = BoundMode::kValueRangeRel;
  eblc.error_bound = 1e-4;
  const double sz2_ratio =
      static_cast<double>(f.size_bytes()) /
      compressor("SZ2").compress(f, eblc).size();
  for (const std::string& codec : lossless_names()) {
    const double ratio =
        static_cast<double>(f.size_bytes()) /
        compressor(codec).compress(f, lossless_opt()).size();
    EXPECT_LT(ratio, sz2_ratio) << codec;
    EXPECT_GE(ratio, 0.5) << codec;  // never catastrophically inflate
  }
}

TEST(Lossless, FpcHandlesOddByteLengths) {
  // FPC processes 8-byte words; a float field with odd element count
  // exercises the tail-padding path.
  NdArray<float> arr(Shape{1001});
  Rng rng(9);
  for (std::size_t i = 0; i < arr.num_elements(); ++i)
    arr[i] = static_cast<float>(rng.normal());
  const Field f("odd", std::move(arr));
  Compressor& c = compressor("FPC");
  const Field r = c.decompress(c.compress(f, lossless_opt()), 1);
  expect_bit_exact<float>(f, r);
}

TEST(Lossless, EblcModeOnLosslessCodecStillExact) {
  // Passing an error bound to a lossless codec must not make it lossy.
  const Field f = smooth_field_2d();
  CompressOptions o;
  o.mode = BoundMode::kValueRangeRel;
  o.error_bound = 1e-1;
  Compressor& c = compressor("zstd");
  const Field r = c.decompress(c.compress(f, o), 1);
  expect_bit_exact<float>(f, r);
}

}  // namespace
}  // namespace eblcio
