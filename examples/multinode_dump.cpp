// multinode_dump — the Sec. IV-E experiment as a runnable program: R ranks
// (threads under simmpi) each compress their copy of a NYX field and write
// it to the shared Lustre-class PFS, with per-rank simulated clocks and a
// node-level energy ledger. Compare against the same fleet writing
// uncompressed data.
//
//   ./examples/multinode_dump [--ranks=16] [--codec=SZ3] [--eb=1e-3]
#include <cstdio>
#include <iostream>
#include <mutex>

#include "common/cli.h"
#include "common/format.h"
#include "common/timer.h"
#include "compressors/compressor.h"
#include "data/dataset.h"
#include "energy/cpu_model.h"
#include "io/io_tool.h"
#include "metrics/error_stats.h"
#include "parallel/simmpi.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int ranks = args.get_int("ranks", 64);
  const std::string codec = args.get("codec", "SZ3");
  const double eb = args.get_double("eb", 1e-3);
  const CpuModel& cpu = cpu_model("8160");

  const Field field = generate_dataset_dims("NYX", {48, 48, 48}, 7);
  std::printf("multi-node dump: %d ranks x %s of NYX, %s @ eb=%s, %s\n\n",
              ranks, human_bytes(field.size_bytes()).c_str(), codec.c_str(),
              fmt_error_bound(eb).c_str(), cpu.name.c_str());

  PfsSimulator pfs;
  std::mutex pfs_mu;
  double fleet_comp_s = 0.0, fleet_write_s = 0.0, fleet_wall_s = 0.0;
  std::size_t blob_bytes = 0;

  SimMpiWorld::run(ranks, [&](Communicator& comm) {
    // Every rank really compresses its copy of the field.
    CompressOptions opt;
    opt.error_bound = eb;
    WallTimer timer;
    const Bytes blob = compressor(codec).compress(field, opt);
    const double host_comp_s = timer.elapsed_s();
    const double comp_s = host_comp_s / cpu.speed_factor;
    comm.advance_time(comp_s);

    // Concurrent write to the shared PFS (simmpi ranks contend R-wide).
    double write_s = 0.0;
    {
      std::lock_guard<std::mutex> lock(pfs_mu);
      IoTool& tool = io_tool("HDF5");
      const IoCost cost = tool.write_blob(
          pfs, "/dump/rank" + std::to_string(comm.rank()), field.name(),
          blob, comm.size());
      write_s = cost.total_seconds();
    }
    comm.advance_time(write_s);

    // Reduce the fleet's phase maxima to rank 0 for the ledger.
    const double max_comp = comm.allreduce_max(comp_s);
    const double max_write = comm.allreduce_max(write_s);
    comm.barrier();
    if (comm.rank() == 0) {
      fleet_comp_s = max_comp;
      fleet_write_s = max_write;
      fleet_wall_s = comm.sim_time();
      blob_bytes = blob.size();
    }
  });

  const int nodes = (ranks + cpu.cores - 1) / cpu.cores;
  const int cores_per_node = std::min(ranks, cpu.cores);
  const double comp_j =
      nodes * cpu.node_power_w(cores_per_node) * fleet_comp_s;
  const double write_j = nodes * cpu.io_power_w() * fleet_write_s;

  // Baseline: the same fleet writing uncompressed copies.
  const double orig_write_s =
      pfs.transfer_seconds(field.size_bytes(), ranks);
  const double orig_j = nodes * cpu.io_power_w() * orig_write_s;

  std::printf("per-rank blob: %s (ratio %.1fx)\n",
              human_bytes(blob_bytes).c_str(),
              compression_ratio(field.size_bytes(), blob_bytes));
  std::printf("fleet wall time (simulated): %s\n",
              fmt_seconds(fleet_wall_s).c_str());
  std::printf("energy: compression %.2f J + compressed writes %.2f J = %.2f J\n",
              comp_j, write_j, comp_j + write_j);
  std::printf("        uncompressed writes %.2f J\n", orig_j);
  std::printf("=> %s\n",
              comp_j + write_j < orig_j
                  ? "compress-then-write wins (the paper's ~25% multi-node saving)"
                  : "uncompressed wins at this rank count / data size");

  // Spot-check one rank's dump end to end.
  const Bytes back =
      io_tool("HDF5").read_blob(pfs, "/dump/rank0", field.name());
  const Field restored = decompress_any(back);
  std::printf("rank0 dump verified within bound: %s\n",
              check_value_range_bound(field, restored, eb) ? "yes" : "NO");
  return 0;
}
