// multinode_dump — the Sec. IV-E experiment as a runnable program: R ranks
// (tasks under simmpi) each compress their copy of a NYX field and write
// it to the shared Lustre-class PFS, with per-rank simulated clocks and a
// node-level energy ledger. Compare against the same fleet writing
// uncompressed data.
//
//   ./examples/multinode_dump [--ranks=64] [--codec=SZ3] [--eb=1e-3]
//
// With --parallel-sweep the program runs the node×rank grid instead:
// every (nodes, ranks-per-node) world is one sweep cell, the worlds batch
// concurrently on the shared executor (core/sweep.h), rows stream as they
// complete in deterministic order, and all worlds share one PFS whose
// contention model is fed the true number of simultaneously-writing
// clients through the writer registry (overlapping worlds contend, as the
// same fleets would on a real Lustre).
//
//   ./examples/multinode_dump --parallel-sweep [--nodes=1,2,4]
//       [--rpn=2,4,8,16] [--codec=SZ3] [--eb=1e-3] [--serial]
//       [--max-worlds=4]
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/cli.h"
#include "common/format.h"
#include "common/timer.h"
#include "compressors/compressor.h"
#include "core/sweep.h"
#include "data/dataset.h"
#include "energy/cpu_model.h"
#include "io/io_tool.h"
#include "metrics/error_stats.h"
#include "parallel/simmpi.h"

using namespace eblcio;

namespace {

std::vector<int> parse_int_list(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoi(item));
  return out;
}

struct WorldResult {
  double comp_j = 0.0;
  double write_j = 0.0;
  double orig_j = 0.0;
  double wall_s = 0.0;
  std::size_t blob_bytes = 0;
};

// One world: `ranks` ranks really compress `field` and write their blobs
// to `pfs`, contending with every other writer registered on it. Energy
// uses `nodes` explicitly (the node×rank grid fixes both axes).
WorldResult run_world(const Field& field, const std::string& codec, double eb,
                      const CpuModel& cpu, int nodes, int ranks,
                      PfsSimulator& pfs, const std::string& dump_prefix) {
  PfsSimulator::WriterScope fleet(pfs, ranks);
  WorldResult result;  // written by rank 0 only, read after the world joins

  SimMpiWorld::run(ranks, [&](Communicator& comm) {
    CompressOptions opt;
    opt.error_bound = eb;
    WallTimer timer;
    const Bytes blob = compressor(codec).compress(field, opt);
    const double comp_s = timer.elapsed_s() / cpu.speed_factor;
    comm.advance_time(comp_s);

    // The PFS itself is thread-safe; contention is the larger of this
    // world's fleet and the writers registered across batched worlds.
    const int clients = std::max(comm.size(), pfs.concurrent_writers());
    const IoCost cost = io_tool("HDF5").write_blob(
        pfs, dump_prefix + "/rank" + std::to_string(comm.rank()),
        field.name(), blob, clients);
    const double write_s = cost.total_seconds();
    comm.advance_time(write_s);

    const double max_comp = comm.allreduce_max(comp_s);
    const double max_write = comm.allreduce_max(write_s);
    comm.barrier();
    if (comm.rank() == 0) {
      const int cores_per_node = (ranks + nodes - 1) / nodes;
      result.comp_j = nodes * cpu.node_power_w(cores_per_node) * max_comp;
      result.write_j = nodes * cpu.io_power_w() * max_write;
      result.orig_j = nodes * cpu.io_power_w() *
                      pfs.transfer_seconds(field.size_bytes(), clients);
      result.wall_s = comm.sim_time();
      result.blob_bytes = blob.size();
    }
  });
  return result;
}

int run_grid_sweep(const CliArgs& args, const Field& field,
                   const std::string& codec, double eb, const CpuModel& cpu) {
  const std::vector<int> node_counts =
      parse_int_list(args.get("nodes", "1,2,4"));
  const std::vector<int> rpn_counts =
      parse_int_list(args.get("rpn", "2,4,8,16"));
  const bool serial = args.get_bool("serial", false);

  struct GridCell {
    int nodes = 0;
    int rpn = 0;
  };
  std::vector<GridCell> cells;
  for (int nodes : node_counts)
    for (int rpn : rpn_counts) cells.push_back({nodes, rpn});

  std::printf("node×rank sweep: %zu worlds (%s), %s of NYX per rank, %s\n\n",
              cells.size(), serial ? "serial" : "batched on the executor",
              human_bytes(field.size_bytes()).c_str(), cpu.name.c_str());
  std::printf("%6s %5s %6s | %12s %12s %12s %10s\n", "nodes", "rpn", "ranks",
              "comp (J)", "write (J)", "orig w (J)", "verdict");

  PfsSimulator pfs;  // one PFS shared by every world of the sweep
  SweepOptions sweep;
  sweep.parallel = !serial;
  sweep.max_tasks = args.get_int("max-worlds", 4);

  using Cell = SweepCell<GridCell, WorldResult>;
  const auto report = sweep_grid(
      std::move(cells),
      [&](const GridCell& cell, SweepCellContext& ctx) {
        return run_world(field, codec, eb, cpu, cell.nodes,
                         cell.nodes * cell.rpn, pfs,
                         "/dump/world" + std::to_string(ctx.index()));
      },
      sweep, [](const Cell& cell) {
        // Streamed, in deterministic domain order, as worlds complete.
        if (!cell.result) return;
        const WorldResult& r = *cell.result;
        std::printf("%6d %5d %6d | %12.2f %12.2f %12.2f %10s\n",
                    cell.cell.nodes, cell.cell.rpn,
                    cell.cell.nodes * cell.cell.rpn, r.comp_j, r.write_j,
                    r.orig_j,
                    r.comp_j + r.write_j < r.orig_j ? "compress" : "raw");
        std::fflush(stdout);
      });
  report.rethrow_first_error();

  std::printf(
      "\nsweep wall %.2f s host (summed world time %.2f s); PFS saw a peak\n"
      "of %d simultaneously-registered writers — the true concurrent-client\n"
      "count fed to the contention model while worlds overlapped.\n",
      report.stats.wall_s, report.stats.cell_seconds,
      pfs.peak_concurrent_writers());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string codec = args.get("codec", "SZ3");
  const double eb = args.get_double("eb", 1e-3);
  const CpuModel& cpu = cpu_model("8160");
  const Field field = generate_dataset_dims("NYX", {48, 48, 48}, 7);

  if (args.get_bool("parallel-sweep", false))
    return run_grid_sweep(args, field, codec, eb, cpu);

  const int ranks = args.get_int("ranks", 64);
  std::printf("multi-node dump: %d ranks x %s of NYX, %s @ eb=%s, %s\n\n",
              ranks, human_bytes(field.size_bytes()).c_str(), codec.c_str(),
              fmt_error_bound(eb).c_str(), cpu.name.c_str());

  PfsSimulator pfs;
  const int nodes = (ranks + cpu.cores - 1) / cpu.cores;
  const WorldResult r =
      run_world(field, codec, eb, cpu, nodes, ranks, pfs, "/dump");

  std::printf("per-rank blob: %s (ratio %.1fx)\n",
              human_bytes(r.blob_bytes).c_str(),
              compression_ratio(field.size_bytes(), r.blob_bytes));
  std::printf("fleet wall time (simulated): %s\n",
              fmt_seconds(r.wall_s).c_str());
  std::printf(
      "energy: compression %.2f J + compressed writes %.2f J = %.2f J\n",
      r.comp_j, r.write_j, r.comp_j + r.write_j);
  std::printf("        uncompressed writes %.2f J\n", r.orig_j);
  std::printf("=> %s\n",
              r.comp_j + r.write_j < r.orig_j
                  ? "compress-then-write wins (the paper's ~25% multi-node "
                    "saving)"
                  : "uncompressed wins at this rank count / data size");

  // Spot-check one rank's dump end to end.
  const Bytes back =
      io_tool("HDF5").read_blob(pfs, "/dump/rank0", field.name());
  const Field restored = decompress_any(back);
  std::printf("rank0 dump verified within bound: %s\n",
              check_value_range_bound(field, restored, eb) ? "yes" : "NO");
  return 0;
}
