// Quickstart: the five-minute tour of the eblcio public API.
//
//   1. Generate (or bring) a scientific field.
//   2. Compress it with an error-bounded lossy compressor.
//   3. Decompress and verify the error bound.
//   4. Ask "was it worth it?" — the paper's Sec. III conditions.
//
// Build & run:  ./examples/quickstart [--codec=SZ3] [--eb=1e-3]
#include <cstdio>
#include <iostream>

#include "common/cli.h"
#include "common/format.h"
#include "compressors/compressor.h"
#include "core/pipeline.h"
#include "data/dataset.h"
#include "io/pfs.h"
#include "metrics/error_stats.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string codec = args.get("codec", "SZ3");
  const double eb = args.get_double("eb", 1e-3);

  // 1. A 128^3 slice of the NYX cosmology benchmark (synthetic stand-in).
  const Field field = generate_dataset_dims("NYX", {128, 128, 128});
  std::printf("field: %s, %s, %s\n", field.name().c_str(),
              fmt_dims(field.shape().dims_vector()).c_str(),
              human_bytes(field.size_bytes()).c_str());

  // 2. Compress with a value-range relative error bound.
  CompressOptions opt;
  opt.mode = BoundMode::kValueRangeRel;
  opt.error_bound = eb;
  const Bytes blob = compressor(codec).compress(field, opt);
  std::printf("%s @ eb=%s: %s -> %s  (ratio %.1fx)\n", codec.c_str(),
              fmt_error_bound(eb).c_str(),
              human_bytes(field.size_bytes()).c_str(),
              human_bytes(blob.size()).c_str(),
              compression_ratio(field.size_bytes(), blob.size()));

  // 3. Decompress (any blob is self-describing) and verify the bound.
  const Field recon = decompress_any(blob);
  const ErrorStats st = compute_error_stats(field, recon);
  std::printf("reconstruction: PSNR %.1f dB, max rel error %.2e (bound %s)\n",
              st.psnr_db, st.max_rel_error, fmt_error_bound(eb).c_str());
  std::printf("bound satisfied: %s\n",
              check_value_range_bound(field, recon, eb) ? "yes" : "NO");

  // 4. The paper's question: is compress-then-write cheaper than writing
  //    the original? (time, energy, and quality must all win — Eqs. 3-5.)
  PfsSimulator pfs;
  PipelineConfig cfg;
  cfg.codec = codec;
  cfg.error_bound = eb;
  cfg.psnr_min_db = 40.0;
  const WriteRecord rec = run_compress_write(field, cfg, pfs);
  std::printf(
      "\nto compress or not to compress (HDF5 -> Lustre, Xeon MAX 9480):\n"
      "  compress:        %.3f J, %s\n"
      "  write compressed: %.3f J, %s\n"
      "  write original:   %.3f J, %s\n"
      "  I/O energy reduction: %.1fx   verdict: %s\n",
      rec.compression.compress_j, fmt_seconds(rec.compression.compress_s).c_str(),
      rec.write_compressed_j, fmt_seconds(rec.write_compressed_s).c_str(),
      rec.write_original_j, fmt_seconds(rec.write_original_s).c_str(),
      rec.verdict.io_energy_reduction,
      rec.verdict.beneficial() ? "compress" : "do not compress");
  return 0;
}
